// Command maliva-server runs the Maliva middleware as an HTTP service over
// the synthetic Twitter dataset: it trains an MDP agent at startup, then
// serves visualization requests at POST /viz.
//
//	curl -s localhost:8080/viz -d '{
//	  "keyword": "word0007",
//	  "from": "2016-11-20T00:00:00Z", "to": "2016-11-27T00:00:00Z",
//	  "min_lon": -124.4, "min_lat": 32.5, "max_lon": -114.1, "max_lat": 42.0,
//	  "kind": "heatmap", "budget_ms": 500
//	}'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/harness"
	"github.com/maliva/maliva/internal/middleware"
	"github.com/maliva/maliva/internal/qte"
	"github.com/maliva/maliva/internal/workload"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		budget  = flag.Float64("budget", 500, "default time budget in virtual ms")
		queries = flag.Int("queries", 400, "training workload size")
	)
	flag.Parse()

	cfg := workload.TwitterConfig()
	cfg.Rows = 60_000
	cfg.Scale = 100e6 / float64(cfg.Rows)
	ds, err := workload.Twitter(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "training MDP agent on startup...")
	lab, err := harness.BuildLab(ds, harness.LabConfig{
		NumQueries: *queries,
		QuerySpec:  workload.QuerySpec{NumPreds: 3, Seed: 5},
		Space:      core.HintOnlySpec(),
		Budget:     *budget,
		Seed:       9,
		Progress:   os.Stderr,
	})
	if err != nil {
		fatal(err)
	}
	est := qte.NewAccurateQTE()
	agent, score := lab.TrainAgent(harness.TrainAgentConfig{
		Agent: core.DefaultAgentConfig(),
		QTE:   est,
		Seeds: []int64{7},
	})
	fmt.Fprintf(os.Stderr, "agent ready (validation score %.3f)\n", score)

	srv := middleware.NewServer(ds,
		&core.MDPRewriter{Agent: agent, QTE: est, Tag: "Accurate-QTE"},
		core.HintOnlySpec(), *budget)
	fmt.Fprintf(os.Stderr, "maliva middleware listening on %s\n", *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "maliva-server:", err)
	os.Exit(1)
}
