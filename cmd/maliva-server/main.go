// Command maliva-server runs the Maliva middleware as an HTTP gateway over
// one or more synthetic datasets: it registers each requested dataset,
// (optionally) trains an MDP agent per dataset at startup, then serves
// visualization requests at POST /viz?dataset=<name> with plan/result
// caching and one admission budget shared across datasets. GET /datasets,
// GET /healthz and GET /metrics expose the serving state, per dataset and
// rolled up.
//
//	maliva-server -dataset twitter -dataset taxi
//	curl -s 'localhost:8080/viz?dataset=twitter' -d '{
//	  "keyword": "word0007",
//	  "from": "2016-11-20T00:00:00Z", "to": "2016-11-27T00:00:00Z",
//	  "min_lon": -124.4, "min_lat": 32.5, "max_lon": -114.1, "max_lat": 42.0,
//	  "kind": "heatmap", "budget_ms": 500
//	}'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"slices"
	"strings"
	"time"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/harness"
	"github.com/maliva/maliva/internal/middleware"
	"github.com/maliva/maliva/internal/qte"
	"github.com/maliva/maliva/internal/workload"
)

// datasetList collects repeated (or comma-separated) -dataset flags.
type datasetList []string

func (d *datasetList) String() string { return strings.Join(*d, ",") }

func (d *datasetList) Set(v string) error {
	for _, name := range strings.Split(v, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		*d = append(*d, name)
	}
	return nil
}

// agentMap collects repeated -agent flags: "dataset=path" pins a snapshot to
// one dataset; a bare "path" is the fallback snapshot for every dataset
// without a pinned one (the single-dataset spelling maliva-load -agent uses).
type agentMap map[string]string

func (a agentMap) String() string {
	parts := make([]string, 0, len(a))
	for k, v := range a {
		parts = append(parts, k+"="+v)
	}
	return strings.Join(parts, ",")
}

func (a agentMap) Set(v string) error {
	if name, path, ok := strings.Cut(v, "="); ok && !strings.Contains(name, "/") {
		a[name] = path
		return nil
	}
	a[""] = v
	return nil
}

// snapshotFor resolves the snapshot path serving a dataset, if any.
func (a agentMap) snapshotFor(dataset string) (string, bool) {
	if p, ok := a[dataset]; ok {
		return p, true
	}
	p, ok := a[""]
	return p, ok
}

func main() {
	var datasets datasetList
	flag.Var(&datasets, "dataset", "dataset to serve: twitter | taxi | tpch (repeatable or comma-separated; default twitter)")
	agents := make(agentMap)
	flag.Var(agents, "agent", "trained MDP policy snapshot (from maliva-train): 'dataset=path' pins one dataset, bare 'path' covers the rest; skips that dataset's startup training (repeatable)")
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		budget      = flag.Float64("budget", 500, "default time budget in virtual ms")
		queries     = flag.Int("queries", 400, "training workload size per dataset")
		rows        = flag.Int("rows", 60_000, "stored rows per dataset")
		rewriter    = flag.String("rewriter", "mdp", "rewriting strategy: mdp (trains per dataset at startup) or oracle")
		lazy        = flag.Bool("lazy", false, "build datasets on first request (503 while warming) instead of at startup")
		warmWorkers = flag.Int("warm-workers", 0, "datasets warmed concurrently at startup (0 = GOMAXPROCS, 1 = serial)")

		planCache   = flag.Int("plan-cache", 0, "plan-cache entries per dataset (0 = default, negative = disable)")
		resultCache = flag.Int("result-cache", 0, "result-cache entries per dataset (0 = default, negative = disable)")
		resultTTL   = flag.Duration("result-ttl", 0, "result-cache TTL (0 = default 30s)")
		cacheShards = flag.Int("cache-shards", 0, "plan/result cache shards (0 = default 16)")
		maxConc     = flag.Int("max-concurrent", 0, "shared concurrent request limit (0 = default 4×GOMAXPROCS, negative = disable)")
		maxQueue    = flag.Int("max-queue", 0, "shared admission queue length (0 = default 256)")
		noCache     = flag.Bool("no-cache", false, "disable plan and result caches (baseline mode)")
	)
	flag.Parse()

	if len(datasets) == 0 {
		datasets = datasetList{"twitter"}
	}
	// A mistyped pin would otherwise silently fall through to the startup
	// training the snapshot was meant to skip.
	for name := range agents {
		if name == "" {
			continue
		}
		if !slices.Contains(datasets, name) {
			fatal(fmt.Errorf("-agent %s=%s pins a dataset that is not served (have: %s)",
				name, agents[name], datasets.String()))
		}
	}
	reg := workload.NewRegistry()
	for _, name := range datasets {
		build, err := workload.StandardBuilder(name, *rows)
		if err != nil {
			fatal(err)
		}
		if err := reg.Register(name, build); err != nil {
			fatal(err)
		}
	}

	var factory middleware.RewriterFactory
	switch *rewriter {
	case "oracle":
		factory = middleware.OracleFactory
	case "mdp":
		factory = func(name string, ds *workload.Dataset) (core.Rewriter, error) {
			if path, ok := agents.snapshotFor(name); ok {
				t0 := time.Now()
				a, err := core.LoadAgentFile(path)
				if err != nil {
					return nil, err
				}
				fmt.Fprintf(os.Stderr, "%s: loaded agent snapshot %s in %s\n",
					name, path, time.Since(t0).Round(time.Millisecond))
				return &core.MDPRewriter{Agent: a, QTE: qte.NewAccurateQTE(), Tag: "Accurate-QTE"}, nil
			}
			fmt.Fprintf(os.Stderr, "training MDP agent for %s...\n", ds.Name)
			lab, err := harness.BuildLab(ds, harness.LabConfig{
				NumQueries: *queries,
				QuerySpec:  workload.QuerySpec{NumPreds: 3, Seed: 5},
				Space:      core.HintOnlySpec(),
				Budget:     *budget,
				Seed:       9,
				Progress:   os.Stderr,
			})
			if err != nil {
				return nil, err
			}
			est := qte.NewAccurateQTE()
			agent, score := lab.TrainAgent(harness.TrainAgentConfig{
				Agent: core.DefaultAgentConfig(),
				QTE:   est,
				Seeds: []int64{7},
			})
			fmt.Fprintf(os.Stderr, "%s agent ready (validation score %.3f)\n", ds.Name, score)
			return &core.MDPRewriter{Agent: agent, QTE: est, Tag: "Accurate-QTE"}, nil
		}
	default:
		fatal(fmt.Errorf("unknown -rewriter %q (want mdp or oracle)", *rewriter))
	}

	scfg := middleware.ServerConfig{
		DefaultBudgetMs: *budget,
		PlanCacheSize:   *planCache,
		ResultCacheSize: *resultCache,
		ResultTTL:       *resultTTL,
		CacheShards:     *cacheShards,
		MaxConcurrent:   *maxConc,
		MaxQueue:        *maxQueue,
	}
	if *noCache {
		scfg.PlanCacheSize = -1
		scfg.ResultCacheSize = -1
	}
	gw, err := middleware.NewGateway(reg, factory, middleware.GatewayConfig{
		Server:      scfg,
		Space:       core.HintOnlySpec(),
		WarmWorkers: *warmWorkers,
	})
	if err != nil {
		fatal(err)
	}
	if !*lazy {
		t0 := time.Now()
		if err := gw.Warm(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "warmed %d dataset(s) in %s\n",
			len(datasets), time.Since(t0).Round(time.Millisecond))
	}
	fmt.Fprintf(os.Stderr,
		"maliva gateway listening on %s (datasets=%s, default=%s, rewriter=%s, lazy=%v)\n",
		*addr, datasets.String(), gw.DefaultDataset(), *rewriter, *lazy)
	server := &http.Server{Addr: *addr, Handler: gw.Handler(), ReadHeaderTimeout: 5 * time.Second}
	if err := server.ListenAndServe(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "maliva-server:", err)
	os.Exit(1)
}
