// Command maliva-server runs the Maliva middleware as an HTTP gateway over
// one or more synthetic datasets: it registers each requested dataset,
// (optionally) trains an MDP agent per dataset at startup, then serves
// visualization requests at POST /viz?dataset=<name> with plan/result
// caching and one admission budget shared across datasets. POST
// /ingest?dataset=<name> appends rows through the adaptive write batcher
// (every flush bumps the dataset's data version, atomically invalidating
// all cached answers). GET /datasets, GET /healthz and GET /metrics expose
// the serving state, per dataset and rolled up.
//
//	maliva-server -dataset twitter -dataset taxi
//	curl -s 'localhost:8080/viz?dataset=twitter' -d '{
//	  "keyword": "word0007",
//	  "from": "2016-11-20T00:00:00Z", "to": "2016-11-27T00:00:00Z",
//	  "min_lon": -124.4, "min_lat": 32.5, "max_lon": -114.1, "max_lat": 42.0,
//	  "kind": "heatmap", "budget_ms": 500
//	}'
//
// Cluster modes (internal/cluster):
//
//	maliva-server -replicas 4                 # 4 in-process replicas behind
//	                                          # the consistent-hash router
//	maliva-server -replica-id 0 \             # one process per replica;
//	  -peer http://host0:8080 \               # peers share result caches
//	  -peer http://host1:8080                 # through /cluster endpoints
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/maliva/maliva/internal/cluster"
	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/engine"
	"github.com/maliva/maliva/internal/harness"
	"github.com/maliva/maliva/internal/middleware"
	"github.com/maliva/maliva/internal/qte"
	"github.com/maliva/maliva/internal/workload"
)

// stringList collects repeated (or comma-separated) flag values.
type stringList []string

func (d *stringList) String() string { return strings.Join(*d, ",") }

func (d *stringList) Set(v string) error {
	for _, name := range strings.Split(v, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		*d = append(*d, name)
	}
	return nil
}

// agentMap collects repeated path flags: "dataset=path" pins a path to one
// dataset; a bare "path" is the fallback for every dataset without a pinned
// one (the single-dataset spelling maliva-load -agent uses).
type agentMap map[string]string

func (a agentMap) String() string {
	parts := make([]string, 0, len(a))
	for k, v := range a {
		parts = append(parts, k+"="+v)
	}
	return strings.Join(parts, ",")
}

func (a agentMap) Set(v string) error {
	if name, path, ok := strings.Cut(v, "="); ok && !strings.Contains(name, "/") {
		a[name] = path
		return nil
	}
	a[""] = v
	return nil
}

// snapshotFor resolves the path serving a dataset, if any.
func (a agentMap) snapshotFor(dataset string) (string, bool) {
	if p, ok := a[dataset]; ok {
		return p, true
	}
	p, ok := a[""]
	return p, ok
}

// validatePins fails on a pinned dataset that is not served — a mistyped
// pin would otherwise silently fall through.
func (a agentMap) validatePins(flagName string, datasets stringList) {
	for name := range a {
		if name == "" {
			continue
		}
		if !slices.Contains(datasets, name) {
			fatal(fmt.Errorf("%s %s=%s pins a dataset that is not served (have: %s)",
				flagName, name, a[name], datasets.String()))
		}
	}
}

func main() {
	var datasets stringList
	flag.Var(&datasets, "dataset", "dataset to serve: twitter | taxi | tpch (repeatable or comma-separated; default twitter)")
	agents := make(agentMap)
	flag.Var(agents, "agent", "trained MDP policy snapshot (from maliva-train or -save-agent): 'dataset=path' pins one dataset, bare 'path' covers the rest; skips that dataset's startup training (repeatable)")
	saves := make(agentMap)
	flag.Var(saves, "save-agent", "persist the MDP policy trained at startup: 'dataset=path' or bare 'path' (repeatable); datasets that loaded an -agent snapshot skip training and are not re-saved")
	var peers stringList
	flag.Var(&peers, "peer", "full ordered replica URL list for a one-process-per-replica cluster, self included (repeatable); requires -replica-id")
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		budget      = flag.Float64("budget", 500, "default time budget in virtual ms")
		queries     = flag.Int("queries", 400, "training workload size per dataset")
		rows        = flag.Int("rows", 60_000, "stored rows per dataset")
		rewriter    = flag.String("rewriter", "mdp", "rewriting strategy: mdp (trains per dataset at startup) or oracle")
		lazy        = flag.Bool("lazy", false, "build datasets on first request (503 while warming) instead of at startup; ignored with -replicas > 1")
		warmWorkers = flag.Int("warm-workers", 0, "datasets warmed concurrently at startup (0 = GOMAXPROCS, 1 = serial)")

		replicas    = flag.Int("replicas", 1, "in-process replica count; > 1 serves the consistent-hash routing tier over that many gateway replicas with a peer-shared result cache")
		replicaID   = flag.Int("replica-id", -1, "this process's index into the -peer list")
		peerTimeout = flag.Duration("peer-timeout", cluster.DefaultPeerTimeout, "timeout for one peer cache round trip")
		peerSecret  = flag.String("peer-secret", "", "shared secret required on /cluster peer endpoints (all replicas must agree); without it anyone reaching the listener can read and poison the result cache")

		probeInterval    = flag.Duration("probe-interval", 0, "router health-probe interval per replica (0 = default 500ms)")
		probeFailAfter   = flag.Int("probe-fail-after", 0, "consecutive probe failures before a replica is marked down (0 = default 2)")
		probeRejoinAfter = flag.Int("probe-rejoin-after", 0, "consecutive probe successes before a down replica rejoins the routed set (0 = default 2)")
		probeBackoffMax  = flag.Duration("probe-backoff-max", 0, "cap on the exponential probe backoff while a replica stays down (0 = default 8x interval)")
		hedgeQuantile    = flag.Float64("hedge-quantile", 0, "peer-fetch latency quantile that arms the hedge timer (0 = default 0.9)")
		hedgeMinDelay    = flag.Duration("hedge-min-delay", 0, "floor on the hedge delay (0 = default 5ms)")
		hedgeMaxDelay    = flag.Duration("hedge-max-delay", 0, "cap on the hedge delay (0 = default half the peer timeout)")
		noHedge          = flag.Bool("no-hedge", false, "disable hedged peer fetches (single-fetch behavior)")

		planCache   = flag.Int("plan-cache", 0, "plan-cache entries per dataset (0 = default, negative = disable)")
		resultCache = flag.Int("result-cache", 0, "result-cache entries per dataset (0 = default, negative = disable)")
		resultTTL   = flag.Duration("result-ttl", 0, "result-cache TTL (0 = default 30s)")
		cacheShards = flag.Int("cache-shards", 0, "plan/result cache shards (0 = default 16)")
		maxConc     = flag.Int("max-concurrent", 0, "shared concurrent request limit (0 = default 4×GOMAXPROCS, negative = disable)")
		maxQueue    = flag.Int("max-queue", 0, "shared admission queue length (0 = default 256)")
		noCache     = flag.Bool("no-cache", false, "disable plan and result caches (baseline mode)")
		noPrefetch  = flag.Bool("no-prefetch", false, "disable session tracking and speculative tile prefetch")
		noSubsume   = flag.Bool("no-subsume", false, "disable answering requests by slicing a containing cached heatmap")

		walDir       = flag.String("wal-dir", "", "directory for per-dataset write-ahead logs (empty = durability off); sync /ingest acks become durable before they are sent, and startup replays any existing log while /healthz reports \"recovering\"")
		fsyncMode    = flag.String("fsync", "always", "WAL fsync policy: always (fsync before every sync ack), interval (background fsync, bounded loss window), never (OS page cache only)")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown budget: how long in-flight requests may finish after SIGTERM/SIGINT before the listener is torn down")
	)
	flag.Parse()

	if len(datasets) == 0 {
		datasets = stringList{"twitter"}
	}
	agents.validatePins("-agent", datasets)
	saves.validatePins("-save-agent", datasets)
	// A bare save path with several datasets would have concurrently-warming
	// trainers race os.WriteFile on one file (last writer wins at best,
	// interleaved corruption at worst).
	if _, bare := saves[""]; bare && len(datasets) > 1 {
		fatal(fmt.Errorf("-save-agent with a bare path serves %d datasets into one file; use 'dataset=path' pins", len(datasets)))
	}
	if *replicas > 1 && len(peers) > 0 {
		fatal(fmt.Errorf("-replicas (in-process cluster) and -peer (multi-process cluster) are mutually exclusive"))
	}
	if len(peers) > 0 && (*replicaID < 0 || *replicaID >= len(peers)) {
		fatal(fmt.Errorf("-replica-id %d outside the %d-entry -peer list", *replicaID, len(peers)))
	}
	if *walDir != "" && *replicas > 1 {
		// In-process replicas share the built dataset values; one WAL cannot
		// arbitrate N replicas' ingestors. Durable clusters run one process
		// per replica (-peer), each with its own log.
		fatal(fmt.Errorf("-wal-dir requires one process per replica (use -peer/-replica-id, not -replicas)"))
	}
	fsyncPolicy, err := engine.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		fatal(err)
	}
	walCfg := engine.WALConfig{Policy: fsyncPolicy}

	healthCfg := cluster.HealthConfig{
		Interval:    *probeInterval,
		FailAfter:   *probeFailAfter,
		RejoinAfter: *probeRejoinAfter,
		BackoffMax:  *probeBackoffMax,
	}
	hedgeCfg := cluster.HedgeConfig{
		Quantile: *hedgeQuantile,
		MinDelay: *hedgeMinDelay,
		MaxDelay: *hedgeMaxDelay,
		Disabled: *noHedge,
	}

	factory := buildFactory(*rewriter, agents, saves, *queries, *budget)
	scfg := middleware.ServerConfig{
		DefaultBudgetMs: *budget,
		PlanCacheSize:   *planCache,
		ResultCacheSize: *resultCache,
		ResultTTL:       *resultTTL,
		CacheShards:     *cacheShards,
		MaxConcurrent:   *maxConc,
		MaxQueue:        *maxQueue,
	}
	if *noCache {
		scfg.PlanCacheSize = -1
		scfg.ResultCacheSize = -1
	}
	scfg.DisableSubsumption = *noSubsume
	sessions := middleware.SessionConfig{Disabled: *noPrefetch}

	var handler http.Handler
	var drain func()          // stop admitting new work; in-flight requests finish
	var closeAll func() error // after Shutdown: flush ingest buffers, stop workers, sync+close WALs
	switch {
	case *replicas > 1:
		// In-process cluster: datasets are built eagerly (replicas share
		// the immutable values) and each replica warms its own gateway.
		t0 := time.Now()
		built := buildDatasets(datasets, *rows)
		cl, err := cluster.New(cluster.Config{
			Replicas:    *replicas,
			Names:       datasets,
			Datasets:    built,
			Factory:     factory,
			Server:      scfg,
			Space:       core.HintOnlySpec(),
			WarmWorkers: *warmWorkers,
			Health:      healthCfg,
			Hedge:       hedgeCfg,
			Sessions:    sessions,
		})
		if err != nil {
			fatal(err)
		}
		if err := cl.Warm(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "warmed %d replica(s) x %d dataset(s) in %s\n",
			*replicas, len(datasets), time.Since(t0).Round(time.Millisecond))
		fmt.Fprintf(os.Stderr,
			"maliva cluster router listening on %s (replicas=%d, datasets=%s, rewriter=%s)\n",
			*addr, *replicas, datasets.String(), *rewriter)
		handler = cl.Handler()
		drain = func() {
			for i := 0; i < *replicas; i++ {
				cl.Drain(i)
			}
		}
		closeAll = func() error {
			cl.Close()
			var first error
			for _, n := range cl.Nodes() {
				if err := n.Gateway().Close(); err != nil && first == nil {
					first = err
				}
			}
			return first
		}

	case len(peers) > 0:
		// One process per replica: this node serves its gateway plus the
		// /cluster peer endpoints; the other processes are reached over
		// HTTP. Routing across replicas is the load balancer's job — any
		// replica can serve any key through the peer-shared cache.
		ring := cluster.NewRing(len(peers), 0)
		reg, closeWALs := newRegistry(datasets, *rows, *walDir, walCfg)
		node, err := cluster.NewNode(*replicaID, ring, reg, factory, middleware.GatewayConfig{
			Server:      scfg,
			Space:       core.HintOnlySpec(),
			WarmWorkers: *warmWorkers,
			Sessions:    sessions,
		})
		if err != nil {
			fatal(err)
		}
		pcs := make([]cluster.PeerClient, len(peers))
		for i, u := range peers {
			if i != *replicaID {
				pcs[i] = cluster.NewHTTPPeer(strings.TrimSuffix(u, "/"), *peerTimeout, *peerSecret)
			}
		}
		node.SetPeers(pcs)
		node.SetPeerSecret(*peerSecret)
		node.SetHedge(hedgeCfg)
		if !*lazy {
			t0 := time.Now()
			if err := node.Warm(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "warmed %d dataset(s) in %s\n", len(datasets), time.Since(t0).Round(time.Millisecond))
		}
		fmt.Fprintf(os.Stderr,
			"maliva replica %d/%d listening on %s (datasets=%s, rewriter=%s)\n",
			*replicaID, len(peers), *addr, datasets.String(), *rewriter)
		handler = node.Handler()
		drain = node.Drain
		closeAll = func() error {
			node.Close()
			err := node.Gateway().Close()
			if werr := closeWALs(); werr != nil && err == nil {
				err = werr
			}
			return err
		}

	default:
		reg, closeWALs := newRegistry(datasets, *rows, *walDir, walCfg)
		gw, err := middleware.NewGateway(reg, factory, middleware.GatewayConfig{
			Server:      scfg,
			Space:       core.HintOnlySpec(),
			WarmWorkers: *warmWorkers,
			Sessions:    sessions,
		})
		if err != nil {
			fatal(err)
		}
		if !*lazy {
			t0 := time.Now()
			if err := gw.Warm(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "warmed %d dataset(s) in %s\n",
				len(datasets), time.Since(t0).Round(time.Millisecond))
		}
		fmt.Fprintf(os.Stderr,
			"maliva gateway listening on %s (datasets=%s, default=%s, rewriter=%s, lazy=%v)\n",
			*addr, datasets.String(), gw.DefaultDataset(), *rewriter, *lazy)
		handler = gw.Handler()
		drain = gw.Drain
		closeAll = func() error {
			err := gw.Close()
			if werr := closeWALs(); werr != nil && err == nil {
				err = werr
			}
			return err
		}
	}

	server := &http.Server{Addr: *addr, Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.ListenAndServe() }()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-serveErr:
		fatal(err)
	case sig := <-sigCh:
		// Graceful shutdown: flip to draining (healthz answers 503 so load
		// balancers and the cluster router fail over), let in-flight
		// requests finish under the drain budget, then flush ingest buffers
		// and sync+close the WALs. A second signal exits immediately.
		fmt.Fprintf(os.Stderr, "maliva-server: %s: draining (budget %s; signal again to force exit)\n", sig, *drainTimeout)
		go func() {
			<-sigCh
			fmt.Fprintln(os.Stderr, "maliva-server: forced exit")
			os.Exit(1)
		}()
		drain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		err := server.Shutdown(ctx)
		cancel()
		if cerr := closeAll(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "maliva-server: clean shutdown")
	}
}

// newRegistry registers the standard builders for the requested datasets.
// With a non-empty walDir each builder, after generating its dataset,
// attaches a write-ahead log at <walDir>/<name>: existing segments replay
// into the fresh dataset (the registry reports "recovering" meanwhile) and
// every subsequent ingest flush is logged before it is acknowledged. The
// returned closer syncs and closes every attached WAL; call it after the
// gateway (and its ingest buffers) have shut down.
func newRegistry(datasets stringList, rows int, walDir string, wcfg engine.WALConfig) (*workload.Registry, func() error) {
	reg := workload.NewRegistry()
	var mu sync.Mutex
	var wals []*engine.WAL
	for _, name := range datasets {
		build, err := workload.StandardBuilder(name, rows)
		if err != nil {
			fatal(err)
		}
		if walDir != "" {
			inner := build
			dir := filepath.Join(walDir, name)
			build = func() (*workload.Dataset, error) {
				ds, err := inner()
				if err != nil {
					return nil, err
				}
				reg.MarkRecovering(name)
				t0 := time.Now()
				wal, stats, err := ds.DB.AttachWAL(ds.Main, dir, wcfg)
				if err != nil {
					return nil, fmt.Errorf("attach WAL for %s: %w", name, err)
				}
				mu.Lock()
				wals = append(wals, wal)
				mu.Unlock()
				fmt.Fprintf(os.Stderr, "%s: WAL at %s (replayed %d records / %d rows to version %d in %s)\n",
					name, dir, stats.Records, stats.Rows, stats.Version, time.Since(t0).Round(time.Millisecond))
				return ds, nil
			}
		}
		if err := reg.Register(name, build); err != nil {
			fatal(err)
		}
	}
	closer := func() error {
		mu.Lock()
		defer mu.Unlock()
		var first error
		for _, w := range wals {
			if err := w.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	return reg, closer
}

// buildDatasets generates the requested datasets eagerly (the in-process
// cluster shares built values across replicas).
func buildDatasets(datasets stringList, rows int) map[string]*workload.Dataset {
	built := make(map[string]*workload.Dataset, len(datasets))
	for _, name := range datasets {
		build, err := workload.StandardBuilder(name, rows)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "building %d-row dataset %s...\n", rows, name)
		ds, err := build()
		if err != nil {
			fatal(err)
		}
		built[name] = ds
	}
	return built
}

// buildFactory resolves the per-dataset rewriter factory: oracle, snapshot
// load, or startup MDP training (optionally persisted via -save-agent).
func buildFactory(rewriter string, agents, saves agentMap, queries int, budget float64) middleware.RewriterFactory {
	switch rewriter {
	case "oracle":
		return middleware.OracleFactory
	case "mdp":
		return func(name string, ds *workload.Dataset) (core.Rewriter, error) {
			if path, ok := agents.snapshotFor(name); ok {
				t0 := time.Now()
				a, err := core.LoadAgentFile(path)
				if err != nil {
					return nil, err
				}
				fmt.Fprintf(os.Stderr, "%s: loaded agent snapshot %s in %s\n",
					name, path, time.Since(t0).Round(time.Millisecond))
				return &core.MDPRewriter{Agent: a, QTE: qte.NewAccurateQTE(), Tag: "Accurate-QTE"}, nil
			}
			fmt.Fprintf(os.Stderr, "training MDP agent for %s...\n", ds.Name)
			lab, err := harness.BuildLab(ds, harness.LabConfig{
				NumQueries: queries,
				QuerySpec:  workload.QuerySpec{NumPreds: 3, Seed: 5},
				Space:      core.HintOnlySpec(),
				Budget:     budget,
				Seed:       9,
				Progress:   os.Stderr,
			})
			if err != nil {
				return nil, err
			}
			est := qte.NewAccurateQTE()
			agent, score := lab.TrainAgent(harness.TrainAgentConfig{
				Agent: core.DefaultAgentConfig(),
				QTE:   est,
				Seeds: []int64{7},
			})
			fmt.Fprintf(os.Stderr, "%s agent ready (validation score %.3f)\n", ds.Name, score)
			if path, ok := saves.snapshotFor(name); ok {
				if err := core.SaveAgentFile(path, agent); err != nil {
					return nil, err
				}
				fmt.Fprintf(os.Stderr, "%s: policy snapshot saved to %s (reload with -agent %s=%s)\n",
					name, path, name, path)
			}
			return &core.MDPRewriter{Agent: agent, QTE: est, Tag: "Accurate-QTE"}, nil
		}
	default:
		fatal(fmt.Errorf("unknown -rewriter %q (want mdp or oracle)", rewriter))
		return nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "maliva-server:", err)
	os.Exit(1)
}
