// Command maliva-server runs the Maliva middleware as an HTTP service over
// the synthetic Twitter dataset: it (optionally) trains an MDP agent at
// startup, then serves visualization requests at POST /viz with plan/result
// caching and admission control. GET /healthz and GET /metrics expose the
// serving state.
//
//	curl -s localhost:8080/viz -d '{
//	  "keyword": "word0007",
//	  "from": "2016-11-20T00:00:00Z", "to": "2016-11-27T00:00:00Z",
//	  "min_lon": -124.4, "min_lat": 32.5, "max_lon": -114.1, "max_lat": 42.0,
//	  "kind": "heatmap", "budget_ms": 500
//	}'
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/harness"
	"github.com/maliva/maliva/internal/middleware"
	"github.com/maliva/maliva/internal/qte"
	"github.com/maliva/maliva/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		budget   = flag.Float64("budget", 500, "default time budget in virtual ms")
		queries  = flag.Int("queries", 400, "training workload size")
		rows     = flag.Int("rows", 60_000, "stored rows of the Twitter dataset")
		rewriter = flag.String("rewriter", "mdp", "rewriting strategy: mdp (trains at startup) or oracle")

		planCache   = flag.Int("plan-cache", 0, "plan-cache entries (0 = default, negative = disable)")
		resultCache = flag.Int("result-cache", 0, "result-cache entries (0 = default, negative = disable)")
		resultTTL   = flag.Duration("result-ttl", 0, "result-cache TTL (0 = default 30s)")
		maxConc     = flag.Int("max-concurrent", 0, "concurrent request limit (0 = default 4×GOMAXPROCS, negative = disable)")
		maxQueue    = flag.Int("max-queue", 0, "admission queue length (0 = default 256)")
		noCache     = flag.Bool("no-cache", false, "disable plan and result caches (baseline mode)")
	)
	flag.Parse()

	cfg := workload.TwitterConfig()
	cfg.Rows = *rows
	cfg.Scale = 100e6 / float64(cfg.Rows)
	ds, err := workload.Twitter(cfg)
	if err != nil {
		fatal(err)
	}

	var rw core.Rewriter
	switch *rewriter {
	case "oracle":
		rw = core.OracleRewriter{}
	case "mdp":
		fmt.Fprintln(os.Stderr, "training MDP agent on startup...")
		lab, err := harness.BuildLab(ds, harness.LabConfig{
			NumQueries: *queries,
			QuerySpec:  workload.QuerySpec{NumPreds: 3, Seed: 5},
			Space:      core.HintOnlySpec(),
			Budget:     *budget,
			Seed:       9,
			Progress:   os.Stderr,
		})
		if err != nil {
			fatal(err)
		}
		est := qte.NewAccurateQTE()
		agent, score := lab.TrainAgent(harness.TrainAgentConfig{
			Agent: core.DefaultAgentConfig(),
			QTE:   est,
			Seeds: []int64{7},
		})
		fmt.Fprintf(os.Stderr, "agent ready (validation score %.3f)\n", score)
		rw = &core.MDPRewriter{Agent: agent, QTE: est, Tag: "Accurate-QTE"}
	default:
		fatal(fmt.Errorf("unknown -rewriter %q (want mdp or oracle)", *rewriter))
	}

	scfg := middleware.ServerConfig{
		DefaultBudgetMs: *budget,
		PlanCacheSize:   *planCache,
		ResultCacheSize: *resultCache,
		ResultTTL:       *resultTTL,
		MaxConcurrent:   *maxConc,
		MaxQueue:        *maxQueue,
	}
	if *noCache {
		scfg.PlanCacheSize = -1
		scfg.ResultCacheSize = -1
	}
	srv, err := middleware.NewServerWithConfig(ds, rw, core.HintOnlySpec(), scfg)
	if err != nil {
		fatal(err)
	}
	c := srv.Config()
	fmt.Fprintf(os.Stderr,
		"maliva middleware listening on %s (rewriter=%s, plan-cache=%d, result-cache=%d, ttl=%s, max-concurrent=%d, queue=%d)\n",
		*addr, *rewriter, c.PlanCacheSize, c.ResultCacheSize, c.ResultTTL, c.MaxConcurrent, c.MaxQueue)
	server := &http.Server{Addr: *addr, Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	if err := server.ListenAndServe(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "maliva-server:", err)
	os.Exit(1)
}
