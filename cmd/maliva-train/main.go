// Command maliva-train trains an MDP query-rewriting agent on a workload and
// saves its policy network as JSON.
//
// Usage:
//
//	maliva-train -dataset twitter -budget 500 -out agent.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/harness"
	"github.com/maliva/maliva/internal/qte"
	"github.com/maliva/maliva/internal/workload"
)

func main() {
	var (
		dataset  = flag.String("dataset", "twitter", "dataset: twitter | taxi | tpch")
		budget   = flag.Float64("budget", 500, "time budget τ in virtual ms")
		numPreds = flag.Int("preds", 3, "number of filtering conditions (3-5)")
		queries  = flag.Int("queries", 600, "workload size")
		estName  = flag.String("qte", "accurate", "query-time estimator: accurate | sampling")
		out      = flag.String("out", "maliva-agent.json", "output policy file")
		small    = flag.Bool("small", true, "use reduced dataset size")
	)
	flag.Parse()

	ds, err := buildDataset(*dataset, *small)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "building workload: %d queries on %s\n", *queries, ds.Name)
	lab, err := harness.BuildLab(ds, harness.LabConfig{
		NumQueries: *queries,
		QuerySpec:  workload.QuerySpec{NumPreds: *numPreds, Seed: 5},
		Space:      core.HintOnlySpec(),
		Budget:     *budget,
		Seed:       9,
		Progress:   os.Stderr,
	})
	if err != nil {
		fatal(err)
	}

	var est core.Estimator
	switch *estName {
	case "accurate":
		est = qte.NewAccurateQTE()
	case "sampling":
		s, err := lab.NewSamplingQTE()
		if err != nil {
			fatal(err)
		}
		est = s
	default:
		fatal(fmt.Errorf("unknown QTE %q", *estName))
	}

	fmt.Fprintf(os.Stderr, "training MDP agent (%s, τ=%.0fms)\n", est.Name(), *budget)
	start := time.Now()
	agent, valScore := lab.TrainAgent(harness.TrainAgentConfig{
		Agent: core.DefaultAgentConfig(),
		QTE:   est,
		Seeds: []int64{7, 17},
	})
	fmt.Fprintf(os.Stderr, "trained in %s, validation score %.3f\n",
		time.Since(start).Round(time.Millisecond), valScore)

	if err := core.SaveAgentFile(*out, agent); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "policy saved to %s\n", *out)
}

func buildDataset(name string, small bool) (*workload.Dataset, error) {
	switch name {
	case "twitter":
		c := workload.TwitterConfig()
		if small {
			c.Rows = 60_000
			c.Scale = 100e6 / float64(c.Rows)
		}
		return workload.Twitter(c)
	case "taxi":
		c := workload.TaxiConfig()
		if small {
			c.Rows = 60_000
			c.Scale = 500e6 / float64(c.Rows)
		}
		return workload.Taxi(c)
	case "tpch":
		c := workload.TPCHConfig()
		if small {
			c.Rows = 60_000
			c.Scale = 300e6 / float64(c.Rows)
		}
		return workload.TPCH(c)
	}
	return nil, fmt.Errorf("unknown dataset %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "maliva-train:", err)
	os.Exit(1)
}
