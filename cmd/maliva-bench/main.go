// Command maliva-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	maliva-bench                 # run every experiment at full scale
//	maliva-bench -exp fig12      # run one experiment
//	maliva-bench -small          # reduced sizes (minutes instead of tens)
//	maliva-bench -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/maliva/maliva/internal/harness"
)

func main() {
	var (
		expID = flag.String("exp", "", "experiment id to run (default: all)")
		small = flag.Bool("small", false, "use reduced workload sizes")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		quiet = flag.Bool("quiet", false, "suppress progress output")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-7s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := harness.RunConfig{Small: *small}
	if !*quiet {
		cfg.Out = os.Stderr
	}

	var exps []harness.Experiment
	if *expID == "" {
		exps = harness.All()
	} else {
		for _, id := range strings.Split(*expID, ",") {
			e, ok := harness.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	for _, e := range exps {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running %s: %s\n", e.ID, e.Title)
		rep, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		rep.Write(os.Stdout)
		fmt.Fprintf(os.Stderr, "done %s in %s\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
