// Command maliva-bench regenerates the paper's tables and figures and
// benchmarks the offline pipeline.
//
// Usage:
//
//	maliva-bench                 # run every experiment at full scale
//	maliva-bench -exp fig12      # run one experiment
//	maliva-bench -small          # reduced sizes (minutes instead of tens)
//	maliva-bench -list           # list experiment ids
//	maliva-bench -procs 8        # cap worker parallelism (default: all cores)
//	maliva-bench -labbench       # serial-vs-parallel lab build speedup
//	maliva-bench -json out.json  # machine-readable wall-clock trajectory
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/harness"
	"github.com/maliva/maliva/internal/workload"
)

// expResult is one experiment's wall clock in the JSON trajectory.
type expResult struct {
	ID     string  `json:"id"`
	Title  string  `json:"title"`
	WallMs float64 `json:"wall_ms"`
}

// labBenchResult reports the serial-vs-parallel ground-truth pipeline
// comparison.
type labBenchResult struct {
	NumQueries    int     `json:"num_queries"`
	Rows          int     `json:"rows"`
	SerialMs      float64 `json:"serial_ms"`
	ParallelMs    float64 `json:"parallel_ms"`
	Speedup       float64 `json:"speedup"`
	WorkersUsed   int     `json:"workers_used"`
	Deterministic bool    `json:"deterministic"`
}

// benchReport is the top-level JSON snapshot (BENCH_<n>.json trajectory).
type benchReport struct {
	Timestamp   string          `json:"timestamp"`
	GoVersion   string          `json:"go_version"`
	Procs       int             `json:"procs"`
	Small       bool            `json:"small"`
	Experiments []expResult     `json:"experiments,omitempty"`
	LabBench    *labBenchResult `json:"lab_bench,omitempty"`
}

func main() {
	var (
		expID    = flag.String("exp", "", "experiment id to run (default: all)")
		small    = flag.Bool("small", false, "use reduced workload sizes")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		quiet    = flag.Bool("quiet", false, "suppress progress output")
		procs    = flag.Int("procs", 0, "GOMAXPROCS override (0 = all cores)")
		labbench = flag.Bool("labbench", false, "run the serial-vs-parallel lab-build comparison")
		jsonPath = flag.String("json", "", "write a machine-readable wall-clock report to this file")
	)
	flag.Parse()

	if *procs > 0 {
		runtime.GOMAXPROCS(*procs)
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-7s %s\n", e.ID, e.Title)
		}
		return
	}

	report := benchReport{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Procs:     runtime.GOMAXPROCS(0),
		Small:     *small,
	}

	if *labbench {
		lb, err := runLabBench(*small)
		if err != nil {
			fmt.Fprintf(os.Stderr, "labbench failed: %v\n", err)
			os.Exit(1)
		}
		report.LabBench = lb
		fmt.Printf("lab build: %d queries, %d rows, %d workers\n", lb.NumQueries, lb.Rows, lb.WorkersUsed)
		fmt.Printf("  serial   %8.1f ms\n", lb.SerialMs)
		fmt.Printf("  parallel %8.1f ms\n", lb.ParallelMs)
		fmt.Printf("  speedup  %8.2fx (deterministic: %v)\n", lb.Speedup, lb.Deterministic)
	} else {
		cfg := harness.RunConfig{Small: *small}
		if !*quiet {
			cfg.Out = os.Stderr
		}

		var exps []harness.Experiment
		if *expID == "" {
			exps = harness.All()
		} else {
			for _, id := range strings.Split(*expID, ",") {
				e, ok := harness.ByID(strings.TrimSpace(id))
				if !ok {
					fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", id)
					os.Exit(2)
				}
				exps = append(exps, e)
			}
		}

		for _, e := range exps {
			start := time.Now()
			fmt.Fprintf(os.Stderr, "running %s: %s\n", e.ID, e.Title)
			rep, err := e.Run(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.ID, err)
				os.Exit(1)
			}
			rep.Write(os.Stdout)
			wall := time.Since(start)
			report.Experiments = append(report.Experiments, expResult{
				ID: e.ID, Title: e.Title, WallMs: float64(wall.Microseconds()) / 1000,
			})
			fmt.Fprintf(os.Stderr, "done %s in %s\n\n", e.ID, wall.Round(time.Millisecond))
		}
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal report: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write report: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}
}

// runLabBench builds the same lab serially and with the worker pool,
// measures wall clock, and cross-checks that both pipelines produced
// bit-identical ground truth.
func runLabBench(small bool) (*labBenchResult, error) {
	dcfg := workload.TwitterConfig()
	numQueries := 120
	if small {
		dcfg.Rows = 20_000
		dcfg.Scale = 100e6 / float64(dcfg.Rows)
		numQueries = 24
	}
	lcfg := harness.LabConfig{
		NumQueries: numQueries,
		QuerySpec:  workload.QuerySpec{NumPreds: 3, Seed: 5},
		Space:      core.HintOnlySpec(),
		Budget:     500,
		Seed:       9,
	}

	// Independent datasets so neither run warms the other's stats cache.
	dsSerial, err := workload.Twitter(dcfg)
	if err != nil {
		return nil, err
	}
	dsParallel, err := workload.Twitter(dcfg)
	if err != nil {
		return nil, err
	}

	serialCfg := lcfg
	serialCfg.Parallel = 1
	t0 := time.Now()
	serialLab, err := harness.BuildLab(dsSerial, serialCfg)
	if err != nil {
		return nil, err
	}
	serialMs := float64(time.Since(t0).Microseconds()) / 1000

	parallelCfg := lcfg
	parallelCfg.Parallel = 0
	t1 := time.Now()
	parallelLab, err := harness.BuildLab(dsParallel, parallelCfg)
	if err != nil {
		return nil, err
	}
	parallelMs := float64(time.Since(t1).Microseconds()) / 1000

	deterministic := labsIdentical(serialLab, parallelLab)
	speedup := 0.0
	if parallelMs > 0 {
		speedup = serialMs / parallelMs
	}
	return &labBenchResult{
		NumQueries:    numQueries,
		Rows:          dcfg.Rows,
		SerialMs:      serialMs,
		ParallelMs:    parallelMs,
		Speedup:       speedup,
		WorkersUsed:   runtime.GOMAXPROCS(0),
		Deterministic: deterministic,
	}, nil
}

// labsIdentical compares the observable ground truth of two labs.
func labsIdentical(a, b *harness.Lab) bool {
	eq := func(x, y []*core.QueryContext) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i].Fingerprint != y[i].Fingerprint ||
				x[i].BaselineMs != y[i].BaselineMs ||
				x[i].BaselineOption != y[i].BaselineOption {
				return false
			}
			if len(x[i].TrueMs) != len(y[i].TrueMs) ||
				len(x[i].Quality) != len(y[i].Quality) ||
				len(x[i].SelSampled) != len(y[i].SelSampled) {
				return false
			}
			for j := range x[i].TrueMs {
				if x[i].TrueMs[j] != y[i].TrueMs[j] ||
					x[i].Quality[j] != y[i].Quality[j] {
					return false
				}
			}
			for j := range x[i].SelSampled {
				if x[i].SelSampled[j] != y[i].SelSampled[j] {
					return false
				}
			}
		}
		return true
	}
	return eq(a.Train, b.Train) && eq(a.Val, b.Val) && eq(a.Eval, b.Eval)
}
