// Crash drill (-crash): proves the durability contract end to end. A victim
// maliva-load process (self-exec'd with -crash-victim-wal) serves a WAL-backed
// gateway; the parent sync-ingests batches into it, SIGKILLs it mid-ingest,
// restarts it over the same log, and asserts that (a) every acknowledged row
// survived, (b) post-recovery reads are byte-identical to an uncrashed control
// gateway holding the same rows, and (c) /healthz reported "recovering" while
// the log replayed. A second phase SIGTERMs a victim under live read+write
// load and asserts a clean drain: zero in-flight requests torn, exit code 0,
// and a WAL whose replay reproduces exactly the acknowledged rows. A final
// in-process pass prices the fsync policies (sync-ack latency per policy).
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/engine"
	"github.com/maliva/maliva/internal/middleware"
	"github.com/maliva/maliva/internal/workload"
)

// crashBatchRows is the sync-ingest batch size; one batch is one WAL record,
// so recovered row counts must be whole multiples of it.
const crashBatchRows = 32

// crashReport is the -crash section of the JSON report.
type crashReport struct {
	// Kill-recovery phase.
	AckedRows       int64   `json:"acked_rows"`
	RecoveredRows   int64   `json:"recovered_rows"`
	LostAckedRows   int64   `json:"lost_acked_rows"`
	UnackedApplied  int64   `json:"unacked_applied_rows"`
	ReplayRecords   int64   `json:"replay_records"`
	ReplayTruncated bool    `json:"replay_truncated"`
	RecoverySec     float64 `json:"recovery_sec"`
	RecoveringSeen  bool    `json:"recovering_health_seen"`
	ReadChecks      int64   `json:"read_checks"`
	ReadMismatches  int64   `json:"read_mismatches"`

	// SIGTERM-under-load phase.
	DrainOKReads   int64 `json:"drain_ok_reads"`
	DrainRejected  int64 `json:"drain_rejected_reads"`
	DrainDropped   int64 `json:"drain_dropped_inflight"`
	DrainAckedRows int64 `json:"drain_acked_rows"`
	DrainWALRows   int64 `json:"drain_wal_rows"`
	DrainWALClean  bool  `json:"drain_wal_clean"`

	// Fsync-policy pricing.
	FsyncCosts []fsyncCost `json:"fsync_policies"`
}

// fsyncCost is one policy's sync-ingest acknowledgment latency.
type fsyncCost struct {
	Policy   string  `json:"policy"`
	Batches  int     `json:"batches"`
	AckP50Ms float64 `json:"ack_p50_ms"`
	AckP95Ms float64 `json:"ack_p95_ms"`
}

// ---------------------------------------------------------------------------
// Victim process
// ---------------------------------------------------------------------------

// runVictim is the re-exec'd server side of the crash drill: a single-dataset
// WAL-backed gateway on a loopback port, announcing its address and replay
// stats on stdout, shutting down gracefully on SIGTERM. It is the same wiring
// maliva-server -wal-dir uses, small enough to be SIGKILLed guilt-free.
func runVictim(walDir, fsyncMode string, rows int, budget float64) {
	policy, err := engine.ParseFsyncPolicy(fsyncMode)
	if err != nil {
		fatal(err)
	}
	var walMu sync.Mutex
	var wal *engine.WAL
	reg := workload.NewRegistry()
	build, err := workload.StandardBuilder("twitter", rows)
	if err != nil {
		fatal(err)
	}
	if err := reg.Register("twitter", func() (*workload.Dataset, error) {
		ds, err := build()
		if err != nil {
			return nil, err
		}
		reg.MarkRecovering("twitter")
		w, stats, err := ds.DB.AttachWAL(ds.Main, walDir, engine.WALConfig{Policy: policy})
		if err != nil {
			return nil, err
		}
		walMu.Lock()
		wal = w
		walMu.Unlock()
		fmt.Printf("VICTIM_REPLAY records=%d rows=%d truncated=%t version=%d\n",
			stats.Records, stats.CheckpointRows+stats.Rows, stats.Truncated, stats.Version)
		return ds, nil
	}); err != nil {
		fatal(err)
	}
	gw, err := middleware.NewGateway(reg, middleware.OracleFactory, middleware.GatewayConfig{
		Server:   middleware.ServerConfig{DefaultBudgetMs: budget},
		Space:    core.HintOnlySpec(),
		Sessions: middleware.SessionConfig{Disabled: true},
	})
	if err != nil {
		fatal(err)
	}
	// Warm in the background so /healthz can be observed reporting
	// "recovering" while the log replays.
	go func() {
		if err := gw.Warm(); err != nil {
			fmt.Fprintln(os.Stderr, "victim warm:", err)
			os.Exit(1)
		}
	}()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	fmt.Printf("VICTIM_ADDR http://%s\n", ln.Addr())
	server := &http.Server{Handler: gw.Handler()}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		<-sigCh
		gw.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := server.Shutdown(ctx)
		cancel()
		if cerr := gw.Close(); cerr != nil && err == nil {
			err = cerr
		}
		walMu.Lock()
		w := wal
		walMu.Unlock()
		if w != nil {
			if werr := w.Close(); werr != nil && err == nil {
				err = werr
			}
		}
		if err != nil {
			fatal(err)
		}
		os.Exit(0)
	}()
	if err := server.Serve(ln); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	select {} // the signal goroutine exits the process
}

// ---------------------------------------------------------------------------
// Parent-side victim management
// ---------------------------------------------------------------------------

// replayInfo is the victim's parsed VICTIM_REPLAY line.
type replayInfo struct {
	records   int64
	rows      int64
	truncated bool
}

// victimProc is one spawned victim server.
type victimProc struct {
	cmd      *exec.Cmd
	url      string
	replayCh chan replayInfo
	// recoveringSeen is set by waitReady when a /healthz poll caught the
	// dataset in the "recovering" state.
	recoveringSeen bool
}

// spawnVictim re-execs this binary as a WAL-backed victim server and waits
// for its listen address.
func spawnVictim(walDir, fsyncMode string, rows int, budget float64) *victimProc {
	cmd := exec.Command(os.Args[0],
		"-crash-victim-wal", walDir,
		"-fsync", fsyncMode,
		"-rows", strconv.Itoa(rows),
		"-budget", strconv.FormatFloat(budget, 'f', -1, 64),
	)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		fatal(err)
	}
	if err := cmd.Start(); err != nil {
		fatal(fmt.Errorf("crash: spawning victim: %w", err))
	}
	v := &victimProc{cmd: cmd, replayCh: make(chan replayInfo, 1)}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "VICTIM_ADDR "):
				addrCh <- strings.TrimPrefix(line, "VICTIM_ADDR ")
			case strings.HasPrefix(line, "VICTIM_REPLAY "):
				var ri replayInfo
				if _, err := fmt.Sscanf(line, "VICTIM_REPLAY records=%d rows=%d truncated=%t",
					&ri.records, &ri.rows, &ri.truncated); err == nil {
					v.replayCh <- ri
				}
			}
		}
	}()
	select {
	case v.url = <-addrCh:
	case <-time.After(3 * time.Minute):
		_ = cmd.Process.Kill()
		fatal(fmt.Errorf("crash: victim never announced its address"))
	}
	return v
}

// waitReady polls the victim's /healthz until the dataset is ready, noting
// whether any poll observed the "recovering" state on the way.
func (v *victimProc) waitReady(client *http.Client) time.Duration {
	start := time.Now()
	deadline := start.Add(3 * time.Minute)
	for {
		resp, err := client.Get(v.url + "/healthz")
		if err == nil {
			var health struct {
				Status   string            `json:"status"`
				Datasets map[string]string `json:"datasets"`
			}
			decErr := json.NewDecoder(resp.Body).Decode(&health)
			resp.Body.Close()
			if decErr == nil {
				if health.Status == "recovering" || health.Datasets["twitter"] == "recovering" {
					v.recoveringSeen = true
				}
				if health.Datasets["twitter"] == "ready" {
					return time.Since(start)
				}
			}
		}
		if time.Now().After(deadline) {
			_ = v.cmd.Process.Kill()
			fatal(fmt.Errorf("crash: victim never became ready"))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// replay returns the victim's startup replay stats (printed before the
// dataset turns ready, so after waitReady this never blocks for long).
func (v *victimProc) replay() replayInfo {
	select {
	case ri := <-v.replayCh:
		return ri
	case <-time.After(10 * time.Second):
		fatal(fmt.Errorf("crash: victim printed no replay stats"))
		return replayInfo{}
	}
}

// kill SIGKILLs the victim and reaps it — the crash under test.
func (v *victimProc) kill() {
	_ = v.cmd.Process.Kill()
	_, _ = v.cmd.Process.Wait()
}

// terminate SIGTERMs the victim and requires a clean (exit 0) shutdown.
func (v *victimProc) terminate(phase string) {
	if err := v.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		fatal(fmt.Errorf("crash: %s: signaling victim: %w", phase, err))
	}
	state, err := v.cmd.Process.Wait()
	if err != nil {
		fatal(fmt.Errorf("crash: %s: reaping victim: %w", phase, err))
	}
	if !state.Success() {
		fatal(fmt.Errorf("crash: %s: victim exited %s, want clean exit 0", phase, state))
	}
}

// ---------------------------------------------------------------------------
// The drill
// ---------------------------------------------------------------------------

// runCrash drives all three phases and fills report.Crash. Assertions fatal
// immediately (the drill's job is to fail loudly).
func runCrash(report *loadReport, built map[string]*workload.Dataset, shapes []shape, budget float64, rows int, seed int64, smoke bool) {
	killAfter, drainLoad := 20, 600*time.Millisecond
	fsyncBatches, readChecks := 150, 96
	if smoke {
		killAfter, drainLoad = 6, 250*time.Millisecond
		fsyncBatches, readChecks = 40, 32
	}
	client := &http.Client{Timeout: 30 * time.Second}
	cr := &crashReport{}
	report.Crash = cr

	// ---- Phase 1: SIGKILL mid-ingest, restart, verify zero acked loss ----
	walDir, err := os.MkdirTemp("", "maliva-crash-wal-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(walDir)

	fmt.Fprintf(os.Stderr, "crash: spawning victim (fsync=always, wal=%s)...\n", walDir)
	v1 := spawnVictim(walDir, "always", rows, budget)
	v1.waitReady(client)
	if ri := v1.replay(); ri.rows != 0 {
		fatal(fmt.Errorf("crash: fresh WAL replayed %d rows, want 0", ri.rows))
	}

	// Sync-ingest batches; once killAfter acks are in, SIGKILL the victim
	// while the writer keeps the wire hot — the crash lands mid-request.
	sendStream, err := workload.NewIngestStream(built["twitter"], seed+900)
	if err != nil {
		fatal(err)
	}
	var acked atomic.Int64
	killNow := make(chan struct{})
	var killOnce sync.Once
	writerDone := make(chan error, 1)
	go func() {
		for {
			batch := sendStream.Next(crashBatchRows)
			if err := postIngest(client, v1.url, "twitter", batch, true); err != nil {
				writerDone <- err
				return
			}
			if int(acked.Add(1)) >= killAfter {
				killOnce.Do(func() { close(killNow) })
			}
		}
	}()
	select {
	case <-killNow:
		v1.kill()
	case err := <-writerDone:
		fatal(fmt.Errorf("crash: writer died before the kill point: %v", err))
	}
	<-writerDone // the in-flight request fails against the dead process
	cr.AckedRows = acked.Load() * crashBatchRows

	// Restart over the same log and time the recovery.
	fmt.Fprintf(os.Stderr, "crash: victim killed after %d acked rows; restarting...\n", cr.AckedRows)
	v2 := spawnVictim(walDir, "always", rows, budget)
	recovery := v2.waitReady(client)
	cr.RecoverySec = recovery.Seconds()
	cr.RecoveringSeen = v2.recoveringSeen
	ri := v2.replay()
	cr.ReplayRecords, cr.RecoveredRows, cr.ReplayTruncated = ri.records, ri.rows, ri.truncated
	if cr.RecoveredRows < cr.AckedRows {
		cr.LostAckedRows = cr.AckedRows - cr.RecoveredRows
		fatal(fmt.Errorf("crash: LOST %d acknowledged rows (acked %d, recovered %d)",
			cr.LostAckedRows, cr.AckedRows, cr.RecoveredRows))
	}
	cr.UnackedApplied = cr.RecoveredRows - cr.AckedRows
	if cr.RecoveredRows%crashBatchRows != 0 {
		fatal(fmt.Errorf("crash: recovered %d rows is not whole batches of %d — a record was applied partially",
			cr.RecoveredRows, crashBatchRows))
	}

	// Byte-identity: an uncrashed control gateway ingests the exact batch
	// prefix the victim recovered (same seeded stream), then every shape
	// must read identically from both.
	ctrl := startGateway([]string{"twitter"}, built, budget, true, middleware.OracleFactory)
	defer ctrl.close()
	ctrlStream, err := workload.NewIngestStream(built["twitter"], seed+900)
	if err != nil {
		fatal(err)
	}
	for i := int64(0); i < cr.RecoveredRows/crashBatchRows; i++ {
		if err := postIngest(client, ctrl.url, "twitter", ctrlStream.Next(crashBatchRows), true); err != nil {
			fatal(fmt.Errorf("crash: control ingest: %v", err))
		}
	}
	if readChecks > len(shapes) {
		readChecks = len(shapes)
	}
	for i := 0; i < readChecks; i++ {
		sh := shapes[i]
		wantCode, want, err := fireRaw(client, ctrl.url, sh)
		if err != nil || wantCode != http.StatusOK {
			fatal(fmt.Errorf("crash: control read status %d, err %v", wantCode, err))
		}
		gotCode, got, err := fireRaw(client, v2.url, sh)
		if err != nil || gotCode != http.StatusOK {
			fatal(fmt.Errorf("crash: recovered read status %d, err %v", gotCode, err))
		}
		cr.ReadChecks++
		if !bytes.Equal(want, got) {
			cr.ReadMismatches++
		}
	}
	if cr.ReadMismatches > 0 {
		fatal(fmt.Errorf("crash: %d/%d post-recovery reads diverged from the uncrashed control",
			cr.ReadMismatches, cr.ReadChecks))
	}
	v2.terminate("phase 1 teardown")

	// ---- Phase 2: SIGTERM under live load drains cleanly ----
	walDir2, err := os.MkdirTemp("", "maliva-crash-wal-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(walDir2)
	fmt.Fprintf(os.Stderr, "crash: graceful-drain phase...\n")
	v3 := spawnVictim(walDir2, "always", rows, budget)
	v3.waitReady(client)

	// Readers dial a fresh connection per request (no keep-alive pooling):
	// reusing a pooled connection the shutting-down server just closed as
	// idle yields an EOF that is NOT a dropped in-flight request, and Go's
	// transport won't retry a POST. With fresh connections the outcomes are
	// unambiguous — dial refused means never accepted (clean), any error
	// after the dial means the server tore an accepted request (a drop).
	readClient := &http.Client{
		Timeout:   30 * time.Second,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
	var okReads, rejected, dropped atomic.Int64
	stopRead := make(chan struct{})
	var readWG sync.WaitGroup
	for w := 0; w < 4; w++ {
		readWG.Add(1)
		go func(w int) {
			defer readWG.Done()
			for i := w; ; i += 7 {
				select {
				case <-stopRead:
					return
				default:
				}
				code, _, err := fireRaw(readClient, v3.url, shapes[i%len(shapes)])
				switch {
				case err != nil && code == 0 && strings.Contains(err.Error(), "connection refused"):
					// The listener is gone — this request was never
					// accepted, so nothing in flight was dropped.
					return
				case err != nil && code == 0 && strings.Contains(err.Error(), "connection reset"):
					// Reset before any status line: the kernel handshook the
					// connection into the listen backlog but the server never
					// accepted it (listener closed underneath). The request
					// was never in flight server-side. The proof that no
					// *accepted* request was torn is server.Shutdown
					// returning nil — asserted via the victim's exit code.
					continue
				case err != nil:
					// A status line arrived and then the body tore, or some
					// other mid-request failure: a genuine dropped in-flight.
					dropped.Add(1)
				case code == http.StatusOK:
					okReads.Add(1)
				case code == http.StatusServiceUnavailable, code == http.StatusTooManyRequests:
					rejected.Add(1) // clean drain/admission rejection
				default:
					dropped.Add(1)
				}
			}
		}(w)
	}
	var acked2 atomic.Int64
	drainStream, err := workload.NewIngestStream(built["twitter"], seed+901)
	if err != nil {
		fatal(err)
	}
	writer2Done := make(chan struct{})
	go func() {
		defer close(writer2Done)
		for {
			if err := postIngest(client, v3.url, "twitter", drainStream.Next(crashBatchRows), false); err != nil {
				return // drained or listener closed: both are clean stops
			}
			acked2.Add(1)
			time.Sleep(time.Millisecond)
		}
	}()
	time.Sleep(drainLoad)
	v3.terminate("graceful drain under load")
	close(stopRead)
	readWG.Wait()
	<-writer2Done
	cr.DrainOKReads = okReads.Load()
	cr.DrainRejected = rejected.Load()
	cr.DrainDropped = dropped.Load()
	cr.DrainAckedRows = acked2.Load() * crashBatchRows
	if cr.DrainDropped > 0 {
		fatal(fmt.Errorf("crash: graceful drain dropped %d in-flight requests", cr.DrainDropped))
	}
	if cr.DrainOKReads == 0 {
		fatal(fmt.Errorf("crash: graceful-drain phase served no reads; the drill measured nothing"))
	}

	// The drained WAL must replay exactly the acknowledged rows, untorn.
	v4 := spawnVictim(walDir2, "always", rows, budget)
	v4.waitReady(client)
	ri4 := v4.replay()
	cr.DrainWALRows = ri4.rows
	cr.DrainWALClean = !ri4.truncated && ri4.rows == cr.DrainAckedRows
	v4.terminate("phase 2 teardown")
	if !cr.DrainWALClean {
		fatal(fmt.Errorf("crash: post-drain WAL replayed %d rows (truncated=%t), want exactly %d acked",
			ri4.rows, ri4.truncated, cr.DrainAckedRows))
	}

	// ---- Phase 3: price the fsync policies (sync-ack latency) ----
	fmt.Fprintf(os.Stderr, "crash: pricing fsync policies (%d sync batches each)...\n", fsyncBatches)
	for _, policy := range []string{"none", "always", "interval", "never"} {
		cr.FsyncCosts = append(cr.FsyncCosts, priceFsync(policy, fsyncBatches, budget, seed))
	}
}

// priceFsync measures the sync-ingest acknowledgment latency of one fsync
// policy over a fresh WAL-backed gateway ("none" = durability off baseline).
func priceFsync(policy string, batches int, budget float64, seed int64) fsyncCost {
	build, err := workload.StandardBuilder("twitter", 8_000)
	if err != nil {
		fatal(err)
	}
	ds, err := build()
	if err != nil {
		fatal(err)
	}
	var wal *engine.WAL
	if policy != "none" {
		pol, err := engine.ParseFsyncPolicy(policy)
		if err != nil {
			fatal(err)
		}
		dir, err := os.MkdirTemp("", "maliva-fsync-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		wal, _, err = ds.DB.AttachWAL(ds.Main, dir, engine.WALConfig{Policy: pol})
		if err != nil {
			fatal(err)
		}
	}
	srv := startGateway([]string{"twitter"}, map[string]*workload.Dataset{"twitter": ds}, budget, true, middleware.OracleFactory)
	defer srv.close()
	if wal != nil {
		defer wal.Close()
	}
	stream, err := workload.NewIngestStream(ds, seed+902)
	if err != nil {
		fatal(err)
	}
	client := &http.Client{Timeout: 30 * time.Second}
	lat := make([]float64, 0, batches)
	for i := 0; i < batches; i++ {
		t0 := time.Now()
		if err := postIngest(client, srv.url, "twitter", stream.Next(crashBatchRows), true); err != nil {
			fatal(fmt.Errorf("crash: fsync pricing (%s): %v", policy, err))
		}
		lat = append(lat, float64(time.Since(t0).Microseconds())/1000)
	}
	sort.Float64s(lat)
	return fsyncCost{
		Policy:   policy,
		Batches:  batches,
		AckP50Ms: pct(lat, 0.50),
		AckP95Ms: pct(lat, 0.95),
	}
}
