// Command maliva-load is a closed-loop load generator for the Maliva
// serving layer: N workers fire visualization requests back to back over a
// Zipf-skewed shape mix (hot pan/zoom shapes repeat, tail shapes don't) and
// report sustained QPS plus client-side latency quantiles, together with
// the server's own /metrics snapshot.
//
// Modes:
//
//	maliva-load -url http://host:8080          # drive a running maliva-server
//	maliva-load                                 # in-process server, one cached pass
//	maliva-load -compare -json BENCH_2.json     # uncached baseline vs cached pass
//	maliva-load -smoke                          # tiny CI pass (seconds), fails on errors
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/middleware"
	"github.com/maliva/maliva/internal/workload"
)

// shape is one request shape; the workload draws shapes Zipf-skewed so a
// hot subset dominates (what a pan/zoom session over popular keywords looks
// like) while the tail stays effectively uncacheable.
type shape struct {
	body []byte
}

// passReport is the result of one measured load pass.
type passReport struct {
	Name        string  `json:"name"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	Rejected    int64   `json:"rejected"`
	DurationSec float64 `json:"duration_sec"`
	QPS         float64 `json:"qps"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
	AvgMs       float64 `json:"avg_ms"`

	Server *middleware.MetricsSnapshot `json:"server_metrics,omitempty"`
}

// loadReport is the top-level JSON artifact (the BENCH_*.json trajectory).
type loadReport struct {
	Timestamp string  `json:"timestamp"`
	GoVersion string  `json:"go_version"`
	Procs     int     `json:"procs"`
	Rows      int     `json:"rows"`
	Shapes    int     `json:"shapes"`
	Workers   int     `json:"workers"`
	BudgetMs  float64 `json:"budget_ms"`
	ZipfS     float64 `json:"zipf_s"`

	Passes []passReport `json:"passes"`

	// Cached-vs-uncached headline numbers (compare mode only).
	QPSSpeedup    float64 `json:"qps_speedup,omitempty"`
	P95SpeedupX   float64 `json:"p95_speedup_x,omitempty"`
	P50SpeedupX   float64 `json:"p50_speedup_x,omitempty"`
	ResultHitRate float64 `json:"result_cache_hit_rate,omitempty"`
	PlanHitRate   float64 `json:"plan_cache_hit_rate,omitempty"`
}

func main() {
	var (
		url      = flag.String("url", "", "target a running server instead of in-process")
		rows     = flag.Int("rows", 60_000, "in-process Twitter dataset rows")
		workers  = flag.Int("c", 16, "closed-loop workers")
		duration = flag.Duration("duration", 10*time.Second, "measured time per pass")
		nShapes  = flag.Int("shapes", 200, "distinct request shapes")
		zipfS    = flag.Float64("zipf-s", 1.2, "shape popularity skew (Zipf s)")
		budget   = flag.Float64("budget", 500, "request budget_ms")
		seed     = flag.Int64("seed", 11, "workload seed")
		compare  = flag.Bool("compare", false, "run an uncached baseline pass, then a cached pass")
		jsonPath = flag.String("json", "", "write the report to this file")
		smoke    = flag.Bool("smoke", false, "tiny CI pass: small dataset, ~2s, exit non-zero on errors")
	)
	flag.Parse()

	if *zipfS <= 1 {
		fatal(fmt.Errorf("-zipf-s must be > 1 (got %v)", *zipfS))
	}
	if *smoke {
		*rows = 8_000
		*workers = 4
		*duration = time.Second
		*nShapes = 30
		*compare = true
	}

	shapes := makeShapes(*nShapes, *budget, *seed)
	report := loadReport{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Procs:     runtime.GOMAXPROCS(0),
		Rows:      *rows,
		Shapes:    *nShapes,
		Workers:   *workers,
		BudgetMs:  *budget,
		ZipfS:     *zipfS,
	}

	if *url != "" {
		rep := runPass("remote", *url, shapes, *workers, *duration, *zipfS, *seed, false)
		report.Passes = append(report.Passes, rep)
	} else {
		fmt.Fprintf(os.Stderr, "building %d-row Twitter dataset...\n", *rows)
		ds, err := workload.Twitter(withRows(*rows))
		if err != nil {
			fatal(err)
		}
		if *compare {
			base := startServer(ds, *budget, true)
			rep := runPass("uncached", base.url, shapes, *workers, *duration, *zipfS, *seed, false)
			report.Passes = append(report.Passes, rep)
			base.close()

			cached := startServer(ds, *budget, false)
			rep2 := runPass("cached", cached.url, shapes, *workers, *duration, *zipfS, *seed, true)
			report.Passes = append(report.Passes, rep2)
			cached.close()

			if rep2.QPS > 0 && rep.QPS > 0 {
				report.QPSSpeedup = rep2.QPS / rep.QPS
			}
			if rep2.P95Ms > 0 {
				report.P95SpeedupX = rep.P95Ms / rep2.P95Ms
			}
			if rep2.P50Ms > 0 {
				report.P50SpeedupX = rep.P50Ms / rep2.P50Ms
			}
			if rep2.Server != nil {
				report.ResultHitRate = rep2.Server.ResultHitRate
				report.PlanHitRate = rep2.Server.PlanHitRate
			}
		} else {
			srv := startServer(ds, *budget, false)
			rep := runPass("cached", srv.url, shapes, *workers, *duration, *zipfS, *seed, true)
			report.Passes = append(report.Passes, rep)
			srv.close()
		}
	}

	for _, p := range report.Passes {
		fmt.Printf("%-9s %7.0f req/s  p50 %7.3f ms  p95 %7.3f ms  p99 %7.3f ms  max %7.1f ms  (%d requests, %d errors, %d rejected)\n",
			p.Name, p.QPS, p.P50Ms, p.P95Ms, p.P99Ms, p.MaxMs, p.Requests, p.Errors, p.Rejected)
	}
	if report.QPSSpeedup > 0 {
		fmt.Printf("cached vs uncached: %.2fx QPS, %.2fx p50, %.2fx p95 (result hit rate %.0f%%, plan hit rate %.0f%%)\n",
			report.QPSSpeedup, report.P50SpeedupX, report.P95SpeedupX,
			100*report.ResultHitRate, 100*report.PlanHitRate)
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}

	for _, p := range report.Passes {
		if p.Errors > 0 {
			fatal(fmt.Errorf("pass %q saw %d request errors", p.Name, p.Errors))
		}
	}
	if *smoke {
		last := report.Passes[len(report.Passes)-1]
		if last.Server != nil && last.Server.ResultHits == 0 {
			fatal(fmt.Errorf("smoke: cached pass served no result-cache hits"))
		}
	}
}

func withRows(rows int) workload.Config {
	cfg := workload.TwitterConfig()
	cfg.Rows = rows
	cfg.Scale = 100e6 / float64(cfg.Rows)
	return cfg
}

// makeShapes builds the request-shape pool: popular keywords, week-to-month
// time windows, and pan/zoom tiles over the US extent.
func makeShapes(n int, budget float64, seed int64) []shape {
	rng := rand.New(rand.NewSource(seed))
	origin := time.Date(2015, 11, 1, 0, 0, 0, 0, time.UTC)
	const spanDays = 457
	ext := workload.USExtent
	shapes := make([]shape, n)
	for i := range shapes {
		// Zipf-ish keyword choice mirrors the generated vocabulary.
		word := fmt.Sprintf("word%04d", rng.Intn(60))
		days := 7 + rng.Intn(53)
		start := origin.AddDate(0, 0, rng.Intn(spanDays-days))
		// Zoom level 0–3: each level halves the viewport.
		z := rng.Intn(4)
		w := (ext.MaxLon - ext.MinLon) / float64(int(1)<<z)
		h := (ext.MaxLat - ext.MinLat) / float64(int(1)<<z)
		minLon := ext.MinLon + rng.Float64()*(ext.MaxLon-ext.MinLon-w)
		minLat := ext.MinLat + rng.Float64()*(ext.MaxLat-ext.MinLat-h)
		kind := "heatmap"
		if rng.Float64() < 0.1 {
			kind = "scatter"
		}
		body, _ := json.Marshal(map[string]any{
			"keyword": word,
			"from":    start.Format(time.RFC3339),
			"to":      start.AddDate(0, 0, days).Format(time.RFC3339),
			"min_lon": minLon, "min_lat": minLat,
			"max_lon": minLon + w, "max_lat": minLat + h,
			"kind": kind, "grid_w": 32, "grid_h": 16, "budget_ms": budget,
		})
		shapes[i] = shape{body: body}
	}
	return shapes
}

// inprocServer is an in-process maliva-server instance.
type inprocServer struct {
	url  string
	http *http.Server
	ln   net.Listener
}

// startServer serves the middleware over a loopback listener. uncached
// disables both caches (the baseline the serving layer is measured against).
func startServer(ds *workload.Dataset, budget float64, uncached bool) *inprocServer {
	cfg := middleware.ServerConfig{DefaultBudgetMs: budget}
	if uncached {
		cfg.PlanCacheSize = -1
		cfg.ResultCacheSize = -1
	}
	srv, err := middleware.NewServerWithConfig(ds, core.OracleRewriter{}, core.HintOnlySpec(), cfg)
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	return &inprocServer{url: "http://" + ln.Addr().String(), http: hs, ln: ln}
}

func (s *inprocServer) close() {
	_ = s.http.Close()
}

// runPass hammers the target with a closed loop of workers for d, after an
// optional warmup sweep that touches every shape once (steady-state cache
// behavior, not cold-start, is what the cached pass measures).
func runPass(name, url string, shapes []shape, workers int, d time.Duration, zipfS float64, seed int64, warmup bool) passReport {
	// The timeout bounds a wedged server: workers fail fast instead of
	// hanging the pass (and the CI smoke step) forever.
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        workers * 2,
			MaxIdleConnsPerHost: workers * 2,
		},
	}

	if warmup {
		for _, sh := range shapes {
			_, _, _ = fire(client, url, sh.body)
		}
	}

	var (
		total    atomic.Int64
		errs     atomic.Int64
		rejected atomic.Int64
		stop     atomic.Bool
		wg       sync.WaitGroup
	)
	latCh := make(chan []float64, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*7919))
			zipf := rand.NewZipf(rng, zipfS, 1, uint64(len(shapes)-1))
			lats := make([]float64, 0, 4096)
			for !stop.Load() {
				sh := shapes[zipf.Uint64()]
				t0 := time.Now()
				code, ok, err := fire(client, url, sh.body)
				lat := time.Since(t0)
				total.Add(1)
				switch {
				case err != nil || !ok:
					if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
						rejected.Add(1)
					} else {
						errs.Add(1)
					}
				default:
					lats = append(lats, float64(lat)/float64(time.Millisecond))
				}
			}
			latCh <- lats
		}(w)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	close(latCh)

	var lats []float64
	for l := range latCh {
		lats = append(lats, l...)
	}
	sort.Float64s(lats)
	rep := passReport{
		Name:        name,
		Requests:    total.Load(),
		Errors:      errs.Load(),
		Rejected:    rejected.Load(),
		DurationSec: elapsed.Seconds(),
		QPS:         float64(total.Load()) / elapsed.Seconds(),
		P50Ms:       pct(lats, 0.50),
		P95Ms:       pct(lats, 0.95),
		P99Ms:       pct(lats, 0.99),
		MaxMs:       pct(lats, 1),
	}
	if len(lats) > 0 {
		sum := 0.0
		for _, l := range lats {
			sum += l
		}
		rep.AvgMs = sum / float64(len(lats))
	}
	if snap := fetchMetrics(client, url); snap != nil {
		rep.Server = snap
	}
	return rep
}

// fire posts one request and drains the response.
func fire(client *http.Client, url string, body []byte) (code int, ok bool, err error) {
	resp, err := client.Post(url+"/viz", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	var sink json.RawMessage
	_ = json.NewDecoder(resp.Body).Decode(&sink)
	return resp.StatusCode, resp.StatusCode == http.StatusOK, nil
}

// fetchMetrics grabs the server's own counters.
func fetchMetrics(client *http.Client, url string) *middleware.MetricsSnapshot {
	resp, err := client.Get(url + "/metrics?format=json")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var snap middleware.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil
	}
	return &snap
}

func pct(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "maliva-load:", err)
	os.Exit(1)
}
