// Command maliva-load is a closed-loop load generator for the Maliva
// serving layer: N workers fire visualization requests back to back over a
// Zipf-skewed shape mix (hot pan/zoom shapes repeat, tail shapes don't)
// spanning one or more datasets behind a Gateway, and report sustained QPS
// plus client-side latency quantiles — overall and per dataset — together
// with the server's own /metrics snapshot.
//
// Modes:
//
//	maliva-load -url http://host:8080            # drive a running gateway
//	maliva-load                                   # in-process gateway, one cached pass
//	maliva-load -datasets twitter,taxi -compare   # cross-dataset uncached vs cached
//	maliva-load -agent maliva-agent.json          # drive a trained MDP snapshot
//	maliva-load -replicas 1,2,4                   # replica scaling compare: one
//	                                              # cached pass per count (1 = plain
//	                                              # gateway, >1 = routed cluster)
//	maliva-load -smoke                            # tiny CI pass (two datasets), fails on errors
//	maliva-load -replicas 2 -smoke                # tiny CI pass through the cluster router
//	maliva-load -replicas 3 -churn                # replica-churn drill: a healthy control
//	                                              # pass, then a pass that kills/drains
//	                                              # replicas mid-run; every 200 is checked
//	                                              # byte-identical against a reference
//	                                              # gateway and availability is asserted
//	maliva-load -ingest                           # live-ingestion drill: read QPS idle vs
//	                                              # under active writes, flush-latency
//	                                              # distribution, and a zero-stale-read
//	                                              # check against an uncached control
//	                                              # gateway after every synchronous flush
//	maliva-load -session                          # pan/zoom session benchmark: identical
//	                                              # seeded random-walk sessions replayed
//	                                              # against prefetch+subsumption OFF and
//	                                              # ON, byte-identity checked per step;
//	                                              # reports perceived-latency quantiles
//	                                              # and prefetch hit/waste rates
//	maliva-load -session -smoke                   # tiny CI pass: fails on any byte
//	                                              # mismatch, live rejection, or a cold
//	                                              # prefetch path
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/maliva/maliva/internal/cluster"
	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/engine"
	"github.com/maliva/maliva/internal/middleware"
	"github.com/maliva/maliva/internal/qte"
	"github.com/maliva/maliva/internal/workload"
)

// shape is one request shape against one dataset; the workload draws shapes
// Zipf-skewed so a hot subset dominates (what a pan/zoom session over
// popular keywords looks like) while the tail stays effectively uncacheable.
type shape struct {
	dataset string
	body    []byte
}

// datasetPass is the per-dataset slice of one measured pass.
type datasetPass struct {
	Name     string  `json:"name"`
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	Rejected int64   `json:"rejected"`
	QPS      float64 `json:"qps"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// passReport is the result of one measured load pass.
type passReport struct {
	Name        string  `json:"name"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	Rejected    int64   `json:"rejected"`
	DurationSec float64 `json:"duration_sec"`
	QPS         float64 `json:"qps"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`
	AvgMs       float64 `json:"avg_ms"`

	Datasets []datasetPass `json:"datasets,omitempty"`

	// Churn-drill fields (maliva-load -churn): Availability is the fraction
	// of requests answered 200 (503s during churn are the complement),
	// Mismatches counts 200s whose bytes diverged from the reference
	// gateway — the invariant the drill exists to check — and ChurnEvents
	// logs the lifecycle timeline the pass injected.
	Availability float64  `json:"availability,omitempty"`
	Mismatches   int64    `json:"mismatched_responses,omitempty"`
	ChurnEvents  []string `json:"churn_events,omitempty"`

	// Replicas and ResultHitRate are set by -replicas scaling passes:
	// ResultHitRate is gateway-wide for Replicas == 1 and cluster-wide
	// (local + peer hits over all replicas) for Replicas > 1.
	Replicas      int     `json:"replicas,omitempty"`
	ResultHitRate float64 `json:"result_cache_hit_rate,omitempty"`

	Server  *middleware.GatewayMetricsSnapshot `json:"server_metrics,omitempty"`
	Cluster *cluster.Snapshot                  `json:"cluster_metrics,omitempty"`
}

// loadReport is the top-level JSON artifact (the BENCH_*.json trajectory).
type loadReport struct {
	Timestamp string   `json:"timestamp"`
	GoVersion string   `json:"go_version"`
	Procs     int      `json:"procs"`
	Rows      int      `json:"rows"`
	Datasets  []string `json:"datasets"`
	Rewriter  string   `json:"rewriter"`
	Shapes    int      `json:"shapes"`
	Workers   int      `json:"workers"`
	BudgetMs  float64  `json:"budget_ms"`
	ZipfS     float64  `json:"zipf_s"`

	// ReplicaCounts is the -replicas scaling sweep, when one ran.
	ReplicaCounts []int `json:"replica_counts,omitempty"`

	Passes []passReport `json:"passes"`

	// Cached-vs-uncached headline numbers (compare mode only).
	QPSSpeedup    float64 `json:"qps_speedup,omitempty"`
	P95SpeedupX   float64 `json:"p95_speedup_x,omitempty"`
	P50SpeedupX   float64 `json:"p50_speedup_x,omitempty"`
	ResultHitRate float64 `json:"result_cache_hit_rate,omitempty"`
	PlanHitRate   float64 `json:"plan_cache_hit_rate,omitempty"`

	// Churn-drill headline numbers (churn mode only): availability under
	// churn, the churn-pass p95 as a multiple of the healthy control's, and
	// total byte-identity violations across both passes.
	ChurnAvailability float64 `json:"churn_availability,omitempty"`
	ChurnP95FactorX   float64 `json:"churn_p95_factor_x,omitempty"`
	ChurnMismatches   int64   `json:"churn_mismatches,omitempty"`

	// Ingest-drill headline numbers (ingest mode only): write-path volume
	// and flush-latency distribution from the server's own counters, the
	// active-writes read throughput as a fraction of idle, and the
	// stale-read check tally — StaleReads must be 0 (cached reads after a
	// flush byte-identical to an uncached control over the same data).
	IngestRows       int64   `json:"ingest_rows,omitempty"`
	IngestFlushes    int64   `json:"ingest_flushes,omitempty"`
	IngestFlushP50Ms float64 `json:"ingest_flush_p50_ms,omitempty"`
	IngestFlushP95Ms float64 `json:"ingest_flush_p95_ms,omitempty"`
	IngestFlushMaxMs float64 `json:"ingest_flush_max_ms,omitempty"`
	ActiveReadFactor float64 `json:"active_read_qps_factor,omitempty"`
	StaleChecks      int64   `json:"stale_read_checks,omitempty"`
	StaleReads       int64   `json:"stale_reads,omitempty"`

	// Session-drill headline numbers (session mode only): perceived-latency
	// speedups of the prefetch+subsumption ON pass over the OFF pass on the
	// identical traces, the byte-identity tally (must be 0), and the ON
	// pass's speculative-serving counters.
	SessionCount       int     `json:"session_count,omitempty"`
	SessionSteps       int     `json:"session_steps,omitempty"`
	ThinkMs            float64 `json:"think_ms,omitempty"`
	SessionP50SpeedupX float64 `json:"session_p50_speedup_x,omitempty"`
	SessionP95SpeedupX float64 `json:"session_p95_speedup_x,omitempty"`
	SessionMismatches  int64   `json:"session_mismatches,omitempty"`
	PrefetchIssued     int64   `json:"prefetch_issued,omitempty"`
	PrefetchHits       int64   `json:"prefetch_hits,omitempty"`
	PrefetchShed       int64   `json:"prefetch_shed,omitempty"`
	PrefetchComputed   int64   `json:"prefetch_computed,omitempty"`
	PrefetchHitRate    float64 `json:"prefetch_hit_rate,omitempty"`
	PrefetchWasteRate  float64 `json:"prefetch_waste_rate,omitempty"`
	SubsumedHits       int64   `json:"subsumed_hits,omitempty"`

	// Crash-drill results (crash mode only): the durability contract numbers
	// — acked-vs-recovered row accounting after a SIGKILL, recovery time,
	// byte-identity checks against an uncrashed control, graceful-drain
	// accounting under SIGTERM, and per-fsync-policy sync-ack latency.
	Crash *crashReport `json:"crash,omitempty"`

	// Approx-drill results (approx mode only): the budget-feasibility
	// frontier of the approximate tier vs the exact-only rewrite space
	// across virtual dataset scales, plus the error-contract and
	// exact-fallback check tallies.
	Approx *approxDrillReport `json:"approx,omitempty"`
}

func main() {
	var (
		url      = flag.String("url", "", "target a running gateway instead of in-process")
		rows     = flag.Int("rows", 60_000, "in-process rows per dataset")
		datasets = flag.String("datasets", "", "comma-separated datasets to mix (twitter | taxi | tpch; default twitter, smoke default twitter,taxi)")
		agent    = flag.String("agent", "", "drive a trained MDP agent snapshot (cmd/maliva-train output) instead of the Oracle")
		workers  = flag.Int("c", 16, "closed-loop workers")
		duration = flag.Duration("duration", 10*time.Second, "measured time per pass")
		nShapes  = flag.Int("shapes", 200, "distinct request shapes per dataset")
		zipfS    = flag.Float64("zipf-s", 1.2, "shape popularity skew (Zipf s)")
		budget   = flag.Float64("budget", 500, "request budget_ms")
		seed     = flag.Int64("seed", 11, "workload seed")
		compare  = flag.Bool("compare", false, "run an uncached baseline pass, then a cached pass")
		repList  = flag.String("replicas", "", "comma-separated replica counts for a scaling compare (e.g. 1,2,4): one cached pass per count — 1 drives a plain gateway, >1 an in-process cluster behind the consistent-hash router")
		jsonPath = flag.String("json", "", "write the report to this file")
		smoke    = flag.Bool("smoke", false, "tiny CI pass: small datasets, ~2s, exit non-zero on errors")
		churn    = flag.Bool("churn", false, "replica-churn drill over the -replicas count (default 3): a healthy control pass, then a pass with replicas killed/drained/revived mid-run; fails on any non-identical 200 or availability below 99%")
		ingest   = flag.Bool("ingest", false, "live-ingestion drill: idle and active-writes read passes, flush-latency distribution, and a zero-stale-read check against an uncached control gateway; fails on any stale read")
		crash    = flag.Bool("crash", false, "crash-recovery drill: SIGKILL a WAL-backed victim server mid-ingest, restart it, and assert zero acked-row loss plus byte-identical reads vs an uncrashed control; also SIGTERMs a victim under load (zero dropped in-flight) and prices the fsync policies")
		approx   = flag.Bool("approx", false, "approximation drill: rebuild twitter at 10-100x virtual scale and sweep budgets against an exact-only and an approximate-tier server; reports the per-class feasibility frontier and fails on any answer outside its stated error contract or any inexact unbounded-budget answer")

		crashVictim = flag.String("crash-victim-wal", "", "internal: run as the crash drill's victim server with this WAL directory (spawned by -crash, not for direct use)")
		fsyncMode   = flag.String("fsync", "always", "WAL fsync policy for the crash victim (always | interval | never)")

		session   = flag.Bool("session", false, "pan/zoom session benchmark: replay identical seeded random-walk sessions against prefetch+subsumption OFF and ON gateways, verify byte identity, and report perceived-latency quantiles and prefetch hit/waste rates")
		nSessions = flag.Int("sessions", 8, "concurrent simulated sessions (session mode)")
		sessSteps = flag.Int("session-steps", 60, "pan/zoom steps per session (session mode)")
		think     = flag.Duration("think", 250*time.Millisecond, "per-step think time between a session's requests (session mode); human-scale pan debounce, which leaves the idle gaps prefetch speculates into")
	)
	flag.Parse()

	if *crashVictim != "" {
		runVictim(*crashVictim, *fsyncMode, *rows, *budget)
		return
	}
	if *zipfS <= 1 {
		fatal(fmt.Errorf("-zipf-s must be > 1 (got %v)", *zipfS))
	}
	if *smoke {
		*rows = 8_000
		*workers = 4
		*duration = time.Second
		*nShapes = 30
		if *repList == "" && !*churn && !*ingest && !*session && !*crash && !*approx {
			*compare = true
		}
		if *session {
			*nSessions = 4
			*sessSteps = 20
			*think = 25 * time.Millisecond
			if *datasets == "" {
				*datasets = "twitter"
			}
		}
		if *datasets == "" {
			*datasets = "twitter,taxi"
		}
	}
	if *crash {
		for flagName, set := range map[string]bool{
			"-compare": *compare, "-replicas": *repList != "", "-churn": *churn,
			"-ingest": *ingest, "-session": *session, "-url": *url != "",
			"-approx": *approx,
		} {
			if set {
				fatal(fmt.Errorf("-crash and %s are mutually exclusive (the crash drill spawns its own victim servers)", flagName))
			}
		}
		if *agent != "" {
			fatal(fmt.Errorf("-crash and -agent are mutually exclusive (victim servers always serve the Oracle)"))
		}
		// The drill's victim and control must build byte-identical base data,
		// so the dataset is pinned.
		*datasets = "twitter"
	}
	if *approx {
		// Strictly its own mode: the drill builds its own scaled datasets and
		// its own exact/approximate server pair, so every other drill, remote
		// targeting, and agent policies are rejected loudly.
		for flagName, set := range map[string]bool{
			"-compare": *compare, "-replicas": *repList != "", "-churn": *churn,
			"-ingest": *ingest, "-session": *session, "-crash": *crash,
			"-url": *url != "", "-agent": *agent != "",
		} {
			if set {
				fatal(fmt.Errorf("-approx and %s are mutually exclusive (the approximation drill runs its own exact/approximate compare in-process)", flagName))
			}
		}
		// The drill needs the generated text vocabulary and spatial extent,
		// so the dataset is pinned.
		*datasets = "twitter"
	}
	if *datasets == "" {
		*datasets = "twitter"
	}
	names := splitNames(*datasets)
	if len(names) == 0 {
		fatal(fmt.Errorf("-datasets lists no datasets"))
	}
	if *session {
		// The session drill is strictly its own mode: it runs its own OFF/ON
		// compare over in-process gateways, so every other drill (and remote
		// targeting) is rejected loudly rather than silently ignored.
		for flagName, set := range map[string]bool{
			"-compare": *compare, "-replicas": *repList != "",
			"-churn": *churn, "-ingest": *ingest, "-url": *url != "",
			"-approx": *approx,
		} {
			if set {
				fatal(fmt.Errorf("-session and %s are mutually exclusive (the session drill runs its own OFF/ON compare in-process)", flagName))
			}
		}
		if *nSessions < 1 || *sessSteps < 2 {
			fatal(fmt.Errorf("-session needs -sessions >= 1 and -session-steps >= 2 (got %d, %d)", *nSessions, *sessSteps))
		}
		if *think < 0 {
			fatal(fmt.Errorf("-think must be >= 0 (got %v)", *think))
		}
	}
	if *churn {
		if *url != "" {
			fatal(fmt.Errorf("-churn builds in-process clusters; it cannot drive a remote -url"))
		}
		if *compare {
			fatal(fmt.Errorf("-churn and -compare are mutually exclusive (churn runs its own control pass)"))
		}
	}
	if *ingest {
		if *url != "" {
			fatal(fmt.Errorf("-ingest needs the in-process control gateway; it cannot drive a remote -url"))
		}
		if *compare || *churn || *repList != "" {
			fatal(fmt.Errorf("-ingest is its own drill; it excludes -compare, -churn, and -replicas"))
		}
	}
	var replicaCounts []int
	if *repList != "" {
		if *url != "" {
			fatal(fmt.Errorf("-replicas builds in-process clusters; it cannot drive a remote -url"))
		}
		if *compare {
			fatal(fmt.Errorf("-replicas and -compare are mutually exclusive (the replica sweep is its own compare)"))
		}
		for _, s := range strings.Split(*repList, ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			r, err := strconv.Atoi(s)
			if err != nil || r < 1 {
				fatal(fmt.Errorf("-replicas: bad count %q", s))
			}
			replicaCounts = append(replicaCounts, r)
		}
		if len(replicaCounts) == 0 {
			fatal(fmt.Errorf("-replicas lists no counts"))
		}
	}

	rewriterName := "oracle"
	if *agent != "" {
		rewriterName = "agent:" + *agent
	}
	report := loadReport{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Procs:     runtime.GOMAXPROCS(0),
		Rows:      *rows,
		Datasets:  names,
		Rewriter:  rewriterName,
		Shapes:    *nShapes,
		Workers:   *workers,
		BudgetMs:  *budget,
		ZipfS:     *zipfS,
	}

	if *approx {
		// The drill builds its own scaled datasets and servers; the generic
		// pass machinery (shapes, gateways, workers) never runs.
		runApprox(&report, *rows, *smoke)
	} else if *url != "" {
		shapes, err := remoteShapes(names, *nShapes, *budget, *seed)
		if err != nil {
			fatal(err)
		}
		rep := runPass("remote", *url, shapes, *workers, *duration, *zipfS, *seed, false)
		report.Passes = append(report.Passes, rep)
	} else {
		fmt.Fprintf(os.Stderr, "building %d-row dataset(s): %s...\n", *rows, strings.Join(names, ", "))
		built := make(map[string]*workload.Dataset, len(names))
		for _, name := range names {
			build, err := workload.StandardBuilder(name, *rows)
			if err != nil {
				fatal(err)
			}
			ds, err := build()
			if err != nil {
				fatal(err)
			}
			built[name] = ds
		}
		shapes := mixShapes(names, built, *nShapes, *budget, *seed)
		factory := middleware.OracleFactory
		if *agent != "" {
			factory = agentFactory(*agent)
		}
		if *session {
			runSessions(&report, names, built, factory, *budget, *nSessions, *sessSteps, *think, *seed)
		} else if *churn {
			r := 3
			if len(replicaCounts) > 0 {
				r = replicaCounts[0]
			}
			if r < 2 {
				fatal(fmt.Errorf("-churn needs at least 2 replicas (got %d)", r))
			}
			report.ReplicaCounts = []int{r}
			runChurn(&report, r, names, built, shapes, factory, *budget, *workers, *duration, *zipfS, *seed)
		} else if *ingest {
			runIngest(&report, names, built, shapes, factory, *budget, *workers, *duration, *zipfS, *seed)
		} else if *crash {
			runCrash(&report, built, shapes, *budget, *rows, *seed, *smoke)
		} else if len(replicaCounts) > 0 {
			// Replica scaling compare: one warm cached pass per count. The
			// hit rate is measured over the timed pass only (counter deltas
			// around it, after the warmup sweep) — cumulative rates would
			// punish whichever deployment processes fewer requests per cold
			// miss, which on a small box is an artifact of the pass length,
			// not of cache behavior.
			report.ReplicaCounts = replicaCounts
			client := &http.Client{Timeout: 30 * time.Second}
			for _, r := range replicaCounts {
				passName := fmt.Sprintf("replicas-%d", r)
				var rep passReport
				if r == 1 {
					srv := startGateway(names, built, *budget, false, factory)
					warmSweep(client, srv.url, shapes)
					before := fetchMetrics(client, srv.url)
					rep = runPass(passName, srv.url, shapes, *workers, *duration, *zipfS, *seed, false)
					rep.ResultHitRate = gatewayDeltaHitRate(before, rep.Server)
					srv.close()
				} else {
					srv, cl := startCluster(r, names, built, *budget, factory, cluster.HealthConfig{})
					warmSweep(client, srv.url, shapes)
					before := cl.Snapshot()
					rep = runPass(passName, srv.url, shapes, *workers, *duration, *zipfS, *seed, false)
					srv.close()
					snap := cl.Snapshot()
					cl.Close()
					// runPass decodes /metrics as a gateway snapshot, which a
					// cluster endpoint is not; the structured cluster snapshot
					// replaces it.
					rep.Server = nil
					rep.Cluster = &snap
					rep.ResultHitRate = deltaRate(
						snap.ResultHits-before.ResultHits,
						snap.ResultMisses-before.ResultMisses)
				}
				rep.Replicas = r
				report.Passes = append(report.Passes, rep)
			}
		} else if *compare {
			base := startGateway(names, built, *budget, true, factory)
			rep := runPass("uncached", base.url, shapes, *workers, *duration, *zipfS, *seed, false)
			report.Passes = append(report.Passes, rep)
			base.close()

			cached := startGateway(names, built, *budget, false, factory)
			rep2 := runPass("cached", cached.url, shapes, *workers, *duration, *zipfS, *seed, true)
			report.Passes = append(report.Passes, rep2)
			cached.close()

			if rep2.QPS > 0 && rep.QPS > 0 {
				report.QPSSpeedup = rep2.QPS / rep.QPS
			}
			if rep2.P95Ms > 0 {
				report.P95SpeedupX = rep.P95Ms / rep2.P95Ms
			}
			if rep2.P50Ms > 0 {
				report.P50SpeedupX = rep.P50Ms / rep2.P50Ms
			}
			if rep2.Server != nil {
				report.ResultHitRate, report.PlanHitRate = hitRates(rep2.Server)
			}
		} else {
			srv := startGateway(names, built, *budget, false, factory)
			rep := runPass("cached", srv.url, shapes, *workers, *duration, *zipfS, *seed, true)
			report.Passes = append(report.Passes, rep)
			srv.close()
		}
	}

	for _, p := range report.Passes {
		fmt.Printf("%-9s %7.0f req/s  p50 %7.3f ms  p95 %7.3f ms  p99 %7.3f ms  max %7.1f ms  (%d requests, %d errors, %d rejected)\n",
			p.Name, p.QPS, p.P50Ms, p.P95Ms, p.P99Ms, p.MaxMs, p.Requests, p.Errors, p.Rejected)
		if p.Replicas > 0 {
			fmt.Printf("  result-cache hit rate %.1f%%", 100*p.ResultHitRate)
			if p.Cluster != nil {
				var local, peer int64
				for _, rs := range p.Cluster.Replicas {
					local += rs.Cache.LocalHits
					peer += rs.Cache.PeerHits
				}
				fmt.Printf("  (local hits %d, peer hits %d)", local, peer)
			}
			fmt.Println()
		}
		if p.Availability > 0 {
			fmt.Printf("  availability %.2f%%  mismatches %d\n", 100*p.Availability, p.Mismatches)
		}
		for _, d := range p.Datasets {
			fmt.Printf("  %-12s %7.0f req/s  p50 %7.3f ms  p95 %7.3f ms  p99 %7.3f ms  (%d requests)\n",
				d.Name, d.QPS, d.P50Ms, d.P95Ms, d.P99Ms, d.Requests)
		}
	}
	if *churn && len(report.Passes) >= 2 {
		fmt.Printf("churn vs control: availability %.2f%%, p95 %.2fx, mismatches %d\n",
			100*report.ChurnAvailability, report.ChurnP95FactorX, report.ChurnMismatches)
	}
	if *session {
		fmt.Printf("session: ON vs OFF perceived latency %.2fx p50, %.2fx p95  (mismatches %d)\n",
			report.SessionP50SpeedupX, report.SessionP95SpeedupX, report.SessionMismatches)
		fmt.Printf("prefetch: issued %d  hits %d (%.0f%%)  shed %d  computed %d (waste %.0f%%)  subsumed hits %d\n",
			report.PrefetchIssued, report.PrefetchHits, 100*report.PrefetchHitRate,
			report.PrefetchShed, report.PrefetchComputed, 100*report.PrefetchWasteRate,
			report.SubsumedHits)
	}
	if *ingest {
		fmt.Printf("ingest: %d rows in %d flushes  flush p50 %.3f ms  p95 %.3f ms  max %.1f ms\n",
			report.IngestRows, report.IngestFlushes,
			report.IngestFlushP50Ms, report.IngestFlushP95Ms, report.IngestFlushMaxMs)
		fmt.Printf("stale reads: %d / %d post-flush checks  active/idle read QPS %.2fx\n",
			report.StaleReads, report.StaleChecks, report.ActiveReadFactor)
	}
	if *approx && report.Approx != nil {
		printApprox(report.Approx)
	}
	if *crash && report.Crash != nil {
		c := report.Crash
		fmt.Printf("crash: %d rows acked, %d recovered in %.2fs (lost %d, unacked-applied %d; replay %d records, truncated %t, recovering-state seen %t)\n",
			c.AckedRows, c.RecoveredRows, c.RecoverySec, c.LostAckedRows, c.UnackedApplied,
			c.ReplayRecords, c.ReplayTruncated, c.RecoveringSeen)
		fmt.Printf("  reads after recovery: %d/%d byte-identical to the uncrashed control\n",
			c.ReadChecks-c.ReadMismatches, c.ReadChecks)
		fmt.Printf("  graceful drain: %d reads ok, %d rejected cleanly, %d dropped in-flight; %d acked rows, WAL clean %t\n",
			c.DrainOKReads, c.DrainRejected, c.DrainDropped, c.DrainAckedRows, c.DrainWALClean)
		for _, f := range c.FsyncCosts {
			fmt.Printf("  fsync %-8s sync-ack p50 %7.3f ms  p95 %7.3f ms  (%d batches)\n",
				f.Policy, f.AckP50Ms, f.AckP95Ms, f.Batches)
		}
	}
	if len(replicaCounts) > 1 {
		base := report.Passes[0]
		for _, p := range report.Passes[1:] {
			if base.QPS > 0 && p.P95Ms > 0 {
				fmt.Printf("replicas %d vs %d: %.2fx QPS, %.2fx p95 (hit rate %.1f%% vs %.1f%%)\n",
					p.Replicas, base.Replicas, p.QPS/base.QPS, base.P95Ms/p.P95Ms,
					100*p.ResultHitRate, 100*base.ResultHitRate)
			}
		}
	}
	if report.QPSSpeedup > 0 {
		fmt.Printf("cached vs uncached: %.2fx QPS, %.2fx p50, %.2fx p95 (result hit rate %.0f%%, plan hit rate %.0f%%)\n",
			report.QPSSpeedup, report.P50SpeedupX, report.P95SpeedupX,
			100*report.ResultHitRate, 100*report.PlanHitRate)
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}

	for _, p := range report.Passes {
		if p.Errors > 0 {
			fatal(fmt.Errorf("pass %q saw %d request errors", p.Name, p.Errors))
		}
	}
	if *churn {
		if report.ChurnMismatches > 0 {
			fatal(fmt.Errorf("churn: %d responses diverged from the reference gateway", report.ChurnMismatches))
		}
		if report.ChurnAvailability < 0.99 {
			fatal(fmt.Errorf("churn: availability %.2f%% below the 99%% floor", 100*report.ChurnAvailability))
		}
	}
	if *session {
		if report.SessionMismatches > 0 {
			fatal(fmt.Errorf("session: %d ON-pass responses diverged from the OFF pass (subsumption/prefetch broke byte identity)", report.SessionMismatches))
		}
		for _, p := range report.Passes {
			if p.Rejected > 0 {
				// The session workload runs far below capacity, so any 429/503
				// means speculative admission stole a live request's slot.
				fatal(fmt.Errorf("session: pass %q rejected %d live requests", p.Name, p.Rejected))
			}
		}
		if *smoke {
			if report.PrefetchIssued == 0 {
				fatal(fmt.Errorf("session smoke: no prefetches were issued"))
			}
			if report.PrefetchHits == 0 {
				fatal(fmt.Errorf("session smoke: no prefetched tile was ever consumed"))
			}
			if report.SubsumedHits == 0 {
				fatal(fmt.Errorf("session smoke: no request was answered by containment slicing"))
			}
		}
	}
	if *approx && report.Approx != nil {
		assertApprox(report.Approx)
	}
	if *ingest {
		if report.StaleReads > 0 {
			fatal(fmt.Errorf("ingest: %d of %d post-flush reads diverged from the uncached control (stale cache)", report.StaleReads, report.StaleChecks))
		}
		if report.IngestFlushes == 0 {
			fatal(fmt.Errorf("ingest: the write path applied no flushes"))
		}
	}
	if *smoke && len(report.Passes) > 0 {
		last := report.Passes[len(report.Passes)-1]
		if last.Server != nil && !*ingest {
			if hits, _ := hitRates(last.Server); hits == 0 {
				fatal(fmt.Errorf("smoke: cached pass served no result-cache hits"))
			}
		}
		if last.Cluster != nil && last.Cluster.ResultHitRate == 0 {
			fatal(fmt.Errorf("smoke: cluster pass served no result-cache hits"))
		}
		for _, name := range names {
			served := false
			for _, d := range last.Datasets {
				if d.Name == name && d.Requests > 0 {
					served = true
				}
			}
			if !served {
				fatal(fmt.Errorf("smoke: dataset %q served no requests through the gateway", name))
			}
		}
	}
}

// runChurn runs the replica-churn drill: collect reference truth from a
// standalone gateway, then drive an R-replica cluster through a healthy
// control pass and a churn pass whose timeline kills, revives, drains, and
// rejoins replicas mid-run — verifying every 200 byte-for-byte against the
// reference along the way. Two invariants ride on this: responses never
// diverge no matter which replica absorbs a failed-over request, and
// availability holds because losing 1 of R replicas only fails over ~1/R of
// the key space.
func runChurn(report *loadReport, r int, names []string, built map[string]*workload.Dataset, shapes []shape, factory middleware.RewriterFactory, budget float64, workers int, d time.Duration, zipfS float64, seed int64) {
	client := &http.Client{Timeout: 30 * time.Second}
	ref := startGateway(names, built, budget, false, factory)
	expected := make([][]byte, len(shapes))
	for i, sh := range shapes {
		code, data, err := fireRaw(client, ref.url, sh)
		if err != nil || code != http.StatusOK {
			fatal(fmt.Errorf("churn reference: shape %d got status %d, err %v", i, code, err))
		}
		expected[i] = data
	}
	ref.close()

	// Probe cadence scaled to the pass, so demotion and rejoin both land
	// well inside the measured window.
	health := cluster.HealthConfig{Interval: d / 50, FailAfter: 1, RejoinAfter: 1}
	if health.Interval < 10*time.Millisecond {
		health.Interval = 10 * time.Millisecond
	}

	run := func(name string, mkEvents func(cl *cluster.Cluster) []churnEvent) passReport {
		srv, cl := startCluster(r, names, built, budget, factory, health)
		var events []churnEvent
		if mkEvents != nil {
			events = mkEvents(cl)
		}
		rep := runChurnPass(name, srv.url, shapes, expected, workers, d, zipfS, seed, events)
		srv.close()
		snap := cl.Snapshot()
		cl.Close()
		rep.Server = nil
		rep.Cluster = &snap
		rep.Replicas = r
		rep.ResultHitRate = snap.ResultHitRate
		return rep
	}

	ctrl := run("churn-control", nil)
	kill, drain := 1, r-1 // distinct victims; replica 0 always stays live
	if drain == kill {
		drain = 1 // two-replica cluster: one victim plays both parts
	}
	churnRep := run("churn", func(cl *cluster.Cluster) []churnEvent {
		return []churnEvent{
			{at: d / 4, label: fmt.Sprintf("kill replica %d", kill), action: func() { cl.Kill(kill) }},
			{at: d / 2, label: fmt.Sprintf("revive replica %d", kill), action: func() { cl.Revive(kill) }},
			{at: d * 13 / 20, label: fmt.Sprintf("drain replica %d", drain), action: func() { cl.Drain(drain) }},
			{at: d * 17 / 20, label: fmt.Sprintf("rejoin replica %d", drain), action: func() { cl.Rejoin(drain) }},
		}
	})
	report.Passes = append(report.Passes, ctrl, churnRep)
	report.ChurnAvailability = churnRep.Availability
	if ctrl.P95Ms > 0 {
		report.ChurnP95FactorX = churnRep.P95Ms / ctrl.P95Ms
	}
	report.ChurnMismatches = ctrl.Mismatches + churnRep.Mismatches
}

// runIngest runs the live-ingestion drill against one cached gateway:
//
//  1. an idle read pass (no writes) — the read-throughput baseline;
//  2. an active read pass with a background writer streaming batches through
//     POST /ingest, so the adaptive batcher's flushes keep bumping data
//     versions under the measured reads;
//  3. the stale-read check: an UNCACHED control gateway is started over the
//     SAME shared datasets, then a single writer loop alternates synchronous
//     flushes with byte-comparing cached responses against the control's
//     from-scratch recompute — while background readers keep racing the
//     cached gateway. One diverging byte means some cache layer (plan,
//     result, lookup, or peer) served a pre-flush answer; the drill fails.
//
// The control gateway shares the built *workload.Dataset values, so it
// always computes at exactly the data version the flush just produced.
func runIngest(report *loadReport, names []string, built map[string]*workload.Dataset, shapes []shape, factory middleware.RewriterFactory, budget float64, workers int, d time.Duration, zipfS float64, seed int64) {
	client := &http.Client{Timeout: 30 * time.Second}
	srv := startGateway(names, built, budget, false, factory)
	defer srv.close()

	streams := make(map[string]*workload.IngestStream, len(names))
	for _, name := range names {
		st, err := workload.NewIngestStream(built[name], seed+500)
		if err != nil {
			fatal(err)
		}
		streams[name] = st
	}

	idle := runPass("ingest-idle", srv.url, shapes, workers, d, zipfS, seed, true)
	report.Passes = append(report.Passes, idle)

	// Active pass: one background writer drip-feeds asynchronous batches,
	// sized and paced so both flush triggers fire (the size threshold on
	// bursts, the adaptive timer between them).
	var (
		stopWriter atomic.Bool
		writerWG   sync.WaitGroup
	)
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 0; !stopWriter.Load(); i++ {
			name := names[i%len(names)]
			if err := postIngest(client, srv.url, name, streams[name].Next(64), false); err != nil {
				fmt.Fprintf(os.Stderr, "ingest writer: %v\n", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	active := runPass("ingest-active", srv.url, shapes, workers, d, zipfS, seed+1, false)
	stopWriter.Store(true)
	writerWG.Wait()
	report.Passes = append(report.Passes, active)
	if idle.QPS > 0 {
		report.ActiveReadFactor = active.QPS / idle.QPS
	}

	// Stale-read check against the uncached control. Background readers
	// keep the cached gateway's caches hot and racing while the writer
	// flushes, so a stale entry that survives a version bump gets every
	// chance to be served.
	ctrl := startGateway(names, built, budget, true, factory)
	defer ctrl.close()
	var (
		stopReaders atomic.Bool
		readerWG    sync.WaitGroup
	)
	for w := 0; w < 2; w++ {
		readerWG.Add(1)
		go func(w int) {
			defer readerWG.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*31))
			for !stopReaders.Load() {
				_, _, _ = fire(client, srv.url, shapes[rng.Intn(len(shapes))])
			}
		}(w)
	}
	const checkRounds = 6
	perRound := len(shapes)
	if perRound > 48 {
		perRound = 48
	}
	var stale, checks int64
	for r := 0; r < checkRounds; r++ {
		name := names[r%len(names)]
		if err := postIngest(client, srv.url, name, streams[name].Next(32), true); err != nil {
			fatal(fmt.Errorf("ingest check: %v", err))
		}
		for j := 0; j < perRound; j++ {
			sh := shapes[(r*perRound+j)%len(shapes)]
			wantCode, want, err := fireRaw(client, ctrl.url, sh)
			if err != nil || wantCode != http.StatusOK {
				fatal(fmt.Errorf("ingest check: control got status %d, err %v", wantCode, err))
			}
			gotCode, got, err := fireRaw(client, srv.url, sh)
			if err != nil || gotCode != http.StatusOK {
				fatal(fmt.Errorf("ingest check: cached gateway got status %d, err %v", gotCode, err))
			}
			checks++
			if !bytes.Equal(want, got) {
				stale++
			}
		}
	}
	stopReaders.Store(true)
	readerWG.Wait()
	report.StaleChecks, report.StaleReads = checks, stale

	// Write-path volume and flush latencies from the server's own counters.
	if snap := fetchMetrics(client, srv.url); snap != nil {
		for _, m := range snap.Datasets {
			report.IngestRows += m.IngestRows
			report.IngestFlushes += m.IngestFlushes
			if m.IngestFlushes > 0 && m.FlushP95Ms >= report.IngestFlushP95Ms {
				report.IngestFlushP50Ms = m.FlushP50Ms
				report.IngestFlushP95Ms = m.FlushP95Ms
			}
			if m.FlushMaxMs > report.IngestFlushMaxMs {
				report.IngestFlushMaxMs = m.FlushMaxMs
			}
		}
	}
}

// postIngest sends one batch of wire-form rows to a gateway's write path.
func postIngest(client *http.Client, url, dataset string, rows []map[string]any, sync bool) error {
	body, err := json.Marshal(map[string]any{"rows": rows, "sync": sync})
	if err != nil {
		return err
	}
	resp, err := client.Post(url+"/ingest?dataset="+dataset, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ingest %s: status %d: %s", dataset, resp.StatusCode, bytes.TrimSpace(data))
	}
	return nil
}

// splitNames parses the -datasets list.
func splitNames(s string) []string {
	var out []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

// hitRates aggregates result/plan cache hit rates across every dataset the
// gateway serves.
func hitRates(snap *middleware.GatewayMetricsSnapshot) (result, plan float64) {
	var rh, rm, ph, pm int64
	for _, m := range snap.Datasets {
		rh += m.ResultHits
		rm += m.ResultMisses
		ph += m.PlanHits
		pm += m.PlanMisses
	}
	if rh+rm > 0 {
		result = float64(rh) / float64(rh+rm)
	}
	if ph+pm > 0 {
		plan = float64(ph) / float64(ph+pm)
	}
	return result, plan
}

// warmSweep touches every shape once so a measured pass starts from steady
// state (the same sweep runPass runs when asked to warm up).
func warmSweep(client *http.Client, url string, shapes []shape) {
	for _, sh := range shapes {
		_, _, _ = fire(client, url, sh)
	}
}

// deltaRate is hits/(hits+misses) over counter deltas.
func deltaRate(hits, misses int64) float64 {
	if hits+misses <= 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// gatewayDeltaHitRate computes the result-cache hit rate between two
// gateway snapshots (nil before means "from zero").
func gatewayDeltaHitRate(before, after *middleware.GatewayMetricsSnapshot) float64 {
	if after == nil {
		return 0
	}
	var hits, misses int64
	for _, m := range after.Datasets {
		hits += m.ResultHits
		misses += m.ResultMisses
	}
	if before != nil {
		for _, m := range before.Datasets {
			hits -= m.ResultHits
			misses -= m.ResultMisses
		}
	}
	return deltaRate(hits, misses)
}

// agentFactory loads a trained MDP policy snapshot per dataset (each Server
// serializes only its own rewriter, so instances must not be shared).
func agentFactory(path string) middleware.RewriterFactory {
	return func(name string, ds *workload.Dataset) (core.Rewriter, error) {
		a, err := core.LoadAgentFile(path)
		if err != nil {
			return nil, err
		}
		return &core.MDPRewriter{Agent: a, QTE: qte.NewAccurateQTE(), Tag: "Accurate-QTE"}, nil
	}
}

// mixShapes builds the cross-dataset request pool: n shapes per dataset,
// interleaved so the Zipf-hot head of the pool spans every dataset (the
// gateway's caches see concurrent hot traffic on each, not one dataset
// monopolizing the head).
func mixShapes(names []string, built map[string]*workload.Dataset, n int, budget float64, seed int64) []shape {
	perDS := make([][]shape, len(names))
	for i, name := range names {
		perDS[i] = makeShapes(name, built[name], n, budget, seed+int64(i)*101)
	}
	out := make([]shape, 0, len(names)*n)
	for j := 0; j < n; j++ {
		for i := range names {
			out = append(out, perDS[i][j])
		}
	}
	return out
}

// remoteShapes builds shapes for a running gateway by regenerating the
// datasets' metadata locally at tiny size (shape generation only reads
// vocabulary-independent metadata plus the generated keyword naming, which
// is deterministic per dataset).
func remoteShapes(names []string, n int, budget float64, seed int64) ([]shape, error) {
	built := make(map[string]*workload.Dataset, len(names))
	for _, name := range names {
		build, err := workload.StandardBuilder(name, 2_000)
		if err != nil {
			return nil, err
		}
		ds, err := build()
		if err != nil {
			return nil, err
		}
		built[name] = ds
	}
	return mixShapes(names, built, n, budget, seed), nil
}

// makeShapes builds one dataset's request-shape pool from its metadata:
// popular keywords when the dataset has a text column, week-to-month time
// windows over its temporal domain, and pan/zoom tiles over its spatial
// extent when it has one.
func makeShapes(name string, ds *workload.Dataset, n int, budget float64, seed int64) []shape {
	rng := rand.New(rand.NewSource(seed))
	t := ds.DB.Table(ds.Main)
	hasText := false
	for _, col := range ds.FilterCols {
		if t.HasColumn(col) && t.Col(col).Type == engine.ColText {
			hasText = true
			break
		}
	}
	ext := ds.Extent
	hasGeo := ext.Area() > 0
	spanDays := ds.TimeSpanDays
	shapes := make([]shape, n)
	for i := range shapes {
		req := map[string]any{
			"kind": "heatmap", "grid_w": 32, "grid_h": 16, "budget_ms": budget,
		}
		if rng.Float64() < 0.1 {
			req["kind"] = "scatter"
		}
		if hasText {
			// Zipf-ish keyword choice mirrors the generated vocabulary.
			req["keyword"] = fmt.Sprintf("word%04d", rng.Intn(60))
		}
		days := 7 + rng.Intn(53)
		start := ds.TimeOrigin.AddDate(0, 0, rng.Intn(spanDays-days))
		req["from"] = start.Format(time.RFC3339)
		req["to"] = start.AddDate(0, 0, days).Format(time.RFC3339)
		if hasGeo {
			// Zoom level 0–3: each level halves the viewport.
			z := rng.Intn(4)
			w := (ext.MaxLon - ext.MinLon) / float64(int(1)<<z)
			h := (ext.MaxLat - ext.MinLat) / float64(int(1)<<z)
			minLon := ext.MinLon + rng.Float64()*(ext.MaxLon-ext.MinLon-w)
			minLat := ext.MinLat + rng.Float64()*(ext.MaxLat-ext.MinLat-h)
			req["min_lon"], req["min_lat"] = minLon, minLat
			req["max_lon"], req["max_lat"] = minLon+w, minLat+h
		}
		body, _ := json.Marshal(req)
		shapes[i] = shape{dataset: name, body: body}
	}
	return shapes
}

// inprocGateway is an in-process multi-dataset gateway instance.
type inprocGateway struct {
	url  string
	http *http.Server
	ln   net.Listener
}

// startGateway serves every built dataset through one warm Gateway over a
// loopback listener. uncached disables both caches (the baseline the
// serving layer is measured against).
func startGateway(names []string, built map[string]*workload.Dataset, budget float64, uncached bool, factory middleware.RewriterFactory) *inprocGateway {
	cfg := middleware.ServerConfig{DefaultBudgetMs: budget}
	if uncached {
		cfg.PlanCacheSize = -1
		cfg.ResultCacheSize = -1
	}
	reg := workload.NewRegistry()
	for _, name := range names {
		ds := built[name]
		if err := reg.Register(name, func() (*workload.Dataset, error) { return ds, nil }); err != nil {
			fatal(err)
		}
	}
	gw, err := middleware.NewGateway(reg, factory, middleware.GatewayConfig{
		Server: cfg,
		Space:  core.HintOnlySpec(),
	})
	if err != nil {
		fatal(err)
	}
	if err := gw.Warm(); err != nil {
		fatal(err)
	}
	return serveGateway(gw.Handler())
}

// serveGateway serves a handler over a fresh loopback listener.
func serveGateway(h http.Handler) *inprocGateway {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: h}
	go func() { _ = hs.Serve(ln) }()
	return &inprocGateway{url: "http://" + ln.Addr().String(), http: hs, ln: ln}
}

func (s *inprocGateway) close() {
	_ = s.http.Close()
}

// startCluster serves every built dataset through an in-process R-replica
// cluster behind the consistent-hash routing tier, over a loopback
// listener. Replicas share the built datasets and (via the memoized
// factory) the rewriters, so only the serving state is per replica — the
// same sharing maliva-server -replicas uses.
func startCluster(replicas int, names []string, built map[string]*workload.Dataset, budget float64, factory middleware.RewriterFactory, health cluster.HealthConfig) (*inprocGateway, *cluster.Cluster) {
	cl, err := cluster.New(cluster.Config{
		Replicas: replicas,
		Names:    names,
		Datasets: built,
		Factory:  factory,
		Server:   middleware.ServerConfig{DefaultBudgetMs: budget},
		Space:    core.HintOnlySpec(),
		Health:   health,
	})
	if err != nil {
		fatal(err)
	}
	if err := cl.Warm(); err != nil {
		fatal(err)
	}
	return serveGateway(cl.Handler()), cl
}

// dsAccum accumulates one worker's per-dataset measurements.
type dsAccum struct {
	lats     []float64
	errors   int64
	rejected int64
	total    int64
}

// runPass hammers the target with a closed loop of workers for d, after an
// optional warmup sweep that touches every shape once (steady-state cache
// behavior, not cold-start, is what the cached pass measures).
func runPass(name, url string, shapes []shape, workers int, d time.Duration, zipfS float64, seed int64, warmup bool) passReport {
	// The timeout bounds a wedged server: workers fail fast instead of
	// hanging the pass (and the CI smoke step) forever.
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        workers * 2,
			MaxIdleConnsPerHost: workers * 2,
		},
	}

	if warmup {
		for _, sh := range shapes {
			_, _, _ = fire(client, url, sh)
		}
	}

	var (
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	accCh := make(chan map[string]*dsAccum, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*7919))
			zipf := rand.NewZipf(rng, zipfS, 1, uint64(len(shapes)-1))
			acc := make(map[string]*dsAccum)
			for !stop.Load() {
				sh := shapes[zipf.Uint64()]
				a := acc[sh.dataset]
				if a == nil {
					a = &dsAccum{lats: make([]float64, 0, 4096)}
					acc[sh.dataset] = a
				}
				t0 := time.Now()
				code, ok, err := fire(client, url, sh)
				lat := time.Since(t0)
				a.total++
				switch {
				case err != nil || !ok:
					if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
						a.rejected++
					} else {
						a.errors++
					}
				default:
					a.lats = append(a.lats, float64(lat)/float64(time.Millisecond))
				}
			}
			accCh <- acc
		}(w)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	close(accCh)

	rep := mergeAccum(name, elapsed, accCh)
	if snap := fetchMetrics(client, url); snap != nil {
		rep.Server = snap
	}
	return rep
}

// mergeAccum folds the workers' per-dataset accumulators into one report.
func mergeAccum(name string, elapsed time.Duration, accCh chan map[string]*dsAccum) passReport {
	merged := make(map[string]*dsAccum)
	for acc := range accCh {
		for ds, a := range acc {
			m := merged[ds]
			if m == nil {
				m = &dsAccum{}
				merged[ds] = m
			}
			m.lats = append(m.lats, a.lats...)
			m.errors += a.errors
			m.rejected += a.rejected
			m.total += a.total
		}
	}

	var all []float64
	rep := passReport{Name: name, DurationSec: elapsed.Seconds()}
	dsNames := make([]string, 0, len(merged))
	for ds := range merged {
		dsNames = append(dsNames, ds)
	}
	sort.Strings(dsNames)
	for _, ds := range dsNames {
		m := merged[ds]
		sort.Float64s(m.lats)
		rep.Datasets = append(rep.Datasets, datasetPass{
			Name:     ds,
			Requests: m.total,
			Errors:   m.errors,
			Rejected: m.rejected,
			QPS:      float64(m.total) / elapsed.Seconds(),
			P50Ms:    pct(m.lats, 0.50),
			P95Ms:    pct(m.lats, 0.95),
			P99Ms:    pct(m.lats, 0.99),
		})
		rep.Requests += m.total
		rep.Errors += m.errors
		rep.Rejected += m.rejected
		all = append(all, m.lats...)
	}
	sort.Float64s(all)
	rep.QPS = float64(rep.Requests) / elapsed.Seconds()
	rep.P50Ms = pct(all, 0.50)
	rep.P95Ms = pct(all, 0.95)
	rep.P99Ms = pct(all, 0.99)
	rep.MaxMs = pct(all, 1)
	if len(all) > 0 {
		sum := 0.0
		for _, l := range all {
			sum += l
		}
		rep.AvgMs = sum / float64(len(all))
	}
	return rep
}

// churnEvent is one scheduled lifecycle action inside a churn pass.
type churnEvent struct {
	at     time.Duration
	label  string
	action func()
}

// runChurnPass is runPass with per-request verification: every 200 must be
// byte-identical to the reference gateway's answer for the same shape, and
// 503s tally as unavailability rather than errors. events fire at fixed
// offsets into the measured window.
func runChurnPass(name, url string, shapes []shape, expected [][]byte, workers int, d time.Duration, zipfS float64, seed int64, events []churnEvent) passReport {
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        workers * 2,
			MaxIdleConnsPerHost: workers * 2,
		},
	}
	warmSweep(client, url, shapes)

	var (
		stop       atomic.Bool
		mismatches atomic.Int64
		wg, evWG   sync.WaitGroup
	)
	accCh := make(chan map[string]*dsAccum, workers)
	start := time.Now()

	if len(events) > 0 {
		evWG.Add(1)
		go func() {
			defer evWG.Done()
			for _, ev := range events {
				if wait := time.Until(start.Add(ev.at)); wait > 0 {
					time.Sleep(wait)
				}
				if stop.Load() {
					return
				}
				ev.action()
				fmt.Fprintf(os.Stderr, "%s: %s at +%s\n", name, ev.label, time.Since(start).Round(time.Millisecond))
			}
		}()
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*7919))
			zipf := rand.NewZipf(rng, zipfS, 1, uint64(len(shapes)-1))
			acc := make(map[string]*dsAccum)
			for !stop.Load() {
				idx := int(zipf.Uint64())
				sh := shapes[idx]
				a := acc[sh.dataset]
				if a == nil {
					a = &dsAccum{lats: make([]float64, 0, 4096)}
					acc[sh.dataset] = a
				}
				t0 := time.Now()
				code, data, err := fireRaw(client, url, sh)
				lat := time.Since(t0)
				a.total++
				switch {
				case err != nil:
					a.errors++
				case code == http.StatusOK:
					if !bytes.Equal(data, expected[idx]) {
						mismatches.Add(1)
					}
					a.lats = append(a.lats, float64(lat)/float64(time.Millisecond))
				case code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable:
					a.rejected++
				default:
					a.errors++
				}
			}
			accCh <- acc
		}(w)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	evWG.Wait()
	elapsed := time.Since(start)
	close(accCh)

	rep := mergeAccum(name, elapsed, accCh)
	rep.Mismatches = mismatches.Load()
	if rep.Requests > 0 {
		rep.Availability = float64(rep.Requests-rep.Rejected-rep.Errors) / float64(rep.Requests)
	}
	for _, ev := range events {
		rep.ChurnEvents = append(rep.ChurnEvents, fmt.Sprintf("+%s %s", ev.at.Round(time.Millisecond), ev.label))
	}
	return rep
}

// fire posts one request to its dataset's route and drains the response.
func fire(client *http.Client, url string, sh shape) (code int, ok bool, err error) {
	resp, err := client.Post(url+"/viz?dataset="+sh.dataset, "application/json", bytes.NewReader(sh.body))
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	var sink json.RawMessage
	_ = json.NewDecoder(resp.Body).Decode(&sink)
	return resp.StatusCode, resp.StatusCode == http.StatusOK, nil
}

// fireRaw posts one request and returns the full response bytes (what the
// churn drill compares against the reference gateway).
func fireRaw(client *http.Client, url string, sh shape) (code int, body []byte, err error) {
	resp, err := client.Post(url+"/viz?dataset="+sh.dataset, "application/json", bytes.NewReader(sh.body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, data, nil
}

// fetchMetrics grabs the gateway's own counters.
func fetchMetrics(client *http.Client, url string) *middleware.GatewayMetricsSnapshot {
	resp, err := client.Get(url + "/metrics?format=json")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var snap middleware.GatewayMetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil
	}
	return &snap
}

func pct(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "maliva-load:", err)
	os.Exit(1)
}
