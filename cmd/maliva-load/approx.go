// Approximation drill (-approx): maps the budget-feasibility frontier of the
// approximate-answer tier against the exact-only rewrite space. The twitter
// dataset is rebuilt at several virtual scales (stored rows stay fixed; the
// cost model's Scale factor is multiplied 10–100x), and at every scale a
// deterministic request mix — keyword counts, distinct-word counts, and
// heatmaps — is replayed across a ladder of budgets against two uncached
// servers: an exact arm (hint-only space, plain Oracle) and an approximate
// arm (sampling + sketch actions, quality-aware Oracle). Per (scale, class,
// budget) cell the drill records each arm's viable-plan rate, and for every
// approximate answer the observed error against ground truth is checked
// inside the response's own stated confidence interval (widened from the
// stated 95% to 99.9%, i.e. z 3.29 vs 1.96 — the statistical slack a bounded
// number of draws is entitled to). Two invariants ride on the drill: under a
// generous budget the approximate arm must fall back to byte-equal exact
// answers (the carve-out), and no approximate answer may sit outside its
// stated error contract.
package main

import (
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/engine"
	"github.com/maliva/maliva/internal/middleware"
	"github.com/maliva/maliva/internal/workload"
)

// ciSlack widens each response's stated 95% interval to a 99.9% acceptance
// band (z=3.29 over z=1.96): with hundreds of checks per run, a strict-95%
// gate would fail a healthy estimator one time in twenty by design.
const ciSlack = 3.29 / 1.96

// truthBudgetMs is the effectively-unbounded budget used for ground truth
// and for the exact-fallback check; every exact plan on every scale fits it.
const truthBudgetMs = 1e9

// approxCell is one (scale, class, budget) measurement.
type approxCell struct {
	Class    string  `json:"class"` // count | distinct | heatmap
	BudgetMs float64 `json:"budget_ms"`

	ExactViableRate  float64 `json:"exact_viable_rate"`
	ApproxViableRate float64 `json:"approx_viable_rate"`
	ApproxServedRate float64 `json:"approx_served_rate"`

	ExactP95ExecMs  float64 `json:"exact_p95_exec_ms"`
	ApproxP95ExecMs float64 `json:"approx_p95_exec_ms"`

	ErrChecks    int64   `json:"err_checks"`
	CIViolations int64   `json:"ci_violations"`
	MeanRelErr   float64 `json:"mean_rel_err"`
	MaxRelErr    float64 `json:"max_rel_err"`
}

// classFrontier is one request class's feasibility frontier at one scale:
// the smallest swept budget each arm can serve with a viable plan for every
// request of the class (0 = no swept budget sufficed).
type classFrontier struct {
	Class                  string  `json:"class"`
	ExactFeasibleBudgetMs  float64 `json:"exact_feasible_budget_ms"`
	ApproxFeasibleBudgetMs float64 `json:"approx_feasible_budget_ms"`
}

// approxScaleReport is one virtual-scale slice of the drill.
type approxScaleReport struct {
	Multiplier  float64         `json:"multiplier"`
	VirtualRows float64         `json:"virtual_rows"`
	Frontier    []classFrontier `json:"frontier"`
	Cells       []approxCell    `json:"cells"`
}

// approxDrillReport is the -approx section of the JSON report.
type approxDrillReport struct {
	Rows      int       `json:"rows"`
	Budgets   []float64 `json:"budgets_ms"`
	ErrChecks int64     `json:"err_checks"`
	// CIViolations counts approximate answers outside their own stated
	// (slack-widened) error contract; the drill fails unless 0.
	CIViolations int64   `json:"ci_violations"`
	WorstRelErr  float64 `json:"worst_rel_err"`
	// ExactPathChecks replays the mix under an unbounded budget on the
	// approximate arm: every answer must come back exact and equal to the
	// exact arm's — the bit-identity carve-out, exercised end to end.
	ExactPathChecks     int64 `json:"exact_path_checks"`
	ExactPathMismatches int64 `json:"exact_path_mismatches"`

	Scales []approxScaleReport `json:"scales"`
}

// approxProbe is one request shape of the drill mix.
type approxProbe struct {
	class string
	req   middleware.Request
}

// approxMix builds the deterministic request mix over one built dataset's
// metadata: popular and tail keywords, two window lengths, full-extent and
// quadrant viewports.
func approxMix(ds *workload.Dataset) []approxProbe {
	wide := [2]time.Time{ds.TimeOrigin.AddDate(0, 0, 30), ds.TimeOrigin.AddDate(0, 0, 90)}
	narrow := [2]time.Time{ds.TimeOrigin.AddDate(0, 0, 10), ds.TimeOrigin.AddDate(0, 0, 24)}
	windows := [][2]time.Time{wide, narrow}
	ext := ds.Extent
	quadrant := engine.Rect{
		MinLon: ext.MinLon, MinLat: ext.MinLat,
		MaxLon: (ext.MinLon + ext.MaxLon) / 2, MaxLat: (ext.MinLat + ext.MaxLat) / 2,
	}

	var probes []approxProbe
	for _, kw := range []string{"word0003", "word0007", "word0025", "word0041"} {
		for _, w := range windows {
			probes = append(probes, approxProbe{class: "count", req: middleware.Request{
				Kind: middleware.VizCount, Keyword: kw, From: w[0], To: w[1],
			}})
		}
	}
	for _, w := range windows {
		probes = append(probes, approxProbe{class: "distinct", req: middleware.Request{
			Kind: middleware.VizDistinct, From: w[0], To: w[1],
		}})
	}
	for _, kw := range []string{"word0003", "word0025"} {
		for _, region := range []engine.Rect{ext, quadrant} {
			probes = append(probes, approxProbe{class: "heatmap", req: middleware.Request{
				Kind: middleware.VizHeatmap, Keyword: kw, From: wide[0], To: wide[1],
				Region: region, GridW: 32, GridH: 16,
			}})
		}
	}
	return probes
}

// answerTotal reduces a response to the scalar the error contract is stated
// over: the aggregate value for count/distinct, the summed bin mass for
// heatmaps (sampling CIs bound the total matched-row estimate).
func answerTotal(resp *middleware.Response) float64 {
	if resp.Value != nil {
		return *resp.Value
	}
	var sum float64
	for _, v := range resp.Bins {
		sum += v
	}
	return sum
}

// sameAnswer compares only the answer surface (value, bins, points) — Trace
// legitimately differs across rewrite spaces.
func sameAnswer(a, b *middleware.Response) bool {
	if (a.Value == nil) != (b.Value == nil) {
		return false
	}
	if a.Value != nil && *a.Value != *b.Value {
		return false
	}
	if len(a.Bins) != len(b.Bins) || len(a.Points) != len(b.Points) {
		return false
	}
	for k, v := range a.Bins {
		if b.Bins[k] != v {
			return false
		}
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			return false
		}
	}
	return true
}

// insideContract checks one approximate answer against its own stated error
// bound (slack-widened; see ciSlack). Exact answers always pass.
func insideContract(resp *middleware.Response, truth float64) bool {
	if !resp.Approximate || resp.Approx == nil {
		return true
	}
	got := answerTotal(resp)
	const eps = 1e-9
	switch resp.Approx.Bound {
	case "exact-count":
		return math.Abs(got-truth) <= eps
	case "overestimate":
		return got >= truth-eps && got <= truth+ciSlack*resp.Approx.CIHalfWidth+eps
	case "truncation":
		return got <= truth+eps
	default: // two-sided
		return math.Abs(got-truth) <= ciSlack*resp.Approx.CIHalfWidth+eps
	}
}

// approxArm is one server-side of the drill at one scale.
type approxArm struct {
	name string
	srv  *middleware.Server
}

// newApproxArms builds the two uncached single-dataset servers over a
// freshly generated twitter dataset whose cost-model Scale is multiplied by
// mult (stored rows unchanged — only the virtual dataset grows).
func newApproxArms(rows int, mult float64) (exact, approx approxArm, ds *workload.Dataset, err error) {
	cfg := workload.TwitterConfig()
	if rows > 0 {
		cfg.Scale = cfg.Scale * float64(cfg.Rows) / float64(rows)
		cfg.Rows = rows
	}
	cfg.Scale *= mult
	ds, err = workload.Twitter(cfg)
	if err != nil {
		return exact, approx, nil, err
	}
	if _, err := ds.DB.Table(ds.Main).BuildSketch("text", "created_at", 24*time.Hour); err != nil {
		return exact, approx, nil, err
	}
	// Uncached and subsumption-free: every request is a fresh plan+execute,
	// so viability and error are properties of the rewrite space, not of
	// whatever an earlier budget happened to leave in a cache.
	scfg := middleware.ServerConfig{
		DefaultBudgetMs:    500,
		PlanCacheSize:      -1,
		ResultCacheSize:    -1,
		DisableSubsumption: true,
	}
	rw, err := middleware.OracleFactory("twitter", ds)
	if err != nil {
		return exact, approx, nil, err
	}
	es, err := middleware.NewServerWithConfig(ds, rw, core.HintOnlySpec(), scfg)
	if err != nil {
		return exact, approx, nil, err
	}
	as, err := middleware.NewServerWithConfig(ds, core.QualityOracle{}, core.ApproxTierSpec(), scfg)
	if err != nil {
		return exact, approx, nil, err
	}
	return approxArm{name: "exact", srv: es}, approxArm{name: "approx", srv: as}, ds, nil
}

// runApprox runs the drill and fills report.Approx.
func runApprox(report *loadReport, rows int, smoke bool) {
	mults := []float64{10, 30, 100}
	budgets := []float64{10, 25, 50, 100, 250, 1000, 2500, 10000, 25000, 100000}
	if smoke {
		mults = []float64{10, 100}
		budgets = []float64{10, 100, 1000, 10000, 100000}
	}
	drill := &approxDrillReport{Rows: rows, Budgets: budgets}

	for _, mult := range mults {
		fmt.Fprintf(os.Stderr, "approx drill: building twitter at %gx virtual scale...\n", mult)
		exact, approx, ds, err := newApproxArms(rows, mult)
		if err != nil {
			fatal(err)
		}
		probes := approxMix(ds)
		sr := approxScaleReport{
			Multiplier:  mult,
			VirtualRows: 100e6 * mult,
		}

		// Ground truth per probe, plus the exact-fallback (carve-out) check:
		// the approximate arm under an unbounded budget must answer exactly,
		// with the same bytes on the answer surface as the exact arm.
		truth := make([]float64, len(probes))
		for i, p := range probes {
			req := p.req
			req.BudgetMs = truthBudgetMs
			want, err := exact.srv.Handle(req)
			if err != nil {
				fatal(fmt.Errorf("approx drill: truth for probe %d: %w", i, err))
			}
			truth[i] = answerTotal(want)
			got, err := approx.srv.Handle(req)
			if err != nil {
				fatal(fmt.Errorf("approx drill: fallback for probe %d: %w", i, err))
			}
			drill.ExactPathChecks++
			if got.Approximate || !sameAnswer(want, got) {
				drill.ExactPathMismatches++
			}
		}

		// The budget sweep, one cell per (class, budget).
		feasible := map[string]*classFrontier{}
		for _, class := range []string{"count", "distinct", "heatmap"} {
			feasible[class] = &classFrontier{Class: class}
		}
		for _, budget := range budgets {
			cells := map[string]*approxCell{}
			exec := map[string]*[2][]float64{} // class -> [exact, approx] exec ms
			for _, class := range []string{"count", "distinct", "heatmap"} {
				cells[class] = &approxCell{Class: class, BudgetMs: budget}
				exec[class] = &[2][]float64{}
			}
			n := map[string]int{}
			for i, p := range probes {
				req := p.req
				req.BudgetMs = budget
				c := cells[p.class]
				n[p.class]++

				er, err := exact.srv.Handle(req)
				if err != nil {
					fatal(fmt.Errorf("approx drill: exact arm probe %d: %w", i, err))
				}
				if er.Trace.Viable {
					c.ExactViableRate++
				}
				ar, err := approx.srv.Handle(req)
				if err != nil {
					fatal(fmt.Errorf("approx drill: approx arm probe %d: %w", i, err))
				}
				if ar.Trace.Viable {
					c.ApproxViableRate++
				}
				exec[p.class][0] = append(exec[p.class][0], er.Trace.ExecMs)
				exec[p.class][1] = append(exec[p.class][1], ar.Trace.ExecMs)
				if ar.Approximate {
					c.ApproxServedRate++
					c.ErrChecks++
					drill.ErrChecks++
					rel := math.Abs(answerTotal(ar)-truth[i]) / math.Max(truth[i], 1)
					c.MeanRelErr += rel
					if rel > c.MaxRelErr {
						c.MaxRelErr = rel
					}
					if rel > drill.WorstRelErr {
						drill.WorstRelErr = rel
					}
					if !insideContract(ar, truth[i]) {
						c.CIViolations++
						drill.CIViolations++
					}
				}
			}
			for _, class := range []string{"count", "distinct", "heatmap"} {
				c := cells[class]
				total := float64(n[class])
				if c.ErrChecks > 0 {
					c.MeanRelErr /= float64(c.ErrChecks)
				}
				c.ExactViableRate /= total
				c.ApproxViableRate /= total
				c.ApproxServedRate /= total
				sort.Float64s(exec[class][0])
				sort.Float64s(exec[class][1])
				c.ExactP95ExecMs = pct(exec[class][0], 0.95)
				c.ApproxP95ExecMs = pct(exec[class][1], 0.95)
				f := feasible[class]
				if c.ExactViableRate == 1 && f.ExactFeasibleBudgetMs == 0 {
					f.ExactFeasibleBudgetMs = budget
				}
				if c.ApproxViableRate == 1 && f.ApproxFeasibleBudgetMs == 0 {
					f.ApproxFeasibleBudgetMs = budget
				}
				sr.Cells = append(sr.Cells, *c)
			}
		}
		for _, class := range []string{"count", "distinct", "heatmap"} {
			sr.Frontier = append(sr.Frontier, *feasible[class])
		}
		drill.Scales = append(drill.Scales, sr)
	}
	report.Approx = drill
}

// printApprox renders the drill's headline numbers.
func printApprox(d *approxDrillReport) {
	for _, sr := range d.Scales {
		fmt.Printf("approx %gx (%.0g virtual rows):\n", sr.Multiplier, sr.VirtualRows)
		for _, f := range sr.Frontier {
			fmt.Printf("  %-8s exact feasible %s  approx feasible %s\n",
				f.Class, feasibleStr(f.ExactFeasibleBudgetMs), feasibleStr(f.ApproxFeasibleBudgetMs))
		}
	}
	fmt.Printf("approx error contract: %d checks, %d violations, worst rel err %.2f%%\n",
		d.ErrChecks, d.CIViolations, 100*d.WorstRelErr)
	fmt.Printf("exact fallback (carve-out): %d checks, %d mismatches\n",
		d.ExactPathChecks, d.ExactPathMismatches)
}

func feasibleStr(b float64) string {
	if b == 0 {
		return "never (in sweep)"
	}
	return fmt.Sprintf("at %g ms", b)
}

// assertApprox enforces the drill's pass/fail contract.
func assertApprox(d *approxDrillReport) {
	if d.ExactPathMismatches > 0 {
		fatal(fmt.Errorf("approx: %d of %d unbounded-budget answers on the approximate arm diverged from the exact arm (carve-out broken)", d.ExactPathMismatches, d.ExactPathChecks))
	}
	if d.CIViolations > 0 {
		fatal(fmt.Errorf("approx: %d of %d approximate answers landed outside their stated error contract", d.CIViolations, d.ErrChecks))
	}
	if d.ErrChecks == 0 {
		fatal(fmt.Errorf("approx: the approximate arm never served an approximate answer — no budget in the sweep exercised the tier"))
	}
	// The headline claim: at every scale, some request class is budget-
	// feasible on the approximate arm strictly below (or despite) the exact
	// arm's frontier.
	for _, sr := range d.Scales {
		ahead := false
		for _, f := range sr.Frontier {
			if f.ApproxFeasibleBudgetMs > 0 &&
				(f.ExactFeasibleBudgetMs == 0 || f.ApproxFeasibleBudgetMs < f.ExactFeasibleBudgetMs) {
				ahead = true
			}
		}
		if !ahead {
			fatal(fmt.Errorf("approx: at %gx no request class was feasible under a budget the exact space could not meet", sr.Multiplier))
		}
	}
}
