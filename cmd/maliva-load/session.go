package main

// Session mode (maliva-load -session): a pan/zoom session benchmark for the
// speculative-prefetch + request-subsumption serving path.
//
// Each simulated session is a seeded random walk over the dataset's
// power-of-two tile lattice — mostly momentum pans, occasional turns, zoom
// ins and zoom outs — with a fixed per-session keyword and time window (a
// browser tab exploring one query). Tile grids halve with the viewport
// (z=0 ⇒ 128×64 … z=3 ⇒ 16×8), so every request in a session has the same
// geographic cell size and every zoom-in is exactly grid-aligned inside its
// parent viewport: the workload exercises both the exact-key prefetch path
// (momentum, zoom-out) and the containment-slicing path (zoom-in).
//
// The drill replays the IDENTICAL traces four times on fresh gateways in a
// counterbalanced OFF, ON, ON, OFF order (see runSessions for why), with
// the same per-step think time, compares every ON response byte-for-byte
// against its OFF counterpart, and reports per-arm perceived (client-side)
// latency quantiles plus the server's prefetch hit/waste counters.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime/pprof"
	"sync"
	"time"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/middleware"
	"github.com/maliva/maliva/internal/workload"
)

// sessionTrace is one simulated pan/zoom session: an ordered request list
// against one dataset, replayed identically in both passes.
type sessionTrace struct {
	dataset string
	id      string
	steps   [][]byte
}

// genSessionTraces builds n deterministic session traces (session i is a
// pure function of seed+i), round-robining sessions across datasets.
func genSessionTraces(names []string, built map[string]*workload.Dataset, n, steps int, budget float64, seed int64) []sessionTrace {
	traces := make([]sessionTrace, n)
	for i := range traces {
		name := names[i%len(names)]
		traces[i] = genSessionTrace(name, built[name], fmt.Sprintf("sess-%03d", i), steps, budget, seed+1000*int64(i))
	}
	return traces
}

// genSessionTrace random-walks one session. Transition mix per step:
// ~55% continue panning (momentum), ~15% turn, ~15% zoom in, ~15% zoom out
// — the shape interactive map exploration takes. Pans that hit the extent
// boundary bounce.
func genSessionTrace(name string, ds *workload.Dataset, id string, steps int, budget float64, seed int64) sessionTrace {
	rng := rand.New(rand.NewSource(seed))
	ext := ds.Extent

	keyword := fmt.Sprintf("word%04d", rng.Intn(60))
	days := 7 + rng.Intn(53)
	from := ds.TimeOrigin.AddDate(0, 0, rng.Intn(ds.TimeSpanDays-days))
	to := from.AddDate(0, 0, days)

	z := 2
	kx, ky := rng.Intn(1<<z), rng.Intn(1<<z)
	dx, dy := 1, 0
	if rng.Intn(2) == 0 {
		dx, dy = 0, 1
	}
	if rng.Intn(2) == 0 {
		dx, dy = -dx, -dy
	}

	tr := sessionTrace{dataset: name, id: id, steps: make([][]byte, 0, steps)}
	emit := func() {
		// The lattice arithmetic (eMin + k·(extentSpan/2^z)) matches the
		// server-side predictor's snapping exactly, so a predicted tile and
		// the session's next request agree to the bit.
		tw := (ext.MaxLon - ext.MinLon) / float64(int(1)<<z)
		th := (ext.MaxLat - ext.MinLat) / float64(int(1)<<z)
		req := map[string]any{
			"keyword":   keyword,
			"from":      from.Format(time.RFC3339),
			"to":        to.Format(time.RFC3339),
			"kind":      "heatmap",
			"grid_w":    128 >> z,
			"grid_h":    64 >> z,
			"budget_ms": budget,
			"min_lon":   ext.MinLon + float64(kx)*tw,
			"min_lat":   ext.MinLat + float64(ky)*th,
			"max_lon":   ext.MinLon + float64(kx+1)*tw,
			"max_lat":   ext.MinLat + float64(ky+1)*th,
		}
		body, err := json.Marshal(req)
		if err != nil {
			fatal(err)
		}
		tr.steps = append(tr.steps, body)
	}
	pan := func() {
		nx, ny := kx+dx, ky+dy
		if nx < 0 || nx >= 1<<z || ny < 0 || ny >= 1<<z {
			dx, dy = -dx, -dy // bounce off the extent boundary
			nx, ny = kx+dx, ky+dy
			if nx < 0 || nx >= 1<<z || ny < 0 || ny >= 1<<z {
				return // 1×1 lattice: nowhere to pan
			}
		}
		kx, ky = nx, ny
	}
	emit()
	for len(tr.steps) < steps {
		switch r := rng.Float64(); {
		case r < 0.55:
			pan()
		case r < 0.70: // turn, then step
			dirs := [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
			d := dirs[rng.Intn(len(dirs))]
			dx, dy = d[0], d[1]
			pan()
		case r < 0.85 && z < 3: // zoom in
			z++
			kx, ky = 2*kx+rng.Intn(2), 2*ky+rng.Intn(2)
		case r >= 0.85 && z > 0: // zoom out
			z--
			kx, ky = kx/2, ky/2
		default:
			pan()
		}
		emit()
	}
	return tr
}

// sessionPassResult is one replay of the traces: raw per-dataset latency
// accumulators (merged across passes of the same arm later), every response
// body (the first OFF pass builds expectations, all later passes compare
// against them), and the gateway's metrics snapshot.
type sessionPassResult struct {
	acc        map[string]*dsAccum
	elapsed    time.Duration
	mismatches int64
	bodies     [][][]byte // [session][step]
	server     *middleware.GatewayMetricsSnapshot
}

// runSessionPass replays every trace concurrently (one goroutine per
// session, steps strictly sequential within a session, think time between
// steps). withSession attaches the session-id header — the OFF pass omits
// it, so the server never tracks or prefetches. expected, when non-nil,
// is byte-compared per step.
func runSessionPass(name, url string, traces []sessionTrace, think time.Duration, withSession bool, expected [][][]byte) sessionPassResult {
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        len(traces) * 2,
			MaxIdleConnsPerHost: len(traces) * 2,
		},
	}
	res := sessionPassResult{bodies: make([][][]byte, len(traces))}
	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		mismatches int64
	)
	acc := make(map[string]*dsAccum)
	start := time.Now()
	for i := range traces {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Stagger session starts across one think interval: real users
			// aren't phase-locked, and synchronized waves would pile every
			// session's live request (and its prefetch fan-out) onto the same
			// instant. Identical in both passes, so the compare stays fair.
			if i > 0 && think > 0 {
				time.Sleep(time.Duration(i) * think / time.Duration(len(traces)))
			}
			tr := traces[i]
			bodies := make([][]byte, len(tr.steps))
			lats := make([]float64, 0, len(tr.steps))
			var errs, rejected, bad int64
			for j, step := range tr.steps {
				if j > 0 && think > 0 {
					time.Sleep(think)
				}
				t0 := time.Now()
				code, data, err := fireSession(client, url, tr.dataset, step, tr.id, withSession)
				lat := time.Since(t0)
				if os.Getenv("MALIVA_SESSION_DEBUG") != "" {
					fmt.Fprintf(os.Stderr, "STEP %s s=%d j=%d lat=%.3fms code=%d bytes=%d\n",
						name, i, j, float64(lat)/float64(time.Millisecond), code, len(data))
				}
				switch {
				case err != nil:
					errs++
				case code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable:
					rejected++
				case code != http.StatusOK:
					errs++
				default:
					bodies[j] = data
					lats = append(lats, float64(lat)/float64(time.Millisecond))
					if expected != nil && !bytes.Equal(data, expected[i][j]) {
						bad++
					}
				}
			}
			mu.Lock()
			res.bodies[i] = bodies
			a := acc[tr.dataset]
			if a == nil {
				a = &dsAccum{}
				acc[tr.dataset] = a
			}
			a.lats = append(a.lats, lats...)
			a.errors += errs
			a.rejected += rejected
			a.total += int64(len(tr.steps))
			mismatches += bad
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	res.acc = acc
	res.elapsed = time.Since(start)
	res.mismatches = mismatches
	res.server = fetchMetrics(client, url)
	return res
}

// fireSession posts one session step, optionally carrying the session-id
// header, and returns the raw response bytes.
func fireSession(client *http.Client, url, dataset string, body []byte, sid string, withSession bool) (int, []byte, error) {
	r, err := http.NewRequest(http.MethodPost, url+"/viz?dataset="+dataset, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	r.Header.Set("Content-Type", "application/json")
	if withSession {
		r.Header.Set(middleware.SessionHeader, sid)
	}
	resp, err := client.Do(r)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, data, nil
}

// startSessionGateway is startGateway with the session/subsumption switches
// exposed: enabled=false is the OFF pass (no tracking, no containment —
// exact-identity caching only), enabled=true the ON pass.
func startSessionGateway(names []string, built map[string]*workload.Dataset, budget float64, enabled bool, factory middleware.RewriterFactory) *inprocGateway {
	cfg := middleware.ServerConfig{DefaultBudgetMs: budget, PlanCacheSize: 8192}
	gcfg := middleware.GatewayConfig{Space: core.HintOnlySpec()}
	if !enabled {
		cfg.DisableSubsumption = true
		gcfg.Sessions.Disabled = true
	}
	gcfg.Server = cfg
	reg := workload.NewRegistry()
	for _, name := range names {
		ds := built[name]
		if err := reg.Register(name, func() (*workload.Dataset, error) { return ds, nil }); err != nil {
			fatal(err)
		}
	}
	gw, err := middleware.NewGateway(reg, factory, gcfg)
	if err != nil {
		fatal(err)
	}
	if err := gw.Warm(); err != nil {
		fatal(err)
	}
	return serveGateway(gw.Handler())
}

// runSessions is the -session drill driver. The identical traces are
// replayed four times on fresh gateways in a counterbalanced OFF, ON, ON,
// OFF order: within one process the later passes see a warmer runtime
// (allocator/GC state, engine statistics), so a fixed OFF-then-ON order
// systematically biases whichever arm runs second. Interleaving the arms
// cancels that drift to first order; each arm's latencies are merged across
// its two passes before quantiles are taken. Every ON response is
// byte-compared against the first OFF pass, and so is the second OFF pass —
// a free determinism check on the serving stack itself.
func runSessions(report *loadReport, names []string, built map[string]*workload.Dataset, factory middleware.RewriterFactory, budget float64, nSessions, steps int, think time.Duration, seed int64) {
	traces := genSessionTraces(names, built, nSessions, steps, budget, seed)
	report.SessionCount = nSessions
	report.SessionSteps = steps
	report.ThinkMs = float64(think) / float64(time.Millisecond)

	run := func(label string, enabled bool, expected [][][]byte) sessionPassResult {
		gw := startSessionGateway(names, built, budget, enabled, factory)
		defer gw.close()
		if dir := os.Getenv("MALIVA_SESSION_PROFILE"); dir != "" {
			if f, err := os.Create(dir + "/" + label + ".pprof"); err == nil {
				pprof.StartCPUProfile(f)
				defer func() { pprof.StopCPUProfile(); f.Close() }()
			}
		}
		return runSessionPass(label, gw.url, traces, think, enabled, expected)
	}
	fmt.Fprintf(os.Stderr, "replaying %d sessions × %d steps (think %s) through 4 passes: OFF, ON, ON, OFF...\n", nSessions, steps, think)
	off1 := run("off-1", false, nil)
	on1 := run("on-1", true, off1.bodies)
	on2 := run("on-2", true, off1.bodies)
	off2 := run("off-2", false, off1.bodies)

	merge := func(name string, passes ...sessionPassResult) passReport {
		accCh := make(chan map[string]*dsAccum, len(passes))
		var elapsed time.Duration
		for _, p := range passes {
			accCh <- p.acc
			elapsed += p.elapsed
		}
		close(accCh)
		return mergeAccum(name, elapsed, accCh)
	}
	offRep := merge("session-off", off1, off2)
	onRep := merge("session-on", on1, on2)
	onRep.Mismatches = on1.mismatches + on2.mismatches
	offRep.Mismatches = off2.mismatches // OFF-vs-OFF: determinism cross-check

	report.Passes = append(report.Passes, offRep, onRep)
	report.SessionMismatches = onRep.Mismatches + offRep.Mismatches
	if onRep.P50Ms > 0 {
		report.SessionP50SpeedupX = offRep.P50Ms / onRep.P50Ms
	}
	if onRep.P95Ms > 0 {
		report.SessionP95SpeedupX = offRep.P95Ms / onRep.P95Ms
	}
	for _, snap := range []*middleware.GatewayMetricsSnapshot{on1.server, on2.server} {
		if snap == nil {
			continue
		}
		for _, m := range snap.Datasets {
			report.PrefetchIssued += m.PrefetchIssued
			report.PrefetchHits += m.PrefetchHits
			report.PrefetchShed += m.PrefetchShed
			report.PrefetchComputed += m.PrefetchComputed
			report.SubsumedHits += m.SubsumedHits
		}
	}
	if report.PrefetchIssued > 0 {
		report.PrefetchHitRate = float64(report.PrefetchHits) / float64(report.PrefetchIssued)
	}
	if report.PrefetchComputed > 0 {
		waste := report.PrefetchComputed - report.PrefetchHits
		if waste < 0 {
			waste = 0
		}
		report.PrefetchWasteRate = float64(waste) / float64(report.PrefetchComputed)
	}
}
