module github.com/maliva/maliva

go 1.24
