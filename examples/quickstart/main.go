// Quickstart: build a small Twitter-like dataset, train a Maliva MDP agent,
// and rewrite one visualization query under a 500 ms budget.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/engine"
	"github.com/maliva/maliva/internal/harness"
	"github.com/maliva/maliva/internal/qte"
	"github.com/maliva/maliva/internal/workload"
)

func main() {
	log.SetFlags(0)

	// 1. A synthetic 100M-row (simulated) tweets table with inverted,
	//    B+-tree and R-tree indexes.
	cfg := workload.TwitterConfig()
	cfg.Rows = 40_000
	cfg.Scale = 100e6 / float64(cfg.Rows)
	ds, err := workload.Twitter(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Train the MDP agent on a workload of random visualization queries.
	fmt.Println("training the MDP agent (a few seconds)...")
	lab, err := harness.BuildLab(ds, harness.LabConfig{
		NumQueries: 240,
		QuerySpec:  workload.QuerySpec{NumPreds: 3, Seed: 5},
		Space:      core.HintOnlySpec(),
		Budget:     500,
		Seed:       9,
	})
	if err != nil {
		log.Fatal(err)
	}
	est := qte.NewAccurateQTE()
	agentCfg := core.DefaultAgentConfig()
	agentCfg.MaxEpochs = 10
	agent, _ := lab.TrainAgent(harness.TrainAgentConfig{Agent: agentCfg, QTE: est, Seeds: []int64{7}})
	rewriter := &core.MDPRewriter{Agent: agent, QTE: est, Tag: "Accurate-QTE"}

	// 3. A visualization request: tweets containing a frequent keyword, in a
	//    western-US region, during one week (the paper's Fig. 1 scenario).
	t := ds.DB.Table("tweets")
	q := &engine.Query{
		Table:      "tweets",
		OutputCols: []string{"id", "coordinates"},
		Preds: []engine.Predicate{
			{Col: "text", Kind: engine.PredKeyword, Word: t.Vocab.ID("word0050"), WordText: "word0050"},
			{Col: "created_at", Kind: engine.PredRange,
				Lo: float64(ds.TimeOrigin.UnixMilli()), Hi: float64(ds.TimeOrigin.AddDate(0, 0, 7).UnixMilli())},
			{Col: "coordinates", Kind: engine.PredGeo,
				Box: engine.Rect{MinLon: -124.4, MinLat: 32.5, MaxLon: -114.1, MaxLat: 42.0}},
		},
	}
	fmt.Println("\noriginal query:")
	fmt.Println(" ", q.SQL(engine.Hint{}))

	ctx, err := core.BuildContext(ds.DB, q, core.DefaultContextConfig(core.HintOnlySpec()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbackend optimizer alone would take %.0f ms (budget 500 ms)\n", ctx.BaselineMs)

	// 4. Maliva decides which rewritten queries to estimate, then commits.
	out := rewriter.Rewrite(ctx, 500)
	opt := ctx.Options[out.Option]
	rq, hint := core.BuildRQ(q, opt, ctx.EstRows, ctx.Scale)
	fmt.Println("\nMaliva's rewritten query:")
	fmt.Println(" ", rq.SQL(hint))
	fmt.Printf("\nexplored %d of %d rewritten queries, planning %.0f ms + execution %.0f ms = %.0f ms total (viable: %v)\n",
		out.Explored, ctx.N(), out.PlanMs, out.ExecMs, out.TotalMs, out.Viable)
	if !out.Viable && ctx.NumViable(500) == 0 {
		fmt.Println("(no exact plan can meet this budget; see examples/quality_aware for approximation rules)")
	}
	os.Exit(0)
}
