// Twitter heatmap: run the full Fig. 5 middleware pipeline — a frontend
// request becomes SQL, the MDP rewriter picks a rewritten query under the
// budget, and the binned result is rendered as an ASCII heatmap of the US.
//
// The request deliberately reproduces the paper's Fig. 2 situation: a
// country-wide heatmap over a month that no exact plan can serve in time,
// so the quality-aware agent substitutes a random sample table.
//
//	go run ./examples/twitter_heatmap
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/harness"
	"github.com/maliva/maliva/internal/middleware"
	"github.com/maliva/maliva/internal/qte"
	"github.com/maliva/maliva/internal/workload"
)

func main() {
	log.SetFlags(0)
	cfg := workload.TwitterConfig()
	cfg.Rows = 80_000
	cfg.Scale = 100e6 / float64(cfg.Rows)
	ds, err := workload.Twitter(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Pre-build the sample tables the approximation rules substitute.
	tweets := ds.DB.Table("tweets")
	for _, pct := range []int{20, 40, 80} {
		if _, err := tweets.BuildSample(pct, 99); err != nil {
			log.Fatal(err)
		}
	}
	// Fig. 11's option space: 8 hint sets, plus 3 sample rules crossed with
	// the hint sets (so a sample table can be paired with the right indexes).
	space := core.SpaceSpec{
		IncludeEmptyHint: true,
		ApproxRules: []core.ApproxRule{
			{Kind: core.ApproxSample, Percent: 20},
			{Kind: core.ApproxSample, Percent: 40},
			{Kind: core.ApproxSample, Percent: 80},
		},
		CrossApprox: true,
	}

	fmt.Println("training the quality-aware MDP agent...")
	lab, err := harness.BuildLab(ds, harness.LabConfig{
		NumQueries: 200,
		QuerySpec:  workload.QuerySpec{NumPreds: 3, Seed: 5},
		Space:      space,
		Budget:     1000,
		Seed:       9,
	})
	if err != nil {
		log.Fatal(err)
	}
	est := qte.NewAccurateQTE()
	agentCfg := core.DefaultAgentConfig()
	agentCfg.MaxEpochs = 10
	agent, _ := lab.TrainAgent(harness.TrainAgentConfig{
		Agent: agentCfg, QTE: est, Beta: 0.7, Seeds: []int64{7},
	})

	srv, err := middleware.NewServer(ds,
		&core.MDPRewriter{Agent: agent, QTE: est, Beta: 0.7, Tag: "quality-aware"},
		space, 1000)
	if err != nil {
		log.Fatal(err)
	}

	// A Thanksgiving-month heatmap over the continental US with a frequent
	// keyword — far too heavy for any exact plan.
	req := middleware.Request{
		Keyword: "word0001",
		From:    time.Date(2016, 11, 1, 0, 0, 0, 0, time.UTC),
		To:      time.Date(2016, 12, 1, 0, 0, 0, 0, time.UTC),
		Region:  workload.USExtent,
		Kind:    middleware.VizHeatmap,
		GridW:   56, GridH: 18,
	}
	resp, err := srv.Handle(req)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nrequest SQL:")
	fmt.Println("  " + resp.Trace.SQL)
	fmt.Println("rewritten SQL:")
	fmt.Println("  " + resp.Trace.RewrittenSQL)
	fmt.Printf("decision: %s after exploring %d rewritten queries\n",
		resp.Trace.Option, resp.Trace.NumExplored)
	fmt.Printf("virtual total time: %.0f ms (plan %.0f + exec %.0f), viable=%v, quality=%.2f\n\n",
		resp.Trace.TotalMs, resp.Trace.PlanMs, resp.Trace.ExecMs, resp.Trace.Viable, resp.Trace.Quality)

	renderHeatmap(resp.Bins, resp.GridW, resp.GridH)
}

// renderHeatmap prints the count grid with density glyphs (north on top).
func renderHeatmap(bins map[int]float64, w, h int) {
	var maxV float64
	for _, v := range bins {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		fmt.Println("(empty result)")
		return
	}
	glyphs := []rune(" .:-=+*#%@")
	for y := h - 1; y >= 0; y-- {
		row := make([]rune, w)
		for x := 0; x < w; x++ {
			v := bins[y*w+x]
			idx := int(float64(len(glyphs)-1) * v / maxV)
			row[x] = glyphs[idx]
		}
		fmt.Println(string(row))
	}
	fmt.Printf("\nmax cell ≈ %.0f matching tweets (sample-weighted)\n", maxV)
}
