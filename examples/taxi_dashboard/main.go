// Taxi dashboard: three typical dashboard panels over the NYC Taxi dataset,
// each a visualization query with a 1-second budget. For every panel the
// example compares what the backend optimizer would do on its own (the
// baseline) against Maliva's rewriting.
//
//	go run ./examples/taxi_dashboard
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/engine"
	"github.com/maliva/maliva/internal/harness"
	"github.com/maliva/maliva/internal/qte"
	"github.com/maliva/maliva/internal/workload"
)

func main() {
	log.SetFlags(0)
	cfg := workload.TaxiConfig()
	cfg.Rows = 40_000
	cfg.Scale = 500e6 / float64(cfg.Rows)
	ds, err := workload.Taxi(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("training the MDP agent on the taxi workload...")
	lab, err := harness.BuildLab(ds, harness.LabConfig{
		NumQueries: 240,
		QuerySpec:  workload.QuerySpec{NumPreds: 3, Seed: 5},
		Space:      core.HintOnlySpec(),
		Budget:     1000,
		Seed:       9,
	})
	if err != nil {
		log.Fatal(err)
	}
	est := qte.NewAccurateQTE()
	agentCfg := core.DefaultAgentConfig()
	agentCfg.MaxEpochs = 10
	agent, _ := lab.TrainAgent(harness.TrainAgentConfig{Agent: agentCfg, QTE: est, Seeds: []int64{7}})
	maliva := &core.MDPRewriter{Agent: agent, QTE: est, Tag: "Accurate-QTE"}
	baseline := core.BaselineRewriter{}

	day := func(y, m, d int) float64 {
		return float64(time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC).UnixMilli())
	}
	midtown := engine.Rect{MinLon: -74.01, MinLat: 40.74, MaxLon: -73.96, MaxLat: 40.77}
	jfk := engine.Rect{MinLon: -73.82, MinLat: 40.62, MaxLon: -73.76, MaxLat: 40.67}

	panels := []struct {
		name  string
		query *engine.Query
	}{
		// An easy panel: a half-day window is selective enough that even the
		// backend optimizer's single-index plan meets the budget.
		{"Midtown pickups, New Year's Eve", &engine.Query{
			Table: "trips", OutputCols: []string{"id", "pickup_coordinates"},
			Preds: []engine.Predicate{
				{Col: "pickup_datetime", Kind: engine.PredRange, Lo: day(2010, 12, 31), Hi: day(2010, 12, 31) + 12*3600*1000},
				{Col: "trip_distance", Kind: engine.PredRange, Lo: 0, Hi: 5},
				{Col: "pickup_coordinates", Kind: engine.PredGeo, Box: midtown},
			},
		}},
		// The contrast panel: a month of long-haul JFK trips. The optimizer
		// misjudges the spatial and distance conditions and picks a slow
		// plan; only the distance ∩ geo intersection (forced by hints) is
		// viable.
		{"JFK long-haul trips, July 2012", &engine.Query{
			Table: "trips", OutputCols: []string{"id", "pickup_coordinates"},
			Preds: []engine.Predicate{
				{Col: "pickup_datetime", Kind: engine.PredRange, Lo: day(2012, 7, 1), Hi: day(2012, 8, 1)},
				{Col: "trip_distance", Kind: engine.PredRange, Lo: 10, Hi: 300},
				{Col: "pickup_coordinates", Kind: engine.PredGeo, Box: jfk},
			},
		}},
		// An impossible panel: a month of city-wide short hops has no viable
		// exact plan at all (this is where §6's approximation rules would
		// take over; see examples/quality_aware).
		{"City-wide short hops, June 2011", &engine.Query{
			Table: "trips", OutputCols: []string{"id", "pickup_coordinates"},
			Preds: []engine.Predicate{
				{Col: "pickup_datetime", Kind: engine.PredRange, Lo: day(2011, 6, 1), Hi: day(2011, 7, 1)},
				{Col: "trip_distance", Kind: engine.PredRange, Lo: 0, Hi: 1.5},
				{Col: "pickup_coordinates", Kind: engine.PredGeo, Box: workload.NYCExtent},
			},
		}},
	}

	const budget = 1000.0
	fmt.Printf("\n%-38s %14s %18s %8s\n", "panel", "baseline", "maliva", "explored")
	for _, p := range panels {
		ctx, err := core.BuildContext(ds.DB, p.query, core.DefaultContextConfig(core.HintOnlySpec()))
		if err != nil {
			log.Fatal(err)
		}
		b := baseline.Rewrite(ctx, budget)
		m := maliva.Rewrite(ctx, budget)
		fmt.Printf("%-38s %9.0f ms %s %10.0f ms %s %6d\n",
			p.name,
			b.TotalMs, mark(b.Viable),
			m.TotalMs, mark(m.Viable),
			m.Explored)
	}
	fmt.Printf("\n(budget %.0f ms; ✓ = served within budget)\n", budget)
}

func mark(viable bool) string {
	if viable {
		return "✓"
	}
	return "✗"
}
