// Quality-aware rewriting: for an expensive query with no viable exact plan,
// Maliva trades result quality for responsiveness using approximation rules
// (§6). The example trains the one-stage and two-stage quality-aware agents
// and shows their different decisions on easy and impossible queries.
//
//	go run ./examples/quality_aware
package main

import (
	"fmt"
	"log"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/harness"
	"github.com/maliva/maliva/internal/qte"
	"github.com/maliva/maliva/internal/workload"
)

func main() {
	log.SetFlags(0)
	cfg := workload.TwitterConfig()
	cfg.Rows = 40_000
	cfg.Scale = 100e6 / float64(cfg.Rows)
	ds, err := workload.Twitter(cfg)
	if err != nil {
		log.Fatal(err)
	}

	const budget = 500.0
	const beta = 0.7
	space := core.QualityAwareSpec() // 8 hint sets + 5 LIMIT rules

	fmt.Println("training quality-aware agents (one-stage, two-stage)...")
	lab, err := harness.BuildLab(ds, harness.LabConfig{
		NumQueries: 240,
		QuerySpec:  workload.QuerySpec{NumPreds: 3, Seed: 5},
		Space:      space,
		Budget:     budget,
		Seed:       9,
	})
	if err != nil {
		log.Fatal(err)
	}
	est := qte.NewAccurateQTE()
	agentCfg := core.DefaultAgentConfig()
	agentCfg.MaxEpochs = 10

	oneStage, _ := lab.TrainAgent(harness.TrainAgentConfig{
		Agent: agentCfg, QTE: est, Beta: beta, Seeds: []int64{7},
	})
	exact := func(c *core.QueryContext) []int { return core.ExactOptionIndexes(c) }
	approx := func(c *core.QueryContext) []int { return core.ApproxOptionIndexes(c) }
	hintAgent, _ := lab.TrainAgent(harness.TrainAgentConfig{
		Agent: agentCfg, QTE: est, Seeds: []int64{7},
		Contexts:    subContexts(lab.Train, exact),
		ValContexts: subContexts(lab.Val, exact),
	})
	stage2, _ := lab.TrainAgent(harness.TrainAgentConfig{
		Agent: agentCfg, QTE: est, Beta: beta, Seeds: []int64{7},
		Contexts:    subContexts(lab.Train, approx),
		ValContexts: subContexts(lab.Val, approx),
	})

	one := &core.OneStageRewriter{Agent: oneStage, QTE: est, Beta: beta}
	two := &core.TwoStageRewriter{StageOne: hintAgent, StageTwo: stage2, QTE: est, Beta: beta}

	// Pick one impossible query (0 viable exact plans) and one easy query
	// from the evaluation set, then compare the rewriters on both.
	var impossible, easy *core.QueryContext
	for _, ctx := range lab.Eval {
		nv := ctx.NumViable(budget)
		if nv == 0 && impossible == nil {
			impossible = ctx
		}
		if nv >= 3 && easy == nil {
			easy = ctx
		}
		if impossible != nil && easy != nil {
			break
		}
	}
	if impossible == nil || easy == nil {
		log.Fatal("workload did not contain both query kinds; increase NumQueries")
	}

	show := func(name string, ctx *core.QueryContext) {
		fmt.Printf("\n%s (viable exact plans: %d, baseline %.0f ms)\n",
			name, ctx.NumViable(budget), ctx.BaselineMs)
		for _, rw := range []core.Rewriter{one, two} {
			out := rw.Rewrite(ctx, budget)
			opt := ctx.Options[out.Option]
			fmt.Printf("  %-28s → %-16s total %6.0f ms, viable=%-5v quality=%.2f\n",
				rw.Name(), opt.Label(len(ctx.Query.Preds)), out.TotalMs, out.Viable, out.Quality)
		}
	}
	show("impossible query", impossible)
	show("easy query", easy)

	fmt.Println("\ntwo-stage never gives up result quality when an exact viable plan exists;")
	fmt.Println("one-stage finds more viable rewrites on impossible queries (paper Fig. 20).")
}

// subContexts restricts contexts to a subset of options.
func subContexts(ctxs []*core.QueryContext, sel func(*core.QueryContext) []int) []*core.QueryContext {
	var out []*core.QueryContext
	for _, ctx := range ctxs {
		if idx := sel(ctx); len(idx) > 0 {
			out = append(out, core.SubContext(ctx, idx))
		}
	}
	return out
}
