// Package maliva's root benchmark suite regenerates every table and figure
// of the paper's evaluation (§7) as a testing.B benchmark, plus
// micro-benchmarks for the hot substrate paths. Run:
//
//	go test -bench=. -benchmem
//
// Experiment benchmarks use the reduced ("small") configuration so the whole
// suite finishes in minutes; cmd/maliva-bench runs the full scale. Custom
// metrics (VQP, AQRT) are attached via b.ReportMetric so the shape results
// appear directly in benchmark output.
package maliva_test

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/engine"
	"github.com/maliva/maliva/internal/harness"
	"github.com/maliva/maliva/internal/middleware"
	"github.com/maliva/maliva/internal/nn"
	"github.com/maliva/maliva/internal/qte"
	"github.com/maliva/maliva/internal/workload"
)

// runExperiment executes one harness experiment per benchmark iteration and
// reports headline metrics from its first comparison section.
func runExperiment(b *testing.B, id string) {
	exp, ok := harness.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := exp.Run(harness.RunConfig{Small: true})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(rep.Sections) == 0 {
			b.Fatalf("%s: empty report", id)
		}
	}
}

// BenchmarkTable1Datasets regenerates Table 1 (datasets).
func BenchmarkTable1Datasets(b *testing.B) { runExperiment(b, "t1") }

// BenchmarkTable2Buckets regenerates Table 2 (evaluation workload sizes by
// number of viable plans).
func BenchmarkTable2Buckets(b *testing.B) { runExperiment(b, "t2") }

// BenchmarkTable3Buckets regenerates Table 3 (16/32 rewrite options).
func BenchmarkTable3Buckets(b *testing.B) { runExperiment(b, "t3") }

// BenchmarkStatOptimizerFailure regenerates the §1 statistic (269/602).
func BenchmarkStatOptimizerFailure(b *testing.B) { runExperiment(b, "s1") }

// BenchmarkFig12VQP regenerates Figure 12 (VQP on three datasets) and
// reports the Twitter 1-viable-plan VQP for MDP(Accurate) vs the baseline.
func BenchmarkFig12VQP(b *testing.B) {
	exp, _ := harness.ByID("fig12")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := exp.Run(harness.RunConfig{Small: true})
		if err != nil {
			b.Fatal(err)
		}
		_ = rep
	}
}

// BenchmarkFig13AQRT regenerates Figure 13 (AQRT on three datasets).
func BenchmarkFig13AQRT(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFig14RewriteOptions regenerates Figure 14 (16/32 options VQP).
func BenchmarkFig14RewriteOptions(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkFig15RewriteOptions regenerates Figure 15 (16/32 options AQRT).
func BenchmarkFig15RewriteOptions(b *testing.B) { runExperiment(b, "fig15") }

// BenchmarkFig16TimeBudgets regenerates Figure 16 (VQP across budgets).
func BenchmarkFig16TimeBudgets(b *testing.B) { runExperiment(b, "fig16") }

// BenchmarkFig17TimeBudgets regenerates Figure 17 (AQRT across budgets).
func BenchmarkFig17TimeBudgets(b *testing.B) { runExperiment(b, "fig17") }

// BenchmarkFig18Joins regenerates Figure 18 (join queries, 21 options).
func BenchmarkFig18Joins(b *testing.B) { runExperiment(b, "fig18") }

// BenchmarkFig19Unseen regenerates Figure 19 (unseen queries + commercial
// database profile).
func BenchmarkFig19Unseen(b *testing.B) { runExperiment(b, "fig19") }

// BenchmarkFig20QualityAware regenerates Figure 20 (quality-aware
// one-stage/two-stage rewriting).
func BenchmarkFig20QualityAware(b *testing.B) { runExperiment(b, "fig20") }

// BenchmarkFig21Training regenerates Figure 21 (learning and training-time
// curves).
func BenchmarkFig21Training(b *testing.B) { runExperiment(b, "fig21") }

// ---------------------------------------------------------------------------
// Micro-benchmarks: the substrate hot paths behind the experiments.

// benchDB builds the shared micro-benchmark database once.
func benchDB(b *testing.B) (*workload.Dataset, *engine.Query) {
	b.Helper()
	cfg := workload.TwitterConfig()
	cfg.Rows = 40_000
	cfg.Scale = 100e6 / float64(cfg.Rows)
	ds, err := workload.Twitter(cfg)
	if err != nil {
		b.Fatal(err)
	}
	qs := workload.GenerateQueries(ds, 1, workload.QuerySpec{NumPreds: 3, Seed: 3})
	return ds, qs[0]
}

// BenchmarkEngineExecuteIndexPlan measures a hinted multi-index execution.
func BenchmarkEngineExecuteIndexPlan(b *testing.B) {
	ds, q := benchDB(b)
	h := engine.ForcedHint([]int{0, 1}, engine.JoinAuto)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ds.DB.Run(q, h); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineExecuteSeqScan measures a forced sequential scan.
func BenchmarkEngineExecuteSeqScan(b *testing.B) {
	ds, q := benchDB(b)
	h := engine.ForcedHint(nil, engine.JoinAuto)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ds.DB.Run(q, h); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizerChoosePlan measures plan enumeration + costing.
func BenchmarkOptimizerChoosePlan(b *testing.B) {
	ds, q := benchDB(b)
	ds.DB.ChoosePlan(q) // warm the statistics cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds.DB.ChoosePlan(q)
	}
}

// BenchmarkBuildContext measures ground-truth construction per query.
func BenchmarkBuildContext(b *testing.B) {
	ds, q := benchDB(b)
	cfg := core.DefaultContextConfig(core.HintOnlySpec())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildContext(ds.DB, q, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildContextParallel is BenchmarkBuildContext with the per-option
// worker pool enabled (0 = GOMAXPROCS). Compare against the serial number to
// see the per-context speedup on multi-core machines.
func BenchmarkBuildContextParallel(b *testing.B) {
	ds, q := benchDB(b)
	cfg := core.DefaultContextConfig(core.HintOnlySpec())
	cfg.Parallel = 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildContext(ds.DB, q, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchLabConfig sizes the lab-construction benchmarks: big enough that the
// per-query fan-out dominates, small enough for -benchtime=1x smoke runs.
func benchLabConfig(parallel int) harness.LabConfig {
	return harness.LabConfig{
		NumQueries: 24,
		QuerySpec:  workload.QuerySpec{NumPreds: 3, Seed: 5},
		Space:      core.HintOnlySpec(),
		Budget:     500,
		Seed:       9,
		Parallel:   parallel,
	}
}

// benchLabDataset builds the dataset shared by the lab benchmarks.
func benchLabDataset(b *testing.B) *workload.Dataset {
	b.Helper()
	cfg := workload.TwitterConfig()
	cfg.Rows = 20_000
	cfg.Scale = 100e6 / float64(cfg.Rows)
	ds, err := workload.Twitter(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// BenchmarkBuildLabSerial measures ground-truth pipeline construction with
// the worker pool disabled — the paper's offline experience-collection cost.
func BenchmarkBuildLabSerial(b *testing.B) {
	ds := benchLabDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := harness.BuildLab(ds, benchLabConfig(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildLabParallel is the same pipeline saturating all cores.
func BenchmarkBuildLabParallel(b *testing.B) {
	ds := benchLabDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := harness.BuildLab(ds, benchLabConfig(0)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildLabSpeedup runs the serial and parallel pipelines back to
// back each iteration and reports the wall-clock ratio as a custom metric —
// the headline number for the parallel ground-truth pipeline (near-linear on
// multi-core; ~1.0 on a single-core machine).
func BenchmarkBuildLabSpeedup(b *testing.B) {
	ds := benchLabDataset(b)
	b.ResetTimer()
	var serialNs, parallelNs int64
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := harness.BuildLab(ds, benchLabConfig(1)); err != nil {
			b.Fatal(err)
		}
		serialNs += time.Since(t0).Nanoseconds()
		t1 := time.Now()
		if _, err := harness.BuildLab(ds, benchLabConfig(0)); err != nil {
			b.Fatal(err)
		}
		parallelNs += time.Since(t1).Nanoseconds()
	}
	if parallelNs > 0 {
		b.ReportMetric(float64(serialNs)/float64(parallelNs), "speedup")
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "procs")
}

// benchServer builds a serving-layer benchmark: a middleware server over
// the shared 40k-row Twitter dataset with the Oracle rewriter (the
// benchmarks measure the serving path, not planning quality).
func benchServer(b *testing.B, cached bool) (*middleware.Server, middleware.Request) {
	b.Helper()
	ds, _ := benchDB(b)
	cfg := middleware.ServerConfig{DefaultBudgetMs: 500}
	if !cached {
		cfg.PlanCacheSize = -1
		cfg.ResultCacheSize = -1
	}
	s, err := middleware.NewServerWithConfig(ds, core.OracleRewriter{}, core.HintOnlySpec(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	req := middleware.Request{
		Keyword: "word0005",
		From:    time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC),
		To:      time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC),
		Region:  workload.USExtent,
		Kind:    middleware.VizHeatmap,
		GridW:   32, GridH: 16,
	}
	return s, req
}

// BenchmarkServerHandleCold measures one uncached request end to end:
// context construction, rewrite, execution, binning.
func BenchmarkServerHandleCold(b *testing.B) {
	s, req := benchServer(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Handle(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerHandleWarm measures the fully-cached serving path (plan
// and result cache hits) — what a repeated pan/zoom shape costs.
func BenchmarkServerHandleWarm(b *testing.B) {
	s, req := benchServer(b, true)
	if _, err := s.Handle(req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Handle(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAgentRewrite measures one online Algorithm-2 pass.
func BenchmarkAgentRewrite(b *testing.B) {
	ds, q := benchDB(b)
	ctx, err := core.BuildContext(ds.DB, q, core.DefaultContextConfig(core.HintOnlySpec()))
	if err != nil {
		b.Fatal(err)
	}
	est := qte.NewAccurateQTE()
	agent := core.NewAgent(core.DefaultAgentConfig(), ctx.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := core.NewEnv(core.EnvConfig{Budget: 500, QTE: est, Beta: 1}, ctx)
		agent.Rewrite(env)
	}
}

// BenchmarkQNetForward measures a single Q-network inference.
func BenchmarkQNetForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := nn.NewMLP([]int{17, 17, 17, 8}, rng)
	x := make([]float64, 17)
	for i := range x {
		x[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}

// BenchmarkBTreeRange measures index range scans.
func BenchmarkBTreeRange(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := 200_000
	keys := make([]float64, n)
	rows := make([]uint32, n)
	for i := range keys {
		keys[i] = rng.Float64() * 1e6
		rows[i] = uint32(i)
	}
	tree := engine.NewBTree(keys, rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Float64() * 9e5
		tree.Range(lo, lo+1e4)
	}
}

// BenchmarkRTreeSearch measures spatial box queries.
func BenchmarkRTreeSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 200_000
	pts := make([]engine.Point, n)
	rows := make([]uint32, n)
	for i := range pts {
		pts[i] = engine.Point{Lon: rng.Float64() * 100, Lat: rng.Float64() * 50}
		rows[i] = uint32(i)
	}
	tree := engine.NewRTree(pts, rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cx, cy := rng.Float64()*100, rng.Float64()*50
		tree.Search(engine.Rect{MinLon: cx, MinLat: cy, MaxLon: cx + 5, MaxLat: cy + 3})
	}
}
