#!/usr/bin/env bash
# check_docs.sh — the docs gate (gofmt-style: quiet on success, lists
# problems and exits non-zero on failure).
#
# Checks:
#   1. README.md references docs/ARCHITECTURE.md (the architecture doc must
#      stay discoverable, not just exist).
#   2. Every relative markdown link in README.md and docs/*.md points at a
#      file that exists.
#   3. Every internal/ package ships a doc.go package overview.
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0

if ! grep -q 'docs/ARCHITECTURE\.md' README.md; then
  echo "README.md no longer references docs/ARCHITECTURE.md" >&2
  fail=1
fi

# Relative markdown links: [text](path) where path is not a URL or anchor.
check_links() {
  local file="$1" dir
  dir=$(dirname "$file")
  # One link per line; strip anchors; ignore absolute URLs. (grep exits 1
  # on link-free files — that is a pass, not a failure.)
  { grep -oE '\]\(([^)#]+)(#[^)]*)?\)' "$file" || true; } \
    | sed -E 's/^\]\(//; s/#[^)]*//; s/\)$//' \
    | while read -r target; do
        case "$target" in
          http://*|https://*|mailto:*|"") continue ;;
        esac
        if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
          echo "$file: broken relative link: $target" >&2
          echo broken >> "$BROKEN_MARKER"
        fi
      done
}

BROKEN_MARKER=$(mktemp)
trap 'rm -f "$BROKEN_MARKER"' EXIT
for f in README.md docs/*.md; do
  [ -e "$f" ] && check_links "$f"
done
if [ -s "$BROKEN_MARKER" ]; then
  fail=1
fi

for pkg in internal/*/; do
  [ -d "$pkg" ] || continue
  if [ ! -e "${pkg}doc.go" ]; then
    # Packages whose package comment lives in a regular file are fine;
    # flag only packages with no package comment at all.
    if ! grep -rlq '^// Package' "$pkg"*.go 2>/dev/null; then
      echo "$pkg has no package comment (add a doc.go)" >&2
      fail=1
    fi
  fi
done

exit "$fail"
