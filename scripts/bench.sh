#!/usr/bin/env bash
# bench.sh — run the micro/pipeline benchmark suite and emit the results as
# JSON, keeping the perf trajectory machine-readable across PRs.
#
# Usage:
#   scripts/bench.sh                     # full pass, JSON to stdout
#   scripts/bench.sh -o BENCH_1.json     # write snapshot file
#   BENCHTIME=1x scripts/bench.sh        # smoke pass (CI)
#   BENCH='BenchmarkEngine.*' scripts/bench.sh   # subset
#
# Compare two snapshots with:  diff <(jq -S . BENCH_0.json) <(jq -S . BENCH_1.json)
# or eyeball ns_per_op / allocs_per_op per benchmark name.
set -euo pipefail

cd "$(dirname "$0")/.."

OUT=""
while getopts "o:" opt; do
  case "$opt" in
    o) OUT="$OPTARG" ;;
    *) echo "usage: $0 [-o out.json]" >&2; exit 2 ;;
  esac
done

BENCH="${BENCH:-.}"
BENCHTIME="${BENCHTIME:-5x}"

raw=$(go test -run='^$' -bench="$BENCH" -benchmem -benchtime="$BENCHTIME" . 2>&1) || {
  echo "$raw" >&2
  exit 1
}

json=$(echo "$raw" | awk '
BEGIN { print "{"; printf "  \"benchmarks\": [" ; first = 1 }
/^Benchmark/ {
  name = $1; sub(/-[0-9]+$/, "", name)
  iters = $2
  ns = ""; bytes = ""; allocs = ""
  extra = ""
  for (i = 3; i < NF; i += 2) {
    v = $i; unit = $(i + 1)
    if (unit == "ns/op") ns = v
    else if (unit == "B/op") bytes = v
    else if (unit == "allocs/op") allocs = v
    else {
      gsub(/"/, "", unit)
      extra = extra sprintf(", \"%s\": %s", unit, v)
    }
  }
  if (!first) printf ","
  first = 0
  printf "\n    {\"name\": \"%s\", \"iterations\": %s", name, iters
  if (ns != "") printf ", \"ns_per_op\": %s", ns
  if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
  if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
  printf "%s}", extra
}
/^goos:/    { goos = $2 }
/^goarch:/  { goarch = $2 }
/^cpu:/     { $1 = ""; cpu = substr($0, 2) }
END {
  print "\n  ],"
  printf "  \"goos\": \"%s\",\n", goos
  printf "  \"goarch\": \"%s\",\n", goarch
  printf "  \"cpu\": \"%s\",\n", cpu
  printf "  \"date\": \"%s\"\n", strftime("%Y-%m-%dT%H:%M:%SZ", systime(), 1)
  print "}"
}')

if [ -n "$OUT" ]; then
  echo "$json" > "$OUT"
  echo "wrote $OUT" >&2
else
  echo "$json"
fi
