package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the engine's write path: columnar append batches, incremental
// index maintenance, and an adaptive batcher that turns a stream of small
// appends into few large flushes. A flush is the unit of visibility — it
// applies atomically under the DB's data write lock, bumps the table's data
// version, drops stale optimizer statistics, and rebuilds them, so every
// reader either sees the full pre-flush or the full post-flush state and can
// tell the two apart by version.

// Batch is a columnar append fragment: one fragment column per table column,
// all the same length. Batches are built row-set-at-a-time by callers (e.g.
// the workload layer's JSON row conversion) and applied via DB.ApplyBatch.
type Batch struct {
	cols   []*Column
	byName map[string]*Column
	rows   int
}

// NewBatch returns an empty batch.
func NewBatch() *Batch {
	return &Batch{byName: make(map[string]*Column)}
}

// AddColumn attaches a fragment column. All fragments must have the same
// length; the first fixes the batch's row count.
func (b *Batch) AddColumn(c *Column) error {
	if _, dup := b.byName[c.Name]; dup {
		return fmt.Errorf("engine: duplicate batch column %q", c.Name)
	}
	if len(b.cols) == 0 {
		b.rows = c.Len()
	} else if c.Len() != b.rows {
		return fmt.Errorf("engine: batch column %q has %d rows, batch has %d", c.Name, c.Len(), b.rows)
	}
	b.cols = append(b.cols, c)
	b.byName[c.Name] = c
	return nil
}

// Rows returns the number of rows in the batch.
func (b *Batch) Rows() int { return b.rows }

// Col returns the named fragment column, or nil.
func (b *Batch) Col(name string) *Column { return b.byName[name] }

// merge appends other's rows onto b. Both batches must have identical
// column sets (enforced by validateBatch before batches reach a merge).
func (b *Batch) merge(other *Batch) error {
	if len(b.cols) == 0 {
		b.cols = other.cols
		b.byName = other.byName
		b.rows = other.rows
		return nil
	}
	if len(other.cols) != len(b.cols) {
		return fmt.Errorf("engine: merging batches with %d vs %d columns", len(other.cols), len(b.cols))
	}
	for _, c := range b.cols {
		oc := other.byName[c.Name]
		if oc == nil || oc.Type != c.Type {
			return fmt.Errorf("engine: merging batches with mismatched column %q", c.Name)
		}
		appendColumnValues(c, oc)
	}
	b.rows += other.rows
	return nil
}

// appendColumnValues appends every value of src onto dst (types must match).
func appendColumnValues(dst, src *Column) {
	switch dst.Type {
	case ColInt64, ColTime:
		dst.Ints = append(dst.Ints, src.Ints...)
	case ColFloat64:
		dst.Floats = append(dst.Floats, src.Floats...)
	case ColPoint:
		dst.Points = append(dst.Points, src.Points...)
	case ColText:
		dst.Texts = append(dst.Texts, src.Texts...)
	}
}

// validateBatch checks that b covers exactly t's schema. The schema is fixed
// at build time (ingest appends rows, never columns), so validation needs no
// lock and lets async flushes assume structural success.
func (t *Table) validateBatch(b *Batch) error {
	if b == nil || b.Rows() == 0 {
		return fmt.Errorf("engine: empty batch for table %q", t.Name)
	}
	if len(b.cols) != len(t.Cols) {
		return fmt.Errorf("engine: batch has %d columns, table %q has %d", len(b.cols), t.Name, len(t.Cols))
	}
	for _, c := range t.Cols {
		bc := b.byName[c.Name]
		if bc == nil {
			return fmt.Errorf("engine: batch missing column %q of table %q", c.Name, t.Name)
		}
		if bc.Type != c.Type {
			return fmt.Errorf("engine: batch column %q is %v, table %q wants %v", c.Name, bc.Type, t.Name, c.Type)
		}
	}
	return nil
}

// appendBatch appends b's rows to the table, incrementally maintaining every
// index and extending every existing sample deterministically. Callers must
// hold the owning DB's data write lock; use DB.ApplyBatch.
func (t *Table) appendBatch(b *Batch) error {
	if err := t.validateBatch(b); err != nil {
		return err
	}
	start := t.Rows
	for _, c := range t.Cols {
		appendColumnValues(c, b.byName[c.Name])
	}
	t.Rows += b.rows
	t.maintainIndexes(start, b.rows)
	// Maintain the summary sketches incrementally. Sketch updates are
	// commutative, so any batching of the same row stream — including WAL
	// replay and checkpoint compaction — converges on the identical sketch.
	if t.Sketch != nil {
		times := t.Col(t.Sketch.TimeCol).Ints
		texts := t.Col(t.Sketch.TextCol).Texts
		for i := start; i < start+b.rows; i++ {
			t.Sketch.AddRow(times[i], texts[i])
		}
	}
	// Extend samples: membership of appended rows is a pure hash of
	// (sample seed, percent, base row id), so replaying the same appends on a
	// freshly built dataset reproduces identical samples — the property the
	// byte-identity-under-ingest tests rely on.
	for percent, s := range t.Samples {
		seed := t.sampleSeeds[percent]
		var keep []uint32
		for i := 0; i < b.rows; i++ {
			r := uint32(start + i)
			if sampleKeep(seed, percent, int(r)) {
				keep = append(keep, r)
			}
		}
		if len(keep) == 0 {
			continue
		}
		sstart := s.Rows
		for _, c := range s.Cols {
			if c.Name == "__base_row" {
				for _, r := range keep {
					c.Ints = append(c.Ints, int64(r))
				}
				continue
			}
			base := t.Col(c.Name)
			switch c.Type {
			case ColInt64, ColTime:
				for _, r := range keep {
					c.Ints = append(c.Ints, base.Ints[r])
				}
			case ColFloat64:
				for _, r := range keep {
					c.Floats = append(c.Floats, base.Floats[r])
				}
			case ColPoint:
				for _, r := range keep {
					c.Points = append(c.Points, base.Points[r])
				}
			case ColText:
				for _, r := range keep {
					c.Texts = append(c.Texts, base.Texts[r])
				}
			}
		}
		s.Rows += len(keep)
		s.maintainIndexes(sstart, len(keep))
	}
	return nil
}

// maintainIndexes inserts rows [start, start+n) into every index of t.
func (t *Table) maintainIndexes(start, n int) {
	for col, ix := range t.Indexes {
		c := t.Col(col)
		for i := start; i < start+n; i++ {
			row := uint32(i)
			switch ix.Kind {
			case IndexBTree:
				ix.btree.Insert(c.NumericAt(row), row)
			case IndexRTree:
				ix.rtree.Insert(c.Points[row], row)
			case IndexInverted:
				ix.invidx.AppendRow(row, c.Texts[row])
			}
		}
	}
}

// sampleKeep decides whether an appended base row joins the percent-sample
// built with seed. It intentionally differs from BuildSample's sequential
// rng draw: a stateless per-row hash keeps the decision independent of flush
// boundaries, so any batching of the same row stream yields the same sample.
func sampleKeep(seed int64, percent, row int) bool {
	x := uint64(seed) ^ uint64(row)*0x9E3779B97F4A7C15 ^ uint64(percent)<<32
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x%10000 < uint64(percent)*100
}

// ApplyBatch applies one append batch to the named base table: it takes the
// data write lock, logs the batch to the table's write-ahead log (when one is
// attached) so the flush is durable before it is visible, appends rows,
// maintains indexes and samples, bumps the table's (and its samples') data
// version with flush time at, and drops the now-stale optimizer statistics —
// then, outside the write lock, eagerly rebuilds statistics, checkpoints the
// WAL if it has grown past its bound, and fires the registered flush hooks.
// It returns the new data version.
func (db *DB) ApplyBatch(name string, b *Batch, at time.Time) (uint64, error) {
	return db.applyBatch(name, b, at, true)
}

// applyBatch is ApplyBatch with the WAL append switchable: startup replay
// applies recovered records through the same path but must not re-log them.
func (db *DB) applyBatch(name string, b *Batch, at time.Time, logIt bool) (uint64, error) {
	t := db.Table(name)
	if t == nil {
		return 0, fmt.Errorf("engine: ApplyBatch: unknown table %q", name)
	}
	if t.SampleOf != nil {
		return 0, fmt.Errorf("engine: ApplyBatch: %q is a sample table; ingest into its base", name)
	}
	wal := db.wal(name)
	db.dataMu.Lock()
	if wal != nil && logIt {
		// Validate first so a record is only logged for a batch that will
		// apply, then write-ahead: the record (and, under FsyncAlways, its
		// fsync) precedes the mutation, so an acknowledged flush can always
		// be replayed.
		if err := t.validateBatch(b); err != nil {
			db.dataMu.Unlock()
			return 0, err
		}
		if err := wal.append(t.DataVersion()+1, at, b, t.Vocab); err != nil {
			db.dataMu.Unlock()
			return 0, fmt.Errorf("engine: wal append for %q: %w", name, err)
		}
	}
	if err := t.appendBatch(b); err != nil {
		db.dataMu.Unlock()
		return 0, err
	}
	v := t.bumpVersion(at)
	for _, s := range t.Samples {
		s.bumpVersion(at)
	}
	db.mu.Lock()
	delete(db.stats, name)
	for _, s := range t.Samples {
		delete(db.stats, s.Name)
	}
	db.mu.Unlock()
	db.dataMu.Unlock()
	// Post-flush stats refresh: rebuild eagerly under the read lock so the
	// first post-flush query doesn't pay the build, and so a concurrent next
	// flush can't race the scan. Samples are only refreshable when registered
	// as DB tables (the workload layer registers them; bare engine callers
	// may not — their stats then rebuild lazily on first use).
	db.RLockData()
	db.Stats(name)
	for _, s := range t.Samples {
		if db.Table(s.Name) != nil {
			db.Stats(s.Name)
		}
	}
	if wal != nil && logIt {
		// Checkpoint under the read lock: writers are excluded, so the table
		// state serialized is exactly the state the newest record produced. A
		// checkpoint failure loses no data — the segments it would have
		// superseded stay on disk — so it must not fail the flush.
		if err := wal.maybeCheckpoint(t); err != nil {
			wal.noteCheckpointErr(err)
		}
	}
	db.RUnlockData()
	db.fireFlushHooks(name, v)
	return v, nil
}

// FlushStats describes one applied ingest flush.
type FlushStats struct {
	Table   string
	Version uint64
	Rows    int
	Took    time.Duration
}

// IngestorConfig tunes an Ingestor's adaptive flush policy.
type IngestorConfig struct {
	// MaxBatch is the size trigger: a pending buffer reaching this many rows
	// flushes immediately. <= 0 picks DefaultIngestMaxBatch.
	MaxBatch int
	// MinDelay floors the adaptive latency trigger. <= 0 picks
	// DefaultIngestMinDelay.
	MinDelay time.Duration
	// MaxDelay caps the latency trigger: no accepted row waits longer than
	// this for visibility. <= 0 picks DefaultIngestMaxDelay.
	MaxDelay time.Duration
	// Now is the clock (tests inject a fake); nil means time.Now.
	Now func() time.Time
}

// Default adaptive-flush tuning.
const (
	DefaultIngestMaxBatch = 512
	DefaultIngestMinDelay = 2 * time.Millisecond
	DefaultIngestMaxDelay = 200 * time.Millisecond
)

// Ingestor batches appends to one table with adaptive flushing: a flush
// fires when the pending buffer reaches MaxBatch rows (size trigger) or when
// a delay adapted to the observed append rate elapses (latency trigger).
// Sparse streams flush almost immediately — the delay tracks a multiple of
// the EWMA inter-append gap, floored at MinDelay — while dense streams let
// the size trigger dominate and only fall back to the MaxDelay ceiling,
// which bounds worst-case staleness. An Ingestor is safe for concurrent use.
type Ingestor struct {
	db    *DB
	table string
	cfg   IngestorConfig

	mu      sync.Mutex
	pending *Batch
	timer   *time.Timer
	lastAdd time.Time
	ewmaGap time.Duration
	closed  bool

	onFlush atomic.Pointer[func(FlushStats)]

	rowsIn  atomic.Int64
	flushes atomic.Int64
}

// NewIngestor returns an ingestor for the named base table.
func NewIngestor(db *DB, table string, cfg IngestorConfig) (*Ingestor, error) {
	t := db.Table(table)
	if t == nil {
		return nil, fmt.Errorf("engine: NewIngestor: unknown table %q", table)
	}
	if t.SampleOf != nil {
		return nil, fmt.Errorf("engine: NewIngestor: %q is a sample table", table)
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultIngestMaxBatch
	}
	if cfg.MinDelay <= 0 {
		cfg.MinDelay = DefaultIngestMinDelay
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = DefaultIngestMaxDelay
	}
	if cfg.MaxDelay < cfg.MinDelay {
		cfg.MaxDelay = cfg.MinDelay
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Ingestor{db: db, table: table, cfg: cfg}, nil
}

// SetOnFlush registers a callback fired after each applied flush (at most
// one; later calls replace earlier ones). It runs outside the ingestor's
// lock, after the DB's own flush hooks.
func (in *Ingestor) SetOnFlush(fn func(FlushStats)) { in.onFlush.Store(&fn) }

// Version returns the table's current data version.
func (in *Ingestor) Version() uint64 { return in.db.DataVersion(in.table) }

// Pending returns the buffered, not-yet-flushed row count.
func (in *Ingestor) Pending() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.pending == nil {
		return 0
	}
	return in.pending.Rows()
}

// Totals returns lifetime accepted rows and applied flushes.
func (in *Ingestor) Totals() (rows, flushes int64) {
	return in.rowsIn.Load(), in.flushes.Load()
}

// Add buffers one batch, flushing synchronously when the size trigger fires
// and arming the adaptive latency timer otherwise. flushed reports whether
// this call applied a flush.
func (in *Ingestor) Add(b *Batch) (flushed bool, err error) {
	t := in.db.Table(in.table)
	if err := t.validateBatch(b); err != nil {
		return false, err
	}
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return false, fmt.Errorf("engine: ingestor for %q is closed", in.table)
	}
	now := in.cfg.Now()
	if !in.lastAdd.IsZero() {
		gap := now.Sub(in.lastAdd)
		if gap < 0 {
			gap = 0
		}
		if in.ewmaGap == 0 {
			in.ewmaGap = gap
		} else {
			// EWMA with alpha 1/4, integer-friendly.
			in.ewmaGap += (gap - in.ewmaGap) / 4
		}
	}
	in.lastAdd = now
	if in.pending == nil {
		in.pending = NewBatch()
	}
	if err := in.pending.merge(b); err != nil {
		in.mu.Unlock()
		return false, err
	}
	in.rowsIn.Add(int64(b.Rows()))
	if in.pending.Rows() >= in.cfg.MaxBatch {
		in.mu.Unlock()
		_, err := in.Flush()
		return true, err
	}
	if in.timer == nil {
		// Arm once per pending generation — a steady stream must not keep
		// postponing the deadline.
		in.timer = time.AfterFunc(in.delay(), func() { _, _ = in.Flush() })
	}
	in.mu.Unlock()
	return false, nil
}

// delay computes the adaptive latency-trigger delay from the current EWMA
// inter-append gap. Callers hold in.mu.
func (in *Ingestor) delay() time.Duration {
	d := 8 * in.ewmaGap
	if d < in.cfg.MinDelay {
		d = in.cfg.MinDelay
	}
	if d > in.cfg.MaxDelay {
		d = in.cfg.MaxDelay
	}
	return d
}

// Flush applies the pending buffer now (a no-op returning the current
// version when nothing is pending) and returns the resulting data version.
func (in *Ingestor) Flush() (uint64, error) {
	in.mu.Lock()
	b := in.pending
	in.pending = nil
	if in.timer != nil {
		in.timer.Stop()
		in.timer = nil
	}
	in.mu.Unlock()
	if b == nil || b.Rows() == 0 {
		return in.Version(), nil
	}
	start := in.cfg.Now()
	v, err := in.db.ApplyBatch(in.table, b, start)
	if err != nil {
		return 0, err
	}
	took := in.cfg.Now().Sub(start)
	in.flushes.Add(1)
	if fn := in.onFlush.Load(); fn != nil && *fn != nil {
		(*fn)(FlushStats{Table: in.table, Version: v, Rows: b.Rows(), Took: took})
	}
	return v, nil
}

// Close flushes any pending rows and rejects further Adds.
func (in *Ingestor) Close() error {
	in.mu.Lock()
	in.closed = true
	in.mu.Unlock()
	_, err := in.Flush()
	return err
}
