package engine

import "math"

// histBuckets is the number of equi-width histogram buckets the optimizer
// keeps per numeric column — deliberately coarse, like a real system's
// default statistics target.
const histBuckets = 40

// geoGridDim is the resolution of the optimizer's spatial grid statistic.
const geoGridDim = 16

// Histogram is an equi-width histogram over a numeric/time column.
type Histogram struct {
	Min, Max float64
	Counts   []int
	Total    int
}

// BuildHistogram scans the column once and builds the histogram.
func BuildHistogram(c *Column) *Histogram {
	n := c.Len()
	h := &Histogram{Counts: make([]int, histBuckets), Total: n}
	if n == 0 {
		return h
	}
	h.Min, h.Max = c.NumericAt(0), c.NumericAt(0)
	for i := 1; i < n; i++ {
		v := c.NumericAt(uint32(i))
		if v < h.Min {
			h.Min = v
		}
		if v > h.Max {
			h.Max = v
		}
	}
	width := (h.Max - h.Min) / float64(histBuckets)
	if width <= 0 {
		h.Counts[0] = n
		return h
	}
	for i := 0; i < n; i++ {
		b := int((c.NumericAt(uint32(i)) - h.Min) / width)
		if b >= histBuckets {
			b = histBuckets - 1
		}
		h.Counts[b]++
	}
	return h
}

// EstimateRange returns the estimated fraction of rows in [lo, hi], assuming
// uniformity within buckets.
func (h *Histogram) EstimateRange(lo, hi float64) float64 {
	if h.Total == 0 || hi < lo {
		return 0
	}
	if h.Max <= h.Min {
		if lo <= h.Min && h.Min <= hi {
			return 1
		}
		return 0
	}
	width := (h.Max - h.Min) / float64(len(h.Counts))
	est := 0.0
	for b, cnt := range h.Counts {
		bLo := h.Min + float64(b)*width
		bHi := bLo + width
		overlapLo := math.Max(lo, bLo)
		overlapHi := math.Min(hi, bHi)
		if overlapHi <= overlapLo {
			continue
		}
		est += float64(cnt) * (overlapHi - overlapLo) / width
	}
	sel := est / float64(h.Total)
	if sel > 1 {
		sel = 1
	}
	return sel
}

// GeoGrid is a coarse spatial count grid over a point column.
type GeoGrid struct {
	Extent Rect
	Dim    int
	Counts []int
	Total  int
}

// BuildGeoGrid builds the grid statistic from a point column.
func BuildGeoGrid(c *Column) *GeoGrid {
	g := &GeoGrid{Dim: geoGridDim, Counts: make([]int, geoGridDim*geoGridDim), Total: len(c.Points)}
	if len(c.Points) == 0 {
		return g
	}
	g.Extent = PointRect(c.Points[0])
	for _, p := range c.Points[1:] {
		g.Extent = g.Extent.Extend(PointRect(p))
	}
	for _, p := range c.Points {
		x, y := g.cell(p)
		g.Counts[y*g.Dim+x]++
	}
	return g
}

func (g *GeoGrid) cell(p Point) (int, int) {
	w := g.Extent.MaxLon - g.Extent.MinLon
	h := g.Extent.MaxLat - g.Extent.MinLat
	if w <= 0 || h <= 0 {
		return 0, 0
	}
	x := int(float64(g.Dim) * (p.Lon - g.Extent.MinLon) / w)
	y := int(float64(g.Dim) * (p.Lat - g.Extent.MinLat) / h)
	if x >= g.Dim {
		x = g.Dim - 1
	}
	if y >= g.Dim {
		y = g.Dim - 1
	}
	if x < 0 {
		x = 0
	}
	if y < 0 {
		y = 0
	}
	return x, y
}

// EstimateBox returns the estimated fraction of rows inside box, assuming
// uniformity within each grid cell. The coarse grid makes small boxes in
// dense cities badly estimated — a realistic optimizer failure mode.
func (g *GeoGrid) EstimateBox(box Rect) float64 {
	if g.Total == 0 {
		return 0
	}
	cellW := (g.Extent.MaxLon - g.Extent.MinLon) / float64(g.Dim)
	cellH := (g.Extent.MaxLat - g.Extent.MinLat) / float64(g.Dim)
	if cellW <= 0 || cellH <= 0 {
		return 1
	}
	est := 0.0
	for y := 0; y < g.Dim; y++ {
		for x := 0; x < g.Dim; x++ {
			cell := Rect{
				MinLon: g.Extent.MinLon + float64(x)*cellW,
				MinLat: g.Extent.MinLat + float64(y)*cellH,
			}
			cell.MaxLon = cell.MinLon + cellW
			cell.MaxLat = cell.MinLat + cellH
			if !cell.Intersects(box) {
				continue
			}
			ow := math.Min(cell.MaxLon, box.MaxLon) - math.Max(cell.MinLon, box.MinLon)
			oh := math.Min(cell.MaxLat, box.MaxLat) - math.Max(cell.MinLat, box.MinLat)
			if ow < 0 {
				ow = 0
			}
			if oh < 0 {
				oh = 0
			}
			frac := (ow * oh) / (cellW * cellH)
			est += float64(g.Counts[y*g.Dim+x]) * frac
		}
	}
	sel := est / float64(g.Total)
	if sel > 1 {
		sel = 1
	}
	return sel
}

// TableStats bundles the optimizer's statistics for one table.
type TableStats struct {
	Hists map[string]*Histogram
	Grids map[string]*GeoGrid
	// AvgKeywordSel is the average posting-list length divided by row count,
	// capped at DefaultKeywordSel: optimizers keep no per-term statistics
	// for text-match operators and fall back to a fixed default (PostgreSQL
	// uses a constant match selectivity for @@). Frequent (Zipf-head)
	// keywords are therefore underestimated by orders of magnitude — the
	// failure mode behind the paper's Figure 1.
	AvgKeywordSel map[string]float64
}

// DefaultKeywordSel is the optimizer's fixed text-match selectivity guess.
const DefaultKeywordSel = 0.0005

// GeoSelFloor is the lower clamp on spatial-operator selectivity estimates:
// spatial estimators refuse to predict below a fixed floor (PostGIS-style),
// so very small boxes in dense areas are heavily *over*estimated and the
// optimizer shies away from R-tree scans that would actually be fast.
const GeoSelFloor = 0.005

// BuildTableStats computes statistics for all indexed columns of a table.
func BuildTableStats(t *Table) *TableStats {
	st := &TableStats{
		Hists:         make(map[string]*Histogram),
		Grids:         make(map[string]*GeoGrid),
		AvgKeywordSel: make(map[string]float64),
	}
	for _, c := range t.Cols {
		switch c.Type {
		case ColInt64, ColFloat64, ColTime:
			st.Hists[c.Name] = BuildHistogram(c)
		case ColPoint:
			st.Grids[c.Name] = BuildGeoGrid(c)
		case ColText:
			sel := DefaultKeywordSel
			if ix := t.Index(c.Name); ix != nil && ix.Kind == IndexInverted {
				avg := ix.invidx.AvgPostingLen() / math.Max(1, float64(t.Rows))
				if avg < sel {
					sel = avg
				}
			}
			st.AvgKeywordSel[c.Name] = sel
		}
	}
	return st
}

// EstimateSelectivity returns the optimizer's (imperfect) selectivity
// estimate for a predicate.
func (st *TableStats) EstimateSelectivity(p Predicate) float64 {
	switch p.Kind {
	case PredKeyword:
		if s, ok := st.AvgKeywordSel[p.Col]; ok {
			return clampSel(s)
		}
		return DefaultKeywordSel
	case PredRange:
		if h, ok := st.Hists[p.Col]; ok {
			return clampSel(h.EstimateRange(p.Lo, p.Hi))
		}
		return 0.1
	case PredGeo:
		if g, ok := st.Grids[p.Col]; ok {
			s := g.EstimateBox(p.Box)
			if s < GeoSelFloor {
				s = GeoSelFloor
			}
			return clampSel(s)
		}
		return 0.1
	}
	return 0.1
}

func clampSel(s float64) float64 {
	if s < 1e-7 {
		return 1e-7
	}
	if s > 1 {
		return 1
	}
	return s
}

// TrueSelectivity computes the exact fraction of the table's rows matching p
// (used to build per-query ground truth for QTEs and workload bucketing).
func TrueSelectivity(t *Table, p Predicate) float64 {
	return trueSelectivityCached(t, p, nil)
}

// trueSelectivityCached is TrueSelectivity with index scans optionally
// served from a lookup cache. Without a cache, a btree-served range predicate
// is counted via BTree.Visit instead of materializing (and sorting) the full
// row-id slice; with a cache the materializing lookup still runs so the scan
// is shared with the option executions of the same query.
func trueSelectivityCached(t *Table, p Predicate, c *LookupCache) float64 {
	if t.Rows == 0 {
		return 0
	}
	if ix := t.Index(p.Col); ix != nil {
		if c == nil && ix.Kind == IndexBTree && p.Kind == PredRange {
			return float64(ix.btree.CountRange(p.Lo, p.Hi)) / float64(t.Rows)
		}
		if rows, _, err := c.lookup(t, ix, p); err == nil {
			return float64(len(rows)) / float64(t.Rows)
		}
	}
	n := 0
	for r := 0; r < t.Rows; r++ {
		if p.Eval(t, uint32(r)) {
			n++
		}
	}
	return float64(n) / float64(t.Rows)
}
