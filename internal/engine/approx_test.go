package engine

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// approxCountQuery is the sampling tests' workhorse: one indexed range
// predicate matching roughly half the table, so sampled-count statistics
// have enough mass for the normal-approximation CIs to be meaningful.
func approxCountQuery() *Query {
	return &Query{
		Table: "events",
		Preds: []Predicate{{Col: "ts", Kind: PredRange, Lo: 2000, Hi: 7000}},
	}
}

// TestApproxRowsPlanIndependent: the Bernoulli sample is a pure function of
// (seed, row id), so every physical plan — any index subset, or the forced
// sequential scan — keeps exactly the same rows. This is the approximate
// tier's analogue of TestAllHintPlansEquivalent.
func TestApproxRowsPlanIndependent(t *testing.T) {
	db := buildTestDB(t, 4_000, 1)
	q := testQuery(db)
	q.Approx = ApproxSpec{Method: ApproxRows, Rate: 0.3}
	ref, _, err := db.Run(q, ForcedHint(nil, JoinAuto))
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Approx || ref.Weight != 1/0.3 || ref.SampledRows != len(ref.RowIDs) {
		t.Fatalf("approx metadata wrong: %+v", ref)
	}
	for mask := 0; mask < 8; mask++ {
		res, _, err := db.Run(q, ForcedHint(PositionsFromMask(uint32(mask), 3), JoinAuto))
		if err != nil {
			t.Fatalf("mask %d: %v", mask, err)
		}
		if !equalRows(res.RowIDs, ref.RowIDs) {
			t.Errorf("mask %d: sampled rows differ from seq-scan sample", mask)
		}
	}
}

// TestApproxRowsSubsetAndScaling: the sample is a subset of the exact result
// and every binned cell count is the kept-count scaled by exactly 1/rate.
func TestApproxRowsSubsetAndScaling(t *testing.T) {
	db := buildTestDB(t, 4_000, 1)
	exactQ := approxCountQuery()
	exactQ.Bin = &BinSpec{Col: "loc", Extent: Rect{MinLon: 0, MinLat: 0, MaxLon: 100, MaxLat: 50}, W: 8, H: 8}
	exact, _, err := db.Run(exactQ, AutoHint())
	if err != nil {
		t.Fatal(err)
	}
	q := exactQ.Clone()
	q.Approx = ApproxSpec{Method: ApproxRows, Rate: 0.25}
	res, _, err := db.Run(q, AutoHint())
	if err != nil {
		t.Fatal(err)
	}
	exactSet := make(map[uint32]bool, len(exact.RowIDs))
	for _, r := range exact.RowIDs {
		exactSet[r] = true
	}
	for _, r := range res.RowIDs {
		if !exactSet[r] {
			t.Fatalf("sampled row %d not in the exact result", r)
		}
	}
	for cell, v := range res.Bins {
		if ev, ok := exact.Bins[cell]; !ok {
			t.Fatalf("sampled cell %d missing from exact heatmap", cell)
		} else if v > ev*res.Weight {
			t.Fatalf("cell %d: scaled count %.1f exceeds max possible %.1f", cell, v, ev*res.Weight)
		}
		kept := v / res.Weight
		if math.Abs(kept-math.Round(kept)) > 1e-9 {
			t.Fatalf("cell %d: %.6f not an integer multiple of weight", cell, v)
		}
	}
}

// TestApproxRowsUnbiasedCoverage is the tier's headline statistical test:
// across 300 sampling seeds, the scaled count estimate (kept/rate) must (a)
// average out to the true count within 2%, and (b) fall inside its stated
// 95% CI at least 88% of the time. Both thresholds sit below the nominal
// guarantees (0% bias, 95% coverage) so the fixed-seed run can never flake,
// while a biased estimator or a mis-stated interval still fails hard.
func TestApproxRowsUnbiasedCoverage(t *testing.T) {
	db := buildTestDB(t, 4_000, 1)
	exact, _, err := db.Run(approxCountQuery(), AutoHint())
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(len(exact.RowIDs))
	if truth < 500 {
		t.Fatalf("fixture too selective (%d rows) for CLT-based assertions", len(exact.RowIDs))
	}
	const rate, seeds = 0.2, 300
	sum, covered := 0.0, 0
	for s := 1; s <= seeds; s++ {
		q := approxCountQuery()
		q.Approx = ApproxSpec{Method: ApproxRows, Rate: rate, Seed: uint64(s)}
		res, _, err := db.Run(q, AutoHint())
		if err != nil {
			t.Fatal(err)
		}
		kept := len(res.RowIDs)
		est := float64(kept) * res.Weight
		sum += est
		if math.Abs(est-truth) <= SampleCountCI(kept, rate, 1.96) {
			covered++
		}
	}
	if bias := math.Abs(sum/seeds-truth) / truth; bias > 0.02 {
		t.Errorf("mean estimate off truth by %.1f%% over %d seeds, want ≤ 2%%", bias*100, seeds)
	}
	if frac := float64(covered) / seeds; frac < 0.88 {
		t.Errorf("stated 95%% CI covered truth on %.1f%% of seeds, want ≥ 88%%", frac*100)
	}
}

// TestApproxRowsCostScales: skipping happens before per-row cost accrues, so
// a 10% sample's virtual fetch/scan work lands near 10% of exact — the
// property that makes the action budget-feasible, not just fast wall-clock.
func TestApproxRowsCostScales(t *testing.T) {
	db := buildTestDB(t, 4_000, 1)
	q := approxCountQuery()
	_, exactStats, err := db.Run(q, ForcedHint(nil, JoinAuto))
	if err != nil {
		t.Fatal(err)
	}
	q.Approx = ApproxSpec{Method: ApproxRows, Rate: 0.1}
	_, sampStats, err := db.Run(q, ForcedHint(nil, JoinAuto))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(sampStats.RowsScanned) / float64(exactStats.RowsScanned)
	if ratio < 0.05 || ratio > 0.15 {
		t.Errorf("10%% sample scanned %.1f%% of rows, want ≈10%%", ratio*100)
	}
	if sampStats.SimMs >= exactStats.SimMs {
		t.Errorf("sampled SimMs %.3f not below exact %.3f", sampStats.SimMs, exactStats.SimMs)
	}
}

// TestApproxReservoir: the drawn sample has exactly K rows, is a subset of
// the exact result in ascending order, reports the exact matched count, and
// is identical under every physical plan.
func TestApproxReservoir(t *testing.T) {
	db := buildTestDB(t, 4_000, 1)
	exact, _, err := db.Run(approxCountQuery(), AutoHint())
	if err != nil {
		t.Fatal(err)
	}
	const k = 64
	q := approxCountQuery()
	q.Approx = ApproxSpec{Method: ApproxReservoir, K: k}
	ref, _, err := db.Run(q, ForcedHint(nil, JoinAuto))
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.RowIDs) != k {
		t.Fatalf("reservoir kept %d rows, want %d", len(ref.RowIDs), k)
	}
	if ref.MatchedRows != len(exact.RowIDs) {
		t.Fatalf("MatchedRows %d, want exact %d", ref.MatchedRows, len(exact.RowIDs))
	}
	if want := float64(ref.MatchedRows) / k; ref.Weight != want {
		t.Fatalf("Weight %.4f, want matched/K = %.4f", ref.Weight, want)
	}
	exactSet := make(map[uint32]bool, len(exact.RowIDs))
	for _, r := range exact.RowIDs {
		exactSet[r] = true
	}
	for i, r := range ref.RowIDs {
		if !exactSet[r] {
			t.Fatalf("reservoir row %d not in exact result", r)
		}
		if i > 0 && ref.RowIDs[i-1] >= r {
			t.Fatal("reservoir rows not strictly ascending")
		}
	}
	for mask := 0; mask < 2; mask++ { // seq scan and the ts index path
		res, _, err := db.Run(q, ForcedHint(PositionsFromMask(uint32(mask), 1), JoinAuto))
		if err != nil {
			t.Fatal(err)
		}
		if !equalRows(res.RowIDs, ref.RowIDs) {
			t.Errorf("mask %d: reservoir draw differs across plans", mask)
		}
	}
}

// TestApproxReservoirSmallMatch: when the match count is at or under K the
// reservoir degenerates to the exact result at weight 1.
func TestApproxReservoirSmallMatch(t *testing.T) {
	db := buildTestDB(t, 4_000, 1)
	exact, _, err := db.Run(testQuery(db), AutoHint())
	if err != nil {
		t.Fatal(err)
	}
	q := testQuery(db)
	q.Approx = ApproxSpec{Method: ApproxReservoir, K: len(exact.RowIDs) + 10}
	res, _, err := db.Run(q, AutoHint())
	if err != nil {
		t.Fatal(err)
	}
	if !equalRows(res.RowIDs, exact.RowIDs) || res.Weight != 1 {
		t.Fatalf("undersized match must return the exact rows at weight 1, got %d rows weight %.2f",
			len(res.RowIDs), res.Weight)
	}
	if !res.Approx || res.MatchedRows != len(exact.RowIDs) {
		t.Fatalf("approx metadata wrong: %+v", res)
	}
}

// TestApproxValidate: the spec combinations the executor does not define are
// rejected before any work happens.
func TestApproxValidate(t *testing.T) {
	db := buildTestDB(t, 500, 1)
	if _, err := db.Table("events").BuildSample(20, 1); err != nil {
		t.Fatal(err)
	}
	base := approxCountQuery()
	for name, mut := range map[string]func(q *Query){
		"join": func(q *Query) {
			q.Approx = ApproxSpec{Method: ApproxRows, Rate: 0.5}
			q.Join = &JoinClause{Table: "dims", LeftCol: "fk", RightCol: "id"}
		},
		"sample-table": func(q *Query) {
			q.Approx = ApproxSpec{Method: ApproxRows, Rate: 0.5}
			q.SamplePercent = 20
		},
		"rate-zero": func(q *Query) { q.Approx = ApproxSpec{Method: ApproxRows} },
		"rate-one":  func(q *Query) { q.Approx = ApproxSpec{Method: ApproxRows, Rate: 1} },
		"k-zero":    func(q *Query) { q.Approx = ApproxSpec{Method: ApproxReservoir} },
		"reservoir-limit": func(q *Query) {
			q.Approx = ApproxSpec{Method: ApproxReservoir, K: 10}
			q.Limit = 5
		},
	} {
		q := base.Clone()
		mut(q)
		if _, _, err := db.Run(q, AutoHint()); err == nil {
			t.Errorf("%s: invalid spec accepted", name)
		}
	}
}

// TestApproxSketchRun: sketch-served aggregates through the normal Run path —
// CMS keyword counts honor the one-sided bound against the exact executor,
// HLL distinct counts carry a sane CI, and both cost a vanishing fraction of
// the exact plan's virtual time.
func TestApproxSketchRun(t *testing.T) {
	db := buildTestDB(t, 4_000, 1)
	tb := db.Table("events")
	if _, err := tb.BuildSketch("text", "ts", time.Second); err != nil {
		t.Fatal(err)
	}
	kw := &Query{Table: "events", Preds: []Predicate{
		{Col: "text", Kind: PredKeyword, Word: 3, WordText: "c"},
		{Col: "ts", Kind: PredRange, Lo: 2000, Hi: 7000},
	}}
	exact, exactStats, err := db.Run(kw, ForcedHint(nil, JoinAuto))
	if err != nil {
		t.Fatal(err)
	}
	q := kw.Clone()
	q.Approx = ApproxSpec{Method: ApproxSketchCount}
	res, stats, err := db.Run(q, AutoHint())
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(len(exact.RowIDs))
	if !res.Approx || !res.HasAgg {
		t.Fatalf("sketch result not marked approximate: %+v", res)
	}
	if res.AggValue < truth || res.AggValue > truth+res.AggBound {
		t.Fatalf("CMS estimate %.0f outside [truth, truth+bound] = [%.0f, %.1f]",
			res.AggValue, truth, truth+res.AggBound)
	}
	if stats.SimMs >= exactStats.SimMs/10 {
		t.Errorf("sketch probe SimMs %.4f not ≪ exact %.4f", stats.SimMs, exactStats.SimMs)
	}
	// Determinism: a second probe returns identical bytes.
	res2, stats2, err := db.Run(q, AutoHint())
	if err != nil || !reflect.DeepEqual(res, res2) || stats.SimMs != stats2.SimMs {
		t.Fatalf("sketch probe not deterministic: %v", err)
	}

	dq := &Query{Table: "events", Preds: []Predicate{{Col: "ts", Kind: PredRange, Lo: 2000, Hi: 7000}},
		Approx: ApproxSpec{Method: ApproxSketchDistinct}}
	dres, _, err := db.Run(dq, AutoHint())
	if err != nil {
		t.Fatal(err)
	}
	if !dres.HasAgg || dres.AggValue <= 0 || dres.AggBound <= 0 {
		t.Fatalf("HLL result malformed: %+v", dres)
	}
	alo, ahi := tb.Sketch.AlignWindow(2000, 7000)
	var rows []uint32
	times := tb.Col("ts").Ints
	for r := 0; r < tb.Rows; r++ {
		if times[r] >= alo && times[r] <= ahi {
			rows = append(rows, uint32(r))
		}
	}
	dTruth := float64(DistinctWordsExact(tb, rows, "text"))
	if math.Abs(dres.AggValue-dTruth) > math.Max(2, 2*dres.AggBound) {
		t.Fatalf("HLL estimate %.1f vs exact %.0f over aligned window, bound %.1f",
			dres.AggValue, dTruth, dres.AggBound)
	}

	// Shapes the summaries cannot serve are refused.
	for name, bad := range map[string]*Query{
		"geo-pred": {Table: "events", Preds: []Predicate{
			{Col: "loc", Kind: PredGeo, Box: Rect{MaxLon: 50, MaxLat: 25}}},
			Approx: ApproxSpec{Method: ApproxSketchCount}},
		"no-keyword": {Table: "events", Preds: []Predicate{
			{Col: "ts", Kind: PredRange, Lo: 0, Hi: 100}},
			Approx: ApproxSpec{Method: ApproxSketchCount}},
		"hll-keyword": {Table: "events", Preds: []Predicate{
			{Col: "text", Kind: PredKeyword, Word: 3}},
			Approx: ApproxSpec{Method: ApproxSketchDistinct}},
		"range-not-time": {Table: "events", Preds: []Predicate{
			{Col: "text", Kind: PredKeyword, Word: 3},
			{Col: "val", Kind: PredRange, Lo: 0, Hi: 10}},
			Approx: ApproxSpec{Method: ApproxSketchCount}},
	} {
		if _, _, err := db.Run(bad, AutoHint()); err == nil {
			t.Errorf("%s: unservable sketch query accepted", name)
		}
	}
	// A table without a sketch refuses sketch methods.
	db2 := buildTestDB(t, 100, 2)
	if _, _, err := db2.Run(q, AutoHint()); err == nil {
		t.Error("sketch query accepted on a table with no sketch")
	}
}

// TestApproxHeatmapDifferentialFuzz: property-based differential check of
// sampled heatmaps against the exact executor over random rates, seeds, and
// windows — cells are a subset, scaled counts are integer multiples of the
// weight, and a repeated run returns identical bytes.
func TestApproxHeatmapDifferentialFuzz(t *testing.T) {
	db := buildTestDB(t, 3_000, 5)
	prop := func(seed uint64, rawRate uint16, winLo uint16) bool {
		rate := 0.05 + float64(rawRate%900)/1000 // [0.05, 0.95)
		lo := float64(winLo % 8000)
		q := &Query{
			Table: "events",
			Preds: []Predicate{{Col: "ts", Kind: PredRange, Lo: lo, Hi: lo + 2000}},
			Bin:   &BinSpec{Col: "loc", Extent: Rect{MinLon: 0, MinLat: 0, MaxLon: 100, MaxLat: 50}, W: 16, H: 16},
		}
		exact, _, err := db.Run(q, AutoHint())
		if err != nil {
			return false
		}
		q.Approx = ApproxSpec{Method: ApproxRows, Rate: rate, Seed: seed}
		a, _, err := db.Run(q, AutoHint())
		if err != nil {
			return false
		}
		b, _, err := db.Run(q, AutoHint())
		if err != nil || !reflect.DeepEqual(a, b) {
			return false
		}
		for cell, v := range a.Bins {
			kept := v / a.Weight
			if math.Abs(kept-math.Round(kept)) > 1e-9 {
				return false
			}
			if ev, ok := exact.Bins[cell]; !ok || kept > ev+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestApproxFingerprintSeparation: every distinct approximation spec draws a
// distinct plan fingerprint (so caches can never alias across fidelities or
// parameters), while an exact query's fingerprint ignores the Approx struct
// entirely — the bit-identity carve-out's cache-key face.
func TestApproxFingerprintSeparation(t *testing.T) {
	db := buildTestDB(t, 100, 1)
	q := testQuery(db)
	specs := []ApproxSpec{
		{},
		{Method: ApproxRows, Rate: 0.1},
		{Method: ApproxRows, Rate: 0.2},
		{Method: ApproxRows, Rate: 0.2, Seed: 7},
		{Method: ApproxReservoir, K: 100},
		{Method: ApproxReservoir, K: 200},
		{Method: ApproxSketchCount},
		{Method: ApproxSketchDistinct},
	}
	seen := make(map[uint64]int)
	for i, s := range specs {
		qc := q.Clone()
		qc.Approx = s
		fp := planFingerprint(qc, nil, JoinAuto)
		if prev, dup := seen[fp]; dup {
			t.Errorf("specs %d and %d share fingerprint %x", prev, i, fp)
		}
		seen[fp] = i
	}
	// The zero spec's fingerprint equals the plain query's (field absent vs
	// zero must be indistinguishable — exact keys never move).
	if fp := planFingerprint(q, nil, JoinAuto); fp != func() uint64 {
		qc := q.Clone()
		qc.Approx = ApproxSpec{}
		return planFingerprint(qc, nil, JoinAuto)
	}() {
		t.Error("zero ApproxSpec changed the exact fingerprint")
	}
}

// TestApproxSQLRendering: the rendered SQL names the approximation so logs
// and traces show what actually ran.
func TestApproxSQLRendering(t *testing.T) {
	q := approxCountQuery()
	q.Approx = ApproxSpec{Method: ApproxRows, Rate: 0.25, Seed: 9}
	if sql := q.SQL(AutoHint()); !strings.Contains(sql, "TABLESAMPLE BERNOULLI (25.0000) REPEATABLE (9)") {
		t.Errorf("rows SQL missing TABLESAMPLE clause: %s", sql)
	}
	q.Approx = ApproxSpec{Method: ApproxReservoir, K: 500, Seed: 9}
	if sql := q.SQL(AutoHint()); !strings.Contains(sql, "TABLESAMPLE RESERVOIR (500 ROWS) REPEATABLE (9)") {
		t.Errorf("reservoir SQL missing TABLESAMPLE clause: %s", sql)
	}
	q.Approx = ApproxSpec{Method: ApproxSketchCount}
	if sql := q.SQL(AutoHint()); !strings.Contains(sql, "APPROX_COUNT(*)") {
		t.Errorf("CMS SQL missing APPROX_COUNT: %s", sql)
	}
	q.Approx = ApproxSpec{Method: ApproxSketchDistinct}
	if sql := q.SQL(AutoHint()); !strings.Contains(sql, "APPROX_DISTINCT(*)") {
		t.Errorf("HLL SQL missing APPROX_DISTINCT: %s", sql)
	}
}
