package engine

import (
	"fmt"
	"testing"
)

// BenchmarkEngineExecuteJoinPlan measures the executor's join paths. The
// hash-join build table, the merge-join sort buffer, and the nest-loop /
// merge-join probe cursor are pooled scratch (see execContext), so
// steady-state executions should not allocate per join beyond the escaping
// Result — alloc_guard_test.go pins the ceilings.
func BenchmarkEngineExecuteJoinPlan(b *testing.B) {
	db := buildTestDB(b, 20_000, 5)
	q := testQuery(db)
	q.Join = &JoinClause{
		Table: "dims", LeftCol: "fk", RightCol: "id",
		Preds: []Predicate{{Col: "weight", Kind: PredRange, Lo: 2, Hi: 9}},
	}
	for _, jm := range []JoinMethod{NestLoopJoin, HashJoin, MergeJoin} {
		b.Run(fmt.Sprint(jm), func(b *testing.B) {
			hint := ForcedHint([]int{1}, jm)
			if _, _, err := db.Run(q, hint); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := db.Run(q, hint); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
