package engine

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"
	"time"
)

// ingestBatch builds a valid append batch for buildTestDB's events table,
// deterministic in (seed, n).
func ingestBatch(t testing.TB, seed int64, n int) *Batch {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	texts := make([][]uint32, n)
	times := make([]int64, n)
	points := make([]Point, n)
	vals := make([]float64, n)
	keys := make([]int64, n)
	for i := 0; i < n; i++ {
		k := rng.Intn(4) + 1
		toks := make([]uint32, 0, k)
		for j := 0; j < k; j++ {
			toks = append(toks, uint32(rng.Intn(50))+1)
		}
		texts[i] = SortTokens(toks)
		times[i] = int64(rng.Intn(10000))
		points[i] = Point{Lon: rng.Float64() * 100, Lat: rng.Float64() * 50}
		vals[i] = rng.Float64() * 1000
		keys[i] = int64(rng.Intn(100))
	}
	b := NewBatch()
	for _, c := range []*Column{
		{Name: "text", Type: ColText, Texts: texts},
		{Name: "ts", Type: ColTime, Ints: times},
		{Name: "loc", Type: ColPoint, Points: points},
		{Name: "val", Type: ColFloat64, Floats: vals},
		{Name: "fk", Type: ColInt64, Ints: keys},
	} {
		if err := b.AddColumn(c); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

// sameTableData compares every column of two tables value for value.
func sameTableData(t *testing.T, a, b *Table) {
	t.Helper()
	if a.Rows != b.Rows {
		t.Fatalf("%s: rows %d vs %d", a.Name, a.Rows, b.Rows)
	}
	if len(a.Cols) != len(b.Cols) {
		t.Fatalf("%s: %d vs %d columns", a.Name, len(a.Cols), len(b.Cols))
	}
	for _, ca := range a.Cols {
		cb := b.Col(ca.Name)
		switch ca.Type {
		case ColInt64, ColTime:
			if !slices.Equal(ca.Ints, cb.Ints) {
				t.Errorf("%s.%s int data diverges", a.Name, ca.Name)
			}
		case ColFloat64:
			if !slices.Equal(ca.Floats, cb.Floats) {
				t.Errorf("%s.%s float data diverges", a.Name, ca.Name)
			}
		case ColPoint:
			if !slices.Equal(ca.Points, cb.Points) {
				t.Errorf("%s.%s point data diverges", a.Name, ca.Name)
			}
		case ColText:
			if len(ca.Texts) != len(cb.Texts) {
				t.Fatalf("%s.%s text rows diverge", a.Name, ca.Name)
			}
			for i := range ca.Texts {
				if !slices.Equal(ca.Texts[i], cb.Texts[i]) {
					t.Errorf("%s.%s row %d tokens diverge", a.Name, ca.Name, i)
				}
			}
		}
	}
}

// TestAppendBatchFlushBoundaryIndependent is the write path's determinism
// contract: the same row stream applied as many small flushes or one big one
// produces identical table data, identical sample membership, and identical
// index answers — which is what lets a from-scratch replay serve as the
// oracle in the reads-during-ingest byte-identity tests.
func TestAppendBatchFlushBoundaryIndependent(t *testing.T) {
	dbA := buildTestDB(t, 1000, 7)
	dbB := buildTestDB(t, 1000, 7)
	if _, err := dbA.Table("events").BuildSample(20, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := dbB.Table("events").BuildSample(20, 7); err != nil {
		t.Fatal(err)
	}

	// A: three separate flushes. B: the same rows as one merged flush.
	at := time.Unix(1700000000, 0)
	merged := NewBatch()
	for i := int64(0); i < 3; i++ {
		b := ingestBatch(t, 100+i, 40)
		if _, err := dbA.ApplyBatch("events", b, at.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
		if err := merged.merge(ingestBatch(t, 100+i, 40)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := dbB.ApplyBatch("events", merged, at); err != nil {
		t.Fatal(err)
	}

	ta, tb := dbA.Table("events"), dbB.Table("events")
	sameTableData(t, ta, tb)
	sameTableData(t, ta.Samples[20], tb.Samples[20])

	// Index answers (rows AND entries touched — entries feed the simulated
	// cost, so tree shape must also be flush-boundary independent).
	preds := []Predicate{
		{Col: "ts", Kind: PredRange, Lo: 0, Hi: 5000},
		{Col: "val", Kind: PredRange, Lo: 100, Hi: 700},
		{Col: "loc", Kind: PredGeo, Box: Rect{MinLon: 10, MinLat: 5, MaxLon: 80, MaxLat: 45}},
		{Col: "text", Kind: PredKeyword, Word: 3},
	}
	for _, p := range preds {
		ra, ea, err := ta.Index(p.Col).Lookup(p)
		if err != nil {
			t.Fatal(err)
		}
		rb, eb, err := tb.Index(p.Col).Lookup(p)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(ra, rb) {
			t.Errorf("%s lookup rows diverge across flush boundaries", p.Col)
		}
		if ea != eb {
			t.Errorf("%s lookup entries %d vs %d across flush boundaries", p.Col, ea, eb)
		}
	}

	// Versions differ (3 flushes vs 1) — only data must match.
	if v := ta.DataVersion(); v != 3 {
		t.Errorf("A version = %d, want 3", v)
	}
	if v := tb.DataVersion(); v != 1 {
		t.Errorf("B version = %d, want 1", v)
	}
	if v := ta.Samples[20].DataVersion(); v != 3 {
		t.Errorf("A sample version = %d, want 3 (samples bump with their base)", v)
	}
}

// TestIncrementalIndexMatchesBulkBuild: rows inserted one at a time answer
// exactly like an index built over the final data.
func TestIncrementalIndexMatchesBulkBuild(t *testing.T) {
	db := buildTestDB(t, 500, 11)
	tb := db.Table("events")
	for i := int64(0); i < 4; i++ {
		if _, err := db.ApplyBatch("events", ingestBatch(t, 200+i, 77), time.Unix(1700000000+i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	// Rebuild each index from the (post-ingest) column data on a shadow
	// table sharing the columns.
	shadow := NewTable("shadow", tb.ScaleFactor)
	for _, c := range tb.Cols {
		if err := shadow.AddColumn(c); err != nil {
			t.Fatal(err)
		}
	}
	for col, ix := range tb.Indexes {
		if _, err := shadow.BuildIndex(col, ix.Kind); err != nil {
			t.Fatal(err)
		}
	}
	preds := []Predicate{
		{Col: "ts", Kind: PredRange, Lo: 2000, Hi: 8000},
		{Col: "loc", Kind: PredGeo, Box: Rect{MinLon: 0, MinLat: 0, MaxLon: 50, MaxLat: 25}},
		{Col: "text", Kind: PredKeyword, Word: 7},
	}
	for _, p := range preds {
		got, _, err := tb.Index(p.Col).Lookup(p)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := shadow.Index(p.Col).Lookup(p)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(got, want) {
			t.Errorf("%s: incremental index answers diverge from bulk rebuild (%d vs %d rows)",
				p.Col, len(got), len(want))
		}
	}
}

// TestSampleKeepStateless: membership is a pure function of
// (seed, percent, row) with roughly the right rate.
func TestSampleKeepStateless(t *testing.T) {
	kept := 0
	for row := 0; row < 100000; row++ {
		a := sampleKeep(42, 20, row)
		if b := sampleKeep(42, 20, row); a != b {
			t.Fatalf("sampleKeep not deterministic at row %d", row)
		}
		if a {
			kept++
		}
	}
	if kept < 18000 || kept > 22000 {
		t.Errorf("20%% sample kept %d of 100000", kept)
	}
	// Different seeds decorrelate.
	same := 0
	for row := 0; row < 1000; row++ {
		if sampleKeep(1, 20, row) == sampleKeep(2, 20, row) {
			same++
		}
	}
	if same == 1000 {
		t.Error("seed does not affect sample membership")
	}
}

// TestVersionsWithin pins the ttl-hint version-window semantics.
func TestVersionsWithin(t *testing.T) {
	tb := NewTable("t", 1)
	t0 := time.Unix(1700000000, 0)
	// Flushes at t0, t0+10s, t0+20s → versions 1, 2, 3.
	for i := 0; i < 3; i++ {
		tb.bumpVersion(t0.Add(time.Duration(i*10) * time.Second))
	}
	now := t0.Add(25 * time.Second)

	if got := tb.VersionsWithin(0, now); !slices.Equal(got, []uint64{3}) {
		t.Errorf("ttl 0 → %v, want [3]", got)
	}
	// 6s window: only the t0+20s bump (to v3) is inside → v2 still fresh.
	if got := tb.VersionsWithin(6*time.Second, now); !slices.Equal(got, []uint64{3, 2}) {
		t.Errorf("ttl 6s → %v, want [3 2]", got)
	}
	// 16s window: bumps at t0+20s and t0+10s → v2 and v1 acceptable.
	if got := tb.VersionsWithin(16*time.Second, now); !slices.Equal(got, []uint64{3, 2, 1}) {
		t.Errorf("ttl 16s → %v, want [3 2 1]", got)
	}
	// Huge window: every recorded bump, down to version 0.
	if got := tb.VersionsWithin(time.Hour, now); !slices.Equal(got, []uint64{3, 2, 1, 0}) {
		t.Errorf("ttl 1h → %v, want [3 2 1 0]", got)
	}
}

// TestVersionHistoryBounded: the flush history ring never exceeds its cap.
func TestVersionHistoryBounded(t *testing.T) {
	tb := NewTable("t", 1)
	t0 := time.Unix(1700000000, 0)
	for i := 0; i < versionHistoryCap*3; i++ {
		tb.bumpVersion(t0.Add(time.Duration(i) * time.Second))
	}
	tb.histMu.Lock()
	n := len(tb.history)
	tb.histMu.Unlock()
	if n > versionHistoryCap {
		t.Errorf("history holds %d stamps, cap %d", n, versionHistoryCap)
	}
	// A window covering everything still returns at most cap+1 versions.
	got := tb.VersionsWithin(time.Hour, t0.Add(time.Duration(versionHistoryCap*3)*time.Second))
	if len(got) > versionHistoryCap+1 {
		t.Errorf("VersionsWithin returned %d versions, cap %d", len(got), versionHistoryCap+1)
	}
}

// TestApplyBatchErrors: schema and targeting mistakes are rejected before
// any mutation.
func TestApplyBatchErrors(t *testing.T) {
	db := buildTestDB(t, 200, 3)
	if _, err := db.Table("events").BuildSample(20, 3); err != nil {
		t.Fatal(err)
	}
	at := time.Unix(1700000000, 0)

	if _, err := db.ApplyBatch("nosuch", ingestBatch(t, 1, 4), at); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := db.ApplyBatch("events_sample20", ingestBatch(t, 1, 4), at); err == nil {
		t.Error("ingest into a sample table accepted")
	}
	if _, err := db.ApplyBatch("events", NewBatch(), at); err == nil {
		t.Error("empty batch accepted")
	}
	partial := NewBatch()
	if err := partial.AddColumn(&Column{Name: "val", Type: ColFloat64, Floats: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ApplyBatch("events", partial, at); err == nil {
		t.Error("partial-schema batch accepted")
	}
	if v := db.DataVersion("events"); v != 0 {
		t.Errorf("rejected batches bumped the version to %d", v)
	}
	if rows := db.Table("events").Rows; rows != 200 {
		t.Errorf("rejected batches changed row count to %d", rows)
	}
}

// TestIngestorSizeTrigger: the pending buffer flushes synchronously the
// moment it reaches MaxBatch rows.
func TestIngestorSizeTrigger(t *testing.T) {
	db := buildTestDB(t, 200, 5)
	clock := time.Unix(1700000000, 0)
	in, err := NewIngestor(db, "events", IngestorConfig{
		MaxBatch: 8,
		MaxDelay: time.Hour, // latency trigger out of the picture
		Now:      func() time.Time { return clock },
	})
	if err != nil {
		t.Fatal(err)
	}
	if flushed, err := in.Add(ingestBatch(t, 1, 5)); err != nil || flushed {
		t.Fatalf("first add: flushed=%v err=%v, want buffered", flushed, err)
	}
	if p := in.Pending(); p != 5 {
		t.Fatalf("pending = %d, want 5", p)
	}
	if flushed, err := in.Add(ingestBatch(t, 2, 5)); err != nil || !flushed {
		t.Fatalf("second add: flushed=%v err=%v, want size-trigger flush", flushed, err)
	}
	if p := in.Pending(); p != 0 {
		t.Errorf("pending after flush = %d", p)
	}
	if v := in.Version(); v != 1 {
		t.Errorf("version = %d, want 1", v)
	}
	if rows, flushes := in.Totals(); rows != 10 || flushes != 1 {
		t.Errorf("totals = (%d rows, %d flushes), want (10, 1)", rows, flushes)
	}
	if got := db.Table("events").Rows; got != 210 {
		t.Errorf("table rows = %d, want 210", got)
	}
}

// TestIngestorAdaptiveDelay: the latency-trigger delay tracks 8× the EWMA
// inter-append gap, clamped to [MinDelay, MaxDelay].
func TestIngestorAdaptiveDelay(t *testing.T) {
	db := buildTestDB(t, 200, 5)
	clock := time.Unix(1700000000, 0)
	cfg := IngestorConfig{
		MaxBatch: 1 << 20, // size trigger out of the picture
		MinDelay: 2 * time.Millisecond,
		MaxDelay: 200 * time.Millisecond,
		Now:      func() time.Time { return clock },
	}
	in, err := NewIngestor(db, "events", cfg)
	if err != nil {
		t.Fatal(err)
	}
	delay := func() time.Duration {
		in.mu.Lock()
		defer in.mu.Unlock()
		return in.delay()
	}
	// No gap observed yet → floor.
	if d := delay(); d != cfg.MinDelay {
		t.Errorf("cold delay = %v, want MinDelay %v", d, cfg.MinDelay)
	}
	add := func(seed int64, gap time.Duration) {
		t.Helper()
		clock = clock.Add(gap)
		if _, err := in.Add(ingestBatch(t, seed, 2)); err != nil {
			t.Fatal(err)
		}
	}
	add(1, 0) // first add: no gap sample yet
	add(2, 8*time.Millisecond)
	// One 8ms gap → ewma 8ms → delay 64ms.
	if d := delay(); d != 64*time.Millisecond {
		t.Errorf("delay after one 8ms gap = %v, want 64ms", d)
	}
	// A burst of back-to-back adds converges the EWMA toward 0 → floor.
	for i := int64(3); i < 20; i++ {
		add(i, 0)
	}
	if d := delay(); d != cfg.MinDelay {
		t.Errorf("dense-stream delay = %v, want MinDelay %v", d, cfg.MinDelay)
	}
	// A sparse stream is capped at MaxDelay.
	for i := int64(20); i < 26; i++ {
		add(i, 5*time.Second)
	}
	if d := delay(); d != cfg.MaxDelay {
		t.Errorf("sparse-stream delay = %v, want MaxDelay %v", d, cfg.MaxDelay)
	}
	if _, err := in.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestIngestorLatencyTrigger: a buffered batch becomes visible without any
// further traffic once the adaptive timer fires.
func TestIngestorLatencyTrigger(t *testing.T) {
	db := buildTestDB(t, 200, 5)
	in, err := NewIngestor(db, "events", IngestorConfig{
		MaxBatch: 1 << 20,
		MinDelay: time.Millisecond,
		MaxDelay: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if flushed, err := in.Add(ingestBatch(t, 1, 3)); err != nil || flushed {
		t.Fatalf("add: flushed=%v err=%v", flushed, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, flushes := in.Totals(); flushes >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("latency trigger never flushed")
		}
		time.Sleep(time.Millisecond)
	}
	if v := in.Version(); v != 1 {
		t.Errorf("version = %d, want 1", v)
	}
	if p := in.Pending(); p != 0 {
		t.Errorf("pending = %d", p)
	}
}

// TestIngestorClose: Close flushes the tail and rejects further adds.
func TestIngestorClose(t *testing.T) {
	db := buildTestDB(t, 200, 5)
	in, err := NewIngestor(db, "events", IngestorConfig{MaxBatch: 1 << 20, MaxDelay: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Add(ingestBatch(t, 1, 3)); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if got := db.Table("events").Rows; got != 203 {
		t.Errorf("close did not flush the tail: rows = %d, want 203", got)
	}
	if _, err := in.Add(ingestBatch(t, 2, 3)); err == nil {
		t.Error("add after close accepted")
	}
}

// TestFlushHooksAndStatsRefresh: a flush invalidates and eagerly rebuilds
// optimizer statistics and fires registered hooks with the new version.
func TestFlushHooksAndStatsRefresh(t *testing.T) {
	db := buildTestDB(t, 500, 9)
	preTotal := db.Stats("events").Hists["ts"].Total // force the pre-flush build
	var hooks []string
	db.OnFlush(func(table string, version uint64) {
		hooks = append(hooks, fmt.Sprintf("%s@%d", table, version))
	})
	if _, err := db.ApplyBatch("events", ingestBatch(t, 1, 50), time.Unix(1700000000, 0)); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats("events").Hists["ts"].Total; got != preTotal+50 {
		t.Errorf("post-flush stats histogram total = %d, want %d", got, preTotal+50)
	}
	if len(hooks) != 1 || hooks[0] != "events@1" {
		t.Errorf("flush hooks = %v, want [events@1]", hooks)
	}
}
