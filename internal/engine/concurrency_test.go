package engine

import (
	"reflect"
	"sync"
	"testing"
)

// TestConcurrentRunDeterministic: DB.Run is safe for concurrent readers and
// every goroutine sees exactly the result a serial execution produces, for
// every plan shape. Run with -race to exercise the concurrency claim.
func TestConcurrentRunDeterministic(t *testing.T) {
	db := buildTestDB(t, 4000, 1)
	q := testQuery(db)

	type ref struct {
		rows  []uint32
		stats ExecStats
	}
	refs := make([]ref, 8)
	for mask := 0; mask < 8; mask++ {
		res, stats, err := db.Run(q, ForcedHint(PositionsFromMask(uint32(mask), 3), JoinAuto))
		if err != nil {
			t.Fatalf("mask %d: %v", mask, err)
		}
		refs[mask] = ref{rows: res.RowIDs, stats: stats}
	}

	const goroutines = 8
	const iters = 20
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				mask := (g + it) % 8
				res, stats, err := db.Run(q, ForcedHint(PositionsFromMask(uint32(mask), 3), JoinAuto))
				if err != nil {
					errc <- err
					return
				}
				if !reflect.DeepEqual(res.RowIDs, refs[mask].rows) {
					t.Errorf("goroutine %d mask %d: rows diverge from serial run", g, mask)
					return
				}
				if stats != refs[mask].stats {
					t.Errorf("goroutine %d mask %d: stats diverge: %+v vs %+v", g, mask, stats, refs[mask].stats)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestLookupCacheMatchesDirectExecution: routing executions through a shared
// LookupCache must not change a single output bit — rows, stats, and
// therefore virtual time are identical, and the cache actually memoizes.
func TestLookupCacheMatchesDirectExecution(t *testing.T) {
	db := buildTestDB(t, 4000, 3)
	q := testQuery(db)
	cache := NewLookupCache()
	for mask := 0; mask < 8; mask++ {
		h := ForcedHint(PositionsFromMask(uint32(mask), 3), JoinAuto)
		plain, plainStats, err := db.Run(q, h)
		if err != nil {
			t.Fatalf("mask %d plain: %v", mask, err)
		}
		cached, cachedStats, err := db.RunCached(q, h, cache)
		if err != nil {
			t.Fatalf("mask %d cached: %v", mask, err)
		}
		if !reflect.DeepEqual(plain.RowIDs, cached.RowIDs) {
			t.Errorf("mask %d: cached rows diverge", mask)
		}
		if plainStats != cachedStats {
			t.Errorf("mask %d: cached stats diverge: %+v vs %+v", mask, cachedStats, plainStats)
		}
	}
	if cache.Len() != 3 {
		t.Errorf("cache memoized %d lookups, want 3 (one per indexed predicate)", cache.Len())
	}
	// Second pass served entirely from cache still agrees.
	for mask := 0; mask < 8; mask++ {
		h := ForcedHint(PositionsFromMask(uint32(mask), 3), JoinAuto)
		plain, plainStats, err := db.Run(q, h)
		if err != nil {
			t.Fatal(err)
		}
		cached, cachedStats, err := db.RunCached(q, h, cache)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain.RowIDs, cached.RowIDs) || plainStats != cachedStats {
			t.Errorf("mask %d: warm cache diverges", mask)
		}
	}
	// Cached true selectivities agree with the direct computation.
	direct := db.TrueSelectivities(q)
	viaCache := db.TrueSelectivitiesCached(q, cache)
	if !reflect.DeepEqual(direct, viaCache) {
		t.Errorf("cached selectivities %v, want %v", viaCache, direct)
	}
}

// TestLookupCacheInvalidation: Reset and InvalidateTable drop the right
// entries, and a cache that outlives many queries (server-scope lifetime)
// refills transparently after invalidation.
func TestLookupCacheInvalidation(t *testing.T) {
	db := buildTestDB(t, 2000, 7)
	q := testQuery(db)
	cache := NewLookupCache()

	h := ForcedHint([]int{0, 1, 2}, JoinAuto)
	if _, _, err := db.RunCached(q, h, cache); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 3 {
		t.Fatalf("cache has %d entries, want 3", cache.Len())
	}

	// Invalidating an unrelated table keeps every entry.
	cache.InvalidateTable("nosuchtable")
	if cache.Len() != 3 {
		t.Errorf("unrelated invalidation dropped entries: %d left", cache.Len())
	}

	// Invalidating the scanned table drops all of its entries.
	cache.InvalidateTable("events")
	if cache.Len() != 0 {
		t.Errorf("InvalidateTable left %d entries", cache.Len())
	}

	// The cache refills and still matches direct execution.
	plain, plainStats, err := db.Run(q, h)
	if err != nil {
		t.Fatal(err)
	}
	refilled, refilledStats, err := db.RunCached(q, h, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.RowIDs, refilled.RowIDs) || plainStats != refilledStats {
		t.Error("post-invalidation execution diverges from direct run")
	}
	if cache.Len() != 3 {
		t.Errorf("cache did not refill: %d entries", cache.Len())
	}

	cache.Reset()
	if cache.Len() != 0 {
		t.Errorf("Reset left %d entries", cache.Len())
	}
}

// TestLookupCacheCap: a bounded cache stops memoizing at its cap but still
// serves correct results, so server-scope caches can't grow without bound.
func TestLookupCacheCap(t *testing.T) {
	db := buildTestDB(t, 2000, 9)
	q := testQuery(db)
	capped := NewLookupCacheWithCap(2)

	h := ForcedHint([]int{0, 1, 2}, JoinAuto) // 3 distinct lookups
	plain, plainStats, err := db.Run(q, h)
	if err != nil {
		t.Fatal(err)
	}
	got, gotStats, err := db.RunCached(q, h, capped)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.RowIDs, got.RowIDs) || plainStats != gotStats {
		t.Error("capped-cache execution diverges from direct run")
	}
	if capped.Len() != 2 {
		t.Errorf("capped cache has %d entries, want 2", capped.Len())
	}
	// Further executions with new predicates still work, cache stays at cap.
	if _, _, err := db.RunCached(q, h, capped); err != nil {
		t.Fatal(err)
	}
	if capped.Len() != 2 {
		t.Errorf("cap exceeded: %d entries", capped.Len())
	}
}

// TestIntersectSortedInto: the scratch-buffer variant matches the allocating
// one and reuses the destination's storage.
func TestIntersectSortedInto(t *testing.T) {
	a := []uint32{1, 3, 5, 7, 9, 11}
	b := []uint32{3, 4, 5, 9, 12}
	want, wantWork := IntersectSorted(a, b)
	buf := make([]uint32, 0, 16)
	got, gotWork := intersectSortedInto(buf, a, b)
	if !reflect.DeepEqual(got, want) || gotWork != wantWork {
		t.Errorf("intersectSortedInto = %v (work %d), want %v (work %d)", got, gotWork, want, wantWork)
	}
	if &got[:1][0] != &buf[:1][0] {
		t.Error("intersectSortedInto did not reuse the destination buffer")
	}
}
