package engine

import (
	"reflect"
	"sync"
	"testing"
)

// TestConcurrentRunDeterministic: DB.Run is safe for concurrent readers and
// every goroutine sees exactly the result a serial execution produces, for
// every plan shape. Run with -race to exercise the concurrency claim.
func TestConcurrentRunDeterministic(t *testing.T) {
	db := buildTestDB(t, 4000, 1)
	q := testQuery(db)

	type ref struct {
		rows  []uint32
		stats ExecStats
	}
	refs := make([]ref, 8)
	for mask := 0; mask < 8; mask++ {
		res, stats, err := db.Run(q, ForcedHint(PositionsFromMask(uint32(mask), 3), JoinAuto))
		if err != nil {
			t.Fatalf("mask %d: %v", mask, err)
		}
		refs[mask] = ref{rows: res.RowIDs, stats: stats}
	}

	const goroutines = 8
	const iters = 20
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				mask := (g + it) % 8
				res, stats, err := db.Run(q, ForcedHint(PositionsFromMask(uint32(mask), 3), JoinAuto))
				if err != nil {
					errc <- err
					return
				}
				if !reflect.DeepEqual(res.RowIDs, refs[mask].rows) {
					t.Errorf("goroutine %d mask %d: rows diverge from serial run", g, mask)
					return
				}
				if stats != refs[mask].stats {
					t.Errorf("goroutine %d mask %d: stats diverge: %+v vs %+v", g, mask, stats, refs[mask].stats)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestLookupCacheMatchesDirectExecution: routing executions through a shared
// LookupCache must not change a single output bit — rows, stats, and
// therefore virtual time are identical, and the cache actually memoizes.
func TestLookupCacheMatchesDirectExecution(t *testing.T) {
	db := buildTestDB(t, 4000, 3)
	q := testQuery(db)
	cache := NewLookupCache()
	for mask := 0; mask < 8; mask++ {
		h := ForcedHint(PositionsFromMask(uint32(mask), 3), JoinAuto)
		plain, plainStats, err := db.Run(q, h)
		if err != nil {
			t.Fatalf("mask %d plain: %v", mask, err)
		}
		cached, cachedStats, err := db.RunCached(q, h, cache)
		if err != nil {
			t.Fatalf("mask %d cached: %v", mask, err)
		}
		if !reflect.DeepEqual(plain.RowIDs, cached.RowIDs) {
			t.Errorf("mask %d: cached rows diverge", mask)
		}
		if plainStats != cachedStats {
			t.Errorf("mask %d: cached stats diverge: %+v vs %+v", mask, cachedStats, plainStats)
		}
	}
	if cache.Len() != 3 {
		t.Errorf("cache memoized %d lookups, want 3 (one per indexed predicate)", cache.Len())
	}
	// Second pass served entirely from cache still agrees.
	for mask := 0; mask < 8; mask++ {
		h := ForcedHint(PositionsFromMask(uint32(mask), 3), JoinAuto)
		plain, plainStats, err := db.Run(q, h)
		if err != nil {
			t.Fatal(err)
		}
		cached, cachedStats, err := db.RunCached(q, h, cache)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain.RowIDs, cached.RowIDs) || plainStats != cachedStats {
			t.Errorf("mask %d: warm cache diverges", mask)
		}
	}
	// Cached true selectivities agree with the direct computation.
	direct := db.TrueSelectivities(q)
	viaCache := db.TrueSelectivitiesCached(q, cache)
	if !reflect.DeepEqual(direct, viaCache) {
		t.Errorf("cached selectivities %v, want %v", viaCache, direct)
	}
}

// TestIntersectSortedInto: the scratch-buffer variant matches the allocating
// one and reuses the destination's storage.
func TestIntersectSortedInto(t *testing.T) {
	a := []uint32{1, 3, 5, 7, 9, 11}
	b := []uint32{3, 4, 5, 9, 12}
	want, wantWork := IntersectSorted(a, b)
	buf := make([]uint32, 0, 16)
	got, gotWork := intersectSortedInto(buf, a, b)
	if !reflect.DeepEqual(got, want) || gotWork != wantWork {
		t.Errorf("intersectSortedInto = %v (work %d), want %v (work %d)", got, gotWork, want, wantWork)
	}
	if &got[:1][0] != &buf[:1][0] {
		t.Error("intersectSortedInto did not reuse the destination buffer")
	}
}
