// Package engine implements the database substrate used by Maliva: an
// in-memory columnar store with B+-tree, R-tree and inverted indexes, a
// cost-based optimizer with realistic estimation errors, query hints,
// sample tables, and a deterministic virtual-time cost model.
//
// The engine executes queries for real on (scaled-down) data, while the
// reported execution time is a deterministic function of the work
// performed, converted to paper-scale milliseconds. See DESIGN.md §3.
//
// # Layout
//
//   - table.go, types.go, vocab.go — the columnar store: typed columns,
//     tokenized text, immutable once loaded.
//   - btree.go, rtree.go, inverted.go — the index structures. BTree offers
//     three read paths with identical entries accounting: materializing
//     Range (the differential-test oracle), the allocation-free Visit
//     visitor, and the resumable Cursor the join paths pool.
//   - parser.go, query.go, predicate.go — the SQL-ish query model and
//     per-predicate evaluation.
//   - optimizer.go, cost.go, stats.go — the deliberately-imperfect
//     cost-based optimizer, the virtual-time cost model, and ExecStats,
//     the work accounting everything else is priced in.
//   - executor.go — plan execution over a pooled execContext with reusable
//     scratch buffers (the zero-allocation hot path).
//   - lookup_cache.go — LookupCache memoizes per-predicate index scans
//     across the executions of related plans (DB.RunCached); safe for
//     concurrent readers over the immutable dataset.
//
// # Invariants
//
// ExecStats is bit-identical across every execution strategy of the same
// plan: pooled or fresh contexts, Range or Visit or Cursor scans, cached or
// uncached lookups. The virtual clock — and therefore ground-truth labels,
// trained policies, and every serving-layer cache — prices ExecStats, so
// an optimization that changes the accounting changes answers. New fast
// paths must ship with a differential test against the slow path (see
// btree_visit_test.go, join_stats_test.go) and an allocation ceiling in
// alloc_guard_test.go. All execution randomness derives from per-query and
// per-plan fingerprints, never from run order, which is what makes results
// reproducible under any parallelism (docs/ARCHITECTURE.md).
package engine
