package engine

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// walTestApply applies n deterministic batches through ApplyBatch (so an
// attached WAL logs them), returning the final version.
func walTestApply(t *testing.T, db *DB, n int) uint64 {
	t.Helper()
	at := time.Unix(1700000000, 0)
	var v uint64
	for i := 0; i < n; i++ {
		var err error
		v, err = db.ApplyBatch("events", ingestBatch(t, 300+int64(i), 40), at.Add(time.Duration(i)*time.Second))
		if err != nil {
			t.Fatal(err)
		}
	}
	return v
}

// walTestDB builds the standard test DB with a 20% sample (so replay must
// reconstruct sample membership too).
func walTestDB(t *testing.T, seed int64) *DB {
	t.Helper()
	db := buildTestDB(t, 1000, seed)
	if _, err := db.Table("events").BuildSample(20, seed); err != nil {
		t.Fatal(err)
	}
	return db
}

// sameVersionState compares version and flush history between two tables.
func sameVersionState(t *testing.T, a, b *Table) {
	t.Helper()
	if a.DataVersion() != b.DataVersion() {
		t.Fatalf("version %d vs %d", a.DataVersion(), b.DataVersion())
	}
	ha, hb := a.historySnapshot(), b.historySnapshot()
	if len(ha) != len(hb) {
		t.Fatalf("history length %d vs %d", len(ha), len(hb))
	}
	for i := range ha {
		if ha[i].Version != hb[i].Version || !ha[i].At.Equal(hb[i].At) {
			t.Fatalf("history[%d] = %+v vs %+v", i, ha[i], hb[i])
		}
	}
}

// sameRecoveredState is the full bit-identity check: table data, sample data,
// versions, history, and index answers.
func sameRecoveredState(t *testing.T, a, b *DB) {
	t.Helper()
	ta, tb := a.Table("events"), b.Table("events")
	sameTableData(t, ta, tb)
	sameTableData(t, ta.Samples[20], tb.Samples[20])
	sameVersionState(t, ta, tb)
	sameVersionState(t, ta.Samples[20], tb.Samples[20])
	for _, p := range []Predicate{
		{Col: "ts", Kind: PredRange, Lo: 0, Hi: 5000},
		{Col: "loc", Kind: PredGeo, Box: Rect{MinLon: 10, MinLat: 5, MaxLon: 80, MaxLat: 45}},
		{Col: "text", Kind: PredKeyword, Word: 3},
	} {
		ra, ea, err := ta.Index(p.Col).Lookup(p)
		if err != nil {
			t.Fatal(err)
		}
		rb, eb, err := tb.Index(p.Col).Lookup(p)
		if err != nil {
			t.Fatal(err)
		}
		if ea != eb || len(ra) != len(rb) {
			t.Fatalf("%s lookup diverges after replay", p.Col)
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("%s lookup rows diverge after replay", p.Col)
			}
		}
	}
}

// TestWALReplayBitIdentical: a crashed-and-restarted table (fresh base build
// + WAL replay) is bit-identical to the table that never crashed — rows,
// samples, indexes, versions, and flush history.
func TestWALReplayBitIdentical(t *testing.T) {
	dir := t.TempDir()
	live := walTestDB(t, 7)
	w, st, err := live.AttachWAL("events", dir, WALConfig{Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 0 || st.Checkpoint {
		t.Fatalf("fresh attach replayed %+v", st)
	}
	walTestApply(t, live, 5)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	recovered := walTestDB(t, 7)
	_, st2, err := recovered.AttachWAL("events", dir, WALConfig{Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Records != 5 || st2.Version != 5 || st2.Truncated {
		t.Fatalf("replay stats %+v, want 5 records to version 5", st2)
	}
	sameRecoveredState(t, live, recovered)

	// Vocabulary re-interning must reproduce the same ids.
	va, vb := live.Table("events").Vocab, recovered.Table("events").Vocab
	if va.Len() != vb.Len() {
		t.Fatalf("vocab %d vs %d words after replay", va.Len(), vb.Len())
	}
	for id := uint32(1); int(id) <= va.Len(); id++ {
		if va.Word(id) != vb.Word(id) {
			t.Fatalf("vocab id %d = %q vs %q", id, va.Word(id), vb.Word(id))
		}
	}
}

// TestWALDoubleReplayIdempotent: replaying the same records onto an
// already-recovered table applies nothing (seq <= current version is
// skipped), so a crash *during* recovery re-replays safely.
func TestWALDoubleReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	live := walTestDB(t, 7)
	w, _, err := live.AttachWAL("events", dir, WALConfig{Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	walTestApply(t, live, 4)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	recovered := walTestDB(t, 7)
	w2, _, err := recovered.AttachWAL("events", dir, WALConfig{Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	var again WALReplayStats
	if err := recovered.replayWAL(w2, recovered.Table("events"), &again); err != nil {
		t.Fatal(err)
	}
	if again.Records != 0 || again.Rows != 0 {
		t.Fatalf("double replay applied %+v, want nothing", again)
	}
	sameRecoveredState(t, live, recovered)
}

// lastSegment returns the path of the newest WAL segment in dir.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), walSegmentPrefix) && strings.HasSuffix(e.Name(), walSegmentSuffix) {
			segs = append(segs, filepath.Join(dir, e.Name()))
		}
	}
	if len(segs) == 0 {
		t.Fatal("no WAL segments")
	}
	return segs[len(segs)-1]
}

// TestWALTornFinalRecord: a crash mid-write leaves a torn final record; the
// replay truncates at the last valid record and never surfaces the partial
// flush.
func TestWALTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	live := walTestDB(t, 7)
	w, _, err := live.AttachWAL("events", dir, WALConfig{Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	walTestApply(t, live, 3)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	seg := lastSegment(t, dir)
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	recovered := walTestDB(t, 7)
	_, st, err := recovered.AttachWAL("events", dir, WALConfig{Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Truncated || st.Version != 2 || st.Records != 2 {
		t.Fatalf("replay stats %+v, want truncated at version 2", st)
	}

	// Control: the first two flushes only.
	control := walTestDB(t, 7)
	at := time.Unix(1700000000, 0)
	for i := 0; i < 2; i++ {
		if _, err := control.ApplyBatch("events", ingestBatch(t, 300+int64(i), 40), at.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	sameRecoveredState(t, control, recovered)
}

// TestWALCRCFlipMidSegment: bit rot inside an earlier record stops replay at
// the last record before the flip; everything after is discarded, partial
// state is never surfaced.
func TestWALCRCFlipMidSegment(t *testing.T) {
	dir := t.TempDir()
	live := walTestDB(t, 7)
	w, _, err := live.AttachWAL("events", dir, WALConfig{Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	walTestApply(t, live, 3)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte inside the second record's payload. Records are identically
	// sized only by accident, so locate the second frame by walking the first.
	seg := lastSegment(t, dir)
	buf, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	payload, _, ok := splitWALFrame(buf)
	if !ok {
		t.Fatal("cannot parse first frame")
	}
	second := 8 + len(payload) // offset of frame 2
	f, err := os.OpenFile(seg, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{buf[second+16] ^ 0xFF}, int64(second+16)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recovered := walTestDB(t, 7)
	_, st, err := recovered.AttachWAL("events", dir, WALConfig{Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Truncated || st.Version != 1 || st.Records != 1 {
		t.Fatalf("replay stats %+v, want truncated at version 1", st)
	}
	if info, err := os.Stat(seg); err != nil || info.Size() != int64(second) {
		t.Fatalf("segment not truncated at last valid record: size %d, want %d", info.Size(), second)
	}
}

// TestWALZeroLengthTail: preallocated or torn-header zero bytes after the
// last record are cut without losing any whole record.
func TestWALZeroLengthTail(t *testing.T) {
	dir := t.TempDir()
	live := walTestDB(t, 7)
	w, _, err := live.AttachWAL("events", dir, WALConfig{Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	walTestApply(t, live, 3)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	seg := lastSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 24)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recovered := walTestDB(t, 7)
	_, st, err := recovered.AttachWAL("events", dir, WALConfig{Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Truncated || st.Version != 3 || st.Records != 3 {
		t.Fatalf("replay stats %+v, want all 3 records with tail truncated", st)
	}
	sameRecoveredState(t, live, recovered)
}

// TestWALCheckpointBoundsLog: tiny segments force rotation; once sealed
// segments exceed the bound a checkpoint compacts them and deletes the
// files — and recovery through the checkpoint is still bit-identical.
func TestWALCheckpointBoundsLog(t *testing.T) {
	dir := t.TempDir()
	cfg := WALConfig{Policy: FsyncNever, MaxSegmentBytes: 4 << 10, CheckpointSegments: 2}
	live := walTestDB(t, 7)
	w, _, err := live.AttachWAL("events", dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	walTestApply(t, live, 12)
	ws := w.Stats()
	if ws.Checkpoints == 0 {
		t.Fatalf("no checkpoint after 12 flushes with %d-byte segments: %+v", cfg.MaxSegmentBytes, ws)
	}
	if ws.Segments > cfg.CheckpointSegments+2 {
		t.Fatalf("log unbounded: %d segments live", ws.Segments)
	}
	if err := w.CheckpointErr(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, walCheckpointFile)); err != nil {
		t.Fatal("checkpoint file missing")
	}

	recovered := walTestDB(t, 7)
	_, st, err := recovered.AttachWAL("events", dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Checkpoint {
		t.Fatalf("replay ignored the checkpoint: %+v", st)
	}
	if st.Version != 12 {
		t.Fatalf("recovered version %d, want 12", st.Version)
	}
	sameRecoveredState(t, live, recovered)
}

// TestWALAppendAfterRecovery: the log stays usable after a truncating
// recovery — new flushes append after the cut and a second recovery sees
// both generations.
func TestWALAppendAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	live := walTestDB(t, 7)
	w, _, err := live.AttachWAL("events", dir, WALConfig{Policy: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	walTestApply(t, live, 2)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	info, _ := os.Stat(seg)
	if err := os.Truncate(seg, info.Size()-1); err != nil {
		t.Fatal(err)
	}

	mid := walTestDB(t, 7)
	w2, st, err := mid.AttachWAL("events", dir, WALConfig{Policy: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != 1 || !st.Truncated {
		t.Fatalf("replay stats %+v, want truncation to version 1", st)
	}
	// Re-apply flush 2 (the one the torn record lost) plus a new flush 3.
	at := time.Unix(1700000000, 0)
	for i := 1; i < 3; i++ {
		if _, err := mid.ApplyBatch("events", ingestBatch(t, 300+int64(i), 40), at.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	final := walTestDB(t, 7)
	_, st2, err := final.AttachWAL("events", dir, WALConfig{Policy: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Version != 3 || st2.Truncated {
		t.Fatalf("second recovery stats %+v, want clean replay to version 3", st2)
	}
	sameRecoveredState(t, mid, final)
}

// approxProbeSet returns the four approximate-tier probes (row sample,
// reservoir, CMS count, HLL distinct) the replay-determinism test compares.
func approxProbeSet() []*Query {
	win := []Predicate{{Col: "ts", Kind: PredRange, Lo: 2000, Hi: 7000}}
	return []*Query{
		{Table: "events", Preds: win,
			Bin:    &BinSpec{Col: "loc", Extent: Rect{MinLon: 0, MinLat: 0, MaxLon: 100, MaxLat: 50}, W: 8, H: 8},
			Approx: ApproxSpec{Method: ApproxRows, Rate: 0.3}},
		{Table: "events", Preds: win,
			Approx: ApproxSpec{Method: ApproxReservoir, K: 40}},
		{Table: "events", Preds: append([]Predicate{{Col: "text", Kind: PredKeyword, Word: 3}}, win...),
			Approx: ApproxSpec{Method: ApproxSketchCount}},
		{Table: "events", Preds: win,
			Approx: ApproxSpec{Method: ApproxSketchDistinct}},
	}
}

// TestWALReplayApproxDeterminism extends the bit-identity recovery contract
// to the approximate tier: after a crash and WAL replay, every approximate
// method returns byte-identical results and identical virtual timings for
// the same (seed, fingerprint) — samples because the keep hash is a pure
// function of (seed, row id), sketches because their updates commute, so
// replayed batches rebuild the identical summary state.
func TestWALReplayApproxDeterminism(t *testing.T) {
	dir := t.TempDir()
	live := walTestDB(t, 7)
	if _, err := live.Table("events").BuildSketch("text", "ts", time.Second); err != nil {
		t.Fatal(err)
	}
	w, _, err := live.AttachWAL("events", dir, WALConfig{Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	walTestApply(t, live, 5)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover: fresh base build, sketch attached BEFORE replay so the
	// replayed batches maintain it incrementally — the production order.
	recovered := walTestDB(t, 7)
	if _, err := recovered.Table("events").BuildSketch("text", "ts", time.Second); err != nil {
		t.Fatal(err)
	}
	if _, st, err := recovered.AttachWAL("events", dir, WALConfig{Policy: FsyncNever}); err != nil || st.Records != 5 {
		t.Fatalf("replay: %v, stats %+v", err, st)
	}
	sameRecoveredState(t, live, recovered)

	for i, q := range approxProbeSet() {
		resLive, statsLive, err := live.Run(q, AutoHint())
		if err != nil {
			t.Fatalf("probe %d live: %v", i, err)
		}
		resRec, statsRec, err := recovered.Run(q, AutoHint())
		if err != nil {
			t.Fatalf("probe %d recovered: %v", i, err)
		}
		if !reflect.DeepEqual(resLive, resRec) {
			t.Errorf("probe %d (%s): results diverge after replay", i, q.Approx.Method)
		}
		if statsLive.SimMs != statsRec.SimMs {
			t.Errorf("probe %d (%s): SimMs %v vs %v after replay", i, q.Approx.Method, statsLive.SimMs, statsRec.SimMs)
		}
		if !resLive.Approx {
			t.Errorf("probe %d (%s): result not marked approximate", i, q.Approx.Method)
		}
	}
}

// TestWALFsyncPolicies: every policy accepts appends and closes cleanly, and
// the interval policy's background syncer marks progress.
func TestWALFsyncPolicies(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(policy.String(), func(t *testing.T) {
			db := walTestDB(t, 7)
			w, _, err := db.AttachWAL("events", t.TempDir(), WALConfig{Policy: policy, SyncInterval: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			walTestApply(t, db, 3)
			if policy == FsyncInterval {
				deadline := time.Now().Add(2 * time.Second)
				for w.Stats().Syncs == 0 && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
				if w.Stats().Syncs == 0 {
					t.Fatal("interval policy never synced")
				}
			}
			if policy == FsyncAlways && w.Stats().Syncs != 3 {
				t.Fatalf("always policy synced %d times, want 3", w.Stats().Syncs)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
	if _, err := ParseFsyncPolicy("bogus"); err == nil {
		t.Fatal("ParseFsyncPolicy accepted bogus")
	}
}
