//go:build !race

package engine

// raceEnabled reports whether the race detector is compiled in. See
// race_on.go.
const raceEnabled = false
