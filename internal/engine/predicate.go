package engine

import "fmt"

// PredKind enumerates the predicate kinds the engine supports, matching the
// three condition types in the paper's workloads (keyword, range, box).
type PredKind uint8

const (
	// PredKeyword matches rows whose text column contains a word.
	PredKeyword PredKind = iota
	// PredRange matches rows whose numeric/time column is in [Lo, Hi].
	PredRange
	// PredGeo matches rows whose point column falls inside Box.
	PredGeo
)

// String returns a short name for the predicate kind.
func (k PredKind) String() string {
	switch k {
	case PredKeyword:
		return "keyword"
	case PredRange:
		return "range"
	case PredGeo:
		return "geo"
	}
	return fmt.Sprintf("PredKind(%d)", uint8(k))
}

// Predicate is one conjunct of a query's WHERE clause.
type Predicate struct {
	Col  string
	Kind PredKind

	// PredKeyword
	Word     uint32
	WordText string // for SQL rendering

	// PredRange: inclusive bounds, as float64 (times are unix ms).
	Lo, Hi float64

	// PredGeo
	Box Rect
}

// Eval evaluates the predicate against one row of t.
func (p Predicate) Eval(t *Table, row uint32) bool {
	c := t.Col(p.Col)
	switch p.Kind {
	case PredKeyword:
		return HasToken(c.Texts[row], p.Word)
	case PredRange:
		v := c.NumericAt(row)
		return v >= p.Lo && v <= p.Hi
	case PredGeo:
		return p.Box.Contains(c.Points[row])
	}
	return false
}

// String renders the predicate as a SQL condition fragment.
func (p Predicate) String() string {
	switch p.Kind {
	case PredKeyword:
		return fmt.Sprintf("%s contains %q", p.Col, p.WordText)
	case PredRange:
		return fmt.Sprintf("%s BETWEEN %g AND %g", p.Col, p.Lo, p.Hi)
	case PredGeo:
		return fmt.Sprintf("%s IN ((%.4f, %.4f), (%.4f, %.4f))",
			p.Col, p.Box.MinLon, p.Box.MinLat, p.Box.MaxLon, p.Box.MaxLat)
	}
	return "?"
}
