//go:build race

package engine

// raceEnabled reports whether the race detector is compiled in. The
// allocation-guard tests skip under -race: instrumentation adds allocations
// that have nothing to do with the executor's steady state.
const raceEnabled = true
