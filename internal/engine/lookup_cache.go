package engine

import (
	"sync"
	"sync/atomic"
)

// LookupCache memoizes index lookups across executions of related queries.
// Maliva's offline experience collection runs every rewritten query RQ_i of
// the same original query: the |Ω| executions keep scanning the same index
// for the same predicate. Keying on (table, predicate) lets those executions
// share one posting-list scan.
//
// Cached slices are shared and must not be mutated by consumers — the
// executor only reads candidate lists, and Index.Lookup already returns
// fresh (btree/rtree) or shared-immutable (inverted) slices, so caching
// preserves results exactly. The reported entries-touched count is also
// cached, keeping ExecStats (and therefore virtual time) bit-identical to
// uncached execution.
//
// The cache deliberately sits only on the materializing lookup path: a hit
// must hand out a stable slice, so cached scans keep using Index.Lookup.
// The zero-allocation visitor paths (BTree.Visit, Cursor join probes) never
// produce a slice to share and therefore bypass the cache entirely.
//
// A LookupCache is safe for concurrent use.
//
// Lifetime: entries stay valid as long as the underlying table data and
// indexes are immutable, so a cache may outlive any single query — a serving
// layer can hold one cache for its whole lifetime over a loaded dataset.
// After mutating or reloading a table, call InvalidateTable (the analogue of
// DB.InvalidateStats) or Reset.
type LookupCache struct {
	mu sync.RWMutex
	m  map[lookupKey]lookupVal
	// cap bounds the number of memoized entries; 0 means unbounded (the
	// offline pipelines run bounded workloads). When full, lookups still
	// work but stop inserting — long-lived server-scope caches stay within
	// a fixed memory budget even under unbounded distinct request shapes.
	cap int

	// hits/misses count served lookups for effectiveness metrics (e.g. the
	// lab-scope shared-cache benchmark). They never influence results.
	hits   atomic.Int64
	misses atomic.Int64
}

// lookupKey identifies one index scan. Predicate is a comparable value type
// (strings, scalars, and a Rect), so it can key the map directly. Sample
// tables have distinct names, so table name disambiguates base vs sample.
// ver is the table's data version at scan time: after an ingest flush bumps
// the version, every pre-flush entry becomes unreachable, so a stale posting
// list can never satisfy a post-flush lookup (InvalidateTable then reclaims
// the dead entries' memory).
type lookupKey struct {
	table string
	ver   uint64
	pred  Predicate
}

type lookupVal struct {
	rows    []uint32
	entries int
}

// NewLookupCache returns an empty unbounded cache.
func NewLookupCache() *LookupCache {
	return &LookupCache{m: make(map[lookupKey]lookupVal)}
}

// NewLookupCacheWithCap returns a cache memoizing at most maxEntries
// lookups; maxEntries <= 0 means unbounded.
func NewLookupCacheWithCap(maxEntries int) *LookupCache {
	c := NewLookupCache()
	c.cap = maxEntries
	return c
}

// lookup serves ix.Lookup(p) through the cache. A nil receiver falls
// through to the direct lookup, so call sites need no cache-presence branch.
func (c *LookupCache) lookup(t *Table, ix *Index, p Predicate) ([]uint32, int, error) {
	if c == nil {
		return ix.Lookup(p)
	}
	key := lookupKey{table: t.Name, ver: t.DataVersion(), pred: p}
	c.mu.RLock()
	v, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return v.rows, v.entries, nil
	}
	c.misses.Add(1)
	rows, entries, err := ix.Lookup(p)
	if err != nil {
		return nil, 0, err
	}
	c.mu.Lock()
	// A racing goroutine may have filled the slot; keep the first value so
	// every consumer aliases one canonical slice.
	if w, ok := c.m[key]; ok {
		rows, entries = w.rows, w.entries
	} else if c.cap <= 0 || len(c.m) < c.cap {
		c.m[key] = lookupVal{rows: rows, entries: entries}
	}
	c.mu.Unlock()
	return rows, entries, nil
}

// Stats returns how many lookups the cache served from memory vs had to
// scan. Counters survive Reset/InvalidateTable (they describe the cache's
// lifetime, not its current contents).
func (c *LookupCache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of memoized lookups (for tests and metrics).
func (c *LookupCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Reset drops every memoized lookup. Concurrent readers that already hold a
// cached slice keep a consistent view; new lookups re-scan the indexes.
func (c *LookupCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = make(map[lookupKey]lookupVal)
}

// InvalidateTable drops the memoized lookups of one table, keeping entries
// for the rest of the database. Call it after the table's data or indexes
// change; sample tables are separate entries under their own names.
func (c *LookupCache) InvalidateTable(table string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.m {
		if k.table == table {
			delete(c.m, k)
		}
	}
}
