package engine

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramUniformAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 50000
	c := &Column{Name: "v", Type: ColFloat64, Floats: make([]float64, n)}
	for i := range c.Floats {
		c.Floats[i] = rng.Float64() * 1000
	}
	h := BuildHistogram(c)
	if h.Total != n {
		t.Fatalf("Total = %d", h.Total)
	}
	for _, tc := range []struct{ lo, hi, want float64 }{
		{0, 1000, 1.0},
		{0, 500, 0.5},
		{250, 350, 0.1},
		{-100, -1, 0},
		{1001, 2000, 0},
	} {
		got := h.EstimateRange(tc.lo, tc.hi)
		if math.Abs(got-tc.want) > 0.02 {
			t.Errorf("EstimateRange(%v,%v) = %.3f, want ≈%.2f", tc.lo, tc.hi, got, tc.want)
		}
	}
}

// TestHistogramEstimateBounds: estimates are always in [0,1] and monotone in
// the range width.
func TestHistogramEstimateBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := &Column{Name: "v", Type: ColFloat64, Floats: make([]float64, 5000)}
	for i := range c.Floats {
		c.Floats[i] = math.Exp(rng.NormFloat64() * 2)
	}
	h := BuildHistogram(c)
	prop := func(a, b, w float64) bool {
		lo := math.Mod(math.Abs(a), 100)
		width := math.Mod(math.Abs(b), 50)
		s1 := h.EstimateRange(lo, lo+width)
		s2 := h.EstimateRange(lo, lo+width+math.Mod(math.Abs(w), 20))
		return s1 >= 0 && s1 <= 1 && s2 >= s1-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	// All-equal column.
	c := &Column{Name: "v", Type: ColInt64, Ints: []int64{7, 7, 7}}
	h := BuildHistogram(c)
	if got := h.EstimateRange(7, 7); got != 1 {
		t.Errorf("point range on constant column = %v, want 1", got)
	}
	if got := h.EstimateRange(8, 9); got != 0 {
		t.Errorf("off range on constant column = %v, want 0", got)
	}
	// Empty column.
	he := BuildHistogram(&Column{Name: "e", Type: ColFloat64})
	if got := he.EstimateRange(0, 1); got != 0 {
		t.Errorf("empty histogram estimate = %v", got)
	}
}

func TestGeoGridEstimate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 40000
	c := &Column{Name: "p", Type: ColPoint, Points: make([]Point, n)}
	for i := range c.Points {
		c.Points[i] = Point{Lon: rng.Float64() * 10, Lat: rng.Float64() * 10}
	}
	g := BuildGeoGrid(c)
	full := g.EstimateBox(Rect{MinLon: 0, MinLat: 0, MaxLon: 10, MaxLat: 10})
	if math.Abs(full-1) > 0.01 {
		t.Errorf("full-extent estimate = %v", full)
	}
	quarter := g.EstimateBox(Rect{MinLon: 0, MinLat: 0, MaxLon: 5, MaxLat: 5})
	if math.Abs(quarter-0.25) > 0.03 {
		t.Errorf("quarter estimate = %v, want ≈0.25", quarter)
	}
	outside := g.EstimateBox(Rect{MinLon: 50, MinLat: 50, MaxLon: 60, MaxLat: 60})
	if outside != 0 {
		t.Errorf("outside estimate = %v", outside)
	}
}

// TestKeywordEstimateIgnoresFrequency is the deliberate optimizer flaw: the
// estimate for a frequent word equals the estimate for a rare word, so
// frequent keywords are badly underestimated (DESIGN.md §3).
func TestKeywordEstimateIgnoresFrequency(t *testing.T) {
	texts := make([][]uint32, 1000)
	for i := range texts {
		if i < 900 {
			texts[i] = []uint32{1} // word 1 in 90% of rows
		} else {
			texts[i] = []uint32{2}
		}
	}
	tb := NewTable("t", 1)
	if err := tb.AddColumn(&Column{Name: "tx", Type: ColText, Texts: texts}); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.BuildIndex("tx", IndexInverted); err != nil {
		t.Fatal(err)
	}
	st := BuildTableStats(tb)
	freq := st.EstimateSelectivity(Predicate{Col: "tx", Kind: PredKeyword, Word: 1})
	rare := st.EstimateSelectivity(Predicate{Col: "tx", Kind: PredKeyword, Word: 2})
	if freq != rare {
		t.Errorf("keyword estimates should be frequency-blind: %v vs %v", freq, rare)
	}
	trueFreq := TrueSelectivity(tb, Predicate{Col: "tx", Kind: PredKeyword, Word: 1})
	if trueFreq < 0.89 || freq >= trueFreq/10 {
		t.Errorf("frequent keyword should be underestimated ≥10×: est %v, true %v", freq, trueFreq)
	}
}

// TestGeoSelFloor: tiny boxes are clamped up to the floor.
func TestGeoSelFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := &Column{Name: "p", Type: ColPoint, Points: make([]Point, 10000)}
	for i := range c.Points {
		c.Points[i] = Point{Lon: rng.Float64(), Lat: rng.Float64()}
	}
	tb := NewTable("t", 1)
	if err := tb.AddColumn(c); err != nil {
		t.Fatal(err)
	}
	st := BuildTableStats(tb)
	tiny := st.EstimateSelectivity(Predicate{Col: "p", Kind: PredGeo,
		Box: Rect{MinLon: 0.5, MinLat: 0.5, MaxLon: 0.5001, MaxLat: 0.5001}})
	if tiny < GeoSelFloor {
		t.Errorf("tiny box estimate %v below floor %v", tiny, GeoSelFloor)
	}
}

func TestTrueSelectivityWithAndWithoutIndex(t *testing.T) {
	db := buildTestDB(t, 2000, 12)
	tb := db.Table("events")
	p := Predicate{Col: "ts", Kind: PredRange, Lo: 1000, Hi: 4000}
	withIdx := TrueSelectivity(tb, p)
	// Recompute by scan on a copy without the index.
	manual := 0
	for r := 0; r < tb.Rows; r++ {
		if p.Eval(tb, uint32(r)) {
			manual++
		}
	}
	want := float64(manual) / float64(tb.Rows)
	if math.Abs(withIdx-want) > 1e-12 {
		t.Errorf("TrueSelectivity = %v, scan says %v", withIdx, want)
	}
}

func TestPredicateString(t *testing.T) {
	for _, tc := range []struct {
		p    Predicate
		want string
	}{
		{Predicate{Col: "t", Kind: PredKeyword, WordText: "covid"}, `t contains "covid"`},
		{Predicate{Col: "x", Kind: PredRange, Lo: 1, Hi: 2}, "x BETWEEN 1 AND 2"},
	} {
		if got := tc.p.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}
