package engine

import "sort"

// btreeOrder is the maximum number of keys per B+-tree node.
const btreeOrder = 64

// BTree is a B+-tree index over float64 keys mapping to row ids. Integer and
// timestamp keys are converted to float64 (exact below 2^53, which covers
// unix-millisecond timestamps and all generated values). Duplicate keys are
// supported; entries with equal keys are ordered by row id.
type BTree struct {
	root *btreeNode
	size int
}

type btreeEntry struct {
	key float64
	row uint32
}

type btreeNode struct {
	leaf     bool
	keys     []float64    // separator keys (internal) or entry keys (leaf)
	children []*btreeNode // internal nodes only
	rows     []uint32     // leaf nodes only, parallel to keys
	next     *btreeNode   // leaf-level linked list
}

// NewBTree bulk-loads a B+-tree from unsorted (key,row) pairs.
func NewBTree(keys []float64, rows []uint32) *BTree {
	if len(keys) != len(rows) {
		panic("engine: NewBTree keys/rows length mismatch")
	}
	entries := make([]btreeEntry, len(keys))
	for i := range keys {
		entries[i] = btreeEntry{key: keys[i], row: rows[i]}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].key != entries[j].key {
			return entries[i].key < entries[j].key
		}
		return entries[i].row < entries[j].row
	})
	t := &BTree{size: len(entries)}
	t.root = bulkLoad(entries)
	return t
}

// bulkLoad builds the tree bottom-up from sorted entries.
func bulkLoad(entries []btreeEntry) *btreeNode {
	// Build leaves.
	var leaves []*btreeNode
	for start := 0; start < len(entries); start += btreeOrder {
		end := start + btreeOrder
		if end > len(entries) {
			end = len(entries)
		}
		leaf := &btreeNode{leaf: true}
		for _, e := range entries[start:end] {
			leaf.keys = append(leaf.keys, e.key)
			leaf.rows = append(leaf.rows, e.row)
		}
		leaves = append(leaves, leaf)
	}
	if len(leaves) == 0 {
		return &btreeNode{leaf: true}
	}
	for i := 0; i+1 < len(leaves); i++ {
		leaves[i].next = leaves[i+1]
	}
	// Build internal levels.
	level := leaves
	for len(level) > 1 {
		var parents []*btreeNode
		for start := 0; start < len(level); start += btreeOrder {
			end := start + btreeOrder
			if end > len(level) {
				end = len(level)
			}
			p := &btreeNode{}
			for _, child := range level[start:end] {
				p.children = append(p.children, child)
				p.keys = append(p.keys, firstKey(child))
			}
			parents = append(parents, p)
		}
		level = parents
	}
	return level[0]
}

func firstKey(n *btreeNode) float64 {
	for !n.leaf {
		n = n.children[0]
	}
	if len(n.keys) == 0 {
		return 0
	}
	return n.keys[0]
}

// Len returns the number of entries in the tree.
func (t *BTree) Len() int { return t.size }

// Height returns the tree height (1 for a single leaf).
func (t *BTree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}

// Insert adds one (key,row) entry, splitting nodes as needed.
func (t *BTree) Insert(key float64, row uint32) {
	t.size++
	newChild, splitKey := t.root.insert(key, row)
	if newChild != nil {
		root := &btreeNode{
			keys:     []float64{firstKey(t.root), splitKey},
			children: []*btreeNode{t.root, newChild},
		}
		t.root = root
	}
}

// insert returns a new right sibling and its first key when the node splits.
func (n *btreeNode) insert(key float64, row uint32) (*btreeNode, float64) {
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool {
			return n.keys[i] > key || (n.keys[i] == key && n.rows[i] >= row)
		})
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.rows = append(n.rows, 0)
		copy(n.rows[i+1:], n.rows[i:])
		n.rows[i] = row
		if len(n.keys) <= btreeOrder {
			return nil, 0
		}
		mid := len(n.keys) / 2
		right := &btreeNode{leaf: true, next: n.next}
		right.keys = append(right.keys, n.keys[mid:]...)
		right.rows = append(right.rows, n.rows[mid:]...)
		n.keys = n.keys[:mid]
		n.rows = n.rows[:mid]
		n.next = right
		return right, right.keys[0]
	}
	// Internal: find child whose range contains key.
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
	if i > 0 {
		i--
	}
	newChild, splitKey := n.children[i].insert(key, row)
	if newChild == nil {
		return nil, 0
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[i+2:], n.keys[i+1:])
	n.keys[i+1] = splitKey
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = newChild
	if len(n.children) <= btreeOrder {
		return nil, 0
	}
	mid := len(n.children) / 2
	right := &btreeNode{}
	right.keys = append(right.keys, n.keys[mid:]...)
	right.children = append(right.children, n.children[mid:]...)
	n.keys = n.keys[:mid]
	n.children = n.children[:mid]
	return right, right.keys[0]
}

// Range returns the row ids of entries with key in [lo, hi], plus the number
// of index entries and nodes touched during the scan (for costing).
func (t *BTree) Range(lo, hi float64) (rows []uint32, entries int) {
	n := t.root
	entries++ // root visit
	for !n.leaf {
		// Duplicate keys may span node boundaries: the child *before* the
		// first separator ≥ lo can still hold entries equal to lo in its
		// tail, so descend there and rely on the leaf chain to move forward.
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= lo })
		if i > 0 {
			i--
		}
		n = n.children[i]
		entries++
	}
	// Walk the leaf chain.
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= lo })
	for n != nil {
		for ; i < len(n.keys); i++ {
			entries++
			if n.keys[i] > hi {
				return rows, entries
			}
			rows = append(rows, n.rows[i])
		}
		n = n.next
		i = 0
	}
	return rows, entries
}

// Visit calls fn for every entry with key in [lo, hi], in key order (ties in
// row-id order), without materializing row ids. It returns the number of
// index entries touched, counted exactly as Range counts them — the two share
// one cost model, so a caller can swap a materializing scan for a visit
// without perturbing ExecStats (and therefore virtual time). fn returning
// false stops the scan; the stopping entry has already been counted.
//
// Range is kept as an independent implementation on purpose: it is the
// reference oracle the Visit/Cursor differential tests compare against.
func (t *BTree) Visit(lo, hi float64, fn func(row uint32) bool) (entries int) {
	n := t.root
	entries++ // root visit
	for !n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= lo })
		if i > 0 {
			i--
		}
		n = n.children[i]
		entries++
	}
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= lo })
	for n != nil {
		for ; i < len(n.keys); i++ {
			entries++
			if n.keys[i] > hi {
				return entries
			}
			if !fn(n.rows[i]) {
				return entries
			}
		}
		n = n.next
		i = 0
	}
	return entries
}

// CountRange returns the number of entries with key in [lo, hi] without
// materializing row ids (used for true-selectivity computation). Built on
// Visit, it is allocation-free.
func (t *BTree) CountRange(lo, hi float64) int {
	n := 0
	t.Visit(lo, hi, func(uint32) bool { n++; return true })
	return n
}

// Cursor iterates one B+-tree's leaf chain across repeated probes without
// allocating. A zero Cursor is unusable; call Reset first. Cursors are meant
// to be pooled (the executor keeps one in its pooled execContext) and re-aimed
// at a tree per join.
//
// The accounting contract is the point of the type: every Seek+Next drain
// reports, via Entries, exactly the index-entry count a fresh
// Range(key, key) descent for the same probe would report — when the cursor
// resumes from its current leaf position instead of re-descending from the
// root, it still charges the synthetic descent cost (the tree height). That
// keeps ExecStats.IndexEntries, and therefore the virtual cost model, the
// ground-truth labels, and the golden traces, bit-identical to the
// descent-per-probe execution path.
type Cursor struct {
	tree   *BTree
	height int

	leaf *btreeNode
	idx  int

	// Run bookkeeping: runLeaf/runIdx remember where the entries ≥ lastKey
	// start, so a repeated probe of the same key (duplicate left rows in a
	// merge join) rewinds instead of losing the matches it already passed.
	runLeaf *btreeNode
	runIdx  int
	lastKey float64
	valid   bool

	stopped bool
	entries int
}

// Reset aims the cursor at a tree, dropping all position state.
func (c *Cursor) Reset(t *BTree) {
	*c = Cursor{tree: t, height: t.Height()}
}

// Seek positions the cursor at the first entry with key ≥ target and resets
// the per-probe entry count to the descent cost. Probes with non-decreasing
// targets (a merge join's sorted left side) resume from the current leaf
// position: an equal target rewinds to the start of its run, a larger target
// scans forward within the current leaf when it can, and only targets outside
// the leaf (or regressions, as in a nest-loop join's unsorted probes)
// re-descend from the root. Every variant charges the same descent cost, so
// Entries stays identical to a fresh descent.
func (c *Cursor) Seek(target float64) {
	c.entries = c.height
	c.stopped = false
	switch {
	case c.valid && target == c.lastKey:
		// Duplicate probe: rewind to the run start.
		c.leaf, c.idx = c.runLeaf, c.runIdx
	case c.valid && target > c.lastKey && c.leaf == nil:
		// The previous probe exhausted the chain; nothing ≥ target remains.
	case c.valid && target > c.lastKey && c.leaf != nil &&
		len(c.leaf.keys) > 0 && target <= c.leaf.keys[len(c.leaf.keys)-1]:
		// Target lands inside the current leaf: resume in place.
		for c.idx < len(c.leaf.keys) && c.leaf.keys[c.idx] < target {
			c.idx++
		}
	default:
		c.descend(target)
	}
	c.runLeaf, c.runIdx = c.leaf, c.idx
	c.lastKey = target
	c.valid = true
}

// descend walks root→leaf exactly like Range, leaving the cursor at the
// first in-leaf slot ≥ target (possibly one past the leaf's last slot; Next
// then follows the chain, uncharged, like Range's leaf walk does).
func (c *Cursor) descend(target float64) {
	n := c.tree.root
	for !n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= target })
		if i > 0 {
			i--
		}
		n = n.children[i]
	}
	c.leaf = n
	c.idx = sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= target })
}

// Next returns the next row with key ≤ hi. Each examined slot is charged one
// entry — including the slot that terminates the scan by exceeding hi, which
// the cursor stays on so the following Seek can resume from it. Running off
// the end of the leaf chain charges nothing, mirroring Range.
func (c *Cursor) Next(hi float64) (uint32, bool) {
	if c.stopped {
		return 0, false
	}
	for c.leaf != nil && c.idx >= len(c.leaf.keys) {
		c.leaf = c.leaf.next
		c.idx = 0
	}
	if c.leaf == nil {
		c.stopped = true
		return 0, false
	}
	c.entries++
	if c.leaf.keys[c.idx] > hi {
		c.stopped = true
		return 0, false
	}
	row := c.leaf.rows[c.idx]
	c.idx++
	return row, true
}

// Entries returns the index entries charged since the last Seek — exactly
// what Range(target, hi) would have reported for the same drained probe.
func (c *Cursor) Entries() int { return c.entries }
