package engine

import "sort"

// btreeOrder is the maximum number of keys per B+-tree node.
const btreeOrder = 64

// BTree is a B+-tree index over float64 keys mapping to row ids. Integer and
// timestamp keys are converted to float64 (exact below 2^53, which covers
// unix-millisecond timestamps and all generated values). Duplicate keys are
// supported; entries with equal keys are ordered by row id.
type BTree struct {
	root *btreeNode
	size int
}

type btreeEntry struct {
	key float64
	row uint32
}

type btreeNode struct {
	leaf     bool
	keys     []float64    // separator keys (internal) or entry keys (leaf)
	children []*btreeNode // internal nodes only
	rows     []uint32     // leaf nodes only, parallel to keys
	next     *btreeNode   // leaf-level linked list
}

// NewBTree bulk-loads a B+-tree from unsorted (key,row) pairs.
func NewBTree(keys []float64, rows []uint32) *BTree {
	if len(keys) != len(rows) {
		panic("engine: NewBTree keys/rows length mismatch")
	}
	entries := make([]btreeEntry, len(keys))
	for i := range keys {
		entries[i] = btreeEntry{key: keys[i], row: rows[i]}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].key != entries[j].key {
			return entries[i].key < entries[j].key
		}
		return entries[i].row < entries[j].row
	})
	t := &BTree{size: len(entries)}
	t.root = bulkLoad(entries)
	return t
}

// bulkLoad builds the tree bottom-up from sorted entries.
func bulkLoad(entries []btreeEntry) *btreeNode {
	// Build leaves.
	var leaves []*btreeNode
	for start := 0; start < len(entries); start += btreeOrder {
		end := start + btreeOrder
		if end > len(entries) {
			end = len(entries)
		}
		leaf := &btreeNode{leaf: true}
		for _, e := range entries[start:end] {
			leaf.keys = append(leaf.keys, e.key)
			leaf.rows = append(leaf.rows, e.row)
		}
		leaves = append(leaves, leaf)
	}
	if len(leaves) == 0 {
		return &btreeNode{leaf: true}
	}
	for i := 0; i+1 < len(leaves); i++ {
		leaves[i].next = leaves[i+1]
	}
	// Build internal levels.
	level := leaves
	for len(level) > 1 {
		var parents []*btreeNode
		for start := 0; start < len(level); start += btreeOrder {
			end := start + btreeOrder
			if end > len(level) {
				end = len(level)
			}
			p := &btreeNode{}
			for _, child := range level[start:end] {
				p.children = append(p.children, child)
				p.keys = append(p.keys, firstKey(child))
			}
			parents = append(parents, p)
		}
		level = parents
	}
	return level[0]
}

func firstKey(n *btreeNode) float64 {
	for !n.leaf {
		n = n.children[0]
	}
	if len(n.keys) == 0 {
		return 0
	}
	return n.keys[0]
}

// Len returns the number of entries in the tree.
func (t *BTree) Len() int { return t.size }

// Height returns the tree height (1 for a single leaf).
func (t *BTree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}

// Insert adds one (key,row) entry, splitting nodes as needed.
func (t *BTree) Insert(key float64, row uint32) {
	t.size++
	newChild, splitKey := t.root.insert(key, row)
	if newChild != nil {
		root := &btreeNode{
			keys:     []float64{firstKey(t.root), splitKey},
			children: []*btreeNode{t.root, newChild},
		}
		t.root = root
	}
}

// insert returns a new right sibling and its first key when the node splits.
func (n *btreeNode) insert(key float64, row uint32) (*btreeNode, float64) {
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool {
			return n.keys[i] > key || (n.keys[i] == key && n.rows[i] >= row)
		})
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.rows = append(n.rows, 0)
		copy(n.rows[i+1:], n.rows[i:])
		n.rows[i] = row
		if len(n.keys) <= btreeOrder {
			return nil, 0
		}
		mid := len(n.keys) / 2
		right := &btreeNode{leaf: true, next: n.next}
		right.keys = append(right.keys, n.keys[mid:]...)
		right.rows = append(right.rows, n.rows[mid:]...)
		n.keys = n.keys[:mid]
		n.rows = n.rows[:mid]
		n.next = right
		return right, right.keys[0]
	}
	// Internal: find child whose range contains key.
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
	if i > 0 {
		i--
	}
	newChild, splitKey := n.children[i].insert(key, row)
	if newChild == nil {
		return nil, 0
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[i+2:], n.keys[i+1:])
	n.keys[i+1] = splitKey
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = newChild
	if len(n.children) <= btreeOrder {
		return nil, 0
	}
	mid := len(n.children) / 2
	right := &btreeNode{}
	right.keys = append(right.keys, n.keys[mid:]...)
	right.children = append(right.children, n.children[mid:]...)
	n.keys = n.keys[:mid]
	n.children = n.children[:mid]
	return right, right.keys[0]
}

// Range returns the row ids of entries with key in [lo, hi], plus the number
// of index entries and nodes touched during the scan (for costing).
func (t *BTree) Range(lo, hi float64) (rows []uint32, entries int) {
	n := t.root
	entries++ // root visit
	for !n.leaf {
		// Duplicate keys may span node boundaries: the child *before* the
		// first separator ≥ lo can still hold entries equal to lo in its
		// tail, so descend there and rely on the leaf chain to move forward.
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= lo })
		if i > 0 {
			i--
		}
		n = n.children[i]
		entries++
	}
	// Walk the leaf chain.
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= lo })
	for n != nil {
		for ; i < len(n.keys); i++ {
			entries++
			if n.keys[i] > hi {
				return rows, entries
			}
			rows = append(rows, n.rows[i])
		}
		n = n.next
		i = 0
	}
	return rows, entries
}

// CountRange returns the number of entries with key in [lo, hi] without
// materializing row ids (used for true-selectivity computation).
func (t *BTree) CountRange(lo, hi float64) int {
	rows, _ := t.Range(lo, hi)
	return len(rows)
}
