package engine

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// The sketch tests pin the two statistical contracts the approximate tier
// states to clients: CMS estimates are one-sided (never below truth) and
// exceed it by more than ε·N only rarely; HLL estimates sit within a few
// multiples of the stated relative standard error. Every test uses fixed
// seeds, so the "statistical" assertions are deterministic — thresholds are
// set with slack below the nominal guarantees precisely so they cannot
// flake, while still catching an implementation whose error behavior is
// wrong in kind (an underestimating CMS, a biased HLL).

// TestCMSOverestimateOnly: for every key, Estimate >= truth — the property
// that makes sketch-served counts safe to state as upper-bounded.
func TestCMSOverestimateOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	cms := NewCountMinSketch(512, 4)
	truth := make(map[uint64]uint64)
	for i := 0; i < 20_000; i++ {
		k := uint64(rng.Intn(2000)) // heavy collisions across 2000 keys
		n := uint64(rng.Intn(5) + 1)
		cms.Add(k, n)
		truth[k] += n
	}
	for k, want := range truth {
		if got := cms.Estimate(k); got < want {
			t.Fatalf("key %d: estimate %d below truth %d (CMS must overestimate)", k, got, want)
		}
	}
	// Unseen keys may collide into occupied counters but never go negative.
	for k := uint64(1 << 40); k < 1<<40+100; k++ {
		_ = cms.Estimate(k)
	}
}

// TestCMSEpsilonBound: the fraction of keys whose estimate exceeds
// truth + ε·N stays within the sketch's stated failure probability
// (≈ exp(-depth) ≈ 1.8% at depth 4; we allow 5% slack headroom).
func TestCMSEpsilonBound(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	cms := NewCountMinSketch(512, 4)
	truth := make(map[uint64]uint64)
	for i := 0; i < 50_000; i++ {
		k := uint64(rng.Intn(5000))
		cms.Add(k, 1)
		truth[k]++
	}
	limit := cms.Epsilon() * float64(cms.Adds())
	violations := 0
	for k, want := range truth {
		if float64(cms.Estimate(k)) > float64(want)+limit {
			violations++
		}
	}
	if frac := float64(violations) / float64(len(truth)); frac > 0.05 {
		t.Fatalf("%.1f%% of keys exceed the ε·N bound (%d/%d), want ≤ 5%%",
			frac*100, violations, len(truth))
	}
}

// TestCMSWidthRounding: width rounds up to a power of two with a floor, and
// Epsilon shrinks as width grows.
func TestCMSWidthRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, 16}, {16, 16}, {17, 32}, {512, 512}, {513, 1024}} {
		if got := NewCountMinSketch(tc.in, 1).width; got != tc.want {
			t.Errorf("width %d rounds to %d, want %d", tc.in, got, tc.want)
		}
	}
	if NewCountMinSketch(512, 4).Epsilon() >= NewCountMinSketch(256, 4).Epsilon() {
		t.Error("Epsilon must shrink with width")
	}
}

// TestHLLAccuracy: estimates land within 3 standard errors of truth across
// two orders of magnitude of cardinality, and the small-range linear
// counting regime is near-exact.
func TestHLLAccuracy(t *testing.T) {
	for _, n := range []int{100, 1_000, 10_000, 100_000} {
		h := NewHyperLogLog()
		for i := 0; i < n; i++ {
			h.Add(mix64(uint64(i) ^ 0xdecafbad))
		}
		est := h.Estimate()
		relErr := math.Abs(est-float64(n)) / float64(n)
		tol := 3 * h.RelStdErr() // ≈ 4.9% at p=12
		if n <= 1000 {
			tol = 0.02 // linear-counting regime: near exact
		}
		if relErr > tol {
			t.Errorf("n=%d: estimate %.0f, relative error %.3f > %.3f", n, est, relErr, tol)
		}
	}
}

// TestHLLMergeIsUnion: merging sketches of two overlapping sets yields the
// identical register state as sketching the union directly — the property
// that makes per-bucket summaries composable over any window.
func TestHLLMergeIsUnion(t *testing.T) {
	a, b, u := NewHyperLogLog(), NewHyperLogLog(), NewHyperLogLog()
	for i := 0; i < 5_000; i++ {
		h := mix64(uint64(i))
		a.Add(h)
		u.Add(h)
	}
	for i := 2_500; i < 7_500; i++ {
		h := mix64(uint64(i))
		b.Add(h)
		u.Add(h)
	}
	a.Merge(b)
	if a.registers != u.registers {
		t.Fatal("merged registers differ from union's registers")
	}
	// Idempotent: merging again changes nothing.
	before := a.registers
	a.Merge(b)
	if a.registers != before {
		t.Fatal("repeated merge changed registers")
	}
}

// TestHLLDeterministic: the same input stream in any order produces the same
// registers (register max is commutative).
func TestHLLDeterministic(t *testing.T) {
	fwd, rev := NewHyperLogLog(), NewHyperLogLog()
	const n = 10_000
	for i := 0; i < n; i++ {
		fwd.Add(mix64(uint64(i)))
		rev.Add(mix64(uint64(n - 1 - i)))
	}
	if fwd.registers != rev.registers {
		t.Fatal("insertion order changed HLL state")
	}
}

// sketchTestTable builds a small table plus a 1-second-bucket sketch and
// returns both with the DB, shared by the TableSketch tests.
func sketchTestTable(t *testing.T, rows int) (*DB, *Table, *TableSketch) {
	t.Helper()
	db := buildTestDB(t, rows, 9)
	tb := db.Table("events")
	sk, err := tb.BuildSketch("text", "ts", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return db, tb, sk
}

// exactKeywordCount counts rows in [loMs, hiMs] containing word — the truth
// the CMS path's one-sided bound is stated against.
func exactKeywordCount(tb *Table, word uint32, loMs, hiMs int64) int {
	times := tb.Col("ts").Ints
	texts := tb.Col("text").Texts
	n := 0
	for r := 0; r < tb.Rows; r++ {
		if times[r] < loMs || times[r] > hiMs {
			continue
		}
		for _, w := range texts[r] {
			if w == word {
				n++
				break
			}
		}
	}
	return n
}

// TestTableSketchKeywordCountBound: for every vocabulary word and several
// windows, the windowed estimate is one-sided (≥ truth) and within the
// stated bound (≤ truth + bound).
func TestTableSketchKeywordCountBound(t *testing.T) {
	_, tb, sk := sketchTestTable(t, 4_000)
	windows := []struct {
		lo, hi   int64
		windowed bool
	}{
		{0, 0, false},      // whole table
		{2000, 7000, true}, // partial boundary buckets on both ends
		{0, 9999, true},    // full range, aligned
		{4500, 4600, true}, // sub-bucket window
	}
	for word := uint32(1); word <= 50; word++ {
		for _, w := range windows {
			est, bound, touched := sk.KeywordCount(word, w.lo, w.hi, w.windowed)
			lo, hi := w.lo, w.hi
			if !w.windowed {
				lo, hi = math.MinInt64, math.MaxInt64
			}
			truth := float64(exactKeywordCount(tb, word, lo, hi))
			if est < truth {
				t.Fatalf("word %d window %+v: estimate %.0f below truth %.0f", word, w, est, truth)
			}
			if est > truth+bound {
				t.Fatalf("word %d window %+v: estimate %.0f exceeds truth %.0f + bound %.1f", word, w, est, truth, bound)
			}
			if touched <= 0 {
				t.Fatalf("word %d window %+v: touched %d buckets", word, w, touched)
			}
		}
	}
}

// TestTableSketchDistinctWords: the HLL estimate over a window's bucket
// cover tracks the exact distinct count over the bucket-aligned window (the
// window AlignWindow reports), and reusing a scratch HLL changes nothing.
func TestTableSketchDistinctWords(t *testing.T) {
	_, tb, sk := sketchTestTable(t, 4_000)
	scratch := NewHyperLogLog()
	for _, w := range []struct{ lo, hi int64 }{{2000, 7000}, {0, 9999}, {4500, 4600}} {
		est, relErr, touched := sk.DistinctWords(w.lo, w.hi, true, nil)
		est2, _, _ := sk.DistinctWords(w.lo, w.hi, true, scratch)
		if est != est2 {
			t.Fatalf("window %+v: scratch reuse changed the estimate (%.2f vs %.2f)", w, est, est2)
		}
		alo, ahi := sk.AlignWindow(w.lo, w.hi)
		var rows []uint32
		times := tb.Col("ts").Ints
		for r := 0; r < tb.Rows; r++ {
			if times[r] >= alo && times[r] <= ahi {
				rows = append(rows, uint32(r))
			}
		}
		truth := float64(DistinctWordsExact(tb, rows, "text"))
		tol := math.Max(2, 3*relErr*truth)
		if math.Abs(est-truth) > tol {
			t.Fatalf("window %+v: estimate %.1f vs exact %.0f (tolerance %.1f)", w, est, truth, tol)
		}
		if touched <= 0 {
			t.Fatalf("window %+v: touched %d buckets", w, touched)
		}
	}
}

// TestTableSketchIncrementalEqualsBulk: a sketch maintained incrementally by
// the ingest path over N batches is probe-for-probe identical to a sketch
// rebuilt from scratch over the final rows — the commutativity property WAL
// replay determinism stands on.
func TestTableSketchIncrementalEqualsBulk(t *testing.T) {
	db := buildTestDB(t, 1_000, 9)
	tb := db.Table("events")
	if _, err := tb.BuildSketch("text", "ts", time.Second); err != nil {
		t.Fatal(err)
	}
	at := time.Unix(1700000000, 0)
	for i := 0; i < 5; i++ {
		if _, err := db.ApplyBatch("events", ingestBatch(t, 800+int64(i), 60), at.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	incr := tb.Sketch

	bulk := NewTableSketch("text", "ts", time.Second)
	times := tb.Col("ts").Ints
	texts := tb.Col("text").Texts
	for r := 0; r < tb.Rows; r++ {
		bulk.AddRow(times[r], texts[r])
	}

	if incr.Rows() != bulk.Rows() || incr.Buckets() != bulk.Buckets() {
		t.Fatalf("shape diverges: rows %d/%d buckets %d/%d",
			incr.Rows(), bulk.Rows(), incr.Buckets(), bulk.Buckets())
	}
	for b, ib := range incr.buckets {
		bb := bulk.buckets[b]
		if bb == nil {
			t.Fatalf("bucket %d missing from bulk rebuild", b)
		}
		if ib.rows != bb.rows {
			t.Fatalf("bucket %d rows %d vs %d", b, ib.rows, bb.rows)
		}
		for i := range ib.cms.counters {
			if ib.cms.counters[i] != bb.cms.counters[i] {
				t.Fatalf("bucket %d CMS counter %d diverges", b, i)
			}
		}
		if ib.hll.registers != bb.hll.registers {
			t.Fatalf("bucket %d HLL registers diverge", b)
		}
	}
}

// TestTableSketchBucketOf: floor-division bucketing, including negative
// timestamps (an epoch-before-1970 row must not share a bucket with an
// epoch-after row).
func TestTableSketchBucketOf(t *testing.T) {
	sk := NewTableSketch("text", "ts", time.Second)
	for _, tc := range []struct {
		ts   int64
		want int64
	}{{0, 0}, {999, 0}, {1000, 1}, {-1, -1}, {-1000, -1}, {-1001, -2}} {
		if got := sk.bucketOf(tc.ts); got != tc.want {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.ts, got, tc.want)
		}
	}
	alo, ahi := sk.AlignWindow(1500, 3500)
	if alo != 1000 || ahi != 3999 {
		t.Errorf("AlignWindow(1500,3500) = [%d,%d], want [1000,3999]", alo, ahi)
	}
}

// TestBuildSketchValidation: sample tables and non-text/non-time columns are
// rejected; a second build returns the existing sketch.
func TestBuildSketchValidation(t *testing.T) {
	db := buildTestDB(t, 500, 9)
	tb := db.Table("events")
	if _, err := tb.BuildSample(20, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Samples[20].BuildSketch("text", "ts", 0); err == nil {
		t.Error("BuildSketch on a sample table must fail")
	}
	if _, err := tb.BuildSketch("ts", "ts", 0); err == nil {
		t.Error("BuildSketch with a non-text text column must fail")
	}
	if _, err := tb.BuildSketch("text", "val", 0); err == nil {
		t.Error("BuildSketch with a non-time time column must fail")
	}
	sk, err := tb.BuildSketch("text", "ts", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	again, err := tb.BuildSketch("text", "ts", time.Minute) // config ignored: already built
	if err != nil || again != sk {
		t.Fatalf("BuildSketch not idempotent: %v %p vs %p", err, again, sk)
	}
	if sk.Rows() != uint64(tb.Rows) {
		t.Fatalf("sketch summarizes %d rows, table has %d", sk.Rows(), tb.Rows)
	}
}
