package engine

import (
	"math/rand"
	"testing"
)

// buildTestDB creates a small two-table database with all index kinds.
func buildTestDB(t testing.TB, rows int, seed int64) *DB {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := NewDB(ProfilePostgres(), seed)
	tb := NewTable("events", 100)

	const vocab = 50
	for w := 0; w < vocab; w++ {
		tb.Vocab.Intern(string(rune('a' + w%26)))
	}
	texts := make([][]uint32, rows)
	times := make([]int64, rows)
	points := make([]Point, rows)
	vals := make([]float64, rows)
	keys := make([]int64, rows)
	for i := 0; i < rows; i++ {
		k := rng.Intn(4) + 1
		toks := make([]uint32, 0, k)
		for j := 0; j < k; j++ {
			toks = append(toks, uint32(rng.Intn(vocab))+1)
		}
		texts[i] = SortTokens(toks)
		times[i] = int64(rng.Intn(10000))
		points[i] = Point{Lon: rng.Float64() * 100, Lat: rng.Float64() * 50}
		vals[i] = rng.Float64() * 1000
		keys[i] = int64(rng.Intn(rows/10 + 1))
	}
	for _, c := range []*Column{
		{Name: "text", Type: ColText, Texts: texts},
		{Name: "ts", Type: ColTime, Ints: times},
		{Name: "loc", Type: ColPoint, Points: points},
		{Name: "val", Type: ColFloat64, Floats: vals},
		{Name: "fk", Type: ColInt64, Ints: keys},
	} {
		if err := tb.AddColumn(c); err != nil {
			t.Fatal(err)
		}
	}
	for col, kind := range map[string]IndexKind{
		"text": IndexInverted, "ts": IndexBTree, "loc": IndexRTree, "val": IndexBTree,
	} {
		if _, err := tb.BuildIndex(col, kind); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.AddTable(tb); err != nil {
		t.Fatal(err)
	}

	// Dimension table for joins.
	dim := NewTable("dims", 100)
	nd := rows/10 + 1
	ids := make([]int64, nd)
	weights := make([]float64, nd)
	for i := 0; i < nd; i++ {
		ids[i] = int64(i)
		weights[i] = rng.Float64() * 10
	}
	if err := dim.AddColumn(&Column{Name: "id", Type: ColInt64, Ints: ids}); err != nil {
		t.Fatal(err)
	}
	if err := dim.AddColumn(&Column{Name: "weight", Type: ColFloat64, Floats: weights}); err != nil {
		t.Fatal(err)
	}
	if _, err := dim.BuildIndex("id", IndexBTree); err != nil {
		t.Fatal(err)
	}
	if _, err := dim.BuildIndex("weight", IndexBTree); err != nil {
		t.Fatal(err)
	}
	if err := db.AddTable(dim); err != nil {
		t.Fatal(err)
	}
	return db
}

func testQuery(db *DB) *Query {
	return &Query{
		Table:      "events",
		OutputCols: []string{"loc"},
		Preds: []Predicate{
			{Col: "text", Kind: PredKeyword, Word: db.Table("events").Vocab.ID("c"), WordText: "c"},
			{Col: "ts", Kind: PredRange, Lo: 2000, Hi: 7000},
			{Col: "loc", Kind: PredGeo, Box: Rect{MinLon: 20, MinLat: 10, MaxLon: 80, MaxLat: 40}},
		},
	}
}

// TestAllHintPlansEquivalent is the engine's central invariant: every hint
// set (any index subset, including forced sequential scan) must produce the
// exact same result rows for the same query.
func TestAllHintPlansEquivalent(t *testing.T) {
	db := buildTestDB(t, 4000, 1)
	q := testQuery(db)
	ref, _, err := db.Run(q, ForcedHint(nil, JoinAuto)) // sequential scan
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.RowIDs) == 0 {
		t.Fatal("test query matched nothing; adjust predicates")
	}
	for mask := 0; mask < 8; mask++ {
		positions := PositionsFromMask(uint32(mask), 3)
		res, stats, err := db.Run(q, ForcedHint(positions, JoinAuto))
		if err != nil {
			t.Fatalf("mask %d: %v", mask, err)
		}
		if !equalRows(res.RowIDs, ref.RowIDs) {
			t.Errorf("mask %d: %d rows, want %d (results differ)", mask, len(res.RowIDs), len(ref.RowIDs))
		}
		if stats.SimMs <= 0 {
			t.Errorf("mask %d: non-positive SimMs %v", mask, stats.SimMs)
		}
	}
}

// TestJoinMethodsEquivalent: all three join methods return identical rows.
func TestJoinMethodsEquivalent(t *testing.T) {
	db := buildTestDB(t, 4000, 2)
	q := testQuery(db)
	q.Join = &JoinClause{
		Table: "dims", LeftCol: "fk", RightCol: "id",
		Preds: []Predicate{{Col: "weight", Kind: PredRange, Lo: 2, Hi: 9}},
	}
	var ref []uint32
	for i, jm := range []JoinMethod{NestLoopJoin, HashJoin, MergeJoin} {
		res, stats, err := db.Run(q, ForcedHint([]int{1}, jm))
		if err != nil {
			t.Fatalf("%v: %v", jm, err)
		}
		rows := sortedCopy(res.RowIDs)
		if i == 0 {
			ref = rows
			if len(ref) == 0 {
				t.Fatal("join query matched nothing")
			}
			continue
		}
		if !equalRows(rows, ref) {
			t.Errorf("%v: %d rows, want %d", jm, len(rows), len(ref))
		}
		if stats.SimMs <= 0 {
			t.Errorf("%v: SimMs = %v", jm, stats.SimMs)
		}
	}
}

// TestLimitTruncates: a LIMIT produces a prefix of the full result and sets
// Truncated, with strictly less simulated work than the full run.
func TestLimitTruncates(t *testing.T) {
	db := buildTestDB(t, 4000, 3)
	q := testQuery(db)
	full, fullStats, err := db.Run(q, ForcedHint([]int{1, 2}, JoinAuto))
	if err != nil {
		t.Fatal(err)
	}
	if len(full.RowIDs) < 5 {
		t.Skip("too few matches to exercise LIMIT")
	}
	lq := q.Clone()
	lq.Limit = 3
	lim, limStats, err := db.Run(lq, ForcedHint([]int{1, 2}, JoinAuto))
	if err != nil {
		t.Fatal(err)
	}
	if len(lim.RowIDs) != 3 || !lim.Truncated {
		t.Fatalf("limit run: %d rows, truncated=%v", len(lim.RowIDs), lim.Truncated)
	}
	if !equalRows(lim.RowIDs, full.RowIDs[:3]) {
		t.Error("LIMIT result is not a prefix of the full result")
	}
	if limStats.RowsFetched >= fullStats.RowsFetched {
		t.Errorf("limit fetched %d rows, full fetched %d — no early termination",
			limStats.RowsFetched, fullStats.RowsFetched)
	}
}

// TestSampleExecution: sample-table runs return base-table row ids that are
// a subset of the full result, with scaled weight.
func TestSampleExecution(t *testing.T) {
	db := buildTestDB(t, 6000, 4)
	tb := db.Table("events")
	if _, err := tb.BuildSample(20, 7); err != nil {
		t.Fatal(err)
	}
	q := testQuery(db)
	full, _, err := db.Run(q, ForcedHint([]int{1}, JoinAuto))
	if err != nil {
		t.Fatal(err)
	}
	sq := q.Clone()
	sq.SamplePercent = 20
	samp, sampStats, err := db.Run(sq, ForcedHint([]int{1}, JoinAuto))
	if err != nil {
		t.Fatal(err)
	}
	if samp.Weight != 5 {
		t.Errorf("sample weight = %v, want 5", samp.Weight)
	}
	inFull := make(map[uint32]bool, len(full.RowIDs))
	for _, r := range full.RowIDs {
		inFull[r] = true
	}
	for _, r := range samp.RowIDs {
		if !inFull[r] {
			t.Fatalf("sample row %d not in full result", r)
		}
	}
	// The 20% sample should return roughly 20% of the rows (loose band).
	frac := float64(len(samp.RowIDs)) / float64(len(full.RowIDs))
	if frac < 0.05 || frac > 0.5 {
		t.Errorf("sample returned fraction %.2f of full result", frac)
	}
	if sampStats.SimMs <= 0 {
		t.Error("sample run SimMs not positive")
	}
}

// TestBinning: binned execution produces counts that sum to the result size.
func TestBinning(t *testing.T) {
	db := buildTestDB(t, 3000, 5)
	q := testQuery(db)
	q.Bin = &BinSpec{Col: "loc", Extent: Rect{MinLon: 0, MinLat: 0, MaxLon: 100, MaxLat: 50}, W: 8, H: 4}
	res, _, err := db.Run(q, ForcedHint([]int{1}, JoinAuto))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for cell, v := range res.Bins {
		if cell < 0 || cell >= 32 {
			t.Errorf("bin id %d out of range", cell)
		}
		sum += v
	}
	if int(sum) != len(res.RowIDs) {
		t.Errorf("bin counts sum to %v, want %d", sum, len(res.RowIDs))
	}
}

func TestRunErrors(t *testing.T) {
	db := buildTestDB(t, 500, 6)
	q := testQuery(db)

	if _, _, err := db.Run(&Query{Table: "nope"}, Hint{}); err == nil {
		t.Error("expected error for unknown table")
	}
	if _, _, err := db.Run(q, ForcedHint([]int{7}, JoinAuto)); err == nil {
		t.Error("expected error for out-of-range hint position")
	}
	sq := q.Clone()
	sq.SamplePercent = 33
	if _, _, err := db.Run(sq, Hint{}); err == nil {
		t.Error("expected error for missing sample table")
	}
	jq := q.Clone()
	jq.Join = &JoinClause{Table: "nope", LeftCol: "fk", RightCol: "id"}
	if _, _, err := db.Run(jq, ForcedHint([]int{1}, HashJoin)); err == nil {
		t.Error("expected error for unknown join table")
	}
}

// TestDeterministicExecution: identical runs produce identical stats
// (virtual time included).
func TestDeterministicExecution(t *testing.T) {
	db := buildTestDB(t, 2000, 7)
	q := testQuery(db)
	_, s1, err := db.Run(q, ForcedHint([]int{0, 1}, JoinAuto))
	if err != nil {
		t.Fatal(err)
	}
	_, s2, err := db.Run(q, ForcedHint([]int{0, 1}, JoinAuto))
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Errorf("stats differ across identical runs:\n%+v\n%+v", s1, s2)
	}
}

// TestNoiseVariesByPlan: different plans get different (deterministic) noise.
func TestNoiseVariesByPlan(t *testing.T) {
	p := ProfilePostgres()
	f1 := p.noiseFactor(1, 100)
	f2 := p.noiseFactor(1, 101)
	f3 := p.noiseFactor(2, 100)
	if f1 == f2 || f1 == f3 {
		t.Errorf("noise factors should differ: %v %v %v", f1, f2, f3)
	}
	if f1 != p.noiseFactor(1, 100) {
		t.Error("noise not deterministic")
	}
}
