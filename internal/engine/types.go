package engine

import "fmt"

// ColType enumerates the column types supported by the engine.
type ColType uint8

const (
	// ColInt64 holds 64-bit integers (ids, counts).
	ColInt64 ColType = iota
	// ColFloat64 holds 64-bit floats (prices, distances).
	ColFloat64
	// ColTime holds timestamps as Unix milliseconds.
	ColTime
	// ColPoint holds 2-D geo coordinates.
	ColPoint
	// ColText holds tokenized text (word-id slices per row).
	ColText
)

// String returns the SQL-ish name of the column type.
func (t ColType) String() string {
	switch t {
	case ColInt64:
		return "BIGINT"
	case ColFloat64:
		return "DOUBLE"
	case ColTime:
		return "TIMESTAMP"
	case ColPoint:
		return "POINT"
	case ColText:
		return "TEXT"
	}
	return fmt.Sprintf("ColType(%d)", uint8(t))
}

// Point is a geographic coordinate (longitude, latitude).
type Point struct {
	Lon float64
	Lat float64
}

// Rect is an axis-aligned bounding box in (lon, lat) space.
type Rect struct {
	MinLon, MinLat float64
	MaxLon, MaxLat float64
}

// Contains reports whether p lies inside the rectangle (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.Lon >= r.MinLon && p.Lon <= r.MaxLon &&
		p.Lat >= r.MinLat && p.Lat <= r.MaxLat
}

// Intersects reports whether the two rectangles overlap.
func (r Rect) Intersects(o Rect) bool {
	return r.MinLon <= o.MaxLon && o.MinLon <= r.MaxLon &&
		r.MinLat <= o.MaxLat && o.MinLat <= r.MaxLat
}

// ContainsRect reports whether r fully contains o.
func (r Rect) ContainsRect(o Rect) bool {
	return r.MinLon <= o.MinLon && r.MaxLon >= o.MaxLon &&
		r.MinLat <= o.MinLat && r.MaxLat >= o.MaxLat
}

// Extend grows r to include o and returns the result.
func (r Rect) Extend(o Rect) Rect {
	if o.MinLon < r.MinLon {
		r.MinLon = o.MinLon
	}
	if o.MinLat < r.MinLat {
		r.MinLat = o.MinLat
	}
	if o.MaxLon > r.MaxLon {
		r.MaxLon = o.MaxLon
	}
	if o.MaxLat > r.MaxLat {
		r.MaxLat = o.MaxLat
	}
	return r
}

// Area returns the rectangle's area (degrees squared).
func (r Rect) Area() float64 {
	w := r.MaxLon - r.MinLon
	h := r.MaxLat - r.MinLat
	if w < 0 || h < 0 {
		return 0
	}
	return w * h
}

// PointRect returns the degenerate rectangle covering a single point.
func PointRect(p Point) Rect {
	return Rect{MinLon: p.Lon, MinLat: p.Lat, MaxLon: p.Lon, MaxLat: p.Lat}
}

// Column is a typed column of values. Exactly one of the value slices is
// populated, selected by Type. Text columns store word ids; the owning
// table's Vocab maps ids back to strings.
type Column struct {
	Name   string
	Type   ColType
	Ints   []int64    // ColInt64 and ColTime (unix ms)
	Floats []float64  // ColFloat64
	Points []Point    // ColPoint
	Texts  [][]uint32 // ColText: sorted unique word ids per row
}

// Len returns the number of rows stored in the column.
func (c *Column) Len() int {
	switch c.Type {
	case ColInt64, ColTime:
		return len(c.Ints)
	case ColFloat64:
		return len(c.Floats)
	case ColPoint:
		return len(c.Points)
	case ColText:
		return len(c.Texts)
	}
	return 0
}

// NumericAt returns the row's value as float64 for ordered column types.
// It panics for point/text columns, which have no scalar ordering.
func (c *Column) NumericAt(row uint32) float64 {
	switch c.Type {
	case ColInt64, ColTime:
		return float64(c.Ints[row])
	case ColFloat64:
		return c.Floats[row]
	}
	panic("engine: NumericAt on non-numeric column " + c.Name)
}
