package engine

import (
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"sync/atomic"
	"time"
)

// IndexKind enumerates the index types the engine supports.
type IndexKind uint8

const (
	// IndexBTree is a B+-tree over a numeric or time column.
	IndexBTree IndexKind = iota
	// IndexRTree is an R-tree over a point column.
	IndexRTree
	// IndexInverted is an inverted index over a text column.
	IndexInverted
)

// String returns the index kind name as it appears in hints.
func (k IndexKind) String() string {
	switch k {
	case IndexBTree:
		return "btree"
	case IndexRTree:
		return "rtree"
	case IndexInverted:
		return "inverted"
	}
	return fmt.Sprintf("IndexKind(%d)", uint8(k))
}

// Index is a secondary index on one column of a table.
type Index struct {
	Col    string
	Kind   IndexKind
	btree  *BTree
	rtree  *RTree
	invidx *InvertedIndex
}

// Lookup returns the sorted row ids matching p via the index and the number
// of index entries touched. The returned slice is freshly allocated (btree,
// rtree) or shared-immutable (inverted), so it is stable enough to live in a
// LookupCache; executor paths that never cache a probe — join probes, true
// selectivity without a cache — use BTree.Visit / Cursor instead and skip the
// materialization entirely.
func (ix *Index) Lookup(p Predicate) (rows []uint32, entries int, err error) {
	switch ix.Kind {
	case IndexBTree:
		if p.Kind != PredRange {
			return nil, 0, fmt.Errorf("engine: btree index on %s cannot serve %s predicate", ix.Col, p.Kind)
		}
		rows, entries = ix.btree.Range(p.Lo, p.Hi)
		// Range returns rows in key order; posting-list consumers
		// (intersection) require row-id order, like a bitmap index scan.
		slices.Sort(rows)
		return rows, entries, nil
	case IndexRTree:
		if p.Kind != PredGeo {
			return nil, 0, fmt.Errorf("engine: rtree index on %s cannot serve %s predicate", ix.Col, p.Kind)
		}
		rows, entries = ix.rtree.Search(p.Box)
		return rows, entries, nil
	case IndexInverted:
		if p.Kind != PredKeyword {
			return nil, 0, fmt.Errorf("engine: inverted index on %s cannot serve %s predicate", ix.Col, p.Kind)
		}
		rows, entries = ix.invidx.Lookup(p.Word)
		return rows, entries, nil
	}
	return nil, 0, fmt.Errorf("engine: unknown index kind %d", ix.Kind)
}

// Table is an in-memory columnar table. ScaleFactor maps the stored row
// count to the "real" row count the virtual clock simulates: a table storing
// 200k rows with ScaleFactor 500 behaves, time-wise, like a 100M-row table.
type Table struct {
	Name        string
	Cols        []*Column
	byName      map[string]*Column
	Rows        int
	ScaleFactor float64
	Vocab       *Vocab

	Indexes map[string]*Index // by column name
	Samples map[int]*Table    // by percent (e.g. 20 → 20% sample)

	// Sketch is the table's time-bucketed summary store (Count-Min keyword
	// frequencies + HyperLogLog distinct words), nil until BuildSketch.
	// Maintained incrementally by appendBatch under the data write lock.
	Sketch *TableSketch

	// SampleOf is the base table when this table is a sample, else nil.
	SampleOf *Table
	// SamplePercent is the sampling rate when SampleOf != nil.
	SamplePercent int

	// version is the table's monotonic data version, starting at 0 for the
	// freshly built table and bumped once per applied ingest flush (see
	// DB.ApplyBatch). Every cache keyed on this table's contents folds the
	// version into its key, so a bump atomically invalidates plan, result,
	// lookup, and peer caches without touching them.
	version atomic.Uint64
	// history records recent (version, flush time) pairs, newest first, for
	// the /* ttl:N */ staleness-tolerance hint: a reader may accept answers
	// from any version whose successor flushed within its tolerance window.
	// Bounded to versionHistoryCap entries; guarded by histMu.
	histMu  sync.Mutex
	history []VersionStamp

	// sampleSeeds remembers the seed each sample was built with so ingest
	// can extend samples deterministically (by percent).
	sampleSeeds map[int]int64
}

// VersionStamp records when a data version became current.
type VersionStamp struct {
	Version uint64
	At      time.Time
}

// versionHistoryCap bounds the retained flush history per table. It only
// limits how far back a ttl hint can reach, never correctness.
const versionHistoryCap = 32

// DataVersion returns the table's current data version. Version 0 is the
// freshly built (pre-ingest) state.
func (t *Table) DataVersion() uint64 { return t.version.Load() }

// bumpVersion advances the data version by one and records the flush time.
// Callers must hold the owning DB's data write lock.
func (t *Table) bumpVersion(at time.Time) uint64 {
	v := t.version.Add(1)
	t.histMu.Lock()
	t.history = append(t.history, VersionStamp{Version: v, At: at})
	if len(t.history) > versionHistoryCap {
		t.history = t.history[len(t.history)-versionHistoryCap:]
	}
	t.histMu.Unlock()
	return v
}

// historySnapshot copies the retained flush history, oldest first.
func (t *Table) historySnapshot() []VersionStamp {
	t.histMu.Lock()
	defer t.histMu.Unlock()
	return append([]VersionStamp(nil), t.history...)
}

// restoreVersion force-sets the data version and flush history, mirroring the
// version onto every sample (ApplyBatch bumps base and samples in lockstep,
// so after N flushes they agree). WAL checkpoint recovery uses it: the
// checkpoint's compacted batch applies in one append without bumps, then this
// reinstates the version state the compaction collapsed. Callers hold the
// owning DB's data write lock.
func (t *Table) restoreVersion(v uint64, stamps []VersionStamp) {
	t.version.Store(v)
	t.histMu.Lock()
	t.history = append(t.history[:0], stamps...)
	t.histMu.Unlock()
	for _, s := range t.Samples {
		s.version.Store(v)
		s.histMu.Lock()
		s.history = append(s.history[:0], stamps...)
		s.histMu.Unlock()
	}
}

// VersionsWithin returns data versions acceptable to a reader tolerating
// maxAge of staleness at time now, newest first, always starting with the
// current version. A historical version v is acceptable when the flush that
// replaced it (the bump to v+1) happened within maxAge — until then, v was
// the current answer.
func (t *Table) VersionsWithin(maxAge time.Duration, now time.Time) []uint64 {
	cur := t.version.Load()
	out := []uint64{cur}
	if maxAge <= 0 {
		return out
	}
	cutoff := now.Add(-maxAge)
	t.histMu.Lock()
	defer t.histMu.Unlock()
	for i := len(t.history) - 1; i >= 0; i-- {
		s := t.history[i]
		if s.Version > cur {
			continue
		}
		if s.At.Before(cutoff) {
			break
		}
		// The bump to s.Version happened within the window, so the version
		// it replaced (s.Version-1) is still acceptably fresh.
		out = append(out, s.Version-1)
	}
	return out
}

// NewTable creates an empty table. ScaleFactor must be ≥ 1.
func NewTable(name string, scaleFactor float64) *Table {
	if scaleFactor < 1 {
		scaleFactor = 1
	}
	return &Table{
		Name:        name,
		byName:      make(map[string]*Column),
		ScaleFactor: scaleFactor,
		Vocab:       NewVocab(),
		Indexes:     make(map[string]*Index),
		Samples:     make(map[int]*Table),
		sampleSeeds: make(map[int]int64),
	}
}

// AddColumn attaches a fully-populated column. All columns must have the
// same length; the first column fixes the row count.
func (t *Table) AddColumn(c *Column) error {
	if _, dup := t.byName[c.Name]; dup {
		return fmt.Errorf("engine: duplicate column %q in table %q", c.Name, t.Name)
	}
	if len(t.Cols) == 0 {
		t.Rows = c.Len()
	} else if c.Len() != t.Rows {
		return fmt.Errorf("engine: column %q has %d rows, table %q has %d",
			c.Name, c.Len(), t.Name, t.Rows)
	}
	t.Cols = append(t.Cols, c)
	t.byName[c.Name] = c
	return nil
}

// Col returns the named column, panicking if absent (schema errors are
// programming errors in this engine).
func (t *Table) Col(name string) *Column {
	c, ok := t.byName[name]
	if !ok {
		panic(fmt.Sprintf("engine: no column %q in table %q", name, t.Name))
	}
	return c
}

// HasColumn reports whether the table has a column with the given name.
func (t *Table) HasColumn(name string) bool {
	_, ok := t.byName[name]
	return ok
}

// RealRows returns the simulated ("paper-scale") row count.
func (t *Table) RealRows() float64 { return float64(t.Rows) * t.ScaleFactor }

// BuildIndex creates an index of the given kind on col.
func (t *Table) BuildIndex(col string, kind IndexKind) (*Index, error) {
	c, ok := t.byName[col]
	if !ok {
		return nil, fmt.Errorf("engine: no column %q in table %q", col, t.Name)
	}
	ix := &Index{Col: col, Kind: kind}
	switch kind {
	case IndexBTree:
		if c.Type != ColInt64 && c.Type != ColFloat64 && c.Type != ColTime {
			return nil, fmt.Errorf("engine: btree index needs numeric/time column, %q is %v", col, c.Type)
		}
		keys := make([]float64, t.Rows)
		rows := make([]uint32, t.Rows)
		for i := 0; i < t.Rows; i++ {
			keys[i] = c.NumericAt(uint32(i))
			rows[i] = uint32(i)
		}
		ix.btree = NewBTree(keys, rows)
	case IndexRTree:
		if c.Type != ColPoint {
			return nil, fmt.Errorf("engine: rtree index needs point column, %q is %v", col, c.Type)
		}
		rows := make([]uint32, t.Rows)
		for i := range rows {
			rows[i] = uint32(i)
		}
		ix.rtree = NewRTree(c.Points, rows)
	case IndexInverted:
		if c.Type != ColText {
			return nil, fmt.Errorf("engine: inverted index needs text column, %q is %v", col, c.Type)
		}
		ix.invidx = NewInvertedIndex(c.Texts)
	default:
		return nil, fmt.Errorf("engine: unknown index kind %d", kind)
	}
	t.Indexes[col] = ix
	return ix, nil
}

// Index returns the index on col, or nil.
func (t *Table) Index(col string) *Index { return t.Indexes[col] }

// BuildSample creates (or returns) a random sample table at the given
// percent, with the same schema and indexes as the base table. The sample's
// ScaleFactor keeps virtual time consistent: scanning the full sample costs
// percent% of scanning the base table.
func (t *Table) BuildSample(percent int, seed int64) (*Table, error) {
	if percent <= 0 || percent >= 100 {
		return nil, fmt.Errorf("engine: sample percent must be in (0,100), got %d", percent)
	}
	if s, ok := t.Samples[percent]; ok {
		return s, nil
	}
	rng := rand.New(rand.NewSource(seed ^ int64(percent)*0x9E3779B9))
	keep := make([]uint32, 0, t.Rows*percent/100+1)
	for i := 0; i < t.Rows; i++ {
		if rng.Float64()*100 < float64(percent) {
			keep = append(keep, uint32(i))
		}
	}
	s := NewTable(fmt.Sprintf("%s_sample%d", t.Name, percent), t.ScaleFactor)
	s.Vocab = t.Vocab
	s.SampleOf = t
	s.SamplePercent = percent
	for _, c := range t.Cols {
		nc := &Column{Name: c.Name, Type: c.Type}
		switch c.Type {
		case ColInt64, ColTime:
			nc.Ints = make([]int64, len(keep))
			for j, r := range keep {
				nc.Ints[j] = c.Ints[r]
			}
		case ColFloat64:
			nc.Floats = make([]float64, len(keep))
			for j, r := range keep {
				nc.Floats[j] = c.Floats[r]
			}
		case ColPoint:
			nc.Points = make([]Point, len(keep))
			for j, r := range keep {
				nc.Points[j] = c.Points[r]
			}
		case ColText:
			nc.Texts = make([][]uint32, len(keep))
			for j, r := range keep {
				nc.Texts[j] = c.Texts[r]
			}
		}
		if err := s.AddColumn(nc); err != nil {
			return nil, err
		}
	}
	// Record the base row id of each sample row so results can be compared
	// against the base table for quality metrics.
	base := &Column{Name: "__base_row", Type: ColInt64, Ints: make([]int64, len(keep))}
	for j, r := range keep {
		base.Ints[j] = int64(r)
	}
	if err := s.AddColumn(base); err != nil {
		return nil, err
	}
	// Mirror the base table's indexes.
	for col, ix := range t.Indexes {
		if _, err := s.BuildIndex(col, ix.Kind); err != nil {
			return nil, err
		}
	}
	t.Samples[percent] = s
	t.sampleSeeds[percent] = seed
	return s, nil
}

// BaseRowIDs translates sample-table row ids back to base-table row ids.
// For non-sample tables it returns rows unchanged.
func (t *Table) BaseRowIDs(rows []uint32) []uint32 {
	if t.SampleOf == nil {
		return rows
	}
	c := t.Col("__base_row")
	out := make([]uint32, len(rows))
	for i, r := range rows {
		out[i] = uint32(c.Ints[r])
	}
	return out
}
