package engine

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// TestAbortExecCancelsExecution: a yield hook calling AbortExec unwinds the
// executor cleanly — ErrExecCanceled (or the given cause) comes back as an
// ordinary error, nothing panics through, and the pooled context is recycled
// (subsequent executions still work).
func TestAbortExecCancelsExecution(t *testing.T) {
	db := buildTestDB(t, 2000, 7)
	q := testQuery(db)

	_, _, err := db.RunCachedYield(q, Hint{}, nil, func() { AbortExec(nil) })
	if !errors.Is(err, ErrExecCanceled) {
		t.Fatalf("err = %v, want ErrExecCanceled", err)
	}

	cause := fmt.Errorf("client went away: %w", ErrExecCanceled)
	_, _, err = db.RunCachedYield(q, Hint{}, nil, func() { AbortExec(cause) })
	if !errors.Is(err, ErrExecCanceled) || err.Error() != cause.Error() {
		t.Fatalf("err = %v, want wrapped cause", err)
	}

	// Cancel mid-stream on the last yield the execution makes, not the first.
	total := 0
	if _, _, err := db.RunCachedYield(q, Hint{}, nil, func() { total++ }); err != nil || total == 0 {
		t.Fatalf("counting run: %d yields, err %v", total, err)
	}
	calls := 0
	_, _, err = db.RunCachedYield(q, Hint{}, nil, func() {
		calls++
		if calls == total {
			AbortExec(nil)
		}
	})
	if !errors.Is(err, ErrExecCanceled) {
		t.Fatalf("mid-stream cancel err = %v", err)
	}

	// The executor still serves after cancels (pool not poisoned).
	if _, _, err := db.Run(q, Hint{}); err != nil {
		t.Fatalf("post-cancel run failed: %v", err)
	}
}

// TestCancelCheckYieldPreservesResults pins the non-canceled path: running
// with a cancellation-checking yield hook that never fires produces results
// and stats identical to a plain run — the check must not perturb execution.
func TestCancelCheckYieldPreservesResults(t *testing.T) {
	db := buildTestDB(t, 2000, 7)
	q := testQuery(db)

	want, wantStats, err := db.Run(q, Hint{})
	if err != nil {
		t.Fatal(err)
	}
	canceled := false
	got, gotStats, err := db.RunCachedYield(q, Hint{}, nil, func() {
		if canceled { // never true; mirrors the serving layer's ctx check
			AbortExec(nil)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("results diverge under a non-firing cancel check")
	}
	if wantStats != gotStats {
		t.Fatalf("stats diverge: %+v vs %+v", wantStats, gotStats)
	}

	// Genuine panics still propagate unchanged.
	defer func() {
		if recover() == nil {
			t.Fatal("non-abort panic was swallowed")
		}
	}()
	_, _, _ = db.RunCachedYield(q, Hint{}, nil, func() { panic("boom") })
}
