package engine

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the engine's durability layer: a per-table write-ahead log
// whose records are appended under the data write lock *before* the in-memory
// mutation they describe. One WAL record corresponds to exactly one applied
// ingest flush (one data-version bump), so startup replay reconstructs rows,
// samples, indexes, and versions bit-identically to the pre-crash state — the
// same flush-boundary-independence property the incremental-vs-bulk
// equivalence tests pin (see appendBatch / sampleKeep). Checkpoints compact
// the appended row suffix into one file and delete the sealed segments it
// covers, keeping the log bounded.

// FsyncPolicy selects when the WAL forces appended records to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every appended record: an acknowledged sync
	// ingest survives machine power loss, at one fsync per flush.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a background timer: an acknowledged row survives
	// process crashes (the write() is in the kernel) but a machine crash can
	// lose up to one sync interval of flushes.
	FsyncInterval
	// FsyncNever leaves syncing to the OS page-cache writeback. Process
	// crashes still lose nothing; machine crashes can lose whatever the
	// kernel had not written back.
	FsyncNever
)

// String returns the policy name as accepted by ParseFsyncPolicy.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// ParseFsyncPolicy parses "always", "interval", or "never".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return FsyncAlways, fmt.Errorf("engine: unknown fsync policy %q (want always|interval|never)", s)
}

// WALConfig tunes one table's write-ahead log.
type WALConfig struct {
	// Policy selects the fsync discipline. Zero value is FsyncAlways.
	Policy FsyncPolicy
	// SyncInterval is the background sync period under FsyncInterval.
	// <= 0 picks DefaultWALSyncInterval.
	SyncInterval time.Duration
	// MaxSegmentBytes rotates the active segment once it exceeds this size.
	// <= 0 picks DefaultWALSegmentBytes.
	MaxSegmentBytes int64
	// CheckpointSegments triggers a checkpoint (and sealed-segment deletion)
	// once more than this many sealed segments accumulate. <= 0 picks
	// DefaultWALCheckpointSegments.
	CheckpointSegments int
}

// Default WAL tuning.
const (
	DefaultWALSyncInterval       = 50 * time.Millisecond
	DefaultWALSegmentBytes       = 4 << 20
	DefaultWALCheckpointSegments = 4
)

// WAL file-layout names. Segment files are wal-<seq>.seg where <seq> is the
// data version of the first record written to the file (advisory ordering;
// each record carries its own seq).
const (
	walMetaFile       = "meta.json"
	walCheckpointFile = "checkpoint"
	walSegmentPrefix  = "wal-"
	walSegmentSuffix  = ".seg"
	// walMaxRecordBytes caps a decoded record's claimed payload length so a
	// corrupt length field cannot drive a huge allocation.
	walMaxRecordBytes = 64 << 20
	// walRawTokenMark flags a text token stored as a raw word id rather than
	// a word string: tables built without vocabulary-backed tokens (bare
	// engine callers) have no word to re-intern, so the id is preserved
	// verbatim.
	walRawTokenMark = 0xFFFF
)

// walMeta is the on-disk WAL identity: which table the log belongs to and how
// many rows the table had when the log was created (the replay baseline — a
// restarted process must rebuild the same base before replaying).
type walMeta struct {
	Table    string `json:"table"`
	BaseRows int    `json:"base_rows"`
}

// WALStats is a point-in-time snapshot of one WAL's activity counters.
type WALStats struct {
	Appends     int64 `json:"appends"`
	Syncs       int64 `json:"syncs"`
	Checkpoints int64 `json:"checkpoints"`
	Segments    int   `json:"segments"`     // sealed + active
	ActiveBytes int64 `json:"active_bytes"` // size of the active segment
}

// WALReplayStats describes what AttachWAL recovered at startup.
type WALReplayStats struct {
	// Checkpoint reports whether a checkpoint file seeded the replay.
	Checkpoint bool `json:"checkpoint"`
	// CheckpointRows is the number of rows the checkpoint restored.
	CheckpointRows int `json:"checkpoint_rows"`
	// Records is the number of log records applied (idempotently-skipped
	// records are not counted).
	Records int `json:"records"`
	// Rows is the number of rows the applied records appended.
	Rows int `json:"rows"`
	// Truncated reports that a torn or corrupt tail was cut at the last
	// valid record.
	Truncated bool `json:"truncated"`
	// Version is the table's data version after replay.
	Version uint64 `json:"version"`
}

// WAL is one base table's write-ahead log: length+CRC32-framed records in
// rotated segment files, with checkpoint-based truncation. Appends happen
// under the owning DB's data write lock (see DB.ApplyBatch), so records are
// strictly ordered by data version.
type WAL struct {
	dir      string
	table    string
	baseRows int
	cfg      WALConfig

	mu     sync.Mutex
	f      *os.File // active segment
	size   int64
	sealed []string // sealed segment paths, oldest first
	dirty  bool     // written since last sync
	closed bool

	stop chan struct{}
	done chan struct{}

	appends     atomic.Int64
	syncs       atomic.Int64
	checkpoints atomic.Int64

	// lastCheckpointErr records the most recent checkpoint failure. A failed
	// checkpoint loses no data (the segments it would have superseded remain),
	// so the flush that triggered it still succeeds; the error is surfaced
	// here for operators instead.
	lastCheckpointErr atomic.Pointer[error]
}

// noteCheckpointErr records a checkpoint failure for CheckpointErr.
func (w *WAL) noteCheckpointErr(err error) { w.lastCheckpointErr.Store(&err) }

// CheckpointErr returns the most recent checkpoint failure, or nil.
func (w *WAL) CheckpointErr() error {
	if p := w.lastCheckpointErr.Load(); p != nil {
		return *p
	}
	return nil
}

// normalizeWALConfig fills config defaults.
func normalizeWALConfig(cfg WALConfig) WALConfig {
	if cfg.SyncInterval <= 0 {
		cfg.SyncInterval = DefaultWALSyncInterval
	}
	if cfg.MaxSegmentBytes <= 0 {
		cfg.MaxSegmentBytes = DefaultWALSegmentBytes
	}
	if cfg.CheckpointSegments <= 0 {
		cfg.CheckpointSegments = DefaultWALCheckpointSegments
	}
	return cfg
}

// AttachWAL opens (or creates) the write-ahead log for the named base table
// in dir, replays any logged state into the table — checkpoint first, then
// segment records, truncating a torn or corrupt tail at the last valid
// record — and registers the log so every subsequent ApplyBatch appends to it
// before mutating. The table must be in its freshly-built (pre-ingest) state;
// replay reconstructs the pre-crash rows, samples, indexes, and versions
// bit-identically on top of it.
func (db *DB) AttachWAL(table, dir string, cfg WALConfig) (*WAL, WALReplayStats, error) {
	var stats WALReplayStats
	t := db.Table(table)
	if t == nil {
		return nil, stats, fmt.Errorf("engine: AttachWAL: unknown table %q", table)
	}
	if t.SampleOf != nil {
		return nil, stats, fmt.Errorf("engine: AttachWAL: %q is a sample table", table)
	}
	if t.DataVersion() != 0 {
		return nil, stats, fmt.Errorf("engine: AttachWAL: table %q already at version %d (attach before ingest)", table, t.DataVersion())
	}
	if db.wal(table) != nil {
		return nil, stats, fmt.Errorf("engine: AttachWAL: table %q already has a WAL", table)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, stats, err
	}

	w := &WAL{dir: dir, table: table, baseRows: t.Rows, cfg: normalizeWALConfig(cfg)}
	if err := w.loadOrInitMeta(t); err != nil {
		return nil, stats, err
	}
	if err := db.replayWAL(w, t, &stats); err != nil {
		return nil, stats, err
	}
	if err := w.openActive(t.DataVersion() + 1); err != nil {
		return nil, stats, err
	}
	stats.Version = t.DataVersion()

	db.mu.Lock()
	if db.wals == nil {
		db.wals = make(map[string]*WAL)
	}
	db.wals[table] = w
	db.mu.Unlock()

	if w.cfg.Policy == FsyncInterval {
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go w.syncLoop()
	}
	return w, stats, nil
}

// wal returns the attached WAL for a base table, or nil.
func (db *DB) wal(name string) *WAL {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.wals[name]
}

// loadOrInitMeta reads the on-disk WAL identity, or writes it for a fresh
// log. It rejects a directory that belongs to another table or whose replay
// baseline does not match the freshly-built table.
func (w *WAL) loadOrInitMeta(t *Table) error {
	path := filepath.Join(w.dir, walMetaFile)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		data, err = json.Marshal(walMeta{Table: w.table, BaseRows: w.baseRows})
		if err != nil {
			return err
		}
		if err := writeFileSync(path, data); err != nil {
			return err
		}
		return nil
	}
	if err != nil {
		return err
	}
	var meta walMeta
	if err := json.Unmarshal(data, &meta); err != nil {
		return fmt.Errorf("engine: wal meta %s: %w", path, err)
	}
	if meta.Table != w.table {
		return fmt.Errorf("engine: wal dir %s belongs to table %q, not %q", w.dir, meta.Table, w.table)
	}
	if meta.BaseRows != w.baseRows {
		return fmt.Errorf("engine: wal dir %s expects a %d-row base, table %q has %d (non-deterministic rebuild?)",
			w.dir, meta.BaseRows, w.table, w.baseRows)
	}
	return nil
}

// writeFileSync writes data to path durably: temp file, fsync, rename.
func writeFileSync(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// segmentFiles lists the WAL's segment paths sorted by their starting seq.
func (w *WAL) segmentFiles() ([]string, error) {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return nil, err
	}
	type seg struct {
		path string
		seq  uint64
	}
	var segs []seg
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, walSegmentPrefix) || !strings.HasSuffix(name, walSegmentSuffix) {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, walSegmentPrefix), walSegmentSuffix)
		seq, err := strconv.ParseUint(num, 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, seg{path: filepath.Join(w.dir, name), seq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	out := make([]string, len(segs))
	for i, s := range segs {
		out[i] = s.path
	}
	return out, nil
}

// segmentName renders the segment file name for a starting seq.
func (w *WAL) segmentName(seq uint64) string {
	return filepath.Join(w.dir, fmt.Sprintf("%s%016d%s", walSegmentPrefix, seq, walSegmentSuffix))
}

// openActive opens the segment new appends go to: the last existing segment
// (already truncated to its last valid record by replay), or a fresh one
// named after the next data version.
func (w *WAL) openActive(nextSeq uint64) error {
	segs, err := w.segmentFiles()
	if err != nil {
		return err
	}
	path := w.segmentName(nextSeq)
	if len(segs) > 0 {
		path = segs[len(segs)-1]
		w.sealed = segs[:len(segs)-1]
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	size, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return err
	}
	w.f, w.size = f, size
	return nil
}

// append frames, writes, and (per policy) syncs one record. The caller holds
// the owning DB's data write lock, which serializes appends and orders them
// by seq. A record is on disk before the in-memory state it describes exists,
// so an acknowledged flush is always recoverable.
func (w *WAL) append(seq uint64, at time.Time, b *Batch, vocab *Vocab) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("engine: wal for %q is closed", w.table)
	}
	payload := encodeWALRecord(nil, seq, at, b, vocab)
	frame := make([]byte, 0, len(payload)+8)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)

	if w.size > 0 && w.size+int64(len(frame)) > w.cfg.MaxSegmentBytes {
		if err := w.rotateLocked(seq); err != nil {
			return err
		}
	}
	if _, err := w.f.Write(frame); err != nil {
		return err
	}
	w.size += int64(len(frame))
	w.appends.Add(1)
	if w.cfg.Policy == FsyncAlways {
		if err := w.f.Sync(); err != nil {
			return err
		}
		w.syncs.Add(1)
	} else {
		w.dirty = true
	}
	return nil
}

// rotateLocked seals the active segment and starts a new one whose first
// record will be seq. Caller holds w.mu.
func (w *WAL) rotateLocked(seq uint64) error {
	if err := w.f.Sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.sealed = append(w.sealed, w.f.Name())
	f, err := os.OpenFile(w.segmentName(seq), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	w.f, w.size, w.dirty = f, 0, false
	return nil
}

// syncLoop is the FsyncInterval background syncer.
func (w *WAL) syncLoop() {
	defer close(w.done)
	ticker := time.NewTicker(w.cfg.SyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-ticker.C:
			_ = w.Sync()
		}
	}
}

// Sync forces buffered appends to stable storage (a no-op when clean).
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || !w.dirty {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.dirty = false
	w.syncs.Add(1)
	return nil
}

// Close syncs and closes the active segment and stops the background syncer.
// Further appends fail; the owning server must stop ingest first.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.mu.Unlock()
	if w.stop != nil {
		close(w.stop)
		<-w.done
	}
	return err
}

// Stats snapshots the WAL's activity counters.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WALStats{
		Appends:     w.appends.Load(),
		Syncs:       w.syncs.Load(),
		Checkpoints: w.checkpoints.Load(),
		Segments:    len(w.sealed) + 1,
		ActiveBytes: w.size,
	}
}

// Dir returns the WAL's directory.
func (w *WAL) Dir() string { return w.dir }

// maybeCheckpoint compacts the log once enough sealed segments accumulate:
// it writes {version, flush history, every row appended since the base build}
// to the checkpoint file (durably, via rename) and deletes the sealed
// segments it supersedes. The caller holds the DB data read lock, so the
// table state it serializes is the exact state the newest record produced.
func (w *WAL) maybeCheckpoint(t *Table) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || len(w.sealed) <= w.cfg.CheckpointSegments {
		return nil
	}
	payload := encodeWALCheckpoint(nil, t, w.baseRows)
	frame := make([]byte, 0, len(payload)+8)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	if err := writeFileSync(filepath.Join(w.dir, walCheckpointFile), frame); err != nil {
		return err
	}
	for _, path := range w.sealed {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	w.sealed = nil
	w.checkpoints.Add(1)
	return nil
}

// --- record encoding ---------------------------------------------------

// encodeWALRecord serializes one applied flush: the data version it produced,
// the flush timestamp (replayed into the version history), and the batch
// columns. Text cells are stored as word strings in id order; since token
// slices are id-sorted and ids are assigned densely in first-appearance
// order, re-interning the stored strings during replay reproduces the exact
// same vocabulary ids — the property that keeps replayed reads byte-identical.
func encodeWALRecord(buf []byte, seq uint64, at time.Time, b *Batch, vocab *Vocab) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(at.UnixNano()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.cols)))
	for _, c := range b.cols {
		buf = appendWALColumn(buf, c, 0, c.Len(), vocab)
	}
	return buf
}

// appendWALColumn serializes rows [from, to) of one column.
func appendWALColumn(buf []byte, c *Column, from, to int, vocab *Vocab) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(c.Name)))
	buf = append(buf, c.Name...)
	buf = append(buf, byte(c.Type))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(to-from))
	switch c.Type {
	case ColInt64, ColTime:
		for _, v := range c.Ints[from:to] {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		}
	case ColFloat64:
		for _, v := range c.Floats[from:to] {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	case ColPoint:
		for _, p := range c.Points[from:to] {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Lon))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Lat))
		}
	case ColText:
		for _, ids := range c.Texts[from:to] {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(ids)))
			for _, id := range ids {
				if word := vocab.Word(id); word != "" {
					buf = binary.LittleEndian.AppendUint16(buf, uint16(len(word)))
					buf = append(buf, word...)
				} else {
					buf = binary.LittleEndian.AppendUint16(buf, walRawTokenMark)
					buf = binary.LittleEndian.AppendUint32(buf, id)
				}
			}
		}
	}
	return buf
}

// walDecoder is a bounds-checked cursor over a record payload.
type walDecoder struct {
	buf []byte
	off int
	err error
}

func (d *walDecoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("engine: wal record truncated at offset %d", d.off)
	}
}

func (d *walDecoder) u16() uint16 {
	if d.err != nil || d.off+2 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

func (d *walDecoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *walDecoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *walDecoder) byte() byte {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *walDecoder) bytes(n int) []byte {
	if d.err != nil || n < 0 || d.off+n > len(d.buf) {
		d.fail()
		return nil
	}
	v := d.buf[d.off : d.off+n]
	d.off += n
	return v
}

// decodeWALColumns decodes n serialized columns into a Batch, interning text
// words into vocab in stored (id) order.
func decodeWALColumns(d *walDecoder, n int, vocab *Vocab) (*Batch, error) {
	b := NewBatch()
	for i := 0; i < n; i++ {
		name := string(d.bytes(int(d.u16())))
		typ := ColType(d.byte())
		rows := int(d.u32())
		if d.err != nil {
			return nil, d.err
		}
		c := &Column{Name: name, Type: typ}
		switch typ {
		case ColInt64, ColTime:
			c.Ints = make([]int64, rows)
			for r := 0; r < rows; r++ {
				c.Ints[r] = int64(d.u64())
			}
		case ColFloat64:
			c.Floats = make([]float64, rows)
			for r := 0; r < rows; r++ {
				c.Floats[r] = math.Float64frombits(d.u64())
			}
		case ColPoint:
			c.Points = make([]Point, rows)
			for r := 0; r < rows; r++ {
				c.Points[r] = Point{Lon: math.Float64frombits(d.u64()), Lat: math.Float64frombits(d.u64())}
			}
		case ColText:
			c.Texts = make([][]uint32, rows)
			for r := 0; r < rows; r++ {
				nw := int(d.u16())
				ids := make([]uint32, 0, nw)
				for j := 0; j < nw; j++ {
					n := d.u16()
					if n == walRawTokenMark {
						ids = append(ids, d.u32())
						continue
					}
					word := string(d.bytes(int(n)))
					if d.err != nil {
						return nil, d.err
					}
					ids = append(ids, vocab.Intern(word))
				}
				c.Texts[r] = ids
			}
		default:
			return nil, fmt.Errorf("engine: wal record has unknown column type %d", typ)
		}
		if d.err != nil {
			return nil, d.err
		}
		if err := b.AddColumn(c); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// decodeWALRecord decodes one record payload.
func decodeWALRecord(payload []byte, vocab *Vocab) (seq uint64, at time.Time, b *Batch, err error) {
	d := &walDecoder{buf: payload}
	seq = d.u64()
	at = time.Unix(0, int64(d.u64()))
	ncols := int(d.u32())
	if d.err != nil {
		return 0, time.Time{}, nil, d.err
	}
	b, err = decodeWALColumns(d, ncols, vocab)
	if err != nil {
		return 0, time.Time{}, nil, err
	}
	if d.off != len(payload) {
		return 0, time.Time{}, nil, fmt.Errorf("engine: wal record has %d trailing bytes", len(payload)-d.off)
	}
	return seq, at, b, nil
}

// encodeWALCheckpoint serializes the table's full post-base state: current
// version, flush history, and every row appended since the base build as one
// compacted batch. Applying that batch in one append on a fresh base yields
// the same rows, samples, and indexes as the original flush sequence
// (flush-boundary independence), and restoreVersion reinstates the version
// and history the compaction collapsed.
func encodeWALCheckpoint(buf []byte, t *Table, baseRows int) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, t.DataVersion())
	buf = binary.LittleEndian.AppendUint64(buf, uint64(baseRows))
	hist := t.historySnapshot()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(hist)))
	for _, s := range hist {
		buf = binary.LittleEndian.AppendUint64(buf, s.Version)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.At.UnixNano()))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.Cols)))
	for _, c := range t.Cols {
		buf = appendWALColumn(buf, c, baseRows, t.Rows, t.Vocab)
	}
	return buf
}

// decodeWALCheckpoint decodes a checkpoint payload.
func decodeWALCheckpoint(payload []byte, vocab *Vocab) (version uint64, baseRows int, hist []VersionStamp, b *Batch, err error) {
	d := &walDecoder{buf: payload}
	version = d.u64()
	baseRows = int(d.u64())
	n := int(d.u32())
	if d.err != nil {
		return 0, 0, nil, nil, d.err
	}
	hist = make([]VersionStamp, 0, n)
	for i := 0; i < n; i++ {
		v := d.u64()
		at := time.Unix(0, int64(d.u64()))
		hist = append(hist, VersionStamp{Version: v, At: at})
	}
	ncols := int(d.u32())
	if d.err != nil {
		return 0, 0, nil, nil, d.err
	}
	b, err = decodeWALColumns(d, ncols, vocab)
	if err != nil {
		return 0, 0, nil, nil, err
	}
	if d.off != len(payload) {
		return 0, 0, nil, nil, fmt.Errorf("engine: wal checkpoint has %d trailing bytes", len(payload)-d.off)
	}
	return version, baseRows, hist, b, nil
}

// --- replay -------------------------------------------------------------

// replayWAL reconstructs the pre-crash state: the checkpoint (if any) first,
// then every segment record newer than the table's current version, in seq
// order. A torn frame, CRC mismatch, or zero-length tail truncates the
// containing segment at the last valid record and drops any later segments —
// a partial flush is never surfaced.
func (db *DB) replayWAL(w *WAL, t *Table, stats *WALReplayStats) error {
	path := filepath.Join(w.dir, walCheckpointFile)
	if frame, err := os.ReadFile(path); err == nil {
		payload, _, ok := splitWALFrame(frame)
		if !ok || len(payload) != len(frame)-8 {
			return fmt.Errorf("engine: wal checkpoint %s is corrupt", path)
		}
		version, baseRows, hist, b, err := decodeWALCheckpoint(payload, t.Vocab)
		if err != nil {
			return fmt.Errorf("engine: wal checkpoint %s: %w", path, err)
		}
		if baseRows != w.baseRows {
			return fmt.Errorf("engine: wal checkpoint %s expects a %d-row base, have %d", path, baseRows, w.baseRows)
		}
		if b.Rows() > 0 {
			if err := db.applyRestore(t, b); err != nil {
				return fmt.Errorf("engine: wal checkpoint %s: %w", path, err)
			}
		}
		db.dataMu.Lock()
		t.restoreVersion(version, hist)
		db.dataMu.Unlock()
		stats.Checkpoint = true
		stats.CheckpointRows = b.Rows()
	} else if !os.IsNotExist(err) {
		return err
	}

	segs, err := w.segmentFiles()
	if err != nil {
		return err
	}
	for i, path := range segs {
		ok, err := db.replaySegment(w, t, path, stats)
		if err != nil {
			return err
		}
		if !ok {
			// Corrupt tail: everything after it is unordered garbage.
			for _, later := range segs[i+1:] {
				if err := os.Remove(later); err != nil {
					return err
				}
			}
			stats.Truncated = true
			break
		}
	}
	return nil
}

// splitWALFrame splits one [len][crc][payload] frame off buf, verifying the
// CRC. ok is false when the frame is torn, zero-length, or corrupt.
func splitWALFrame(buf []byte) (payload, rest []byte, ok bool) {
	if len(buf) < 8 {
		return nil, nil, false
	}
	n := binary.LittleEndian.Uint32(buf)
	crc := binary.LittleEndian.Uint32(buf[4:])
	if n == 0 || n > walMaxRecordBytes || int64(len(buf)-8) < int64(n) {
		return nil, nil, false
	}
	payload = buf[8 : 8+n]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, nil, false
	}
	return payload, buf[8+n:], true
}

// replaySegment replays one segment file, applying records newer than the
// table's current version and skipping older ones (double-replay
// idempotence). It returns ok=false after truncating the file at the first
// invalid frame.
func (db *DB) replaySegment(w *WAL, t *Table, path string, stats *WALReplayStats) (ok bool, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	valid := 0
	rest := buf
	for len(rest) > 0 {
		payload, next, okf := splitWALFrame(rest)
		if !okf {
			if err := os.Truncate(path, int64(valid)); err != nil {
				return false, err
			}
			return false, nil
		}
		seq, at, b, derr := decodeWALRecord(payload, t.Vocab)
		if derr != nil {
			// Framed and checksummed but undecodable: same treatment as a
			// corrupt frame.
			if err := os.Truncate(path, int64(valid)); err != nil {
				return false, err
			}
			return false, nil
		}
		if seq > t.DataVersion() {
			v, err := db.applyBatch(t.Name, b, at, false)
			if err != nil {
				return false, fmt.Errorf("engine: wal replay %s: %w", path, err)
			}
			if v != seq {
				return false, fmt.Errorf("engine: wal replay %s: record seq %d applied as version %d", path, seq, v)
			}
			stats.Records++
			stats.Rows += b.Rows()
		}
		valid = len(buf) - len(next)
		rest = next
	}
	return true, nil
}

// applyRestore applies a checkpoint's compacted batch without version bumps
// or flush hooks: rows, samples, and indexes advance exactly as the original
// flush sequence advanced them, and restoreVersion reinstates the version
// state afterwards.
func (db *DB) applyRestore(t *Table, b *Batch) error {
	db.dataMu.Lock()
	defer db.dataMu.Unlock()
	if err := t.appendBatch(b); err != nil {
		return err
	}
	db.mu.Lock()
	delete(db.stats, t.Name)
	for _, s := range t.Samples {
		delete(db.stats, s.Name)
	}
	db.mu.Unlock()
	return nil
}
