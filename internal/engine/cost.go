package engine

import (
	"hash/fnv"
	"math"
)

// CostModel converts work counters into virtual milliseconds at paper scale.
// Unit costs are in microseconds per unit of work measured at *real* scale
// (i.e. after multiplying stored-row counters by the table's ScaleFactor).
//
// The defaults are calibrated so that, on the paper's 100M-row Twitter table,
// a full scan costs ~15s, a poorly-chosen single-index plan costs 1–5s, and a
// well-chosen multi-index plan costs 30–300ms — the regime of Figures 1–4.
type CostModel struct {
	StartupMs     float64 // fixed per-query latency (parse, network)
	FullScanRowUS float64 // sequential scan, per row (includes predicate evals)
	IndexEntryUS  float64 // per index entry touched
	IntersectUS   float64 // per comparison while intersecting posting lists
	FetchUS       float64 // per candidate row fetched from the heap
	PredEvalUS    float64 // per residual predicate evaluation
	OutputUS      float64 // per output row (projection / aggregation)
	HashBuildUS   float64 // per inner row inserted into a join hash table
	HashProbeUS   float64 // per outer row probing the join hash table
	NestProbeUS   float64 // per outer row probing the inner index (nest loop)
	SortUS        float64 // per n·log2(n) unit when sorting for merge join
}

// DefaultCostModel returns the PostgreSQL-like cost profile.
func DefaultCostModel() CostModel {
	return CostModel{
		StartupMs:     2.0,
		FullScanRowUS: 0.15,
		IndexEntryUS:  0.05,
		IntersectUS:   0.02,
		FetchUS:       1.5,
		PredEvalUS:    0.05,
		OutputUS:      0.05,
		HashBuildUS:   0.35,
		HashProbeUS:   0.30,
		NestProbeUS:   1.2,
		SortUS:        0.04,
	}
}

// ExecStats counts the work performed while executing a plan, at stored
// (scaled-down) granularity, and carries the derived virtual time.
type ExecStats struct {
	IndexEntries int // index entries touched across all index scans
	IntersectOps int // comparisons during posting-list intersection
	RowsScanned  int // rows visited by sequential scans
	RowsFetched  int // candidate rows fetched after index access
	PredEvals    int // residual predicate evaluations
	RowsOutput   int // rows produced (pre-binning)
	HashBuilds   int
	HashProbes   int
	NestProbes   int
	SortUnits    int // sum of n·log2(n) units

	SimMs float64 // virtual execution time at paper scale, noise included
}

// add accumulates counters from another stats value (used across join sides).
func (s *ExecStats) add(o ExecStats) {
	s.IndexEntries += o.IndexEntries
	s.IntersectOps += o.IntersectOps
	s.RowsScanned += o.RowsScanned
	s.RowsFetched += o.RowsFetched
	s.PredEvals += o.PredEvals
	s.HashBuilds += o.HashBuilds
	s.HashProbes += o.HashProbes
	s.NestProbes += o.NestProbes
	s.SortUnits += o.SortUnits
}

// simMs converts counters to virtual milliseconds given a table scale factor.
func (m CostModel) simMs(s ExecStats, scale float64) float64 {
	us := float64(s.IndexEntries)*m.IndexEntryUS +
		float64(s.IntersectOps)*m.IntersectUS +
		float64(s.RowsScanned)*m.FullScanRowUS +
		float64(s.RowsFetched)*m.FetchUS +
		float64(s.PredEvals)*m.PredEvalUS +
		float64(s.RowsOutput)*m.OutputUS +
		float64(s.HashBuilds)*m.HashBuildUS +
		float64(s.HashProbes)*m.HashProbeUS +
		float64(s.NestProbes)*m.NestProbeUS +
		float64(s.SortUnits)*m.SortUS
	return m.StartupMs + us*scale/1000.0
}

// Profile bundles a cost model with the run-to-run variance characteristics
// of a backend database. ProfilePostgres models a well-behaved open-source
// engine; ProfileCommercial models the §7.6 commercial DBMS whose buffering
// and dynamic plan switching make execution times much harder to predict.
type Profile struct {
	Name       string
	Cost       CostModel
	NoiseSigma float64 // lognormal sigma on execution time
	// PlanSwitchProb is the chance a query run triggers a mid-flight plan
	// change (commercial profile), multiplying time by PlanSwitchFactor.
	PlanSwitchProb   float64
	PlanSwitchFactor float64
	// OptimizerMaxIndexes caps how many indexes the *unhinted* optimizer
	// will combine in one access path (classic optimizers pick a single
	// index per table; hints can still force any combination — that gap is
	// why hinting helps, per the paper's Fig. 1). 0 means unlimited.
	OptimizerMaxIndexes int
	// HintDropProb is the probability that the engine ignores a forced hint
	// and falls back to the optimizer's plan — the paper's challenge C2
	// ("the backend database may or may not follow the provided hints").
	// The drop decision is deterministic per (seed, plan), so experiments
	// remain reproducible. 0 disables it.
	HintDropProb float64
}

// ProfilePostgres returns the default engine profile.
func ProfilePostgres() Profile {
	return Profile{
		Name:                "postgres",
		Cost:                DefaultCostModel(),
		NoiseSigma:          0.06,
		OptimizerMaxIndexes: 1,
	}
}

// ProfileCommercial returns the §7.6 commercial-DB profile: the same work
// model but with heavy buffering variance and occasional dynamic plan
// switches, which degrade any selectivity-only QTE's accuracy.
func ProfileCommercial() Profile {
	return Profile{
		Name:                "commercial",
		Cost:                DefaultCostModel(),
		NoiseSigma:          0.45,
		PlanSwitchProb:      0.15,
		PlanSwitchFactor:    2.5,
		OptimizerMaxIndexes: 1,
	}
}

// noiseFactor derives a deterministic lognormal noise factor for a
// (seed, fingerprint) pair, so repeated runs of the same plan agree and
// different plans de-correlate.
func (p Profile) noiseFactor(seed int64, fingerprint uint64) float64 {
	if p.NoiseSigma == 0 && p.PlanSwitchProb == 0 {
		return 1
	}
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(seed) >> (8 * i))
		buf[8+i] = byte(fingerprint >> (8 * i))
	}
	h.Write(buf[:])
	u := h.Sum64()
	// Two uniforms from the hash via splitmix-style remixing.
	u1 := float64(mix64(u)>>11) / float64(1<<53)
	u2 := float64(mix64(u^0xdeadbeefcafe)>>11) / float64(1<<53)
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	f := math.Exp(p.NoiseSigma * z)
	if p.PlanSwitchProb > 0 {
		u3 := float64(mix64(u^0x5ca1ab1e)>>11) / float64(1<<53)
		if u3 < p.PlanSwitchProb {
			f *= p.PlanSwitchFactor
		}
	}
	return f
}

// mix64 is the splitmix64 finalizer, used to derive independent streams.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
