package engine

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSimMsArithmetic(t *testing.T) {
	m := CostModel{
		StartupMs:     2,
		FullScanRowUS: 1,
		IndexEntryUS:  1,
		FetchUS:       1,
		PredEvalUS:    1,
		OutputUS:      1,
		IntersectUS:   1,
		HashBuildUS:   1,
		HashProbeUS:   1,
		NestProbeUS:   1,
		SortUS:        1,
	}
	s := ExecStats{IndexEntries: 1000, RowsFetched: 500, PredEvals: 250, RowsOutput: 250}
	// (1000 + 500 + 250 + 250) µs × scale 2 / 1000 + 2 ms startup = 6 ms.
	got := m.simMs(s, 2)
	if math.Abs(got-6) > 1e-9 {
		t.Errorf("simMs = %v, want 6", got)
	}
}

// TestSimMsMonotoneInWork: more work never costs less (property).
func TestSimMsMonotoneInWork(t *testing.T) {
	m := DefaultCostModel()
	prop := func(a, b uint16) bool {
		s1 := ExecStats{RowsFetched: int(a)}
		s2 := ExecStats{RowsFetched: int(a) + int(b)}
		return m.simMs(s2, 100) >= m.simMs(s1, 100)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestProfilesDiffer(t *testing.T) {
	pg := ProfilePostgres()
	com := ProfileCommercial()
	if com.NoiseSigma <= pg.NoiseSigma {
		t.Error("commercial profile should be noisier")
	}
	if com.PlanSwitchProb <= 0 {
		t.Error("commercial profile should switch plans")
	}
	if pg.OptimizerMaxIndexes != 1 {
		t.Error("postgres profile should be single-index")
	}
}

func TestNoiseFactorZeroSigma(t *testing.T) {
	p := Profile{NoiseSigma: 0}
	if got := p.noiseFactor(1, 2); got != 1 {
		t.Errorf("noise with σ=0 = %v, want 1", got)
	}
}

// TestCommercialNoiseSpread: the commercial profile's execution noise spans
// a much wider multiplicative range than the postgres profile.
func TestCommercialNoiseSpread(t *testing.T) {
	pg, com := ProfilePostgres(), ProfileCommercial()
	spread := func(p Profile) float64 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := uint64(0); i < 500; i++ {
			f := p.noiseFactor(7, i)
			if f < lo {
				lo = f
			}
			if f > hi {
				hi = f
			}
		}
		return hi / lo
	}
	if spread(com) < 3*spread(pg) {
		t.Errorf("commercial spread %.2f vs postgres %.2f — not noisy enough",
			spread(com), spread(pg))
	}
}

// TestHintDropFallsBackToOptimizer: with HintDropProb = 1 every forced hint
// is ignored and execution matches the unhinted run.
func TestHintDropFallsBackToOptimizer(t *testing.T) {
	db := buildTestDB(t, 3000, 41)
	q := testQuery(db)
	_, auto, err := db.Run(q, Hint{})
	if err != nil {
		t.Fatal(err)
	}
	db.Profile.HintDropProb = 1.0
	_, dropped, err := db.Run(q, ForcedHint([]int{0, 1, 2}, JoinAuto))
	if err != nil {
		t.Fatal(err)
	}
	if dropped.RowsFetched != auto.RowsFetched || dropped.RowsScanned != auto.RowsScanned {
		t.Errorf("dropped-hint run should match the optimizer plan:\nauto   %+v\ndropped %+v", auto, dropped)
	}
	// With drop probability 0 the hinted run differs (it uses all indexes).
	db.Profile.HintDropProb = 0
	_, forced, err := db.Run(q, ForcedHint([]int{0, 1, 2}, JoinAuto))
	if err != nil {
		t.Fatal(err)
	}
	if forced.IndexEntries == dropped.IndexEntries {
		t.Error("forced plan should differ from the optimizer plan in this scenario")
	}
}

// TestHintDropDeterministic: the drop decision is stable across runs.
func TestHintDropDeterministic(t *testing.T) {
	db := buildTestDB(t, 2000, 42)
	db.Profile.HintDropProb = 0.5
	q := testQuery(db)
	_, s1, err := db.Run(q, ForcedHint([]int{0}, JoinAuto))
	if err != nil {
		t.Fatal(err)
	}
	_, s2, err := db.Run(q, ForcedHint([]int{0}, JoinAuto))
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("hint dropping must be deterministic per plan")
	}
}
