package engine

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// dupHeavyTree builds a tree whose keys repeat heavily so runs of equal keys
// span leaf boundaries (size routinely exceeds btreeOrder while distinct keys
// stay small).
func dupHeavyTree(rng *rand.Rand, size, distinct int) (*BTree, []float64) {
	keys := make([]float64, size)
	rows := make([]uint32, size)
	for i := range keys {
		keys[i] = float64(rng.Intn(distinct))
		rows[i] = uint32(i)
	}
	return NewBTree(keys, rows), keys
}

// TestBTreeVisitMatchesRange is the differential property test for the
// visitor API: for random duplicate-heavy trees and random ranges (including
// empty and inverted ones), Visit must report the same rows in the same
// order AND the same entries count as the materializing Range scan.
func TestBTreeVisitMatchesRange(t *testing.T) {
	prop := func(seed int64, n uint16, loRaw, hiRaw int16) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n)%2000 + 1 // up to ~31 leaves: duplicates cross leaves
		tree, _ := dupHeavyTree(rng, size, 40)
		lo := float64(int(loRaw) % 50)
		hi := float64(int(hiRaw) % 50) // hi < lo on purpose sometimes
		wantRows, wantEntries := tree.Range(lo, hi)
		var gotRows []uint32
		gotEntries := tree.Visit(lo, hi, func(r uint32) bool {
			gotRows = append(gotRows, r)
			return true
		})
		return gotEntries == wantEntries && equalRows(gotRows, wantRows)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestBTreeVisitEarlyStop: a false-returning callback stops the scan; the
// stopping entry has been counted and no further rows are delivered.
func TestBTreeVisitEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tree, _ := dupHeavyTree(rng, 500, 20)
	full, fullEntries := tree.Range(0, 19)
	if len(full) != 500 {
		t.Fatalf("expected the full tree in range, got %d rows", len(full))
	}
	for _, stopAfter := range []int{0, 1, 7, 499} {
		var got []uint32
		entries := tree.Visit(0, 19, func(r uint32) bool {
			got = append(got, r)
			return len(got) <= stopAfter
		})
		if len(got) != stopAfter+1 {
			t.Fatalf("stopAfter=%d: visited %d rows", stopAfter, len(got))
		}
		if !equalRows(got, full[:stopAfter+1]) {
			t.Fatalf("stopAfter=%d: visited rows diverge from Range prefix", stopAfter)
		}
		// Entries: descent + one per visited slot (the stopping slot was
		// charged before fn ran). With every key in range, Range's count is
		// descent + all 500 slots, so the early-stopped count is Range's
		// minus the slots never reached. stopAfter=499 degenerates to the
		// full drain, which must equal Range exactly.
		wantEntries := fullEntries - len(full) + stopAfter + 1
		if entries != wantEntries {
			t.Fatalf("stopAfter=%d: entries=%d want %d", stopAfter, entries, wantEntries)
		}
	}
}

// TestBTreeCountRangeMatchesRange: CountRange over random trees and ranges
// equals the materialized row count (the satellite bugfix regression test).
func TestBTreeCountRangeMatchesRange(t *testing.T) {
	prop := func(seed int64, n uint16, loRaw, hiRaw int16) bool {
		rng := rand.New(rand.NewSource(seed))
		tree, _ := dupHeavyTree(rng, int(n)%1500+1, 30)
		lo := float64(int(loRaw) % 40)
		hi := float64(int(hiRaw) % 40)
		rows, _ := tree.Range(lo, hi)
		return tree.CountRange(lo, hi) == len(rows)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// drainProbe runs one Seek+Next drain and returns the rows and the entries
// the cursor charged for the probe.
func drainProbe(c *Cursor, key float64) ([]uint32, int) {
	c.Seek(key)
	var rows []uint32
	for {
		r, ok := c.Next(key)
		if !ok {
			break
		}
		rows = append(rows, r)
	}
	return rows, c.Entries()
}

// TestBTreeCursorMatchesRangeSorted is the merge-join-shaped differential
// test: non-decreasing probe sequences with duplicate keys. Every resumed,
// rewound, or re-descended probe must report exactly the rows and entries a
// fresh Range(key, key) descent reports.
func TestBTreeCursorMatchesRangeSorted(t *testing.T) {
	prop := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		tree, _ := dupHeavyTree(rng, int(n)%2000+1, 40)
		probes := make([]float64, rng.Intn(60)+5)
		for i := range probes {
			// Include keys outside the domain on both sides.
			probes[i] = float64(rng.Intn(50) - 5)
		}
		sort.Float64s(probes)
		var cur Cursor
		cur.Reset(tree)
		for _, k := range probes {
			wantRows, wantEntries := tree.Range(k, k)
			gotRows, gotEntries := drainProbe(&cur, k)
			if gotEntries != wantEntries || !equalRows(gotRows, wantRows) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBTreeCursorMatchesRangeUnsorted is the nest-loop-shaped differential
// test: arbitrary probe order forces re-descents, which must be just as
// identical to Range as the streaming resumes are.
func TestBTreeCursorMatchesRangeUnsorted(t *testing.T) {
	prop := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		tree, _ := dupHeavyTree(rng, int(n)%2000+1, 40)
		var cur Cursor
		cur.Reset(tree)
		for i := 0; i < 50; i++ {
			k := float64(rng.Intn(50) - 5)
			wantRows, wantEntries := tree.Range(k, k)
			gotRows, gotEntries := drainProbe(&cur, k)
			if gotEntries != wantEntries || !equalRows(gotRows, wantRows) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBTreeCursorPartialDrain: a caller that abandons a probe mid-run must
// still get Range-identical results for every later probe (the cursor resume
// logic may only assume the position never passed the previous probe's
// terminator).
func TestBTreeCursorPartialDrain(t *testing.T) {
	prop := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		tree, _ := dupHeavyTree(rng, int(n)%2000+1, 40)
		probes := make([]float64, 40)
		for i := range probes {
			probes[i] = float64(rng.Intn(50) - 5)
		}
		sort.Float64s(probes)
		var cur Cursor
		cur.Reset(tree)
		for _, k := range probes {
			if rng.Intn(2) == 0 {
				// Abandon after at most two rows.
				cur.Seek(k)
				for j := 0; j < 2; j++ {
					if _, ok := cur.Next(k); !ok {
						break
					}
				}
				continue
			}
			wantRows, wantEntries := tree.Range(k, k)
			gotRows, gotEntries := drainProbe(&cur, k)
			if gotEntries != wantEntries || !equalRows(gotRows, wantRows) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestBTreeCursorEmptyTree: probing an empty tree charges exactly the root
// visit, like Range does.
func TestBTreeCursorEmptyTree(t *testing.T) {
	tree := NewBTree(nil, nil)
	var cur Cursor
	cur.Reset(tree)
	for _, k := range []float64{-1, 0, 5} {
		wantRows, wantEntries := tree.Range(k, k)
		gotRows, gotEntries := drainProbe(&cur, k)
		if len(gotRows) != len(wantRows) || gotEntries != wantEntries {
			t.Fatalf("probe %v: rows=%d entries=%d, want rows=%d entries=%d",
				k, len(gotRows), gotEntries, len(wantRows), wantEntries)
		}
	}
}
