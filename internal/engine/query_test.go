package engine

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestMaskRoundTrip: positions → mask → positions is the identity for any
// position set (property test).
func TestMaskRoundTrip(t *testing.T) {
	prop := func(raw []uint8) bool {
		seen := map[int]bool{}
		var pos []int
		for _, r := range raw {
			p := int(r) % 20
			if !seen[p] {
				seen[p] = true
				pos = append(pos, p)
			}
		}
		mask := MaskFromPositions(pos)
		got := PositionsFromMask(mask, 20)
		if len(got) != len(pos) {
			return false
		}
		for _, p := range got {
			if !seen[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuerySQLRendering(t *testing.T) {
	q := &Query{
		Table:      "tweets",
		OutputCols: []string{"id", "coordinates"},
		Preds: []Predicate{
			{Col: "text", Kind: PredKeyword, WordText: "covid"},
			{Col: "created_at", Kind: PredRange, Lo: 1, Hi: 2},
			{Col: "coordinates", Kind: PredGeo, Box: Rect{MinLon: -124.4, MinLat: 32.5, MaxLon: -114.1, MaxLat: 42}},
		},
	}
	plain := q.SQL(Hint{})
	for _, want := range []string{"SELECT id, coordinates", "FROM tweets", `text contains "covid"`, "BETWEEN", "coordinates IN"} {
		if !strings.Contains(plain, want) {
			t.Errorf("plain SQL missing %q:\n%s", want, plain)
		}
	}
	if strings.Contains(plain, "/*+") {
		t.Error("plain SQL should have no hint comment")
	}

	hinted := q.SQL(ForcedHint([]int{1}, JoinAuto))
	if !strings.Contains(hinted, "/*+ Index-Scan(tweets created_at) */") {
		t.Errorf("hinted SQL missing hint:\n%s", hinted)
	}
	seq := q.SQL(ForcedHint(nil, JoinAuto))
	if !strings.Contains(seq, "Seq-Scan(tweets)") {
		t.Errorf("forced seq scan missing:\n%s", seq)
	}

	// Join + approximation rendering.
	jq := q.Clone()
	jq.Join = &JoinClause{Table: "users", LeftCol: "user_id", RightCol: "id",
		Preds: []Predicate{{Col: "tweet_cnt", Kind: PredRange, Lo: 100, Hi: 5000}}}
	jq.SamplePercent = 20
	jsql := jq.SQL(ForcedHint([]int{0}, NestLoopJoin))
	for _, want := range []string{"tweets_sample20", "JOIN users ON tweets_sample20.user_id = users.id",
		"Nest-Loop-Join(tweets_sample20 users)", "users.tweet_cnt BETWEEN"} {
		if !strings.Contains(jsql, want) {
			t.Errorf("join SQL missing %q:\n%s", want, jsql)
		}
	}

	// Bin + limit rendering.
	bq := q.Clone()
	bq.Bin = &BinSpec{Col: "coordinates", Extent: Rect{MaxLon: 1, MaxLat: 1}, W: 4, H: 4}
	bq.Limit = 100
	bsql := bq.SQL(Hint{})
	for _, want := range []string{"BIN_ID(coordinates), COUNT(*)", "GROUP BY BIN_ID(coordinates)", "LIMIT 100"} {
		if !strings.Contains(bsql, want) {
			t.Errorf("bin SQL missing %q:\n%s", want, bsql)
		}
	}
}

func TestQueryClone(t *testing.T) {
	q := &Query{
		Table: "t",
		Preds: []Predicate{{Col: "a", Kind: PredRange, Lo: 1, Hi: 2}},
		Join:  &JoinClause{Table: "u", Preds: []Predicate{{Col: "b", Kind: PredRange}}},
	}
	cp := q.Clone()
	cp.Preds[0].Lo = 99
	cp.Join.Preds[0].Col = "changed"
	cp.Limit = 7
	if q.Preds[0].Lo == 99 || q.Join.Preds[0].Col == "changed" || q.Limit == 7 {
		t.Error("Clone shares mutable state with the original")
	}
}

func TestJoinMethodString(t *testing.T) {
	for jm, want := range map[JoinMethod]string{
		JoinAuto: "Auto", NestLoopJoin: "Nest-Loop-Join",
		HashJoin: "Hash-Join", MergeJoin: "Merge-Join",
	} {
		if jm.String() != want {
			t.Errorf("%d.String() = %q", jm, jm.String())
		}
	}
}
