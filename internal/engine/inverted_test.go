package engine

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInvertedIndexPostings(t *testing.T) {
	texts := [][]uint32{
		{1, 2, 3},
		{2, 3},
		{3},
		{},
		{1, 3},
	}
	idx := NewInvertedIndex(texts)
	cases := []struct {
		word uint32
		want []uint32
	}{
		{1, []uint32{0, 4}},
		{2, []uint32{0, 1}},
		{3, []uint32{0, 1, 2, 4}},
		{99, nil},
	}
	for _, tc := range cases {
		rows, entries := idx.Lookup(tc.word)
		if !equalRows(rows, tc.want) {
			t.Errorf("Lookup(%d) = %v, want %v", tc.word, rows, tc.want)
		}
		if entries != len(rows)+1 {
			t.Errorf("Lookup(%d) entries = %d, want %d", tc.word, entries, len(rows)+1)
		}
		if idx.PostingLen(tc.word) != len(tc.want) {
			t.Errorf("PostingLen(%d) = %d", tc.word, idx.PostingLen(tc.word))
		}
	}
	if idx.Len() != 8 {
		t.Errorf("Len = %d, want 8", idx.Len())
	}
	if idx.DistinctWords() != 3 {
		t.Errorf("DistinctWords = %d, want 3", idx.DistinctWords())
	}
	if got := idx.AvgPostingLen(); got < 2.66 || got > 2.67 {
		t.Errorf("AvgPostingLen = %v, want 8/3", got)
	}
}

// TestIntersectSortedMatchesSetIntersection: property test against a map
// implementation.
func TestIntersectSortedMatchesSetIntersection(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gen := func() []uint32 {
			n := rng.Intn(300)
			set := make(map[uint32]bool, n)
			for i := 0; i < n; i++ {
				set[uint32(rng.Intn(500))] = true
			}
			out := make([]uint32, 0, len(set))
			for v := range set {
				out = append(out, v)
			}
			return sortedCopy(out)
		}
		a, b := gen(), gen()
		got, work := IntersectSorted(a, b)
		if work < 0 || work > len(a)+len(b) {
			return false
		}
		inB := make(map[uint32]bool, len(b))
		for _, v := range b {
			inB[v] = true
		}
		var want []uint32
		for _, v := range a {
			if inB[v] {
				want = append(want, v)
			}
		}
		return equalRows(got, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortTokens(t *testing.T) {
	got := SortTokens([]uint32{5, 1, 5, 3, 1})
	if !equalRows(got, []uint32{1, 3, 5}) {
		t.Errorf("SortTokens = %v", got)
	}
	if got := SortTokens(nil); len(got) != 0 {
		t.Errorf("SortTokens(nil) = %v", got)
	}
	if got := SortTokens([]uint32{7}); !equalRows(got, []uint32{7}) {
		t.Errorf("SortTokens single = %v", got)
	}
}

// TestHasToken: membership agrees with a linear scan for random inputs.
func TestHasToken(t *testing.T) {
	prop := func(raw []uint32, probe uint32) bool {
		tokens := SortTokens(append([]uint32(nil), raw...))
		want := false
		for _, v := range tokens {
			if v == probe {
				want = true
			}
		}
		return HasToken(tokens, probe) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestVocab(t *testing.T) {
	v := NewVocab()
	a := v.Intern("alpha")
	b := v.Intern("beta")
	if a == 0 || b == 0 || a == b {
		t.Fatalf("Intern ids: %d %d", a, b)
	}
	if v.Intern("alpha") != a {
		t.Error("re-Intern changed id")
	}
	if v.ID("alpha") != a || v.ID("missing") != 0 {
		t.Error("ID lookup misbehaves")
	}
	if v.Word(a) != "alpha" || v.Word(9999) != "" {
		t.Error("Word lookup misbehaves")
	}
	if v.Len() != 2 {
		t.Errorf("Len = %d, want 2", v.Len())
	}
}
