package engine

import (
	"math"
	"testing"
)

func TestTableAddColumn(t *testing.T) {
	tb := NewTable("t", 10)
	if err := tb.AddColumn(&Column{Name: "a", Type: ColInt64, Ints: []int64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	if tb.Rows != 3 {
		t.Errorf("Rows = %d", tb.Rows)
	}
	if err := tb.AddColumn(&Column{Name: "a", Type: ColInt64, Ints: []int64{1, 2, 3}}); err == nil {
		t.Error("expected duplicate-column error")
	}
	if err := tb.AddColumn(&Column{Name: "b", Type: ColInt64, Ints: []int64{1}}); err == nil {
		t.Error("expected row-count mismatch error")
	}
	if !tb.HasColumn("a") || tb.HasColumn("zz") {
		t.Error("HasColumn misbehaves")
	}
	if got := tb.RealRows(); got != 30 {
		t.Errorf("RealRows = %v, want 30", got)
	}
}

func TestTableColPanicsOnMissing(t *testing.T) {
	tb := NewTable("t", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.Col("missing")
}

func TestBuildIndexTypeChecks(t *testing.T) {
	tb := NewTable("t", 1)
	if err := tb.AddColumn(&Column{Name: "n", Type: ColInt64, Ints: []int64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddColumn(&Column{Name: "p", Type: ColPoint, Points: []Point{{}, {}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.BuildIndex("n", IndexRTree); err == nil {
		t.Error("rtree on int column should fail")
	}
	if _, err := tb.BuildIndex("p", IndexBTree); err == nil {
		t.Error("btree on point column should fail")
	}
	if _, err := tb.BuildIndex("n", IndexInverted); err == nil {
		t.Error("inverted on int column should fail")
	}
	if _, err := tb.BuildIndex("ghost", IndexBTree); err == nil {
		t.Error("index on missing column should fail")
	}
	if _, err := tb.BuildIndex("n", IndexBTree); err != nil {
		t.Errorf("btree on int column: %v", err)
	}
	if tb.Index("n") == nil || tb.Index("p") != nil {
		t.Error("Index lookup misbehaves")
	}
}

func TestIndexLookupKindMismatch(t *testing.T) {
	tb := NewTable("t", 1)
	if err := tb.AddColumn(&Column{Name: "n", Type: ColInt64, Ints: []int64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	ix, err := tb.BuildIndex("n", IndexBTree)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.Lookup(Predicate{Col: "n", Kind: PredKeyword, Word: 1}); err == nil {
		t.Error("btree serving keyword predicate should fail")
	}
	rows, _, err := ix.Lookup(Predicate{Col: "n", Kind: PredRange, Lo: 2, Hi: 3})
	if err != nil || len(rows) != 2 {
		t.Errorf("Lookup = %v, %v", rows, err)
	}
}

func TestBuildSample(t *testing.T) {
	db := buildTestDB(t, 5000, 11)
	tb := db.Table("events")
	s, err := tb.BuildSample(25, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	s2, err := tb.BuildSample(25, 3)
	if err != nil || s2 != s {
		t.Error("BuildSample should cache")
	}
	frac := float64(s.Rows) / float64(tb.Rows)
	if math.Abs(frac-0.25) > 0.05 {
		t.Errorf("sample fraction %.3f, want ≈0.25", frac)
	}
	if s.SampleOf != tb || s.SamplePercent != 25 {
		t.Error("sample metadata wrong")
	}
	// Base row mapping is consistent with the stored columns.
	baseIDs := s.BaseRowIDs([]uint32{0, 1, 2})
	for i, base := range baseIDs {
		if s.Col("ts").Ints[i] != tb.Col("ts").Ints[base] {
			t.Fatalf("sample row %d maps to base %d but ts differs", i, base)
		}
	}
	// Indexes mirrored.
	for col := range tb.Indexes {
		if s.Index(col) == nil {
			t.Errorf("sample missing index on %s", col)
		}
	}
	// Invalid rates.
	if _, err := tb.BuildSample(0, 1); err == nil {
		t.Error("percent 0 should fail")
	}
	if _, err := tb.BuildSample(100, 1); err == nil {
		t.Error("percent 100 should fail")
	}
}

func TestBaseRowIDsIdentityForBaseTable(t *testing.T) {
	tb := NewTable("t", 1)
	rows := []uint32{5, 6, 7}
	got := tb.BaseRowIDs(rows)
	if !equalRows(got, rows) {
		t.Errorf("BaseRowIDs = %v", got)
	}
}

func TestDBAddTable(t *testing.T) {
	db := NewDB(ProfilePostgres(), 1)
	tb := NewTable("x", 1)
	if err := db.AddTable(tb); err != nil {
		t.Fatal(err)
	}
	if err := db.AddTable(tb); err == nil {
		t.Error("expected duplicate-table error")
	}
	if db.Table("x") != tb || db.Table("y") != nil {
		t.Error("Table lookup misbehaves")
	}
}

func TestColumnNumericAtPanicsOnText(t *testing.T) {
	c := &Column{Name: "tx", Type: ColText, Texts: [][]uint32{{1}}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.NumericAt(0)
}

func TestColTypeStrings(t *testing.T) {
	for ct, want := range map[ColType]string{
		ColInt64: "BIGINT", ColFloat64: "DOUBLE", ColTime: "TIMESTAMP",
		ColPoint: "POINT", ColText: "TEXT",
	} {
		if ct.String() != want {
			t.Errorf("%d.String() = %q, want %q", ct, ct.String(), want)
		}
	}
}
