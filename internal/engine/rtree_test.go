package engine

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRTreeSearchMatchesBruteForce: for random point sets and boxes, the
// R-tree search returns exactly the brute-force result.
func TestRTreeSearchMatchesBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(2000) + 1
		points := make([]Point, n)
		rows := make([]uint32, n)
		for i := range points {
			points[i] = Point{Lon: rng.Float64()*100 - 50, Lat: rng.Float64()*60 - 30}
			rows[i] = uint32(i)
		}
		tree := NewRTree(points, rows)
		for trial := 0; trial < 8; trial++ {
			cx, cy := rng.Float64()*100-50, rng.Float64()*60-30
			w, h := rng.Float64()*30, rng.Float64()*20
			box := Rect{MinLon: cx - w/2, MinLat: cy - h/2, MaxLon: cx + w/2, MaxLat: cy + h/2}
			got, entries := tree.Search(box)
			if entries <= 0 {
				return false
			}
			var want []uint32
			for i, p := range points {
				if box.Contains(p) {
					want = append(want, uint32(i))
				}
			}
			if !equalRows(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRTreeEmpty(t *testing.T) {
	tree := NewRTree(nil, nil)
	rows, _ := tree.Search(Rect{MinLon: -180, MinLat: -90, MaxLon: 180, MaxLat: 90})
	if len(rows) != 0 {
		t.Errorf("empty tree returned rows: %v", rows)
	}
	if tree.Len() != 0 {
		t.Errorf("Len = %d", tree.Len())
	}
}

func TestRTreeResultSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 5000
	points := make([]Point, n)
	rows := make([]uint32, n)
	for i := range points {
		points[i] = Point{Lon: rng.Float64(), Lat: rng.Float64()}
		rows[i] = uint32(i)
	}
	tree := NewRTree(points, rows)
	got, _ := tree.Search(Rect{MinLon: 0.2, MinLat: 0.2, MaxLon: 0.8, MaxLat: 0.8})
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("result not strictly sorted at %d: %d ≥ %d", i, got[i-1], got[i])
		}
	}
	if len(got) == 0 {
		t.Fatal("expected matches in the central box")
	}
}

func TestRectOperations(t *testing.T) {
	a := Rect{MinLon: 0, MinLat: 0, MaxLon: 10, MaxLat: 10}
	b := Rect{MinLon: 5, MinLat: 5, MaxLon: 15, MaxLat: 15}
	c := Rect{MinLon: 20, MinLat: 20, MaxLon: 25, MaxLat: 25}
	if !a.Intersects(b) || b.Intersects(c) || !a.Intersects(a) {
		t.Error("Intersects misbehaves")
	}
	if !a.Contains(Point{5, 5}) || a.Contains(Point{11, 5}) {
		t.Error("Contains misbehaves")
	}
	if !a.ContainsRect(Rect{MinLon: 1, MinLat: 1, MaxLon: 9, MaxLat: 9}) || a.ContainsRect(b) {
		t.Error("ContainsRect misbehaves")
	}
	ext := a.Extend(c)
	if ext.MinLon != 0 || ext.MaxLon != 25 || ext.MaxLat != 25 {
		t.Errorf("Extend = %+v", ext)
	}
	if got := a.Area(); got != 100 {
		t.Errorf("Area = %v", got)
	}
	if got := (Rect{MinLon: 5, MaxLon: 3}).Area(); got != 0 {
		t.Errorf("inverted rect area = %v, want 0", got)
	}
}
