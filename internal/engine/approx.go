package engine

import (
	"fmt"
	"math"
)

// This file defines the approximate execution tier's query-side surface:
// the ApproxSpec rewrite clause (Bernoulli row sampling, reservoir
// sampling, sketch-served aggregates) and the deterministic machinery —
// per-(seed, fingerprint) keep hashes and counter-stream PRNGs — that makes
// every approximate answer reproducible bit-for-bit for a fixed
// (seed, fingerprint, data-version) triple. See docs/ARCHITECTURE.md,
// "Approximation & the bit-identity carve-out".

// ApproxMethod enumerates the approximate execution strategies.
type ApproxMethod uint8

const (
	// ApproxOff is the exact path (zero value).
	ApproxOff ApproxMethod = iota
	// ApproxRows keeps each candidate row independently with probability
	// Rate (Bernoulli sampling by a row-id hash), scaling counts by 1/Rate.
	ApproxRows
	// ApproxReservoir draws a uniform K-row sample of the matching rows
	// (Algorithm R over the candidate stream); the matched count is exact,
	// per-cell counts are scaled by matched/K.
	ApproxReservoir
	// ApproxSketchCount answers a keyword-count query from the table's
	// Count-Min sketch without touching rows (overestimate-only bound).
	ApproxSketchCount
	// ApproxSketchDistinct answers a distinct-words query from the table's
	// HyperLogLog summaries (relative-standard-error bound).
	ApproxSketchDistinct
)

// String names the method as it appears in rendered SQL and fingerprints.
func (m ApproxMethod) String() string {
	switch m {
	case ApproxOff:
		return "off"
	case ApproxRows:
		return "rows"
	case ApproxReservoir:
		return "reservoir"
	case ApproxSketchCount:
		return "cms"
	case ApproxSketchDistinct:
		return "hll"
	}
	return fmt.Sprintf("ApproxMethod(%d)", uint8(m))
}

// IsSketch reports whether the method is answered from summaries alone.
func (m ApproxMethod) IsSketch() bool {
	return m == ApproxSketchCount || m == ApproxSketchDistinct
}

// ApproxSpec is a query's approximate-execution clause. The zero value is
// the exact path.
type ApproxSpec struct {
	Method ApproxMethod
	// Rate is the Bernoulli keep probability for ApproxRows, in (0, 1).
	Rate float64
	// K is the reservoir size for ApproxReservoir.
	K int
	// Seed pins the sampling stream. Zero derives a seed from the DB seed
	// and the query fingerprint, so the sampled row set is a deterministic
	// function of (DB seed, query shape) and — deliberately — NOT of the
	// physical plan: every hint variant of one query samples the same rows.
	Seed uint64
}

// validate rejects spec combinations the executor does not define.
func (a ApproxSpec) validate(q *Query) error {
	if a.Method == ApproxOff {
		return nil
	}
	if q.Join != nil {
		return fmt.Errorf("engine: approx method %s does not support joins", a.Method)
	}
	if q.SamplePercent > 0 {
		return fmt.Errorf("engine: approx method %s cannot run on a sample table", a.Method)
	}
	switch a.Method {
	case ApproxRows:
		if !(a.Rate > 0 && a.Rate < 1) {
			return fmt.Errorf("engine: ApproxRows rate must be in (0,1), got %g", a.Rate)
		}
	case ApproxReservoir:
		if a.K <= 0 {
			return fmt.Errorf("engine: ApproxReservoir needs K > 0, got %d", a.K)
		}
		if q.Limit > 0 {
			return fmt.Errorf("engine: ApproxReservoir is incompatible with LIMIT")
		}
	}
	return nil
}

// effSeed resolves the sampling seed: an explicit spec seed wins, otherwise
// one is derived from the DB seed and the plan-independent query
// fingerprint (positions nil, JoinAuto — the physical plan must not change
// which rows a sample keeps).
func (a ApproxSpec) effSeed(dbSeed int64, q *Query) uint64 {
	if a.Seed != 0 {
		return a.Seed
	}
	return mix64(uint64(dbSeed) ^ planFingerprint(q, nil, JoinAuto))
}

// keepThreshold precomputes the 32-bit comparison bound for keepRow.
func keepThreshold(rate float64) uint64 { return uint64(rate * float64(1<<32)) }

// keepRow is the Bernoulli keep decision for one row: a pure hash of
// (seed, row id), so the sampled set is independent of scan order, physical
// plan, and ingest flush boundaries — the same row stream always yields the
// same sample, which is what makes WAL replay reproduce approximate bytes.
func keepRow(seed uint64, row uint32, threshold uint64) bool {
	return mix64(seed^uint64(row)*0x9E3779B97F4A7C15)>>32 < threshold
}

// SampleCountCI returns the half-width of the z-scaled confidence interval
// on a Bernoulli-sampled count estimate: kept rows scaled by 1/rate
// estimate the true matched count with standard error √(kept·(1-rate))/rate,
// plus a z²/2+1 continuity term so the interval stays honest at tiny kept
// counts — in particular kept=0, where the naive width collapses to ±0 even
// though (rule of three) up to ~3/rate matching rows are entirely consistent
// with an empty sample. z=1.96 gives the 95% two-sided interval.
func SampleCountCI(kept int, rate, z float64) float64 {
	if kept < 0 || rate <= 0 || rate >= 1 {
		return 0
	}
	return (z*math.Sqrt(float64(kept)*(1-rate)) + z*z/2 + 1) / rate
}

// sprng is a deterministic counter-stream PRNG (splitmix64) used by the
// reservoir step. Each call advances the counter and finalizes it, so the
// stream depends only on the seed — never on timing or goroutine identity.
type sprng struct{ state uint64 }

func (r *sprng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	return mix64(r.state)
}

// runSketch serves a sketch-answered aggregate without an execContext: it
// validates the query shape the summaries can answer, merges the covered
// bucket sketches, and returns a single-value result whose virtual cost is
// the handful of bucket merges — the "approximate now" action's whole point.
func (db *DB) runSketch(q *Query, t *Table) (*Result, ExecStats, error) {
	sk := t.Sketch
	if sk == nil {
		return nil, ExecStats{}, fmt.Errorf("engine: table %q has no sketch (call BuildSketch first)", t.Name)
	}
	var word uint32
	var haveWord, windowed bool
	var loMs, hiMs int64
	for _, p := range q.Preds {
		switch p.Kind {
		case PredKeyword:
			if haveWord {
				return nil, ExecStats{}, fmt.Errorf("engine: sketch path supports at most one keyword predicate")
			}
			haveWord, word = true, p.Word
		case PredRange:
			if p.Col != sk.TimeCol {
				return nil, ExecStats{}, fmt.Errorf("engine: sketch path only supports ranges on %q, got %q", sk.TimeCol, p.Col)
			}
			if windowed {
				return nil, ExecStats{}, fmt.Errorf("engine: sketch path supports at most one time predicate")
			}
			windowed, loMs, hiMs = true, int64(p.Lo), int64(p.Hi)
		default:
			return nil, ExecStats{}, fmt.Errorf("engine: sketch path cannot serve %s predicates", p.Kind)
		}
	}
	res := &Result{Weight: 1, Approx: true, HasAgg: true}
	var stats ExecStats
	var touched int
	switch q.Approx.Method {
	case ApproxSketchCount:
		if !haveWord {
			return nil, ExecStats{}, fmt.Errorf("engine: ApproxSketchCount needs a keyword predicate")
		}
		res.AggValue, res.AggBound, touched = sk.KeywordCount(word, loMs, hiMs, windowed)
	case ApproxSketchDistinct:
		if haveWord {
			return nil, ExecStats{}, fmt.Errorf("engine: ApproxSketchDistinct takes no keyword predicate")
		}
		var relErr float64
		res.AggValue, relErr, touched = sk.DistinctWords(loMs, hiMs, windowed, nil)
		// Stated 95% two-sided interval from the HLL standard error.
		res.AggBound = 1.96 * relErr * res.AggValue
	default:
		return nil, ExecStats{}, fmt.Errorf("engine: runSketch on non-sketch method %s", q.Approx.Method)
	}
	// Virtual cost: each merged bucket summary charges like an index-entry
	// touch — a few dozen at most, so a sketch probe is effectively free
	// next to any row-touching plan.
	stats.IndexEntries = touched
	stats.RowsOutput = 1
	stats.SimMs = db.Profile.Cost.simMs(stats, t.ScaleFactor)
	stats.SimMs *= db.Profile.noiseFactor(db.Seed, planFingerprint(q, nil, JoinAuto))
	return res, stats, nil
}
