package engine

import (
	"testing"
	"testing/quick"
)

func TestChoosePlanRespectsMaxIndexes(t *testing.T) {
	db := buildTestDB(t, 3000, 21)
	q := testQuery(db)
	pe := db.ChoosePlan(q)
	if len(pe.Positions) > db.Profile.OptimizerMaxIndexes {
		t.Errorf("optimizer used %d indexes, cap is %d", len(pe.Positions), db.Profile.OptimizerMaxIndexes)
	}
	// Unlimited profile may use more.
	db.Profile.OptimizerMaxIndexes = 0
	db.InvalidateStats("events")
	pe = db.ChoosePlan(q)
	if len(pe.Positions) > len(q.Preds) {
		t.Errorf("positions out of range: %v", pe.Positions)
	}
	if pe.EstMs <= 0 {
		t.Errorf("EstMs = %v", pe.EstMs)
	}
}

func TestEstimatePlanForcedMatchesPositions(t *testing.T) {
	db := buildTestDB(t, 3000, 22)
	q := testQuery(db)
	h := ForcedHint([]int{0, 2}, JoinAuto)
	pe := db.EstimatePlan(q, h)
	if len(pe.Positions) != 2 || pe.Positions[0] != 0 || pe.Positions[1] != 2 {
		t.Errorf("Positions = %v", pe.Positions)
	}
	if len(pe.EstSels) != len(q.Preds) {
		t.Errorf("EstSels len = %d", len(pe.EstSels))
	}
	for _, s := range pe.EstSels {
		if s <= 0 || s > 1 {
			t.Errorf("selectivity %v out of (0,1]", s)
		}
	}
	// Unforced falls back to the optimizer's choice.
	auto := db.EstimatePlan(q, Hint{})
	chosen := db.ChoosePlan(q)
	if len(auto.Positions) != len(chosen.Positions) {
		t.Errorf("auto EstimatePlan %v != ChoosePlan %v", auto.Positions, chosen.Positions)
	}
}

// TestEstimateAccessMonotonicity: adding rows never lowers the full-scan
// estimate, and the output cardinality never exceeds the input.
func TestEstimateAccessMonotonicity(t *testing.T) {
	m := DefaultCostModel()
	prop := func(nRaw uint32, s1, s2, s3 float64) bool {
		n := float64(nRaw%1_000_000) + 1
		sels := []float64{clampSel(abs1(s1)), clampSel(abs1(s2)), clampSel(abs1(s3))}
		ms0, out0 := estimateAccess(m, n, sels, nil)
		ms1, out1 := estimateAccess(m, 2*n, sels, nil)
		if ms1 < ms0 || out0 > n+1e-9 || out1 > 2*n+1e-9 {
			return false
		}
		msIdx, outIdx := estimateAccess(m, n, sels, []int{0, 1})
		return msIdx > 0 && outIdx <= n+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func abs1(x float64) float64 {
	if x < 0 {
		x = -x
	}
	for x > 1 {
		x /= 10
	}
	return x
}

func TestChoosePlanPicksJoinMethod(t *testing.T) {
	db := buildTestDB(t, 3000, 23)
	q := testQuery(db)
	q.Join = &JoinClause{Table: "dims", LeftCol: "fk", RightCol: "id",
		Preds: []Predicate{{Col: "weight", Kind: PredRange, Lo: 0, Hi: 5}}}
	pe := db.ChoosePlan(q)
	if pe.Join == JoinAuto {
		t.Error("join queries must resolve a concrete join method")
	}
}

// TestOptimizerPrefersKeywordForFrequentWords reproduces the Fig. 1 failure:
// on a Zipf text column, the optimizer's frequency-blind keyword estimate
// makes it pick the inverted-index plan even for head words where that plan
// is slow.
func TestOptimizerPrefersKeywordForFrequentWords(t *testing.T) {
	db := buildTestDB(t, 20000, 24)
	tb := db.Table("events")
	// Make word 1 appear in ~40% of the rows.
	for i := 0; i < tb.Rows; i++ {
		if i%5 < 2 {
			tb.Col("text").Texts[i] = SortTokens(append(tb.Col("text").Texts[i], 1))
		}
	}
	if _, err := tb.BuildIndex("text", IndexInverted); err == nil {
		t.Log("rebuilt index unexpectedly") // already indexed; rebuild replaces
	}
	db.InvalidateStats("events")
	q := testQuery(db)
	q.Preds[0].Word = 1
	// Narrow time range: the B+-tree plan is the fast one.
	q.Preds[1].Lo, q.Preds[1].Hi = 100, 150
	pe := db.ChoosePlan(q)
	if len(pe.Positions) != 1 || pe.Positions[0] != 0 {
		t.Skipf("optimizer picked %v; scenario needs the keyword plan to look cheapest", pe.Positions)
	}
	// The estimate must undercut reality by a wide margin.
	_, stats, err := db.Run(q, ForcedHint(pe.Positions, JoinAuto))
	if err != nil {
		t.Fatal(err)
	}
	if stats.SimMs < 2*pe.EstMs {
		t.Errorf("expected gross underestimation: est %.0f ms vs actual %.0f ms", pe.EstMs, stats.SimMs)
	}
}

func TestPopcount(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 0}, {1, 1}, {3, 2}, {255, 8}, {256, 1}, {0b1011011, 5},
	} {
		if got := popcount(tc.in); got != tc.want {
			t.Errorf("popcount(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
