package engine

import (
	"slices"
	"testing"
)

// TestJoinStreamingStatsMatchReference pins the cursor-streamed join paths
// to a reference reimplementation of the old descent-per-probe algorithm
// (materializing Range + early-exit match loop). The golden traces only
// cover non-join queries, so this is the in-package guarantee that
// ExecStats — and therefore virtual time, ground-truth labels, and trained
// agents — did not move when the probes started streaming.
func TestJoinStreamingStatsMatchReference(t *testing.T) {
	db := buildTestDB(t, 6_000, 5)
	q := testQuery(db)
	q.Join = &JoinClause{
		Table: "dims", LeftCol: "fk", RightCol: "id",
		Preds: []Predicate{{Col: "weight", Kind: PredRange, Lo: 2, Hi: 9}},
	}
	for _, jm := range []JoinMethod{NestLoopJoin, MergeJoin} {
		res, stats, err := db.Run(q, ForcedHint([]int{1}, jm))
		if err != nil {
			t.Fatalf("%v: %v", jm, err)
		}
		wantEntries, wantPredEvals, wantRows := referenceJoin(t, db, q, jm)
		if stats.PredEvals != wantPredEvals {
			t.Errorf("%v: PredEvals = %d, want %d", jm, stats.PredEvals, wantPredEvals)
		}
		if stats.IndexEntries != wantEntries {
			t.Errorf("%v: IndexEntries = %d, want %d", jm, stats.IndexEntries, wantEntries)
		}
		if !equalRows(res.RowIDs, wantRows) {
			t.Errorf("%v: emitted rows diverge from reference", jm)
		}
	}
}

// referenceJoin recomputes the probe phase the way the pre-cursor executor
// did: left candidates from the forced ts-index access path, then one
// materializing Range(key, key) per probe with the early-exit inner-match
// loop. Returns the probe-phase IndexEntries and PredEvals contributions
// plus the emitted left rows.
func referenceJoin(t *testing.T, db *DB, q *Query, jm JoinMethod) (entries, predEvals int, rows []uint32) {
	t.Helper()
	events := db.Table("events")
	inner := db.Table("dims")
	ix := inner.Index(q.Join.RightCol)

	// Access path (identical before and after): ts-index scan + residuals.
	tsRows, accessEntries, err := events.Index("ts").Lookup(q.Preds[1])
	if err != nil {
		t.Fatal(err)
	}
	entries += accessEntries
	var candidates []uint32
	for _, r := range tsRows {
		ok := true
		for i, p := range q.Preds {
			if i == 1 {
				continue
			}
			predEvals++
			if !p.Eval(events, r) {
				ok = false
				break
			}
		}
		if ok {
			candidates = append(candidates, r)
		}
	}

	leftKeys := events.Col(q.Join.LeftCol)
	probe := func(key float64, leftRow uint32) {
		matches, e := ix.btree.Range(key, key)
		entries += e
		for _, ir := range matches {
			pass := true
			for _, p := range q.Join.Preds {
				predEvals++
				if !p.Eval(inner, ir) {
					pass = false
					break
				}
			}
			if pass {
				rows = append(rows, leftRow)
				return
			}
		}
	}
	switch jm {
	case NestLoopJoin:
		for _, lr := range candidates {
			probe(leftKeys.NumericAt(lr), lr)
		}
	case MergeJoin:
		kvs := make([]joinKV, 0, len(candidates))
		for _, lr := range candidates {
			kvs = append(kvs, joinKV{leftKeys.NumericAt(lr), lr})
		}
		slices.SortFunc(kvs, func(a, b joinKV) int {
			switch {
			case a.key < b.key:
				return -1
			case a.key > b.key:
				return 1
			default:
				return 0
			}
		})
		for _, kv := range kvs {
			probe(kv.key, kv.row)
		}
	default:
		t.Fatalf("unsupported reference method %v", jm)
	}
	return entries, predEvals, rows
}
