package engine

import (
	"fmt"
	"sync"
)

// DB is the engine façade: a set of tables plus an execution profile. It is
// safe for concurrent reads after loading; statistics are built lazily and
// cached.
type DB struct {
	Tables  map[string]*Table
	Profile Profile
	// Seed drives the deterministic execution-noise stream.
	Seed int64

	mu    sync.Mutex
	stats map[string]*TableStats
}

// NewDB creates an empty database with the given profile.
func NewDB(p Profile, seed int64) *DB {
	return &DB{
		Tables:  make(map[string]*Table),
		Profile: p,
		Seed:    seed,
		stats:   make(map[string]*TableStats),
	}
}

// AddTable registers a table.
func (db *DB) AddTable(t *Table) error {
	if _, dup := db.Tables[t.Name]; dup {
		return fmt.Errorf("engine: duplicate table %q", t.Name)
	}
	db.Tables[t.Name] = t
	return nil
}

// table returns the named table, panicking on schema errors.
func (db *DB) table(name string) *Table {
	t, ok := db.Tables[name]
	if !ok {
		panic(fmt.Sprintf("engine: unknown table %q", name))
	}
	return t
}

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table { return db.Tables[name] }

// statsFor lazily builds and caches optimizer statistics for a table.
func (db *DB) statsFor(name string) *TableStats {
	db.mu.Lock()
	defer db.mu.Unlock()
	if st, ok := db.stats[name]; ok {
		return st
	}
	st := BuildTableStats(db.table(name))
	db.stats[name] = st
	return st
}

// Stats exposes the optimizer statistics for a table (read-only use).
func (db *DB) Stats(name string) *TableStats { return db.statsFor(name) }

// InvalidateStats drops cached statistics (after data changes).
func (db *DB) InvalidateStats(name string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.stats, name)
}

// TrueSelectivities computes exact selectivities for all main-table
// predicates of q (ground truth for QTEs and workload construction).
func (db *DB) TrueSelectivities(q *Query) []float64 {
	t := db.table(q.Table)
	out := make([]float64, len(q.Preds))
	for i, p := range q.Preds {
		out[i] = TrueSelectivity(t, p)
	}
	return out
}
