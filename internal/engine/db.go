package engine

import (
	"fmt"
	"sync"
)

// DB is the engine façade: a set of tables plus an execution profile. Once
// loading (AddTable, BuildIndex, BuildSample) is done, the DB is safe for
// concurrent readers: Run, ChoosePlan, EstimatePlan and TrueSelectivities
// only read table data, and the lazily-built statistics cache below is the
// single mutable structure, guarded by a read-mostly lock.
type DB struct {
	Tables  map[string]*Table
	Profile Profile
	// Seed drives the deterministic execution-noise stream.
	Seed int64

	mu    sync.RWMutex
	stats map[string]*TableStats
	// wals maps base-table names to their attached write-ahead logs (see
	// AttachWAL); ApplyBatch appends to a table's log before mutating it.
	wals map[string]*WAL

	// dataMu orders readers against ingest flushes: the serving layer holds
	// the read side across one plan+execute sequence (see RLockData), and
	// ApplyBatch holds the write side while mutating table data, indexes,
	// samples, and versions. Run itself stays lock-free — callers that never
	// ingest (the offline pipelines) pay nothing.
	dataMu sync.RWMutex

	// flushMu guards onFlush; hooks are registered by serving layers (e.g.
	// per-server lookup-cache invalidation) and fired after every flush.
	flushMu sync.Mutex
	onFlush []func(table string, version uint64)
}

// NewDB creates an empty database with the given profile.
func NewDB(p Profile, seed int64) *DB {
	return &DB{
		Tables:  make(map[string]*Table),
		Profile: p,
		Seed:    seed,
		stats:   make(map[string]*TableStats),
	}
}

// AddTable registers a table.
func (db *DB) AddTable(t *Table) error {
	if _, dup := db.Tables[t.Name]; dup {
		return fmt.Errorf("engine: duplicate table %q", t.Name)
	}
	db.Tables[t.Name] = t
	return nil
}

// table returns the named table, panicking on schema errors.
func (db *DB) table(name string) *Table {
	t, ok := db.Tables[name]
	if !ok {
		panic(fmt.Sprintf("engine: unknown table %q", name))
	}
	return t
}

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table { return db.Tables[name] }

// statsFor lazily builds and caches optimizer statistics for a table. The
// fast path is a read lock so concurrent executions don't serialize on the
// cache once it is warm.
func (db *DB) statsFor(name string) *TableStats {
	db.mu.RLock()
	st, ok := db.stats[name]
	db.mu.RUnlock()
	if ok {
		return st
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if st, ok := db.stats[name]; ok {
		return st
	}
	st = BuildTableStats(db.table(name))
	db.stats[name] = st
	return st
}

// Stats exposes the optimizer statistics for a table (read-only use).
func (db *DB) Stats(name string) *TableStats { return db.statsFor(name) }

// InvalidateStats drops cached statistics (after data changes).
func (db *DB) InvalidateStats(name string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.stats, name)
}

// RLockData takes the data read lock. A serving layer wraps each
// plan+execute sequence in RLockData/RUnlockData so it observes one
// consistent (data, version) pair; ingest flushes exclude all readers for
// the duration of ApplyBatch. The lock is shared and re-entrant-free: never
// call ApplyBatch while holding it.
func (db *DB) RLockData() { db.dataMu.RLock() }

// RUnlockData releases the data read lock.
func (db *DB) RUnlockData() { db.dataMu.RUnlock() }

// DataVersion returns the named table's current data version (0 = as
// built). Read it under RLockData to pair it consistently with the data.
func (db *DB) DataVersion(name string) uint64 { return db.table(name).DataVersion() }

// OnFlush registers a hook fired (outside all locks) after every applied
// ingest flush, with the base table's name and new data version. Serving
// layers use it to reclaim version-keyed cache memory; correctness never
// depends on it, because every cache key carries the version.
func (db *DB) OnFlush(fn func(table string, version uint64)) {
	db.flushMu.Lock()
	defer db.flushMu.Unlock()
	db.onFlush = append(db.onFlush, fn)
}

// fireFlushHooks snapshots and runs the registered flush hooks.
func (db *DB) fireFlushHooks(table string, version uint64) {
	db.flushMu.Lock()
	hooks := make([]func(string, uint64), len(db.onFlush))
	copy(hooks, db.onFlush)
	db.flushMu.Unlock()
	for _, fn := range hooks {
		fn(table, version)
	}
}

// TrueSelectivities computes exact selectivities for all main-table
// predicates of q (ground truth for QTEs and workload construction).
func (db *DB) TrueSelectivities(q *Query) []float64 {
	return db.TrueSelectivitiesCached(q, nil)
}

// TrueSelectivitiesCached is TrueSelectivities with the index scans routed
// through an optional lookup cache, so ground-truth collection shares scans
// with the option executions of the same query. A nil cache disables
// memoization.
func (db *DB) TrueSelectivitiesCached(q *Query, c *LookupCache) []float64 {
	t := db.table(q.Table)
	out := make([]float64, len(q.Preds))
	for i, p := range q.Preds {
		out[i] = trueSelectivityCached(t, p, c)
	}
	return out
}
