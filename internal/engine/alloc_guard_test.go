package engine

import (
	"math/rand"
	"testing"
)

// The allocation-guard tests pin steady-state allocs/op ceilings for the
// executor hot paths, so a regression reintroducing per-probe slices (or any
// new per-row allocation) fails in CI instead of only showing up in benchmark
// diffs. Ceilings leave headroom over the measured numbers (joins measure
// ~35, dominated by the escaping Result and the one cached index lookup) but
// sit far below the pre-cursor ~224.
//
// testing.AllocsPerRun averages over runs after a warm-up call has populated
// the execContext pool, so pooled scratch does not count.

// guardAllocs asserts fn stays at or under ceiling allocations per run.
func guardAllocs(t *testing.T, name string, ceiling float64, fn func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation accounting is perturbed by the race detector")
	}
	fn() // warm pools and lazily-built statistics
	if got := testing.AllocsPerRun(10, fn); got > ceiling {
		t.Errorf("%s: %.1f allocs/op, ceiling %.0f", name, got, ceiling)
	}
}

// TestAllocGuardBTreeVisit: the visitor scan and CountRange are
// allocation-free, including the closure the caller passes.
func TestAllocGuardBTreeVisit(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tree, _ := dupHeavyTree(rng, 50_000, 1000)
	n := 0
	guardAllocs(t, "Visit", 0, func() {
		n = 0
		tree.Visit(100, 400, func(uint32) bool { n++; return true })
	})
	guardAllocs(t, "CountRange", 0, func() {
		n = tree.CountRange(100, 400)
	})
	_ = n
}

// TestAllocGuardBTreeCursor: a reset cursor driving sorted and unsorted
// probe sequences never allocates.
func TestAllocGuardBTreeCursor(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	tree, _ := dupHeavyTree(rng, 50_000, 1000)
	var cur Cursor
	guardAllocs(t, "Cursor", 0, func() {
		cur.Reset(tree)
		for k := 0.0; k < 1000; k += 7 {
			cur.Seek(k)
			for {
				if _, ok := cur.Next(k); !ok {
					break
				}
			}
		}
	})
}

// allocGuardJoinQuery returns the shared executor-guard fixture: the same
// shape BenchmarkEngineExecuteJoinPlan runs, at a size small enough for the
// test suite.
func allocGuardJoinQuery(t *testing.T) (*DB, *Query) {
	db := buildTestDB(t, 8_000, 5)
	q := testQuery(db)
	q.Join = &JoinClause{
		Table: "dims", LeftCol: "fk", RightCol: "id",
		Preds: []Predicate{{Col: "weight", Kind: PredRange, Lo: 2, Hi: 9}},
	}
	return db, q
}

// TestAllocGuardExecutorJoins: steady-state ceilings for all three join
// methods (the acceptance bar is ≤40 on the benchmark's larger fixture; the
// remaining allocations here are the Result escaping to the caller and the
// uncached index-scan materialization on the access path).
func TestAllocGuardExecutorJoins(t *testing.T) {
	db, q := allocGuardJoinQuery(t)
	for _, jm := range []JoinMethod{NestLoopJoin, HashJoin, MergeJoin} {
		hint := ForcedHint([]int{1}, jm)
		guardAllocs(t, jm.String(), 40, func() {
			if _, _, err := db.Run(q, hint); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAllocGuardExecutorIndexScan: the no-join multi-index path stays at its
// pooled-scratch floor (measured ~30 on this fixture: the escaping Result,
// its row/point appends, and the uncached btree lookup materialization).
func TestAllocGuardExecutorIndexScan(t *testing.T) {
	db := buildTestDB(t, 8_000, 5)
	q := testQuery(db)
	hint := ForcedHint([]int{0, 1}, JoinAuto)
	guardAllocs(t, "IndexScan", 40, func() {
		if _, _, err := db.Run(q, hint); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAllocGuardSketchUpdates: the summary write path is allocation-free in
// steady state — CMS and HLL inserts touch only their flat arrays, and
// TableSketch.AddRow allocates nothing once the row's bucket exists. This is
// what lets the ingest hot loop maintain sketches per row.
func TestAllocGuardSketchUpdates(t *testing.T) {
	cms := NewCountMinSketch(512, 4)
	guardAllocs(t, "CMS.Add", 0, func() {
		for k := uint64(0); k < 256; k++ {
			cms.Add(k, 1)
		}
	})
	var est uint64
	guardAllocs(t, "CMS.Estimate", 0, func() {
		for k := uint64(0); k < 256; k++ {
			est += cms.Estimate(k)
		}
	})
	hll := NewHyperLogLog()
	guardAllocs(t, "HLL.Add", 0, func() {
		for i := uint64(0); i < 256; i++ {
			hll.Add(mix64(i))
		}
	})
	sk := NewTableSketch("text", "ts", 0)
	tokens := []uint32{3, 7, 7, 12}
	guardAllocs(t, "TableSketch.AddRow", 0, func() {
		for i := int64(0); i < 64; i++ {
			sk.AddRow(i*1000, tokens) // same weekly bucket after warm-up
		}
	})
	_ = est
}

// TestAllocGuardSketchProbes: reads are allocation-free too — KeywordCount
// merges counters in place and DistinctWords reuses a caller scratch HLL.
func TestAllocGuardSketchProbes(t *testing.T) {
	db := buildTestDB(t, 8_000, 5)
	sk, err := db.Table("events").BuildSketch("text", "ts", 0)
	if err != nil {
		t.Fatal(err)
	}
	var acc float64
	guardAllocs(t, "KeywordCount", 0, func() {
		est, bound, _ := sk.KeywordCount(3, 0, 0, false)
		acc += est + bound
	})
	scratch := NewHyperLogLog()
	guardAllocs(t, "DistinctWords", 0, func() {
		est, _, _ := sk.DistinctWords(0, 0, false, scratch)
		acc += est
	})
	_ = acc
}

// TestAllocGuardApproxExecutor: approximate executions stay at the exact
// path's pooled-scratch floor — the Bernoulli keep test adds zero
// allocations per row, and the reservoir draw reuses a pooled slot slice
// (amortized under one allocation per step, surfacing as no increase over
// the exact Run ceiling).
func TestAllocGuardApproxExecutor(t *testing.T) {
	db := buildTestDB(t, 8_000, 5)
	q := testQuery(db)
	q.Approx = ApproxSpec{Method: ApproxRows, Rate: 0.3}
	guardAllocs(t, "ApproxRows", 40, func() {
		if _, _, err := db.Run(q, ForcedHint([]int{0, 1}, JoinAuto)); err != nil {
			t.Fatal(err)
		}
	})
	q.Approx = ApproxSpec{Method: ApproxReservoir, K: 32}
	guardAllocs(t, "ApproxReservoir", 40, func() {
		if _, _, err := db.Run(q, ForcedHint([]int{0, 1}, JoinAuto)); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAllocGuardTrueSelectivity: the uncached btree range path counts via
// Visit and must not materialize row ids.
func TestAllocGuardTrueSelectivity(t *testing.T) {
	db := buildTestDB(t, 8_000, 5)
	tb := db.Table("events")
	p := Predicate{Col: "ts", Kind: PredRange, Lo: 2000, Hi: 7000}
	var sel float64
	guardAllocs(t, "TrueSelectivity", 0, func() {
		sel = TrueSelectivity(tb, p)
	})
	if sel <= 0 {
		t.Fatalf("selectivity %v, want > 0", sel)
	}
}
