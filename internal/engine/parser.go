package engine

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSQL parses the paper's SQL dialect (Figures 1–3) into a Query and
// Hint, resolving table, column and keyword names against the database:
//
//	/*+ Index-Scan(tweets created_at), Nest-Loop-Join(tweets users) */
//	SELECT id, coordinates FROM tweets
//	JOIN users ON tweets.user_id = users.id
//	WHERE text contains "covid"
//	  AND created_at BETWEEN 1446336000000 AND 1446940800000
//	  AND coordinates IN ((-124.4, 32.5), (-114.1, 42.0))
//	  AND users.tweet_cnt BETWEEN 100 AND 5000
//	GROUP BY BIN_ID(coordinates) LIMIT 100;
//
// Sample-table names (tweets_sample20) resolve to the base table with
// SamplePercent set. Keywords are case-insensitive; identifiers are not.
func ParseSQL(db *DB, sql string) (*Query, Hint, error) {
	p := &sqlParser{db: db, toks: lexSQL(sql)}
	q, h, err := p.parse()
	if err != nil {
		return nil, Hint{}, fmt.Errorf("engine: parse SQL: %w", err)
	}
	return q, h, nil
}

// sqlToken is one lexical token.
type sqlToken struct {
	kind string // "ident", "num", "str", "punct"
	text string
}

// lexSQL tokenizes the dialect: identifiers, numbers (incl. signed and
// scientific), quoted strings, and single-character punctuation. The hint
// comment is surfaced as ident("/*+") ... ident("*/") tokens.
func lexSQL(s string) []sqlToken {
	var toks []sqlToken
	i := 0
	emit := func(kind, text string) { toks = append(toks, sqlToken{kind, text}) }
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case strings.HasPrefix(s[i:], "/*+"):
			emit("punct", "/*+")
			i += 3
		case strings.HasPrefix(s[i:], "*/"):
			emit("punct", "*/")
			i += 2
		case c == '(' || c == ')' || c == ',' || c == ';' || c == '=' || c == '.' || c == '*':
			emit("punct", string(c))
			i++
		case c == '"' || c == '\'':
			quote := c
			j := i + 1
			for j < len(s) && s[j] != quote {
				j++
			}
			if j >= len(s) {
				emit("str", s[i+1:])
				i = len(s)
			} else {
				emit("str", s[i+1:j])
				i = j + 1
			}
		case c == '-' || c == '+' || (c >= '0' && c <= '9'):
			j := i
			if c == '-' || c == '+' {
				j++
			}
			for j < len(s) && (s[j] >= '0' && s[j] <= '9' || s[j] == '.' || s[j] == 'e' || s[j] == 'E' ||
				((s[j] == '-' || s[j] == '+') && j > i && (s[j-1] == 'e' || s[j-1] == 'E'))) {
				j++
			}
			emit("num", s[i:j])
			i = j
		default:
			j := i
			for j < len(s) && (isIdentChar(s[j])) {
				j++
			}
			if j == i { // unknown byte; treat as punctuation
				emit("punct", string(c))
				i++
			} else {
				emit("ident", s[i:j])
				i = j
			}
		}
	}
	return toks
}

func isIdentChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-'
}

// sqlParser is a recursive-descent parser over the token stream.
type sqlParser struct {
	db   *DB
	toks []sqlToken
	pos  int

	// raw hint text, resolved after the query is known.
	hintParts [][]string
}

func (p *sqlParser) peek() sqlToken {
	if p.pos >= len(p.toks) {
		return sqlToken{kind: "eof"}
	}
	return p.toks[p.pos]
}

func (p *sqlParser) next() sqlToken {
	t := p.peek()
	p.pos++
	return t
}

// acceptKeyword consumes the next token if it is the given case-insensitive
// keyword.
func (p *sqlParser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.kind == "ident" && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *sqlParser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("expected %q, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *sqlParser) expectPunct(text string) error {
	t := p.next()
	if t.kind != "punct" || t.text != text {
		return fmt.Errorf("expected %q, got %q", text, t.text)
	}
	return nil
}

func (p *sqlParser) expectIdent() (string, error) {
	t := p.next()
	if t.kind != "ident" {
		return "", fmt.Errorf("expected identifier, got %q", t.text)
	}
	return t.text, nil
}

func (p *sqlParser) expectNum() (float64, error) {
	t := p.next()
	if t.kind != "num" {
		return 0, fmt.Errorf("expected number, got %q", t.text)
	}
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q: %w", t.text, err)
	}
	return v, nil
}

// parse handles the full statement.
func (p *sqlParser) parse() (*Query, Hint, error) {
	if p.peek().kind == "punct" && p.peek().text == "/*+" {
		if err := p.parseHintComment(); err != nil {
			return nil, Hint{}, err
		}
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, Hint{}, err
	}
	q := &Query{}
	binCol, err := p.parseSelectList(q)
	if err != nil {
		return nil, Hint{}, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, Hint{}, err
	}
	tableName, err := p.expectIdent()
	if err != nil {
		return nil, Hint{}, err
	}
	base, samplePct, err := p.resolveTable(tableName)
	if err != nil {
		return nil, Hint{}, err
	}
	q.Table = base.Name
	q.SamplePercent = samplePct

	if p.acceptKeyword("JOIN") {
		if err := p.parseJoin(q); err != nil {
			return nil, Hint{}, err
		}
	}
	if p.acceptKeyword("WHERE") {
		if err := p.parseConditions(q, base, tableName); err != nil {
			return nil, Hint{}, err
		}
	}
	if p.acceptKeyword("GROUP") {
		if err := p.parseGroupBy(q, binCol); err != nil {
			return nil, Hint{}, err
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.expectNum()
		if err != nil {
			return nil, Hint{}, err
		}
		if n < 1 {
			return nil, Hint{}, fmt.Errorf("LIMIT must be ≥ 1, got %v", n)
		}
		q.Limit = int(n)
	}
	// Optional trailing semicolon.
	if p.peek().kind == "punct" && p.peek().text == ";" {
		p.pos++
	}
	if p.peek().kind != "eof" {
		return nil, Hint{}, fmt.Errorf("trailing input at %q", p.peek().text)
	}
	h, err := p.resolveHints(q, tableName)
	if err != nil {
		return nil, Hint{}, err
	}
	return q, h, nil
}

// parseHintComment collects hint invocations like Index-Scan(t col).
func (p *sqlParser) parseHintComment() error {
	p.pos++ // consume /*+
	for {
		t := p.peek()
		if t.kind == "eof" {
			return fmt.Errorf("unterminated hint comment")
		}
		if t.kind == "punct" && t.text == "*/" {
			p.pos++
			return nil
		}
		if t.kind == "punct" && t.text == "," {
			p.pos++
			continue
		}
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		if err := p.expectPunct("("); err != nil {
			return err
		}
		var args []string
		for p.peek().kind == "ident" {
			args = append(args, p.next().text)
		}
		if err := p.expectPunct(")"); err != nil {
			return err
		}
		p.hintParts = append(p.hintParts, append([]string{name}, args...))
	}
}

// parseSelectList parses the projection; returns a BIN_ID column if present.
func (p *sqlParser) parseSelectList(q *Query) (string, error) {
	binCol := ""
	for {
		t := p.peek()
		switch {
		case t.kind == "punct" && t.text == "*":
			p.pos++
		case t.kind == "ident" && strings.EqualFold(t.text, "BIN_ID"):
			p.pos++
			if err := p.expectPunct("("); err != nil {
				return "", err
			}
			col, err := p.expectIdent()
			if err != nil {
				return "", err
			}
			if err := p.expectPunct(")"); err != nil {
				return "", err
			}
			binCol = col
		case t.kind == "ident" && strings.EqualFold(t.text, "COUNT"):
			p.pos++
			if err := p.expectPunct("("); err != nil {
				return "", err
			}
			if err := p.expectPunct("*"); err != nil {
				return "", err
			}
			if err := p.expectPunct(")"); err != nil {
				return "", err
			}
		case t.kind == "ident":
			p.pos++
			q.OutputCols = append(q.OutputCols, t.text)
		default:
			return "", fmt.Errorf("bad select list at %q", t.text)
		}
		if p.peek().kind == "punct" && p.peek().text == "," {
			p.pos++
			continue
		}
		return binCol, nil
	}
}

// resolveTable maps a (possibly sample-suffixed) table name to its base.
func (p *sqlParser) resolveTable(name string) (*Table, int, error) {
	if t := p.db.Table(name); t != nil {
		return t, 0, nil
	}
	if idx := strings.LastIndex(name, "_sample"); idx > 0 {
		pct, err := strconv.Atoi(name[idx+len("_sample"):])
		if err == nil {
			if t := p.db.Table(name[:idx]); t != nil {
				if _, ok := t.Samples[pct]; !ok {
					return nil, 0, fmt.Errorf("table %q has no %d%% sample", name[:idx], pct)
				}
				return t, pct, nil
			}
		}
	}
	return nil, 0, fmt.Errorf("unknown table %q", name)
}

// parseJoin parses "JOIN t2 ON a.x = b.y".
func (p *sqlParser) parseJoin(q *Query) error {
	inner, err := p.expectIdent()
	if err != nil {
		return err
	}
	if p.db.Table(inner) == nil {
		return fmt.Errorf("unknown join table %q", inner)
	}
	if err := p.expectKeyword("ON"); err != nil {
		return err
	}
	lt, lc, err := p.qualifiedIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("="); err != nil {
		return err
	}
	rt, rc, err := p.qualifiedIdent()
	if err != nil {
		return err
	}
	// Normalize sides: left refers to the main table.
	if rt != inner && lt == inner {
		lt, lc, rt, rc = rt, rc, lt, lc
	}
	if rt != inner {
		return fmt.Errorf("join condition does not mention %q", inner)
	}
	_ = lt
	q.Join = &JoinClause{Table: inner, LeftCol: lc, RightCol: rc}
	return nil
}

// qualifiedIdent parses "table.col" or "col" (returns empty table).
func (p *sqlParser) qualifiedIdent() (string, string, error) {
	a, err := p.expectIdent()
	if err != nil {
		return "", "", err
	}
	if p.peek().kind == "punct" && p.peek().text == "." {
		p.pos++
		b, err := p.expectIdent()
		if err != nil {
			return "", "", err
		}
		return a, b, nil
	}
	return "", a, nil
}

// parseConditions parses the conjunctive WHERE clause.
func (p *sqlParser) parseConditions(q *Query, base *Table, mainName string) error {
	for {
		tbl, col, err := p.qualifiedIdent()
		if err != nil {
			return err
		}
		onJoin := q.Join != nil && tbl == q.Join.Table
		if tbl != "" && tbl != mainName && tbl != base.Name && !onJoin {
			return fmt.Errorf("condition on unknown table %q", tbl)
		}
		var pred Predicate
		switch {
		case p.acceptKeyword("contains"):
			t := p.next()
			if t.kind != "str" && t.kind != "ident" {
				return fmt.Errorf("contains needs a keyword, got %q", t.text)
			}
			id := base.Vocab.ID(t.text)
			if id == 0 {
				return fmt.Errorf("unknown keyword %q", t.text)
			}
			pred = Predicate{Col: col, Kind: PredKeyword, Word: id, WordText: t.text}
		case p.acceptKeyword("BETWEEN"):
			lo, err := p.expectNum()
			if err != nil {
				return err
			}
			if err := p.expectKeyword("AND"); err != nil {
				return err
			}
			hi, err := p.expectNum()
			if err != nil {
				return err
			}
			if hi < lo {
				return fmt.Errorf("BETWEEN bounds inverted (%v > %v)", lo, hi)
			}
			pred = Predicate{Col: col, Kind: PredRange, Lo: lo, Hi: hi}
		case p.acceptKeyword("IN"):
			box, err := p.parseBox()
			if err != nil {
				return err
			}
			pred = Predicate{Col: col, Kind: PredGeo, Box: box}
		default:
			return fmt.Errorf("unsupported condition on %q at %q", col, p.peek().text)
		}
		if onJoin {
			q.Join.Preds = append(q.Join.Preds, pred)
		} else {
			q.Preds = append(q.Preds, pred)
		}
		if !p.acceptKeyword("AND") {
			return nil
		}
	}
}

// parseBox parses ((lon, lat), (lon, lat)).
func (p *sqlParser) parseBox() (Rect, error) {
	var r Rect
	if err := p.expectPunct("("); err != nil {
		return r, err
	}
	read := func() (float64, float64, error) {
		if err := p.expectPunct("("); err != nil {
			return 0, 0, err
		}
		a, err := p.expectNum()
		if err != nil {
			return 0, 0, err
		}
		if err := p.expectPunct(","); err != nil {
			return 0, 0, err
		}
		b, err := p.expectNum()
		if err != nil {
			return 0, 0, err
		}
		if err := p.expectPunct(")"); err != nil {
			return 0, 0, err
		}
		return a, b, nil
	}
	lon1, lat1, err := read()
	if err != nil {
		return r, err
	}
	if err := p.expectPunct(","); err != nil {
		return r, err
	}
	lon2, lat2, err := read()
	if err != nil {
		return r, err
	}
	if err := p.expectPunct(")"); err != nil {
		return r, err
	}
	r = Rect{
		MinLon: min2(lon1, lon2), MaxLon: max2(lon1, lon2),
		MinLat: min2(lat1, lat2), MaxLat: max2(lat1, lat2),
	}
	return r, nil
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// parseGroupBy parses "GROUP BY BIN_ID(col)" and attaches a BinSpec sized by
// the query's spatial condition.
func (p *sqlParser) parseGroupBy(q *Query, selectBinCol string) error {
	if err := p.expectKeyword("BY"); err != nil {
		return err
	}
	if err := p.expectKeyword("BIN_ID"); err != nil {
		return err
	}
	if err := p.expectPunct("("); err != nil {
		return err
	}
	col, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct(")"); err != nil {
		return err
	}
	if selectBinCol != "" && selectBinCol != col {
		return fmt.Errorf("GROUP BY BIN_ID(%s) does not match SELECT BIN_ID(%s)", col, selectBinCol)
	}
	// The bin extent comes from the query's geo condition (the frontend's
	// viewport); BIN_ID without a spatial condition is ambiguous.
	for _, pred := range q.Preds {
		if pred.Kind == PredGeo && pred.Col == col {
			q.Bin = &BinSpec{Col: col, Extent: pred.Box, W: 64, H: 64}
			return nil
		}
	}
	return fmt.Errorf("GROUP BY BIN_ID(%s) requires a spatial condition on %s", col, col)
}

// resolveHints converts collected hint invocations into an engine Hint.
func (p *sqlParser) resolveHints(q *Query, mainName string) (Hint, error) {
	if len(p.hintParts) == 0 {
		return Hint{}, nil
	}
	h := Hint{}
	for _, part := range p.hintParts {
		name := strings.ToLower(part[0])
		args := part[1:]
		switch name {
		case "index-scan":
			if len(args) != 2 {
				return h, fmt.Errorf("Index-Scan needs (table col), got %v", args)
			}
			pos := -1
			for i, pred := range q.Preds {
				if pred.Col == args[1] {
					pos = i
					break
				}
			}
			if pos < 0 {
				return h, fmt.Errorf("Index-Scan on %q: no such condition", args[1])
			}
			h.Forced = true
			h.UseIndex = append(h.UseIndex, pos)
		case "seq-scan":
			h.Forced = true
		case "nest-loop-join":
			h.Join = NestLoopJoin
		case "hash-join":
			h.Join = HashJoin
		case "merge-join":
			h.Join = MergeJoin
		default:
			return h, fmt.Errorf("unknown hint %q", part[0])
		}
	}
	_ = mainName
	return h, nil
}
