package engine

import (
	"fmt"
	"strings"
)

// JoinMethod enumerates the physical join algorithms, matching the three
// join-method hints in the paper (§7.5).
type JoinMethod uint8

const (
	// JoinAuto lets the optimizer pick the join method.
	JoinAuto JoinMethod = iota
	// NestLoopJoin probes the inner table once per outer row (index nested
	// loop on the join key when available).
	NestLoopJoin
	// HashJoin builds a hash table on the inner table and probes it.
	HashJoin
	// MergeJoin sorts both sides on the join key and merges.
	MergeJoin
)

// String returns the pg_hint_plan-style name of the join method.
func (m JoinMethod) String() string {
	switch m {
	case JoinAuto:
		return "Auto"
	case NestLoopJoin:
		return "Nest-Loop-Join"
	case HashJoin:
		return "Hash-Join"
	case MergeJoin:
		return "Merge-Join"
	}
	return fmt.Sprintf("JoinMethod(%d)", uint8(m))
}

// JoinClause joins the query's main table to a second table on an equality
// key, with optional predicates on the joined table.
type JoinClause struct {
	Table    string      // inner table name, e.g. "users"
	LeftCol  string      // join column on the main table, e.g. "user_id"
	RightCol string      // join column on the inner table, e.g. "id"
	Preds    []Predicate // predicates on the inner table
}

// BinSpec asks the engine to group output points into a w×h grid over Extent
// and return per-cell counts (the paper's GROUP BY BIN_ID(Location)).
type BinSpec struct {
	Col    string
	Extent Rect
	W, H   int
}

// Query is the engine's logical query: a conjunctive selection over one
// table, with an optional join, optional binning aggregation, an optional
// LIMIT, and an optional sample-table substitution. Preds order is
// significant: rewrite options refer to predicates by position.
type Query struct {
	Table string
	Preds []Predicate
	Join  *JoinClause

	// OutputCols are projected columns (ignored when Bin != nil).
	OutputCols []string
	// Bin, when set, turns the query into a binned count aggregation.
	Bin *BinSpec

	// Limit > 0 stops execution after that many output rows (an
	// approximation rule).
	Limit int
	// SamplePercent in (0,100) substitutes the table with its random sample
	// (an approximation rule). 0 means the base table.
	SamplePercent int
	// Approx selects the approximate execution tier (row sampling,
	// reservoir sampling, or sketch-served aggregates). The zero value is
	// the exact path. See ApproxSpec.
	Approx ApproxSpec
}

// Clone returns a deep-enough copy: slices are shared except Preds, and the
// approximation fields can be modified independently.
func (q *Query) Clone() *Query {
	cp := *q
	cp.Preds = append([]Predicate(nil), q.Preds...)
	if q.Join != nil {
		j := *q.Join
		j.Preds = append([]Predicate(nil), q.Join.Preds...)
		cp.Join = &j
	}
	return &cp
}

// Hint instructs the engine which access paths and join method to use,
// mirroring pg_hint_plan. A nil UseIndex slice means "optimizer decides";
// a non-nil (possibly empty) slice forces exactly those index columns.
type Hint struct {
	// UseIndex lists main-table predicate indexes (by predicate position)
	// that must be served by an index scan. Forced = true means the slice is
	// authoritative even when empty (forced full scan).
	UseIndex []int
	Forced   bool
	// Join forces the join method (JoinAuto = optimizer decides).
	Join JoinMethod
}

// ForcedHint builds a hint that forces exactly the given predicate positions
// to use their indexes.
func ForcedHint(predPositions []int, join JoinMethod) Hint {
	return Hint{UseIndex: append([]int(nil), predPositions...), Forced: true, Join: join}
}

// AutoHint returns the empty hint (optimizer decides everything).
func AutoHint() Hint { return Hint{} }

// MaskFromPositions converts predicate positions to a bitmask.
func MaskFromPositions(pos []int) uint32 {
	var m uint32
	for _, p := range pos {
		m |= 1 << uint(p)
	}
	return m
}

// PositionsFromMask converts a bitmask to sorted predicate positions.
func PositionsFromMask(mask uint32, n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, i)
		}
	}
	return out
}

// SQL renders the query with the hint as PostgreSQL + pg_hint_plan-style
// text, for logging, examples and the middleware demo.
func (q *Query) SQL(h Hint) string {
	var b strings.Builder
	table := q.Table
	if q.SamplePercent > 0 {
		table = fmt.Sprintf("%s_sample%d", q.Table, q.SamplePercent)
	}
	if h.Forced || h.Join != JoinAuto {
		b.WriteString("/*+ ")
		var parts []string
		if h.Forced {
			if len(h.UseIndex) == 0 {
				parts = append(parts, fmt.Sprintf("Seq-Scan(%s)", table))
			}
			for _, p := range h.UseIndex {
				if p < len(q.Preds) {
					parts = append(parts, fmt.Sprintf("Index-Scan(%s %s)", table, q.Preds[p].Col))
				}
			}
		}
		if h.Join != JoinAuto && q.Join != nil {
			parts = append(parts, fmt.Sprintf("%s(%s %s)", h.Join, table, q.Join.Table))
		}
		b.WriteString(strings.Join(parts, ", "))
		b.WriteString(" */ ")
	}
	b.WriteString("SELECT ")
	switch {
	case q.Approx.Method == ApproxSketchCount:
		b.WriteString("APPROX_COUNT(*)")
	case q.Approx.Method == ApproxSketchDistinct:
		b.WriteString("APPROX_DISTINCT(*)")
	case q.Bin != nil:
		b.WriteString(fmt.Sprintf("BIN_ID(%s), COUNT(*)", q.Bin.Col))
	case len(q.OutputCols) > 0:
		b.WriteString(strings.Join(q.OutputCols, ", "))
	default:
		b.WriteString("*")
	}
	b.WriteString(" FROM ")
	b.WriteString(table)
	switch q.Approx.Method {
	case ApproxRows:
		b.WriteString(fmt.Sprintf(" TABLESAMPLE BERNOULLI (%.4f) REPEATABLE (%d)", q.Approx.Rate*100, q.Approx.Seed))
	case ApproxReservoir:
		b.WriteString(fmt.Sprintf(" TABLESAMPLE RESERVOIR (%d ROWS) REPEATABLE (%d)", q.Approx.K, q.Approx.Seed))
	}
	if q.Join != nil {
		b.WriteString(fmt.Sprintf(" JOIN %s ON %s.%s = %s.%s",
			q.Join.Table, table, q.Join.LeftCol, q.Join.Table, q.Join.RightCol))
	}
	var conds []string
	for _, p := range q.Preds {
		conds = append(conds, p.String())
	}
	if q.Join != nil {
		for _, p := range q.Join.Preds {
			conds = append(conds, q.Join.Table+"."+p.String())
		}
	}
	if len(conds) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(conds, " AND "))
	}
	if q.Bin != nil {
		b.WriteString(fmt.Sprintf(" GROUP BY BIN_ID(%s)", q.Bin.Col))
	}
	if q.Limit > 0 {
		b.WriteString(fmt.Sprintf(" LIMIT %d", q.Limit))
	}
	b.WriteString(";")
	return b.String()
}
