package engine

import (
	"sort"
	"sync"
)

// Vocab maps between words and compact word ids for text columns. Word id 0
// is reserved as "unknown" so that a zero value never matches a real word.
// A Vocab is safe for concurrent use: the live ingest path interns new words
// while serving goroutines resolve keywords on the same table.
type Vocab struct {
	mu    sync.RWMutex
	words []string
	ids   map[string]uint32
}

// NewVocab returns an empty vocabulary with the reserved unknown word.
func NewVocab() *Vocab {
	v := &Vocab{ids: make(map[string]uint32)}
	v.words = append(v.words, "") // id 0 = unknown
	return v
}

// Intern returns the id for word, adding it to the vocabulary if needed.
func (v *Vocab) Intern(word string) uint32 {
	v.mu.RLock()
	id, ok := v.ids[word]
	v.mu.RUnlock()
	if ok {
		return id
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if id, ok := v.ids[word]; ok {
		return id
	}
	id = uint32(len(v.words))
	v.words = append(v.words, word)
	v.ids[word] = id
	return id
}

// ID returns the id for word, or 0 if the word is unknown.
func (v *Vocab) ID(word string) uint32 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.ids[word]
}

// Word returns the word for id, or "" for unknown ids.
func (v *Vocab) Word(id uint32) string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if int(id) >= len(v.words) {
		return ""
	}
	return v.words[id]
}

// Len returns the number of interned words, excluding the unknown sentinel.
func (v *Vocab) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.words) - 1
}

// SortTokens sorts a token slice and removes duplicates in place, the
// canonical representation for text-column rows.
func SortTokens(tokens []uint32) []uint32 {
	if len(tokens) < 2 {
		return tokens
	}
	sort.Slice(tokens, func(i, j int) bool { return tokens[i] < tokens[j] })
	out := tokens[:1]
	for _, t := range tokens[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// HasToken reports whether a sorted token slice contains the word id.
func HasToken(tokens []uint32, id uint32) bool {
	lo, hi := 0, len(tokens)
	for lo < hi {
		mid := (lo + hi) / 2
		if tokens[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(tokens) && tokens[lo] == id
}
