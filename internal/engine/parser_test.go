package engine

import (
	"strings"
	"testing"
)

// parserDB extends the standard test DB with a sample table for the
// sample-substitution cases.
func parserDB(t testing.TB) *DB {
	db := buildTestDB(t, 2000, 51)
	if _, err := db.Table("events").BuildSample(20, 3); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestParseSQLBasic(t *testing.T) {
	db := parserDB(t)
	q, h, err := ParseSQL(db, `SELECT loc FROM events
		WHERE text contains "c"
		  AND ts BETWEEN 2000 AND 7000
		  AND loc IN ((20, 10), (80, 40));`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Table != "events" || len(q.Preds) != 3 || h.Forced {
		t.Fatalf("q=%+v h=%+v", q, h)
	}
	if q.Preds[0].Kind != PredKeyword || q.Preds[0].WordText != "c" || q.Preds[0].Word == 0 {
		t.Errorf("keyword pred = %+v", q.Preds[0])
	}
	if q.Preds[1].Kind != PredRange || q.Preds[1].Lo != 2000 || q.Preds[1].Hi != 7000 {
		t.Errorf("range pred = %+v", q.Preds[1])
	}
	if q.Preds[2].Kind != PredGeo || q.Preds[2].Box.MinLon != 20 || q.Preds[2].Box.MaxLat != 40 {
		t.Errorf("geo pred = %+v", q.Preds[2])
	}
	// The parsed query must execute and agree with the hand-built one.
	parsed, _, err := db.Run(q, h)
	if err != nil {
		t.Fatal(err)
	}
	manual, _, err := db.Run(testQuery(db), Hint{})
	if err != nil {
		t.Fatal(err)
	}
	if !equalRows(parsed.RowIDs, manual.RowIDs) {
		t.Errorf("parsed query returned %d rows, manual %d", len(parsed.RowIDs), len(manual.RowIDs))
	}
}

func TestParseSQLHints(t *testing.T) {
	db := parserDB(t)
	q, h, err := ParseSQL(db, `/*+ Index-Scan(events ts), Index-Scan(events loc) */
		SELECT loc FROM events WHERE ts BETWEEN 0 AND 100 AND loc IN ((0,0),(10,10))`)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Forced || len(h.UseIndex) != 2 || h.UseIndex[0] != 0 || h.UseIndex[1] != 1 {
		t.Fatalf("hint = %+v", h)
	}
	if q.SamplePercent != 0 {
		t.Error("unexpected sample")
	}
	// Seq-scan hint.
	_, h2, err := ParseSQL(db, `/*+ Seq-Scan(events) */ SELECT loc FROM events WHERE ts BETWEEN 0 AND 1`)
	if err != nil {
		t.Fatal(err)
	}
	if !h2.Forced || len(h2.UseIndex) != 0 {
		t.Fatalf("seq hint = %+v", h2)
	}
}

func TestParseSQLJoin(t *testing.T) {
	db := parserDB(t)
	q, h, err := ParseSQL(db, `/*+ Hash-Join(events dims) */
		SELECT loc FROM events JOIN dims ON events.fk = dims.id
		WHERE ts BETWEEN 0 AND 5000 AND dims.weight BETWEEN 2 AND 9`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Join == nil || q.Join.Table != "dims" || q.Join.LeftCol != "fk" || q.Join.RightCol != "id" {
		t.Fatalf("join = %+v", q.Join)
	}
	if len(q.Join.Preds) != 1 || q.Join.Preds[0].Col != "weight" {
		t.Fatalf("join preds = %+v", q.Join.Preds)
	}
	if len(q.Preds) != 1 {
		t.Fatalf("main preds = %+v", q.Preds)
	}
	if h.Join != HashJoin {
		t.Errorf("join hint = %v", h.Join)
	}
	// Reversed ON order normalizes.
	q2, _, err := ParseSQL(db, `SELECT loc FROM events JOIN dims ON dims.id = events.fk WHERE ts BETWEEN 0 AND 1`)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Join.LeftCol != "fk" || q2.Join.RightCol != "id" {
		t.Errorf("normalized join = %+v", q2.Join)
	}
}

func TestParseSQLSampleAndLimit(t *testing.T) {
	db := parserDB(t)
	q, _, err := ParseSQL(db, `SELECT loc FROM events_sample20 WHERE ts BETWEEN 0 AND 9000 LIMIT 25`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Table != "events" || q.SamplePercent != 20 || q.Limit != 25 {
		t.Fatalf("q = %+v", q)
	}
	res, _, err := db.Run(q, Hint{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RowIDs) > 25 {
		t.Errorf("limit not applied: %d rows", len(res.RowIDs))
	}
}

func TestParseSQLBinning(t *testing.T) {
	db := parserDB(t)
	q, _, err := ParseSQL(db, `SELECT BIN_ID(loc), COUNT(*) FROM events
		WHERE loc IN ((0, 0), (100, 50)) GROUP BY BIN_ID(loc)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Bin == nil || q.Bin.Col != "loc" || q.Bin.Extent.MaxLon != 100 {
		t.Fatalf("bin = %+v", q.Bin)
	}
	res, _, err := db.Run(q, Hint{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bins) == 0 {
		t.Error("no bins produced")
	}
}

func TestParseSQLRoundTripsRendering(t *testing.T) {
	db := parserDB(t)
	orig := testQuery(db)
	hint := ForcedHint([]int{0, 1}, JoinAuto)
	sql := orig.SQL(hint)
	q, h, err := ParseSQL(db, sql)
	if err != nil {
		t.Fatalf("re-parsing rendered SQL %q: %v", sql, err)
	}
	if len(q.Preds) != len(orig.Preds) || !h.Forced || len(h.UseIndex) != 2 {
		t.Errorf("round trip lost structure: %+v %+v", q, h)
	}
	a, _, err := db.Run(orig, hint)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := db.Run(q, h)
	if err != nil {
		t.Fatal(err)
	}
	if !equalRows(a.RowIDs, b.RowIDs) {
		t.Error("round-tripped query returns different rows")
	}
}

func TestParseSQLErrors(t *testing.T) {
	db := parserDB(t)
	cases := []struct {
		sql  string
		want string
	}{
		{`SELECT loc FROM nope WHERE ts BETWEEN 0 AND 1`, "unknown table"},
		{`SELECT loc FROM events WHERE text contains "zzzznot"`, "unknown keyword"},
		{`SELECT loc FROM events WHERE ts BETWEEN 5 AND 1`, "inverted"},
		{`SELECT loc FROM events WHERE ts LIKE 5`, "unsupported condition"},
		{`/*+ Index-Scan(events ghost) */ SELECT loc FROM events WHERE ts BETWEEN 0 AND 1`, "no such condition"},
		{`/*+ Magic-Hint(events) */ SELECT loc FROM events WHERE ts BETWEEN 0 AND 1`, "unknown hint"},
		{`SELECT loc FROM events GROUP BY BIN_ID(loc)`, "requires a spatial condition"},
		{`SELECT loc FROM events WHERE ts BETWEEN 0 AND 1 LIMIT 0`, "LIMIT"},
		{`SELECT loc FROM events WHERE ts BETWEEN 0 AND 1 garbage here`, "trailing input"},
		{`SELECT loc FROM events_sample33 WHERE ts BETWEEN 0 AND 1`, "no 33% sample"},
		{`/*+ Index-Scan(events ts`, "expected"},
		{`/*+`, "unterminated"},
		{`SELECT loc FROM events JOIN nope ON events.fk = nope.id WHERE ts BETWEEN 0 AND 1`, "unknown join table"},
	}
	for _, tc := range cases {
		_, _, err := ParseSQL(db, tc.sql)
		if err == nil {
			t.Errorf("expected error containing %q for %q", tc.want, tc.sql)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("error %q does not contain %q", err.Error(), tc.want)
		}
	}
}

func TestLexSQL(t *testing.T) {
	toks := lexSQL(`SELECT a, b FROM t WHERE x BETWEEN -1.5e3 AND 2 AND s contains "hi";`)
	var kinds []string
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	joined := strings.Join(kinds, " ")
	if !strings.Contains(joined, "num") || !strings.Contains(joined, "str") {
		t.Errorf("lexer kinds: %v", joined)
	}
	// The negative scientific number survives as one token.
	found := false
	for _, tk := range toks {
		if tk.kind == "num" && tk.text == "-1.5e3" {
			found = true
		}
	}
	if !found {
		t.Errorf("scientific literal split: %v", toks)
	}
}
