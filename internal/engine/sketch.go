package engine

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

// This file holds the streaming summaries behind the approximate execution
// tier: a Count-Min sketch for keyword frequencies, a HyperLogLog for
// distinct counts, and the TableSketch that buckets both by time so window
// queries can be answered by merging a handful of bucket summaries instead
// of touching rows. All updates are commutative (CMS counters add, HLL
// registers max), so bulk building at dataset construction, incremental
// ingest maintenance, and WAL replay all converge on the identical sketch —
// the property the approximate tier's per-(seed, fingerprint, data-version)
// determinism contract stands on.

// CountMinSketch estimates per-key frequencies with one-sided error: an
// estimate is never below the true count, and exceeds it by more than
// Epsilon()·N (N = total additions) only with probability ≤ exp(-depth).
// Counters are a flat array; Add and Estimate allocate nothing.
type CountMinSketch struct {
	width    int // power of two
	depth    int
	counters []uint64
	adds     uint64 // total count mass added (the N of the ε·N bound)
}

// NewCountMinSketch builds a sketch with the given width (rounded up to a
// power of two, min 16) and depth (min 1).
func NewCountMinSketch(width, depth int) *CountMinSketch {
	if width < 16 {
		width = 16
	}
	w := 1
	for w < width {
		w <<= 1
	}
	if depth < 1 {
		depth = 1
	}
	return &CountMinSketch{width: w, depth: depth, counters: make([]uint64, w*depth)}
}

// Epsilon is the sketch's relative error bound: with probability at least
// 1-exp(-depth), Estimate(key) ≤ true(key) + Epsilon()·N.
func (c *CountMinSketch) Epsilon() float64 { return math.E / float64(c.width) }

// Adds returns N, the total count mass added so far.
func (c *CountMinSketch) Adds() uint64 { return c.adds }

// Add increments key's count by n. Zero allocations.
func (c *CountMinSketch) Add(key uint64, n uint64) {
	h1 := mix64(key)
	h2 := mix64(key^0xa5a5a5a5a5a5a5a5) | 1
	mask := uint64(c.width - 1)
	for i := 0; i < c.depth; i++ {
		idx := (h1 + uint64(i)*h2) & mask
		c.counters[i*c.width+int(idx)] += n
	}
	c.adds += n
}

// Estimate returns the minimum counter across rows — an overestimate of the
// true count, never an underestimate. Zero allocations.
func (c *CountMinSketch) Estimate(key uint64) uint64 {
	h1 := mix64(key)
	h2 := mix64(key^0xa5a5a5a5a5a5a5a5) | 1
	mask := uint64(c.width - 1)
	est := uint64(math.MaxUint64)
	for i := 0; i < c.depth; i++ {
		idx := (h1 + uint64(i)*h2) & mask
		if v := c.counters[i*c.width+int(idx)]; v < est {
			est = v
		}
	}
	return est
}

// hllP is the HyperLogLog precision: 2^hllP registers. p=12 gives a relative
// standard error of 1.04/√4096 ≈ 1.6% in 4KB.
const hllP = 12

// HyperLogLog estimates the number of distinct 64-bit hashes added. Merge is
// a register-wise max, so sketches built over disjoint row ranges union
// exactly.
type HyperLogLog struct {
	registers [1 << hllP]uint8
}

// NewHyperLogLog returns an empty HLL.
func NewHyperLogLog() *HyperLogLog { return &HyperLogLog{} }

// Add observes one hashed element. Zero allocations.
func (h *HyperLogLog) Add(hash uint64) {
	idx := hash >> (64 - hllP)
	rank := uint8(bits.LeadingZeros64(hash<<hllP|1<<(hllP-1))) + 1
	if rank > h.registers[idx] {
		h.registers[idx] = rank
	}
}

// Merge folds other into h (register-wise max).
func (h *HyperLogLog) Merge(other *HyperLogLog) {
	for i := range h.registers {
		if other.registers[i] > h.registers[i] {
			h.registers[i] = other.registers[i]
		}
	}
}

// Reset clears the sketch (scratch reuse in window queries).
func (h *HyperLogLog) Reset() { clear(h.registers[:]) }

// RelStdErr is the estimator's relative standard error (≈1.04/√m).
func (h *HyperLogLog) RelStdErr() float64 {
	return 1.04 / math.Sqrt(float64(len(h.registers)))
}

// Estimate returns the distinct-count estimate with the standard
// small-range (linear counting) correction.
func (h *HyperLogLog) Estimate() float64 {
	m := float64(len(h.registers))
	sum := 0.0
	zeros := 0
	for _, r := range h.registers {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	est := alpha * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		est = m * math.Log(m/float64(zeros))
	}
	return est
}

// wordHash maps a vocab word id to the 64-bit hash space HLL consumes.
func wordHash(word uint32) uint64 { return mix64(uint64(word) ^ 0x51ed2701) }

// bucketSketch summarizes one time bucket of a table: keyword frequencies
// (CMS over distinct words per row) and distinct words (HLL), plus the raw
// tallies the error bounds need.
type bucketSketch struct {
	cms  *CountMinSketch
	hll  *HyperLogLog
	rows uint64 // rows whose timestamp fell in this bucket
}

// Default TableSketch shape: per-bucket CMS of 512×4 counters (ε ≈ 0.0053,
// failure probability ≈ exp(-4) ≈ 1.8%) costs ~16KB; weekly buckets keep
// typical dashboards merging a few dozen summaries.
const (
	defaultSketchCMSWidth = 512
	defaultSketchCMSDepth = 4
	defaultSketchBucket   = 7 * 24 * time.Hour
)

// TableSketch is the per-table summary store: one bucketSketch per time
// bucket of the configured width, keyed by floor(tsMs / bucketMs). It is
// built once at dataset construction and maintained incrementally by the
// ingest path; it is NOT internally synchronized — updates happen under the
// DB's data write lock, reads under the read lock, exactly like row data.
type TableSketch struct {
	TextCol  string
	TimeCol  string
	BucketMs int64

	buckets    map[int64]*bucketSketch
	minB, maxB int64 // observed bucket-key range (valid when rows > 0)
	rows       uint64
}

// NewTableSketch builds an empty sketch store over the named text and time
// columns. bucket <= 0 picks the weekly default.
func NewTableSketch(textCol, timeCol string, bucket time.Duration) *TableSketch {
	if bucket <= 0 {
		bucket = defaultSketchBucket
	}
	return &TableSketch{
		TextCol:  textCol,
		TimeCol:  timeCol,
		BucketMs: bucket.Milliseconds(),
		buckets:  make(map[int64]*bucketSketch),
	}
}

// Rows returns the number of rows summarized.
func (ts *TableSketch) Rows() uint64 { return ts.rows }

// Buckets returns how many time buckets hold data (diagnostics and the
// virtual cost of a sketch probe).
func (ts *TableSketch) Buckets() int { return len(ts.buckets) }

// bucketOf maps a timestamp to its bucket key (floor division, correct for
// negative timestamps too).
func (ts *TableSketch) bucketOf(tsMs int64) int64 {
	b := tsMs / ts.BucketMs
	if tsMs%ts.BucketMs < 0 {
		b--
	}
	return b
}

// AddRow feeds one row: each *distinct* word of its (sorted) token list
// counts once in the bucket's CMS and HLL, so CMS estimates answer "rows
// containing word", matching what the exact keyword predicate counts.
// Zero allocations once the row's bucket exists.
func (ts *TableSketch) AddRow(tsMs int64, tokens []uint32) {
	b := ts.bucketOf(tsMs)
	bs := ts.buckets[b]
	if bs == nil {
		bs = &bucketSketch{
			cms: NewCountMinSketch(defaultSketchCMSWidth, defaultSketchCMSDepth),
			hll: NewHyperLogLog(),
		}
		ts.buckets[b] = bs
		if ts.rows == 0 || b < ts.minB {
			ts.minB = b
		}
		if ts.rows == 0 || b > ts.maxB {
			ts.maxB = b
		}
	}
	prev := uint32(math.MaxUint32)
	for _, w := range tokens {
		if w == prev {
			continue // token lists are sorted; equal neighbors are duplicates
		}
		prev = w
		bs.cms.Add(uint64(w), 1)
		bs.hll.Add(wordHash(w))
	}
	bs.rows++
	ts.rows++
}

// coverRange resolves a time window to the inclusive bucket-key range that
// covers it. An empty window (lo > hi, e.g. no time predicate) covers every
// bucket.
func (ts *TableSketch) coverRange(loMs, hiMs int64, windowed bool) (lo, hi int64) {
	if !windowed || ts.rows == 0 {
		return ts.minB, ts.maxB
	}
	lo, hi = ts.bucketOf(loMs), ts.bucketOf(hiMs)
	if lo < ts.minB {
		lo = ts.minB
	}
	if hi > ts.maxB {
		hi = ts.maxB
	}
	return lo, hi
}

// AlignWindow snaps a time window outward to the bucket lattice — the
// window a sketch probe actually summarizes. Distinct-count serving aligns
// both the exact and the approximate path to this window so the HLL's
// stated standard error applies to exactly the set the exact path counts.
func (ts *TableSketch) AlignWindow(loMs, hiMs int64) (alo, ahi int64) {
	lo := ts.bucketOf(loMs)
	hi := ts.bucketOf(hiMs)
	return lo * ts.BucketMs, (hi+1)*ts.BucketMs - 1
}

// KeywordCount estimates how many rows in the window contain word, plus the
// stated worst-case overestimate: per covered bucket the CMS may exceed
// truth by ε·N_b, and boundary buckets only partially inside the window
// contribute up to their full row count of out-of-window rows. The estimate
// is one-sided — never below the true in-window count — because each
// per-bucket CMS overestimates and the bucket cover is a superset of the
// window. touched reports how many bucket summaries were merged (the
// probe's virtual cost).
func (ts *TableSketch) KeywordCount(word uint32, loMs, hiMs int64, windowed bool) (est, bound float64, touched int) {
	lo, hi := ts.coverRange(loMs, hiMs, windowed)
	for b := lo; b <= hi; b++ {
		bs := ts.buckets[b]
		if bs == nil {
			continue
		}
		touched++
		est += float64(bs.cms.Estimate(uint64(word)))
		bound += bs.cms.Epsilon() * float64(bs.cms.Adds())
		if windowed && (b == lo && loMs > b*ts.BucketMs || b == hi && hiMs < (b+1)*ts.BucketMs-1) {
			// Partial boundary bucket: its whole row count may be excess.
			bound += float64(bs.rows)
		}
	}
	return est, bound, touched
}

// DistinctWords estimates the number of distinct words across the window's
// bucket cover (the bucket-aligned window; see AlignWindow), with the HLL's
// relative standard error as the stated accuracy. scratch (optional) is
// reused as the merge target to avoid allocating per probe.
func (ts *TableSketch) DistinctWords(loMs, hiMs int64, windowed bool, scratch *HyperLogLog) (est, relStdErr float64, touched int) {
	if scratch == nil {
		scratch = NewHyperLogLog()
	} else {
		scratch.Reset()
	}
	lo, hi := ts.coverRange(loMs, hiMs, windowed)
	for b := lo; b <= hi; b++ {
		bs := ts.buckets[b]
		if bs == nil {
			continue
		}
		touched++
		scratch.Merge(bs.hll)
	}
	return scratch.Estimate(), scratch.RelStdErr(), touched
}

// BuildSketch constructs (or returns) the table's sketch store over textCol
// and timeCol, summarizing every current row. Ingest appends maintain it
// incrementally (see appendBatch); commutativity makes the incremental
// result identical to rebuilding from scratch.
func (t *Table) BuildSketch(textCol, timeCol string, bucket time.Duration) (*TableSketch, error) {
	if t.Sketch != nil {
		return t.Sketch, nil
	}
	if t.SampleOf != nil {
		return nil, fmt.Errorf("engine: sketches live on base tables, not sample %q", t.Name)
	}
	tc, ok := t.byName[textCol]
	if !ok || tc.Type != ColText {
		return nil, fmt.Errorf("engine: BuildSketch needs a text column, %q is not one", textCol)
	}
	cc, ok := t.byName[timeCol]
	if !ok || cc.Type != ColTime {
		return nil, fmt.Errorf("engine: BuildSketch needs a time column, %q is not one", timeCol)
	}
	sk := NewTableSketch(textCol, timeCol, bucket)
	for r := 0; r < t.Rows; r++ {
		sk.AddRow(cc.Ints[r], tc.Texts[r])
	}
	t.Sketch = sk
	return sk, nil
}

// DistinctWordsExact counts the distinct words among the given rows of the
// table's text column — the exact comparator for HLL estimates (and the
// expensive path the HLL action buys its way out of).
func DistinctWordsExact(t *Table, rows []uint32, textCol string) int {
	c := t.Col(textCol)
	seen := make(map[uint32]struct{})
	for _, r := range rows {
		for _, w := range c.Texts[r] {
			seen[w] = struct{}{}
		}
	}
	return len(seen)
}
