package engine

// InvertedIndex maps word ids to sorted posting lists of row ids, the access
// path behind "Content contains <keyword>" predicates.
type InvertedIndex struct {
	postings map[uint32][]uint32
	entries  int // total number of postings
}

// NewInvertedIndex builds the index from a tokenized text column.
func NewInvertedIndex(texts [][]uint32) *InvertedIndex {
	idx := &InvertedIndex{postings: make(map[uint32][]uint32)}
	for row, tokens := range texts {
		for _, w := range tokens {
			idx.postings[w] = append(idx.postings[w], uint32(row))
		}
		idx.entries += len(tokens)
	}
	return idx
}

// AppendRow indexes one new row's tokens. Rows must be appended in
// increasing row-id order (the ingest path appends at the table tail), which
// preserves the sorted-posting-list invariant without re-sorting.
func (idx *InvertedIndex) AppendRow(row uint32, tokens []uint32) {
	for _, w := range tokens {
		idx.postings[w] = append(idx.postings[w], row)
	}
	idx.entries += len(tokens)
}

// Lookup returns the sorted posting list for word (shared, do not mutate)
// and the number of entries scanned. Rows are appended in row order during
// construction, so lists are already sorted.
func (idx *InvertedIndex) Lookup(word uint32) (rows []uint32, entries int) {
	p := idx.postings[word]
	return p, len(p) + 1
}

// PostingLen returns the length of word's posting list.
func (idx *InvertedIndex) PostingLen(word uint32) int {
	return len(idx.postings[word])
}

// Len returns the total number of postings across all words.
func (idx *InvertedIndex) Len() int { return idx.entries }

// DistinctWords returns the number of distinct indexed words.
func (idx *InvertedIndex) DistinctWords() int { return len(idx.postings) }

// AvgPostingLen returns the average posting-list length — the (deliberately
// crude) statistic the optimizer uses to estimate keyword selectivity.
func (idx *InvertedIndex) AvgPostingLen() float64 {
	if len(idx.postings) == 0 {
		return 0
	}
	return float64(idx.entries) / float64(len(idx.postings))
}

// IntersectSorted intersects two sorted uint32 slices, returning the result
// and the number of comparisons performed (for costing).
func IntersectSorted(a, b []uint32) (out []uint32, work int) {
	return intersectSortedInto(nil, a, b)
}

// intersectSortedInto is IntersectSorted appending into dst (typically a
// reused scratch buffer with length 0). dst must not alias a or b.
func intersectSortedInto(dst, a, b []uint32) (out []uint32, work int) {
	out = dst
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		work++
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out, work
}
