package engine

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"
)

// ErrExecCanceled is the error a canceled execution returns. A yield hook
// cancels by calling AbortExec; the executor unwinds at the next stride
// boundary, returns its pooled context, and reports this error (or the cause
// passed to AbortExec).
var ErrExecCanceled = errors.New("engine: execution canceled")

// execAbort carries the cancellation cause through the panic-based unwind
// from a yield hook back to RunCachedYield's recover. Using a private type
// keeps genuine panics propagating unchanged.
type execAbort struct{ err error }

// AbortExec aborts the execution whose yield hook is currently running. It
// must only be called from inside a yield hook passed to RunCachedYield; the
// serving layer's cancellation check (client disconnected, deadline blown)
// piggybacks on the existing yield stride this way, so the hot path pays
// nothing new. A nil err reports ErrExecCanceled.
func AbortExec(err error) {
	if err == nil {
		err = ErrExecCanceled
	}
	panic(execAbort{err: err})
}

// Result holds the rows produced by a query execution. Row ids always refer
// to the *base* table (sample-table hits are translated back), so results of
// approximate rewrites can be compared against the original for quality.
type Result struct {
	RowIDs    []uint32        // matching main-table rows (base-table ids)
	Points    []Point         // output points, parallel to RowIDs, when a point column is projected or binned
	Bins      map[int]float64 // BIN_ID → (scaled) count, when Bin != nil
	Truncated bool            // a LIMIT stopped execution early
	Weight    float64         // per-row weight (100/SamplePercent for samples, 1/Rate for row sampling, matched/K for reservoirs)

	// Approximate-tier fields (see ApproxSpec). Approx marks any result
	// produced by the approximate tier; exact executions leave every field
	// below at its zero value.
	Approx      bool    // result came from an approximate execution
	SampledRows int     // rows the sample actually kept (ApproxRows/ApproxReservoir)
	MatchedRows int     // exact matched-row count, when known (ApproxReservoir)
	HasAgg      bool    // AggValue/AggBound carry a sketch-served aggregate
	AggValue    float64 // the aggregate estimate (keyword count or distinct count)
	AggBound    float64 // stated error bound (overestimate for CMS, 95% CI half-width for HLL)
}

// execContext carries state through one query execution. Contexts are pooled:
// the scratch slices survive across executions so the hot path stays
// allocation-free, while the Result (which escapes to the caller) is always
// freshly allocated.
type execContext struct {
	db    *DB
	q     *Query
	t     *Table // resolved table (base or sample)
	cache *LookupCache
	stats ExecStats
	res   *Result
	limit int

	// Per-execution projection state, resolved once in Run instead of once
	// per emitted row.
	baseRows []int64 // sample → base row translation (nil for base tables)
	points   []Point // projected/binned point column (nil when none)

	// yield, when non-nil, is called every yieldStride rows of scan/probe
	// work so a low-priority execution (speculative prefetch) can hand the
	// processor back between chunks instead of holding it for a full
	// scheduler quantum.
	yield     func()
	yieldTick int

	// Bernoulli row-sampling state (ApproxRows): rows whose keep hash
	// misses the threshold are skipped before any per-row cost accrues.
	sampling   bool
	keepSeed   uint64
	keepThresh uint64

	// Scratch buffers reused across executions via ecPool.
	lists [][]uint32
	accA  []uint32
	accB  []uint32
	cand  []uint32
	resv  []uint32 // reservoir slots (ApproxReservoir)
	// Join scratch: the hash-join key set and the merge-join sort buffer.
	// Both hold no pointers, so keeping them across executions pins at most
	// the footprint of the largest join seen, not any table data.
	ht  map[float64]struct{}
	kvs []joinKV
	// cur streams nest-loop and merge-join probes over the inner btree
	// without materializing per-probe row slices. Unlike the scratch
	// buffers above it holds node pointers into the probed index, so
	// putExecContext clears it to avoid pinning table state in the pool.
	cur Cursor
}

// joinKV pairs a left row with its join key for the merge-join sort.
type joinKV struct {
	key float64
	row uint32
}

var ecPool = sync.Pool{New: func() any { return new(execContext) }}

// getExecContext checks a context out of the pool with per-execution fields
// reset and scratch buffers retained.
func getExecContext() *execContext {
	ec := ecPool.Get().(*execContext)
	ec.db, ec.q, ec.t, ec.cache = nil, nil, nil, nil
	ec.stats = ExecStats{}
	ec.res = nil
	ec.limit = 0
	ec.baseRows = nil
	ec.points = nil
	ec.yield = nil
	ec.yieldTick = 0
	ec.sampling = false
	ec.keepSeed, ec.keepThresh = 0, 0
	return ec
}

// yieldStride is how many rows of scan/probe work run between yield calls.
// At typical per-row costs this bounds a background execution's contiguous
// hold on a processor to well under a millisecond.
const yieldStride = 4096

// maybeYield ticks the row counter and invokes the yield hook on stride
// boundaries. The nil check is a predictable branch; foreground executions
// (yield == nil) pay essentially nothing.
func (ec *execContext) maybeYield() {
	if ec.yield == nil {
		return
	}
	ec.yieldTick++
	if ec.yieldTick >= yieldStride {
		ec.yieldTick = 0
		ec.yield()
	}
}

// putExecContext returns a context to the pool. Scratch buffers are kept;
// everything referencing caller-visible state is dropped first.
func putExecContext(ec *execContext) {
	ec.db, ec.q, ec.t, ec.cache = nil, nil, nil, nil
	ec.res = nil
	ec.baseRows = nil
	ec.points = nil
	ec.yield = nil
	for i := range ec.lists {
		ec.lists[i] = nil
	}
	ec.lists = ec.lists[:0]
	ec.cur = Cursor{}
	ecPool.Put(ec)
}

// Run executes q with hint h and returns the result plus execution stats
// including the virtual execution time. The engine follows forced hints
// exactly; with an empty hint the optimizer chooses the plan.
//
// Run is safe for concurrent use: executions only read table data and
// indexes, and the lazily-built statistics cache is mutex-protected.
func (db *DB) Run(q *Query, h Hint) (*Result, ExecStats, error) {
	return db.RunCached(q, h, nil)
}

// RunCached is Run with an optional per-workload predicate-lookup cache.
// When several plans of the same query are executed (Maliva's offline
// experience collection runs every rewritten query RQ_i), the index lookups
// for identical predicates are memoized instead of re-scanned. A nil cache
// disables memoization. The cache is safe for concurrent use.
func (db *DB) RunCached(q *Query, h Hint, cache *LookupCache) (*Result, ExecStats, error) {
	return db.RunCachedYield(q, h, cache, nil)
}

// RunCachedYield is RunCached with an optional cooperative-yield hook,
// called every few thousand rows of scan/probe work. Background executions
// (speculative prefetch) pass runtime.Gosched so they hand the processor
// back to live requests between chunks — on a small GOMAXPROCS a single
// unyielding execution otherwise holds a P for a full async-preemption
// quantum (~10ms) and inflates the tail latency of everything concurrent.
// A nil yield is exactly RunCached.
//
// A yield hook may also cancel the execution by calling AbortExec (the
// serving layer does this when the client has disconnected): the executor
// unwinds at the stride boundary, recycles its context, and returns the
// abort cause — a cooperative cancel with zero cost on the non-canceled path.
func (db *DB) RunCachedYield(q *Query, h Hint, cache *LookupCache, yield func()) (res *Result, stats ExecStats, err error) {
	t, err := db.resolveTable(q)
	if err != nil {
		return nil, ExecStats{}, err
	}
	if err := q.Approx.validate(q); err != nil {
		return nil, ExecStats{}, err
	}
	if q.Approx.Method.IsSketch() {
		// Summary-served aggregates never touch rows or plans.
		return db.runSketch(q, t)
	}
	positions := h.UseIndex
	join := h.Join
	forced := h.Forced
	if forced && db.Profile.HintDropProb > 0 {
		// Challenge C2: the backend may ignore hints. Deterministic per
		// (seed, plan identity) so repeated runs agree.
		u := float64(mix64(uint64(db.Seed)^planFingerprint(q, positions, join))%100000) / 100000
		if u < db.Profile.HintDropProb {
			forced = false
		}
	}
	if !forced {
		pe := db.ChoosePlan(q)
		positions = pe.Positions
		if join == JoinAuto {
			join = pe.Join
		}
	}
	for _, pos := range positions {
		if pos < 0 || pos >= len(q.Preds) {
			return nil, ExecStats{}, fmt.Errorf("engine: hint position %d out of range (%d preds)", pos, len(q.Preds))
		}
		if t.Index(q.Preds[pos].Col) == nil {
			return nil, ExecStats{}, fmt.Errorf("engine: hint forces index on %q but none exists", q.Preds[pos].Col)
		}
	}
	weight := 1.0
	if q.SamplePercent > 0 {
		weight = 100.0 / float64(q.SamplePercent)
	}
	if q.Approx.Method == ApproxRows {
		weight = 1 / q.Approx.Rate
	}
	ec := getExecContext()
	defer func() {
		if r := recover(); r != nil {
			ab, ok := r.(execAbort)
			if !ok {
				panic(r)
			}
			putExecContext(ec)
			res, stats, err = nil, ExecStats{}, ab.err
		}
	}()
	ec.db = db
	ec.q = q
	ec.t = t
	ec.cache = cache
	ec.yield = yield
	ec.res = &Result{Weight: weight}
	ec.limit = q.Limit
	if q.Bin != nil {
		ec.res.Bins = make(map[int]float64)
	}
	if q.Approx.Method == ApproxRows || q.Approx.Method == ApproxReservoir {
		ec.keepSeed = q.Approx.effSeed(db.Seed, q)
		if q.Approx.Method == ApproxRows {
			ec.sampling = true
			ec.keepThresh = keepThreshold(q.Approx.Rate)
		}
	}
	// Resolve emit-time projection state once per execution.
	if t.SampleOf != nil {
		ec.baseRows = t.Col("__base_row").Ints
	}
	pointCol := ""
	if q.Bin != nil {
		pointCol = q.Bin.Col
	} else {
		for _, oc := range q.OutputCols {
			if t.HasColumn(oc) && t.Col(oc).Type == ColPoint {
				pointCol = oc
				break
			}
		}
	}
	if pointCol != "" {
		ec.points = t.Col(pointCol).Points
	}
	candidates, err := ec.access(positions)
	if err != nil {
		putExecContext(ec)
		return nil, ExecStats{}, err
	}
	switch {
	case q.Approx.Method == ApproxReservoir:
		ec.reservoirEmit(candidates)
	case q.Join == nil:
		ec.emitAll(candidates)
	default:
		if err := ec.join(candidates, join); err != nil {
			putExecContext(ec)
			return nil, ExecStats{}, err
		}
	}
	if q.Approx.Method != ApproxOff {
		ec.res.Approx = true
		ec.res.SampledRows = len(ec.res.RowIDs)
	}
	ec.stats.RowsOutput = len(ec.res.RowIDs)
	ec.stats.SimMs = db.Profile.Cost.simMs(ec.stats, t.ScaleFactor)
	ec.stats.SimMs *= db.Profile.noiseFactor(db.Seed, planFingerprint(q, positions, join))
	res, stats = ec.res, ec.stats
	putExecContext(ec)
	return res, stats, nil
}

// resolveTable maps the query to its base table or sample table.
func (db *DB) resolveTable(q *Query) (*Table, error) {
	t, ok := db.Tables[q.Table]
	if !ok {
		return nil, fmt.Errorf("engine: unknown table %q", q.Table)
	}
	if q.SamplePercent > 0 {
		s, ok := t.Samples[q.SamplePercent]
		if !ok {
			return nil, fmt.Errorf("engine: table %q has no %d%% sample (call BuildSample first)", q.Table, q.SamplePercent)
		}
		return s, nil
	}
	return t, nil
}

// lookup serves one predicate's index scan, through the memoization cache
// when one is attached (a nil cache falls through to the direct scan).
func (ec *execContext) lookup(ix *Index, p Predicate) ([]uint32, int, error) {
	return ec.cache.lookup(ec.t, ix, p)
}

// access returns the main-table candidate rows that satisfy all predicates,
// using index scans on the given positions. With a LIMIT and no join, it
// stops early once enough rows qualify. The returned slice aliases pooled
// scratch memory and is only valid until the execution finishes.
func (ec *execContext) access(positions []int) ([]uint32, error) {
	q, t := ec.q, ec.t
	earlyLimit := ec.limit
	if q.Join != nil {
		earlyLimit = 0 // join may reject rows; cannot stop early here
	}
	if len(positions) == 0 {
		return ec.seqScan(earlyLimit), nil
	}
	// Index scans. Predicate positions fit in a bitmask (hint masks are
	// uint32), so residual tracking needs no map.
	ec.lists = ec.lists[:0]
	var usedMask uint64
	for _, pos := range positions {
		ix := t.Index(q.Preds[pos].Col)
		rows, entries, err := ec.lookup(ix, q.Preds[pos])
		if err != nil {
			return nil, err
		}
		ec.stats.IndexEntries += entries
		ec.lists = append(ec.lists, rows)
		usedMask |= 1 << uint(pos)
		if ec.yield != nil {
			ec.yield() // index scans are the longest unchunkable phase
		}
	}
	// Intersect smallest-first, ping-ponging between two scratch buffers so
	// no intersection allocates. The buffers stay distinct arrays: each
	// intersection reads the previous result while writing the other buffer.
	slices.SortFunc(ec.lists, func(a, b []uint32) int { return len(a) - len(b) })
	acc := ec.lists[0]
	useA := true
	for _, l := range ec.lists[1:] {
		var work int
		if useA {
			ec.accA, work = intersectSortedInto(ec.accA[:0], acc, l)
			acc = ec.accA
		} else {
			ec.accB, work = intersectSortedInto(ec.accB[:0], acc, l)
			acc = ec.accB
		}
		useA = !useA
		ec.stats.IntersectOps += work
		if ec.yield != nil {
			ec.yield()
		}
	}
	// Fetch candidates, evaluate residual predicates. Under row sampling
	// the keep decision comes before the fetch, so the virtual cost of the
	// fetch+residual phase scales with the sampling rate (the posting-list
	// work above is already paid — it is the cheap part of the plan).
	out := ec.cand[:0]
	for _, r := range acc {
		ec.maybeYield()
		if ec.sampling && !keepRow(ec.keepSeed, r, ec.keepThresh) {
			continue
		}
		ec.stats.RowsFetched++
		ok := true
		for i, p := range q.Preds {
			if usedMask&(1<<uint(i)) != 0 {
				continue
			}
			ec.stats.PredEvals++
			if !p.Eval(t, r) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, r)
			if earlyLimit > 0 && len(out) >= earlyLimit {
				ec.res.Truncated = true
				break
			}
		}
	}
	ec.cand = out
	return out, nil
}

// seqScan scans the whole table, evaluating all predicates per row. The
// returned slice aliases pooled scratch memory.
func (ec *execContext) seqScan(earlyLimit int) []uint32 {
	q, t := ec.q, ec.t
	out := ec.cand[:0]
	for r := 0; r < t.Rows; r++ {
		ec.maybeYield()
		// Row sampling skips before the per-row cost accrues: the virtual
		// clock treats the sample as a block-sampled scan whose cost is
		// Rate × the full scan, which is what makes "approximate now" fit
		// budgets the exact scan blows.
		if ec.sampling && !keepRow(ec.keepSeed, uint32(r), ec.keepThresh) {
			continue
		}
		ec.stats.RowsScanned++
		ok := true
		for _, p := range q.Preds {
			if !p.Eval(t, uint32(r)) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, uint32(r))
			if earlyLimit > 0 && len(out) >= earlyLimit {
				ec.res.Truncated = true
				break
			}
		}
	}
	ec.cand = out
	return out
}

// join matches candidate left rows against the inner table and emits
// qualifying rows, honoring the LIMIT.
func (ec *execContext) join(candidates []uint32, method JoinMethod) error {
	q, t := ec.q, ec.t
	inner, ok := ec.db.Tables[q.Join.Table]
	if !ok {
		return fmt.Errorf("engine: unknown join table %q", q.Join.Table)
	}
	leftKeys := t.Col(q.Join.LeftCol)
	if method == JoinAuto {
		method = NestLoopJoin
	}
	switch method {
	case NestLoopJoin:
		ix := inner.Index(q.Join.RightCol)
		if ix == nil || ix.Kind != IndexBTree {
			return fmt.Errorf("engine: nest-loop join needs a btree index on %s.%s", inner.Name, q.Join.RightCol)
		}
		// Probe keys arrive in candidate (row-id) order, so most probes
		// re-descend; the pooled cursor still removes the per-probe match
		// slice the old Range call materialized.
		ec.cur.Reset(ix.btree)
		for _, lr := range candidates {
			ec.maybeYield()
			ec.stats.NestProbes++
			if ec.probeInner(inner, leftKeys.NumericAt(lr), lr) {
				if ec.limitReached() {
					return nil
				}
			}
		}
	case HashJoin:
		// Build side: scan inner, filter, hash on key. A probe only needs to
		// know whether any qualifying inner row carries the key, so the table
		// is a pooled key set rather than per-key row lists — the join path
		// stays allocation-free across executions (stats are unchanged, so
		// the virtual cost model is too).
		if ec.ht == nil {
			ec.ht = make(map[float64]struct{})
		} else {
			clear(ec.ht)
		}
		innerKeys := inner.Col(q.Join.RightCol)
		for r := 0; r < inner.Rows; r++ {
			ec.maybeYield()
			ec.stats.RowsScanned++
			pass := true
			for _, p := range q.Join.Preds {
				if !p.Eval(inner, uint32(r)) {
					pass = false
					break
				}
			}
			if pass {
				ec.stats.HashBuilds++
				ec.ht[innerKeys.NumericAt(uint32(r))] = struct{}{}
			}
		}
		for _, lr := range candidates {
			ec.stats.HashProbes++
			if _, hit := ec.ht[leftKeys.NumericAt(lr)]; hit {
				ec.emit(lr)
				if ec.limitReached() {
					return nil
				}
			}
		}
	case MergeJoin:
		// Left side sorted by key; inner side read in key order via index.
		// The sort buffer is pooled scratch, reused across executions.
		left := ec.kvs[:0]
		for _, lr := range candidates {
			left = append(left, joinKV{leftKeys.NumericAt(lr), lr})
		}
		ec.kvs = left
		slices.SortFunc(left, func(a, b joinKV) int {
			switch {
			case a.key < b.key:
				return -1
			case a.key > b.key:
				return 1
			default:
				return 0
			}
		})
		n := float64(len(left))
		if n > 1 {
			ec.stats.SortUnits += int(n * math.Log2(n))
		}
		ix := inner.Index(q.Join.RightCol)
		if ix == nil || ix.Kind != IndexBTree {
			return fmt.Errorf("engine: merge join needs a btree index on %s.%s", inner.Name, q.Join.RightCol)
		}
		// True streaming merge: the left side is sorted, so the cursor
		// resumes from its current leaf position (rewinding for duplicate
		// left keys) instead of re-descending per probe. Seek charges the
		// synthetic descent cost either way, keeping IndexEntries identical
		// to the descent-per-probe path.
		ec.cur.Reset(ix.btree)
		for _, l := range left {
			ec.maybeYield()
			if ec.probeInner(inner, l.key, l.row) {
				if ec.limitReached() {
					return nil
				}
			}
		}
	default:
		return fmt.Errorf("engine: unsupported join method %v", method)
	}
	return nil
}

// probeInner streams one equality probe through the pooled cursor: it
// evaluates inner predicates against matching inner rows until one qualifies,
// then emits the left row. The drain always runs to the probe's end even
// after a qualifying row — the per-probe slot walk is what IndexEntries
// charges, and it must match what a materializing Range scan reported —
// but predicate evaluation stops at the first pass, exactly like the old
// slice-based match loop. Returns whether the left row was emitted.
func (ec *execContext) probeInner(inner *Table, key float64, leftRow uint32) bool {
	ec.cur.Seek(key)
	emitted := false
	for {
		ir, ok := ec.cur.Next(key)
		if !ok {
			break
		}
		if emitted {
			continue
		}
		pass := true
		for _, p := range ec.q.Join.Preds {
			ec.stats.PredEvals++
			if !p.Eval(inner, ir) {
				pass = false
				break
			}
		}
		if pass {
			ec.emit(leftRow)
			emitted = true
		}
	}
	ec.stats.IndexEntries += ec.cur.Entries()
	return emitted
}

// reservoirEmit draws the K-row Algorithm R sample of the candidate set and
// emits it. Candidates arrive in ascending row order from every access path
// (seqScan scans forward; posting lists are sorted and intersection/fetch
// preserve order), and the PRNG stream is a pure function of the sampling
// seed, so the drawn sample — and therefore the output bytes — is
// independent of the physical plan. The matched count is exact; per-row
// weight matched/K makes the scaled per-cell counts unbiased.
func (ec *execContext) reservoirEmit(candidates []uint32) {
	k := ec.q.Approx.K
	matched := len(candidates)
	ec.res.MatchedRows = matched
	if matched <= k {
		ec.emitAll(candidates)
		return
	}
	rng := sprng{state: ec.keepSeed}
	res := ec.resv[:0]
	res = append(res, candidates[:k]...)
	for i := k; i < matched; i++ {
		ec.maybeYield()
		if j := rng.next() % uint64(i+1); j < uint64(k) {
			res[j] = candidates[i]
		}
	}
	ec.resv = res
	slices.Sort(res)
	ec.res.Weight = float64(matched) / float64(k)
	for _, r := range res {
		ec.emit(r)
	}
}

// emitAll emits every candidate row (no join), honoring the LIMIT.
func (ec *execContext) emitAll(candidates []uint32) {
	for _, r := range candidates {
		ec.maybeYield()
		ec.emit(r)
		if ec.limitReached() {
			return
		}
	}
}

// emit adds one output row: translates sample ids to base ids, projects the
// point column, and updates bins. The column resolution happened once in
// RunCached, so this is branch-and-append only.
func (ec *execContext) emit(row uint32) {
	baseID := row
	if ec.baseRows != nil {
		baseID = uint32(ec.baseRows[row])
	}
	ec.res.RowIDs = append(ec.res.RowIDs, baseID)
	if ec.points != nil {
		p := ec.points[row]
		ec.res.Points = append(ec.res.Points, p)
		if ec.q.Bin != nil {
			ec.res.Bins[binID(ec.q.Bin, p)] += ec.res.Weight
		}
	}
}

// limitReached reports whether the LIMIT has been hit, marking truncation.
func (ec *execContext) limitReached() bool {
	if ec.limit > 0 && len(ec.res.RowIDs) >= ec.limit {
		ec.res.Truncated = true
		return true
	}
	return false
}

// binID maps a point to its grid cell id (-1 when outside the extent).
func binID(b *BinSpec, p Point) int {
	w := b.Extent.MaxLon - b.Extent.MinLon
	h := b.Extent.MaxLat - b.Extent.MinLat
	if w <= 0 || h <= 0 || !b.Extent.Contains(p) {
		return -1
	}
	x := int(float64(b.W) * (p.Lon - b.Extent.MinLon) / w)
	y := int(float64(b.H) * (p.Lat - b.Extent.MinLat) / h)
	if x >= b.W {
		x = b.W - 1
	}
	if y >= b.H {
		y = b.H - 1
	}
	return y*b.W + x
}

// planFingerprint hashes the plan identity for deterministic noise.
func planFingerprint(q *Query, positions []int, join JoinMethod) uint64 {
	var h uint64 = 1469598103934665603 // FNV offset
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	for _, c := range q.Table {
		mix(uint64(c))
	}
	for _, p := range positions {
		mix(uint64(p) + 101)
	}
	mix(uint64(join) + 7)
	mix(uint64(q.Limit) + 13)
	mix(uint64(q.SamplePercent) + 17)
	// Approximate-tier clause: mixed only when present, so every exact
	// query's fingerprint — and with it the hint-drop and noise draws the
	// golden traces pin — is byte-for-byte what it was before the tier
	// existed.
	if q.Approx.Method != ApproxOff {
		mix(uint64(q.Approx.Method) + 53)
		mix(uint64(int64(q.Approx.Rate*1e6)) + 59)
		mix(uint64(q.Approx.K) + 61)
		mix(q.Approx.Seed + 67)
	}
	for _, p := range q.Preds {
		mix(uint64(p.Kind))
		mix(uint64(p.Word))
		mix(uint64(int64(p.Lo*1e3)) + 31)
		mix(uint64(int64(p.Hi*1e3)) + 37)
		mix(uint64(int64(p.Box.MinLon*1e3)) + 41)
		mix(uint64(int64(p.Box.MaxLat*1e3)) + 43)
	}
	return h
}
