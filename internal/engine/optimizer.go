package engine

import (
	"math"
	"sort"
)

// PlanEstimate is the optimizer's view of one physical plan: its estimated
// cost, cardinalities, and structure. Bao's QTE consumes these as features,
// inheriting the optimizer's estimation errors exactly as in the paper.
type PlanEstimate struct {
	Positions []int      // predicate positions served by index scans
	Join      JoinMethod // resolved join method (JoinAuto when no join)
	EstMs     float64    // estimated execution time (virtual ms)
	EstRows   float64    // estimated output cardinality at real scale
	EstSels   []float64  // estimated selectivity per main-table predicate
}

// indexablePositions returns the predicate positions that have a matching
// index on the table.
func indexablePositions(t *Table, q *Query) []int {
	var out []int
	for i, p := range q.Preds {
		ix := t.Index(p.Col)
		if ix == nil {
			continue
		}
		switch {
		case ix.Kind == IndexBTree && p.Kind == PredRange,
			ix.Kind == IndexRTree && p.Kind == PredGeo,
			ix.Kind == IndexInverted && p.Kind == PredKeyword:
			out = append(out, i)
		}
	}
	return out
}

// estimateAccess computes the estimated cost and cardinality of accessing
// the main table with index scans on the given positions, using the given
// per-predicate selectivities (estimated or true).
func estimateAccess(m CostModel, nReal float64, sels []float64, positions []int) (ms, outRows float64) {
	if len(positions) == 0 {
		out := nReal
		for _, s := range sels {
			out *= s
		}
		us := nReal * m.FullScanRowUS
		return m.StartupMs + us/1000, out
	}
	candidates := nReal
	var entries float64
	for _, pos := range positions {
		entries += sels[pos] * nReal
		candidates *= sels[pos]
	}
	residual := 0
	for i := range sels {
		used := false
		for _, pos := range positions {
			if pos == i {
				used = true
				break
			}
		}
		if !used {
			residual++
		}
	}
	out := candidates
	for i, s := range sels {
		used := false
		for _, pos := range positions {
			if pos == i {
				used = true
				break
			}
		}
		if !used {
			out *= s
		}
		_ = i
	}
	us := entries*m.IndexEntryUS +
		entries*m.IntersectUS + // merge pass over all postings
		candidates*m.FetchUS +
		candidates*float64(residual)*m.PredEvalUS +
		out*m.OutputUS
	return m.StartupMs + us/1000, out
}

// estimateJoin adds the estimated cost of joining leftRows output rows with
// the inner table using the given method.
func estimateJoin(m CostModel, method JoinMethod, leftRows, innerReal, innerSel float64) float64 {
	matched := innerSel // fraction of probes that survive inner predicates
	switch method {
	case NestLoopJoin:
		us := leftRows*m.NestProbeUS + leftRows*m.PredEvalUS
		return us / 1000
	case HashJoin:
		us := innerReal*m.FullScanRowUS + innerReal*innerSel*m.HashBuildUS + leftRows*m.HashProbeUS
		return us / 1000
	case MergeJoin:
		// Inner side is read in key order via its index; left side is sorted.
		sortUnits := leftRows * math.Log2(math.Max(2, leftRows))
		us := sortUnits*m.SortUS + innerReal*m.IndexEntryUS + leftRows*m.PredEvalUS
		return us / 1000
	}
	_ = matched
	return 0
}

// ChoosePlan is the optimizer: it enumerates all index subsets (and join
// methods) and returns the plan with the lowest *estimated* cost. The
// estimates use the coarse statistics in TableStats, so the choice is often
// wrong for textual and spatial conditions — by design (see DESIGN.md §3).
func (db *DB) ChoosePlan(q *Query) PlanEstimate {
	return db.bestPlan(q, db.statsFor(q.Table).estimateSels(q))
}

// EstimatePlan returns the optimizer's estimate for one specific hint,
// without choosing. Bao featurizes these. An unforced hint falls back to the
// optimizer's own choice, as the backend would.
func (db *DB) EstimatePlan(q *Query, h Hint) PlanEstimate {
	if !h.Forced {
		pe := db.ChoosePlan(q)
		if h.Join != JoinAuto {
			pe.Join = h.Join
		}
		return pe
	}
	sels := db.statsFor(q.Table).estimateSels(q)
	t := db.table(q.Table)
	return db.planEstimate(q, t, sels, h.UseIndex, h.Join)
}

// estimateSels returns the optimizer's selectivity estimates for all main
// predicates of q.
func (st *TableStats) estimateSels(q *Query) []float64 {
	sels := make([]float64, len(q.Preds))
	for i, p := range q.Preds {
		sels[i] = st.EstimateSelectivity(p)
	}
	return sels
}

// bestPlan enumerates subsets of indexable predicates × join methods.
func (db *DB) bestPlan(q *Query, sels []float64) PlanEstimate {
	t := db.table(q.Table)
	idxable := indexablePositions(t, q)
	best := PlanEstimate{EstMs: math.Inf(1)}
	n := len(idxable)
	maxIdx := db.Profile.OptimizerMaxIndexes
	for mask := 0; mask < 1<<uint(n); mask++ {
		if maxIdx > 0 && popcount(mask) > maxIdx {
			continue
		}
		var positions []int
		for b := 0; b < n; b++ {
			if mask&(1<<uint(b)) != 0 {
				positions = append(positions, idxable[b])
			}
		}
		methods := []JoinMethod{JoinAuto}
		if q.Join != nil {
			methods = []JoinMethod{NestLoopJoin, HashJoin, MergeJoin}
		}
		for _, jm := range methods {
			pe := db.planEstimate(q, t, sels, positions, jm)
			if pe.EstMs < best.EstMs {
				best = pe
			}
		}
	}
	return best
}

// popcount returns the number of set bits in a small mask.
func popcount(m int) int {
	n := 0
	for m != 0 {
		m &= m - 1
		n++
	}
	return n
}

// planEstimate computes the full estimate for one (positions, join) plan.
func (db *DB) planEstimate(q *Query, t *Table, sels []float64, positions []int, jm JoinMethod) PlanEstimate {
	nReal := t.RealRows()
	if q.SamplePercent > 0 {
		nReal *= float64(q.SamplePercent) / 100
	}
	m := db.Profile.Cost
	ms, outRows := estimateAccess(m, nReal, sels, positions)
	if q.Join != nil {
		inner := db.table(q.Join.Table)
		innerStats := db.statsFor(q.Join.Table)
		innerSel := 1.0
		for _, p := range q.Join.Preds {
			innerSel *= innerStats.EstimateSelectivity(p)
		}
		if jm == JoinAuto {
			jm = NestLoopJoin
		}
		ms += estimateJoin(m, jm, outRows, inner.RealRows(), innerSel)
		outRows *= innerSel
	}
	if q.Limit > 0 && outRows > float64(q.Limit) {
		// Early termination: assume cost shrinks proportionally for the
		// fetch-dominated part. Keep it simple and scale the whole estimate.
		frac := float64(q.Limit) / outRows
		ms = m.StartupMs + (ms-m.StartupMs)*math.Max(frac, 0.01)
		outRows = float64(q.Limit)
	}
	pos := append([]int(nil), positions...)
	sort.Ints(pos)
	return PlanEstimate{
		Positions: pos,
		Join:      jm,
		EstMs:     ms,
		EstRows:   outRows,
		EstSels:   append([]float64(nil), sels...),
	}
}
