package engine

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// bruteRange computes the expected row set for [lo, hi] directly.
func bruteRange(keys []float64, lo, hi float64) []uint32 {
	var out []uint32
	for i, k := range keys {
		if k >= lo && k <= hi {
			out = append(out, uint32(i))
		}
	}
	return out
}

func sortedCopy(rows []uint32) []uint32 {
	cp := append([]uint32(nil), rows...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return cp
}

func equalRows(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBTreeRangeMatchesBruteForce is a property test: for random key sets
// and random ranges, the B+-tree range scan returns exactly the brute-force
// row set.
func TestBTreeRangeMatchesBruteForce(t *testing.T) {
	prop := func(seed int64, n uint16, loRaw, hiRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n)%500 + 1
		keys := make([]float64, size)
		rows := make([]uint32, size)
		for i := range keys {
			keys[i] = float64(rng.Intn(100)) // duplicates on purpose
			rows[i] = uint32(i)
		}
		tree := NewBTree(keys, rows)
		lo, hi := loRaw, hiRaw
		if lo > hi {
			lo, hi = hi, lo
		}
		// Map raw floats into the key domain.
		lo = float64(int(lo) % 120)
		hi = lo + float64(int(hi)%50)
		got, entries := tree.Range(lo, hi)
		if entries <= 0 {
			return false
		}
		return equalRows(sortedCopy(got), bruteRange(keys, lo, hi))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBTreeInsertMatchesBulk verifies that incremental inserts produce the
// same range results as bulk loading.
func TestBTreeInsertMatchesBulk(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := rng.Intn(800) + 1
		keys := make([]float64, size)
		rows := make([]uint32, size)
		for i := range keys {
			keys[i] = float64(rng.Intn(200))
			rows[i] = uint32(i)
		}
		bulk := NewBTree(keys, rows)
		inc := NewBTree(nil, nil)
		for i := range keys {
			inc.Insert(keys[i], rows[i])
		}
		if inc.Len() != bulk.Len() {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			lo := float64(rng.Intn(220) - 10)
			hi := lo + float64(rng.Intn(60))
			a, _ := bulk.Range(lo, hi)
			b, _ := inc.Range(lo, hi)
			if !equalRows(sortedCopy(a), sortedCopy(b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeEmpty(t *testing.T) {
	tree := NewBTree(nil, nil)
	rows, entries := tree.Range(0, 100)
	if len(rows) != 0 {
		t.Errorf("empty tree returned %d rows", len(rows))
	}
	if entries < 1 {
		t.Errorf("expected at least the root visit, got %d", entries)
	}
	if tree.Len() != 0 || tree.Height() != 1 {
		t.Errorf("empty tree: Len=%d Height=%d", tree.Len(), tree.Height())
	}
}

func TestBTreeHeightGrows(t *testing.T) {
	n := btreeOrder*btreeOrder + 1 // forces at least three levels
	keys := make([]float64, n)
	rows := make([]uint32, n)
	for i := range keys {
		keys[i] = float64(i)
		rows[i] = uint32(i)
	}
	tree := NewBTree(keys, rows)
	if h := tree.Height(); h < 3 {
		t.Errorf("height %d, want ≥3 for %d keys", h, n)
	}
	// Point lookups still work at depth.
	for _, probe := range []float64{0, float64(n / 2), float64(n - 1)} {
		got, _ := tree.Range(probe, probe)
		if len(got) != 1 || got[0] != uint32(probe) {
			t.Errorf("Range(%v,%v) = %v", probe, probe, got)
		}
	}
}

func TestBTreeCountRange(t *testing.T) {
	keys := []float64{1, 2, 2, 3, 5, 8}
	rows := []uint32{0, 1, 2, 3, 4, 5}
	tree := NewBTree(keys, rows)
	for _, tc := range []struct {
		lo, hi float64
		want   int
	}{
		{1, 3, 4}, {2, 2, 2}, {4, 7, 1}, {9, 10, 0}, {-5, 100, 6},
	} {
		if got := tree.CountRange(tc.lo, tc.hi); got != tc.want {
			t.Errorf("CountRange(%v,%v) = %d, want %d", tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestBTreeMismatchedInputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched keys/rows")
		}
	}()
	NewBTree([]float64{1, 2}, []uint32{0})
}
