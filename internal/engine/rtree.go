package engine

import (
	"math"
	"sort"
)

// rtreeFanout is the maximum number of entries per R-tree node.
const rtreeFanout = 64

// RTree is a spatial index over points, bulk-loaded with the
// Sort-Tile-Recursive (STR) algorithm. It answers box queries and reports the
// amount of work done so the executor can cost index scans.
type RTree struct {
	root *rtreeNode
	size int
}

type rtreeNode struct {
	leaf     bool
	box      Rect
	children []*rtreeNode // internal
	points   []Point      // leaf, parallel to rows
	rows     []uint32     // leaf
}

// NewRTree bulk-loads an R-tree from points; rows[i] is the row id of
// points[i].
func NewRTree(points []Point, rows []uint32) *RTree {
	if len(points) != len(rows) {
		panic("engine: NewRTree points/rows length mismatch")
	}
	t := &RTree{size: len(points)}
	if len(points) == 0 {
		t.root = &rtreeNode{leaf: true, box: Rect{}}
		return t
	}
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	leaves := strPack(points, rows, idx)
	level := leaves
	for len(level) > 1 {
		level = strPackNodes(level)
	}
	t.root = level[0]
	return t
}

// strPack tiles points into leaf nodes: sort by lon, slice into vertical
// strips, sort each strip by lat, pack runs of rtreeFanout.
func strPack(points []Point, rows []uint32, idx []int) []*rtreeNode {
	sort.Slice(idx, func(a, b int) bool { return points[idx[a]].Lon < points[idx[b]].Lon })
	n := len(idx)
	leafCount := (n + rtreeFanout - 1) / rtreeFanout
	stripCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	stripSize := ((n + stripCount - 1) / stripCount)
	var leaves []*rtreeNode
	for s := 0; s < n; s += stripSize {
		e := s + stripSize
		if e > n {
			e = n
		}
		strip := idx[s:e]
		sort.Slice(strip, func(a, b int) bool { return points[strip[a]].Lat < points[strip[b]].Lat })
		for ls := 0; ls < len(strip); ls += rtreeFanout {
			le := ls + rtreeFanout
			if le > len(strip) {
				le = len(strip)
			}
			leaf := &rtreeNode{leaf: true}
			leaf.box = PointRect(points[strip[ls]])
			for _, i := range strip[ls:le] {
				leaf.points = append(leaf.points, points[i])
				leaf.rows = append(leaf.rows, rows[i])
				leaf.box = leaf.box.Extend(PointRect(points[i]))
			}
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

// strPackNodes packs child nodes into parents using the same STR tiling over
// child box centers.
func strPackNodes(nodes []*rtreeNode) []*rtreeNode {
	idx := make([]int, len(nodes))
	for i := range idx {
		idx[i] = i
	}
	center := func(i int) Point {
		b := nodes[i].box
		return Point{Lon: (b.MinLon + b.MaxLon) / 2, Lat: (b.MinLat + b.MaxLat) / 2}
	}
	sort.Slice(idx, func(a, b int) bool { return center(idx[a]).Lon < center(idx[b]).Lon })
	n := len(idx)
	parentCount := (n + rtreeFanout - 1) / rtreeFanout
	stripCount := int(math.Ceil(math.Sqrt(float64(parentCount))))
	stripSize := ((n + stripCount - 1) / stripCount)
	var parents []*rtreeNode
	for s := 0; s < n; s += stripSize {
		e := s + stripSize
		if e > n {
			e = n
		}
		strip := idx[s:e]
		sort.Slice(strip, func(a, b int) bool { return center(strip[a]).Lat < center(strip[b]).Lat })
		for ps := 0; ps < len(strip); ps += rtreeFanout {
			pe := ps + rtreeFanout
			if pe > len(strip) {
				pe = len(strip)
			}
			p := &rtreeNode{box: nodes[strip[ps]].box}
			for _, i := range strip[ps:pe] {
				p.children = append(p.children, nodes[i])
				p.box = p.box.Extend(nodes[i].box)
			}
			parents = append(parents, p)
		}
	}
	return parents
}

// Len returns the number of indexed points.
func (t *RTree) Len() int { return t.size }

// Search returns row ids of points inside box, plus the number of node
// entries examined (for costing).
func (t *RTree) Search(box Rect) (rows []uint32, entries int) {
	var walk func(n *rtreeNode)
	walk = func(n *rtreeNode) {
		entries++
		if !n.box.Intersects(box) {
			return
		}
		if n.leaf {
			for i, p := range n.points {
				entries++
				if box.Contains(p) {
					rows = append(rows, n.rows[i])
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	return rows, entries
}
