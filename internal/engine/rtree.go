package engine

import (
	"math"
	"sort"
)

// rtreeFanout is the maximum number of entries per R-tree node.
const rtreeFanout = 64

// RTree is a spatial index over points, bulk-loaded with the
// Sort-Tile-Recursive (STR) algorithm. It answers box queries and reports the
// amount of work done so the executor can cost index scans.
type RTree struct {
	root *rtreeNode
	size int
}

type rtreeNode struct {
	leaf     bool
	box      Rect
	children []*rtreeNode // internal
	points   []Point      // leaf, parallel to rows
	rows     []uint32     // leaf
}

// NewRTree bulk-loads an R-tree from points; rows[i] is the row id of
// points[i].
func NewRTree(points []Point, rows []uint32) *RTree {
	if len(points) != len(rows) {
		panic("engine: NewRTree points/rows length mismatch")
	}
	t := &RTree{size: len(points)}
	if len(points) == 0 {
		t.root = &rtreeNode{leaf: true, box: Rect{}}
		return t
	}
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	leaves := strPack(points, rows, idx)
	level := leaves
	for len(level) > 1 {
		level = strPackNodes(level)
	}
	t.root = level[0]
	return t
}

// strPack tiles points into leaf nodes: sort by lon, slice into vertical
// strips, sort each strip by lat, pack runs of rtreeFanout.
func strPack(points []Point, rows []uint32, idx []int) []*rtreeNode {
	sort.Slice(idx, func(a, b int) bool { return points[idx[a]].Lon < points[idx[b]].Lon })
	n := len(idx)
	leafCount := (n + rtreeFanout - 1) / rtreeFanout
	stripCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	stripSize := ((n + stripCount - 1) / stripCount)
	var leaves []*rtreeNode
	for s := 0; s < n; s += stripSize {
		e := s + stripSize
		if e > n {
			e = n
		}
		strip := idx[s:e]
		sort.Slice(strip, func(a, b int) bool { return points[strip[a]].Lat < points[strip[b]].Lat })
		for ls := 0; ls < len(strip); ls += rtreeFanout {
			le := ls + rtreeFanout
			if le > len(strip) {
				le = len(strip)
			}
			leaf := &rtreeNode{leaf: true}
			leaf.box = PointRect(points[strip[ls]])
			for _, i := range strip[ls:le] {
				leaf.points = append(leaf.points, points[i])
				leaf.rows = append(leaf.rows, rows[i])
				leaf.box = leaf.box.Extend(PointRect(points[i]))
			}
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

// strPackNodes packs child nodes into parents using the same STR tiling over
// child box centers.
func strPackNodes(nodes []*rtreeNode) []*rtreeNode {
	idx := make([]int, len(nodes))
	for i := range idx {
		idx[i] = i
	}
	center := func(i int) Point {
		b := nodes[i].box
		return Point{Lon: (b.MinLon + b.MaxLon) / 2, Lat: (b.MinLat + b.MaxLat) / 2}
	}
	sort.Slice(idx, func(a, b int) bool { return center(idx[a]).Lon < center(idx[b]).Lon })
	n := len(idx)
	parentCount := (n + rtreeFanout - 1) / rtreeFanout
	stripCount := int(math.Ceil(math.Sqrt(float64(parentCount))))
	stripSize := ((n + stripCount - 1) / stripCount)
	var parents []*rtreeNode
	for s := 0; s < n; s += stripSize {
		e := s + stripSize
		if e > n {
			e = n
		}
		strip := idx[s:e]
		sort.Slice(strip, func(a, b int) bool { return center(strip[a]).Lat < center(strip[b]).Lat })
		for ps := 0; ps < len(strip); ps += rtreeFanout {
			pe := ps + rtreeFanout
			if pe > len(strip) {
				pe = len(strip)
			}
			p := &rtreeNode{box: nodes[strip[ps]].box}
			for _, i := range strip[ps:pe] {
				p.children = append(p.children, nodes[i])
				p.box = p.box.Extend(nodes[i].box)
			}
			parents = append(parents, p)
		}
	}
	return parents
}

// Len returns the number of indexed points.
func (t *RTree) Len() int { return t.size }

// Insert adds one (point,row) entry, splitting nodes as needed. The
// insertion path is chosen by least box enlargement (ties broken by smaller
// area, then first child), and overflowing nodes split deterministically, so
// the tree shape — and therefore the entries-touched counts Search reports —
// is a pure function of the construction history. Incrementally grown trees
// are equivalent to bulk-loaded trees in *results*, not in shape, which is
// why byte-identity across replicas requires replaying the same inserts.
func (t *RTree) Insert(p Point, row uint32) {
	if t.size == 0 {
		t.root = &rtreeNode{leaf: true, box: PointRect(p), points: []Point{p}, rows: []uint32{row}}
		t.size = 1
		return
	}
	t.size++
	right := t.root.insert(p, row)
	if right != nil {
		t.root = &rtreeNode{
			box:      t.root.box.Extend(right.box),
			children: []*rtreeNode{t.root, right},
		}
	}
}

// insert descends to a leaf and returns a new right sibling when the node
// splits.
func (n *rtreeNode) insert(p Point, row uint32) *rtreeNode {
	n.box = n.box.Extend(PointRect(p))
	if n.leaf {
		n.points = append(n.points, p)
		n.rows = append(n.rows, row)
		if len(n.points) <= rtreeFanout {
			return nil
		}
		return n.splitLeaf()
	}
	best, bestEnl, bestArea := 0, math.Inf(1), math.Inf(1)
	for i, c := range n.children {
		area := c.box.Area()
		enl := c.box.Extend(PointRect(p)).Area() - area
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	right := n.children[best].insert(p, row)
	if right == nil {
		return nil
	}
	n.children = append(n.children, right)
	if len(n.children) <= rtreeFanout {
		return nil
	}
	return n.splitInternal()
}

// splitLeaf halves an overflowing leaf along its longer axis, keeping the
// ordering deterministic (coordinate, then row id).
func (n *rtreeNode) splitLeaf() *rtreeNode {
	idx := make([]int, len(n.points))
	for i := range idx {
		idx[i] = i
	}
	byLon := n.box.MaxLon-n.box.MinLon >= n.box.MaxLat-n.box.MinLat
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := n.points[idx[a]], n.points[idx[b]]
		if byLon && pa.Lon != pb.Lon {
			return pa.Lon < pb.Lon
		}
		if !byLon && pa.Lat != pb.Lat {
			return pa.Lat < pb.Lat
		}
		return n.rows[idx[a]] < n.rows[idx[b]]
	})
	mid := len(idx) / 2
	take := func(part []int) (*rtreeNode, []Point, []uint32) {
		pts := make([]Point, len(part))
		rows := make([]uint32, len(part))
		nn := &rtreeNode{leaf: true, box: PointRect(n.points[part[0]])}
		for i, j := range part {
			pts[i], rows[i] = n.points[j], n.rows[j]
			nn.box = nn.box.Extend(PointRect(pts[i]))
		}
		nn.points, nn.rows = pts, rows
		return nn, pts, rows
	}
	left, lp, lr := take(idx[:mid])
	right, _, _ := take(idx[mid:])
	n.box, n.points, n.rows = left.box, lp, lr
	return right
}

// splitInternal halves an overflowing internal node by child box centers
// along the longer axis.
func (n *rtreeNode) splitInternal() *rtreeNode {
	idx := make([]int, len(n.children))
	for i := range idx {
		idx[i] = i
	}
	center := func(i int) Point {
		b := n.children[i].box
		return Point{Lon: (b.MinLon + b.MaxLon) / 2, Lat: (b.MinLat + b.MaxLat) / 2}
	}
	byLon := n.box.MaxLon-n.box.MinLon >= n.box.MaxLat-n.box.MinLat
	sort.Slice(idx, func(a, b int) bool {
		ca, cb := center(idx[a]), center(idx[b])
		if byLon && ca.Lon != cb.Lon {
			return ca.Lon < cb.Lon
		}
		if !byLon && ca.Lat != cb.Lat {
			return ca.Lat < cb.Lat
		}
		return idx[a] < idx[b]
	})
	mid := len(idx) / 2
	take := func(part []int) *rtreeNode {
		nn := &rtreeNode{box: n.children[part[0]].box}
		nn.children = make([]*rtreeNode, len(part))
		for i, j := range part {
			nn.children[i] = n.children[j]
			nn.box = nn.box.Extend(n.children[j].box)
		}
		return nn
	}
	left := take(idx[:mid])
	right := take(idx[mid:])
	n.box, n.children = left.box, left.children
	return right
}

// Search returns row ids of points inside box, plus the number of node
// entries examined (for costing).
func (t *RTree) Search(box Rect) (rows []uint32, entries int) {
	var walk func(n *rtreeNode)
	walk = func(n *rtreeNode) {
		entries++
		if !n.box.Intersects(box) {
			return
		}
		if n.leaf {
			for i, p := range n.points {
				entries++
				if box.Contains(p) {
					rows = append(rows, n.rows[i])
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	return rows, entries
}
