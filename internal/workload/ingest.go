package workload

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/maliva/maliva/internal/engine"
)

// This file is the workload side of the live-ingestion write path: the JSON
// row → columnar batch conversion the /ingest endpoint uses, and a
// deterministic row-stream generator for write benchmarks and the
// reads-during-ingest drills.

// RowsToBatch converts JSON-wire rows (column name → value) into a columnar
// append batch for the dataset's main table. Wire forms per column type:
//
//	int64/float64  — JSON number
//	time           — RFC 3339 string, or a number of unix milliseconds
//	point          — [lon, lat] array (or {"lon":..,"lat":..} object)
//	text           — whitespace-separated words in one string; new words are
//	                 interned into the table's vocabulary
//
// Every row must provide every column of the main table.
func RowsToBatch(ds *Dataset, rows []map[string]any) (*engine.Batch, error) {
	t := ds.DB.Table(ds.Main)
	if t == nil {
		return nil, fmt.Errorf("workload: dataset %q has no table %q", ds.Name, ds.Main)
	}
	b := engine.NewBatch()
	for _, tc := range t.Cols {
		c := &engine.Column{Name: tc.Name, Type: tc.Type}
		for i, row := range rows {
			v, ok := row[tc.Name]
			if !ok {
				return nil, fmt.Errorf("workload: row %d is missing column %q", i, tc.Name)
			}
			switch tc.Type {
			case engine.ColInt64:
				f, err := toFloat(v)
				if err != nil {
					return nil, fmt.Errorf("workload: row %d column %q: %v", i, tc.Name, err)
				}
				c.Ints = append(c.Ints, int64(f))
			case engine.ColFloat64:
				f, err := toFloat(v)
				if err != nil {
					return nil, fmt.Errorf("workload: row %d column %q: %v", i, tc.Name, err)
				}
				c.Floats = append(c.Floats, f)
			case engine.ColTime:
				ms, err := toTimeMs(v)
				if err != nil {
					return nil, fmt.Errorf("workload: row %d column %q: %v", i, tc.Name, err)
				}
				c.Ints = append(c.Ints, ms)
			case engine.ColPoint:
				p, err := toPoint(v)
				if err != nil {
					return nil, fmt.Errorf("workload: row %d column %q: %v", i, tc.Name, err)
				}
				c.Points = append(c.Points, p)
			case engine.ColText:
				s, ok := v.(string)
				if !ok {
					return nil, fmt.Errorf("workload: row %d column %q: want a string of words", i, tc.Name)
				}
				var toks []uint32
				for _, w := range splitWords(s) {
					toks = append(toks, t.Vocab.Intern(w))
				}
				c.Texts = append(c.Texts, engine.SortTokens(toks))
			}
		}
		if err := b.AddColumn(c); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// toFloat accepts the numeric forms JSON decoding and in-process callers
// produce.
func toFloat(v any) (float64, error) {
	switch x := v.(type) {
	case float64:
		return x, nil
	case float32:
		return float64(x), nil
	case int:
		return float64(x), nil
	case int64:
		return float64(x), nil
	case uint64:
		return float64(x), nil
	}
	return 0, fmt.Errorf("want a number, got %T", v)
}

// toTimeMs accepts RFC 3339 strings or unix-millisecond numbers.
func toTimeMs(v any) (int64, error) {
	if s, ok := v.(string); ok {
		t, err := time.Parse(time.RFC3339, s)
		if err != nil {
			return 0, err
		}
		return t.UnixMilli(), nil
	}
	f, err := toFloat(v)
	if err != nil {
		return 0, fmt.Errorf("want RFC 3339 string or unix ms, got %T", v)
	}
	return int64(f), nil
}

// toPoint accepts [lon, lat] arrays or {"lon","lat"} objects.
func toPoint(v any) (engine.Point, error) {
	switch x := v.(type) {
	case []any:
		if len(x) != 2 {
			return engine.Point{}, fmt.Errorf("want [lon, lat], got %d elements", len(x))
		}
		lon, err1 := toFloat(x[0])
		lat, err2 := toFloat(x[1])
		if err1 != nil || err2 != nil {
			return engine.Point{}, fmt.Errorf("want numeric [lon, lat]")
		}
		return engine.Point{Lon: lon, Lat: lat}, nil
	case []float64:
		if len(x) != 2 {
			return engine.Point{}, fmt.Errorf("want [lon, lat], got %d elements", len(x))
		}
		return engine.Point{Lon: x[0], Lat: x[1]}, nil
	case map[string]any:
		lon, err1 := toFloat(x["lon"])
		lat, err2 := toFloat(x["lat"])
		if err1 != nil || err2 != nil {
			return engine.Point{}, fmt.Errorf("want {lon, lat} numbers")
		}
		return engine.Point{Lon: lon, Lat: lat}, nil
	}
	return engine.Point{}, fmt.Errorf("want [lon, lat], got %T", v)
}

// splitWords splits on whitespace without pulling in strings.Fields'
// unicode tables for the hot generator path.
func splitWords(s string) []string {
	var out []string
	start := -1
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\t' || s[i] == '\n' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}

// IngestStream deterministically generates wire-form rows matching a
// dataset's main-table schema, for write benchmarks and the
// reads-during-ingest drills: same (dataset, seed) → same row stream, which
// is what lets a from-scratch replay reproduce an ingested table bit for
// bit. Value domains are sampled from the built dataset at construction
// (numeric ranges from the column data, words from the existing vocabulary,
// points from the extent, times from the dataset's time domain).
type IngestStream struct {
	rng   *rand.Rand
	specs []streamCol
}

// streamCol is one column's generation recipe.
type streamCol struct {
	name string
	typ  engine.ColType
	lo   float64
	hi   float64
	ext  engine.Rect
	t0   time.Time
	days int
	word []string
}

// streamWordSample caps how many vocabulary words a stream draws from.
const streamWordSample = 512

// NewIngestStream builds a generator over the dataset's main table. It scans
// the current column data for value ranges, so construct it before starting
// concurrent ingestion.
func NewIngestStream(ds *Dataset, seed int64) (*IngestStream, error) {
	t := ds.DB.Table(ds.Main)
	if t == nil {
		return nil, fmt.Errorf("workload: dataset %q has no table %q", ds.Name, ds.Main)
	}
	st := &IngestStream{rng: rand.New(rand.NewSource(seed))}
	for _, c := range t.Cols {
		sc := streamCol{name: c.Name, typ: c.Type}
		switch c.Type {
		case engine.ColInt64, engine.ColFloat64:
			lo, hi := 0.0, 1.0
			if c.Len() > 0 {
				lo = c.NumericAt(0)
				hi = lo
				for i := 1; i < c.Len(); i++ {
					v := c.NumericAt(uint32(i))
					if v < lo {
						lo = v
					}
					if v > hi {
						hi = v
					}
				}
			}
			sc.lo, sc.hi = lo, hi
		case engine.ColTime:
			sc.t0, sc.days = ds.TimeOrigin, ds.TimeSpanDays
			if sc.days <= 0 {
				sc.days = 1
			}
		case engine.ColPoint:
			sc.ext = ds.Extent
			if sc.ext.Area() <= 0 {
				sc.ext = engine.Rect{MinLon: -1, MinLat: -1, MaxLon: 1, MaxLat: 1}
			}
		case engine.ColText:
			seen := make(map[uint32]bool)
			for _, toks := range c.Texts {
				for _, id := range toks {
					if !seen[id] {
						seen[id] = true
						sc.word = append(sc.word, t.Vocab.Word(id))
						if len(sc.word) >= streamWordSample {
							break
						}
					}
				}
				if len(sc.word) >= streamWordSample {
					break
				}
			}
			if len(sc.word) == 0 {
				sc.word = []string{"ingest"}
			}
		}
		st.specs = append(st.specs, sc)
	}
	return st, nil
}

// Next generates the next n rows of the stream.
func (st *IngestStream) Next(n int) []map[string]any {
	rows := make([]map[string]any, n)
	for i := range rows {
		row := make(map[string]any, len(st.specs))
		for _, sc := range st.specs {
			switch sc.typ {
			case engine.ColInt64:
				row[sc.name] = float64(int64(sc.lo + st.rng.Float64()*(sc.hi-sc.lo)))
			case engine.ColFloat64:
				row[sc.name] = sc.lo + st.rng.Float64()*(sc.hi-sc.lo)
			case engine.ColTime:
				at := sc.t0.Add(time.Duration(st.rng.Float64()*float64(sc.days)*24) * time.Hour)
				row[sc.name] = at.UTC().Format(time.RFC3339)
			case engine.ColPoint:
				row[sc.name] = []any{
					sc.ext.MinLon + st.rng.Float64()*(sc.ext.MaxLon-sc.ext.MinLon),
					sc.ext.MinLat + st.rng.Float64()*(sc.ext.MaxLat-sc.ext.MinLat),
				}
			case engine.ColText:
				k := 3 + st.rng.Intn(5)
				s := ""
				for j := 0; j < k; j++ {
					if j > 0 {
						s += " "
					}
					s += sc.word[st.rng.Intn(len(sc.word))]
				}
				row[sc.name] = s
			}
		}
		rows[i] = row
	}
	return rows
}
