package workload

import (
	"fmt"
	"sort"
	"sync"
)

// Status describes where a registered dataset is in its lifecycle.
type Status int

const (
	// StatusUnknown: the name is not registered.
	StatusUnknown Status = iota
	// StatusIdle: registered, generation not started yet.
	StatusIdle
	// StatusWarming: generation is in flight.
	StatusWarming
	// StatusReady: the dataset is built and cached.
	StatusReady
	// StatusFailed: generation failed; the error is cached (builders are
	// deterministic, so retrying would fail identically).
	StatusFailed
	// StatusRecovering: the build is replaying durable state (a write-ahead
	// log) rather than generating fresh data. Operationally a sub-state of
	// warming — the dataset is not servable yet — but surfaced distinctly so
	// health endpoints can tell a crash-recovering replica from a cold one
	// and cluster health pools hold traffic away until replay completes.
	StatusRecovering
)

// String returns the lowercase wire form used by the gateway endpoints.
func (s Status) String() string {
	switch s {
	case StatusIdle:
		return "idle"
	case StatusWarming:
		return "warming"
	case StatusReady:
		return "ready"
	case StatusFailed:
		return "failed"
	case StatusRecovering:
		return "recovering"
	}
	return "unknown"
}

// Registry owns named datasets with lazy, single-flight construction:
// generating a dataset (rows, indexes, statistics) is seconds of work, so it
// runs at most once per name no matter how many goroutines ask, and never
// runs at all for datasets nothing touches. A Registry is safe for
// concurrent use.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*regEntry
	names   []string // registration order
}

// regEntry is one named dataset's lifecycle slot.
type regEntry struct {
	build  func() (*Dataset, error)
	status Status
	done   chan struct{} // closed when the build finishes (ready or failed)
	ds     *Dataset
	err    error
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*regEntry)}
}

// Register adds a named dataset builder. The builder runs at most once, on
// first touch. Registering a duplicate or empty name is an error.
func (r *Registry) Register(name string, build func() (*Dataset, error)) error {
	if name == "" {
		return fmt.Errorf("workload: registry: empty dataset name")
	}
	if build == nil {
		return fmt.Errorf("workload: registry: nil builder for %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok {
		return fmt.Errorf("workload: registry: dataset %q already registered", name)
	}
	r.entries[name] = &regEntry{build: build, status: StatusIdle}
	r.names = append(r.names, name)
	return nil
}

// Names returns the registered dataset names in registration order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.names...)
}

// Status reports a name's lifecycle state without triggering a build.
func (r *Registry) Status(name string) Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return StatusUnknown
	}
	return e.status
}

// Lookup returns the named dataset, building it first if needed. Exactly one
// goroutine runs the build; concurrent Lookups for the same name block until
// it finishes and share the result.
func (r *Registry) Lookup(name string) (*Dataset, error) {
	r.mu.Lock()
	e, ok := r.entries[name]
	if !ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("workload: registry: unknown dataset %q", name)
	}
	switch e.status {
	case StatusReady, StatusFailed:
		r.mu.Unlock()
		return e.ds, e.err
	case StatusWarming, StatusRecovering:
		done := e.done
		r.mu.Unlock()
		<-done
		return e.ds, e.err
	}
	// Idle: this goroutine builds.
	e.status = StatusWarming
	e.done = make(chan struct{})
	r.mu.Unlock()
	r.runBuild(e)
	return e.ds, e.err
}

// Poll is the non-blocking Lookup: it kicks off an asynchronous build on
// first touch and reports the current state instead of waiting, so a caller
// on a latency-sensitive path can answer "warming" (e.g. 503 + Retry-After)
// instead of blocking. The middleware Gateway layers its own lifecycle on
// top of blocking Lookup because a dataset's serving state also includes a
// rewriter and a Server; Poll is for embedders that serve datasets directly.
func (r *Registry) Poll(name string) (*Dataset, Status, error) {
	r.mu.Lock()
	e, ok := r.entries[name]
	if !ok {
		r.mu.Unlock()
		return nil, StatusUnknown, nil
	}
	switch e.status {
	case StatusReady, StatusFailed:
		r.mu.Unlock()
		return e.ds, e.status, e.err
	case StatusWarming, StatusRecovering:
		st := e.status
		r.mu.Unlock()
		return nil, st, nil
	}
	e.status = StatusWarming
	e.done = make(chan struct{})
	r.mu.Unlock()
	go r.runBuild(e)
	return nil, StatusWarming, nil
}

// MarkRecovering flags a warming dataset as replaying durable state: a
// builder that attaches a write-ahead log calls it when startup replay
// begins, so health endpoints report "recovering" instead of generic
// warming. No-op unless the entry is currently warming; the build's terminal
// status (ready/failed) overwrites it when the builder returns.
func (r *Registry) MarkRecovering(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok && e.status == StatusWarming {
		e.status = StatusRecovering
	}
}

// runBuild executes one entry's builder and publishes the result. The entry
// is in StatusWarming (or StatusRecovering) and owned by this call.
func (r *Registry) runBuild(e *regEntry) {
	ds, err := e.build()
	r.mu.Lock()
	e.ds, e.err = ds, err
	if err != nil {
		e.status = StatusFailed
	} else {
		e.status = StatusReady
	}
	r.mu.Unlock()
	close(e.done)
}

// StandardBuilder returns a generator for one of the built-in datasets —
// "twitter", "taxi", or "tpch" — storing rows rows scaled to the paper's
// record counts (rows <= 0 keeps each dataset's default sizing).
func StandardBuilder(name string, rows int) (func() (*Dataset, error), error) {
	var cfg Config
	var gen func(Config) (*Dataset, error)
	switch name {
	case "twitter":
		cfg, gen = TwitterConfig(), Twitter
	case "taxi":
		cfg, gen = TaxiConfig(), Taxi
	case "tpch":
		cfg, gen = TPCHConfig(), TPCH
	default:
		return nil, fmt.Errorf("workload: unknown standard dataset %q (want twitter, taxi, or tpch)", name)
	}
	if rows > 0 {
		cfg.Scale = cfg.Scale * float64(cfg.Rows) / float64(rows)
		cfg.Rows = rows
	}
	return func() (*Dataset, error) { return gen(cfg) }, nil
}

// StandardNames lists the built-in dataset names StandardBuilder accepts.
func StandardNames() []string {
	names := []string{"taxi", "tpch", "twitter"}
	sort.Strings(names)
	return names
}
