package workload

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// tinyBuilder returns a builder producing a minimal real dataset quickly.
func tinyBuilder() func() (*Dataset, error) {
	cfg := TwitterConfig()
	cfg.Rows = 2_000
	cfg.Scale = 100e6 / float64(cfg.Rows)
	return func() (*Dataset, error) { return Twitter(cfg) }
}

func TestRegistryRegisterAndNames(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("a", tinyBuilder()); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("b", tinyBuilder()); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("a", tinyBuilder()); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := r.Register("", tinyBuilder()); err == nil {
		t.Error("empty name accepted")
	}
	if got := r.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Names() = %v, want [a b]", got)
	}
	if got := r.Status("a"); got != StatusIdle {
		t.Errorf("untouched status = %v, want idle", got)
	}
	if got := r.Status("nope"); got != StatusUnknown {
		t.Errorf("unregistered status = %v, want unknown", got)
	}
}

// TestRegistrySingleFlight: N concurrent Lookups for the same name run the
// builder exactly once and all receive the identical *Dataset.
func TestRegistrySingleFlight(t *testing.T) {
	r := NewRegistry()
	var builds atomic.Int32
	gate := make(chan struct{})
	inner := tinyBuilder()
	if err := r.Register("tw", func() (*Dataset, error) {
		builds.Add(1)
		<-gate
		return inner()
	}); err != nil {
		t.Fatal(err)
	}

	const n = 8
	results := make([]*Dataset, n)
	var wg sync.WaitGroup
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			ds, err := r.Lookup("tw")
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = ds
		}(i)
	}
	for i := 0; i < n; i++ {
		<-started
	}
	time.Sleep(10 * time.Millisecond) // let lookups reach the wait
	close(gate)
	wg.Wait()

	if got := builds.Load(); got != 1 {
		t.Fatalf("builder ran %d times, want 1", got)
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatalf("lookup %d returned a different dataset", i)
		}
	}
	if got := r.Status("tw"); got != StatusReady {
		t.Errorf("status after build = %v, want ready", got)
	}
}

// TestRegistryPoll: the non-blocking path reports warming while the build
// runs and ready with the dataset afterwards; unknown names don't build.
func TestRegistryPoll(t *testing.T) {
	r := NewRegistry()
	gate := make(chan struct{})
	inner := tinyBuilder()
	if err := r.Register("tw", func() (*Dataset, error) { <-gate; return inner() }); err != nil {
		t.Fatal(err)
	}

	if _, st, _ := r.Poll("nope"); st != StatusUnknown {
		t.Fatalf("unknown poll = %v", st)
	}
	if ds, st, err := r.Poll("tw"); ds != nil || st != StatusWarming || err != nil {
		t.Fatalf("first poll = (%v, %v, %v), want (nil, warming, nil)", ds, st, err)
	}
	if _, st, _ := r.Poll("tw"); st != StatusWarming {
		t.Fatalf("second poll = %v, want warming", st)
	}
	close(gate)
	deadline := time.After(10 * time.Second)
	for {
		ds, st, err := r.Poll("tw")
		if st == StatusReady {
			if ds == nil || err != nil {
				t.Fatalf("ready poll = (%v, %v)", ds, err)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("dataset never became ready")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestRegistryFailedBuildCached: a failing builder yields StatusFailed and
// the error is served to every later touch without re-running the builder.
func TestRegistryFailedBuildCached(t *testing.T) {
	r := NewRegistry()
	boom := errors.New("boom")
	calls := 0
	if err := r.Register("bad", func() (*Dataset, error) { calls++; return nil, boom }); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Lookup("bad"); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, err := r.Lookup("bad"); !errors.Is(err, boom) {
		t.Fatalf("second err = %v, want boom", err)
	}
	if _, st, err := r.Poll("bad"); st != StatusFailed || !errors.Is(err, boom) {
		t.Fatalf("poll = (%v, %v), want (failed, boom)", st, err)
	}
	if calls != 1 {
		t.Errorf("builder ran %d times, want 1", calls)
	}
}

func TestStandardBuilder(t *testing.T) {
	for _, name := range StandardNames() {
		build, err := StandardBuilder(name, 1_000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ds, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tb := ds.DB.Table(ds.Main)
		if tb == nil || tb.Rows != 1_000 {
			t.Fatalf("%s: main table rows = %v, want 1000", name, tb)
		}
	}
	if _, err := StandardBuilder("nope", 0); err == nil {
		t.Error("unknown standard dataset accepted")
	}
}
