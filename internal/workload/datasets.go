package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/maliva/maliva/internal/engine"
)

// USExtent approximates the continental-US bounding box used by the paper's
// map visualizations.
var USExtent = engine.Rect{MinLon: -124.8, MinLat: 24.4, MaxLon: -66.9, MaxLat: 49.4}

// NYCExtent is the New York City bounding box for the taxi dataset.
var NYCExtent = engine.Rect{MinLon: -74.26, MinLat: 40.47, MaxLon: -73.69, MaxLat: 40.92}

// Dataset bundles a database with the metadata query generation needs.
type Dataset struct {
	Name string
	DB   *engine.DB
	// Main is the fact-table name queries select from.
	Main string
	// FilterCols are the columns carrying selection conditions, in the
	// predicate order used by query generation (Table 1's "Filtering
	// Attributes").
	FilterCols []string
	// OutputCols are the projected columns (Table 1's "Output Attributes").
	OutputCols []string
	// TimeOrigin/TimeSpanDays delimit the temporal domain.
	TimeOrigin   time.Time
	TimeSpanDays int
	// Extent is the spatial domain (zero for non-spatial datasets).
	Extent engine.Rect
	// Join describes the optional join workload (Twitter only).
	JoinTable    string
	JoinLeftCol  string
	JoinRightCol string
	JoinFilter   string // filter column on the join table
}

// Config sizes a generated dataset.
type Config struct {
	Rows  int     // stored rows
	Scale float64 // real rows = Rows × Scale
	Seed  int64
}

// TwitterConfig returns the default Twitter sizing: 120k stored rows
// simulating the paper's 100M tweets.
func TwitterConfig() Config { return Config{Rows: 120_000, Scale: 100e6 / 120_000, Seed: 42} }

// TaxiConfig simulates 500M taxi trips.
func TaxiConfig() Config { return Config{Rows: 150_000, Scale: 500e6 / 150_000, Seed: 43} }

// TPCHConfig simulates a 300M-row lineitem table.
func TPCHConfig() Config { return Config{Rows: 150_000, Scale: 300e6 / 150_000, Seed: 44} }

// cityCluster is a 2-D Gaussian population cluster.
type cityCluster struct {
	center engine.Point
	sigma  float64
	weight float64
}

var usCities = []cityCluster{
	{engine.Point{Lon: -74.0, Lat: 40.7}, 0.8, 0.16},   // New York
	{engine.Point{Lon: -118.2, Lat: 34.1}, 0.9, 0.12},  // Los Angeles
	{engine.Point{Lon: -87.6, Lat: 41.9}, 0.7, 0.08},   // Chicago
	{engine.Point{Lon: -95.4, Lat: 29.8}, 0.8, 0.07},   // Houston
	{engine.Point{Lon: -112.1, Lat: 33.4}, 0.7, 0.05},  // Phoenix
	{engine.Point{Lon: -75.2, Lat: 39.9}, 0.6, 0.05},   // Philadelphia
	{engine.Point{Lon: -122.4, Lat: 37.8}, 0.6, 0.06},  // San Francisco
	{engine.Point{Lon: -84.4, Lat: 33.7}, 0.7, 0.05},   // Atlanta
	{engine.Point{Lon: -80.2, Lat: 25.8}, 0.5, 0.05},   // Miami
	{engine.Point{Lon: -122.3, Lat: 47.6}, 0.6, 0.04},  // Seattle
	{engine.Point{Lon: -104.99, Lat: 39.7}, 0.7, 0.04}, // Denver
	{engine.Point{Lon: -97.7, Lat: 30.3}, 0.7, 0.04},   // Austin
}

// samplePoint draws a point from the cluster mixture, clamped to extent;
// a uniform background component covers rural areas.
func samplePoint(rng *rand.Rand, clusters []cityCluster, extent engine.Rect, background float64) engine.Point {
	if rng.Float64() < background {
		return engine.Point{
			Lon: extent.MinLon + rng.Float64()*(extent.MaxLon-extent.MinLon),
			Lat: extent.MinLat + rng.Float64()*(extent.MaxLat-extent.MinLat),
		}
	}
	r := rng.Float64()
	var c cityCluster
	for _, cc := range clusters {
		if r < cc.weight {
			c = cc
			break
		}
		r -= cc.weight
	}
	if c.sigma == 0 {
		c = clusters[len(clusters)-1]
	}
	p := engine.Point{
		Lon: c.center.Lon + rng.NormFloat64()*c.sigma,
		Lat: c.center.Lat + rng.NormFloat64()*c.sigma*0.7,
	}
	p.Lon = clamp(p.Lon, extent.MinLon, extent.MaxLon)
	p.Lat = clamp(p.Lat, extent.MinLat, extent.MaxLat)
	return p
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Twitter generates the Table 1 Twitter dataset: a tweets fact table with a
// Zipf-vocabulary text column, timestamps over Nov 2015–Jan 2017, clustered
// US geo-coordinates and user stats, plus a users dimension table for the
// join workload. Indexes: inverted(text), B+-tree(created_at, user stats),
// R-tree(coordinates).
func Twitter(cfg Config) (*Dataset, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := engine.NewDB(engine.ProfilePostgres(), cfg.Seed)
	t := engine.NewTable("tweets", cfg.Scale)

	const vocabSize = 6000
	zipf := rand.NewZipf(rng, 1.45, 20, vocabSize-1)
	for w := 0; w < vocabSize; w++ {
		t.Vocab.Intern(fmt.Sprintf("word%04d", w))
	}

	origin := time.Date(2015, 11, 1, 0, 0, 0, 0, time.UTC)
	spanDays := 457 // Nov 2015 – Jan 2017

	n := cfg.Rows
	ids := make([]int64, n)
	texts := make([][]uint32, n)
	created := make([]int64, n)
	coords := make([]engine.Point, n)
	statuses := make([]int64, n)
	followers := make([]int64, n)
	userIDs := make([]int64, n)

	numUsers := n / 30
	if numUsers < 100 {
		numUsers = 100
	}
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		k := 3 + rng.Intn(6)
		toks := make([]uint32, 0, k)
		for j := 0; j < k; j++ {
			toks = append(toks, uint32(zipf.Uint64())+1) // +1: vocab id 0 is reserved
		}
		texts[i] = engine.SortTokens(toks)
		created[i] = origin.Add(time.Duration(rng.Float64()*float64(spanDays)*24) * time.Hour).UnixMilli()
		coords[i] = samplePoint(rng, usCities, USExtent, 0.12)
		statuses[i] = int64(math.Exp(rng.NormFloat64()*1.4 + 6))
		followers[i] = int64(math.Exp(rng.NormFloat64()*1.8 + 5))
		userIDs[i] = int64(rng.Intn(numUsers))
	}
	cols := []*engine.Column{
		{Name: "id", Type: engine.ColInt64, Ints: ids},
		{Name: "text", Type: engine.ColText, Texts: texts},
		{Name: "created_at", Type: engine.ColTime, Ints: created},
		{Name: "coordinates", Type: engine.ColPoint, Points: coords},
		{Name: "users_statuses_count", Type: engine.ColInt64, Ints: statuses},
		{Name: "users_followers_count", Type: engine.ColInt64, Ints: followers},
		{Name: "user_id", Type: engine.ColInt64, Ints: userIDs},
	}
	for _, c := range cols {
		if err := t.AddColumn(c); err != nil {
			return nil, err
		}
	}
	for col, kind := range map[string]engine.IndexKind{
		"text":                  engine.IndexInverted,
		"created_at":            engine.IndexBTree,
		"coordinates":           engine.IndexRTree,
		"users_statuses_count":  engine.IndexBTree,
		"users_followers_count": engine.IndexBTree,
	} {
		if _, err := t.BuildIndex(col, kind); err != nil {
			return nil, err
		}
	}
	// Summary sketches for the approximate tier (Count-Min keyword counts,
	// HyperLogLog distinct words, weekly buckets). Built here — not at
	// server construction — because datasets are shared immutably across
	// replicas; ingest maintains the sketch incrementally afterwards.
	if _, err := t.BuildSketch("text", "created_at", 0); err != nil {
		return nil, err
	}
	if err := db.AddTable(t); err != nil {
		return nil, err
	}

	// Users dimension table.
	u := engine.NewTable("users", cfg.Scale)
	uIDs := make([]int64, numUsers)
	tweetCnt := make([]int64, numUsers)
	for i := 0; i < numUsers; i++ {
		uIDs[i] = int64(i)
		tweetCnt[i] = int64(math.Exp(rng.NormFloat64()*1.5 + 5.5))
	}
	if err := u.AddColumn(&engine.Column{Name: "id", Type: engine.ColInt64, Ints: uIDs}); err != nil {
		return nil, err
	}
	if err := u.AddColumn(&engine.Column{Name: "tweet_cnt", Type: engine.ColInt64, Ints: tweetCnt}); err != nil {
		return nil, err
	}
	if _, err := u.BuildIndex("id", engine.IndexBTree); err != nil {
		return nil, err
	}
	if _, err := u.BuildIndex("tweet_cnt", engine.IndexBTree); err != nil {
		return nil, err
	}
	if err := db.AddTable(u); err != nil {
		return nil, err
	}

	return &Dataset{
		Name:         "Twitter",
		DB:           db,
		Main:         "tweets",
		FilterCols:   []string{"text", "created_at", "coordinates", "users_statuses_count", "users_followers_count"},
		OutputCols:   []string{"id", "coordinates"},
		TimeOrigin:   origin,
		TimeSpanDays: spanDays,
		Extent:       USExtent,
		JoinTable:    "users",
		JoinLeftCol:  "user_id",
		JoinRightCol: "id",
		JoinFilter:   "tweet_cnt",
	}, nil
}

// Taxi generates the NYC Taxi dataset: pickup timestamps over 2010–2012,
// exponential trip distances and clustered pickup coordinates.
func Taxi(cfg Config) (*Dataset, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := engine.NewDB(engine.ProfilePostgres(), cfg.Seed)
	t := engine.NewTable("trips", cfg.Scale)

	origin := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	spanDays := 1095 // 2010–2012

	nycClusters := []cityCluster{
		{engine.Point{Lon: -73.985, Lat: 40.758}, 0.012, 0.45}, // Midtown
		{engine.Point{Lon: -74.007, Lat: 40.713}, 0.010, 0.20}, // Downtown
		{engine.Point{Lon: -73.95, Lat: 40.78}, 0.015, 0.15},   // Upper East/West
		{engine.Point{Lon: -73.87, Lat: 40.77}, 0.008, 0.10},   // LaGuardia
		{engine.Point{Lon: -73.78, Lat: 40.64}, 0.008, 0.10},   // JFK
	}

	n := cfg.Rows
	ids := make([]int64, n)
	pickup := make([]int64, n)
	dist := make([]float64, n)
	coords := make([]engine.Point, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		pickup[i] = origin.Add(time.Duration(rng.Float64()*float64(spanDays)*24) * time.Hour).UnixMilli()
		// Trip distances are lognormal with rare long-haul outliers; the
		// outliers stretch the optimizer's equi-width histogram so estimates
		// for the dense 0.5–5 mile region are badly off — a classic
		// real-data estimation failure the paper's baseline suffers from.
		d := math.Exp(rng.NormFloat64()*0.9 + 0.35)
		if rng.Float64() < 0.001 {
			d = 100 + rng.Float64()*200
		}
		dist[i] = d
		coords[i] = samplePoint(rng, nycClusters, NYCExtent, 0.08)
	}
	cols := []*engine.Column{
		{Name: "id", Type: engine.ColInt64, Ints: ids},
		{Name: "pickup_datetime", Type: engine.ColTime, Ints: pickup},
		{Name: "trip_distance", Type: engine.ColFloat64, Floats: dist},
		{Name: "pickup_coordinates", Type: engine.ColPoint, Points: coords},
	}
	for _, c := range cols {
		if err := t.AddColumn(c); err != nil {
			return nil, err
		}
	}
	for col, kind := range map[string]engine.IndexKind{
		"pickup_datetime":    engine.IndexBTree,
		"trip_distance":      engine.IndexBTree,
		"pickup_coordinates": engine.IndexRTree,
	} {
		if _, err := t.BuildIndex(col, kind); err != nil {
			return nil, err
		}
	}
	if err := db.AddTable(t); err != nil {
		return nil, err
	}
	return &Dataset{
		Name:         "NYC Taxi",
		DB:           db,
		Main:         "trips",
		FilterCols:   []string{"pickup_datetime", "trip_distance", "pickup_coordinates"},
		OutputCols:   []string{"id", "pickup_coordinates"},
		TimeOrigin:   origin,
		TimeSpanDays: spanDays,
		Extent:       NYCExtent,
	}, nil
}

// TPCH generates a TPC-H-shaped lineitem fact table. receipt_date is
// correlated with ship_date (receipt = ship + a few days), so the
// optimizer's independence assumption produces large cardinality errors on
// conjunctions — the synthetic dataset's difficulty source.
func TPCH(cfg Config) (*Dataset, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := engine.NewDB(engine.ProfilePostgres(), cfg.Seed)
	t := engine.NewTable("lineitem", cfg.Scale)

	origin := time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)
	spanDays := 2557 // 7 years, per TPC-H

	n := cfg.Rows
	price := make([]float64, n)
	ship := make([]int64, n)
	receipt := make([]int64, n)
	qty := make([]int64, n)
	discount := make([]float64, n)
	for i := 0; i < n; i++ {
		// extendedprice = quantity × unit price: heavy-tailed with rare
		// large orders, which stretch the equi-width price histogram and
		// wreck small-range estimates (mirrors the Taxi distance column).
		p := math.Exp(rng.NormFloat64()*0.8+8.2) + 900
		if rng.Float64() < 0.002 {
			p *= 10 + rng.Float64()*20
		}
		price[i] = p
		s := origin.Add(time.Duration(rng.Float64()*float64(spanDays)*24) * time.Hour)
		ship[i] = s.UnixMilli()
		receipt[i] = s.Add(time.Duration((1+rng.Intn(30))*24) * time.Hour).UnixMilli()
		qty[i] = int64(1 + rng.Intn(50))
		discount[i] = float64(rng.Intn(11)) / 100
	}
	cols := []*engine.Column{
		{Name: "extended_price", Type: engine.ColFloat64, Floats: price},
		{Name: "ship_date", Type: engine.ColTime, Ints: ship},
		{Name: "receipt_date", Type: engine.ColTime, Ints: receipt},
		{Name: "quantity", Type: engine.ColInt64, Ints: qty},
		{Name: "discount", Type: engine.ColFloat64, Floats: discount},
	}
	for _, c := range cols {
		if err := t.AddColumn(c); err != nil {
			return nil, err
		}
	}
	for _, col := range []string{"extended_price", "ship_date", "receipt_date"} {
		if _, err := t.BuildIndex(col, engine.IndexBTree); err != nil {
			return nil, err
		}
	}
	if err := db.AddTable(t); err != nil {
		return nil, err
	}
	return &Dataset{
		Name:         "TPC-H",
		DB:           db,
		Main:         "lineitem",
		FilterCols:   []string{"extended_price", "ship_date", "receipt_date"},
		OutputCols:   []string{"quantity", "discount"},
		TimeOrigin:   origin,
		TimeSpanDays: spanDays,
	}, nil
}
