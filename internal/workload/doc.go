// Package workload generates the paper's three evaluation datasets
// (Table 1) at simulator scale, plus the §7.1 random query workloads with
// zoom-level range conditions, train/validation/evaluation splits, and
// viable-plan bucketing (Tables 2–3).
//
// Scaling: each generated table stores Rows rows with a ScaleFactor chosen
// so Rows × ScaleFactor equals the paper's record count; the engine's
// virtual clock reports execution times at that real scale.
//
// # Layout
//
//   - datasets.go — the Twitter, Taxi, and TPC-H generators and the
//     Dataset bundle (database + the metadata query generation and the
//     serving layer need: filter columns, extents, time domain). A built
//     Dataset is immutable; the serving and cluster layers share one
//     instance across servers and replicas freely.
//   - queries.go — QuerySpec workload generation: random spatio-temporal
//     keyword queries at paper-realistic selectivities, deterministic per
//     seed.
//   - registry.go — Registry, the serving layer's named-dataset directory:
//     builders registered up front, datasets generated lazily on first
//     touch, exactly once (single-flight), with a non-blocking Poll for
//     latency-sensitive callers and StandardBuilder for the built-in
//     datasets at any row count.
//
// Generation is deterministic per (dataset config, seed): two processes
// building "twitter" at the same row count hold bit-identical data —
// which is why a cluster replica can regenerate a dataset instead of
// shipping it and still serve byte-identical responses.
package workload
