package workload

import (
	"math"
	"testing"

	"github.com/maliva/maliva/internal/engine"
)

func smallTwitter(t testing.TB) *Dataset {
	t.Helper()
	cfg := TwitterConfig()
	cfg.Rows = 20_000
	cfg.Scale = 100e6 / float64(cfg.Rows)
	ds, err := Twitter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestTwitterSchema(t *testing.T) {
	ds := smallTwitter(t)
	tb := ds.DB.Table("tweets")
	if tb == nil {
		t.Fatal("no tweets table")
	}
	if tb.Rows != 20_000 {
		t.Errorf("Rows = %d", tb.Rows)
	}
	if math.Abs(tb.RealRows()-100e6) > 1 {
		t.Errorf("RealRows = %v", tb.RealRows())
	}
	for _, col := range []string{"id", "text", "created_at", "coordinates", "users_statuses_count", "users_followers_count", "user_id"} {
		if !tb.HasColumn(col) {
			t.Errorf("missing column %s", col)
		}
	}
	for _, col := range []string{"text", "created_at", "coordinates", "users_statuses_count", "users_followers_count"} {
		if tb.Index(col) == nil {
			t.Errorf("missing index on %s", col)
		}
	}
	users := ds.DB.Table("users")
	if users == nil || users.Index("id") == nil {
		t.Fatal("users table or its id index missing")
	}
	// All user_id values join.
	for _, v := range tb.Col("user_id").Ints[:100] {
		if v < 0 || v >= int64(users.Rows) {
			t.Fatalf("dangling user_id %d", v)
		}
	}
}

func TestTwitterZipfSkew(t *testing.T) {
	ds := smallTwitter(t)
	tb := ds.DB.Table("tweets")
	headSel := engine.TrueSelectivity(tb, engine.Predicate{Col: "text", Kind: engine.PredKeyword, Word: 1})
	tailSel := engine.TrueSelectivity(tb, engine.Predicate{Col: "text", Kind: engine.PredKeyword, Word: 3000})
	if headSel < 0.01 {
		t.Errorf("head word selectivity %v too low — no Zipf head", headSel)
	}
	if tailSel >= headSel/10 {
		t.Errorf("tail word (%v) should be ≥10× rarer than head (%v)", tailSel, headSel)
	}
}

func TestDatasetsDeterministic(t *testing.T) {
	a := smallTwitter(t)
	b := smallTwitter(t)
	at, bt := a.DB.Table("tweets"), b.DB.Table("tweets")
	for i := 0; i < 200; i++ {
		if at.Col("created_at").Ints[i] != bt.Col("created_at").Ints[i] {
			t.Fatal("created_at differs across identical builds")
		}
		if at.Col("coordinates").Points[i] != bt.Col("coordinates").Points[i] {
			t.Fatal("coordinates differ across identical builds")
		}
	}
}

func TestTaxiAndTPCHBuild(t *testing.T) {
	tc := TaxiConfig()
	tc.Rows = 10_000
	taxi, err := Taxi(tc)
	if err != nil {
		t.Fatal(err)
	}
	tt := taxi.DB.Table("trips")
	if tt.Rows != 10_000 {
		t.Errorf("taxi rows = %d", tt.Rows)
	}
	// Distances are positive with a heavy tail.
	maxD := 0.0
	for _, d := range tt.Col("trip_distance").Floats {
		if d <= 0 {
			t.Fatal("non-positive trip distance")
		}
		if d > maxD {
			maxD = d
		}
	}
	if maxD < 50 {
		t.Errorf("expected long-haul outliers, max distance %v", maxD)
	}

	hc := TPCHConfig()
	hc.Rows = 10_000
	tpch, err := TPCH(hc)
	if err != nil {
		t.Fatal(err)
	}
	li := tpch.DB.Table("lineitem")
	// receipt_date ≥ ship_date always (correlated columns).
	ship := li.Col("ship_date").Ints
	receipt := li.Col("receipt_date").Ints
	for i := range ship {
		if receipt[i] < ship[i] {
			t.Fatalf("row %d: receipt before ship", i)
		}
	}
}

func TestGenerateQueriesShape(t *testing.T) {
	ds := smallTwitter(t)
	qs := GenerateQueries(ds, 50, QuerySpec{NumPreds: 3, Seed: 7})
	if len(qs) != 50 {
		t.Fatalf("generated %d queries", len(qs))
	}
	for _, q := range qs {
		if len(q.Preds) != 3 {
			t.Fatalf("query has %d preds", len(q.Preds))
		}
		if q.Preds[0].Kind != engine.PredKeyword || q.Preds[0].Word == 0 {
			t.Errorf("pred 0 = %+v", q.Preds[0])
		}
		if q.Preds[1].Kind != engine.PredRange || q.Preds[1].Hi <= q.Preds[1].Lo {
			t.Errorf("pred 1 = %+v", q.Preds[1])
		}
		if q.Preds[2].Kind != engine.PredGeo || q.Preds[2].Box.Area() <= 0 {
			t.Errorf("pred 2 = %+v", q.Preds[2])
		}
		// Every generated query matches at least the sampled record's word.
		sel := engine.TrueSelectivity(ds.DB.Table("tweets"), q.Preds[0])
		if sel <= 0 {
			t.Error("keyword condition matches nothing")
		}
	}
}

func TestGenerateQueriesWiderShapes(t *testing.T) {
	ds := smallTwitter(t)
	for _, np := range []int{4, 5} {
		qs := GenerateQueries(ds, 10, QuerySpec{NumPreds: np, Seed: 7})
		for _, q := range qs {
			if len(q.Preds) != np {
				t.Fatalf("NumPreds=%d produced %d preds", np, len(q.Preds))
			}
		}
	}
	// Join queries.
	qs := GenerateQueries(ds, 10, QuerySpec{NumPreds: 3, Join: true, Seed: 7})
	for _, q := range qs {
		if q.Join == nil || q.Join.Table != "users" || len(q.Join.Preds) != 1 {
			t.Fatalf("join clause = %+v", q.Join)
		}
	}
}

func TestGenerateQueriesDeterministic(t *testing.T) {
	ds := smallTwitter(t)
	a := GenerateQueries(ds, 20, QuerySpec{NumPreds: 3, Seed: 11})
	b := GenerateQueries(ds, 20, QuerySpec{NumPreds: 3, Seed: 11})
	for i := range a {
		if a[i].SQL(engine.Hint{}) != b[i].SQL(engine.Hint{}) {
			t.Fatal("query generation not deterministic")
		}
	}
	c := GenerateQueries(ds, 20, QuerySpec{NumPreds: 3, Seed: 12})
	same := 0
	for i := range a {
		if a[i].SQL(engine.Hint{}) == c[i].SQL(engine.Hint{}) {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical workloads")
	}
}

func TestSplitProportionsAndDisjointness(t *testing.T) {
	ds := smallTwitter(t)
	qs := GenerateQueries(ds, 120, QuerySpec{NumPreds: 3, Seed: 13})
	train, val, eval := Split(qs, 5)
	if len(train)+len(val)+len(eval) != 120 {
		t.Fatalf("split sizes %d/%d/%d", len(train), len(val), len(eval))
	}
	if len(eval) != 60 {
		t.Errorf("eval = %d, want half", len(eval))
	}
	if len(train) != 40 || len(val) != 20 {
		t.Errorf("train/val = %d/%d, want 2:1 of the other half", len(train), len(val))
	}
	seen := map[*engine.Query]int{}
	for _, q := range train {
		seen[q]++
	}
	for _, q := range val {
		seen[q]++
	}
	for _, q := range eval {
		seen[q]++
	}
	for q, n := range seen {
		if n != 1 {
			t.Fatalf("query %p appears %d times across splits", q, n)
		}
	}
}

// TestZoomLevelLaw: generated temporal ranges follow l = max(L/2^z, 1) days.
func TestZoomLevelLaw(t *testing.T) {
	ds := smallTwitter(t)
	qs := GenerateQueries(ds, 300, QuerySpec{NumPreds: 3, Seed: 17})
	const dayMs = 24 * 3600 * 1000
	lengths := map[int]int{}
	for _, q := range qs {
		days := (q.Preds[1].Hi - q.Preds[1].Lo) / dayMs
		// Must be L/2^z for some z (within rounding) and ≥ 1 day.
		if days < 1-1e-9 {
			t.Fatalf("range %v days < 1", days)
		}
		z := math.Log2(float64(ds.TimeSpanDays) / days)
		zi := int(math.Round(z))
		if math.Abs(z-float64(zi)) > 0.01 && days > 1+1e-9 {
			t.Fatalf("range %v days is not L/2^z (z=%v)", days, z)
		}
		lengths[zi]++
	}
	if len(lengths) < 5 {
		t.Errorf("zoom levels not diverse: %v", lengths)
	}
}
