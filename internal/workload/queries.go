package workload

import (
	"math"
	"math/rand"
	"time"

	"github.com/maliva/maliva/internal/engine"
)

// QuerySpec controls random query generation (§7.1).
type QuerySpec struct {
	// NumPreds is the number of filtering conditions (3 for the main
	// workloads; 4 and 5 for the 16/32-rewrite-option workloads).
	NumPreds int
	// Join adds the users join with a tweet_cnt condition (Twitter only).
	Join bool
	// Seed drives generation.
	Seed int64
}

// GenerateQueries creates n random queries following the paper's recipe:
// sample a record, then derive one condition per filtering attribute —
// a keyword from the record's text, and zoom-level-sized ranges/boxes
// centered on the record's values (length = max(L/2^z, 1) for a uniform
// zoom level z ∈ [0, ceil(log2 L)]).
func GenerateQueries(ds *Dataset, n int, spec QuerySpec) []*engine.Query {
	rng := rand.New(rand.NewSource(spec.Seed))
	t := ds.DB.Table(ds.Main)
	numPreds := spec.NumPreds
	if numPreds <= 0 {
		numPreds = 3
	}
	if numPreds > len(ds.FilterCols) {
		numPreds = len(ds.FilterCols)
	}
	queries := make([]*engine.Query, 0, n)
	for len(queries) < n {
		row := uint32(rng.Intn(t.Rows))
		q := &engine.Query{
			Table:      ds.Main,
			OutputCols: append([]string(nil), ds.OutputCols...),
		}
		ok := true
		for _, col := range ds.FilterCols[:numPreds] {
			p, valid := ds.predicateFor(t, col, row, rng)
			if !valid {
				ok = false
				break
			}
			q.Preds = append(q.Preds, p)
		}
		if !ok {
			continue
		}
		if spec.Join && ds.JoinTable != "" {
			inner := ds.DB.Table(ds.JoinTable)
			irow := uint32(rng.Intn(inner.Rows))
			p, valid := rangePredicate(inner, ds.JoinFilter, irow, rng, 4)
			if !valid {
				continue
			}
			q.Join = &engine.JoinClause{
				Table:    ds.JoinTable,
				LeftCol:  ds.JoinLeftCol,
				RightCol: ds.JoinRightCol,
				Preds:    []engine.Predicate{p},
			}
		}
		queries = append(queries, q)
	}
	return queries
}

// predicateFor builds the condition for one filtering column from the
// sampled row.
func (ds *Dataset) predicateFor(t *engine.Table, col string, row uint32, rng *rand.Rand) (engine.Predicate, bool) {
	c := t.Col(col)
	switch c.Type {
	case engine.ColText:
		toks := c.Texts[row]
		if len(toks) == 0 {
			return engine.Predicate{}, false
		}
		w := toks[rng.Intn(len(toks))]
		return engine.Predicate{
			Col: col, Kind: engine.PredKeyword,
			Word: w, WordText: t.Vocab.Word(w),
		}, true
	case engine.ColTime:
		return timePredicate(ds, t, col, row, rng)
	case engine.ColInt64, engine.ColFloat64:
		return rangePredicate(t, col, row, rng, 0)
	case engine.ColPoint:
		return geoPredicate(ds, t, col, row, rng)
	}
	return engine.Predicate{}, false
}

// timePredicate implements the paper's temporal zoom levels: the sampled
// value is the left boundary; the range length is max(L/2^z, 1) days for a
// uniform z in [0, ceil(log2 L)].
func timePredicate(ds *Dataset, t *engine.Table, col string, row uint32, rng *rand.Rand) (engine.Predicate, bool) {
	c := t.Col(col)
	lo := c.Ints[row]
	l := float64(ds.TimeSpanDays)
	if l < 1 {
		l = 1
	}
	zMax := int(math.Ceil(math.Log2(l)))
	z := rng.Intn(zMax + 1)
	days := math.Max(l/math.Pow(2, float64(z)), 1)
	hi := lo + int64(days*24*float64(time.Hour/time.Millisecond))
	return engine.Predicate{
		Col: col, Kind: engine.PredRange,
		Lo: float64(lo), Hi: float64(hi),
	}, true
}

// rangePredicate applies the zoom-level scheme to a numeric column's value
// domain. minZoom skips the widest levels (used for join-filter conditions,
// which the paper keeps selective enough to matter).
func rangePredicate(t *engine.Table, col string, row uint32, rng *rand.Rand, minZoom int) (engine.Predicate, bool) {
	c := t.Col(col)
	v := c.NumericAt(row)
	minV, maxV := v, v
	for i := 0; i < t.Rows; i += 97 { // sampled domain scan is plenty
		x := c.NumericAt(uint32(i))
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
	}
	l := maxV - minV
	if l <= 0 {
		return engine.Predicate{}, false
	}
	zMax := 10
	z := minZoom
	if zMax > minZoom {
		z = minZoom + rng.Intn(zMax-minZoom+1)
	}
	length := l / math.Pow(2, float64(z))
	lo := v - length/2
	hi := v + length/2
	return engine.Predicate{Col: col, Kind: engine.PredRange, Lo: lo, Hi: hi}, true
}

// geoPredicate centers a zoom-level-sized bounding box on the sampled
// record's coordinates, clamped to the dataset extent.
func geoPredicate(ds *Dataset, t *engine.Table, col string, row uint32, rng *rand.Rand) (engine.Predicate, bool) {
	c := t.Col(col)
	center := c.Points[row]
	ext := ds.Extent
	if ext.Area() == 0 {
		return engine.Predicate{}, false
	}
	zMax := 9
	z := rng.Intn(zMax + 1)
	w := (ext.MaxLon - ext.MinLon) / math.Pow(2, float64(z))
	h := (ext.MaxLat - ext.MinLat) / math.Pow(2, float64(z))
	box := engine.Rect{
		MinLon: clamp(center.Lon-w/2, ext.MinLon, ext.MaxLon),
		MaxLon: clamp(center.Lon+w/2, ext.MinLon, ext.MaxLon),
		MinLat: clamp(center.Lat-h/2, ext.MinLat, ext.MaxLat),
		MaxLat: clamp(center.Lat+h/2, ext.MinLat, ext.MaxLat),
	}
	return engine.Predicate{Col: col, Kind: engine.PredGeo, Box: box}, true
}

// Split divides queries into train/validation/evaluation using the paper's
// protocol: half for evaluation; the other half split 2:1 into training and
// validation.
func Split(queries []*engine.Query, seed int64) (train, val, eval []*engine.Query) {
	rng := rand.New(rand.NewSource(seed))
	shuffled := append([]*engine.Query(nil), queries...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	half := len(shuffled) / 2
	eval = shuffled[half:]
	twoThirds := half * 2 / 3
	train = shuffled[:twoThirds]
	val = shuffled[twoThirds:half]
	return train, val, eval
}
