// Package bao reimplements the Bao comparator (Marcus et al., SIGMOD'21) as
// described and used in the Maliva paper's §7: a hint-steering optimizer
// that (1) trains a neural query-time estimator on *plan features produced
// by the backend optimizer* — thereby inheriting its cardinality-estimation
// errors on textual and spatial predicates — and (2) at query time
// brute-force enumerates every candidate hint set, estimates each, and picks
// the fastest. Bao assumes estimation cost is negligible; its per-plan
// featurization+inference cost (PerPlanMs) is charged against the budget,
// which is exactly the assumption the paper challenges (challenge C1).
package bao

import (
	"math"
	"math/rand"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/engine"
	"github.com/maliva/maliva/internal/nn"
)

// Config holds Bao's hyperparameters.
type Config struct {
	// PerPlanMs is the cost of featurizing + scoring one candidate plan.
	// ~10 ms × 32 plans ≈ the 320 ms the paper quotes for Bao's planning.
	PerPlanMs float64
	// Hidden layer sizes of the QTE network.
	Hidden []int
	// Epochs and LR control QTE training.
	Epochs int
	LR     float64
	// ThompsonRounds is how many Thompson-sampling exploration rounds are
	// played per training query to gather (plan, time) observations.
	ThompsonRounds int
	// Seed drives training randomness.
	Seed int64
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{
		PerPlanMs:      10,
		Hidden:         []int{24, 24},
		Epochs:         60,
		LR:             2e-3,
		ThompsonRounds: 3,
		Seed:           11,
	}
}

// Rewriter is the trained Bao comparator; it implements core.Rewriter.
type Rewriter struct {
	Cfg Config
	net *nn.MLP
	rng *rand.Rand
	// obsMean/obsStd normalize the log-time target.
	obsMean, obsStd float64
}

// New creates an untrained Bao instance.
func New(cfg Config) *Rewriter {
	return &Rewriter{Cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Name implements core.Rewriter.
func (b *Rewriter) Name() string { return "Bao" }

// featureDim is the size of Bao's plan-feature vector.
const featureDim = 10

// features builds Bao's view of option i: the backend optimizer's plan
// estimate (cost, cardinality, structure). All cardinality-derived features
// carry the optimizer's estimation errors.
func features(ctx *core.QueryContext, i int) []float64 {
	pe := ctx.PlanEst[i]
	opt := ctx.Options[i]
	f := make([]float64, featureDim)
	f[0] = 1
	f[1] = math.Log1p(pe.EstMs)
	f[2] = math.Log1p(pe.EstRows)
	f[3] = float64(len(pe.Positions))
	// Estimated index entries across used positions.
	entries := 0.0
	for _, p := range pe.Positions {
		if p < len(pe.EstSels) {
			entries += pe.EstSels[p] * ctx.NReal
		}
	}
	f[4] = math.Log1p(entries)
	switch opt.Join {
	case engine.NestLoopJoin:
		f[5] = 1
	case engine.HashJoin:
		f[6] = 1
	case engine.MergeJoin:
		f[7] = 1
	}
	if len(pe.Positions) == 0 && opt.HasHint {
		f[8] = 1 // forced sequential scan
	}
	f[9] = math.Log1p(ctx.InnerNReal)
	return f
}

// Train fits Bao's QTE. Observations are gathered Thompson-sampling style:
// per round, the model (perturbed by its posterior noise) picks an arm per
// query, the arm is "run", and the observed time is added to the training
// set; the network is refit between rounds. Exact (hint) options only — Bao
// steers plans, it does not approximate results.
func (b *Rewriter) Train(contexts []*core.QueryContext) {
	type obs struct {
		x []float64
		y float64
	}
	var data []obs
	seen := make(map[[2]int]bool) // (context, option) pairs already observed

	addObs := func(ci, oi int, ctx *core.QueryContext) {
		key := [2]int{ci, oi}
		if seen[key] {
			return
		}
		seen[key] = true
		data = append(data, obs{x: features(ctx, oi), y: math.Log1p(ctx.TrueMs[oi])})
	}

	// Round 0: one random arm per query (pure exploration).
	for ci, ctx := range contexts {
		for _, oi := range exactOptions(ctx) {
			// Bao's first round tries the optimizer-preferred and a random
			// arm; seed with all arms of a small random subset for a stable
			// initial fit.
			if b.rng.Float64() < 0.35 {
				addObs(ci, oi, ctx)
			}
		}
	}
	if len(data) == 0 && len(contexts) > 0 {
		ctx := contexts[0]
		for _, oi := range exactOptions(ctx) {
			addObs(0, oi, ctx)
		}
	}

	fit := func() {
		if len(data) == 0 {
			return
		}
		var sum, sq float64
		for _, d := range data {
			sum += d.y
		}
		b.obsMean = sum / float64(len(data))
		for _, d := range data {
			sq += (d.y - b.obsMean) * (d.y - b.obsMean)
		}
		b.obsStd = math.Sqrt(sq/float64(len(data))) + 1e-6
		sizes := append([]int{featureDim}, b.Cfg.Hidden...)
		sizes = append(sizes, 1)
		b.net = nn.NewMLP(sizes, b.rng)
		adam := nn.NewAdam(b.Cfg.LR)
		idx := make([]int, len(data))
		for i := range idx {
			idx[i] = i
		}
		for ep := 0; ep < b.Cfg.Epochs; ep++ {
			b.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
			for _, di := range idx {
				d := data[di]
				out := b.net.Forward(d.x)
				target := (d.y - b.obsMean) / b.obsStd
				b.net.Backward([]float64{2 * (out[0] - target)})
				b.net.ClipGrad(5)
				adam.Step(b.net)
			}
		}
	}
	fit()

	// Thompson-sampling rounds: perturb predictions, pick an arm, observe.
	for round := 0; round < b.Cfg.ThompsonRounds; round++ {
		for ci, ctx := range contexts {
			bestArm, bestScore := -1, math.Inf(1)
			for _, oi := range exactOptions(ctx) {
				score := b.predictLogMs(ctx, oi) + b.rng.NormFloat64()*0.3
				if score < bestScore {
					bestArm, bestScore = oi, score
				}
			}
			if bestArm >= 0 {
				addObs(ci, bestArm, ctx)
			}
		}
		fit()
	}
}

// predictLogMs returns the QTE's log-time prediction for option i.
func (b *Rewriter) predictLogMs(ctx *core.QueryContext, i int) float64 {
	if b.net == nil {
		return math.Log1p(ctx.PlanEst[i].EstMs)
	}
	out := b.net.Forward(features(ctx, i))
	return out[0]*b.obsStd + b.obsMean
}

// PredictMs returns the QTE's time prediction in milliseconds.
func (b *Rewriter) PredictMs(ctx *core.QueryContext, i int) float64 {
	return math.Expm1(b.predictLogMs(ctx, i))
}

// Rewrite implements core.Rewriter: enumerate all exact options, estimate
// each (paying PerPlanMs per plan), run the predicted-fastest.
func (b *Rewriter) Rewrite(ctx *core.QueryContext, budget float64) core.Outcome {
	arms := exactOptions(ctx)
	plan := b.Cfg.PerPlanMs * float64(len(arms))
	best, bestScore := -1, math.Inf(1)
	for _, oi := range arms {
		s := b.predictLogMs(ctx, oi)
		if s < bestScore {
			best, bestScore = oi, s
		}
	}
	exec := ctx.TrueMs[best]
	total := plan + exec
	return core.Outcome{
		Option:   best,
		PlanMs:   plan,
		ExecMs:   exec,
		TotalMs:  total,
		Viable:   total <= budget,
		Quality:  ctx.Quality[best],
		Explored: len(arms),
	}
}

// MeanRelError reports the QTE's mean relative error over contexts.
func (b *Rewriter) MeanRelError(contexts []*core.QueryContext) float64 {
	var sum float64
	var n int
	for _, ctx := range contexts {
		for _, oi := range exactOptions(ctx) {
			est := b.PredictMs(ctx, oi)
			sum += math.Abs(est-ctx.TrueMs[oi]) / math.Max(ctx.TrueMs[oi], 1)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// exactOptions returns the indexes of non-approximate options.
func exactOptions(ctx *core.QueryContext) []int {
	var out []int
	for i, o := range ctx.Options {
		if !o.IsApprox() {
			out = append(out, i)
		}
	}
	return out
}
