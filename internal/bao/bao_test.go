package bao

import (
	"math"
	"math/rand"
	"testing"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/engine"
)

// makeContexts fabricates contexts where the optimizer's estimates are
// informative up to a fixed distortion, so Bao's QTE has signal to learn.
func makeContexts(n int, seed int64, distort float64) []*core.QueryContext {
	rng := rand.New(rand.NewSource(seed))
	var out []*core.QueryContext
	for qi := 0; qi < n; qi++ {
		q := &engine.Query{Table: "t", Preds: make([]engine.Predicate, 3)}
		ctx := &core.QueryContext{
			Query:       q,
			NReal:       1e8,
			Fingerprint: uint64(rng.Int63()),
		}
		for mask := uint32(0); mask < 8; mask++ {
			trueMs := math.Exp(rng.Float64()*5 + 2) // 7ms .. 1100ms
			estMs := trueMs * math.Exp(distort*rng.NormFloat64())
			pos := engine.PositionsFromMask(mask, 3)
			ctx.Options = append(ctx.Options, core.Option{Mask: mask, HasHint: true})
			ctx.TrueMs = append(ctx.TrueMs, trueMs)
			ctx.Quality = append(ctx.Quality, 1)
			ctx.NeedSels = append(ctx.NeedSels, pos)
			ctx.PlanEst = append(ctx.PlanEst, engine.PlanEstimate{
				Positions: pos,
				EstMs:     estMs,
				EstRows:   trueMs * 100,
				EstSels:   []float64{0.01, 0.02, 0.03},
			})
		}
		out = append(out, ctx)
	}
	return out
}

func TestBaoTrainingImprovesOverRawOptimizer(t *testing.T) {
	train := makeContexts(80, 1, 0.8)
	test := makeContexts(30, 2, 0.8)
	b := New(DefaultConfig())

	// Untrained: falls back to the optimizer's (distorted) estimate.
	rawErr := b.MeanRelError(test)
	b.Train(train)
	learnedErr := b.MeanRelError(test)
	t.Logf("raw optimizer error %.2f → learned QTE error %.2f", rawErr, learnedErr)
	if learnedErr >= rawErr {
		t.Errorf("training should reduce estimation error: %.2f → %.2f", rawErr, learnedErr)
	}
}

func TestBaoRewriteEnumeratesAllArms(t *testing.T) {
	ctxs := makeContexts(10, 3, 0.3)
	b := New(DefaultConfig())
	b.Train(ctxs)
	out := b.Rewrite(ctxs[0], 500)
	if out.Explored != 8 {
		t.Errorf("Bao must enumerate all 8 options, explored %d", out.Explored)
	}
	wantPlan := 8 * b.Cfg.PerPlanMs
	if out.PlanMs != wantPlan {
		t.Errorf("PlanMs = %v, want %v", out.PlanMs, wantPlan)
	}
	if out.Option < 0 || out.Option >= 8 {
		t.Errorf("Option = %d", out.Option)
	}
	if out.TotalMs != out.PlanMs+out.ExecMs {
		t.Error("TotalMs inconsistent")
	}
}

func TestBaoSkipsApproxOptions(t *testing.T) {
	ctxs := makeContexts(5, 4, 0.3)
	ctx := ctxs[0]
	ctx.Options = append(ctx.Options, core.Option{Approx: core.ApproxRule{Kind: core.ApproxLimit, Percent: 1}})
	ctx.TrueMs = append(ctx.TrueMs, 1)
	ctx.Quality = append(ctx.Quality, 0.1)
	ctx.NeedSels = append(ctx.NeedSels, []int{0})
	ctx.PlanEst = append(ctx.PlanEst, ctx.PlanEst[0])
	b := New(DefaultConfig())
	b.Train(ctxs)
	out := b.Rewrite(ctx, 500)
	if out.Option == 8 {
		t.Error("Bao must not pick approximation options")
	}
	if out.Explored != 8 {
		t.Errorf("Explored = %d", out.Explored)
	}
}

func TestBaoDeterministicGivenSeed(t *testing.T) {
	train := makeContexts(30, 5, 0.5)
	b1 := New(DefaultConfig())
	b1.Train(train)
	b2 := New(DefaultConfig())
	b2.Train(train)
	for _, ctx := range train[:5] {
		if b1.Rewrite(ctx, 500).Option != b2.Rewrite(ctx, 500).Option {
			t.Fatal("Bao decisions differ across identical training runs")
		}
	}
}

func TestBaoPredictMsPositive(t *testing.T) {
	ctxs := makeContexts(10, 6, 0.3)
	b := New(DefaultConfig())
	b.Train(ctxs)
	for i := 0; i < 8; i++ {
		if p := b.PredictMs(ctxs[0], i); p < 0 || math.IsNaN(p) {
			t.Errorf("PredictMs(%d) = %v", i, p)
		}
	}
}
