package qte

import (
	"math"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/engine"
)

// AccurateQTE is the paper's Accurate-QTE: its estimate equals the actual
// execution time of the hinted query, isolating the effect of estimation
// cost from estimation error. Collecting each uncached predicate selectivity
// costs UnitCostMs (40 ms by default, §7.1).
type AccurateQTE struct {
	// UnitCostMs is the cost of collecting one selectivity value.
	UnitCostMs float64
	// BaseMs is the fixed per-estimate overhead (model inference etc.).
	BaseMs float64
}

// NewAccurateQTE returns the Accurate-QTE with the paper's defaults.
func NewAccurateQTE() *AccurateQTE { return &AccurateQTE{UnitCostMs: 40, BaseMs: 5} }

// Name implements core.Estimator.
func (q *AccurateQTE) Name() string { return "Accurate-QTE" }

// InitialCost implements core.Estimator.
func (q *AccurateQTE) InitialCost(ctx *core.QueryContext, i int) float64 {
	return q.BaseMs + q.UnitCostMs*float64(len(ctx.NeedSels[i]))
}

// CostNow implements core.Estimator.
func (q *AccurateQTE) CostNow(ctx *core.QueryContext, i int, cache *core.SelCache) float64 {
	return q.BaseMs + q.UnitCostMs*float64(cache.Missing(ctx.NeedSels[i]))
}

// Estimate implements core.Estimator.
func (q *AccurateQTE) Estimate(ctx *core.QueryContext, i int, cache *core.SelCache) (float64, float64) {
	cost := q.CostNow(ctx, i, cache)
	for _, p := range ctx.NeedSels[i] {
		cache.Add(p)
	}
	return ctx.TrueMs[i], cost
}

// SamplingQTE is the approximate QTE: it estimates predicate selectivities
// by counting over a sample table (cheaper than the accurate QTE but noisy),
// and predicts execution time with a ridge-regression cost model trained
// offline on a workload. Its errors are what the MDP model must tolerate
// (§5.1 "Accommodating estimation inaccuracy").
type SamplingQTE struct {
	UnitCostMs float64
	BaseMs     float64
	Model      *Ridge
	// AccuracyPenalty degrades estimates multiplicatively for backends the
	// model cannot capture (the §7.6 commercial profile). 0 disables it.
	AccuracyPenalty float64
}

// NewSamplingQTE returns an untrained sampling QTE with default costs
// (15 ms/selectivity: counting over a small sample is cheaper than the
// accurate QTE's full statistics collection).
func NewSamplingQTE() *SamplingQTE { return &SamplingQTE{UnitCostMs: 15, BaseMs: 2} }

// Name implements core.Estimator.
func (q *SamplingQTE) Name() string { return "Approximate-QTE" }

// InitialCost implements core.Estimator.
func (q *SamplingQTE) InitialCost(ctx *core.QueryContext, i int) float64 {
	return q.BaseMs + q.UnitCostMs*float64(len(ctx.NeedSels[i]))
}

// CostNow implements core.Estimator.
func (q *SamplingQTE) CostNow(ctx *core.QueryContext, i int, cache *core.SelCache) float64 {
	return q.BaseMs + q.UnitCostMs*float64(cache.Missing(ctx.NeedSels[i]))
}

// Estimate implements core.Estimator.
func (q *SamplingQTE) Estimate(ctx *core.QueryContext, i int, cache *core.SelCache) (float64, float64) {
	cost := q.CostNow(ctx, i, cache)
	for _, p := range ctx.NeedSels[i] {
		cache.Add(p)
	}
	est := q.Predict(ctx, i)
	return est, cost
}

// Predict returns the model's time estimate for option i, using sampled
// selectivities.
func (q *SamplingQTE) Predict(ctx *core.QueryContext, i int) float64 {
	f := Features(ctx, i, true)
	if q.Model == nil {
		// Untrained: fall back to a crude proportional guess.
		return f[1]*50 + f[2]*800 + 10
	}
	est := q.Model.Predict(f)
	if est < 1 {
		est = 1
	}
	if q.AccuracyPenalty > 0 {
		// Deterministic multiplicative distortion per (query, option).
		u := float64((ctx.Fingerprint^uint64(i+1)*0x9E3779B97F4A7C15)%1000) / 1000
		est *= math.Exp(q.AccuracyPenalty * (2*u - 1))
	}
	return est
}

// Train fits the ridge cost model on the training contexts, using sampled
// selectivities as inputs and true times as targets — exactly the data a
// sampling QTE could gather offline.
func (q *SamplingQTE) Train(contexts []*core.QueryContext, lambda float64) error {
	var x [][]float64
	var y []float64
	for _, ctx := range contexts {
		for i := range ctx.Options {
			x = append(x, Features(ctx, i, true))
			y = append(y, ctx.TrueMs[i])
		}
	}
	m, err := FitRidge(x, y, lambda)
	if err != nil {
		return err
	}
	q.Model = m
	return nil
}

// MeanRelError reports the model's mean relative estimation error over
// contexts — the accuracy number the paper quotes when comparing QTEs.
func (q *SamplingQTE) MeanRelError(contexts []*core.QueryContext) float64 {
	var sum float64
	var n int
	for _, ctx := range contexts {
		for i := range ctx.Options {
			est := q.Predict(ctx, i)
			sum += math.Abs(est-ctx.TrueMs[i]) / math.Max(ctx.TrueMs[i], 1)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Features builds the cost-model feature vector for option i. With sampled
// == true it uses the noisy sampled selectivities (what the QTE can see);
// with false it uses true selectivities (for diagnostics). Work-proportional
// features are expressed in millions of rows so weights stay well-scaled.
func Features(ctx *core.QueryContext, i int, sampled bool) []float64 {
	sels := ctx.SelTrue
	if sampled {
		sels = ctx.SelSampled
	}
	opt := ctx.Options[i]
	positions := optionPositions(ctx, i)
	n := ctx.NReal
	entries := 0.0
	cand := n
	used := make(map[int]bool)
	for _, p := range positions {
		entries += sels[p] * n
		cand *= sels[p]
		used[p] = true
	}
	if len(positions) == 0 {
		// Sequential scan: candidates = all rows.
		cand = n
	}
	residual := 0.0
	out := cand
	for p, s := range sels {
		if !used[p] {
			residual++
			out *= s
		}
	}
	scan := 0.0
	if len(positions) == 0 {
		scan = n
	}
	const m = 1e6
	f := []float64{
		1,
		entries / m,
		cand / m,
		cand * residual / m,
		out / m,
		scan / m,
		0, 0, 0, // join method one-hot
		0, // inner rows involved
		0, // limit fraction
		0, // sample fraction
	}
	switch opt.Join {
	case engine.NestLoopJoin:
		f[6] = out / m
	case engine.HashJoin:
		f[7] = ctx.InnerNReal / m
	case engine.MergeJoin:
		f[8] = ctx.InnerNReal / m
	}
	if ctx.Query.Join != nil {
		f[9] = ctx.InnerNReal / m
	}
	if opt.Approx.Kind == core.ApproxLimit && out > 0 {
		limit := ctx.EstRows * opt.Approx.Percent / 100
		frac := limit / out
		if frac > 1 {
			frac = 1
		}
		f[10] = frac
		// Early termination scales fetch-dominated work.
		f[2] *= frac
		f[3] *= frac
		f[4] *= frac
	}
	if opt.Approx.Kind == core.ApproxSample {
		frac := opt.Approx.Percent / 100
		f[11] = frac
		f[1] *= frac
		f[2] *= frac
		f[3] *= frac
		f[4] *= frac
		f[5] *= frac
	}
	return f
}

// optionPositions returns the index positions option i's plan uses: the
// forced mask for hint options, or the optimizer's choice for unhinted ones.
func optionPositions(ctx *core.QueryContext, i int) []int {
	o := ctx.Options[i]
	if o.HasHint {
		return engine.PositionsFromMask(o.Mask, len(ctx.Query.Preds))
	}
	return ctx.PlanEst[i].Positions
}
