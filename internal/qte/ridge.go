// Package qte implements Maliva's Query Time Estimators (§4.2): an oracle
// Accurate-QTE whose estimates equal actual execution times, and a
// sampling-based Approximate-QTE in the style of Wu et al. [67] — it
// collects predicate selectivities by counting over a sample and feeds them
// to a learned linear cost model. Both charge a per-selectivity unit cost
// against the planning budget, which is the quantity the MDP agent learns to
// spend wisely.
package qte

import (
	"errors"
	"fmt"
)

// Ridge is a ridge-regression model: y ≈ w·x with L2 regularization.
type Ridge struct {
	Weights []float64
	Lambda  float64
}

// FitRidge solves (XᵀX + λI)w = Xᵀy for w. Each row of x must have the same
// length; the caller includes the intercept feature explicitly.
func FitRidge(x [][]float64, y []float64, lambda float64) (*Ridge, error) {
	if len(x) == 0 {
		return nil, errors.New("qte: FitRidge needs at least one sample")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("qte: FitRidge got %d rows but %d targets", len(x), len(y))
	}
	d := len(x[0])
	// Normal equations.
	a := make([][]float64, d) // XᵀX + λI
	b := make([]float64, d)   // Xᵀy
	for i := range a {
		a[i] = make([]float64, d)
		a[i][i] = lambda
	}
	for r, row := range x {
		if len(row) != d {
			return nil, fmt.Errorf("qte: FitRidge row %d has %d features, want %d", r, len(row), d)
		}
		for i := 0; i < d; i++ {
			if row[i] == 0 {
				continue
			}
			b[i] += row[i] * y[r]
			for j := i; j < d; j++ {
				a[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := 0; j < i; j++ {
			a[i][j] = a[j][i]
		}
	}
	w, err := solveLinear(a, b)
	if err != nil {
		return nil, err
	}
	return &Ridge{Weights: w, Lambda: lambda}, nil
}

// Predict returns w·x.
func (r *Ridge) Predict(x []float64) float64 {
	s := 0.0
	for i, w := range r.Weights {
		if i < len(x) {
			s += w * x[i]
		}
	}
	return s
}

// solveLinear solves a·w = b by Gaussian elimination with partial pivoting.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	d := len(a)
	// Augment in place.
	for col := 0; col < d; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < d; r++ {
			if abs(a[r][col]) > abs(a[pivot][col]) {
				pivot = r
			}
		}
		if abs(a[pivot][col]) < 1e-12 {
			return nil, errors.New("qte: singular system in ridge solve")
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < d; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < d; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	w := make([]float64, d)
	for r := d - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < d; c++ {
			s -= a[r][c] * w[c]
		}
		w[r] = s / a[r][r]
	}
	return w, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
