package qte

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/engine"
)

// synthContexts fabricates contexts whose true times follow a known linear
// cost law over the (sampled) selectivities, so the ridge model can be
// validated quantitatively.
func synthContexts(n int, seed int64, noise float64) []*core.QueryContext {
	rng := rand.New(rand.NewSource(seed))
	var out []*core.QueryContext
	for qi := 0; qi < n; qi++ {
		preds := 3
		q := &engine.Query{Table: "synthetic", Preds: make([]engine.Predicate, preds)}
		ctx := &core.QueryContext{
			Query:       q,
			NReal:       100e6,
			Scale:       500,
			Fingerprint: uint64(rng.Int63()),
			EstRows:     1e5,
		}
		sels := make([]float64, preds)
		for i := range sels {
			sels[i] = math.Pow(10, -rng.Float64()*3) // 0.001 .. 1
		}
		ctx.SelTrue = sels
		ctx.SelSampled = make([]float64, preds)
		for i, s := range sels {
			ctx.SelSampled[i] = s * (1 + noise*(rng.Float64()-0.5))
		}
		for mask := uint32(0); mask < 8; mask++ {
			o := core.Option{Mask: mask, HasHint: true}
			ctx.Options = append(ctx.Options, o)
			ctx.NeedSels = append(ctx.NeedSels, core.NeededSels(q, o))
			ctx.PlanEst = append(ctx.PlanEst, engine.PlanEstimate{
				Positions: engine.PositionsFromMask(mask, preds),
			})
			// True cost law mirrors the engine's: entries + candidates.
			entries, cand := 0.0, ctx.NReal
			for _, p := range engine.PositionsFromMask(mask, preds) {
				entries += sels[p] * ctx.NReal
				cand *= sels[p]
			}
			if mask == 0 {
				cand = ctx.NReal
			}
			ms := 2 + entries*0.07/1000 + cand*1.5/1000
			ctx.TrueMs = append(ctx.TrueMs, ms)
			ctx.Quality = append(ctx.Quality, 1)
		}
		out = append(out, ctx)
	}
	return out
}

func TestRidgeRecoversLinearModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var x [][]float64
	var y []float64
	w := []float64{3, -2, 0.5}
	for i := 0; i < 200; i++ {
		row := []float64{1, rng.NormFloat64(), rng.NormFloat64()}
		x = append(x, row)
		y = append(y, w[0]*row[0]+w[1]*row[1]+w[2]*row[2])
	}
	m, err := FitRidge(x, y, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w {
		if math.Abs(m.Weights[i]-w[i]) > 1e-3 {
			t.Errorf("weight %d = %v, want %v", i, m.Weights[i], w[i])
		}
	}
}

func TestRidgeErrors(t *testing.T) {
	if _, err := FitRidge(nil, nil, 1); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := FitRidge([][]float64{{1, 2}}, []float64{1, 2}, 1); err == nil {
		t.Error("row/target mismatch should fail")
	}
	if _, err := FitRidge([][]float64{{1, 2}, {1}}, []float64{1, 2}, 1); err == nil {
		t.Error("ragged rows should fail")
	}
	// Perfectly collinear columns with λ=0 are singular.
	x := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	if _, err := FitRidge(x, []float64{1, 2, 3}, 0); err == nil {
		t.Error("singular system should fail without regularization")
	}
	// With regularization it solves.
	if _, err := FitRidge(x, []float64{1, 2, 3}, 0.1); err != nil {
		t.Errorf("ridge with λ should solve: %v", err)
	}
}

// TestRidgePredictLinearity: prediction is linear in the inputs (property).
func TestRidgePredictLinearity(t *testing.T) {
	m := &Ridge{Weights: []float64{1, 2, -3}}
	prop := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) ||
			math.Abs(a) > 1e100 || math.Abs(b) > 1e100 {
			return true // avoid float overflow, not a linearity failure
		}
		x := []float64{1, a, b}
		y := []float64{1, 2 * a, 2 * b}
		p1 := m.Predict(x)
		p2 := m.Predict(y)
		want := 1 + 2*(2*a) - 3*(2*b)
		return math.Abs(p2-want) < 1e-6*(1+math.Abs(want)) && !math.IsNaN(p1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAccurateQTECostCaching(t *testing.T) {
	ctxs := synthContexts(1, 2, 0)
	ctx := ctxs[0]
	est := &AccurateQTE{UnitCostMs: 40, BaseMs: 5}
	cache := core.NewSelCache()

	// Option 0b011 needs sels {0,1} → cost 5 + 80.
	i011 := 3
	if got := est.CostNow(ctx, i011, cache); got != 85 {
		t.Fatalf("CostNow = %v, want 85", got)
	}
	e, c := est.Estimate(ctx, i011, cache)
	if e != ctx.TrueMs[i011] {
		t.Errorf("accurate estimate %v != true %v", e, ctx.TrueMs[i011])
	}
	if c != 85 {
		t.Errorf("cost = %v", c)
	}
	// Option 0b111 now only needs sel 2 → 5 + 40.
	if got := est.CostNow(ctx, 7, cache); got != 45 {
		t.Errorf("CostNow after caching = %v, want 45", got)
	}
	// InitialCost ignores the cache.
	if got := est.InitialCost(ctx, 7); got != 125 {
		t.Errorf("InitialCost = %v, want 125", got)
	}
}

func TestSamplingQTELearnsTheCostLaw(t *testing.T) {
	train := synthContexts(60, 3, 0.05)
	test := synthContexts(20, 4, 0.05)
	s := NewSamplingQTE()
	if err := s.Train(train, 1.0); err != nil {
		t.Fatal(err)
	}
	relErr := s.MeanRelError(test)
	if relErr > 0.6 {
		t.Errorf("mean relative error %.2f too high for a linear world", relErr)
	}
	// Estimates must be positive and ordered sensibly: the full scan (mask
	// 0) should look expensive.
	ctx := test[0]
	seq := s.Predict(ctx, 0)
	best := math.Inf(1)
	for i := 1; i < 8; i++ {
		if p := s.Predict(ctx, i); p < best {
			best = p
		}
	}
	if seq <= best {
		t.Errorf("sequential scan predicted cheaper (%v) than best index plan (%v)", seq, best)
	}
}

func TestSamplingQTEUntrainedFallback(t *testing.T) {
	ctxs := synthContexts(1, 5, 0)
	s := NewSamplingQTE()
	est, cost := s.Estimate(ctxs[0], 3, core.NewSelCache())
	if est <= 0 || cost <= 0 {
		t.Errorf("untrained estimate = %v cost = %v", est, cost)
	}
}

func TestSamplingQTEAccuracyPenalty(t *testing.T) {
	ctxs := synthContexts(10, 6, 0)
	s := NewSamplingQTE()
	if err := s.Train(ctxs, 1.0); err != nil {
		t.Fatal(err)
	}
	clean := s.MeanRelError(ctxs)
	s.AccuracyPenalty = 3.0
	noisy := s.MeanRelError(ctxs)
	if noisy <= clean*2 {
		t.Errorf("accuracy penalty should inflate error: %.3f → %.3f", clean, noisy)
	}
}

func TestFeaturesScalingForApproxRules(t *testing.T) {
	ctxs := synthContexts(1, 7, 0)
	ctx := ctxs[0]
	// Append a limit option and a sample option mirroring option 7.
	base := ctx.Options[7]
	ctx.Options = append(ctx.Options, core.Option{Mask: base.Mask, HasHint: true,
		Approx: core.ApproxRule{Kind: core.ApproxSample, Percent: 20}})
	ctx.NeedSels = append(ctx.NeedSels, []int{0, 1, 2})
	ctx.PlanEst = append(ctx.PlanEst, ctx.PlanEst[7])
	ctx.TrueMs = append(ctx.TrueMs, ctx.TrueMs[7]/5)
	ctx.Quality = append(ctx.Quality, 0.8)

	full := Features(ctx, 7, true)
	samp := Features(ctx, 8, true)
	if samp[11] != 0.2 {
		t.Errorf("sample fraction feature = %v", samp[11])
	}
	if samp[1] >= full[1] || samp[2] >= full[2] {
		t.Errorf("sample features should shrink work terms: %v vs %v", samp[1:3], full[1:3])
	}
}

func TestFeaturesDeterministic(t *testing.T) {
	ctxs := synthContexts(1, 8, 0)
	a := Features(ctxs[0], 5, true)
	b := Features(ctxs[0], 5, true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("features not deterministic")
		}
	}
	if len(a) != 12 {
		t.Errorf("feature dim = %d", len(a))
	}
}
