package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/middleware"
	"github.com/maliva/maliva/internal/workload"
)

// newIngestCluster builds a warm cluster over its own PRIVATE Twitter
// dataset — ingest mutates the dataset, so these tests never touch the
// shared testDatasets the read-only tests reuse.
func newIngestCluster(t testing.TB, replicas int) (*Cluster, *workload.Dataset) {
	t.Helper()
	twc := workload.TwitterConfig()
	twc.Rows = 8_000
	twc.Scale = 100e6 / float64(twc.Rows)
	tw, err := workload.Twitter(twc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{
		Replicas: replicas,
		Names:    []string{"twitter"},
		Datasets: map[string]*workload.Dataset{"twitter": tw},
		Factory:  middleware.OracleFactory,
		Server:   middleware.ServerConfig{DefaultBudgetMs: 500},
		Space:    core.HintOnlySpec(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Warm(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, tw
}

// ingestBody builds a POST /ingest payload of n rows from the stream.
func ingestBody(t testing.TB, stream *workload.IngestStream, n int, sync bool) []byte {
	t.Helper()
	b, err := json.Marshal(map[string]any{"rows": stream.Next(n), "sync": sync})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestClusterIngestNoStaleReads is the cluster-level stale-read acceptance
// test: after every routed ingest flush, the full cluster (router, replica
// caches, peer fetch/fill) answers byte-identically to a cache-free control
// server reading the same shared dataset — which by construction always
// computes at the exact flushed version. Run with -race.
func TestClusterIngestNoStaleReads(t *testing.T) {
	c, tw := newIngestCluster(t, 3)
	cs := httptest.NewServer(c.Handler())
	defer cs.Close()

	// The control shares the cluster's dataset values and disables every
	// cache, so it can never serve a pre-flush answer.
	control, err := middleware.NewServerWithConfig(tw, core.OracleRewriter{}, core.HintOnlySpec(),
		middleware.ServerConfig{DefaultBudgetMs: 500, PlanCacheSize: -1, ResultCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := workload.NewIngestStream(tw, 99)
	if err != nil {
		t.Fatal(err)
	}

	shapes := make([][]byte, 0, 4)
	for i := 0; i < 4; i++ {
		shapes = append(shapes, twitterBody(fmt.Sprintf("word%04d", 40+i)))
	}

	// Concurrent readers race the flushes through the router.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				postOK(t, cs.URL+"/viz?dataset=twitter", shapes[(w+i)%len(shapes)])
			}
		}(w)
	}

	for round := 1; round <= 4; round++ {
		var res middleware.IngestResult
		body := postOK(t, cs.URL+"/ingest?dataset=twitter", ingestBody(t, stream, 48, true))
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatal(err)
		}
		if !res.Flushed || res.Version != uint64(round) {
			t.Fatalf("round %d: ingest result %+v, want synchronous flush at v%d", round, res, round)
		}
		for i, sh := range shapes {
			got := postOK(t, cs.URL+"/viz?dataset=twitter", sh)
			req, err := middleware.ParseRequest(sh)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := control.Handle(req)
			if err != nil {
				t.Fatal(err)
			}
			var want bytes.Buffer
			if err := json.NewEncoder(&want).Encode(resp); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want.Bytes()) {
				t.Errorf("round %d shape %d: STALE READ — cluster diverges from uncached control\n got %s\nwant %s",
					round, i, got, want.Bytes())
			}
		}
	}
	close(stop)
	wg.Wait()

	// Shared datasets: one flush is every replica's flush.
	for i, n := range c.Nodes() {
		if v, ok := n.dataVersion("twitter"); !ok || v != 4 {
			t.Errorf("replica %d sees version %d (ok=%v), want 4", i, v, ok)
		}
	}
}

// TestPeerVersionRejects pins the cross-version guards on the peer wire
// surface: owners refuse fetches for keys at another data version, and
// drop fills carrying one.
func TestPeerVersionRejects(t *testing.T) {
	c, tw := newIngestCluster(t, 2)
	cs := httptest.NewServer(c.Handler())
	defer cs.Close()

	body := twitterBody("word0025")
	before := c.Snapshot()
	served := postOK(t, cs.URL+"/viz?dataset=twitter", body)
	owner := routedTo(t, before, c.Snapshot())
	other := 1 - owner
	key := resultKeyOf(t, served, workload.USExtent, 500) // DataVersion 0 = current

	// Exact-version fetch: a hit.
	resp, ok := c.Node(owner).fetchLocal("twitter", key)
	if !ok || resp == nil {
		t.Fatal("owner does not hold its own served key")
	}

	// Wrong-version fetch: refused and counted.
	stale := key
	stale.DataVersion = 999
	beforeStats := c.Node(owner).CacheSnapshot()
	if _, ok := c.Node(owner).fetchLocal("twitter", stale); ok {
		t.Error("owner served a cross-version fetch")
	}
	afterStats := c.Node(owner).CacheSnapshot()
	if d := afterStats.FetchVersionRejects - beforeStats.FetchVersionRejects; d != 1 {
		t.Errorf("fetch version rejects delta = %d, want 1", d)
	}

	// Wrong-version fill: dropped and counted, nothing stored.
	beforeStats = c.Node(other).CacheSnapshot()
	c.Node(other).fillLocal("twitter", stale, resp)
	afterStats = c.Node(other).CacheSnapshot()
	if d := afterStats.FillVersionRejects - beforeStats.FillVersionRejects; d != 1 {
		t.Errorf("fill version rejects delta = %d, want 1", d)
	}
	if d := afterStats.FillsReceived - beforeStats.FillsReceived; d != 0 {
		t.Errorf("stale fill was accepted (fills received delta %d)", d)
	}

	// Current-version fill is accepted.
	c.Node(other).fillLocal("twitter", key, resp)
	if got := c.Node(other).CacheSnapshot().FillsReceived - afterStats.FillsReceived; got != 1 {
		t.Errorf("current-version fill not accepted (delta %d)", got)
	}

	// After a real flush the once-current key is itself refused: pre-flush
	// answers cannot cross the wire anymore.
	stream, err := workload.NewIngestStream(tw, 5)
	if err != nil {
		t.Fatal(err)
	}
	postOK(t, cs.URL+"/ingest?dataset=twitter", ingestBody(t, stream, 16, true))
	if _, ok := c.Node(owner).fetchLocal("twitter", key); ok {
		t.Error("owner served a pre-flush key after the flush")
	}
}

// TestPeerOwnershipFollowsHealth pins the ownership/routing alignment fix:
// peer-cache owners are resolved over the router's routable set, so when a
// replica dies, every node's ownerFor agrees with the router's first routed
// choice instead of pointing at the dead full-ring owner.
func TestPeerOwnershipFollowsHealth(t *testing.T) {
	c, _ := newIngestCluster(t, 3)
	rt := c.Router()

	// While everyone is live, ownerFor matches the plain ring owner.
	for h := uint64(0); h < 64; h++ {
		hash := avalanche(h * 0x9E3779B97F4A7C15)
		if got, want := c.Node(0).ownerFor(hash), c.Ring().Owner(hash); got != want {
			t.Fatalf("hash %#x: healthy ownerFor = %d, ring owner = %d", hash, got, want)
		}
	}

	// Find a hash replica 0 owns, then kill replica 0.
	var hash uint64
	found := false
	for h := uint64(0); h < 4096 && !found; h++ {
		hash = avalanche(h * 0x9E3779B97F4A7C15)
		found = c.Ring().Owner(hash) == 0
	}
	if !found {
		t.Fatal("no hash owned by replica 0")
	}
	c.Kill(0)

	for _, n := range []*Node{c.Node(1), c.Node(2)} {
		got := n.ownerFor(hash)
		if got == 0 {
			t.Fatalf("replica %d still resolves the dead full-ring owner", n.ID())
		}
		order := rt.attemptOrder(hash)
		if len(order) == 0 || got != order[0] {
			t.Errorf("replica %d ownerFor = %d, router would try %v first", n.ID(), got, order)
		}
	}

	// Without a health view (one-process-per-replica deployments), the
	// full-ring owner is the only consistent answer.
	c.Node(1).SetHealth(nil)
	if got, want := c.Node(1).ownerFor(hash), c.Ring().Owner(hash); got != want {
		t.Errorf("no-view ownerFor = %d, want full-ring owner %d", got, want)
	}
}

// TestRouterIngestSingleWriter: the router sends a dataset's ingest traffic
// to one replica (by dataset-name hash), keeping a single adaptive batcher
// hot per dataset, and fails writes over when that replica dies.
func TestRouterIngestSingleWriter(t *testing.T) {
	c, tw := newIngestCluster(t, 3)
	cs := httptest.NewServer(c.Handler())
	defer cs.Close()
	stream, err := workload.NewIngestStream(tw, 13)
	if err != nil {
		t.Fatal(err)
	}

	before := c.Snapshot()
	for i := 0; i < 3; i++ {
		postOK(t, cs.URL+"/ingest?dataset=twitter", ingestBody(t, stream, 8, true))
	}
	writer := routedTo(t, before, c.Snapshot())
	after := c.Snapshot()
	if d := after.Replicas[writer].Routed - before.Replicas[writer].Routed; d != 3 {
		t.Errorf("writer absorbed %d of 3 ingests", d)
	}

	// Writer dies → ingest fails over, data still lands (shared dataset).
	c.Kill(writer)
	var res middleware.IngestResult
	body := postOK(t, cs.URL+"/ingest?dataset=twitter", ingestBody(t, stream, 8, true))
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Flushed || res.Version != 4 {
		t.Errorf("failover ingest result %+v, want flush at v4", res)
	}
}
