package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/maliva/maliva/internal/middleware"
)

// FaultConfig describes an injected failure distribution. Rates are
// independent probabilities folded into one draw per operation (a single
// operation suffers at most one fault; drop is checked first, then error,
// then delay). The zero value injects nothing.
type FaultConfig struct {
	// Seed makes the fault sequence deterministic: two runs with the same
	// seed and the same operation order inject identical faults. 0 picks
	// seed 1 (still deterministic — fault injection exists to reproduce).
	Seed int64
	// DropRate is the probability an operation hangs until DropDelay and
	// then fails with a timeout — the shape of a dead peer.
	DropRate float64
	// ErrRate is the probability an operation fails immediately.
	ErrRate float64
	// DelayRate is the probability an operation is delayed by Delay
	// before proceeding normally.
	DelayRate float64
	// Delay is the injected latency for delayed operations. Default 20ms.
	Delay time.Duration
	// DropDelay is how long a dropped operation hangs before its timeout
	// fires. Default DefaultPeerTimeout.
	DropDelay time.Duration
}

// faultKind is one draw's outcome.
type faultKind int

const (
	faultNone faultKind = iota
	faultDrop
	faultErr
	faultDelay
)

// Faults is a seeded fault injector shared by the hooks that consult it
// (PeerClient wrappers via FaultyPeer, nodes via Node.SetFaults). Safe for
// concurrent use; the injected-fault counters feed churn-run reports.
type Faults struct {
	cfg FaultConfig

	mu  sync.Mutex
	rng *rand.Rand

	drops  atomic.Int64
	errs   atomic.Int64
	delays atomic.Int64
}

// NewFaults builds an injector from a config (see FaultConfig.Seed).
func NewFaults(cfg FaultConfig) *Faults {
	if cfg.Delay <= 0 {
		cfg.Delay = 20 * time.Millisecond
	}
	if cfg.DropDelay <= 0 {
		cfg.DropDelay = DefaultPeerTimeout
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Faults{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Counts returns how many faults of each kind have been injected.
func (f *Faults) Counts() (drops, errs, delays int64) {
	return f.drops.Load(), f.errs.Load(), f.delays.Load()
}

// decide makes one deterministic draw.
func (f *Faults) decide() faultKind {
	f.mu.Lock()
	u := f.rng.Float64()
	f.mu.Unlock()
	c := f.cfg
	switch {
	case u < c.DropRate:
		f.drops.Add(1)
		return faultDrop
	case u < c.DropRate+c.ErrRate:
		f.errs.Add(1)
		return faultErr
	case u < c.DropRate+c.ErrRate+c.DelayRate:
		f.delays.Add(1)
		return faultDelay
	}
	return faultNone
}

// sleep waits for d or the context, whichever ends first.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// injectedTimeout is the error a dropped operation resolves to. It
// satisfies net.Error's Timeout so the peer cache classifies it exactly
// like a real dead-peer timeout.
type injectedTimeout struct{}

func (injectedTimeout) Error() string   { return "cluster: injected fault: operation dropped" }
func (injectedTimeout) Timeout() bool   { return true }
func (injectedTimeout) Temporary() bool { return true }

// apply executes one draw against the calling operation: nil to proceed
// (possibly after an injected delay), or the injected error.
func (f *Faults) apply(ctx context.Context) error {
	switch f.decide() {
	case faultDrop:
		sleepCtx(ctx, f.cfg.DropDelay)
		return injectedTimeout{}
	case faultErr:
		return fmt.Errorf("cluster: injected fault: operation failed")
	case faultDelay:
		sleepCtx(ctx, f.cfg.Delay)
	}
	return nil
}

// FaultyPeer wraps a PeerClient with fault injection on both operations —
// the harness that proves the peer path degrades to local compute (and the
// hedge path races past a slow peer) without ever corrupting a response.
type FaultyPeer struct {
	Inner  PeerClient
	Faults *Faults
}

// FetchResult implements PeerClient.
func (p FaultyPeer) FetchResult(ctx context.Context, dataset string, key middleware.ResultKey) (*middleware.Response, bool, error) {
	if err := p.Faults.apply(ctx); err != nil {
		return nil, false, err
	}
	return p.Inner.FetchResult(ctx, dataset, key)
}

// FillResult implements PeerClient.
func (p FaultyPeer) FillResult(dataset string, key middleware.ResultKey, resp *middleware.Response) error {
	if err := p.Faults.apply(context.Background()); err != nil {
		return err
	}
	return p.Inner.FillResult(dataset, key, resp)
}
