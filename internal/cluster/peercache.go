package cluster

import (
	"sync/atomic"

	"github.com/maliva/maliva/internal/middleware"
)

// cacheStats are one replica's peer-cache counters, aggregated across its
// datasets (the per-dataset split lives in each gateway's own metrics).
type cacheStats struct {
	localHits        atomic.Int64 // served from this replica's own cache
	peerHits         atomic.Int64 // served from the owning replica's cache
	peerMisses       atomic.Int64 // owner consulted, had nothing
	peerErrors       atomic.Int64 // owner unreachable → local compute
	fetchesCoalesced atomic.Int64 // fetches that piggybacked on an in-flight one
	fetchesServed    atomic.Int64 // peer fetches this replica answered
	fetchTimeouts    atomic.Int64 // peer fetches that timed out (dead/stalled peer)
	hedgedFetches    atomic.Int64 // hedge legs launched (slow or failed owner)
	hedgeWins        atomic.Int64 // races the hedge leg won
	fillsReceived    atomic.Int64 // fills this replica accepted as owner
	fillsSent        atomic.Int64 // fills delivered to an owner
	fillsDropped     atomic.Int64 // fills dropped (queue full or owner down)

	fetchVersionRejects atomic.Int64 // peer fetches refused: key at another data version
	fillVersionRejects  atomic.Int64 // fills refused: key at another data version

	fetchFidelityRejects atomic.Int64 // peer fetches refused: payload fidelity ≠ key fidelity
	fillFidelityRejects  atomic.Int64 // fills refused: payload fidelity ≠ key fidelity
}

// CacheSnapshot is the JSON form of one replica's peer-cache counters.
type CacheSnapshot struct {
	LocalHits        int64 `json:"local_hits"`
	PeerHits         int64 `json:"peer_hits"`
	PeerMisses       int64 `json:"peer_misses"`
	PeerErrors       int64 `json:"peer_errors"`
	FetchesCoalesced int64 `json:"fetches_coalesced"`
	FetchesServed    int64 `json:"fetches_served"`
	FetchTimeouts    int64 `json:"fetch_timeouts"`
	HedgedFetches    int64 `json:"hedged_fetches"`
	HedgeWins        int64 `json:"hedge_wins"`
	FillsReceived    int64 `json:"fills_received"`
	FillsSent        int64 `json:"fills_sent"`
	FillsDropped     int64 `json:"fills_dropped"`

	FetchVersionRejects int64 `json:"fetch_version_rejects"`
	FillVersionRejects  int64 `json:"fill_version_rejects"`

	FetchFidelityRejects int64 `json:"fetch_fidelity_rejects"`
	FillFidelityRejects  int64 `json:"fill_fidelity_rejects"`
}

func (s *cacheStats) snapshot() CacheSnapshot {
	return CacheSnapshot{
		LocalHits:        s.localHits.Load(),
		PeerHits:         s.peerHits.Load(),
		PeerMisses:       s.peerMisses.Load(),
		PeerErrors:       s.peerErrors.Load(),
		FetchesCoalesced: s.fetchesCoalesced.Load(),
		FetchesServed:    s.fetchesServed.Load(),
		FetchTimeouts:    s.fetchTimeouts.Load(),
		HedgedFetches:    s.hedgedFetches.Load(),
		HedgeWins:        s.hedgeWins.Load(),
		FillsReceived:    s.fillsReceived.Load(),
		FillsSent:        s.fillsSent.Load(),
		FillsDropped:     s.fillsDropped.Load(),

		FetchVersionRejects: s.fetchVersionRejects.Load(),
		FillVersionRejects:  s.fillVersionRejects.Load(),

		FetchFidelityRejects: s.fetchFidelityRejects.Load(),
		FillFidelityRejects:  s.fillFidelityRejects.Load(),
	}
}

// fidelityMatch checks a response payload against its key's fidelity class:
// an approximate-tagged key must carry an approximate-marked payload and an
// exact key an exact one. Local lookups can't violate this (the tag is part
// of the cache key), so a mismatch only ever means a confused or
// version-skewed peer — and serving it would hand an approximate answer to
// an exact request, the one substitution the tier forbids.
func fidelityMatch(key middleware.ResultKey, resp *middleware.Response) bool {
	return resp.Approximate == (key.Approx != "")
}

// peerCache is the groupcache-style middleware.ResultCache a cluster node
// installs around each dataset's local sharded cache:
//
//   - Get first consults the local cache. On a miss, if another replica owns
//     the key (consistent hash of ResultKey.Hash()), it fetches from that
//     owner's cache — with single-flight coalescing, so a stampede of
//     identical requests crosses the wire once, and hedging, so a slow owner
//     is raced against the next ring replica (see Node.hedgedFetch). A peer
//     hit is copied into the local cache, so hot foreign keys are served
//     locally afterwards.
//   - A peer error (owner down, timeout) degrades to a miss: the server
//     computes locally and the response budget never waits on a dead peer.
//   - Put stores locally and, when another replica owns the key, offers the
//     response to the owner asynchronously (best effort), so one cold
//     execution anywhere eventually fills the whole cluster.
//
// Determinism: every replica computes bit-identical responses for equal
// keys (all engine randomness derives from per-query fingerprints), so it
// never matters whether a response came from local compute, the local
// cache, or a peer.
type peerCache struct {
	dataset string
	node    *Node
	local   middleware.ResultCache
	flight  flightGroup
}

var _ middleware.ResultCache = (*peerCache)(nil)

// Get implements middleware.ResultCache.
func (c *peerCache) Get(key middleware.ResultKey) *middleware.Response {
	n := c.node
	if resp := c.local.Get(key); resp != nil {
		n.stats.localHits.Add(1)
		return resp
	}
	// Keys at a non-current data version never cross the wire: they are the
	// server's `/* ttl:N */` stale-tolerance probes, which are a local-only
	// bonus (owners refuse them anyway — see Node.fetchLocal), and spending a
	// peer round-trip on a probe would put a flush-lagging replica's latency
	// on the serving path.
	if v, ok := n.dataVersion(c.dataset); ok && key.DataVersion != v {
		return nil
	}
	// Ownership is resolved over the ROUTABLE replica set (Ring.OwnerAmong),
	// the same restricted key space the router walks. The full-ring owner
	// may be down or draining; asking it anyway would burn the peer timeout
	// exactly when the cluster is degraded, and — worse — the replica the
	// router actually concentrated the key on would never be consulted.
	owner := n.ownerFor(key.Hash())
	if owner == n.id {
		// We own this key: a local miss is a real miss. The server computes
		// and its Put lands in our local cache — the one execution the
		// router's key concentration promises.
		return nil
	}
	peer := n.peer(owner)
	if peer == nil {
		return nil
	}
	resp, ok, err, shared := c.flight.do(key, func() (*middleware.Response, bool, error) {
		return n.hedgedFetch(c.dataset, key, owner, peer)
	})
	if shared {
		n.stats.fetchesCoalesced.Add(1)
	}
	switch {
	case err != nil:
		n.stats.peerErrors.Add(1)
		return nil
	case !ok:
		n.stats.peerMisses.Add(1)
		return nil
	}
	// Requester-side fidelity gate: never serve (or cache) a peer payload
	// whose approximation class contradicts the key's.
	if !fidelityMatch(key, resp) {
		n.stats.fetchFidelityRejects.Add(1)
		return nil
	}
	n.stats.peerHits.Add(1)
	c.local.Put(key, resp)
	return resp
}

// Put implements middleware.ResultCache.
func (c *peerCache) Put(key middleware.ResultKey, resp *middleware.Response) {
	c.local.Put(key, resp)
	// A response computed just before a flush landed carries a superseded
	// version; the owner would refuse the fill, so don't bother sending it.
	if v, ok := c.node.dataVersion(c.dataset); ok && key.DataVersion != v {
		return
	}
	if owner := c.node.ownerFor(key.Hash()); owner != c.node.id {
		c.node.enqueueFill(fillReq{dataset: c.dataset, owner: owner, key: key, resp: resp})
	}
}

// Len implements middleware.ResultCache (local entries only).
func (c *peerCache) Len() int { return c.local.Len() }

// GetLocal implements middleware.LocalGetter: a probe of this replica's own
// cache only, with no peer fetch and no stats. The server's subsumption
// index uses it to validate containment candidates — a speculative probe
// must never put a peer round trip on the live miss path.
func (c *peerCache) GetLocal(key middleware.ResultKey) *middleware.Response {
	return c.local.Get(key)
}
