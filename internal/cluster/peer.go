package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"github.com/maliva/maliva/internal/middleware"
)

// PeerClient is one replica's view of another replica's result cache. Both
// methods are strictly cache operations — a fetch never triggers execution
// on the peer, so a slow query on one replica can't stall another replica's
// peer path. Errors mean "peer unreachable"; callers degrade to local
// compute (the budget never waits on a dead peer beyond the client timeout).
type PeerClient interface {
	// FetchResult asks the peer's local cache for key. ok reports a hit;
	// (nil, false, nil) is a clean miss. Cancelling ctx abandons the fetch
	// — the hedged-fetch race uses that to cancel the losing leg.
	FetchResult(ctx context.Context, dataset string, key middleware.ResultKey) (resp *middleware.Response, ok bool, err error)
	// FillResult offers the peer a computed response for key (best effort:
	// the peer may drop it).
	FillResult(dataset string, key middleware.ResultKey, resp *middleware.Response) error
}

// isTimeout classifies a peer error as a timeout (dead or stalled peer)
// rather than an immediate refusal — the split the fetch-timeout counter
// and the hedging policy care about.
func isTimeout(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// localPeer is the in-process PeerClient: replicas living in one process
// (the -replicas deployment) exchange *Response pointers directly. Responses
// are immutable by the serving contract, so sharing is safe and byte
// identity is trivial.
type localPeer struct {
	node *Node
}

func (p localPeer) FetchResult(ctx context.Context, dataset string, key middleware.ResultKey) (*middleware.Response, bool, error) {
	if p.node.Down() {
		return nil, false, fmt.Errorf("cluster: replica %d is down", p.node.id)
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	resp, ok := p.node.fetchLocal(dataset, key)
	return resp, ok, nil
}

func (p localPeer) FillResult(dataset string, key middleware.ResultKey, resp *middleware.Response) error {
	if p.node.Down() {
		return fmt.Errorf("cluster: replica %d is down", p.node.id)
	}
	p.node.fillLocal(dataset, key, resp)
	return nil
}

// DefaultPeerTimeout bounds one peer round trip. It is deliberately tight:
// a peer fetch is an optimization, and a hung peer must cost less than the
// execution it was trying to save.
const DefaultPeerTimeout = 250 * time.Millisecond

// PeerSecretHeader carries the cluster's shared peer secret on /cluster
// requests. In a one-process-per-replica deployment the peer endpoints
// share the public listener, and an unauthenticated fill would let any
// client poison the result cache — breaking the bit-identity contract.
const PeerSecretHeader = "X-Maliva-Peer-Key"

// httpPeer reaches a replica in another process through its /cluster
// endpoints (see Node.Handler). Response JSON round-trips bit-identically:
// encoding/json emits the shortest float representation that decodes back to
// the same float64, and map keys encode sorted, so re-encoding a fetched
// response matches the owner's encoding byte for byte.
type httpPeer struct {
	base   string
	secret string
	client *http.Client
}

// NewHTTPPeer builds a PeerClient for a replica at base (e.g.
// "http://replica-1:8080"). timeout <= 0 picks DefaultPeerTimeout. secret
// (may be empty) is sent on every peer request and must match the
// receiving node's Node.SetPeerSecret value.
func NewHTTPPeer(base string, timeout time.Duration, secret string) PeerClient {
	if timeout <= 0 {
		timeout = DefaultPeerTimeout
	}
	return &httpPeer{base: base, secret: secret, client: &http.Client{Timeout: timeout}}
}

// post sends one peer request with the shared secret attached.
func (p *httpPeer) post(ctx context.Context, url string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if p.secret != "" {
		req.Header.Set(PeerSecretHeader, p.secret)
	}
	return p.client.Do(req)
}

func (p *httpPeer) FetchResult(ctx context.Context, dataset string, key middleware.ResultKey) (*middleware.Response, bool, error) {
	body, err := json.Marshal(key)
	if err != nil {
		return nil, false, err
	}
	hr, err := p.post(ctx, p.base+"/cluster/fetch?dataset="+dataset, body)
	if err != nil {
		return nil, false, err
	}
	defer hr.Body.Close()
	switch hr.StatusCode {
	case http.StatusOK:
		var resp middleware.Response
		if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
			return nil, false, err
		}
		return &resp, true, nil
	case http.StatusNoContent:
		return nil, false, nil
	default:
		msg, _ := io.ReadAll(io.LimitReader(hr.Body, 256))
		return nil, false, fmt.Errorf("cluster: peer fetch %s: %s", hr.Status, msg)
	}
}

// peerFill is the wire form of a fill offer.
type peerFill struct {
	Key      middleware.ResultKey `json:"key"`
	Response *middleware.Response `json:"response"`
}

func (p *httpPeer) FillResult(dataset string, key middleware.ResultKey, resp *middleware.Response) error {
	body, err := json.Marshal(peerFill{Key: key, Response: resp})
	if err != nil {
		return err
	}
	hr, err := p.post(context.Background(), p.base+"/cluster/fill?dataset="+dataset, body)
	if err != nil {
		return err
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusNoContent {
		msg, _ := io.ReadAll(io.LimitReader(hr.Body, 256))
		return fmt.Errorf("cluster: peer fill %s: %s", hr.Status, msg)
	}
	return nil
}

// flightCall is one in-flight peer fetch shared by coalesced callers.
type flightCall struct {
	done chan struct{}
	resp *middleware.Response
	ok   bool
	err  error
}

// flightGroup coalesces concurrent peer fetches for the same key: under a
// stampede of identical requests on a non-owner replica, exactly one fetch
// crosses the wire and everyone shares the answer. Together with the
// router concentrating each key on its owner, this is what keeps one cold
// key at one execution cluster-wide.
type flightGroup struct {
	mu    sync.Mutex
	calls map[middleware.ResultKey]*flightCall
}

// do runs fn for key unless an identical call is already in flight, in
// which case it waits for and shares that call's result. shared reports
// whether this caller piggybacked.
func (g *flightGroup) do(key middleware.ResultKey, fn func() (*middleware.Response, bool, error)) (resp *middleware.Response, ok bool, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[middleware.ResultKey]*flightCall)
	}
	if c, inflight := g.calls[key]; inflight {
		g.mu.Unlock()
		<-c.done
		return c.resp, c.ok, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.resp, c.ok, c.err = fn()
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.resp, c.ok, c.err, false
}
