package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/engine"
	"github.com/maliva/maliva/internal/middleware"
	"github.com/maliva/maliva/internal/workload"
)

// Test datasets are built once per binary and shared: they are immutable,
// and that is exactly how a cluster shares them across replicas.
var (
	testDSOnce sync.Once
	testDS     map[string]*workload.Dataset
	testDSErr  error
)

func testDatasets(t testing.TB) map[string]*workload.Dataset {
	t.Helper()
	testDSOnce.Do(func() {
		twc := workload.TwitterConfig()
		twc.Rows = 8_000
		twc.Scale = 100e6 / float64(twc.Rows)
		txc := workload.TaxiConfig()
		txc.Rows = 8_000
		txc.Scale = 500e6 / float64(txc.Rows)
		tw, err := workload.Twitter(twc)
		if err != nil {
			testDSErr = err
			return
		}
		tx, err := workload.Taxi(txc)
		if err != nil {
			testDSErr = err
			return
		}
		testDS = map[string]*workload.Dataset{"twitter": tw, "taxi": tx}
	})
	if testDSErr != nil {
		t.Fatal(testDSErr)
	}
	return testDS
}

// newTestCluster builds a warm R-replica cluster over tiny Twitter + Taxi.
func newTestCluster(t testing.TB, replicas int) *Cluster {
	t.Helper()
	ds := testDatasets(t)
	c, err := New(Config{
		Replicas: replicas,
		Names:    []string{"twitter", "taxi"},
		Datasets: ds,
		Factory:  middleware.OracleFactory,
		Server:   middleware.ServerConfig{DefaultBudgetMs: 500},
		Space:    core.HintOnlySpec(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Warm(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// newTestGateway builds the warm single-gateway reference over the same
// shared datasets.
func newTestGateway(t testing.TB) *middleware.Gateway {
	t.Helper()
	ds := testDatasets(t)
	reg := workload.NewRegistry()
	for _, name := range []string{"twitter", "taxi"} {
		d := ds[name]
		if err := reg.Register(name, func() (*workload.Dataset, error) { return d, nil }); err != nil {
			t.Fatal(err)
		}
	}
	g, err := middleware.NewGateway(reg, middleware.OracleFactory, middleware.GatewayConfig{
		Server: middleware.ServerConfig{DefaultBudgetMs: 500},
		Space:  core.HintOnlySpec(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Warm(); err != nil {
		t.Fatal(err)
	}
	return g
}

// twitterBody is a valid request body against the Twitter dataset.
func twitterBody(keyword string) []byte {
	b, _ := json.Marshal(map[string]any{
		"keyword": keyword,
		"from":    "2016-03-01T00:00:00Z", "to": "2016-05-01T00:00:00Z",
		"min_lon": workload.USExtent.MinLon, "min_lat": workload.USExtent.MinLat,
		"max_lon": workload.USExtent.MaxLon, "max_lat": workload.USExtent.MaxLat,
		"kind": "heatmap", "grid_w": 16, "grid_h": 8, "budget_ms": 500,
	})
	return b
}

// taxiBody is a valid request body against the Taxi dataset.
func taxiBody(month int) []byte {
	from := time.Date(2010, time.Month(month), 1, 0, 0, 0, 0, time.UTC)
	b, _ := json.Marshal(map[string]any{
		"from": from.Format(time.RFC3339), "to": from.AddDate(0, 2, 0).Format(time.RFC3339),
		"min_lon": workload.NYCExtent.MinLon, "min_lat": workload.NYCExtent.MinLat,
		"max_lon": workload.NYCExtent.MaxLon, "max_lat": workload.NYCExtent.MaxLat,
		"kind": "heatmap", "grid_w": 16, "grid_h": 16, "budget_ms": 500,
	})
	return b
}

// post fires one request and returns (status, headers, body).
func post(t testing.TB, url string, body []byte) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// postOK is post asserting HTTP 200.
func postOK(t testing.TB, url string, body []byte) []byte {
	t.Helper()
	code, _, data := post(t, url, body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	return data
}

// resultKeyOf reconstructs the result-cache key of a served twitter-shaped
// response: the rewritten SQL comes from the trace, everything else from
// the request, normalized the way the server normalizes it.
func resultKeyOf(t testing.TB, respBody []byte, region engine.Rect, budget float64) middleware.ResultKey {
	t.Helper()
	var resp middleware.Response
	if err := json.Unmarshal(respBody, &resp); err != nil {
		t.Fatal(err)
	}
	return middleware.ResultKey{
		SQL:    resp.Trace.RewrittenSQL,
		Kind:   resp.Kind,
		GridW:  resp.GridW,
		GridH:  resp.GridH,
		Region: region,
		Budget: budget,
	}
}

// routedTo reports which replica absorbed the latest requests (by routed
// counter delta between two snapshots).
func routedTo(t testing.TB, before, after Snapshot) int {
	t.Helper()
	idx, n := -1, int64(0)
	for i := range after.Replicas {
		if d := after.Replicas[i].Routed - before.Replicas[i].Routed; d > 0 {
			idx, n = i, d
		}
	}
	if idx < 0 {
		t.Fatal("no replica absorbed the request")
	}
	_ = n
	return idx
}

// TestClusterByteIdenticalToGateway is the PR's determinism guarantee: an
// R-replica cluster behind the routing tier answers byte-identically to a
// single standalone gateway, per request shape, including under concurrent
// traffic that exercises routing, the peer caches, and per-replica
// admission. Run with -race.
func TestClusterByteIdenticalToGateway(t *testing.T) {
	c := newTestCluster(t, 3)
	cs := httptest.NewServer(c.Handler())
	defer cs.Close()
	gw := newTestGateway(t)
	gs := httptest.NewServer(gw.Handler())
	defer gs.Close()

	type reqShape struct {
		dataset string
		body    []byte
	}
	shapes := make([]reqShape, 0, 12)
	for i := 0; i < 6; i++ {
		shapes = append(shapes,
			reqShape{"twitter", twitterBody(fmt.Sprintf("word%04d", 3+i))},
			reqShape{"taxi", taxiBody(1 + i)},
		)
	}

	const goroutines = 16
	const perG = 4
	got := make([][][]byte, goroutines)
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([][]byte, perG)
			for i := 0; i < perG; i++ {
				sh := shapes[(w*perG+i*7)%len(shapes)]
				out[i] = postOK(t, cs.URL+"/viz?dataset="+sh.dataset, sh.body)
			}
			got[w] = out
		}(w)
	}
	wg.Wait()

	for w := 0; w < goroutines; w++ {
		for i := 0; i < perG; i++ {
			sh := shapes[(w*perG+i*7)%len(shapes)]
			want := postOK(t, gs.URL+"/viz?dataset="+sh.dataset, sh.body)
			if !bytes.Equal(got[w][i], want) {
				t.Errorf("w=%d i=%d dataset=%s: cluster response diverges from single gateway\n got %s\nwant %s",
					w, i, sh.dataset, got[w][i], want)
			}
		}
	}

	// Shapes concentrate: requests repeat each shape many times, so
	// cluster-wide misses stay near the number of distinct shapes (the
	// router pins each shape to one replica; with fragmented caches,
	// misses would scale with replicas). Not exactly equal: result-cache
	// fills are not single-flighted, so two concurrent first requests for
	// one shape can both miss before either stores — allow one extra miss
	// per worker for those races while still failing on real
	// fragmentation (3 replicas x 12 shapes = 36).
	snap := c.Snapshot()
	if maxMisses := int64(len(shapes) + goroutines); snap.ResultMisses > maxMisses {
		t.Errorf("cluster-wide result misses = %d, want <= %d (%d shapes + races)",
			snap.ResultMisses, maxMisses, len(shapes))
	}
	if snap.ResultHits == 0 {
		t.Error("cluster served no result-cache hits")
	}
}

// TestRouterDeterministicRouting: equal request shapes route to the same
// replica every time, and equivalent spellings of the same instant produce
// the same routing key.
func TestRouterDeterministicRouting(t *testing.T) {
	c := newTestCluster(t, 4)
	cs := httptest.NewServer(c.Handler())
	defer cs.Close()

	body := twitterBody("word0009")
	before := c.Snapshot()
	for i := 0; i < 3; i++ {
		postOK(t, cs.URL+"/viz?dataset=twitter", body)
	}
	after := c.Snapshot()
	var absorbed []int
	for i := range after.Replicas {
		if d := after.Replicas[i].Routed - before.Replicas[i].Routed; d > 0 {
			absorbed = append(absorbed, i)
			if d != 3 {
				t.Errorf("replica %d absorbed %d of 3 identical requests", i, d)
			}
		}
	}
	if len(absorbed) != 1 {
		t.Errorf("identical requests spread over replicas %v, want exactly one", absorbed)
	}

	// Same instant, two RFC 3339 spellings → same routing key.
	a := []byte(`{"keyword":"w","from":"2016-03-01T00:00:00Z","budget_ms":500}`)
	b := []byte(`{"keyword":"w","from":"2016-03-01T00:00:00+00:00","budget_ms":500}`)
	if routingKey("twitter", a) != routingKey("twitter", b) {
		t.Error("equivalent time spellings produced different routing keys")
	}
	// Dataset partitions the key space.
	if routingKey("twitter", a) == routingKey("taxi", a) {
		t.Error("different datasets produced the same routing key")
	}
}

// TestClusterFailoverToLocalCompute: with the routed replica down, the ring
// sequence absorbs the request on a live replica, which serves it (peer
// fetch or local compute) byte-identically — the owner being dead costs
// latency, never correctness. Run with -race.
func TestClusterFailoverToLocalCompute(t *testing.T) {
	c := newTestCluster(t, 2)
	cs := httptest.NewServer(c.Handler())
	defer cs.Close()
	gw := newTestGateway(t)
	gs := httptest.NewServer(gw.Handler())
	defer gs.Close()

	body := twitterBody("word0011")
	before := c.Snapshot()
	want := postOK(t, gs.URL+"/viz?dataset=twitter", body)
	if got := postOK(t, cs.URL+"/viz?dataset=twitter", body); !bytes.Equal(got, want) {
		t.Fatal("pre-failover response diverges from single gateway")
	}
	owner := routedTo(t, before, c.Snapshot())
	other := 1 - owner

	c.Node(owner).SetDown(true)
	got := postOK(t, cs.URL+"/viz?dataset=twitter", body)
	if !bytes.Equal(got, want) {
		t.Errorf("failover response diverges from single gateway\n got %s\nwant %s", got, want)
	}
	snap := c.Snapshot()
	if snap.Replicas[other].Failovers == 0 {
		t.Error("surviving replica absorbed no failovers")
	}

	// Health reflects the degraded state.
	hr, err := http.Get(cs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if health.Status != "degraded" {
		t.Errorf("healthz status = %q, want degraded", health.Status)
	}

	// Both replicas down: 503, not a hang.
	c.Node(other).SetDown(true)
	code, _, _ := post(t, cs.URL+"/viz?dataset=twitter", body)
	if code != http.StatusServiceUnavailable {
		t.Errorf("all-down status = %d, want 503", code)
	}
	c.Node(owner).SetDown(false)
	c.Node(other).SetDown(false)
	if got := postOK(t, cs.URL+"/viz?dataset=twitter", body); !bytes.Equal(got, want) {
		t.Error("post-recovery response diverges")
	}
}

// TestClusterPeerFetchServesNonOwner: one cold execution fills the whole
// cluster — after a key's owning replica holds the result, any other
// replica answers the same shape from a peer fetch (result-cache hit, no
// second execution), byte-identically.
func TestClusterPeerFetchServesNonOwner(t *testing.T) {
	c := newTestCluster(t, 2)
	cs := httptest.NewServer(c.Handler())
	defer cs.Close()

	// Unified key space: the router routes by the server-normalized
	// ResultKey hash, so the routed replica IS the key's owner — the
	// routed replica is the only replica holding the result,
	// deterministically (no async fill in flight to race with).
	body := twitterBody("word0020")
	before := c.Snapshot()
	want := postOK(t, cs.URL+"/viz?dataset=twitter", body)
	owner := routedTo(t, before, c.Snapshot())
	key := resultKeyOf(t, want, workload.USExtent, 500)
	if ringOwner := c.Ring().Owner(key.Hash()); ringOwner != owner {
		t.Fatalf("routed replica %d does not own its result key (owner %d): unified routing broken", owner, ringOwner)
	}

	nonOwner := 1 - owner
	nodeURL := httptest.NewServer(c.Node(nonOwner).Handler())
	defer nodeURL.Close()

	beforeStats := c.Node(nonOwner).CacheSnapshot()
	code, hdr, got := post(t, nodeURL.URL+"/viz?dataset=twitter", body)
	if code != http.StatusOK {
		t.Fatalf("non-owner status %d: %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("peer-fetched response diverges\n got %s\nwant %s", got, want)
	}
	if hdr.Get("X-Cache") != "hit" {
		t.Errorf("X-Cache = %q, want hit (peer fetch is a cache hit)", hdr.Get("X-Cache"))
	}
	afterStats := c.Node(nonOwner).CacheSnapshot()
	if afterStats.PeerHits-beforeStats.PeerHits != 1 {
		t.Errorf("peer hits delta = %d, want 1", afterStats.PeerHits-beforeStats.PeerHits)
	}

	// The peer hit was copied into the non-owner's local cache: a repeat is
	// a local hit, no second peer round trip.
	_, hdr, got2 := post(t, nodeURL.URL+"/viz?dataset=twitter", body)
	if !bytes.Equal(got2, want) || hdr.Get("X-Cache") != "hit" {
		t.Error("repeat on non-owner not served as a hit")
	}
	finalStats := c.Node(nonOwner).CacheSnapshot()
	if finalStats.PeerHits != afterStats.PeerHits {
		t.Error("repeat on non-owner paid a second peer fetch")
	}
	if finalStats.LocalHits-afterStats.LocalHits != 1 {
		t.Errorf("local hits delta = %d, want 1", finalStats.LocalHits-afterStats.LocalHits)
	}
}

// TestClusterFillMigratesToOwner: when a replica computes a result it does
// not own (direct node traffic, bypassing the router — unified routing
// means routed traffic always lands on the owner), the asynchronous fill
// delivers it to the owner, so the canonical copy ends up where future
// peer fetches look.
func TestClusterFillMigratesToOwner(t *testing.T) {
	c := newTestCluster(t, 2)
	ns := httptest.NewServer(c.Node(0).Handler())
	defer ns.Close()

	// Hit replica 0 directly until a shape whose result key replica 1 owns
	// computes there: that Put must enqueue a fill toward the owner.
	for i := 0; i < 40; i++ {
		b := twitterBody(fmt.Sprintf("word%04d", 60+i))
		resp := postOK(t, ns.URL+"/viz?dataset=twitter", b)
		key := resultKeyOf(t, resp, workload.USExtent, 500)
		owner := c.Ring().Owner(key.Hash())
		if owner == 0 {
			continue // replica 0 owns it; the Put stays local, no fill
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			if _, ok := c.Node(owner).fetchLocal("twitter", key); ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("fill never reached the owner")
			}
			time.Sleep(5 * time.Millisecond)
		}
		if got := c.Node(owner).CacheSnapshot().FillsReceived; got < 1 {
			t.Errorf("owner fills received = %d, want >= 1", got)
		}
		if got := c.Node(0).CacheSnapshot().FillsSent; got < 1 {
			t.Errorf("computing replica fills sent = %d, want >= 1", got)
		}
		return
	}
	t.Fatal("no shape found whose result key replica 1 owns (40 tried)")
}

// TestFlightGroupCoalesces: concurrent fetches for one key cross the wire
// once; everyone shares the answer.
func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup
	key := middleware.ResultKey{SQL: "SELECT 1", Budget: 500}
	resp := &middleware.Response{Kind: middleware.VizHeatmap}

	gate := make(chan struct{})
	var runs, shared atomic.Int64
	const callers = 8
	var started, wg sync.WaitGroup
	started.Add(callers)
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func() {
			defer wg.Done()
			started.Done()
			r, ok, err, wasShared := g.do(key, func() (*middleware.Response, bool, error) {
				runs.Add(1)
				<-gate
				return resp, true, nil
			})
			if err != nil || !ok || r != resp {
				t.Errorf("do = (%v, %v, %v)", r, ok, err)
			}
			if wasShared {
				shared.Add(1)
			}
		}()
	}
	started.Wait()
	time.Sleep(50 * time.Millisecond) // let the stragglers reach do()
	close(gate)
	wg.Wait()
	if runs.Load() != 1 {
		t.Errorf("fetch ran %d times, want 1", runs.Load())
	}
	if shared.Load() != callers-1 {
		t.Errorf("shared = %d, want %d", shared.Load(), callers-1)
	}

	// Distinct keys do not coalesce.
	other := middleware.ResultKey{SQL: "SELECT 2", Budget: 500}
	_, _, _, wasShared := g.do(other, func() (*middleware.Response, bool, error) { return nil, false, nil })
	if wasShared {
		t.Error("distinct key reported shared")
	}
}

// TestSharedRewriterFactoryOnce: an R-replica cluster builds each dataset's
// rewriter once, not R times.
func TestSharedRewriterFactoryOnce(t *testing.T) {
	ds := testDatasets(t)
	var calls atomic.Int64
	counting := func(name string, d *workload.Dataset) (core.Rewriter, error) {
		calls.Add(1)
		return core.OracleRewriter{}, nil
	}
	c, err := New(Config{
		Replicas: 3,
		Names:    []string{"twitter", "taxi"},
		Datasets: ds,
		Factory:  counting,
		Server:   middleware.ServerConfig{DefaultBudgetMs: 500},
		Space:    core.HintOnlySpec(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Warm(); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("factory ran %d times for 2 datasets x 3 replicas, want 2", got)
	}
}

// TestHTTPPeerRoundTrip: the HTTP peer transport round-trips responses
// bit-identically (fetch hit, clean miss, and fill), so one-process-per-
// replica clusters inherit the byte-identity guarantee.
func TestHTTPPeerRoundTrip(t *testing.T) {
	c := newTestCluster(t, 1)
	node := c.Node(0)
	ns := httptest.NewServer(node.Handler())
	defer ns.Close()

	node.SetPeerSecret("hunter2")
	body := twitterBody("word0031")
	want := postOK(t, ns.URL+"/viz?dataset=twitter", body)
	key := resultKeyOf(t, want, workload.USExtent, 500)

	// Wrong (or missing) secret: the peer surface refuses both reads and
	// writes — an open fill endpoint would let anyone poison the cache.
	ctx := context.Background()
	intruder := NewHTTPPeer(ns.URL, 0, "")
	if _, ok, err := intruder.FetchResult(ctx, "twitter", key); ok || err == nil {
		t.Errorf("unauthenticated fetch = (ok=%v, err=%v), want rejection", ok, err)
	}
	if err := intruder.FillResult("twitter", key, &middleware.Response{}); err == nil {
		t.Error("unauthenticated fill accepted")
	}

	peer := NewHTTPPeer(ns.URL, 0, "hunter2")
	resp, ok, err := peer.FetchResult(ctx, "twitter", key)
	if err != nil || !ok {
		t.Fatalf("fetch = (ok=%v, err=%v), want hit", ok, err)
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(resp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("re-encoded peer fetch diverges from served bytes\n got %s\nwant %s", buf.Bytes(), want)
	}

	missKey := key
	missKey.SQL = "SELECT nothing"
	if _, ok, err := peer.FetchResult(ctx, "twitter", missKey); ok || err != nil {
		t.Errorf("miss fetch = (ok=%v, err=%v), want clean miss", ok, err)
	}

	if err := peer.FillResult("twitter", missKey, resp); err != nil {
		t.Fatal(err)
	}
	if refetched, ok, _ := peer.FetchResult(ctx, "twitter", missKey); !ok || refetched == nil {
		t.Error("filled key not fetchable")
	}

	// A dead peer errors out fast instead of hanging.
	ns.Close()
	if _, _, err := peer.FetchResult(ctx, "twitter", key); err == nil {
		t.Error("fetch against a closed peer succeeded")
	}
}
