package cluster

import (
	"fmt"
	"net/http"
	"sync"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/middleware"
	"github.com/maliva/maliva/internal/workload"
)

// Config sizes an in-process cluster: N replicas in one process, each a
// full gateway, sharing the (immutable) built datasets and one memoized
// rewriter per dataset. This is the -replicas deployment of maliva-server
// and the harness the byte-identity tests and BENCH_5 run against; a
// one-process-per-replica deployment assembles the same pieces by hand
// (NewNode + NewHTTPPeer).
type Config struct {
	// Replicas is the cluster size. Must be >= 1.
	Replicas int
	// VNodes is the virtual-node count per replica (0 = DefaultVNodes).
	VNodes int
	// Names is the dataset registration order (the first is every
	// replica's default dataset).
	Names []string
	// Datasets maps every name to its built dataset. Replicas share these
	// values; datasets are immutable once built.
	Datasets map[string]*workload.Dataset
	// Factory builds each dataset's rewriter. It is automatically wrapped
	// with SharedRewriterFactory, so it runs once per dataset for the whole
	// cluster (not once per replica) and the shared rewriter is serialized.
	Factory middleware.RewriterFactory
	// Server is each replica's serving template (per-replica caches and
	// admission are sized from it, exactly like a standalone gateway).
	Server middleware.ServerConfig
	// Space is the rewrite option space.
	Space core.SpaceSpec
	// WarmWorkers bounds per-replica warmup concurrency (see GatewayConfig).
	WarmWorkers int
	// Health tunes the router's replica health probing (zero = defaults,
	// see HealthConfig).
	Health HealthConfig
	// Hedge tunes each replica's hedged peer fetches (zero = defaults,
	// see HedgeConfig).
	Hedge HedgeConfig
	// Sessions tunes session tracking + speculative tile prefetch. In a
	// cluster, sessions live at the ROUTING tier: key routing fragments one
	// session's requests across replicas, so no single replica gateway sees
	// enough history to predict. The router tracks viewports and dispatches
	// predictions to each key's owner replica through the prefetch lane;
	// replica-gateway tracking is force-disabled.
	Sessions middleware.SessionConfig
}

// Cluster is an in-process replica set: N nodes, their ring, and the
// routing tier in front.
type Cluster struct {
	ring   *Ring
	nodes  []*Node
	router *Router
}

// New builds the cluster. Every replica gets its own registry (over the
// shared datasets), gateway, caches, and admission pool; peers are wired
// in-process.
func New(cfg Config) (*Cluster, error) {
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 replica, got %d", cfg.Replicas)
	}
	if len(cfg.Names) == 0 {
		return nil, fmt.Errorf("cluster: no datasets")
	}
	for _, name := range cfg.Names {
		if cfg.Datasets[name] == nil {
			return nil, fmt.Errorf("cluster: dataset %q has no built value", name)
		}
	}
	ring := NewRing(cfg.Replicas, cfg.VNodes)
	factory := SharedRewriterFactory(cfg.Factory)
	nodes := make([]*Node, cfg.Replicas)
	for i := range nodes {
		reg := workload.NewRegistry()
		for _, name := range cfg.Names {
			ds := cfg.Datasets[name]
			if err := reg.Register(name, func() (*workload.Dataset, error) { return ds, nil }); err != nil {
				return nil, err
			}
		}
		n, err := NewNode(i, ring, reg, factory, middleware.GatewayConfig{
			Server:      cfg.Server,
			Space:       cfg.Space,
			WarmWorkers: cfg.WarmWorkers,
			// Sessions are router-scope in a cluster (see Config.Sessions).
			Sessions: middleware.SessionConfig{Disabled: true},
		})
		if err != nil {
			return nil, err
		}
		n.SetHedge(cfg.Hedge)
		nodes[i] = n
	}
	for i, n := range nodes {
		peers := make([]PeerClient, len(nodes))
		for j, m := range nodes {
			if j != i {
				peers[j] = localPeer{node: m}
			}
		}
		n.SetPeers(peers)
	}
	router, err := NewRouterWithHealth(ring, nodes, cfg.Health)
	if err != nil {
		return nil, err
	}
	router.EnableSessions(cfg.Sessions)
	// Peer-cache ownership must agree with routing: every node resolves
	// owners over the router's routable set (Ring.OwnerAmong), not the full
	// ring, so the replica a key's requests concentrate on is the replica
	// its peers fetch from.
	for _, n := range nodes {
		n.SetHealth(router.health.Routable)
	}
	return &Cluster{ring: ring, nodes: nodes, router: router}, nil
}

// Warm eagerly builds every dataset's serving state on every replica.
// Datasets are pre-built and rewriters memoized cluster-wide, so per-replica
// warmup is cheap (server construction + cache allocation).
func (c *Cluster) Warm() error {
	return core.RunIndexed(len(c.nodes), 0, func(i int) error { return c.nodes[i].Warm() })
}

// Handler returns the routing tier's HTTP surface.
func (c *Cluster) Handler() http.Handler { return c.router.Handler() }

// Router returns the routing tier (metrics, snapshots).
func (c *Cluster) Router() *Router { return c.router }

// Ring returns the cluster's hash ring.
func (c *Cluster) Ring() *Ring { return c.ring }

// Nodes returns the replicas in ring order.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Node returns one replica.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Snapshot returns the cluster-wide metrics snapshot.
func (c *Cluster) Snapshot() Snapshot { return c.router.Snapshot() }

// Kill marks replica i crashed and tells the health pool immediately (the
// sentinel would have done it on the next routed request anyway; churn
// drills shouldn't depend on traffic to converge).
func (c *Cluster) Kill(i int) {
	c.nodes[i].SetDown(true)
	c.router.health.ReportFailure(i)
}

// Revive brings a killed replica back. The health pool re-admits it
// through the rejoining hysteresis (probes or served fallback traffic).
func (c *Cluster) Revive(i int) { c.nodes[i].SetDown(false) }

// Drain gracefully removes replica i from the routed set; its cache stays
// readable by peers.
func (c *Cluster) Drain(i int) {
	c.nodes[i].Drain()
	c.router.health.ReportDraining(i)
}

// Rejoin returns a drained replica to service (through rejoining).
func (c *Cluster) Rejoin(i int) { c.nodes[i].Rejoin() }

// Close stops the health probers and every node's background fill worker.
func (c *Cluster) Close() {
	c.router.Close()
	for _, n := range c.nodes {
		n.Close()
	}
}

// lockedRewriter serializes a rewriter shared across replicas. Each
// middleware.Server already serializes its own rewriter calls, but two
// replicas' servers are two independent serializers — the shared MDP
// agent's forward-pass scratch buffers need one cluster-wide lock. Rewrite
// outcomes are deterministic functions of (ctx, budget), so serialization
// order never changes a response.
type lockedRewriter struct {
	mu    sync.Mutex
	inner core.Rewriter
}

func (r *lockedRewriter) Name() string { return r.inner.Name() }

func (r *lockedRewriter) Rewrite(ctx *core.QueryContext, budget float64) core.Outcome {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inner.Rewrite(ctx, budget)
}

// SharedRewriterFactory memoizes a RewriterFactory per dataset name and
// wraps each built rewriter with a cluster-wide lock, so an R-replica
// cluster trains (or loads) each dataset's policy once instead of R times
// and shares the instance safely. Concurrent first calls for the same name
// single-flight; a factory error is cached (builders are deterministic, so
// retrying would fail identically — matching workload.Registry semantics).
func SharedRewriterFactory(f middleware.RewriterFactory) middleware.RewriterFactory {
	if f == nil {
		f = middleware.OracleFactory
	}
	type slot struct {
		once sync.Once
		rw   core.Rewriter
		err  error
	}
	var mu sync.Mutex
	slots := make(map[string]*slot)
	return func(name string, ds *workload.Dataset) (core.Rewriter, error) {
		mu.Lock()
		s := slots[name]
		if s == nil {
			s = &slot{}
			slots[name] = s
		}
		mu.Unlock()
		s.once.Do(func() {
			rw, err := f(name, ds)
			if err != nil {
				s.err = err
				return
			}
			s.rw = &lockedRewriter{inner: rw}
		})
		return s.rw, s.err
	}
}
