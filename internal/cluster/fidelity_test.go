package cluster

import (
	"net/http/httptest"
	"testing"

	"github.com/maliva/maliva/internal/workload"
)

// TestPeerFidelityRejects pins the cross-fidelity guards on the peer wire
// surface: a fill whose payload's approximation class contradicts its key is
// dropped, a poisoned cache entry is refused at fetch time, and a consistent
// approximate entry is only ever reachable under its approximate-tagged key
// — never from the exact spelling of the same request.
func TestPeerFidelityRejects(t *testing.T) {
	c, _ := newIngestCluster(t, 2)
	cs := httptest.NewServer(c.Handler())
	defer cs.Close()

	before := c.Snapshot()
	served := postOK(t, cs.URL+"/viz?dataset=twitter", twitterBody("word0025"))
	owner := routedTo(t, before, c.Snapshot())
	other := 1 - owner
	key := resultKeyOf(t, served, workload.USExtent, 500)

	resp, ok := c.Node(owner).fetchLocal("twitter", key)
	if !ok || resp == nil {
		t.Fatal("owner does not hold its own served key")
	}
	if resp.Approximate || key.Approx != "" {
		t.Fatalf("fixture not exact (approximate=%v, key tag %q) — the test premise is broken", resp.Approximate, key.Approx)
	}

	// Exact key, approximate payload: dropped and counted, nothing stored.
	approx := *resp
	approx.Approximate = true
	stats := c.Node(other).CacheSnapshot()
	c.Node(other).fillLocal("twitter", key, &approx)
	after := c.Node(other).CacheSnapshot()
	if d := after.FillFidelityRejects - stats.FillFidelityRejects; d != 1 {
		t.Errorf("fill fidelity rejects delta = %d, want 1", d)
	}
	if d := after.FillsReceived - stats.FillsReceived; d != 0 {
		t.Errorf("cross-fidelity fill was accepted (fills received delta %d)", d)
	}

	// Approximate-tagged key, exact payload: equally dropped.
	akey := key
	akey.Approx = "rows:0.2:0"
	stats = c.Node(other).CacheSnapshot()
	c.Node(other).fillLocal("twitter", akey, resp)
	if d := c.Node(other).CacheSnapshot().FillFidelityRejects - stats.FillFidelityRejects; d != 1 {
		t.Errorf("exact-payload fill under approx key: fidelity rejects delta = %d, want 1", d)
	}

	// Consistent approximate fill: accepted, reachable under its own key only.
	stats = c.Node(other).CacheSnapshot()
	c.Node(other).fillLocal("twitter", akey, &approx)
	if d := c.Node(other).CacheSnapshot().FillsReceived - stats.FillsReceived; d != 1 {
		t.Errorf("consistent approximate fill not accepted (delta %d)", d)
	}
	if got, ok := c.Node(other).fetchLocal("twitter", akey); !ok || !got.Approximate {
		t.Error("approximate entry not fetchable under its approximate key")
	}
	if _, ok := c.Node(other).fetchLocal("twitter", key); ok {
		t.Error("exact key reached an entry on a node holding only the approximate variant")
	}

	// Fetch-side guard: poison the owner's local cache with an approximate
	// payload under the exact key (bypassing the fill gate) — the peer fetch
	// surface must refuse to serve it.
	c.Node(owner).cacheFor("twitter").local.Put(key, &approx)
	stats = c.Node(owner).CacheSnapshot()
	if _, ok := c.Node(owner).fetchLocal("twitter", key); ok {
		t.Error("owner served a payload whose fidelity contradicts the key")
	}
	if d := c.Node(owner).CacheSnapshot().FetchFidelityRejects - stats.FetchFidelityRejects; d != 1 {
		t.Errorf("fetch fidelity rejects delta = %d, want 1", d)
	}
}
