package cluster

import (
	"bytes"
	"net/http"
	"net/url"

	"github.com/maliva/maliva/internal/middleware"
)

// Router-scope session tracking. A standalone gateway tracks sessions
// itself, but in a cluster the router's key routing sends consecutive
// viewports of one pan to different replicas — no replica gateway sees
// enough of the trajectory to predict, which is why cluster.New disables
// gateway-level tracking and the router observes here instead. Predictions
// are dispatched to the replica that OWNS the predicted key (the same
// unified key space live routing uses), flagged with the prefetch header so
// the owner admits them through its prefetch lane and fills its own cache —
// exactly where the live request for that tile will be routed next.

// EnableSessions turns on router-scope session tracking (no-op when
// cfg.Disabled). Call before serving traffic.
func (rt *Router) EnableSessions(cfg middleware.SessionConfig) {
	if cfg.Disabled {
		return
	}
	cfg = cfg.Normalized()
	rt.sessions = middleware.NewSessionTracker(cfg)
	rt.prefetchSem = make(chan struct{}, cfg.Workers)
	rt.observeCh = make(chan routerObservation, observeQueueCap)
	go rt.observeLoop()
}

// routerObservation is one successfully-routed viz request queued for
// session tracking.
type routerObservation struct {
	dataset string
	sid     string
	body    []byte
}

// observeQueueCap bounds the observer backlog; a full queue costs one round
// of predictions, never routing latency.
const observeQueueCap = 256

// observeSession enqueues a successfully-served viz request for the
// observer goroutine. Called on the routing goroutine after the response
// commits; the inline cost is two header reads and a channel send — the
// parse, the tracker's critical section, and dispatch (which may pay a cold
// plan build to key the prediction) all run off the serving path.
func (rt *Router) observeSession(r *http.Request, dataset string, body []byte) {
	if rt.sessions == nil || r.Header.Get(middleware.PrefetchHeader) != "" {
		return
	}
	sid := middleware.SessionID(r)
	if sid == "" {
		return
	}
	select {
	case rt.observeCh <- routerObservation{dataset: dataset, sid: sid, body: body}:
	default:
	}
}

// observeLoop is the router's single observer goroutine: it advances the
// session tracker per observation and dispatches predictions to the
// replicas owning their keys. Runs for the router's lifetime.
func (rt *Router) observeLoop() {
	for obs := range rt.observeCh {
		rt.observe(obs.dataset, obs.sid, obs.body)
	}
}

// observe records one viz request under its session id and dispatches the
// tracker's predictions.
func (rt *Router) observe(dataset, sid string, body []byte) {
	req, err := middleware.ParseRequest(body)
	if err != nil || req.Region.Area() <= 0 {
		return
	}
	// The extent (lattice anchor) is a dataset property — identical on every
	// replica — so any ready server's copy will do.
	var extent = req.Region
	found := false
	for _, n := range rt.nodes {
		if srv, ok := n.Gateway().ReadyServer(dataset); ok {
			extent, found = srv.DS.Extent, true
			break
		}
	}
	if !found {
		return
	}
	// Session ids are scoped per dataset: one browser tab pans one dataset.
	for _, pred := range rt.sessions.Observe(dataset+"\x00"+sid, req, extent) {
		rt.dispatchPrefetch(dataset, pred)
	}
}

// dispatchPrefetch sends one predicted request to the replica owning its
// result key, on a semaphore-bounded goroutine. No free token means the
// cluster is saturated with speculative work: the prediction is dropped on
// the spot. The owner is tried alone — a prefetch is not worth failover
// (it would warm a cache the next live request won't be routed to), and a
// refused or failed speculative request costs nothing.
func (rt *Router) dispatchPrefetch(dataset string, req middleware.Request) {
	select {
	case rt.prefetchSem <- struct{}{}:
	default:
		rt.prefetchDropped.Add(1)
		return
	}
	go func() {
		defer func() { <-rt.prefetchSem }()
		body, err := middleware.EncodeRequest(req)
		if err != nil {
			rt.prefetchDropped.Add(1)
			return
		}
		key, _ := rt.routeHash(dataset, body)
		order := rt.attemptOrder(key)
		if len(order) == 0 {
			rt.prefetchDropped.Add(1)
			return
		}
		target := "/viz"
		if dataset != "" {
			target += "?dataset=" + url.QueryEscape(dataset)
		}
		r, err := http.NewRequest(http.MethodPost, target, bytes.NewReader(body))
		if err != nil {
			rt.prefetchDropped.Add(1)
			return
		}
		r.Header.Set(middleware.PrefetchHeader, "1")
		r.Header.Set("Content-Type", "application/json")
		rt.prefetchDispatched.Add(1)
		rt.nodes[order[0]].ServeHTTP(&sinkWriter{}, r)
	}()
}

// sinkWriter discards a speculative response (prefetch is fire-and-forget
// cache warming; the 204/429 outcome is already counted replica-side).
type sinkWriter struct {
	hdr http.Header
}

func (s *sinkWriter) Header() http.Header {
	if s.hdr == nil {
		s.hdr = make(http.Header)
	}
	return s.hdr
}

func (s *sinkWriter) Write(b []byte) (int, error) { return len(b), nil }

func (s *sinkWriter) WriteHeader(int) {}
