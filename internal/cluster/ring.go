package cluster

import (
	"fmt"
	"sort"
)

// DefaultVNodes is the number of virtual points each replica contributes to
// the hash ring. 64 vkeys per replica keeps the ownership split within ~2×
// of fair share (pinned by TestRingDistributionBound) while the ring stays
// small enough that ownership lookups are a cheap binary search.
const DefaultVNodes = 64

// ringPoint is one virtual node: a position on the ring owned by a replica.
type ringPoint struct {
	hash    uint64
	replica int
}

// Ring is a consistent-hash ring over replica indexes 0..N-1. Every result
// key hashes to a position on the ring; the first virtual node at or after
// that position (wrapping) names the key's owning replica. The ring is
// immutable after construction and safe for concurrent use.
//
// Consistent hashing is what makes the routing tier cache-friendly: adding
// or removing one replica reassigns only ~1/N of the key space, so a scaling
// event doesn't cold-start every cache in the cluster.
type Ring struct {
	replicas int
	vnodes   int
	points   []ringPoint
}

// NewRing builds a ring over replicas replicas with vnodes virtual points
// each (vnodes <= 0 picks DefaultVNodes). replicas < 1 is clamped to 1 — a
// one-replica ring owns everything, which is the degenerate single-gateway
// deployment.
func NewRing(replicas, vnodes int) *Ring {
	if replicas < 1 {
		replicas = 1
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{
		replicas: replicas,
		vnodes:   vnodes,
		points:   make([]ringPoint, 0, replicas*vnodes),
	}
	for rep := 0; rep < replicas; rep++ {
		for v := 0; v < vnodes; v++ {
			// FNV alone clumps on short structured strings; the avalanche
			// finalizer spreads the points enough to hold the 2x-fair-share
			// ownership bound the distribution test pins.
			h := avalanche(hash64(fmt.Sprintf("replica-%d/vnode-%d", rep, v)))
			r.points = append(r.points, ringPoint{hash: h, replica: rep})
		}
	}
	// Deterministic order even under (astronomically unlikely) hash
	// collisions: tie-break on replica index.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].replica < r.points[j].replica
	})
	return r
}

// Replicas returns the number of replicas on the ring.
func (r *Ring) Replicas() int { return r.replicas }

// Owner returns the replica owning a key hash: the replica of the first
// virtual node clockwise from the hash.
func (r *Ring) Owner(key uint64) int {
	return r.points[r.search(key)].replica
}

// search returns the index of the first point with hash >= key, wrapping to
// 0 past the end.
func (r *Ring) search(key uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		return 0
	}
	return i
}

// OwnerAmong returns the first replica clockwise from the key that passes
// ok — ownership restricted to a subset of the ring without rebuilding it.
// This is how membership changes stay cheap: excluding one replica from
// the live set moves only the keys that replica owned (~1/N of the space)
// to their next-clockwise survivors, and the moment it passes ok again
// those keys return to it. Returns (-1, false) when nothing passes.
func (r *Ring) OwnerAmong(key uint64, ok func(replica int) bool) (int, bool) {
	start := r.search(key)
	seen := make([]bool, r.replicas)
	checked := 0
	for i := 0; i < len(r.points) && checked < r.replicas; i++ {
		rep := r.points[(start+i)%len(r.points)].replica
		if seen[rep] {
			continue
		}
		seen[rep] = true
		checked++
		if ok(rep) {
			return rep, true
		}
	}
	return -1, false
}

// Sequence returns every replica in failover order for a key: the owner
// first, then each further replica in the order their virtual nodes appear
// clockwise. The order is deterministic per key, so two routers (or two
// retries) agree on where a key fails over to.
func (r *Ring) Sequence(key uint64) []int {
	seq := make([]int, 0, r.replicas)
	seen := make([]bool, r.replicas)
	start := r.search(key)
	for i := 0; len(seq) < r.replicas; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			seq = append(seq, p.replica)
		}
	}
	return seq
}

// hash64 is 64-bit FNV-1a, the same family the middleware shard selector
// uses; the ring only needs a fast, stable, well-mixed hash.
func hash64(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 folds one value into a running FNV-style hash.
func mix64(h, v uint64) uint64 {
	h ^= v
	h *= 1099511628211
	return h
}

// avalanche is the 64-bit murmur3 finalizer: full-width bit diffusion for
// hashes of short, structured inputs.
func avalanche(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
