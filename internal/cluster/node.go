package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/maliva/maliva/internal/middleware"
	"github.com/maliva/maliva/internal/workload"
)

// ReplicaUnavailableHeader marks a response produced by a replica refusing
// to serve (value "down", "draining", or "recovering") instead of by its gateway. The
// routing tier treats it as an authoritative failure sentinel: fail the
// request over to the next replica in the key's ring sequence and demote
// the refusing replica in the health pool — without ever confusing the
// refusal with a gateway-level 503 (admission shedding), which must NOT
// fail over (every replica would shed the same overload).
const ReplicaUnavailableHeader = "X-Maliva-Replica-Unavailable"

// fillReq is one queued best-effort fill: a response this replica computed
// for a key another replica owns.
type fillReq struct {
	dataset string
	owner   int
	key     middleware.ResultKey
	resp    *middleware.Response
}

// fillQueueCap bounds the asynchronous fill queue. Fills are an
// optimization (they migrate results to their owning replica after a
// failover or direct hit); under backpressure dropping them is strictly
// safe — the owner just recomputes on its next cold request.
const fillQueueCap = 256

// Node is one cluster replica: a complete middleware.Gateway (its own
// servers, plan caches, lookup caches, admission pool) whose per-dataset
// result caches are wrapped with the peer-shared peerCache, plus the HTTP
// peer endpoints other replicas fetch from. Nodes are built two-phase:
// NewNode constructs the gateway, SetPeers wires the (by then fully
// constructed) peer set before any traffic flows.
type Node struct {
	id      int
	ring    *Ring
	gw      *middleware.Gateway
	handler http.Handler

	mu       sync.RWMutex
	peers    []PeerClient // index id is nil (self)
	caches   map[string]*peerCache
	secret   string
	hedge    HedgeConfig
	routable func(replica int) bool // health view for ownership (nil = full ring)

	stats    cacheStats
	state    atomic.Int32 // ReplicaState
	inflight atomic.Int64
	faults   atomic.Pointer[Faults]
	fetchLat latencyWindow

	fills    chan fillReq
	stop     chan struct{}
	stopOnce sync.Once
}

// NewNode builds replica id of the ring over its own registry and gateway
// configuration. The gateway's WrapResultCache hook is taken by the node
// (that is where the peer cache lives); setting it in gcfg is an error.
// Dataset builders in reg may return shared *workload.Dataset values across
// nodes — datasets are immutable once built.
func NewNode(id int, ring *Ring, reg *workload.Registry, factory middleware.RewriterFactory, gcfg middleware.GatewayConfig) (*Node, error) {
	if id < 0 || id >= ring.Replicas() {
		return nil, fmt.Errorf("cluster: replica id %d outside ring of %d", id, ring.Replicas())
	}
	if gcfg.WrapResultCache != nil {
		return nil, fmt.Errorf("cluster: GatewayConfig.WrapResultCache is owned by the node")
	}
	n := &Node{
		id:     id,
		ring:   ring,
		caches: make(map[string]*peerCache),
		fills:  make(chan fillReq, fillQueueCap),
		stop:   make(chan struct{}),
	}
	gcfg.WrapResultCache = func(dataset string, local middleware.ResultCache) middleware.ResultCache {
		pc := &peerCache{dataset: dataset, node: n, local: local}
		n.mu.Lock()
		n.caches[dataset] = pc
		n.mu.Unlock()
		return pc
	}
	gw, err := middleware.NewGateway(reg, factory, gcfg)
	if err != nil {
		return nil, err
	}
	n.gw = gw

	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/fetch", n.serveFetch)
	mux.HandleFunc("POST /cluster/fill", n.serveFill)
	mux.Handle("/", gw.Handler())
	n.handler = mux

	go n.fillLoop()
	return n, nil
}

// SetPeers installs the replica's view of the other replicas. peers must be
// indexed by replica id (the self slot is ignored). Call once, before
// serving traffic.
func (n *Node) SetPeers(peers []PeerClient) {
	n.mu.Lock()
	n.peers = peers
	n.mu.Unlock()
}

// SetHealth installs the node's view of which replicas are currently
// routable. Peer-cache ownership then uses Ring.OwnerAmong over that set —
// the SAME restricted key space the router walks — so the replica a request
// is routed to is the replica its peer cache calls owner. Without a view
// (one-process-per-replica deployments with no shared health pool) the
// full-ring owner is used. Call before serving traffic.
func (n *Node) SetHealth(view func(replica int) bool) {
	n.mu.Lock()
	n.routable = view
	n.mu.Unlock()
}

// ownerFor resolves a key hash to its effective owning replica: the first
// routable replica clockwise (matching Router.attemptOrder's first choice),
// falling back to the unrestricted owner when no view is installed or
// nothing is routable.
func (n *Node) ownerFor(hash uint64) int {
	n.mu.RLock()
	view := n.routable
	n.mu.RUnlock()
	if view != nil {
		if rep, ok := n.ring.OwnerAmong(hash, view); ok {
			return rep
		}
	}
	return n.ring.Owner(hash)
}

// dataVersion returns the node's current data version for a dataset, or
// false while the dataset's server is not ready here.
func (n *Node) dataVersion(dataset string) (uint64, bool) {
	srv, ok := n.gw.ReadyServer(dataset)
	if !ok {
		return 0, false
	}
	return srv.DataVersion(), true
}

// SetPeerSecret requires every /cluster request to carry the shared secret
// in PeerSecretHeader (403 otherwise). One-process-per-replica deployments
// serve the peer endpoints on the public listener, where an open fill
// endpoint would let any client poison the result cache; in-process
// clusters never cross HTTP and don't need it. Empty disables the check.
// Call before serving traffic.
func (n *Node) SetPeerSecret(secret string) {
	n.mu.Lock()
	n.secret = secret
	n.mu.Unlock()
}

// authorizePeer enforces the shared secret on a /cluster request.
func (n *Node) authorizePeer(w http.ResponseWriter, r *http.Request) bool {
	n.mu.RLock()
	secret := n.secret
	n.mu.RUnlock()
	if secret != "" && r.Header.Get(PeerSecretHeader) != secret {
		http.Error(w, "bad peer secret", http.StatusForbidden)
		return false
	}
	return true
}

// peer returns the client for a replica, or nil for self/unwired.
func (n *Node) peer(id int) PeerClient {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if id == n.id || id < 0 || id >= len(n.peers) {
		return nil
	}
	return n.peers[id]
}

// ID returns the node's replica index on the ring.
func (n *Node) ID() int { return n.id }

// Gateway returns the node's gateway (metrics, Warm, in-process embedding).
func (n *Node) Gateway() *middleware.Gateway { return n.gw }

// Warm eagerly builds every dataset's serving state on this node.
func (n *Node) Warm(names ...string) error { return n.gw.Warm(names...) }

// State returns the replica's own lifecycle state (Live, Draining, or
// Down — Rejoining is a health-pool view; a node that serves again is
// simply live from its own perspective).
func (n *Node) State() ReplicaState { return ReplicaState(n.state.Load()) }

// Down reports whether the replica is marked dead.
func (n *Node) Down() bool { return n.State() == StateDown }

// SetDown marks the replica dead (true) or alive (false). A dead in-process
// replica answers 503 on every route and errors on peer calls — the same
// view the cluster has of a crashed remote process. Tests and operational
// drills use it to exercise failover.
func (n *Node) SetDown(v bool) {
	if v {
		n.state.Store(int32(StateDown))
	} else {
		n.state.Store(int32(StateLive))
	}
}

// Drain takes the replica out of the routed set gracefully: new /viz,
// /query, and /ingest traffic is refused with the draining sentinel, while peer
// fetches, health checks, and metrics keep working — so the replica's
// cache remains readable by the cluster until the operator rejoins or
// retires it.
func (n *Node) Drain() { n.state.Store(int32(StateDraining)) }

// Rejoin returns a drained (or downed) replica to service. The health
// pool's rejoining hysteresis decides when routed traffic comes back.
func (n *Node) Rejoin() { n.state.Store(int32(StateLive)) }

// Recovering reports whether the node's gateway is replaying durable state
// (WAL recovery after a restart). A recovering replica refuses routed
// traffic with the recovering sentinel but keeps answering probes, peer
// fetches, and metrics.
func (n *Node) Recovering() bool { return n.gw.Recovering() }

// SetFaults installs (or, with nil, removes) a fault injector on the
// node's request surface: injected drops and errors answer with the down
// sentinel — exactly what a crashed replica looks like to the router —
// and injected delays stall the request. Peer-side injection is separate
// (FaultyPeer).
func (n *Node) SetFaults(f *Faults) { n.faults.Store(f) }

// SetHedge configures hedged peer fetches (see HedgeConfig). Call before
// serving traffic.
func (n *Node) SetHedge(cfg HedgeConfig) {
	n.mu.Lock()
	n.hedge = cfg.normalized()
	n.mu.Unlock()
}

// hedgeConfig returns the node's hedging policy.
func (n *Node) hedgeConfig() HedgeConfig {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.hedge
}

// Inflight reports how many requests the node is currently serving —
// drain observability (a drained replica is retirable once this is 0).
func (n *Node) Inflight() int64 { return n.inflight.Load() }

// Close stops the background fill worker. The node keeps serving; only
// cross-replica fill delivery stops.
func (n *Node) Close() { n.stopOnce.Do(func() { close(n.stop) }) }

// ServeHTTP serves the node's full surface: the gateway routes plus the
// /cluster peer endpoints, behind the lifecycle gate. A down replica
// refuses everything; a draining one refuses only new visualization
// traffic (peer fetches, health checks, and metrics stay up, so its cache
// remains useful and probes can watch it).
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch n.State() {
	case StateDown:
		w.Header().Set(ReplicaUnavailableHeader, "down")
		http.Error(w, fmt.Sprintf("replica %d is down", n.id), http.StatusServiceUnavailable)
		return
	case StateDraining:
		w.Header().Set(ReplicaUnavailableHeader, "draining")
		if r.URL.Path == "/viz" || r.URL.Path == "/query" || r.URL.Path == "/ingest" {
			http.Error(w, fmt.Sprintf("replica %d is draining", n.id), http.StatusServiceUnavailable)
			return
		}
	default:
		if n.gw.Recovering() {
			w.Header().Set(ReplicaUnavailableHeader, "recovering")
			if r.URL.Path == "/viz" || r.URL.Path == "/query" || r.URL.Path == "/ingest" {
				http.Error(w, fmt.Sprintf("replica %d is recovering", n.id), http.StatusServiceUnavailable)
				return
			}
		}
	}
	if f := n.faults.Load(); f != nil {
		switch f.decide() {
		case faultDrop, faultErr:
			// Either injected failure presents as a crashed replica: the
			// sentinel lets the router fail over instead of surfacing a
			// fabricated error body that would break byte identity.
			w.Header().Set(ReplicaUnavailableHeader, "down")
			http.Error(w, fmt.Sprintf("replica %d: injected fault", n.id), http.StatusServiceUnavailable)
			return
		case faultDelay:
			sleepCtx(r.Context(), f.cfg.Delay)
		}
	}
	n.inflight.Add(1)
	defer n.inflight.Add(-1)
	n.handler.ServeHTTP(w, r)
}

// Handler returns the node as an http.Handler (what a one-process-per-
// replica deployment listens on).
func (n *Node) Handler() http.Handler { return n }

// cacheFor returns the dataset's peer cache, or nil before its server has
// been built on this node.
func (n *Node) cacheFor(dataset string) *peerCache {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.caches[dataset]
}

// fetchLocal answers a peer's fetch from this node's LOCAL cache only —
// never recursing into the peer path, so fetch chains cannot form. A key
// minted at a data version other than this node's current one is refused
// outright: after an ingest flush, a peer with a lagging version view must
// not be handed a pre-flush answer (nor a post-flush answer for its
// pre-flush key — versions must match exactly).
func (n *Node) fetchLocal(dataset string, key middleware.ResultKey) (*middleware.Response, bool) {
	pc := n.cacheFor(dataset)
	if pc == nil {
		return nil, false
	}
	n.stats.fetchesServed.Add(1)
	if v, ok := n.dataVersion(dataset); ok && key.DataVersion != v {
		n.stats.fetchVersionRejects.Add(1)
		return nil, false
	}
	resp := pc.local.Get(key)
	if resp != nil && !fidelityMatch(key, resp) {
		n.stats.fetchFidelityRejects.Add(1)
		return nil, false
	}
	return resp, resp != nil
}

// fillLocal accepts a peer's computed response into this node's local cache.
// Fills carrying a stale data version are dropped: the flush that bumped the
// version already invalidated that key space, and accepting the entry would
// only pin dead memory (version-keyed lookups can never address it again —
// but refusing keeps a lagging peer from churning this cache's LRU).
func (n *Node) fillLocal(dataset string, key middleware.ResultKey, resp *middleware.Response) {
	pc := n.cacheFor(dataset)
	if pc == nil || resp == nil {
		return
	}
	if v, ok := n.dataVersion(dataset); ok && key.DataVersion != v {
		n.stats.fillVersionRejects.Add(1)
		return
	}
	if !fidelityMatch(key, resp) {
		n.stats.fillFidelityRejects.Add(1)
		return
	}
	pc.local.Put(key, resp)
	n.stats.fillsReceived.Add(1)
}

// enqueueFill queues a best-effort fill toward the key's owner; drops when
// the queue is full (the request path never blocks on fill delivery).
func (n *Node) enqueueFill(f fillReq) {
	select {
	case n.fills <- f:
	default:
		n.stats.fillsDropped.Add(1)
	}
}

// fillLoop delivers queued fills to their owners in the background.
func (n *Node) fillLoop() {
	for {
		select {
		case <-n.stop:
			return
		case f := <-n.fills:
			n.deliverFill(f)
		}
	}
}

// deliverFill sends one queued fill to its owner. A panicking peer-client
// implementation is recovered and counted as a dropped fill instead of
// killing the worker goroutine (fills are best effort by contract).
func (n *Node) deliverFill(f fillReq) {
	defer func() {
		if r := recover(); r != nil {
			n.stats.fillsDropped.Add(1)
		}
	}()
	peer := n.peer(f.owner)
	if peer == nil {
		n.stats.fillsDropped.Add(1)
		return
	}
	if err := peer.FillResult(f.dataset, f.key, f.resp); err != nil {
		n.stats.fillsDropped.Add(1)
	} else {
		n.stats.fillsSent.Add(1)
	}
}

// serveFetch answers POST /cluster/fetch?dataset=<name>: body is a
// middleware.ResultKey; 200 + Response JSON on a local hit, 204 on a miss.
func (n *Node) serveFetch(w http.ResponseWriter, r *http.Request) {
	if !n.authorizePeer(w, r) {
		return
	}
	var key middleware.ResultKey
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(r.Body).Decode(&key); err != nil {
		http.Error(w, "bad fetch body: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp, ok := n.fetchLocal(r.URL.Query().Get("dataset"), key)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// serveFill accepts POST /cluster/fill?dataset=<name>: body is a peerFill;
// always 204 (fills are best effort on both sides).
func (n *Node) serveFill(w http.ResponseWriter, r *http.Request) {
	if !n.authorizePeer(w, r) {
		return
	}
	var f peerFill
	r.Body = http.MaxBytesReader(w, r.Body, 8<<20)
	if err := json.NewDecoder(r.Body).Decode(&f); err != nil {
		http.Error(w, "bad fill body: "+err.Error(), http.StatusBadRequest)
		return
	}
	n.fillLocal(r.URL.Query().Get("dataset"), f.Key, f.Response)
	w.WriteHeader(http.StatusNoContent)
}

// CacheSnapshot returns the node's peer-cache counters.
func (n *Node) CacheSnapshot() CacheSnapshot { return n.stats.snapshot() }

// HedgeConfig tunes hedged peer fetches: when the key's owner has not
// answered within a delay derived from recent fetch latencies, a second
// fetch races against the next replica in the key's ring sequence; the
// first response wins and the loser is cancelled. One slow (or silently
// dead) owner then costs roughly the hedge delay, not the full peer
// timeout. The zero value picks every default.
type HedgeConfig struct {
	// Quantile of the recent primary-fetch latency distribution that
	// arms the hedge timer. Default 0.9 — hedges fire for the slowest
	// ~10% of fetches, keeping duplicate work bounded.
	Quantile float64
	// MinDelay floors the armed delay (and is the cold-start delay while
	// the latency window is empty). Default 5ms.
	MinDelay time.Duration
	// MaxDelay caps the armed delay. Default DefaultPeerTimeout/2 — a
	// hedge that can't beat the primary's timeout is pointless.
	MaxDelay time.Duration
	// Disabled turns hedging off (single-fetch behavior).
	Disabled bool
}

// normalized resolves defaults.
func (c HedgeConfig) normalized() HedgeConfig {
	if c.Quantile <= 0 || c.Quantile >= 1 {
		c.Quantile = 0.9
	}
	if c.MinDelay <= 0 {
		c.MinDelay = 5 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = DefaultPeerTimeout / 2
	}
	return c
}

// latencyWindowSize bounds the per-node sample window the hedge delay is
// derived from. 128 samples follow latency shifts within a few seconds of
// traffic while keeping the quantile computation trivial.
const latencyWindowSize = 128

// latencyWindow is a fixed-size ring of recent peer-fetch latencies.
type latencyWindow struct {
	mu  sync.Mutex
	buf [latencyWindowSize]time.Duration
	n   int // samples stored (≤ len(buf))
	idx int // next write position
}

// observe records one latency sample.
func (w *latencyWindow) observe(d time.Duration) {
	w.mu.Lock()
	w.buf[w.idx] = d
	w.idx = (w.idx + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
	w.mu.Unlock()
}

// quantile returns the q-quantile of the window, or 0 while it is empty.
func (w *latencyWindow) quantile(q float64) time.Duration {
	w.mu.Lock()
	if w.n == 0 {
		w.mu.Unlock()
		return 0
	}
	tmp := make([]time.Duration, w.n)
	copy(tmp, w.buf[:w.n])
	w.mu.Unlock()
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	i := int(q * float64(len(tmp)))
	if i >= len(tmp) {
		i = len(tmp) - 1
	}
	return tmp[i]
}

// hedgeDelay derives the current hedge delay from the latency window.
func (n *Node) hedgeDelay(cfg HedgeConfig) time.Duration {
	d := n.fetchLat.quantile(cfg.Quantile)
	if d < cfg.MinDelay {
		d = cfg.MinDelay
	}
	if d > cfg.MaxDelay {
		d = cfg.MaxDelay
	}
	return d
}

// hedgeTarget picks the replica a hedged fetch races against: the next
// replica in the key's ring sequence after the owner (skipping self) —
// the replica most likely to hold the key after a membership change or an
// async fill. Nil when the cluster has no third party to ask.
func (n *Node) hedgeTarget(key middleware.ResultKey, owner int) PeerClient {
	for _, idx := range n.ring.Sequence(key.Hash()) {
		if idx == owner || idx == n.id {
			continue
		}
		if p := n.peer(idx); p != nil {
			return p
		}
	}
	return nil
}

// fetchOutcome is one leg's result in the hedged race.
type fetchOutcome struct {
	resp   *middleware.Response
	ok     bool
	err    error
	hedged bool
	took   time.Duration
}

// hedgedFetch asks the key's owner for a cached result, racing a hedge
// fetch against the next ring replica if the owner is slow (see
// HedgeConfig). The first response — hit or clean miss — wins; the losing
// leg is cancelled through the shared context. An owner error before the
// hedge timer fires launches the hedge immediately. Both legs failing
// returns the first error (the caller degrades to local compute).
func (n *Node) hedgedFetch(dataset string, key middleware.ResultKey, owner int, primary PeerClient) (*middleware.Response, bool, error) {
	ctx, cancel := context.WithTimeout(context.Background(), DefaultPeerTimeout)
	defer cancel() // cancels the losing leg

	ch := make(chan fetchOutcome, 2) // buffered: the loser never blocks
	launch := func(p PeerClient, hedged bool) {
		start := time.Now()
		resp, ok, err := p.FetchResult(ctx, dataset, key)
		ch <- fetchOutcome{resp: resp, ok: ok, err: err, hedged: hedged, took: time.Since(start)}
	}
	go launch(primary, false)

	cfg := n.hedgeConfig()
	var hedgeC <-chan time.Time
	var hedgePeer PeerClient
	if !cfg.Disabled {
		if hedgePeer = n.hedgeTarget(key, owner); hedgePeer != nil {
			t := time.NewTimer(n.hedgeDelay(cfg))
			defer t.Stop()
			hedgeC = t.C
		}
	}
	launchHedge := func() {
		hedgeC = nil
		n.stats.hedgedFetches.Add(1)
		go launch(hedgePeer, true)
	}

	outstanding := 1
	var firstErr error
	for {
		select {
		case <-hedgeC:
			outstanding++
			launchHedge()
		case out := <-ch:
			outstanding--
			if out.err == nil {
				if out.hedged {
					n.stats.hedgeWins.Add(1)
				} else {
					// Only primary latencies feed the window: hedge legs
					// are a different (already-failing) distribution.
					n.fetchLat.observe(out.took)
				}
				return out.resp, out.ok, nil
			}
			if isTimeout(out.err) {
				n.stats.fetchTimeouts.Add(1)
			}
			if firstErr == nil {
				firstErr = out.err
			}
			if outstanding == 0 {
				if hedgeC != nil && hedgePeer != nil {
					// The owner failed before the timer: fire the hedge
					// now rather than give up.
					outstanding++
					launchHedge()
					continue
				}
				return nil, false, firstErr
			}
		}
	}
}
