package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"github.com/maliva/maliva/internal/middleware"
	"github.com/maliva/maliva/internal/workload"
)

// fillReq is one queued best-effort fill: a response this replica computed
// for a key another replica owns.
type fillReq struct {
	dataset string
	owner   int
	key     middleware.ResultKey
	resp    *middleware.Response
}

// fillQueueCap bounds the asynchronous fill queue. Fills are an
// optimization (they migrate results to their owning replica after a
// failover or direct hit); under backpressure dropping them is strictly
// safe — the owner just recomputes on its next cold request.
const fillQueueCap = 256

// Node is one cluster replica: a complete middleware.Gateway (its own
// servers, plan caches, lookup caches, admission pool) whose per-dataset
// result caches are wrapped with the peer-shared peerCache, plus the HTTP
// peer endpoints other replicas fetch from. Nodes are built two-phase:
// NewNode constructs the gateway, SetPeers wires the (by then fully
// constructed) peer set before any traffic flows.
type Node struct {
	id      int
	ring    *Ring
	gw      *middleware.Gateway
	handler http.Handler

	mu     sync.RWMutex
	peers  []PeerClient // index id is nil (self)
	caches map[string]*peerCache
	secret string

	stats cacheStats
	down  atomic.Bool

	fills    chan fillReq
	stop     chan struct{}
	stopOnce sync.Once
}

// NewNode builds replica id of the ring over its own registry and gateway
// configuration. The gateway's WrapResultCache hook is taken by the node
// (that is where the peer cache lives); setting it in gcfg is an error.
// Dataset builders in reg may return shared *workload.Dataset values across
// nodes — datasets are immutable once built.
func NewNode(id int, ring *Ring, reg *workload.Registry, factory middleware.RewriterFactory, gcfg middleware.GatewayConfig) (*Node, error) {
	if id < 0 || id >= ring.Replicas() {
		return nil, fmt.Errorf("cluster: replica id %d outside ring of %d", id, ring.Replicas())
	}
	if gcfg.WrapResultCache != nil {
		return nil, fmt.Errorf("cluster: GatewayConfig.WrapResultCache is owned by the node")
	}
	n := &Node{
		id:     id,
		ring:   ring,
		caches: make(map[string]*peerCache),
		fills:  make(chan fillReq, fillQueueCap),
		stop:   make(chan struct{}),
	}
	gcfg.WrapResultCache = func(dataset string, local middleware.ResultCache) middleware.ResultCache {
		pc := &peerCache{dataset: dataset, node: n, local: local}
		n.mu.Lock()
		n.caches[dataset] = pc
		n.mu.Unlock()
		return pc
	}
	gw, err := middleware.NewGateway(reg, factory, gcfg)
	if err != nil {
		return nil, err
	}
	n.gw = gw

	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/fetch", n.serveFetch)
	mux.HandleFunc("POST /cluster/fill", n.serveFill)
	mux.Handle("/", gw.Handler())
	n.handler = mux

	go n.fillLoop()
	return n, nil
}

// SetPeers installs the replica's view of the other replicas. peers must be
// indexed by replica id (the self slot is ignored). Call once, before
// serving traffic.
func (n *Node) SetPeers(peers []PeerClient) {
	n.mu.Lock()
	n.peers = peers
	n.mu.Unlock()
}

// SetPeerSecret requires every /cluster request to carry the shared secret
// in PeerSecretHeader (403 otherwise). One-process-per-replica deployments
// serve the peer endpoints on the public listener, where an open fill
// endpoint would let any client poison the result cache; in-process
// clusters never cross HTTP and don't need it. Empty disables the check.
// Call before serving traffic.
func (n *Node) SetPeerSecret(secret string) {
	n.mu.Lock()
	n.secret = secret
	n.mu.Unlock()
}

// authorizePeer enforces the shared secret on a /cluster request.
func (n *Node) authorizePeer(w http.ResponseWriter, r *http.Request) bool {
	n.mu.RLock()
	secret := n.secret
	n.mu.RUnlock()
	if secret != "" && r.Header.Get(PeerSecretHeader) != secret {
		http.Error(w, "bad peer secret", http.StatusForbidden)
		return false
	}
	return true
}

// peer returns the client for a replica, or nil for self/unwired.
func (n *Node) peer(id int) PeerClient {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if id == n.id || id < 0 || id >= len(n.peers) {
		return nil
	}
	return n.peers[id]
}

// ID returns the node's replica index on the ring.
func (n *Node) ID() int { return n.id }

// Gateway returns the node's gateway (metrics, Warm, in-process embedding).
func (n *Node) Gateway() *middleware.Gateway { return n.gw }

// Warm eagerly builds every dataset's serving state on this node.
func (n *Node) Warm(names ...string) error { return n.gw.Warm(names...) }

// Down reports whether the replica is marked dead.
func (n *Node) Down() bool { return n.down.Load() }

// SetDown marks the replica dead (true) or alive (false). A dead in-process
// replica answers 503 on every route and errors on peer calls — the same
// view the cluster has of a crashed remote process. Tests and operational
// drills use it to exercise failover.
func (n *Node) SetDown(v bool) { n.down.Store(v) }

// Close stops the background fill worker. The node keeps serving; only
// cross-replica fill delivery stops.
func (n *Node) Close() { n.stopOnce.Do(func() { close(n.stop) }) }

// ServeHTTP serves the node's full surface: the gateway routes plus the
// /cluster peer endpoints, behind the down switch.
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if n.Down() {
		http.Error(w, fmt.Sprintf("replica %d is down", n.id), http.StatusServiceUnavailable)
		return
	}
	n.handler.ServeHTTP(w, r)
}

// Handler returns the node as an http.Handler (what a one-process-per-
// replica deployment listens on).
func (n *Node) Handler() http.Handler { return n }

// cacheFor returns the dataset's peer cache, or nil before its server has
// been built on this node.
func (n *Node) cacheFor(dataset string) *peerCache {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.caches[dataset]
}

// fetchLocal answers a peer's fetch from this node's LOCAL cache only —
// never recursing into the peer path, so fetch chains cannot form.
func (n *Node) fetchLocal(dataset string, key middleware.ResultKey) (*middleware.Response, bool) {
	pc := n.cacheFor(dataset)
	if pc == nil {
		return nil, false
	}
	n.stats.fetchesServed.Add(1)
	resp := pc.local.Get(key)
	return resp, resp != nil
}

// fillLocal accepts a peer's computed response into this node's local cache.
func (n *Node) fillLocal(dataset string, key middleware.ResultKey, resp *middleware.Response) {
	pc := n.cacheFor(dataset)
	if pc == nil || resp == nil {
		return
	}
	pc.local.Put(key, resp)
	n.stats.fillsReceived.Add(1)
}

// enqueueFill queues a best-effort fill toward the key's owner; drops when
// the queue is full (the request path never blocks on fill delivery).
func (n *Node) enqueueFill(f fillReq) {
	select {
	case n.fills <- f:
	default:
		n.stats.fillsDropped.Add(1)
	}
}

// fillLoop delivers queued fills to their owners in the background.
func (n *Node) fillLoop() {
	for {
		select {
		case <-n.stop:
			return
		case f := <-n.fills:
			peer := n.peer(f.owner)
			if peer == nil {
				n.stats.fillsDropped.Add(1)
				continue
			}
			if err := peer.FillResult(f.dataset, f.key, f.resp); err != nil {
				n.stats.fillsDropped.Add(1)
			} else {
				n.stats.fillsSent.Add(1)
			}
		}
	}
}

// serveFetch answers POST /cluster/fetch?dataset=<name>: body is a
// middleware.ResultKey; 200 + Response JSON on a local hit, 204 on a miss.
func (n *Node) serveFetch(w http.ResponseWriter, r *http.Request) {
	if !n.authorizePeer(w, r) {
		return
	}
	var key middleware.ResultKey
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(r.Body).Decode(&key); err != nil {
		http.Error(w, "bad fetch body: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp, ok := n.fetchLocal(r.URL.Query().Get("dataset"), key)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// serveFill accepts POST /cluster/fill?dataset=<name>: body is a peerFill;
// always 204 (fills are best effort on both sides).
func (n *Node) serveFill(w http.ResponseWriter, r *http.Request) {
	if !n.authorizePeer(w, r) {
		return
	}
	var f peerFill
	r.Body = http.MaxBytesReader(w, r.Body, 8<<20)
	if err := json.NewDecoder(r.Body).Decode(&f); err != nil {
		http.Error(w, "bad fill body: "+err.Error(), http.StatusBadRequest)
		return
	}
	n.fillLocal(r.URL.Query().Get("dataset"), f.Key, f.Response)
	w.WriteHeader(http.StatusNoContent)
}

// CacheSnapshot returns the node's peer-cache counters.
func (n *Node) CacheSnapshot() CacheSnapshot { return n.stats.snapshot() }
