package cluster

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/maliva/maliva/internal/engine"
	"github.com/maliva/maliva/internal/middleware"
)

// tileBody encodes a heatmap request over one z-level lattice tile of ext.
func tileBody(t testing.TB, ext engine.Rect, z, tx, ty int) []byte {
	t.Helper()
	n := float64(int(1) << z)
	w := (ext.MaxLon - ext.MinLon) / n
	h := (ext.MaxLat - ext.MinLat) / n
	body, err := middleware.EncodeRequest(middleware.Request{
		Keyword: "word0003",
		From:    time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC),
		To:      time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC),
		Kind:    middleware.VizHeatmap, GridW: 16, GridH: 16, BudgetMs: 500,
		Region: engine.Rect{
			MinLon: ext.MinLon + float64(tx)*w, MinLat: ext.MinLat + float64(ty)*h,
			MaxLon: ext.MinLon + float64(tx+1)*w, MaxLat: ext.MinLat + float64(ty+1)*h,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// sessPost fires one /viz request carrying a session id and asserts HTTP 200.
func sessPost(t testing.TB, url string, body []byte, sid string) []byte {
	t.Helper()
	r, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	r.Header.Set("Content-Type", "application/json")
	r.Header.Set(middleware.SessionHeader, sid)
	resp, err := http.DefaultClient.Do(r)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, buf.Bytes())
	}
	return buf.Bytes()
}

// TestClusterSessionPrefetch: in a cluster the unified key routing scatters a
// pan's consecutive viewports across replicas, so session tracking lives in
// the router, and each prediction is dispatched — flagged with the prefetch
// header — to the replica that OWNS the predicted key. The test pans one
// session through a 2-replica cluster and verifies (a) the router observes
// and dispatches predictions, (b) some replica computes speculative fills
// through its prefetch lane and a later live step hits one, and (c) every
// response stays byte-identical to a standalone gateway. Run with -race.
func TestClusterSessionPrefetch(t *testing.T) {
	c := newTestCluster(t, 2)
	cs := httptest.NewServer(c.Handler())
	defer cs.Close()
	ext := testDatasets(t)["twitter"].Extent

	prefetchTotals := func() (computed, hits int64) {
		for _, rs := range c.Snapshot().Replicas {
			for _, m := range rs.Gateway.Datasets {
				computed += m.PrefetchComputed
				hits += m.PrefetchHits
			}
		}
		return
	}

	// Pan east along z4 tile rows with think-time gaps. The pipeline is
	// asynchronous end to end (router observer queue, dispatch semaphore,
	// replica prefetch lane), so no particular step is pinned as the hit —
	// the pan continues until a live step lands on a speculative fill.
	var trace [][]byte
	var bodies [][]byte
	deadline := time.Now().Add(15 * time.Second)
	for y := 8; y <= 11; y++ {
		_, hits := prefetchTotals()
		if hits > 0 {
			break
		}
		for x := 1; x <= 14; x++ {
			body := tileBody(t, ext, 4, x, y)
			trace = append(trace, body)
			bodies = append(bodies, sessPost(t, cs.URL+"/viz?dataset=twitter", body, "cluster-pan"))
			if _, hits := prefetchTotals(); hits > 0 && x >= 3 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("no pan step was served from a speculative fill; snapshot %+v", c.Snapshot())
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	snap := c.Snapshot()
	if snap.PrefetchDispatched == 0 {
		t.Fatalf("router dispatched no predictions: %+v", snap)
	}
	computed, hits := prefetchTotals()
	if computed == 0 || hits == 0 {
		t.Fatalf("replica prefetch lanes: computed=%d hits=%d, want both > 0", computed, hits)
	}

	// No live request may have been rejected — speculative load must never
	// surface as a 429/503 a pan step wouldn't have seen (the pan itself is
	// the only live traffic, and every step asserted HTTP 200 above, so this
	// double-checks the counters agree).
	for _, rs := range snap.Replicas {
		for name, m := range rs.Gateway.Datasets {
			if m.RejectedBusy > 0 || m.RejectedWait > 0 {
				t.Fatalf("replica %d dataset %s rejected live work during the pan: %+v", rs.Replica, name, m)
			}
		}
	}

	// Byte identity: replay the trace on a standalone gateway (no session id,
	// so no speculation) and compare step for step.
	gw := newTestGateway(t)
	gs := httptest.NewServer(gw.Handler())
	defer gs.Close()
	for i, body := range trace {
		want := postOK(t, gs.URL+"/viz?dataset=twitter", body)
		if !bytes.Equal(bodies[i], want) {
			t.Fatalf("pan step %d diverged from the standalone gateway:\ncluster: %s\ngateway: %s", i, bodies[i], want)
		}
	}
}
