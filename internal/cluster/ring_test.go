package cluster

import "testing"

// splitmix64 is a tiny deterministic key-stream generator for distribution
// tests (independent of the ring's own hash family).
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TestRingDistributionBound: at the default 64 vkeys per replica, no
// replica owns more than 2× its fair share of a large uniform key space —
// the bound the routing tier's load balance rests on.
func TestRingDistributionBound(t *testing.T) {
	const keys = 20_000
	for _, replicas := range []int{2, 3, 4, 8} {
		ring := NewRing(replicas, DefaultVNodes)
		counts := make([]int, replicas)
		state := uint64(42)
		for i := 0; i < keys; i++ {
			counts[ring.Owner(splitmix64(&state))]++
		}
		fair := keys / replicas
		for rep, c := range counts {
			if c > 2*fair {
				t.Errorf("replicas=%d: replica %d owns %d keys, > 2x fair share %d", replicas, rep, c, fair)
			}
			if c == 0 {
				t.Errorf("replicas=%d: replica %d owns nothing", replicas, rep)
			}
		}
	}
}

// TestRingDeterministic: ownership is a pure function of (replicas, vnodes,
// key) — two independently built rings agree on every key, which is what
// lets every router and every replica compute the same owner.
func TestRingDeterministic(t *testing.T) {
	a := NewRing(5, DefaultVNodes)
	b := NewRing(5, DefaultVNodes)
	state := uint64(7)
	for i := 0; i < 5_000; i++ {
		k := splitmix64(&state)
		if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
			t.Fatalf("key %x: ring A says %d, ring B says %d", k, ao, bo)
		}
	}
}

// TestRingSequence: the failover sequence starts at the owner, covers every
// replica exactly once, and is deterministic per key.
func TestRingSequence(t *testing.T) {
	ring := NewRing(4, DefaultVNodes)
	state := uint64(99)
	for i := 0; i < 1_000; i++ {
		k := splitmix64(&state)
		seq := ring.Sequence(k)
		if len(seq) != 4 {
			t.Fatalf("key %x: sequence %v has %d replicas, want 4", k, seq, len(seq))
		}
		if seq[0] != ring.Owner(k) {
			t.Fatalf("key %x: sequence starts at %d, owner is %d", k, seq[0], ring.Owner(k))
		}
		seen := make(map[int]bool)
		for _, r := range seq {
			if seen[r] {
				t.Fatalf("key %x: sequence %v repeats replica %d", k, seq, r)
			}
			seen[r] = true
		}
		if got := ring.Sequence(k); len(got) != len(seq) || got[0] != seq[0] || got[1] != seq[1] {
			t.Fatalf("key %x: sequence not deterministic: %v then %v", k, seq, got)
		}
	}
}

// TestRingDegenerate: a one-replica ring owns everything, and invalid sizes
// clamp instead of breaking.
func TestRingDegenerate(t *testing.T) {
	ring := NewRing(1, 0)
	state := uint64(3)
	for i := 0; i < 100; i++ {
		if owner := ring.Owner(splitmix64(&state)); owner != 0 {
			t.Fatalf("single-replica ring routed to %d", owner)
		}
	}
	if NewRing(0, -1).Replicas() != 1 {
		t.Error("replicas < 1 should clamp to 1")
	}
}

// TestRingOwnerAmongExclusion: restricting ownership to a subset (what the
// router does when a replica leaves the live set) moves ONLY the keys the
// excluded replica owned — everyone else's keys stay put — and the moved
// fraction stays near 1/N. This is the cheap-membership-change property the
// health pool relies on: no ring rebuild, no cluster-wide cache cold start.
func TestRingOwnerAmongExclusion(t *testing.T) {
	const keys = 20_000
	const replicas = 4
	ring := NewRing(replicas, DefaultVNodes)
	const excluded = 2
	ok := func(r int) bool { return r != excluded }
	moved := 0
	state := uint64(2026)
	for i := 0; i < keys; i++ {
		k := splitmix64(&state)
		full := ring.Owner(k)
		among, found := ring.OwnerAmong(k, ok)
		if !found {
			t.Fatalf("key %x: no owner among 3 live replicas", k)
		}
		if among == excluded {
			t.Fatalf("key %x: OwnerAmong returned the excluded replica", k)
		}
		if full != excluded {
			if among != full {
				t.Fatalf("key %x: owner %d not excluded, but OwnerAmong moved it to %d", k, full, among)
			}
			continue
		}
		moved++
		// And the key comes home the moment the replica passes again.
		if back, _ := ring.OwnerAmong(k, func(int) bool { return true }); back != full {
			t.Fatalf("key %x: all-pass OwnerAmong %d != Owner %d", k, back, full)
		}
	}
	if moved == 0 {
		t.Error("excluding a replica moved nothing; it owned no keys")
	}
	if moved > 2*keys/replicas {
		t.Errorf("excluding 1 of %d replicas moved %d/%d keys, want <= %d", replicas, moved, keys, 2*keys/replicas)
	}
	if rep, found := ring.OwnerAmong(1, func(int) bool { return false }); found || rep != -1 {
		t.Errorf("empty live set: got (%d, %v), want (-1, false)", rep, found)
	}
}

// TestRingMovementOnScale: growing the cluster by one replica moves only a
// bounded fraction of the key space — the consistent-hashing property that
// keeps a scaling event from cold-starting every cache.
func TestRingMovementOnScale(t *testing.T) {
	const keys = 20_000
	small := NewRing(4, DefaultVNodes)
	big := NewRing(5, DefaultVNodes)
	moved := 0
	state := uint64(123)
	for i := 0; i < keys; i++ {
		k := splitmix64(&state)
		so, bo := small.Owner(k), big.Owner(k)
		if so != bo {
			moved++
			// Keys may only move to the new replica or stay put; a key
			// hopping between two old replicas would break the
			// "only ~1/N reshuffles" contract.
			if bo != 4 {
				t.Fatalf("key %x moved between pre-existing replicas: %d -> %d", k, so, bo)
			}
		}
	}
	// Expect ~1/5 of keys to move; allow a 2x margin for vnode granularity.
	if moved > 2*keys/5 {
		t.Errorf("scaling 4->5 replicas moved %d/%d keys, want <= %d", moved, keys, 2*keys/5)
	}
	if moved == 0 {
		t.Error("scaling 4->5 replicas moved nothing; new replica owns no keys")
	}
}
