package cluster

import (
	"errors"
	"testing"
	"time"
)

// scriptedProbe is a Probe whose result the test controls per replica.
type scriptedProbe struct {
	errs []error
}

func (p *scriptedProbe) probe(i int) error { return p.errs[i] }

// TestHealthPoolLifecycle drives the full state machine through Pulse (the
// prober's entry point) and the passive reports: live → down after
// FailAfter probe failures, down → rejoining on the first success,
// rejoining → live after RejoinAfter successes, rejoining → down on any
// failure, and draining as an operator state that recovers through
// rejoining.
func TestHealthPoolLifecycle(t *testing.T) {
	sp := &scriptedProbe{errs: make([]error, 1)}
	p := NewHealthPool(1, sp.probe, HealthConfig{
		Interval: 100 * time.Millisecond, FailAfter: 2, RejoinAfter: 2,
	})
	// Not started: transitions come only from explicit Pulse/Report calls.

	if got := p.State(0); got != StateLive {
		t.Fatalf("initial state = %v, want live", got)
	}

	// One failure is not enough (FailAfter 2)...
	sp.errs[0] = errors.New("connection refused")
	p.Pulse(0)
	if got := p.State(0); got != StateLive {
		t.Errorf("after 1 failure: %v, want live (hysteresis)", got)
	}
	// ...two are.
	p.Pulse(0)
	if got := p.State(0); got != StateDown {
		t.Errorf("after 2 failures: %v, want down", got)
	}
	if p.Routable(0) {
		t.Error("down replica reported routable")
	}

	// First success: rejoining, still not routable.
	sp.errs[0] = nil
	p.Pulse(0)
	if got := p.State(0); got != StateRejoining {
		t.Errorf("after first success: %v, want rejoining", got)
	}
	if p.Routable(0) {
		t.Error("rejoining replica reported routable")
	}
	// A failure while rejoining goes straight back down.
	sp.errs[0] = errors.New("flap")
	p.Pulse(0)
	if got := p.State(0); got != StateDown {
		t.Errorf("failure while rejoining: %v, want down", got)
	}
	// Two clean successes: live again.
	sp.errs[0] = nil
	p.Pulse(0)
	p.Pulse(0)
	if got := p.State(0); got != StateLive {
		t.Errorf("after rejoin successes: %v, want live", got)
	}
	if !p.Routable(0) {
		t.Error("live replica not routable")
	}

	// Passive demotion is immediate: the replica's own sentinel needs no
	// FailAfter hysteresis.
	p.ReportFailure(0)
	if got := p.State(0); got != StateDown {
		t.Errorf("after ReportFailure: %v, want down", got)
	}
	p.ReportSuccess(0)
	p.ReportSuccess(0)
	if got := p.State(0); got != StateLive {
		t.Errorf("after served fallback traffic: %v, want live", got)
	}

	// Draining: out of the routed set, recovers through rejoining once the
	// probe sees it healthy again.
	p.ReportDraining(0)
	if got := p.State(0); got != StateDraining || p.Routable(0) {
		t.Errorf("after ReportDraining: %v routable=%v, want draining, false", got, p.Routable(0))
	}
	sp.errs[0] = ErrDraining
	p.Pulse(0)
	if got := p.State(0); got != StateDraining {
		t.Errorf("probe confirms draining: %v, want draining", got)
	}
	sp.errs[0] = nil
	p.Pulse(0)
	if got := p.State(0); got != StateRejoining {
		t.Errorf("undrained replica: %v, want rejoining", got)
	}
}

// TestHealthPoolProbeBackoff: probes of a down replica back off
// exponentially from the base interval and cap at BackoffMax.
func TestHealthPoolProbeBackoff(t *testing.T) {
	sp := &scriptedProbe{errs: make([]error, 1)}
	cfg := HealthConfig{Interval: 100 * time.Millisecond, FailAfter: 1, BackoffMax: 500 * time.Millisecond}
	p := NewHealthPool(1, sp.probe, cfg)

	if got := p.probeDelay(0); got != 100*time.Millisecond {
		t.Errorf("live probe delay = %v, want the base interval", got)
	}
	sp.errs[0] = errors.New("down")
	p.Pulse(0) // fails=1 → down
	if got := p.probeDelay(0); got != 200*time.Millisecond {
		t.Errorf("delay after 1 failure = %v, want 200ms", got)
	}
	p.Pulse(0) // fails=2
	if got := p.probeDelay(0); got != 400*time.Millisecond {
		t.Errorf("delay after 2 failures = %v, want 400ms", got)
	}
	p.Pulse(0) // fails=3 → 800ms, capped
	if got := p.probeDelay(0); got != cfg.BackoffMax {
		t.Errorf("delay after 3 failures = %v, want capped at %v", got, cfg.BackoffMax)
	}
	sp.errs[0] = nil
	p.Pulse(0) // rejoining: back to the base interval
	if got := p.probeDelay(0); got != 100*time.Millisecond {
		t.Errorf("rejoining probe delay = %v, want the base interval", got)
	}
}

// TestHealthPoolRetryAfter: the 503 Retry-After hint covers one full
// demotion cycle, rounded up to at least one second.
func TestHealthPoolRetryAfter(t *testing.T) {
	p := NewHealthPool(1, nil, HealthConfig{Interval: 500 * time.Millisecond, FailAfter: 2})
	if got := p.RetryAfterSeconds(); got != 1 {
		t.Errorf("RetryAfterSeconds = %d, want 1 (2 probes x 500ms)", got)
	}
	p = NewHealthPool(1, nil, HealthConfig{Interval: 2 * time.Second, FailAfter: 3})
	if got := p.RetryAfterSeconds(); got != 6 {
		t.Errorf("RetryAfterSeconds = %d, want 6", got)
	}
	p = NewHealthPool(1, nil, HealthConfig{Interval: 50 * time.Millisecond, FailAfter: 1})
	if got := p.RetryAfterSeconds(); got != 1 {
		t.Errorf("RetryAfterSeconds = %d, want floor of 1", got)
	}
}

// TestHealthPoolActiveProber: a started pool notices a replica going down
// and coming back without any traffic, purely from probes.
func TestHealthPoolActiveProber(t *testing.T) {
	c := newTestCluster(t, 2)
	hp := NewHealthPool(2, NodeProbe(c.Nodes()), HealthConfig{
		Interval: 5 * time.Millisecond, FailAfter: 2, RejoinAfter: 2,
	})
	hp.Start()
	defer hp.Stop()

	c.Node(1).SetDown(true)
	waitFor(t, time.Second, func() bool { return hp.State(1) == StateDown })
	c.Node(1).SetDown(false)
	waitFor(t, time.Second, func() bool { return hp.State(1) == StateLive })

	c.Node(1).Drain()
	waitFor(t, time.Second, func() bool { return hp.State(1) == StateDraining })
	c.Node(1).Rejoin()
	waitFor(t, time.Second, func() bool { return hp.State(1) == StateLive })
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFaultsDeterministic: two injectors with the same seed draw the same
// fault sequence — the property that makes churn failures reproducible.
func TestFaultsDeterministic(t *testing.T) {
	cfg := FaultConfig{Seed: 42, DropRate: 0.2, ErrRate: 0.1, DelayRate: 0.1}
	a, b := NewFaults(cfg), NewFaults(cfg)
	for i := 0; i < 200; i++ {
		if ka, kb := a.decide(), b.decide(); ka != kb {
			t.Fatalf("draw %d diverged: %v vs %v", i, ka, kb)
		}
	}
	drops, errs, delays := a.Counts()
	if drops == 0 || errs == 0 || delays == 0 {
		t.Errorf("expected every fault kind in 200 draws, got drops=%d errs=%d delays=%d", drops, errs, delays)
	}
}
