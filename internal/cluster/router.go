package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/maliva/maliva/internal/engine"
	"github.com/maliva/maliva/internal/middleware"
)

// wireRequest mirrors the /viz JSON wire format (middleware's httpRequest)
// for routing purposes only: the router never interprets the request beyond
// hashing the fields that determine its result-cache key. The original body
// bytes — not a re-encoding — are what gets forwarded.
type wireRequest struct {
	Keyword  string  `json:"keyword"`
	From     string  `json:"from"`
	To       string  `json:"to"`
	MinLon   float64 `json:"min_lon"`
	MinLat   float64 `json:"min_lat"`
	MaxLon   float64 `json:"max_lon"`
	MaxLat   float64 `json:"max_lat"`
	Kind     string  `json:"kind"`
	GridW    int     `json:"grid_w"`
	GridH    int     `json:"grid_h"`
	BudgetMs float64 `json:"budget_ms"`
}

// routingKey hashes one /viz request to its position on the ring. The hash
// covers exactly the request fields that determine the result-cache key —
// dataset, predicates (keyword/time/region), kind, grid, budget — normalized
// the way the server normalizes them (kind and grid defaults, budget ≤ 0 as
// one class, sub-area regions as one class). Rewriting is deterministic per
// (dataset, query, budget), so equal result keys get equal routing keys and
// every distinct result has exactly one owning replica. The converse can
// fail in benign ways (e.g. two spellings of the same instant, or naming the
// default dataset explicitly): those route to different owners at worst,
// and the peer protocol still converges them. An unparseable body hashes
// raw, so even error responses route deterministically.
func routingKey(dataset string, body []byte) uint64 {
	h := hash64(dataset)
	var wr wireRequest
	if err := json.Unmarshal(body, &wr); err != nil {
		return mix64(h, hash64(string(body)))
	}
	h = mix64(h, hash64(wr.Keyword))
	h = mix64(h, timeHash(wr.From))
	h = mix64(h, timeHash(wr.To))
	region := engine.Rect{MinLon: wr.MinLon, MinLat: wr.MinLat, MaxLon: wr.MaxLon, MaxLat: wr.MaxLat}
	if region.Area() <= 0 {
		region = engine.Rect{} // the server substitutes the dataset extent
	}
	h = mix64(h, math.Float64bits(region.MinLon))
	h = mix64(h, math.Float64bits(region.MinLat))
	h = mix64(h, math.Float64bits(region.MaxLon))
	h = mix64(h, math.Float64bits(region.MaxLat))
	kind := wr.Kind
	if kind != string(middleware.VizScatter) {
		kind = string(middleware.VizHeatmap)
	}
	h = mix64(h, hash64(kind))
	gw, gh := wr.GridW, wr.GridH
	if gw <= 0 {
		gw = 64
	}
	if gh <= 0 {
		gh = 64
	}
	h = mix64(h, uint64(gw)<<32|uint64(uint32(gh)))
	budget := wr.BudgetMs
	if budget <= 0 {
		budget = 0 // any non-positive budget resolves to the server default
	}
	h = mix64(h, math.Float64bits(budget))
	return h
}

// timeHash hashes an RFC 3339 timestamp by its instant (the server keys on
// UnixMilli, so "+00:00" and "Z" spellings must agree); unparseable strings
// hash raw, which still routes identical bodies identically.
func timeHash(s string) uint64 {
	if s == "" {
		return hash64("")
	}
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return uint64(t.UnixMilli())
	}
	return hash64(s)
}

// Router is the replica-aware routing tier: it fronts N replicas and sends
// each /viz request to the replica owning its result key on the consistent
// hash ring, so cache hits concentrate on one replica per key instead of
// fragmenting N ways. A down owner fails over to the next replica in the
// key's ring sequence (which then serves from its own cache, a peer fetch,
// or local compute — never an error, as long as one replica lives).
type Router struct {
	ring  *Ring
	nodes []*Node
	start time.Time

	routed    []atomic.Int64 // per replica: requests sent there
	failovers []atomic.Int64 // per replica: requests absorbed for a down owner
	allDown   atomic.Int64
}

// NewRouter builds a router over the ring's replicas. len(nodes) must match
// the ring.
func NewRouter(ring *Ring, nodes []*Node) (*Router, error) {
	if len(nodes) != ring.Replicas() {
		return nil, fmt.Errorf("cluster: router has %d nodes for a ring of %d", len(nodes), ring.Replicas())
	}
	return &Router{
		ring:      ring,
		nodes:     nodes,
		start:     time.Now(),
		routed:    make([]atomic.Int64, len(nodes)),
		failovers: make([]atomic.Int64, len(nodes)),
	}, nil
}

// Handler returns the router's HTTP surface:
//
//	POST /viz, /query        — routed by result-key hash, with failover
//	GET  /datasets           — forwarded to the first live replica
//	GET  /healthz            — cluster rollup; ?replica=i forwards
//	GET  /metrics            — cluster text with replica="i" labels;
//	                           ?format=json → Snapshot; ?replica=i forwards
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /viz", rt.serveViz)
	mux.HandleFunc("POST /query", rt.serveViz)
	mux.HandleFunc("GET /datasets", rt.forwardAnyLive)
	mux.HandleFunc("GET /healthz", rt.serveHealthz)
	mux.HandleFunc("GET /metrics", rt.serveMetrics)
	return mux
}

// serveViz routes one visualization request to its owner replica.
func (rt *Router) serveViz(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	key := routingKey(r.URL.Query().Get("dataset"), body)
	seq := rt.ring.Sequence(key)
	for i, idx := range seq {
		n := rt.nodes[idx]
		if n.Down() {
			continue
		}
		rt.routed[idx].Add(1)
		if i > 0 {
			rt.failovers[idx].Add(1)
		}
		r2 := r.Clone(r.Context())
		r2.Body = io.NopCloser(bytes.NewReader(body))
		r2.ContentLength = int64(len(body))
		n.ServeHTTP(w, r2)
		return
	}
	rt.allDown.Add(1)
	http.Error(w, "no live replica", http.StatusServiceUnavailable)
}

// forwardAnyLive forwards a read-only request to the first live replica
// (every replica answers registry-level endpoints identically).
func (rt *Router) forwardAnyLive(w http.ResponseWriter, r *http.Request) {
	for _, n := range rt.nodes {
		if !n.Down() {
			n.ServeHTTP(w, r)
			return
		}
	}
	http.Error(w, "no live replica", http.StatusServiceUnavailable)
}

// replicaParam resolves an optional ?replica=i forward target.
func (rt *Router) replicaParam(w http.ResponseWriter, r *http.Request) (*Node, bool, bool) {
	s := r.URL.Query().Get("replica")
	if s == "" {
		return nil, false, true
	}
	i, err := strconv.Atoi(s)
	if err != nil || i < 0 || i >= len(rt.nodes) {
		http.Error(w, fmt.Sprintf("unknown replica %q", s), http.StatusNotFound)
		return nil, true, false
	}
	return rt.nodes[i], true, true
}

func (rt *Router) serveHealthz(w http.ResponseWriter, r *http.Request) {
	if n, set, ok := rt.replicaParam(w, r); !ok {
		return
	} else if set {
		n.ServeHTTP(w, r)
		return
	}
	type replicaHealth struct {
		Replica int    `json:"replica"`
		Status  string `json:"status"`
	}
	out := struct {
		Status    string          `json:"status"`
		UptimeSec float64         `json:"uptime_sec"`
		Replicas  []replicaHealth `json:"replicas"`
	}{Status: "ok", UptimeSec: time.Since(rt.start).Seconds()}
	live := 0
	for i, n := range rt.nodes {
		st := "ok"
		if n.Down() {
			st = "down"
		} else {
			live++
		}
		out.Replicas = append(out.Replicas, replicaHealth{Replica: i, Status: st})
	}
	code := http.StatusOK
	if live == 0 {
		out.Status = "down"
		code = http.StatusServiceUnavailable
	} else if live < len(rt.nodes) {
		out.Status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(out)
}

// ReplicaSnapshot is one replica's slice of the cluster snapshot.
type ReplicaSnapshot struct {
	Replica   int                               `json:"replica"`
	Alive     bool                              `json:"alive"`
	Routed    int64                             `json:"routed"`
	Failovers int64                             `json:"failovers_absorbed"`
	Cache     CacheSnapshot                     `json:"cache"`
	Gateway   middleware.GatewayMetricsSnapshot `json:"gateway"`
}

// Snapshot is the JSON form of GET /metrics?format=json on the router: the
// routing counters, each replica's peer-cache and gateway metrics, and the
// cluster-wide result-cache hit rate (peer hits count as hits — they skip
// execution exactly like local ones).
type Snapshot struct {
	UptimeSec     float64           `json:"uptime_sec"`
	Replicas      []ReplicaSnapshot `json:"replicas"`
	Routed        int64             `json:"routed"`
	NoLiveReplica int64             `json:"no_live_replica"`
	ResultHits    int64             `json:"result_cache_hits"`
	ResultMisses  int64             `json:"result_cache_misses"`
	ResultHitRate float64           `json:"result_cache_hit_rate"`
}

// Snapshot captures the cluster counters.
func (rt *Router) Snapshot() Snapshot {
	snap := Snapshot{
		UptimeSec:     time.Since(rt.start).Seconds(),
		NoLiveReplica: rt.allDown.Load(),
	}
	for i, n := range rt.nodes {
		rs := ReplicaSnapshot{
			Replica:   i,
			Alive:     !n.Down(),
			Routed:    rt.routed[i].Load(),
			Failovers: rt.failovers[i].Load(),
			Cache:     n.CacheSnapshot(),
			Gateway:   n.Gateway().Snapshot(),
		}
		snap.Routed += rs.Routed
		for _, m := range rs.Gateway.Datasets {
			snap.ResultHits += m.ResultHits
			snap.ResultMisses += m.ResultMisses
		}
		snap.Replicas = append(snap.Replicas, rs)
	}
	if total := snap.ResultHits + snap.ResultMisses; total > 0 {
		snap.ResultHitRate = float64(snap.ResultHits) / float64(total)
	}
	return snap
}

func (rt *Router) serveMetrics(w http.ResponseWriter, r *http.Request) {
	if n, set, ok := rt.replicaParam(w, r); !ok {
		return
	} else if set {
		n.ServeHTTP(w, r)
		return
	}
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(rt.Snapshot())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	rt.WritePrometheus(w)
}

// WritePrometheus renders the cluster counters in Prometheus text format:
// router and peer-cache series carry a replica="i" label, and every
// replica's per-dataset gateway series carry replica="i",dataset="name".
func (rt *Router) WritePrometheus(w io.Writer) {
	snap := rt.Snapshot()
	fmt.Fprintf(w, "maliva_cluster_uptime_seconds %g\n", snap.UptimeSec)
	fmt.Fprintf(w, "maliva_cluster_replicas %d\n", len(rt.nodes))
	fmt.Fprintf(w, "maliva_cluster_no_live_replica_total %d\n", snap.NoLiveReplica)
	fmt.Fprintf(w, "maliva_cluster_result_cache_hit_rate %g\n", snap.ResultHitRate)
	for _, rs := range snap.Replicas {
		l := fmt.Sprintf("replica=%q", strconv.Itoa(rs.Replica))
		alive := 0
		if rs.Alive {
			alive = 1
		}
		fmt.Fprintf(w, "maliva_cluster_replica_alive{%s} %d\n", l, alive)
		fmt.Fprintf(w, "maliva_cluster_routed_total{%s} %d\n", l, rs.Routed)
		fmt.Fprintf(w, "maliva_cluster_failovers_absorbed_total{%s} %d\n", l, rs.Failovers)
		c := rs.Cache
		fmt.Fprintf(w, "maliva_cluster_result_local_hits_total{%s} %d\n", l, c.LocalHits)
		fmt.Fprintf(w, "maliva_cluster_peer_hits_total{%s} %d\n", l, c.PeerHits)
		fmt.Fprintf(w, "maliva_cluster_peer_misses_total{%s} %d\n", l, c.PeerMisses)
		fmt.Fprintf(w, "maliva_cluster_peer_errors_total{%s} %d\n", l, c.PeerErrors)
		fmt.Fprintf(w, "maliva_cluster_peer_fetches_coalesced_total{%s} %d\n", l, c.FetchesCoalesced)
		fmt.Fprintf(w, "maliva_cluster_peer_fetches_served_total{%s} %d\n", l, c.FetchesServed)
		fmt.Fprintf(w, "maliva_cluster_fills_sent_total{%s} %d\n", l, c.FillsSent)
		fmt.Fprintf(w, "maliva_cluster_fills_received_total{%s} %d\n", l, c.FillsReceived)
		fmt.Fprintf(w, "maliva_cluster_fills_dropped_total{%s} %d\n", l, c.FillsDropped)
	}
	// Per-replica, per-dataset gateway series.
	for _, rs := range snap.Replicas {
		names := make([]string, 0, len(rs.Gateway.Gateway.Datasets))
		for name, st := range rs.Gateway.Gateway.Datasets {
			if st == "ready" {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			srv, err := rt.nodes[rs.Replica].Gateway().Server(name)
			if err != nil {
				continue
			}
			srv.Metrics().WritePrometheusLabeled(w,
				fmt.Sprintf("replica=%q,dataset=%q", strconv.Itoa(rs.Replica), name))
		}
	}
}
