package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/maliva/maliva/internal/engine"
	"github.com/maliva/maliva/internal/middleware"
)

// wireRequest mirrors the /viz JSON wire format (middleware's httpRequest)
// for fallback routing only: the shape hash below never interprets the
// request beyond the fields that determine its result-cache key. The
// original body bytes — not a re-encoding — are what gets forwarded.
type wireRequest struct {
	Keyword  string  `json:"keyword"`
	From     string  `json:"from"`
	To       string  `json:"to"`
	MinLon   float64 `json:"min_lon"`
	MinLat   float64 `json:"min_lat"`
	MaxLon   float64 `json:"max_lon"`
	MaxLat   float64 `json:"max_lat"`
	Kind     string  `json:"kind"`
	GridW    int     `json:"grid_w"`
	GridH    int     `json:"grid_h"`
	BudgetMs float64 `json:"budget_ms"`
}

// routingKey hashes one /viz request's SHAPE to a ring position. It is the
// fallback key: primary routing hashes the server-normalized ResultKey
// (see Router.routeHash), the same space peer-cache ownership uses, so the
// routed replica owns its key. The shape hash covers the request fields
// that determine the result key — dataset, predicates, kind, grid, budget
// — normalized the way the server normalizes them, and handles the cases
// the unified path can't: unparseable bodies (hashed raw), requests the
// server would reject, and datasets still warming. Fallback-routed
// requests may land on a non-owner; the peer protocol still converges
// them.
func routingKey(dataset string, body []byte) uint64 {
	h := hash64(dataset)
	var wr wireRequest
	if err := json.Unmarshal(body, &wr); err != nil {
		return mix64(h, hash64(string(body)))
	}
	h = mix64(h, hash64(wr.Keyword))
	h = mix64(h, timeHash(wr.From))
	h = mix64(h, timeHash(wr.To))
	region := engine.Rect{MinLon: wr.MinLon, MinLat: wr.MinLat, MaxLon: wr.MaxLon, MaxLat: wr.MaxLat}
	if region.Area() <= 0 {
		region = engine.Rect{} // the server substitutes the dataset extent
	}
	h = mix64(h, math.Float64bits(region.MinLon))
	h = mix64(h, math.Float64bits(region.MinLat))
	h = mix64(h, math.Float64bits(region.MaxLon))
	h = mix64(h, math.Float64bits(region.MaxLat))
	kind := wr.Kind
	if kind != string(middleware.VizScatter) {
		kind = string(middleware.VizHeatmap)
	}
	h = mix64(h, hash64(kind))
	gw, gh := wr.GridW, wr.GridH
	if gw <= 0 {
		gw = 64
	}
	if gh <= 0 {
		gh = 64
	}
	// Mask both grid fields to 32 bits (mirroring ResultKey.Hash) so their
	// bit ranges cannot overlap.
	h = mix64(h, uint64(uint32(gw))<<32|uint64(uint32(gh)))
	budget := wr.BudgetMs
	if budget <= 0 {
		budget = 0 // any non-positive budget resolves to the server default
	}
	h = mix64(h, math.Float64bits(budget))
	return h
}

// timeHash hashes an RFC 3339 timestamp by its instant (the server keys on
// UnixMilli, so "+00:00" and "Z" spellings must agree); unparseable strings
// hash raw, which still routes identical bodies identically.
func timeHash(s string) uint64 {
	if s == "" {
		return hash64("")
	}
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return uint64(t.UnixMilli())
	}
	return hash64(s)
}

// Router is the replica-aware routing tier: it fronts N replicas and sends
// each /viz request to the replica owning its result key on the consistent
// hash ring, so cache hits concentrate on one replica per key instead of
// fragmenting N ways. Replica membership is governed by a HealthPool
// (active probes plus passive sentinel demotion); a non-live owner fails
// over to the next live replica in the key's ring sequence, and when the
// health view turns out stale the router retries every remaining replica
// before giving up — a request is lost only when no replica at all can
// serve it (clean 503 with Retry-After).
type Router struct {
	ring   *Ring
	nodes  []*Node
	health *HealthPool
	start  time.Time

	routed        []atomic.Int64 // per replica: requests committed there
	failovers     []atomic.Int64 // per replica: requests absorbed for a non-live owner
	retries       atomic.Int64   // attempts bounced off a refusal sentinel
	allDown       atomic.Int64
	keyedUnified  atomic.Int64 // requests routed by server-normalized ResultKey
	keyedFallback atomic.Int64 // requests routed by the shape hash

	// Session tracking + speculative prefetch (router-scope: key routing
	// fragments one session across replicas, so only the router sees the
	// whole pan/zoom trajectory). See session.go.
	sessions           *middleware.SessionTracker
	prefetchSem        chan struct{}
	observeCh          chan routerObservation
	prefetchDispatched atomic.Int64 // predictions sent to an owner replica
	prefetchDropped    atomic.Int64 // predictions shed before dispatch (no token)
}

// NewRouter builds a router over the ring's replicas with default health
// probing (in-process NodeProbe). len(nodes) must match the ring.
func NewRouter(ring *Ring, nodes []*Node) (*Router, error) {
	return NewRouterWithHealth(ring, nodes, HealthConfig{})
}

// NewRouterWithHealth is NewRouter with explicit health-probe tuning. The
// pool's probers start immediately; Close stops them.
func NewRouterWithHealth(ring *Ring, nodes []*Node, hcfg HealthConfig) (*Router, error) {
	if len(nodes) != ring.Replicas() {
		return nil, fmt.Errorf("cluster: router has %d nodes for a ring of %d", len(nodes), ring.Replicas())
	}
	rt := &Router{
		ring:      ring,
		nodes:     nodes,
		health:    NewHealthPool(len(nodes), NodeProbe(nodes), hcfg),
		start:     time.Now(),
		routed:    make([]atomic.Int64, len(nodes)),
		failovers: make([]atomic.Int64, len(nodes)),
	}
	rt.health.Start()
	return rt, nil
}

// Health returns the router's health pool (lifecycle reports, snapshots).
func (rt *Router) Health() *HealthPool { return rt.health }

// Close stops the health probers. The router keeps serving on its last
// known (plus passively updated) health view.
func (rt *Router) Close() { rt.health.Stop() }

// Handler returns the router's HTTP surface:
//
//	POST /viz, /query        — routed by result-key hash, with failover
//	POST /ingest             — routed by dataset name (one writer per
//	                           dataset), with failover
//	GET  /datasets           — forwarded to the first live replica
//	GET  /healthz            — cluster rollup; ?replica=i forwards
//	GET  /metrics            — cluster text with replica="i" labels;
//	                           ?format=json → Snapshot; ?replica=i forwards
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /viz", rt.serveViz)
	mux.HandleFunc("POST /query", rt.serveViz)
	mux.HandleFunc("POST /ingest", rt.serveIngest)
	mux.HandleFunc("GET /datasets", rt.forwardAnyLive)
	mux.HandleFunc("GET /healthz", rt.serveHealthz)
	mux.HandleFunc("GET /metrics", rt.serveMetrics)
	return mux
}

// routeHash maps one /viz request to its ring position. The primary path
// is the UNIFIED key space: parse the body exactly as the serving replica
// will, resolve it through a ready server's plan/rewrite path to the
// ResultKey, and hash that — the same hash peer-cache ownership uses, so
// the routed replica owns its key and a cold request never pays a futile
// peer fetch (nor stores the result twice). The key is computed on the
// first replica in the shape hash's ring sequence with a ready server
// ("keyer" replica), which both spreads cold plan builds across the
// cluster and keeps the choice deterministic. Anything the unified path
// can't key — unparseable body, dataset not warm anywhere, a request the
// server rejects — falls back to the shape hash, which routes equal
// bodies equally (enough for deterministic error handling and cold
// starts). unified reports which space was used.
func (rt *Router) routeHash(dataset string, body []byte) (key uint64, unified bool) {
	shape := routingKey(dataset, body)
	req, err := middleware.ParseRequest(body)
	if err != nil {
		return shape, false
	}
	for _, idx := range rt.ring.Sequence(shape) {
		srv, ok := rt.nodes[idx].Gateway().ReadyServer(dataset)
		if !ok {
			continue
		}
		rkey, err := srv.ResultKeyFor(req)
		if err != nil {
			return shape, false
		}
		return rkey.Hash(), true
	}
	return shape, false
}

// failoverWriter buffers a replica's response decision so the router can
// retry on a refusal sentinel. Headers go into a private map — nothing
// touches the real ResponseWriter until the first WriteHeader proves the
// response is not a sentinel refusal; then headers are copied over and the
// body streams through. Sentinel responses are swallowed entirely.
type failoverWriter struct {
	dst         http.ResponseWriter
	hdr         http.Header
	decided     bool
	committed   bool
	code        int    // status code of the committed response
	unavailable string // sentinel value when the replica refused
}

func (f *failoverWriter) Header() http.Header {
	if f.hdr == nil {
		f.hdr = make(http.Header)
	}
	return f.hdr
}

func (f *failoverWriter) WriteHeader(code int) {
	if f.decided {
		return
	}
	f.decided = true
	if v := f.Header().Get(ReplicaUnavailableHeader); v != "" && code == http.StatusServiceUnavailable {
		f.unavailable = v
		return
	}
	dst := f.dst.Header()
	for k, vv := range f.hdr {
		dst[k] = vv
	}
	f.committed = true
	f.code = code
	f.dst.WriteHeader(code)
}

func (f *failoverWriter) Write(b []byte) (int, error) {
	if !f.decided {
		f.WriteHeader(http.StatusOK)
	}
	if !f.committed {
		return len(b), nil // swallow the sentinel body
	}
	return f.dst.Write(b)
}

// attemptOrder returns the replicas to try for a key: the key's ring
// sequence restricted to live replicas first (the first entry is the
// effective owner — Ring.OwnerAmong over the live set), then the non-live
// remainder. The second tier protects against a stale health view: a
// replica the pool believes down may be back already, and trying it beats
// returning an avoidable 503. Its own sentinel keeps a really-down
// replica harmless.
func (rt *Router) attemptOrder(key uint64) []int {
	seq := rt.ring.Sequence(key)
	order := make([]int, 0, len(seq))
	skipped := make([]int, 0, len(seq))
	for _, idx := range seq {
		if rt.health.Routable(idx) {
			order = append(order, idx)
		} else {
			skipped = append(skipped, idx)
		}
	}
	return append(order, skipped...)
}

// serveViz routes one visualization request to its owner replica.
func (rt *Router) serveViz(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	dataset := r.URL.Query().Get("dataset")
	key, unified := rt.routeHash(dataset, body)
	if unified {
		rt.keyedUnified.Add(1)
	} else {
		rt.keyedFallback.Add(1)
	}
	for attempt, idx := range rt.attemptOrder(key) {
		n := rt.nodes[idx]
		fw := &failoverWriter{dst: w}
		r2 := r.Clone(r.Context())
		r2.Body = io.NopCloser(bytes.NewReader(body))
		r2.ContentLength = int64(len(body))
		n.ServeHTTP(fw, r2)
		if fw.unavailable != "" {
			// The replica refused with its lifecycle sentinel: demote it
			// and fail the request over. Gateway 503s (admission, dataset
			// warming) do NOT carry the sentinel and are final — every
			// replica would shed the same way.
			rt.retries.Add(1)
			switch fw.unavailable {
			case "draining":
				rt.health.ReportDraining(idx)
			case "recovering":
				rt.health.ReportRecovering(idx)
			default:
				rt.health.ReportFailure(idx)
			}
			continue
		}
		rt.routed[idx].Add(1)
		if attempt > 0 {
			rt.failovers[idx].Add(1)
		}
		if !rt.health.Routable(idx) {
			// A replica the pool held out just served real traffic:
			// credit it toward rejoining.
			rt.health.ReportSuccess(idx)
		}
		if fw.code < 300 {
			rt.observeSession(r, dataset, body)
		}
		return
	}
	rt.allDown.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(rt.health.RetryAfterSeconds()))
	http.Error(w, "no live replica", http.StatusServiceUnavailable)
}

// serveIngest routes one write batch. All ingest for a dataset is keyed by
// the dataset NAME (not the request body), so a single replica's adaptive
// batcher sees the full write stream — split across replicas, each batcher
// would observe a fraction of the arrival rate and mis-tune its flush
// delay. The in-process deployment shares the built datasets, so a flush
// applied through any replica's ingestor bumps the one true data version
// every replica serves from; failover to the next live replica is therefore
// safe (at worst it fragments one batch).
func (rt *Router) serveIngest(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, 8<<20)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	key := hash64(r.URL.Query().Get("dataset"))
	for _, idx := range rt.attemptOrder(key) {
		fw := &failoverWriter{dst: w}
		r2 := r.Clone(r.Context())
		r2.Body = io.NopCloser(bytes.NewReader(body))
		r2.ContentLength = int64(len(body))
		rt.nodes[idx].ServeHTTP(fw, r2)
		if fw.unavailable != "" {
			rt.retries.Add(1)
			switch fw.unavailable {
			case "draining":
				rt.health.ReportDraining(idx)
			case "recovering":
				rt.health.ReportRecovering(idx)
			default:
				rt.health.ReportFailure(idx)
			}
			continue
		}
		rt.routed[idx].Add(1)
		return
	}
	rt.allDown.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(rt.health.RetryAfterSeconds()))
	http.Error(w, "no live replica", http.StatusServiceUnavailable)
}

// forwardAnyLive forwards a read-only request to the first replica that
// accepts it (every replica answers registry-level endpoints identically).
func (rt *Router) forwardAnyLive(w http.ResponseWriter, r *http.Request) {
	for _, idx := range rt.attemptOrder(0) {
		fw := &failoverWriter{dst: w}
		rt.nodes[idx].ServeHTTP(fw, r)
		if fw.unavailable == "" {
			return
		}
	}
	w.Header().Set("Retry-After", strconv.Itoa(rt.health.RetryAfterSeconds()))
	http.Error(w, "no live replica", http.StatusServiceUnavailable)
}

// replicaParam resolves an optional ?replica=i forward target.
func (rt *Router) replicaParam(w http.ResponseWriter, r *http.Request) (*Node, bool, bool) {
	s := r.URL.Query().Get("replica")
	if s == "" {
		return nil, false, true
	}
	i, err := strconv.Atoi(s)
	if err != nil || i < 0 || i >= len(rt.nodes) {
		http.Error(w, fmt.Sprintf("unknown replica %q", s), http.StatusNotFound)
		return nil, true, false
	}
	return rt.nodes[i], true, true
}

func (rt *Router) serveHealthz(w http.ResponseWriter, r *http.Request) {
	if n, set, ok := rt.replicaParam(w, r); !ok {
		return
	} else if set {
		n.ServeHTTP(w, r)
		return
	}
	reps := rt.health.SnapshotAll()
	out := struct {
		Status    string                  `json:"status"`
		UptimeSec float64                 `json:"uptime_sec"`
		Replicas  []ReplicaHealthSnapshot `json:"replicas"`
	}{Status: "ok", UptimeSec: time.Since(rt.start).Seconds(), Replicas: reps}
	live := 0
	for _, h := range reps {
		if h.State == StateLive.String() {
			live++
		}
	}
	code := http.StatusOK
	if live == 0 {
		out.Status = "down"
		code = http.StatusServiceUnavailable
	} else if live < len(rt.nodes) {
		out.Status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(out)
}

// ReplicaSnapshot is one replica's slice of the cluster snapshot.
type ReplicaSnapshot struct {
	Replica   int                               `json:"replica"`
	State     string                            `json:"state"`
	Alive     bool                              `json:"alive"`
	Routed    int64                             `json:"routed"`
	Failovers int64                             `json:"failovers_absorbed"`
	Cache     CacheSnapshot                     `json:"cache"`
	Gateway   middleware.GatewayMetricsSnapshot `json:"gateway"`
}

// Snapshot is the JSON form of GET /metrics?format=json on the router: the
// routing counters, each replica's peer-cache and gateway metrics, and the
// cluster-wide result-cache hit rate (peer hits count as hits — they skip
// execution exactly like local ones).
type Snapshot struct {
	UptimeSec     float64           `json:"uptime_sec"`
	Replicas      []ReplicaSnapshot `json:"replicas"`
	Routed        int64             `json:"routed"`
	KeyedUnified  int64             `json:"routed_by_result_key"`
	KeyedFallback int64             `json:"routed_by_shape_hash"`
	Retries       int64             `json:"routing_retries"`
	NoLiveReplica int64             `json:"no_live_replica"`
	// Session-prefetch dispatch counters (router-scope; the per-replica
	// prefetch admission/hit counters live in each gateway snapshot).
	PrefetchDispatched int64   `json:"session_prefetch_dispatched"`
	PrefetchDropped    int64   `json:"session_prefetch_dropped"`
	ResultHits         int64   `json:"result_cache_hits"`
	ResultMisses       int64   `json:"result_cache_misses"`
	ResultHitRate      float64 `json:"result_cache_hit_rate"`
}

// Snapshot captures the cluster counters.
func (rt *Router) Snapshot() Snapshot {
	snap := Snapshot{
		UptimeSec:     time.Since(rt.start).Seconds(),
		KeyedUnified:  rt.keyedUnified.Load(),
		KeyedFallback: rt.keyedFallback.Load(),
		Retries:       rt.retries.Load(),
		NoLiveReplica: rt.allDown.Load(),

		PrefetchDispatched: rt.prefetchDispatched.Load(),
		PrefetchDropped:    rt.prefetchDropped.Load(),
	}
	for i, n := range rt.nodes {
		st := rt.health.State(i)
		rs := ReplicaSnapshot{
			Replica:   i,
			State:     st.String(),
			Alive:     st == StateLive,
			Routed:    rt.routed[i].Load(),
			Failovers: rt.failovers[i].Load(),
			Cache:     n.CacheSnapshot(),
			Gateway:   n.Gateway().Snapshot(),
		}
		snap.Routed += rs.Routed
		for _, m := range rs.Gateway.Datasets {
			snap.ResultHits += m.ResultHits
			snap.ResultMisses += m.ResultMisses
		}
		snap.Replicas = append(snap.Replicas, rs)
	}
	if total := snap.ResultHits + snap.ResultMisses; total > 0 {
		snap.ResultHitRate = float64(snap.ResultHits) / float64(total)
	}
	return snap
}

func (rt *Router) serveMetrics(w http.ResponseWriter, r *http.Request) {
	if n, set, ok := rt.replicaParam(w, r); !ok {
		return
	} else if set {
		n.ServeHTTP(w, r)
		return
	}
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(rt.Snapshot())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	rt.WritePrometheus(w)
}

// WritePrometheus renders the cluster counters in Prometheus text format:
// router and peer-cache series carry a replica="i" label, and every
// replica's per-dataset gateway series carry replica="i",dataset="name".
func (rt *Router) WritePrometheus(w io.Writer) {
	snap := rt.Snapshot()
	fmt.Fprintf(w, "maliva_cluster_uptime_seconds %g\n", snap.UptimeSec)
	fmt.Fprintf(w, "maliva_cluster_replicas %d\n", len(rt.nodes))
	fmt.Fprintf(w, "maliva_cluster_routed_by_result_key_total %d\n", snap.KeyedUnified)
	fmt.Fprintf(w, "maliva_cluster_routed_by_shape_hash_total %d\n", snap.KeyedFallback)
	fmt.Fprintf(w, "maliva_cluster_routing_retries_total %d\n", snap.Retries)
	fmt.Fprintf(w, "maliva_cluster_no_live_replica_total %d\n", snap.NoLiveReplica)
	fmt.Fprintf(w, "maliva_cluster_session_prefetch_dispatched_total %d\n", snap.PrefetchDispatched)
	fmt.Fprintf(w, "maliva_cluster_session_prefetch_dropped_total %d\n", snap.PrefetchDropped)
	fmt.Fprintf(w, "maliva_cluster_result_cache_hit_rate %g\n", snap.ResultHitRate)
	for _, rs := range snap.Replicas {
		l := fmt.Sprintf("replica=%q", strconv.Itoa(rs.Replica))
		alive := 0
		if rs.Alive {
			alive = 1
		}
		fmt.Fprintf(w, "maliva_cluster_replica_alive{%s} %d\n", l, alive)
		fmt.Fprintf(w, "maliva_cluster_replica_state{%s,state=%q} 1\n", l, rs.State)
		fmt.Fprintf(w, "maliva_cluster_routed_total{%s} %d\n", l, rs.Routed)
		fmt.Fprintf(w, "maliva_cluster_failovers_absorbed_total{%s} %d\n", l, rs.Failovers)
		c := rs.Cache
		fmt.Fprintf(w, "maliva_cluster_result_local_hits_total{%s} %d\n", l, c.LocalHits)
		fmt.Fprintf(w, "maliva_cluster_peer_hits_total{%s} %d\n", l, c.PeerHits)
		fmt.Fprintf(w, "maliva_cluster_peer_misses_total{%s} %d\n", l, c.PeerMisses)
		fmt.Fprintf(w, "maliva_cluster_peer_errors_total{%s} %d\n", l, c.PeerErrors)
		fmt.Fprintf(w, "maliva_cluster_peer_fetch_timeouts_total{%s} %d\n", l, c.FetchTimeouts)
		fmt.Fprintf(w, "maliva_cluster_peer_fetches_hedged_total{%s} %d\n", l, c.HedgedFetches)
		fmt.Fprintf(w, "maliva_cluster_peer_hedge_wins_total{%s} %d\n", l, c.HedgeWins)
		fmt.Fprintf(w, "maliva_cluster_peer_fetches_coalesced_total{%s} %d\n", l, c.FetchesCoalesced)
		fmt.Fprintf(w, "maliva_cluster_peer_fetches_served_total{%s} %d\n", l, c.FetchesServed)
		fmt.Fprintf(w, "maliva_cluster_fills_sent_total{%s} %d\n", l, c.FillsSent)
		fmt.Fprintf(w, "maliva_cluster_fills_received_total{%s} %d\n", l, c.FillsReceived)
		fmt.Fprintf(w, "maliva_cluster_fills_dropped_total{%s} %d\n", l, c.FillsDropped)
		fmt.Fprintf(w, "maliva_cluster_peer_fill_drops_total{%s} %d\n", l, c.FillsDropped)
		fmt.Fprintf(w, "maliva_cluster_peer_fetch_version_rejects_total{%s} %d\n", l, c.FetchVersionRejects)
		fmt.Fprintf(w, "maliva_cluster_fill_version_rejects_total{%s} %d\n", l, c.FillVersionRejects)
	}
	// Per-replica, per-dataset gateway series.
	for _, rs := range snap.Replicas {
		names := make([]string, 0, len(rs.Gateway.Gateway.Datasets))
		for name, st := range rs.Gateway.Gateway.Datasets {
			if st == "ready" {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			srv, err := rt.nodes[rs.Replica].Gateway().Server(name)
			if err != nil {
				continue
			}
			srv.Metrics().WritePrometheusLabeled(w,
				fmt.Sprintf("replica=%q,dataset=%q", strconv.Itoa(rs.Replica), name))
		}
	}
}
