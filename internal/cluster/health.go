package cluster

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// ReplicaState is one replica's position in the lifecycle state machine:
//
//	live ──(FailAfter probe failures, or a down sentinel)──▶ down
//	down ──(first successful probe)──▶ rejoining
//	rejoining ──(RejoinAfter consecutive successes)──▶ live
//	rejoining ──(any failure)──▶ down
//	any ──(operator drain / draining sentinel)──▶ draining
//	draining ──(probe reports healthy again)──▶ rejoining
//	any ──(recovering sentinel: replica replaying its WAL)──▶ recovering
//	recovering ──(probe reports healthy again)──▶ rejoining
//
// Only live replicas receive routed traffic. Rejoining replicas are up but
// held out of the routing set until they prove stable (hysteresis against
// flapping); the router still falls back to them when no live replica can
// serve, so a stale health view never turns into an avoidable 503.
type ReplicaState int32

const (
	// StateLive replicas serve routed traffic.
	StateLive ReplicaState = iota
	// StateDraining replicas refuse new /viz traffic but keep answering
	// peer fetches, health checks, and metrics (operator-initiated).
	StateDraining
	// StateDown replicas answer nothing; probes back off exponentially.
	StateDown
	// StateRejoining replicas are up again but not yet trusted with
	// routed traffic.
	StateRejoining
	// StateRecovering replicas are up and probeable but replaying durable
	// state (WAL recovery after a crash): traffic is held away until replay
	// completes, then the normal rejoin hysteresis applies. Unlike down, a
	// recovering replica answers probes, so there is no backoff.
	StateRecovering
)

// String returns the lifecycle name used in /healthz and metrics labels.
func (s ReplicaState) String() string {
	switch s {
	case StateLive:
		return "live"
	case StateDraining:
		return "draining"
	case StateDown:
		return "down"
	case StateRejoining:
		return "rejoining"
	case StateRecovering:
		return "recovering"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// ErrDraining is the probe result for a replica that is up but draining: it
// must leave the routing set without being treated as crashed (no backoff,
// no rejoin hysteresis once undrained... the probe keeps watching it).
var ErrDraining = errors.New("cluster: replica is draining")

// ErrRecovering is the probe result for a replica that is up but replaying
// its write-ahead log after a restart: hold traffic away (its data is
// incomplete until replay finishes) without the down state's probe backoff —
// recovery completes on its own and the next successful probe starts the
// rejoin hysteresis.
var ErrRecovering = errors.New("cluster: replica is recovering")

// Probe checks one replica's health: nil means live, ErrDraining means up
// but draining, anything else means down. Probes must be safe for
// concurrent use across replicas (each replica gets its own prober
// goroutine).
type Probe func(replica int) error

// HealthConfig tunes the health pool. The zero value picks every default.
type HealthConfig struct {
	// Interval between probes of a non-down replica. Default 500ms.
	Interval time.Duration
	// FailAfter is how many consecutive probe failures demote a live
	// replica to down. Passive failures (down sentinels seen by the
	// router) skip the count — the replica said so itself. Default 2.
	FailAfter int
	// RejoinAfter is how many consecutive probe successes a rejoining
	// replica needs before it is routed to again. Default 2.
	RejoinAfter int
	// BackoffMax caps the exponential probe backoff while a replica is
	// down. Default 8×Interval.
	BackoffMax time.Duration
}

// normalized resolves defaults.
func (c HealthConfig) normalized() HealthConfig {
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	if c.RejoinAfter <= 0 {
		c.RejoinAfter = 2
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 8 * c.Interval
	}
	return c
}

// replicaHealth is one replica's mutable health record.
type replicaHealth struct {
	state   ReplicaState
	fails   int    // consecutive probe failures (drives demotion and backoff)
	succs   int    // consecutive successes while rejoining
	lastErr string // last probe error, for /healthz
}

// HealthPool tracks every replica's lifecycle state from two signals: an
// active prober per replica (Start) and passive reports from the routing
// tier (ReportFailure/ReportDraining/ReportSuccess — a replica's own
// refusal sentinel is authoritative, so passive demotion is immediate).
// Membership changes never rebuild the hash ring; the router just excludes
// non-live replicas when walking a key's ring sequence, which reassigns
// only the excluded replica's ~1/N of the key space (see Ring.OwnerAmong).
type HealthPool struct {
	cfg   HealthConfig
	probe Probe

	mu   sync.Mutex
	reps []replicaHealth

	stop     chan struct{}
	stopOnce sync.Once
	started  bool
}

// NewHealthPool builds a pool over replicas 0..n-1, all initially live.
// Call Start to launch the probers; an unstarted pool still tracks passive
// reports (useful for tests and probe-less embeddings).
func NewHealthPool(n int, probe Probe, cfg HealthConfig) *HealthPool {
	return &HealthPool{
		cfg:   cfg.normalized(),
		probe: probe,
		reps:  make([]replicaHealth, n),
		stop:  make(chan struct{}),
	}
}

// Start launches one prober goroutine per replica. Idempotent.
func (p *HealthPool) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started || p.probe == nil {
		return
	}
	p.started = true
	for i := range p.reps {
		go p.prober(i)
	}
}

// Stop terminates the probers. The pool keeps answering state queries.
func (p *HealthPool) Stop() { p.stopOnce.Do(func() { close(p.stop) }) }

// prober drives one replica's active checks, backing off while it is down.
func (p *HealthPool) prober(i int) {
	t := time.NewTimer(p.probeDelay(i))
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
		}
		p.Pulse(i)
		t.Reset(p.probeDelay(i))
	}
}

// Pulse runs one probe of replica i immediately and feeds the result into
// the state machine (the probers call it on their timers; tests call it
// directly for deterministic transitions).
func (p *HealthPool) Pulse(i int) {
	err := p.probe(i)
	switch {
	case err == nil:
		p.note(i, probeOK, "")
	case errors.Is(err, ErrDraining):
		p.note(i, probeDraining, "")
	case errors.Is(err, ErrRecovering):
		p.note(i, probeRecovering, "")
	default:
		p.note(i, probeFail, err.Error())
	}
}

// probeDelay returns how long to wait before the next probe of replica i:
// the configured interval, doubling per consecutive failure while down.
func (p *HealthPool) probeDelay(i int) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	h := p.reps[i]
	if h.state != StateDown {
		return p.cfg.Interval
	}
	shift := h.fails
	if shift > 6 {
		shift = 6
	}
	d := p.cfg.Interval << uint(shift)
	if d > p.cfg.BackoffMax {
		d = p.cfg.BackoffMax
	}
	return d
}

// probeResult classifies one observation of a replica.
type probeResult int

const (
	probeOK probeResult = iota
	probeDraining
	probeRecovering
	probeFail
)

// note advances one replica's state machine on one observation.
func (p *HealthPool) note(i int, res probeResult, errText string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	h := &p.reps[i]
	switch res {
	case probeOK:
		h.fails, h.lastErr = 0, ""
		switch h.state {
		case StateDown, StateDraining, StateRecovering:
			h.succs = 1
			h.state = StateRejoining
		case StateRejoining:
			h.succs++
		default:
			return
		}
		if h.succs >= p.cfg.RejoinAfter {
			h.state, h.succs = StateLive, 0
		}
	case probeDraining:
		h.state = StateDraining
		h.fails, h.succs = 0, 0
	case probeRecovering:
		h.state = StateRecovering
		h.fails, h.succs = 0, 0
	case probeFail:
		h.lastErr = errText
		h.succs = 0
		h.fails++
		switch h.state {
		case StateLive:
			if h.fails >= p.cfg.FailAfter {
				h.state = StateDown
			}
		case StateRejoining, StateDraining, StateRecovering:
			// A rejoining replica that fails again, or a draining or
			// recovering one that stops answering entirely, is down.
			h.state = StateDown
		}
	}
}

// ReportFailure is the passive path: the routing tier saw replica i refuse
// with a down sentinel (or observed a hard transport failure). The replica
// declared itself unavailable, so demotion is immediate — no FailAfter
// hysteresis, the next probes handle recovery.
func (p *HealthPool) ReportFailure(i int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	h := &p.reps[i]
	h.state, h.succs = StateDown, 0
	if h.fails == 0 {
		h.fails = 1
	}
}

// ReportDraining records a draining sentinel seen by the routing tier.
func (p *HealthPool) ReportDraining(i int) { p.note(i, probeDraining, "") }

// ReportRecovering records a recovering sentinel seen by the routing tier: a
// replica that refused traffic because it is still replaying its WAL.
func (p *HealthPool) ReportRecovering(i int) { p.note(i, probeRecovering, "") }

// ReportSuccess feeds a successful routed request into the state machine:
// a non-live replica that just served real traffic makes progress toward
// live without waiting for its next probe tick.
func (p *HealthPool) ReportSuccess(i int) { p.note(i, probeOK, "") }

// State returns replica i's current lifecycle state.
func (p *HealthPool) State(i int) ReplicaState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reps[i].state
}

// Routable reports whether replica i should receive routed traffic.
func (p *HealthPool) Routable(i int) bool { return p.State(i) == StateLive }

// RetryAfterSeconds is the Retry-After value for an all-replicas-down 503:
// one full demotion cycle (FailAfter probes), rounded up to a whole second
// — by then the pool has either re-admitted a replica or confirmed the
// outage.
func (p *HealthPool) RetryAfterSeconds() int {
	d := p.cfg.Interval * time.Duration(p.cfg.FailAfter)
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// ReplicaHealthSnapshot is one replica's row in /healthz.
type ReplicaHealthSnapshot struct {
	Replica   int    `json:"replica"`
	State     string `json:"state"`
	Fails     int    `json:"consecutive_fails,omitempty"`
	LastError string `json:"last_error,omitempty"`
}

// SnapshotAll captures every replica's health row.
func (p *HealthPool) SnapshotAll() []ReplicaHealthSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]ReplicaHealthSnapshot, len(p.reps))
	for i, h := range p.reps {
		out[i] = ReplicaHealthSnapshot{
			Replica:   i,
			State:     h.state.String(),
			Fails:     h.fails,
			LastError: h.lastErr,
		}
	}
	return out
}

// NodeProbe probes in-process nodes by their own lifecycle state — the
// -replicas deployment's probe, equivalent to what an HTTP health check
// would observe without the socket.
func NodeProbe(nodes []*Node) Probe {
	return func(i int) error {
		switch nodes[i].State() {
		case StateDown:
			return fmt.Errorf("cluster: replica %d is down", i)
		case StateDraining:
			return ErrDraining
		}
		if nodes[i].Recovering() {
			return ErrRecovering
		}
		return nil
	}
}

// NewHTTPProbe probes replicas over HTTP (GET <base>/healthz) for
// one-process-per-replica deployments. A draining replica answers health
// checks with the draining sentinel header, which maps to ErrDraining.
// timeout <= 0 picks DefaultPeerTimeout.
func NewHTTPProbe(bases []string, timeout time.Duration) Probe {
	if timeout <= 0 {
		timeout = DefaultPeerTimeout
	}
	client := &http.Client{Timeout: timeout}
	return func(i int) error {
		resp, err := client.Get(bases[i] + "/healthz")
		if err != nil {
			return err
		}
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		switch resp.Header.Get(ReplicaUnavailableHeader) {
		case "draining":
			return ErrDraining
		case "recovering":
			return ErrRecovering
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("cluster: replica %d healthz: %s", i, resp.Status)
		}
		return nil
	}
}
