package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/middleware"
	"github.com/maliva/maliva/internal/workload"
)

// newTestClusterCfg is newTestCluster with explicit health/hedge tuning —
// lifecycle tests need probe intervals far below the production default.
func newTestClusterCfg(t testing.TB, replicas int, health HealthConfig, hedge HedgeConfig) *Cluster {
	t.Helper()
	ds := testDatasets(t)
	c, err := New(Config{
		Replicas: replicas,
		Names:    []string{"twitter", "taxi"},
		Datasets: ds,
		Factory:  middleware.OracleFactory,
		Server:   middleware.ServerConfig{DefaultBudgetMs: 500},
		Space:    core.HintOnlySpec(),
		Health:   health,
		Hedge:    hedge,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Warm(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestClusterHedgedFetchRacesNextReplica: when a key's owner goes silent
// (injected drop — the fetch hangs until its deadline), the hedge leg asks
// the next ring replica and wins the race, serving the cached result
// byte-identically instead of stalling for the full peer timeout.
func TestClusterHedgedFetchRacesNextReplica(t *testing.T) {
	c := newTestCluster(t, 3)
	cs := httptest.NewServer(c.Handler())
	defer cs.Close()

	// Seed the cluster with one served response and locate its key's owner.
	body := twitterBody("word0050")
	before := c.Snapshot()
	want := postOK(t, cs.URL+"/viz", body)
	owner := routedTo(t, before, c.Snapshot())
	key := resultKeyOf(t, want, workload.USExtent, 500)
	if ringOwner := c.Ring().Owner(key.Hash()); ringOwner != owner {
		t.Fatalf("routed to %d but ring owner is %d — unified routing broken", owner, ringOwner)
	}

	// Cast the race: seq = [owner, asker, target]. The asker's fetch to the
	// owner is dropped; the target holds a copy of the result.
	seq := c.Ring().Sequence(key.Hash())
	asker, target := seq[1], seq[2]
	var resp middleware.Response
	if err := json.Unmarshal(want, &resp); err != nil {
		t.Fatal(err)
	}
	c.Node(target).fillLocal("twitter", key, &resp)

	peers := make([]PeerClient, 3)
	for j := 0; j < 3; j++ {
		if j != asker {
			peers[j] = localPeer{node: c.Node(j)}
		}
	}
	peers[owner] = FaultyPeer{
		Inner:  peers[owner],
		Faults: NewFaults(FaultConfig{Seed: 1, DropRate: 1, DropDelay: 40 * time.Millisecond}),
	}
	c.Node(asker).SetPeers(peers)

	as := httptest.NewServer(c.Node(asker).Handler())
	defer as.Close()
	got := postOK(t, as.URL+"/viz", body)
	if !bytes.Equal(got, want) {
		t.Errorf("hedged response differs from the original:\n got %s\nwant %s", got, want)
	}
	st := c.Node(asker).CacheSnapshot()
	if st.HedgedFetches < 1 {
		t.Errorf("hedged fetches = %d, want >= 1", st.HedgedFetches)
	}
	if st.HedgeWins < 1 {
		t.Errorf("hedge wins = %d, want >= 1", st.HedgeWins)
	}
	if st.PeerHits < 1 {
		t.Errorf("peer hits = %d, want >= 1 (the hedge leg's hit)", st.PeerHits)
	}
}

// TestRouterRetryAfterOnAllDown: the "no live replica" 503 carries a
// Retry-After derived from the probe cycle, so well-behaved clients back
// off long enough for a probe to notice a recovery.
func TestRouterRetryAfterOnAllDown(t *testing.T) {
	c := newTestCluster(t, 2)
	cs := httptest.NewServer(c.Handler())
	defer cs.Close()

	c.Kill(0)
	c.Kill(1)
	code, hdr, msg := post(t, cs.URL+"/viz", twitterBody("word0001"))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", code, msg)
	}
	want := fmt.Sprintf("%d", c.Router().Health().RetryAfterSeconds())
	if got := hdr.Get("Retry-After"); got != want {
		t.Errorf("Retry-After = %q, want %q", got, want)
	}
	if !bytes.Contains(msg, []byte("no live replica")) {
		t.Errorf("body %q should name the condition", msg)
	}
}

// TestClusterDrainSemantics: a draining replica refuses new visualization
// traffic (with the draining sentinel) but keeps serving peer fetches and
// health checks, so its cache stays useful while it empties out.
func TestClusterDrainSemantics(t *testing.T) {
	c := newTestCluster(t, 2)
	cs := httptest.NewServer(c.Handler())
	defer cs.Close()

	// The routed tier keeps serving throughout the drain.
	_ = postOK(t, cs.URL+"/viz", twitterBody("word0060"))
	c.Drain(1)
	_ = postOK(t, cs.URL+"/viz", twitterBody("word0061"))

	ns := httptest.NewServer(c.Node(1).Handler())
	defer ns.Close()
	code, hdr, _ := post(t, ns.URL+"/viz", twitterBody("word0062"))
	if code != http.StatusServiceUnavailable {
		t.Errorf("draining /viz status = %d, want 503", code)
	}
	if got := hdr.Get(ReplicaUnavailableHeader); got != "draining" {
		t.Errorf("sentinel = %q, want \"draining\"", got)
	}
	hres, err := http.Get(ns.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		t.Errorf("draining /healthz status = %d, want 200 (probes must still see it)", hres.StatusCode)
	}
	if c.Node(1).State() != StateDraining {
		t.Errorf("node state = %v, want draining", c.Node(1).State())
	}

	c.Rejoin(1)
	if c.Node(1).State() != StateLive {
		t.Errorf("after rejoin node state = %v, want live", c.Node(1).State())
	}
}

// TestClusterMembershipFlapping is the robustness satellite: 32 goroutines
// drive routed traffic while two of three replicas flap through
// kill/revive/drain/rejoin. No request may be lost — every response is
// either a 200 byte-identical to a standalone gateway's, or a clean 503 —
// and a healthy majority of requests must succeed. Run with -race.
func TestClusterMembershipFlapping(t *testing.T) {
	c := newTestClusterCfg(t, 3, HealthConfig{
		Interval: 2 * time.Millisecond, FailAfter: 1, RejoinAfter: 1,
	}, HedgeConfig{})
	cs := httptest.NewServer(c.Handler())
	defer cs.Close()

	// Reference truth from a standalone gateway over the same datasets.
	bodies := make([][]byte, 0, 10)
	for i := 0; i < 8; i++ {
		bodies = append(bodies, twitterBody(fmt.Sprintf("word%04d", 40+i)))
	}
	bodies = append(bodies, taxiBody(1), taxiBody(3))
	gw := newTestGateway(t)
	gs := httptest.NewServer(gw.Handler())
	defer gs.Close()
	want := make(map[string][]byte, len(bodies))
	for _, b := range bodies {
		want[string(b)] = postOK(t, gs.URL+"/viz", b)
	}

	// Flapper: replica 0 stays live throughout; 1 and 2 cycle through the
	// lifecycle under the prober's nose.
	stopFlap := make(chan struct{})
	var flapWG sync.WaitGroup
	flapWG.Add(1)
	go func() {
		defer flapWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stopFlap:
				c.Revive(1)
				c.Rejoin(2)
				return
			default:
			}
			switch i % 4 {
			case 0:
				c.Kill(1)
			case 1:
				c.Drain(2)
			case 2:
				c.Revive(1)
			case 3:
				c.Rejoin(2)
			}
			time.Sleep(3 * time.Millisecond)
		}
	}()

	const workers = 32
	const perWorker = 12
	var ok200, ok503 atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				b := bodies[rng.Intn(len(bodies))]
				resp, err := http.Post(cs.URL+"/viz", "application/json", bytes.NewReader(b))
				if err != nil {
					errc <- fmt.Errorf("transport error: %w", err)
					continue
				}
				data, err := readAllAndClose(resp)
				if err != nil {
					errc <- err
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					ok200.Add(1)
					if !bytes.Equal(data, want[string(b)]) {
						errc <- fmt.Errorf("200 response diverged from the gateway for %s", b)
					}
				case http.StatusServiceUnavailable:
					ok503.Add(1)
				default:
					errc <- fmt.Errorf("status %d (lost request): %s", resp.StatusCode, data)
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	close(stopFlap)
	flapWG.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	total := ok200.Load() + ok503.Load()
	if total != workers*perWorker {
		t.Errorf("accounted for %d of %d requests", total, workers*perWorker)
	}
	if ok200.Load() < int64(workers*perWorker/2) {
		t.Errorf("only %d/%d requests succeeded under flapping; replica 0 never left", ok200.Load(), total)
	}
	t.Logf("flapping: %d ok, %d unavailable, retries=%d failovers(total)=%d",
		ok200.Load(), ok503.Load(), c.Snapshot().Retries, totalFailovers(c.Snapshot()))
}

// readAllAndClose drains and closes a response body.
func readAllAndClose(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

// totalFailovers sums the per-replica failover counters.
func totalFailovers(s Snapshot) int64 {
	var n int64
	for _, r := range s.Replicas {
		n += r.Failovers
	}
	return n
}
