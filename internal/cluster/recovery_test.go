package cluster

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/middleware"
	"github.com/maliva/maliva/internal/workload"
)

// TestHealthPoolRecoveringState: the recovering probe result holds a replica
// out of routing without the down state's backoff; once recovery completes
// the normal rejoin hysteresis applies, and a recovering replica that stops
// answering probes entirely is demoted to down.
func TestHealthPoolRecoveringState(t *testing.T) {
	state := ErrRecovering
	probe := func(int) error { return state }
	p := NewHealthPool(1, probe, HealthConfig{FailAfter: 2, RejoinAfter: 2})

	p.Pulse(0)
	if got := p.State(0); got != StateRecovering {
		t.Fatalf("state after recovering probe = %v, want recovering", got)
	}
	if p.Routable(0) {
		t.Fatal("recovering replica must not be routable")
	}
	if snap := p.SnapshotAll(); snap[0].State != "recovering" {
		t.Fatalf("snapshot state = %q, want recovering", snap[0].State)
	}

	// Replay finished: successes walk the replica through rejoining to live.
	state = nil
	p.Pulse(0)
	if got := p.State(0); got != StateRejoining {
		t.Fatalf("state after first success = %v, want rejoining", got)
	}
	p.Pulse(0)
	if got := p.State(0); got != StateLive {
		t.Fatalf("state after RejoinAfter successes = %v, want live", got)
	}

	// A recovering replica that goes silent is down immediately — no
	// FailAfter grace, it was already out of the routed set.
	state = ErrRecovering
	p.Pulse(0)
	state = errors.New("connection refused")
	p.Pulse(0)
	if got := p.State(0); got != StateDown {
		t.Fatalf("state after failure while recovering = %v, want down", got)
	}
}

// TestNodeRecoveringSentinel: while a node's gateway is replaying durable
// state, routed traffic is refused with the recovering sentinel, both probe
// flavors classify the replica as ErrRecovering, and everything clears once
// the build completes.
func TestNodeRecoveringSentinel(t *testing.T) {
	release := make(chan struct{})
	cfg := workload.TwitterConfig()
	cfg.Rows = 2_000
	reg := workload.NewRegistry()
	if err := reg.Register("twitter", func() (*workload.Dataset, error) {
		<-release
		return workload.Twitter(cfg)
	}); err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(0, NewRing(1, 0), reg, middleware.OracleFactory, middleware.GatewayConfig{
		Server: middleware.ServerConfig{DefaultBudgetMs: 500},
		Space:  core.HintOnlySpec(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	// Start the build without blocking on it, then flag it as WAL replay —
	// exactly what a server booting with -wal-dir does.
	if _, st, _ := reg.Poll("twitter"); st != workload.StatusWarming {
		t.Fatalf("poll status = %v, want warming", st)
	}
	reg.MarkRecovering("twitter")
	if !n.Recovering() {
		t.Fatal("node does not report recovering during replay")
	}
	probe := NodeProbe([]*Node{n})
	if err := probe(0); !errors.Is(err, ErrRecovering) {
		t.Fatalf("NodeProbe = %v, want ErrRecovering", err)
	}

	ns := httptest.NewServer(n.Handler())
	defer ns.Close()
	code, hdr, _ := post(t, ns.URL+"/viz", twitterBody("word0001"))
	if code != http.StatusServiceUnavailable {
		t.Errorf("recovering /viz status = %d, want 503", code)
	}
	if got := hdr.Get(ReplicaUnavailableHeader); got != "recovering" {
		t.Errorf("sentinel = %q, want \"recovering\"", got)
	}
	if err := NewHTTPProbe([]string{ns.URL}, time.Second)(0); !errors.Is(err, ErrRecovering) {
		t.Errorf("HTTP probe = %v, want ErrRecovering", err)
	}

	// Replay completes: the node serves and probes go clean.
	close(release)
	if _, err := reg.Lookup("twitter"); err != nil {
		t.Fatal(err)
	}
	if n.Recovering() {
		t.Fatal("node still recovering after the build finished")
	}
	if err := probe(0); err != nil {
		t.Fatalf("NodeProbe after recovery = %v, want nil", err)
	}
	// The gateway's own serving entry (rewriter + server) finishes building
	// asynchronously after the registry unblocks; poll briefly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, _, body := post(t, ns.URL+"/viz", twitterBody("word0001"))
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("post-recovery /viz = %d: %s", code, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
