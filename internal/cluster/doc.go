// Package cluster scales the Maliva serving layer past one gateway: a
// replica-aware routing tier in front of N middleware.Gateway replicas,
// with a groupcache-style peer protocol that turns N private result caches
// into one cluster-wide cache.
//
// The pieces, front to back:
//
//   - Ring — a consistent-hash ring (64 virtual nodes per replica by
//     default) mapping every result-cache key to exactly one owning
//     replica, with a deterministic failover sequence per key.
//   - Router — the HTTP routing tier. It hashes each /viz request by the
//     fields that determine its result-cache key (dataset, predicates,
//     kind, grid, budget — normalized exactly like the server normalizes
//     them) and forwards the original body to the owner, so cache hits
//     concentrate on one replica per key instead of fragmenting N ways. A
//     down owner fails over to the next replica on the ring.
//   - Node — one replica: a complete gateway (its own servers, plan
//     caches, lookup caches, admission pool) whose per-dataset result
//     caches are wrapped with the peer-shared cache, plus the /cluster
//     fetch and fill endpoints other replicas talk to.
//   - peerCache — the middleware.ResultCache wrapper: local miss → fetch
//     from the key's owner (single-flight per key), peer error → local
//     compute (a budget never waits on a dead peer), and computed results
//     a replica doesn't own are offered to their owner asynchronously, so
//     one cold execution fills the whole cluster.
//   - PeerClient — the peer transport: direct pointer exchange for
//     in-process replicas (maliva-server -replicas N), JSON over HTTP for
//     one-process-per-replica deployments (maliva-server -peer).
//
// Determinism is the load-bearing invariant, inherited from the layers
// below (see docs/ARCHITECTURE.md): every replica computes bit-identical
// responses for equal keys, so an R-replica cluster's responses are
// byte-identical to a single standalone gateway's no matter which replica
// served from which cache — pinned by TestClusterByteIdenticalToGateway.
package cluster
