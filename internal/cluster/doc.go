// Package cluster scales the Maliva serving layer past one gateway: a
// replica-aware routing tier in front of N middleware.Gateway replicas,
// with a groupcache-style peer protocol that turns N private result caches
// into one cluster-wide cache.
//
// The pieces, front to back:
//
//   - Ring — a consistent-hash ring (64 virtual nodes per replica by
//     default) mapping every result-cache key to exactly one owning
//     replica, with a deterministic failover sequence per key.
//   - Router — the HTTP routing tier. It resolves each /viz request to its
//     server-normalized ResultKey (through a ready replica's plan path) and
//     hashes that — the same key space peer-cache ownership uses, so the
//     routed replica owns its key; requests the unified path can't key
//     (unparseable, rejected, still warming) fall back to a shape hash.
//     Replica membership is governed by a HealthPool: active /healthz
//     probes plus passive demotion on a replica's refusal sentinel, with
//     explicit live/draining/down/rejoining states and exponential probe
//     backoff. A non-live owner fails over along the key's ring sequence;
//     only when no replica at all serves does the client see a 503 (with
//     Retry-After derived from the probe cycle).
//   - HealthPool — the replica lifecycle state machine and its probers.
//   - Faults / FaultyPeer — deterministic, seedable fault injection
//     (drop/error/delay) on the node surface and the peer transport, the
//     hooks maliva-load -churn and the robustness tests drive.
//   - Node — one replica: a complete gateway (its own servers, plan
//     caches, lookup caches, admission pool) whose per-dataset result
//     caches are wrapped with the peer-shared cache, plus the /cluster
//     fetch and fill endpoints other replicas talk to.
//   - peerCache — the middleware.ResultCache wrapper: local miss → fetch
//     from the key's owner (single-flight per key, hedged against the next
//     ring replica when the owner is slow), peer error → local compute (a
//     budget never waits on a dead peer), and computed results a replica
//     doesn't own are offered to their owner asynchronously, so one cold
//     execution fills the whole cluster.
//   - PeerClient — the peer transport: direct pointer exchange for
//     in-process replicas (maliva-server -replicas N), JSON over HTTP for
//     one-process-per-replica deployments (maliva-server -peer).
//
// Determinism is the load-bearing invariant, inherited from the layers
// below (see docs/ARCHITECTURE.md): every replica computes bit-identical
// responses for equal keys, so an R-replica cluster's responses are
// byte-identical to a single standalone gateway's no matter which replica
// served from which cache — pinned by TestClusterByteIdenticalToGateway.
package cluster
