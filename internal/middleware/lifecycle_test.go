package middleware

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/engine"
	"github.com/maliva/maliva/internal/workload"
)

// postViz sends one valid /viz request and returns the response.
func postViz(t *testing.T, url string, extra http.Header) *http.Response {
	t.Helper()
	body, _ := json.Marshal(map[string]any{
		"keyword": "word0005",
		"from":    "2016-03-01T00:00:00Z",
		"to":      "2016-05-01T00:00:00Z",
		"min_lon": workload.USExtent.MinLon, "min_lat": workload.USExtent.MinLat,
		"max_lon": workload.USExtent.MaxLon, "max_lat": workload.USExtent.MaxLat,
		"kind": "heatmap", "grid_w": 8, "grid_h": 8, "budget_ms": 500,
	})
	req, err := http.NewRequest(http.MethodPost, url+"/viz", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, vs := range extra {
		for _, v := range vs {
			req.Header.Set(k, v)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestPanicRecoveryHTTP: a panic inside the serving path becomes a 500 plus
// a counted recovery — the process (and the next request) survive.
func TestPanicRecoveryHTTP(t *testing.T) {
	s := testServer(t)
	hsrv := httptest.NewServer(s.Handler())
	defer hsrv.Close()

	boom := true
	s.SetFaultHook(func(stage string) {
		if boom && stage == "viz" {
			panic("injected viz fault")
		}
	})
	resp := postViz(t, hsrv.URL, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking request = %d, want 500", resp.StatusCode)
	}
	if got := s.metrics.panicsSnapshot()["viz"]; got != 1 {
		t.Fatalf("panics[viz] = %d, want 1", got)
	}

	// The process survived: the very next request serves normally.
	boom = false
	resp = postViz(t, hsrv.URL, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic request = %d, want 200", resp.StatusCode)
	}

	// The counter is exported with the handler label.
	mr, err := http.Get(hsrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, rerr := mr.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	if !strings.Contains(sb.String(), `maliva_panics_total{handler="viz"} 1`) {
		t.Fatalf("metrics missing panic series:\n%s", sb.String())
	}
}

// TestPanicRecoveryWorker: a panic on a worker goroutine (the gateway's
// session observer) is recovered and counted instead of killing the process,
// and the observer keeps processing later observations.
func TestPanicRecoveryWorker(t *testing.T) {
	cfg := workload.TwitterConfig()
	cfg.Rows = 4_000
	reg := workload.NewRegistry()
	if err := reg.Register("twitter", func() (*workload.Dataset, error) { return workload.Twitter(cfg) }); err != nil {
		t.Fatal(err)
	}
	g, err := NewGateway(reg, nil, GatewayConfig{Space: core.HintOnlySpec()})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := g.Warm(); err != nil {
		t.Fatal(err)
	}
	srv, err := g.Server("twitter")
	if err != nil {
		t.Fatal(err)
	}
	srv.SetFaultHook(func(stage string) {
		if stage == "observe" {
			panic("injected observer fault")
		}
	})

	hsrv := httptest.NewServer(g.Handler())
	defer hsrv.Close()
	hdr := http.Header{}
	hdr.Set(SessionHeader, "sess-1")
	resp := postViz(t, hsrv.URL, hdr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("viz = %d", resp.StatusCode)
	}

	// The observation is processed asynchronously; wait for the recovery.
	deadline := time.Now().Add(5 * time.Second)
	for srv.metrics.panicsSnapshot()["observe"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("observer panic never recovered/counted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The observer goroutine survived: with the fault cleared, another
	// session request is observed without incident and serving still works.
	srv.SetFaultHook(nil)
	resp = postViz(t, hsrv.URL, hdr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery viz = %d", resp.StatusCode)
	}
}

// TestServerDrainAndClose: draining flips /healthz to 503 "draining" and
// rejects new /viz + /ingest with 503; Close flushes buffered async rows so
// acknowledged writes are applied before shutdown completes.
func TestServerDrainAndClose(t *testing.T) {
	s := testServer(t)
	hsrv := httptest.NewServer(s.Handler())
	defer hsrv.Close()

	// Buffer a few async rows, then drain.
	stream, err := workload.NewIngestStream(s.DS, 11)
	if err != nil {
		t.Fatal(err)
	}
	v0 := s.DataVersion()
	rows := stream.Next(8)
	if _, err := s.Ingest(rows, false); err != nil {
		t.Fatal(err)
	}
	s.Drain()

	hr, err := http.Get(hsrv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable || health.Status != "draining" {
		t.Fatalf("healthz = %d %q, want 503 draining", hr.StatusCode, health.Status)
	}

	resp := postViz(t, hsrv.URL, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /viz = %d, want 503", resp.StatusCode)
	}
	ib, _ := json.Marshal(httpIngest{Rows: rows, Sync: true})
	iresp, err := http.Post(hsrv.URL+"/ingest", "application/json", bytes.NewReader(ib))
	if err != nil {
		t.Fatal(err)
	}
	iresp.Body.Close()
	if iresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /ingest = %d, want 503", iresp.StatusCode)
	}
	if got := s.metrics.drainRejected.Load(); got != 2 {
		t.Fatalf("drainRejected = %d, want 2", got)
	}

	// Close honors the async ack contract: every accepted row is applied —
	// whether the adaptive flusher beat us to it or Close's final flush did.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Ingestor().Pending() != 0 {
		t.Fatalf("Close left %d rows buffered", s.Ingestor().Pending())
	}
	if s.DataVersion() == v0 {
		t.Fatal("accepted rows never applied")
	}
	total, _ := s.Ingestor().Totals()
	if total != int64(len(rows)) {
		t.Fatalf("applied rows = %d, want %d", total, len(rows))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestCancelAbortsExecution: a dead request context aborts the engine
// execution at its first yield — the error is ErrExecCanceled and the
// counter records it. A live context on the same shape still serves.
func TestCancelAbortsExecution(t *testing.T) {
	s := testServer(t)
	req := validRequest()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone when execution starts
	_, _, err := s.handle(ctx, req, false)
	if !errors.Is(err, engine.ErrExecCanceled) {
		t.Fatalf("err = %v, want ErrExecCanceled", err)
	}
	if got := s.metrics.execCanceled.Load(); got == 0 {
		t.Fatal("execCanceled counter not incremented")
	}

	// Nothing was cached for the canceled request; a live retry executes and
	// serves normally.
	resp, cached, err := s.handle(context.Background(), req, false)
	if err != nil || resp == nil {
		t.Fatalf("retry after cancel: cached=%v err=%v", cached, err)
	}
	if len(resp.Bins) == 0 {
		t.Fatal("retry served empty heatmap")
	}
}

// TestGatewayDrain: a draining gateway rejects new work at the gateway
// level, reports "draining" on the health rollup, and drains every built
// dataset server underneath.
func TestGatewayDrain(t *testing.T) {
	cfg := workload.TwitterConfig()
	cfg.Rows = 4_000
	reg := workload.NewRegistry()
	if err := reg.Register("twitter", func() (*workload.Dataset, error) { return workload.Twitter(cfg) }); err != nil {
		t.Fatal(err)
	}
	g, err := NewGateway(reg, nil, GatewayConfig{Space: core.HintOnlySpec(), Sessions: SessionConfig{Disabled: true}})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Warm(); err != nil {
		t.Fatal(err)
	}
	srv, err := g.Server("twitter")
	if err != nil {
		t.Fatal(err)
	}
	g.Drain()
	if !srv.Draining() {
		t.Fatal("gateway drain did not drain the dataset server")
	}

	hsrv := httptest.NewServer(g.Handler())
	defer hsrv.Close()
	hr, err := http.Get(hsrv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable || health.Status != "draining" {
		t.Fatalf("rollup healthz = %d %q, want 503 draining", hr.StatusCode, health.Status)
	}
	resp := postViz(t, hsrv.URL, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining gateway /viz = %d, want 503", resp.StatusCode)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
