package middleware

import (
	"net/http"
)

// Server lifecycle states. A server starts serving, moves one-way to
// draining (no new work; in-flight requests finish), and ends closed (the
// ingest batcher flushed and shut). The health endpoint reports the state so
// load balancers and the cluster router fail over before the listener goes
// away.
const (
	stateServing int32 = iota
	stateDraining
	stateClosed
)

// lifecycleStatus renders a state for /healthz.
func lifecycleStatus(state int32) string {
	switch state {
	case stateDraining:
		return "draining"
	case stateClosed:
		return "closed"
	default:
		return "ok"
	}
}

// Drain stops admitting new /viz, /ingest, and prefetch work: newcomers get
// 503 + Retry-After and /healthz flips to "draining" so health-checked
// routing fails over. Requests already past admission run to completion.
// Draining is one-way; there is no resume.
func (s *Server) Drain() {
	s.state.CompareAndSwap(stateServing, stateDraining)
}

// Draining reports whether the server has stopped admitting new work.
func (s *Server) Draining() bool { return s.state.Load() != stateServing }

// Close drains the server and shuts down its write path: the ingest batcher
// flushes buffered rows (so every acknowledged async row is applied — and,
// when a WAL is attached, logged) and stops its background flusher. Safe to
// call more than once; later calls return the first close's error.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.Drain()
		s.closeErr = s.ingest.Close()
		s.state.Store(stateClosed)
	})
	return s.closeErr
}

// rejectDraining writes the draining rejection for one request and counts it.
func (s *Server) rejectDraining(w http.ResponseWriter) {
	s.metrics.drainRejected.Add(1)
	w.Header().Set("Retry-After", "1")
	http.Error(w, "server is "+lifecycleStatus(s.state.Load()), http.StatusServiceUnavailable)
}

// SetFaultHook installs a test-only fault injection point: fn runs at the
// start of each serving stage ("viz", "ingest", "prefetch", "observe") and
// may panic to exercise the recovery middleware. A nil fn removes the hook.
func (s *Server) SetFaultHook(fn func(stage string)) {
	if fn == nil {
		s.faultHook.Store(nil)
		return
	}
	s.faultHook.Store(&fn)
}

// fault fires the installed fault hook, if any.
func (s *Server) fault(stage string) {
	if f := s.faultHook.Load(); f != nil {
		(*f)(stage)
	}
}

// recoverPanics wraps one HTTP handler so a panic below it becomes a 500
// plus a maliva_panics_total{handler=...} increment instead of a dead
// process. The response write is best-effort: if the handler already sent
// headers, the connection is simply abandoned (net/http closes it), which is
// still the client's signal that something went wrong.
func recoverPanics(m *Metrics, handler string, next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				m.notePanic(handler)
				m.serverErr.Add(1)
				http.Error(w, "internal error", http.StatusInternalServerError)
			}
		}()
		next(w, r)
	}
}

// guardPanics runs fn on a worker goroutine's behalf, converting a panic
// into a counted recovery. Worker goroutines (session observer, prefetch
// dispatch, cache fill) must never take the process down: their work is
// speculative or advisory, so the correct response to a panic is to drop
// that one unit of work and keep serving.
func guardPanics(m *Metrics, worker string, fn func()) {
	defer func() {
		if v := recover(); v != nil {
			m.notePanic(worker)
		}
	}()
	fn()
}
