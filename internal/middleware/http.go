package middleware

import (
	"encoding/json"
	"net/http"
	"time"
)

// httpRequest is the JSON wire format of a visualization request.
type httpRequest struct {
	Keyword  string  `json:"keyword"`
	From     string  `json:"from"` // RFC 3339
	To       string  `json:"to"`
	MinLon   float64 `json:"min_lon"`
	MinLat   float64 `json:"min_lat"`
	MaxLon   float64 `json:"max_lon"`
	MaxLat   float64 `json:"max_lat"`
	Kind     string  `json:"kind"`
	GridW    int     `json:"grid_w"`
	GridH    int     `json:"grid_h"`
	BudgetMs float64 `json:"budget_ms"`
}

// Handler returns an http.Handler serving visualization requests at POST /viz
// and a health probe at GET /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok"))
	})
	mux.HandleFunc("POST /viz", func(w http.ResponseWriter, r *http.Request) {
		var hreq httpRequest
		if err := json.NewDecoder(r.Body).Decode(&hreq); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		req, err := hreq.toRequest()
		if err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := s.Handle(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			// Headers already sent; nothing more to do.
			return
		}
	})
	return mux
}

func (h httpRequest) toRequest() (Request, error) {
	req := Request{
		Keyword:  h.Keyword,
		Kind:     VizKind(h.Kind),
		GridW:    h.GridW,
		GridH:    h.GridH,
		BudgetMs: h.BudgetMs,
	}
	if h.From != "" {
		t, err := time.Parse(time.RFC3339, h.From)
		if err != nil {
			return req, err
		}
		req.From = t
	}
	if h.To != "" {
		t, err := time.Parse(time.RFC3339, h.To)
		if err != nil {
			return req, err
		}
		req.To = t
	}
	req.Region.MinLon, req.Region.MinLat = h.MinLon, h.MinLat
	req.Region.MaxLon, req.Region.MaxLat = h.MaxLon, h.MaxLat
	return req, nil
}
