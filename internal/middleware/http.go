package middleware

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"time"

	"github.com/maliva/maliva/internal/engine"
)

// statusClientClosedRequest is the nginx-convention status for requests
// whose client disconnected before the response was ready (there is no
// standard code; 499 is the de-facto one).
const statusClientClosedRequest = 499

// httpRequest is the JSON wire format of a visualization request.
type httpRequest struct {
	Keyword  string  `json:"keyword"`
	From     string  `json:"from"` // RFC 3339
	To       string  `json:"to"`
	MinLon   float64 `json:"min_lon"`
	MinLat   float64 `json:"min_lat"`
	MaxLon   float64 `json:"max_lon"`
	MaxLat   float64 `json:"max_lat"`
	Kind     string  `json:"kind"`
	GridW    int     `json:"grid_w"`
	GridH    int     `json:"grid_h"`
	BudgetMs float64 `json:"budget_ms"`
	// Hint carries SQL-comment-style serving hints. The one understood today
	// is `/* ttl:N */` (N in seconds): the client tolerates answers computed
	// at a data version that was current within the last N seconds —
	// tqdbproxy's staleness-hint idiom. Unknown hint text is ignored.
	Hint string `json:"hint,omitempty"`
}

// ttlHintRe matches the `/* ttl:N */` staleness hint.
var ttlHintRe = regexp.MustCompile(`/\*\s*ttl:(\d+)\s*\*/`)

// parseTTLHint extracts the staleness tolerance from a hint string; zero
// means exact (current-version) answers only.
func parseTTLHint(hint string) time.Duration {
	m := ttlHintRe.FindStringSubmatch(hint)
	if m == nil {
		return 0
	}
	sec, err := strconv.Atoi(m[1])
	if err != nil || sec <= 0 {
		return 0
	}
	return time.Duration(sec) * time.Second
}

// ParseRequest decodes the /viz JSON wire format into a Request. It is the
// exact decode path Server.Handler uses, exported so the cluster routing
// tier can interpret a request body the same way the serving replica will
// (the unified-key-space routing in internal/cluster depends on both sides
// agreeing on this normalization).
func ParseRequest(body []byte) (Request, error) {
	var hreq httpRequest
	if err := json.Unmarshal(body, &hreq); err != nil {
		return Request{}, err
	}
	return hreq.toRequest()
}

// EncodeRequest renders a Request back into the /viz JSON wire format: the
// inverse of ParseRequest for every field the serving path keys on. The
// cluster routing tier uses it to dispatch predicted (session-prefetch)
// requests to their owner replicas. The TTL staleness hint is deliberately
// not representable — speculative requests must never probe stale versions.
func EncodeRequest(req Request) ([]byte, error) {
	h := httpRequest{
		Keyword:  req.Keyword,
		MinLon:   req.Region.MinLon,
		MinLat:   req.Region.MinLat,
		MaxLon:   req.Region.MaxLon,
		MaxLat:   req.Region.MaxLat,
		Kind:     string(req.Kind),
		GridW:    req.GridW,
		GridH:    req.GridH,
		BudgetMs: req.BudgetMs,
	}
	if !req.From.IsZero() {
		h.From = req.From.Format(time.RFC3339Nano)
	}
	if !req.To.IsZero() {
		h.To = req.To.Format(time.RFC3339Nano)
	}
	return json.Marshal(h)
}

// Handler returns an http.Handler serving:
//
//	POST /viz      — visualization requests (admission-controlled)
//	POST /ingest   — append rows through the adaptive write batcher
//	GET  /healthz  — liveness probe; status reflects the lifecycle
//	                 ("ok" / "draining" / "closed")
//	GET  /metrics  — Prometheus text format; ?format=json for a snapshot
//
// Every route runs under the panic-recovery middleware: a panicking request
// becomes a 500 plus a maliva_panics_total{handler=...} increment, never a
// dead process.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", recoverPanics(s.metrics, "healthz", s.serveHealthz))
	mux.HandleFunc("GET /metrics", recoverPanics(s.metrics, "metrics", func(w http.ResponseWriter, r *http.Request) {
		live, prefetch := s.admit.queueDepths()
		if r.URL.Query().Get("format") == "json" {
			snap := s.metrics.Snapshot()
			snap.QueueDepthLive, snap.QueueDepthPrefetch = live, prefetch
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.metrics.WritePrometheus(w)
		writeQueueDepths(w, live, prefetch)
	}))
	mux.HandleFunc("POST /viz", recoverPanics(s.metrics, "viz", s.serveViz))
	mux.HandleFunc("POST /ingest", recoverPanics(s.metrics, "ingest", s.serveIngest))
	return mux
}

// serveHealthz reports liveness plus the lifecycle state. Draining and
// closed servers answer 503 so health-checked load balancers (and the
// cluster router's probes) fail over before the listener disappears.
func (s *Server) serveHealthz(w http.ResponseWriter, r *http.Request) {
	status := lifecycleStatus(s.state.Load())
	w.Header().Set("Content-Type", "application/json")
	if status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":     status,
		"uptime_sec": time.Since(s.metrics.start).Seconds(),
	})
}

// writeQueueDepths emits the per-lane admission queue-depth gauges.
func writeQueueDepths(w io.Writer, live, prefetch int) {
	fmt.Fprintf(w, "maliva_admission_queue_depth{lane=\"live\"} %d\n", live)
	fmt.Fprintf(w, "maliva_admission_queue_depth{lane=\"prefetch\"} %d\n", prefetch)
}

// serveViz decodes, admits, executes, and encodes one /viz request.
// Requests carrying the prefetch header take the speculative path instead:
// prefetch-lane admission, cache warming, no response body.
func (s *Server) serveViz(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(PrefetchHeader) != "" {
		s.servePrefetch(w, r)
		return
	}
	s.metrics.requests.Add(1)
	if s.Draining() {
		s.rejectDraining(w)
		return
	}
	s.fault("viz")
	// Live-activity window for background parking: spans decode through the
	// end of response encoding, plus a cooldown stamped on exit — wider than
	// the admission slot, which misses the request's edges (see liveBusy).
	s.liveHTTP.Add(1)
	defer func() {
		s.lastLiveNs.Store(s.cfg.Now().UnixNano())
		s.liveHTTP.Add(-1)
	}()
	// Bound the body before doing any work: oversized payloads must not
	// consume memory outside the admission accounting.
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	var hreq httpRequest
	if err := json.NewDecoder(r.Body).Decode(&hreq); err != nil {
		s.metrics.clientErr.Add(1)
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	req, err := hreq.toRequest()
	if err != nil {
		s.metrics.clientErr.Add(1)
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}

	// Admission: wait for a worker slot at most min(QueueTimeout, the
	// request's budget read as real milliseconds). The budget measures
	// virtual engine time, not wall clock, but it is the client's
	// latency-sensitivity signal — tight-budget requests shed first under
	// overload. A small floor keeps tiny budgets from being rejected
	// spuriously when the warm path would serve them in microseconds.
	const minQueueWait = 10 * time.Millisecond
	budget := s.effectiveBudget(req)
	wait := s.cfg.QueueTimeout
	if b := time.Duration(budget * float64(time.Millisecond)); b < wait {
		wait = b
	}
	if wait < minQueueWait {
		wait = minQueueWait
	}
	switch s.admit.acquire(wait) {
	case admitBusy:
		s.metrics.rejectBusy.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server overloaded: queue full", http.StatusTooManyRequests)
		return
	case admitTimeout:
		s.metrics.rejectWait.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server overloaded: no capacity within the request deadline", http.StatusServiceUnavailable)
		return
	}
	defer s.admit.release()

	start := time.Now()
	resp, cached, err := s.handle(r.Context(), req, false)
	s.metrics.latency.observe(time.Since(start))
	if err != nil {
		switch {
		case errors.Is(err, ErrBadRequest):
			s.metrics.clientErr.Add(1)
			http.Error(w, err.Error(), http.StatusBadRequest)
		case errors.Is(err, engine.ErrExecCanceled):
			// The client is gone; the status code is for the access log only
			// (nginx's 499 convention). Not a server error — nothing failed.
			http.Error(w, err.Error(), statusClientClosedRequest)
		default:
			s.metrics.serverErr.Add(1)
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	s.metrics.ok.Add(1)
	w.Header().Set("Content-Type", "application/json")
	if cached {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		// Headers already sent; nothing more to do.
		return
	}
}

// servePrefetch handles a /viz request flagged with the prefetch header
// (the cluster routing tier dispatches speculative work this way, to the
// key's owner replica). The body is the normal /viz wire format; the
// response carries no payload — prefetch is fire-and-forget cache warming.
func (s *Server) servePrefetch(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		// Speculative work is the first thing shed on shutdown.
		w.WriteHeader(http.StatusNoContent)
		return
	}
	s.fault("prefetch")
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	var hreq httpRequest
	if err := json.NewDecoder(r.Body).Decode(&hreq); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	req, err := hreq.toRequest()
	if err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	s.Prefetch(req)
	w.WriteHeader(http.StatusNoContent)
}

func (h httpRequest) toRequest() (Request, error) {
	req := Request{
		Keyword:  h.Keyword,
		Kind:     VizKind(h.Kind),
		GridW:    h.GridW,
		GridH:    h.GridH,
		BudgetMs: h.BudgetMs,
	}
	if h.From != "" {
		t, err := time.Parse(time.RFC3339, h.From)
		if err != nil {
			return req, err
		}
		req.From = t
	}
	if h.To != "" {
		t, err := time.Parse(time.RFC3339, h.To)
		if err != nil {
			return req, err
		}
		req.To = t
	}
	req.Region.MinLon, req.Region.MinLat = h.MinLon, h.MinLat
	req.Region.MaxLon, req.Region.MaxLat = h.MaxLon, h.MaxLat
	req.TTL = parseTTLHint(h.Hint)
	return req, nil
}

// httpIngest is the JSON wire format of an ingest request: rows keyed by
// column name (time columns as RFC 3339 strings, point columns as [lon,lat],
// text columns as whitespace-separated words). sync forces a flush before
// responding, so the rows — and the cache invalidation the flush implies —
// are visible when the call returns.
type httpIngest struct {
	Rows []map[string]any `json:"rows"`
	Sync bool             `json:"sync"`
}

// serveIngest decodes and applies one POST /ingest request.
func (s *Server) serveIngest(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.rejectDraining(w)
		return
	}
	s.fault("ingest")
	r.Body = http.MaxBytesReader(w, r.Body, 8<<20)
	var hin httpIngest
	if err := json.NewDecoder(r.Body).Decode(&hin); err != nil {
		s.metrics.clientErr.Add(1)
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(hin.Rows) == 0 {
		s.metrics.clientErr.Add(1)
		http.Error(w, "bad request: no rows", http.StatusBadRequest)
		return
	}
	res, err := s.Ingest(hin.Rows, hin.Sync)
	if err != nil {
		if errors.Is(err, ErrBadRequest) {
			s.metrics.clientErr.Add(1)
			http.Error(w, err.Error(), http.StatusBadRequest)
		} else {
			s.metrics.serverErr.Add(1)
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(res)
}
