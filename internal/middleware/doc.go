// Package middleware implements the paper's Fig. 5 architecture: a
// visualization middleware that translates frontend requests into SQL
// queries, rewrites them with the MDP-based Query Rewriter so the total
// response time stays within a budget, executes them on the backend
// engine, and returns binned visualization results.
//
// # The serving stack
//
// Server binds one dataset to one rewriter and serves it concurrently:
//
//   - a signature-keyed plan cache (plancache.go, sharded in
//     shardedcache.go) memoizes the ground-truth context and the
//     rewriter's per-budget decision, with single-flight coalescing so N
//     identical in-flight requests build the context once;
//   - a TTL'd result cache (resultcache.go) returns finished binned
//     responses for repeated (rewritten SQL, kind, grid, region, budget)
//     shapes — the overlap a pan/zoom session generates. The cache sits
//     behind the ResultCache interface; internal/cluster substitutes a
//     peer-shared implementation through ServerConfig.WrapResultCache;
//   - a server-scope engine.LookupCache shares index scans across
//     requests over the immutable dataset;
//   - admission control (admission.go) bounds concurrency with a deadline
//     priority queue: freed slots go to the tightest still-feasible
//     deadline, expired waiters shed first, overload answers 429/503 +
//     Retry-After instead of queueing unboundedly.
//
// Gateway (gateway.go) serves any number of datasets behind one HTTP
// surface: per-dataset Servers built lazily single-flight (warming
// datasets answer 503 + Retry-After), one admission budget shared across
// datasets, and /datasets, /healthz, /metrics rollups with dataset="..."
// labels. Metrics (metrics.go) is the lock-free counter registry behind
// /metrics in both Prometheus text and JSON forms.
//
// # Determinism contract
//
// Every cache layer is deterministic: a cached response is bit-identical
// to what the cold path would produce, because rewriting is a pure
// function of (context, budget) and all engine randomness derives from
// per-query/per-plan fingerprints. That is what lets the gateway promise
// byte-identity with standalone servers, and the cluster layer byte-
// identity with a single gateway (docs/ARCHITECTURE.md spells out the
// whole chain).
package middleware
