package middleware

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/workload"
)

// tinyTwitterBuilder returns a deterministic small-Twitter builder.
func tinyTwitterBuilder(rows int) func() (*workload.Dataset, error) {
	cfg := workload.TwitterConfig()
	cfg.Rows = rows
	cfg.Scale = 100e6 / float64(cfg.Rows)
	return func() (*workload.Dataset, error) { return workload.Twitter(cfg) }
}

// tinyTaxiBuilder returns a deterministic small-Taxi builder.
func tinyTaxiBuilder(rows int) func() (*workload.Dataset, error) {
	cfg := workload.TaxiConfig()
	cfg.Rows = rows
	cfg.Scale = 500e6 / float64(cfg.Rows)
	return func() (*workload.Dataset, error) { return workload.Taxi(cfg) }
}

// testGateway builds a warm two-dataset gateway over tiny Twitter + Taxi.
func testGateway(t testing.TB) *Gateway {
	t.Helper()
	reg := workload.NewRegistry()
	if err := reg.Register("twitter", tinyTwitterBuilder(8_000)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("taxi", tinyTaxiBuilder(8_000)); err != nil {
		t.Fatal(err)
	}
	g, err := NewGateway(reg, OracleFactory, GatewayConfig{
		Server: ServerConfig{DefaultBudgetMs: 500},
		Space:  core.HintOnlySpec(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Warm(); err != nil {
		t.Fatal(err)
	}
	return g
}

// twitterBody is a valid request body against the Twitter dataset.
func twitterBody(keyword string) []byte {
	b, _ := json.Marshal(map[string]any{
		"keyword": keyword,
		"from":    "2016-03-01T00:00:00Z", "to": "2016-05-01T00:00:00Z",
		"min_lon": workload.USExtent.MinLon, "min_lat": workload.USExtent.MinLat,
		"max_lon": workload.USExtent.MaxLon, "max_lat": workload.USExtent.MaxLat,
		"kind": "heatmap", "grid_w": 16, "grid_h": 8, "budget_ms": 500,
	})
	return b
}

// taxiBody is a valid request body against the Taxi dataset (no keyword —
// trips have no text column).
func taxiBody(month int) []byte {
	from := time.Date(2010, time.Month(month), 1, 0, 0, 0, 0, time.UTC)
	b, _ := json.Marshal(map[string]any{
		"from": from.Format(time.RFC3339), "to": from.AddDate(0, 2, 0).Format(time.RFC3339),
		"min_lon": workload.NYCExtent.MinLon, "min_lat": workload.NYCExtent.MinLat,
		"max_lon": workload.NYCExtent.MaxLon, "max_lat": workload.NYCExtent.MaxLat,
		"kind": "heatmap", "grid_w": 16, "grid_h": 16, "budget_ms": 500,
	})
	return b
}

// TestGatewayRoutesDatasets: both datasets answer through one gateway, the
// default dataset serves naked /viz, and /query aliases /viz.
func TestGatewayRoutesDatasets(t *testing.T) {
	g := testGateway(t)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	post := func(path string, body []byte) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp, data
	}

	resp, data := post("/viz?dataset=twitter", twitterBody("word0005"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("twitter viz = %d: %s", resp.StatusCode, data)
	}
	resp, data = post("/viz?dataset=taxi", taxiBody(3))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("taxi viz = %d: %s", resp.StatusCode, data)
	}
	var out Response
	if err := json.Unmarshal(data, &out); err != nil || len(out.Bins) == 0 {
		t.Fatalf("taxi response unusable (err=%v): %s", err, data)
	}

	// Default dataset (first registered = twitter) serves naked /viz.
	resp, data = post("/viz", twitterBody("word0005"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default viz = %d: %s", resp.StatusCode, data)
	}
	// /query aliases /viz.
	resp, _ = post("/query?dataset=taxi", taxiBody(3))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/query alias = %d", resp.StatusCode)
	}
}

// TestGatewayUnknownDataset: a dataset name the registry doesn't know is a
// 404 on every routed endpoint.
func TestGatewayUnknownDataset(t *testing.T) {
	g := testGateway(t)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/viz?dataset=nope", "application/json", bytes.NewReader(twitterBody("word0005")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("viz unknown dataset = %d, want 404", resp.StatusCode)
	}
	hr, err := http.Get(srv.URL + "/healthz?dataset=nope")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusNotFound {
		t.Errorf("healthz unknown dataset = %d, want 404", hr.StatusCode)
	}
	if got := g.Snapshot().Gateway.UnknownDataset; got != 1 {
		t.Errorf("UnknownDataset counter = %d, want 1", got)
	}
}

// TestGatewayWarmingDataset: requests while the dataset builds get 503 with
// Retry-After; once the build finishes they get 200.
func TestGatewayWarmingDataset(t *testing.T) {
	reg := workload.NewRegistry()
	gate := make(chan struct{})
	inner := tinyTwitterBuilder(8_000)
	if err := reg.Register("slow", func() (*workload.Dataset, error) { <-gate; return inner() }); err != nil {
		t.Fatal(err)
	}
	g, err := NewGateway(reg, OracleFactory, GatewayConfig{
		Server: ServerConfig{DefaultBudgetMs: 500},
		Space:  core.HintOnlySpec(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/viz?dataset=slow", "application/json", bytes.NewReader(twitterBody("word0005")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("warming viz = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("warming rejection carries no Retry-After")
	}

	// /datasets and /healthz report the warming state.
	dr, err := http.Get(srv.URL + "/datasets")
	if err != nil {
		t.Fatal(err)
	}
	var infos []datasetInfo
	if err := json.NewDecoder(dr.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()
	if len(infos) != 1 || infos[0].Status != "warming" {
		t.Errorf("datasets while warming = %+v", infos)
	}

	close(gate)
	deadline := time.After(30 * time.Second)
	for {
		resp, err := http.Post(srv.URL+"/viz?dataset=slow", "application/json", bytes.NewReader(twitterBody("word0005")))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("post-warm status = %d", resp.StatusCode)
		}
		select {
		case <-deadline:
			t.Fatal("dataset never finished warming")
		case <-time.After(20 * time.Millisecond):
		}
	}
	if got := g.Snapshot().Gateway.Warming; got < 1 {
		t.Errorf("Warming counter = %d, want >= 1", got)
	}
}

// TestGatewaySingleFlightFirstTouch: a stampede of concurrent first-touch
// requests builds the dataset and its rewriter exactly once.
func TestGatewaySingleFlightFirstTouch(t *testing.T) {
	reg := workload.NewRegistry()
	var builds, factories atomic.Int32
	inner := tinyTwitterBuilder(8_000)
	if err := reg.Register("tw", func() (*workload.Dataset, error) {
		builds.Add(1)
		return inner()
	}); err != nil {
		t.Fatal(err)
	}
	factory := func(name string, ds *workload.Dataset) (core.Rewriter, error) {
		factories.Add(1)
		return core.OracleRewriter{}, nil
	}
	g, err := NewGateway(reg, factory, GatewayConfig{
		Server: ServerConfig{DefaultBudgetMs: 500},
		Space:  core.HintOnlySpec(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/viz?dataset=tw", "application/json", bytes.NewReader(twitterBody("word0005")))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
		}()
	}
	wg.Wait()
	if _, err := g.Server("tw"); err != nil { // block until built
		t.Fatal(err)
	}
	if got := builds.Load(); got != 1 {
		t.Errorf("dataset built %d times, want 1", got)
	}
	if got := factories.Load(); got != 1 {
		t.Errorf("rewriter factory ran %d times, want 1", got)
	}
}

// TestGatewayWarmBoundedPool: Warm fans dataset builds out on the bounded
// worker pool — every dataset still builds exactly once (even when Warm
// races with request-driven first touches and a repeated Warm), at any
// worker count, and all end up ready.
func TestGatewayWarmBoundedPool(t *testing.T) {
	for _, workers := range []int{1, 2, 0} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			reg := workload.NewRegistry()
			var twBuilds, txBuilds atomic.Int32
			tw, tx := tinyTwitterBuilder(4_000), tinyTaxiBuilder(4_000)
			if err := reg.Register("twitter", func() (*workload.Dataset, error) {
				twBuilds.Add(1)
				return tw()
			}); err != nil {
				t.Fatal(err)
			}
			if err := reg.Register("taxi", func() (*workload.Dataset, error) {
				txBuilds.Add(1)
				return tx()
			}); err != nil {
				t.Fatal(err)
			}
			g, err := NewGateway(reg, OracleFactory, GatewayConfig{
				Server:      ServerConfig{DefaultBudgetMs: 500},
				Space:       core.HintOnlySpec(),
				WarmWorkers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			wg.Add(2)
			go func() { // request-driven first touch racing the warmup
				defer wg.Done()
				if _, err := g.Server("taxi"); err != nil {
					t.Error(err)
				}
			}()
			go func() { // concurrent second Warm must not rebuild anything
				defer wg.Done()
				if err := g.Warm(); err != nil {
					t.Error(err)
				}
			}()
			if err := g.Warm(); err != nil {
				t.Fatal(err)
			}
			wg.Wait()
			for _, name := range []string{"twitter", "taxi"} {
				if st, _ := g.status(name); st != workload.StatusReady {
					t.Errorf("dataset %s is %s after Warm, want ready", name, st)
				}
			}
			if got := twBuilds.Load(); got != 1 {
				t.Errorf("twitter built %d times, want 1", got)
			}
			if got := txBuilds.Load(); got != 1 {
				t.Errorf("taxi built %d times, want 1", got)
			}
		})
	}
}

// TestGatewayWarmFailureDoesNotStrand: a failing build must not abandon the
// other datasets' claimed entries — serial warmup (WarmWorkers=1) was the
// dangerous case, where an early error could leave later entries with a
// never-closing done channel (permanent 503s and a deadlocked re-Warm).
func TestGatewayWarmFailureDoesNotStrand(t *testing.T) {
	for _, workers := range []int{1, 0} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			reg := workload.NewRegistry()
			if err := reg.Register("broken", func() (*workload.Dataset, error) {
				return nil, fmt.Errorf("synthetic build failure")
			}); err != nil {
				t.Fatal(err)
			}
			if err := reg.Register("taxi", tinyTaxiBuilder(4_000)); err != nil {
				t.Fatal(err)
			}
			g, err := NewGateway(reg, OracleFactory, GatewayConfig{
				Server:      ServerConfig{DefaultBudgetMs: 500},
				Space:       core.HintOnlySpec(),
				WarmWorkers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Warm(); err == nil || !strings.Contains(err.Error(), "broken") {
				t.Fatalf("Warm error = %v, want broken-dataset failure", err)
			}
			// The healthy dataset must have been built despite the failure…
			if st, _ := g.status("taxi"); st != workload.StatusReady {
				t.Errorf("taxi is %s after failed Warm, want ready", st)
			}
			// …and a retry must terminate (it would deadlock on a stranded
			// entry), still reporting the cached failure.
			done := make(chan error, 1)
			go func() { done <- g.Warm() }()
			select {
			case err := <-done:
				if err == nil {
					t.Error("retried Warm = nil, want cached failure")
				}
			case <-time.After(30 * time.Second):
				t.Fatal("retried Warm deadlocked")
			}
		})
	}
}

// TestGatewayByteIdenticalToServer is the PR's determinism guarantee: for
// the same requests, a Gateway response body is byte-identical to the one
// the equivalent standalone single-dataset Server produces — per dataset,
// including under concurrent gateway traffic. Run with -race.
func TestGatewayByteIdenticalToServer(t *testing.T) {
	g := testGateway(t)
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	// Standalone single-dataset servers over identically-generated datasets.
	standalone := make(map[string]*httptest.Server)
	for name, build := range map[string]func() (*workload.Dataset, error){
		"twitter": tinyTwitterBuilder(8_000),
		"taxi":    tinyTaxiBuilder(8_000),
	} {
		ds, err := build()
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewServerWithConfig(ds, core.OracleRewriter{}, core.HintOnlySpec(), ServerConfig{DefaultBudgetMs: 500})
		if err != nil {
			t.Fatal(err)
		}
		standalone[name] = httptest.NewServer(s.Handler())
		defer standalone[name].Close()
	}

	type reqShape struct {
		dataset string
		body    []byte
	}
	shapes := make([]reqShape, 0, 12)
	for i := 0; i < 6; i++ {
		shapes = append(shapes,
			reqShape{"twitter", twitterBody(fmt.Sprintf("word%04d", 3+i))},
			reqShape{"taxi", taxiBody(1 + i)},
		)
	}

	post := func(url string, body []byte) []byte {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			data, _ := io.ReadAll(resp.Body)
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	// Concurrent pass through the gateway (exercises the sharded caches and
	// the shared admission pool under -race), then a serial replay against
	// the standalone servers.
	const goroutines = 16
	const perG = 4
	got := make([][][]byte, goroutines)
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := make([][]byte, perG)
			for i := 0; i < perG; i++ {
				sh := shapes[(w*perG+i*7)%len(shapes)]
				out[i] = post(gw.URL+"/viz?dataset="+sh.dataset, sh.body)
			}
			got[w] = out
		}(w)
	}
	wg.Wait()

	for w := 0; w < goroutines; w++ {
		for i := 0; i < perG; i++ {
			sh := shapes[(w*perG+i*7)%len(shapes)]
			want := post(standalone[sh.dataset].URL+"/viz", sh.body)
			if !bytes.Equal(got[w][i], want) {
				t.Errorf("w=%d i=%d dataset=%s: gateway response diverges from standalone server\n got %s\nwant %s",
					w, i, sh.dataset, got[w][i], want)
			}
		}
	}
}

// TestGatewayMetricsRollup: /metrics aggregates per-dataset series with
// dataset labels, and ?format=json returns the structured snapshot.
func TestGatewayMetricsRollup(t *testing.T) {
	g := testGateway(t)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	for _, q := range []string{"?dataset=twitter", "?dataset=taxi"} {
		body := twitterBody("word0005")
		if strings.Contains(q, "taxi") {
			body = taxiBody(2)
		}
		resp, err := http.Post(srv.URL+"/viz"+q, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	mr, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	for _, want := range []string{
		"maliva_gateway_requests_total 2",
		`maliva_requests_total{dataset="twitter"} 1`,
		`maliva_requests_total{dataset="taxi"} 1`,
		`maliva_responses_total{dataset="twitter",code="2xx"} 1`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics rollup missing %q\n%s", want, text)
		}
	}

	jr, err := http.Get(srv.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var snap GatewayMetricsSnapshot
	if err := json.NewDecoder(jr.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	jr.Body.Close()
	if snap.Gateway.Requests != 2 {
		t.Errorf("gateway requests = %d, want 2", snap.Gateway.Requests)
	}
	if snap.Datasets["twitter"].Requests != 1 || snap.Datasets["taxi"].Requests != 1 {
		t.Errorf("per-dataset requests = %+v", snap.Datasets)
	}

	// Per-dataset metrics endpoint carries the label too.
	pr, err := http.Get(srv.URL + "/metrics?dataset=taxi")
	if err != nil {
		t.Fatal(err)
	}
	ptext, _ := io.ReadAll(pr.Body)
	pr.Body.Close()
	if !strings.Contains(string(ptext), `maliva_requests_total{dataset="taxi"} 1`) {
		t.Errorf("per-dataset metrics missing labeled series:\n%s", ptext)
	}
}

// TestGatewayHealthz: the rollup reports every dataset's status; the
// per-dataset probe is 200 only when ready.
func TestGatewayHealthz(t *testing.T) {
	g := testGateway(t)
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	hr, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var roll struct {
		Status   string            `json:"status"`
		Datasets map[string]string `json:"datasets"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&roll); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if roll.Status != "ok" || roll.Datasets["twitter"] != "ready" || roll.Datasets["taxi"] != "ready" {
		t.Errorf("healthz rollup = %+v", roll)
	}

	pr, err := http.Get(srv.URL + "/healthz?dataset=twitter")
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusOK {
		t.Errorf("ready dataset healthz = %d, want 200", pr.StatusCode)
	}
}
