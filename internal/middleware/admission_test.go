package middleware

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/workload"
)

// TestAdmissionVerdicts covers the pool state machine directly.
func TestAdmissionVerdicts(t *testing.T) {
	// Nil pool admits everything.
	var nilPool *admission
	if got := nilPool.acquire(0); got != admitOK {
		t.Fatalf("nil pool: %v", got)
	}
	nilPool.release()

	// Capacity 1, queue 0: second concurrent request is shed immediately.
	a := newAdmission(1, 0, 0)
	if got := a.acquire(time.Second); got != admitOK {
		t.Fatalf("first acquire: %v", got)
	}
	if got := a.acquire(time.Second); got != admitBusy {
		t.Fatalf("queue-full acquire: %v, want busy", got)
	}
	a.release()
	if got := a.acquire(time.Second); got != admitOK {
		t.Fatalf("post-release acquire: %v", got)
	}
	a.release()

	// Capacity 1, queue 1: a queued request times out if the slot never
	// frees, and is admitted when it does.
	a = newAdmission(1, 1, 0)
	if got := a.acquire(time.Second); got != admitOK {
		t.Fatal("setup acquire failed")
	}
	if got := a.acquire(10 * time.Millisecond); got != admitTimeout {
		t.Fatalf("deadline acquire: %v, want timeout", got)
	}
	done := make(chan admitVerdict, 1)
	go func() { done <- a.acquire(2 * time.Second) }()
	time.Sleep(10 * time.Millisecond)
	a.release()
	if got := <-done; got != admitOK {
		t.Fatalf("queued acquire after release: %v, want ok", got)
	}
	a.release()

	// Queue beyond maxQueue sheds.
	a = newAdmission(1, 1, 0)
	a.acquire(time.Second)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); a.acquire(300 * time.Millisecond) }() // occupies the queue slot
	time.Sleep(20 * time.Millisecond)
	if got := a.acquire(time.Second); got != admitBusy {
		t.Fatalf("overflow acquire: %v, want busy", got)
	}
	a.release()
	wg.Wait()
}

// blockingRewriter parks the first Rewrite call until released, so tests
// can hold a worker slot occupied for a controlled window.
type blockingRewriter struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (r *blockingRewriter) Name() string { return "blocking" }

func (r *blockingRewriter) Rewrite(ctx *core.QueryContext, budget float64) core.Outcome {
	r.once.Do(func() {
		close(r.entered)
		<-r.release
	})
	return core.OracleRewriter{}.Rewrite(ctx, budget)
}

// TestHTTPAdmissionControl: with one worker slot and no queue, a second
// in-flight request gets 429 with Retry-After; with a queue, it gets 503
// once its budget-derived deadline expires. The held request still
// completes with 200.
func TestHTTPAdmissionControl(t *testing.T) {
	ds := testDataset(t)
	body, _ := json.Marshal(map[string]any{
		"keyword": "word0005",
		"min_lon": workload.USExtent.MinLon, "min_lat": workload.USExtent.MinLat,
		"max_lon": workload.USExtent.MaxLon, "max_lat": workload.USExtent.MaxLat,
		"kind": "heatmap", "budget_ms": 50,
	})

	run := func(t *testing.T, maxQueue, wantStatus int) {
		rw := &blockingRewriter{entered: make(chan struct{}), release: make(chan struct{})}
		s, err := NewServerWithConfig(ds, rw, core.HintOnlySpec(), ServerConfig{
			DefaultBudgetMs: 500, MaxConcurrent: 1, MaxQueue: maxQueue,
			QueueTimeout: 100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(s.Handler())
		defer srv.Close()

		firstDone := make(chan int, 1)
		go func() {
			resp, err := http.Post(srv.URL+"/viz", "application/json", bytes.NewReader(body))
			if err != nil {
				firstDone <- -1
				return
			}
			resp.Body.Close()
			firstDone <- resp.StatusCode
		}()
		<-rw.entered // first request now holds the only slot

		resp, err := http.Post(srv.URL+"/viz", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Errorf("second request = %d, want %d", resp.StatusCode, wantStatus)
		}
		if got := resp.Header.Get("Retry-After"); got == "" {
			t.Error("rejection carries no Retry-After header")
		}

		close(rw.release)
		if got := <-firstDone; got != http.StatusOK {
			t.Errorf("held request = %d, want 200", got)
		}

		snap := s.Metrics().Snapshot()
		if wantStatus == http.StatusTooManyRequests && snap.RejectedBusy != 1 {
			t.Errorf("RejectedBusy = %d, want 1", snap.RejectedBusy)
		}
		if wantStatus == http.StatusServiceUnavailable && snap.RejectedWait != 1 {
			t.Errorf("RejectedWait = %d, want 1", snap.RejectedWait)
		}
	}

	t.Run("queue full -> 429", func(t *testing.T) { run(t, -1, http.StatusTooManyRequests) })
	t.Run("deadline in queue -> 503", func(t *testing.T) { run(t, 4, http.StatusServiceUnavailable) })
}
