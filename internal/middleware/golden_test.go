package middleware

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestGoldenTraces pins the full Trace (option label, rewritten SQL,
// virtual times, viability) for a fixed seed and workload. The engine's
// virtual clock is deterministic, so any diff here means the rewriter or
// the engine changed behavior — surfacing regressions in the serving layer
// rather than only in the harness figures. Regenerate intentionally with:
//
//	go test ./internal/middleware -run TestGoldenTraces -update
func TestGoldenTraces(t *testing.T) {
	s := testServer(t)

	reqs := []Request{validRequest()}
	wide := validRequest()
	wide.Keyword = "word0002"
	wide.From = time.Date(2016, 6, 1, 0, 0, 0, 0, time.UTC)
	wide.To = time.Date(2016, 10, 1, 0, 0, 0, 0, time.UTC)
	wide.BudgetMs = 800
	reqs = append(reqs, wide)
	scatter := validRequest()
	scatter.Kind = VizScatter
	scatter.BudgetMs = 300
	reqs = append(reqs, scatter)

	got := make([]Trace, len(reqs))
	for i, req := range reqs {
		resp, err := s.Handle(req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		got[i] = resp.Trace
	}

	golden := filepath.Join("testdata", "trace_golden.json")
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		data = append(data, '\n')
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}

	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	var want []Trace
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden has %d traces, produced %d", len(want), len(got))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("trace %d diverges from golden\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}
