package middleware

import (
	"container/heap"
	"testing"
	"time"
)

// TestAdmissionShedsExpiredFirst is the overload-goodput invariant: when a
// slot frees up, waiters whose budget-derived deadlines already passed are
// shed (never granted), and the slot goes to an in-budget waiter. White-box:
// waiters are placed on the queue directly so expiry is deterministic.
func TestAdmissionShedsExpiredFirst(t *testing.T) {
	a := newAdmission(1, 8, 0)
	if got := a.acquire(time.Second); got != admitOK {
		t.Fatal("setup acquire failed")
	}

	now := time.Now()
	a.now = func() time.Time { return now }
	expired := &waiter{deadline: now.Add(-50 * time.Millisecond), seq: 0, ch: make(chan struct{})}
	inBudget := &waiter{deadline: now.Add(time.Minute), seq: 1, ch: make(chan struct{})}
	a.mu.Lock()
	heap.Push(&a.queue, expired)
	heap.Push(&a.queue, inBudget)
	a.mu.Unlock()

	a.release()

	select {
	case <-inBudget.ch:
	default:
		t.Fatal("in-budget waiter was not granted the freed slot")
	}
	select {
	case <-expired.ch:
		t.Fatal("expired waiter was granted a slot")
	default:
	}
	if !inBudget.granted || expired.granted {
		t.Errorf("granted flags: expired=%v inBudget=%v", expired.granted, inBudget.granted)
	}
	if got := a.queueLen(); got != 0 {
		t.Errorf("queue len after release = %d, want 0 (expired shed)", got)
	}
}

// TestAdmissionTightestDeadlineFirst: with several in-budget waiters queued,
// freed slots go to the tightest deadline first, not FIFO.
func TestAdmissionTightestDeadlineFirst(t *testing.T) {
	a := newAdmission(1, 8, 0)
	if got := a.acquire(time.Second); got != admitOK {
		t.Fatal("setup acquire failed")
	}

	now := time.Now()
	a.now = func() time.Time { return now }
	loose := &waiter{deadline: now.Add(time.Hour), seq: 0, ch: make(chan struct{})} // arrived first
	tight := &waiter{deadline: now.Add(time.Minute), seq: 1, ch: make(chan struct{})}
	a.mu.Lock()
	heap.Push(&a.queue, loose)
	heap.Push(&a.queue, tight)
	a.mu.Unlock()

	a.release()
	if !tight.granted || loose.granted {
		t.Fatalf("first release: tight=%v loose=%v, want tightest-deadline-first", tight.granted, loose.granted)
	}
	a.release()
	if !loose.granted {
		t.Fatal("second release did not grant the remaining waiter")
	}
}

// TestAdmissionExpiredMakesRoom: a full queue of expired waiters does not
// 429 a fresh in-budget request — the expired ones are shed to make room.
func TestAdmissionExpiredMakesRoom(t *testing.T) {
	a := newAdmission(1, 1, 0)
	if got := a.acquire(time.Second); got != admitOK {
		t.Fatal("setup acquire failed")
	}

	now := time.Now()
	a.now = func() time.Time { return now }
	expired := &waiter{deadline: now.Add(-time.Millisecond), seq: 0, ch: make(chan struct{})}
	a.mu.Lock()
	heap.Push(&a.queue, expired)
	a.mu.Unlock()

	// Queue is at maxQueue=1, but its only occupant is expired: the fresh
	// request must queue (then time out on its own short deadline) instead
	// of being rejected busy.
	if got := a.acquire(20 * time.Millisecond); got != admitTimeout {
		t.Fatalf("acquire over expired queue = %v, want timeout (queued)", got)
	}

	// Control: with an in-budget occupant the same acquire is shed busy.
	inBudget := &waiter{deadline: now.Add(time.Hour), seq: 1, ch: make(chan struct{})}
	a.mu.Lock()
	a.queue = a.queue[:0]
	heap.Push(&a.queue, inBudget)
	a.mu.Unlock()
	if got := a.acquire(20 * time.Millisecond); got != admitBusy {
		t.Fatalf("acquire over in-budget queue = %v, want busy", got)
	}
}

// TestAdmissionEndToEndPriority drives the real goroutine path: a loose-
// deadline waiter queues first, a tight-deadline waiter queues second, and
// the first freed slot still goes to the tight one.
func TestAdmissionEndToEndPriority(t *testing.T) {
	a := newAdmission(1, 4, 0)
	if got := a.acquire(time.Second); got != admitOK {
		t.Fatal("setup acquire failed")
	}

	looseDone := make(chan admitVerdict, 1)
	go func() { looseDone <- a.acquire(10 * time.Second) }()
	for a.queueLen() == 0 {
		time.Sleep(time.Millisecond)
	}
	tightDone := make(chan admitVerdict, 1)
	go func() { tightDone <- a.acquire(5 * time.Second) }()
	for a.queueLen() < 2 {
		time.Sleep(time.Millisecond)
	}

	a.release()
	select {
	case got := <-tightDone:
		if got != admitOK {
			t.Fatalf("tight waiter = %v, want ok", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("tight waiter not granted within 2s")
	}
	select {
	case got := <-looseDone:
		t.Fatalf("loose waiter returned %v before a second release", got)
	default:
	}

	a.release()
	select {
	case got := <-looseDone:
		if got != admitOK {
			t.Fatalf("loose waiter = %v, want ok", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("loose waiter not granted within 2s")
	}
	a.release()
}
