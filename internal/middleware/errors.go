package middleware

import (
	"errors"
	"fmt"
)

// ErrBadRequest marks errors caused by the request itself (unknown keyword,
// missing column for the requested condition, no conditions at all) rather
// than by the serving layer. The HTTP handler maps it to 400; everything
// else is a 500. Test with errors.Is(err, ErrBadRequest).
var ErrBadRequest = errors.New("bad request")

// requestError is an error that errors.Is-matches ErrBadRequest while
// keeping a clean message.
type requestError struct{ msg string }

func (e *requestError) Error() string        { return e.msg }
func (e *requestError) Is(target error) bool { return target == ErrBadRequest }

// badRequestf builds a request-caused error.
func badRequestf(format string, args ...any) error {
	return &requestError{msg: "middleware: " + fmt.Sprintf(format, args...)}
}
