package middleware

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/engine"
)

func dummyCtx() *core.QueryContext { return &core.QueryContext{} }

// TestPlanCacheLRU: the cache holds at most cap entries and evicts the
// least recently used.
func TestPlanCacheLRU(t *testing.T) {
	c := newPlanCache(2)
	builds := 0
	build := func(*atomic.Bool) (*core.QueryContext, error) { builds++; return dummyCtx(), nil }

	for _, key := range []string{"a", "b", "a", "c"} { // c evicts b
		if _, _, err := c.get(key, true, build); err != nil {
			t.Fatal(err)
		}
	}
	if builds != 3 {
		t.Errorf("builds = %d, want 3 (a, b, c)", builds)
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	// a was refreshed, so it's still cached; b was evicted.
	if _, how, _ := c.get("a", true, build); how != planHit {
		t.Errorf("a: %v, want hit", how)
	}
	if _, how, _ := c.get("b", true, build); how != planMiss {
		t.Errorf("b: %v, want miss (evicted)", how)
	}
}

// TestPlanCacheSingleFlight: N concurrent gets for the same key run build
// exactly once; the rest coalesce onto the in-flight call.
func TestPlanCacheSingleFlight(t *testing.T) {
	c := newPlanCache(8)
	var builds atomic.Int32
	gate := make(chan struct{})
	build := func(*atomic.Bool) (*core.QueryContext, error) {
		builds.Add(1)
		<-gate
		return dummyCtx(), nil
	}

	const n = 8
	var wg sync.WaitGroup
	var hits, misses, coalesced atomic.Int32
	entries := make([]*planEntry, n)
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			e, how, err := c.get("k", true, build)
			if err != nil {
				t.Error(err)
				return
			}
			entries[i] = e
			switch how {
			case planHit:
				hits.Add(1)
			case planMiss:
				misses.Add(1)
			case planCoalesced:
				coalesced.Add(1)
			}
		}(i)
	}
	for i := 0; i < n; i++ {
		<-started
	}
	// Give the waiters a moment to reach the in-flight wait, then open the
	// gate. (Timing only affects the hit/coalesced split, not correctness.)
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()

	if got := builds.Load(); got != 1 {
		t.Errorf("build ran %d times, want 1", got)
	}
	if misses.Load() != 1 {
		t.Errorf("misses = %d, want exactly 1", misses.Load())
	}
	if hits.Load()+coalesced.Load() != n-1 {
		t.Errorf("hits+coalesced = %d, want %d", hits.Load()+coalesced.Load(), n-1)
	}
	for i := 1; i < n; i++ {
		if entries[i] != entries[0] {
			t.Fatalf("goroutine %d got a different entry", i)
		}
	}
}

// TestPlanCacheBuildErrorNotCached: a failed build is retried by the next
// request instead of caching the error.
func TestPlanCacheBuildErrorNotCached(t *testing.T) {
	c := newPlanCache(4)
	boom := errors.New("boom")
	calls := 0
	if _, _, err := c.get("k", true, func(*atomic.Bool) (*core.QueryContext, error) { calls++; return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.len() != 0 {
		t.Fatalf("error was cached: len = %d", c.len())
	}
	if _, how, err := c.get("k", true, func(*atomic.Bool) (*core.QueryContext, error) { calls++; return dummyCtx(), nil }); err != nil || how != planMiss {
		t.Fatalf("retry: how=%v err=%v", how, err)
	}
	if calls != 2 {
		t.Errorf("calls = %d, want 2", calls)
	}
}

// TestPlanCacheBuildPanicUnwedges: a panicking build must not wedge the
// key — waiters get an error and the next request retries.
func TestPlanCacheBuildPanicUnwedges(t *testing.T) {
	c := newPlanCache(4)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate")
			}
		}()
		_, _, _ = c.get("k", true, func(*atomic.Bool) (*core.QueryContext, error) { panic("boom") })
	}()
	// The key must be retryable, not blocked on a never-closed inflight call.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, how, err := c.get("k", true, func(*atomic.Bool) (*core.QueryContext, error) { return dummyCtx(), nil }); err != nil || how != planMiss {
			t.Errorf("retry after panic: how=%v err=%v", how, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("key wedged after build panic")
	}
}

// TestPlanEntryOutcomeCap: distinct client budgets stop being memoized at
// the cap instead of growing the entry forever; decisions stay correct.
func TestPlanEntryOutcomeCap(t *testing.T) {
	e := &planEntry{ctx: dummyCtx(), outcomes: make(map[float64]core.Outcome)}
	calls := 0
	for i := 0; i < maxOutcomesPerEntry+10; i++ {
		out := e.outcome(float64(i), func() core.Outcome { calls++; return core.Outcome{Option: i} })
		if out.Option != i {
			t.Fatalf("budget %d: wrong outcome %d", i, out.Option)
		}
	}
	if len(e.outcomes) != maxOutcomesPerEntry {
		t.Errorf("outcomes len = %d, want capped at %d", len(e.outcomes), maxOutcomesPerEntry)
	}
	// Beyond the cap, uncached budgets recompute; cached ones don't.
	before := calls
	e.outcome(1, func() core.Outcome { calls++; return core.Outcome{} })
	if calls != before {
		t.Error("cached budget recomputed")
	}
	e.outcome(float64(maxOutcomesPerEntry+5), func() core.Outcome { calls++; return core.Outcome{} })
	if calls != before+1 {
		t.Error("over-cap budget was not recomputed")
	}
}

// TestPlanCacheDisabled: a nil cache builds every time (the baseline mode).
func TestPlanCacheDisabled(t *testing.T) {
	c := newPlanCache(-1)
	if c != nil {
		t.Fatal("negative cap should disable the cache")
	}
	builds := 0
	for i := 0; i < 3; i++ {
		e, how, err := c.get("k", true, func(*atomic.Bool) (*core.QueryContext, error) { builds++; return dummyCtx(), nil })
		if err != nil || e == nil || how != planMiss {
			t.Fatalf("disabled get: entry=%v how=%v err=%v", e, how, err)
		}
	}
	if builds != 3 {
		t.Errorf("builds = %d, want 3", builds)
	}
}

// TestResultCacheTTL: entries expire after the TTL (fake clock) and get
// refreshed by put.
func TestResultCacheTTL(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c := newResultCache(8, 10*time.Second, clock)
	key := ResultKey{SQL: "SELECT 1", Kind: VizHeatmap, GridW: 8, GridH: 8, Budget: 500}
	resp := &Response{Kind: VizHeatmap}

	c.put(key, resp)
	if got := c.get(key); got != resp {
		t.Fatal("fresh entry missed")
	}

	now = now.Add(9 * time.Second)
	if got := c.get(key); got != resp {
		t.Fatal("entry expired early")
	}

	now = now.Add(2 * time.Second) // 11s after put
	if got := c.get(key); got != nil {
		t.Fatal("expired entry served")
	}
	if c.len() != 0 {
		t.Errorf("expired entry not dropped: len = %d", c.len())
	}

	// put refreshes the expiry of an existing key.
	c.put(key, resp)
	now = now.Add(8 * time.Second)
	c.put(key, resp)
	now = now.Add(8 * time.Second) // 16s after first put, 8s after refresh
	if got := c.get(key); got != resp {
		t.Fatal("refreshed entry expired")
	}
}

// TestResultCacheLRU: capacity bounds the cache with least-recently-used
// eviction, and distinct budgets/grids/regions are distinct keys.
func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2, time.Minute, nil)
	k := func(b float64) ResultKey { return ResultKey{SQL: "q", Budget: b} }
	r1, r2, r3 := &Response{}, &Response{}, &Response{}

	c.put(k(1), r1)
	c.put(k(2), r2)
	c.get(k(1)) // refresh 1
	c.put(k(3), r3)
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if c.get(k(1)) != r1 {
		t.Error("recently-used entry evicted")
	}
	if c.get(k(2)) != nil {
		t.Error("LRU entry survived")
	}
	if c.get(k(3)) != r3 {
		t.Error("newest entry missing")
	}

	// Region variation keys separately.
	kr := ResultKey{SQL: "q", Region: engine.Rect{MaxLon: 1}}
	if c.get(kr) != nil {
		t.Error("distinct region aliased an existing key")
	}
}

// TestResultCacheDisabled: a nil cache never stores.
func TestResultCacheDisabled(t *testing.T) {
	c := newResultCache(-1, time.Minute, nil)
	if c != nil {
		t.Fatal("negative cap should disable the cache")
	}
	c.put(ResultKey{SQL: "q"}, &Response{})
	if c.get(ResultKey{SQL: "q"}) != nil {
		t.Fatal("disabled cache returned a response")
	}
	if c.len() != 0 {
		t.Fatal("disabled cache has entries")
	}
}
