package middleware

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/maliva/maliva/internal/core"
)

// TestShardedPlanCacheBasics: hits stay hits across shards, capacity is the
// total across shards, and a disabled cache builds every time.
func TestShardedPlanCacheBasics(t *testing.T) {
	c := newShardedPlanCache(64, 8)
	builds := 0
	build := func(*atomic.Bool) (*core.QueryContext, error) { builds++; return dummyCtx(), nil }
	keys := make([]string, 32)
	for i := range keys {
		keys[i] = fmt.Sprintf("SELECT %d", i)
	}
	for _, k := range keys {
		if _, how, err := c.get(k, true, build); err != nil || how != planMiss {
			t.Fatalf("first get %q: how=%v err=%v", k, how, err)
		}
	}
	for _, k := range keys {
		if _, how, err := c.get(k, true, build); err != nil || how != planHit {
			t.Fatalf("second get %q: how=%v err=%v", k, how, err)
		}
	}
	if builds != len(keys) {
		t.Errorf("builds = %d, want %d", builds, len(keys))
	}
	if got := c.len(); got != len(keys) {
		t.Errorf("len = %d, want %d", got, len(keys))
	}

	if disabled := newShardedPlanCache(-1, 8); disabled != nil {
		t.Error("negative capacity should disable the sharded cache")
	} else {
		if _, how, err := disabled.get("k", true, build); err != nil || how != planMiss {
			t.Errorf("disabled get: how=%v err=%v", how, err)
		}
	}
}

// TestShardedPlanCacheCapacity: total entries stay bounded by ~capacity even
// when keys spread over every shard.
func TestShardedPlanCacheCapacity(t *testing.T) {
	const capacity = 32
	c := newShardedPlanCache(capacity, 8)
	build := func(*atomic.Bool) (*core.QueryContext, error) { return dummyCtx(), nil }
	for i := 0; i < 10*capacity; i++ {
		if _, _, err := c.get(fmt.Sprintf("key-%d", i), true, build); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.len(); got > capacity {
		t.Errorf("len = %d, want <= %d (per-shard LRUs must bound the total)", got, capacity)
	}
}

// TestShardedResultCacheBasics: get/put round-trips, distinct keys stay
// distinct across shards, TTL still applies per shard.
func TestShardedResultCacheBasics(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c := newShardedResultCache(64, 8, 10*time.Second, clock)
	keys := make([]ResultKey, 24)
	resps := make([]*Response, len(keys))
	for i := range keys {
		keys[i] = ResultKey{SQL: fmt.Sprintf("SELECT %d", i), Kind: VizHeatmap, GridW: 8, GridH: 8, Budget: float64(i)}
		resps[i] = &Response{GridW: i}
		c.Put(keys[i], resps[i])
	}
	for i, k := range keys {
		if got := c.Get(k); got != resps[i] {
			t.Fatalf("key %d: got %v, want %v", i, got, resps[i])
		}
	}
	now = now.Add(11 * time.Second)
	for i, k := range keys {
		if got := c.Get(k); got != nil {
			t.Fatalf("key %d served after TTL", i)
		}
	}
	if disabled := newShardedResultCache(0, 8, time.Minute, nil); disabled != nil {
		t.Error("zero capacity should disable the sharded result cache")
	}
}

// TestShardCounts: the split never exceeds total capacity and never loses it.
func TestShardCounts(t *testing.T) {
	for _, tc := range []struct{ capacity, shards, wantShards, wantPer int }{
		{512, 16, 16, 32},
		{512, 0, 16, 32}, // default shard count
		{10, 16, 10, 1},  // fewer entries than shards
		{1, 16, 1, 1},
		{100, 3, 3, 34},
	} {
		gotShards, gotPer := shardCounts(tc.capacity, tc.shards)
		if gotShards != tc.wantShards || gotPer != tc.wantPer {
			t.Errorf("shardCounts(%d, %d) = (%d, %d), want (%d, %d)",
				tc.capacity, tc.shards, gotShards, gotPer, tc.wantShards, tc.wantPer)
		}
	}
}

// benchCacheKeys builds a key set large enough that contention, not misses,
// dominates.
func benchCacheKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("SELECT * FROM tweets WHERE shape = %d;", i)
	}
	return keys
}

// BenchmarkPlanCacheContention compares the single-lock plan cache against
// the sharded one under parallel hit traffic — the regime a multi-dataset
// gateway at high core counts lives in.
func BenchmarkPlanCacheContention(b *testing.B) {
	keys := benchCacheKeys(256)
	build := func(*atomic.Bool) (*core.QueryContext, error) { return dummyCtx(), nil }

	run := func(b *testing.B, get func(string) error) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if err := get(keys[i%len(keys)]); err != nil {
					b.Error(err)
					return
				}
				i++
			}
		})
	}

	b.Run("single-lock", func(b *testing.B) {
		c := newPlanCache(1024)
		for _, k := range keys {
			_, _, _ = c.get(k, true, build)
		}
		run(b, func(k string) error { _, _, err := c.get(k, true, build); return err })
	})
	b.Run("sharded", func(b *testing.B) {
		c := newShardedPlanCache(1024, defaultCacheShards)
		for _, k := range keys {
			_, _, _ = c.get(k, true, build)
		}
		run(b, func(k string) error { _, _, err := c.get(k, true, build); return err })
	})
}

// BenchmarkResultCacheContention is the same comparison for the result
// cache, mixing gets with the occasional put the way warm serving does.
func BenchmarkResultCacheContention(b *testing.B) {
	keys := make([]ResultKey, 256)
	for i := range keys {
		keys[i] = ResultKey{SQL: fmt.Sprintf("SELECT %d;", i), Kind: VizHeatmap, GridW: 32, GridH: 16, Budget: 500}
	}
	resp := &Response{Kind: VizHeatmap}

	run := func(b *testing.B, get func(ResultKey) *Response, put func(ResultKey, *Response)) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				k := keys[i%len(keys)]
				if get(k) == nil {
					put(k, resp)
				}
				i++
			}
		})
	}

	b.Run("single-lock", func(b *testing.B) {
		c := newResultCache(1024, time.Minute, nil)
		for _, k := range keys {
			c.put(k, resp)
		}
		run(b, c.get, c.put)
	})
	b.Run("sharded", func(b *testing.B) {
		c := newShardedResultCache(1024, defaultCacheShards, time.Minute, nil)
		for _, k := range keys {
			c.Put(k, resp)
		}
		run(b, c.Get, c.Put)
	})
}

// TestShardedCacheConcurrentDeterminism: hammering one sharded cache set
// from many goroutines yields exactly one entry per key (single-flight per
// shard) — run with -race.
func TestShardedCacheConcurrentDeterminism(t *testing.T) {
	c := newShardedPlanCache(256, 8)
	keys := benchCacheKeys(32)
	entries := make([]sync.Map, len(keys))
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, k := range keys {
				e, _, err := c.get(k, true, func(*atomic.Bool) (*core.QueryContext, error) { return dummyCtx(), nil })
				if err != nil {
					t.Error(err)
					return
				}
				entries[i].Store(e, true)
			}
		}(g)
	}
	wg.Wait()
	for i := range entries {
		n := 0
		entries[i].Range(func(any, any) bool { n++; return true })
		if n != 1 {
			t.Errorf("key %d produced %d distinct entries, want 1", i, n)
		}
	}
}
