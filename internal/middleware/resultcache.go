package middleware

import (
	"container/list"
	"math"
	"sync"
	"time"

	"github.com/maliva/maliva/internal/engine"
)

// ResultKey identifies one binned visualization result: the rewritten SQL
// that produced it, the visualization kind and grid, the binning region,
// and the effective budget (the trace embeds budget-dependent fields, so
// responses are only shared between requests with the same budget).
//
// The key is exported (with JSON tags) because it is also the unit of
// cross-replica result sharing: internal/cluster routes requests and
// addresses peer-cache fetches by ResultKey, so every distinct result has
// exactly one owning replica. Every field is a deterministic function of the
// request and the dataset, never of which replica computed it.
type ResultKey struct {
	SQL    string      `json:"sql"`
	Kind   VizKind     `json:"kind"`
	GridW  int         `json:"grid_w"`
	GridH  int         `json:"grid_h"`
	Region engine.Rect `json:"region"`
	Budget float64     `json:"budget"`
	// DataVersion is the dataset's data version the result was (or would be)
	// computed at. Folding it into the key means an ingest flush atomically
	// invalidates every cached result — locally and across the peer wire
	// format — without touching cache internals: pre-flush entries simply
	// stop being addressed. See docs/ARCHITECTURE.md, "Data versions &
	// staleness".
	DataVersion uint64 `json:"data_version"`
	// Approx is the fidelity fingerprint of the rewrite option that produced
	// the result: empty for exact answers, else a (method, parameters, seed)
	// tag (see approxTag). It keeps approximate entries from ever being
	// addressed by exact requests — the rewritten SQL already differs, but
	// the explicit tag lets subsumption, single-flight, and the cluster peer
	// protocol refuse cross-fidelity traffic without parsing SQL.
	Approx string `json:"approx,omitempty"`
}

// Hash spreads a result key over shards (and, in internal/cluster, over the
// replica hash ring): the rewritten SQL dominates, the remaining fields
// disambiguate grid/kind/region/budget/version variants that share SQL text.
func (k ResultKey) Hash() uint64 {
	h := fnv64(k.SQL)
	h = mixShard(h, fnv64(string(k.Kind)))
	// Mask both grid fields to 32 bits so their bit ranges cannot overlap.
	h = mixShard(h, uint64(uint32(k.GridW))<<32|uint64(uint32(k.GridH)))
	h = mixShard(h, math.Float64bits(k.Region.MinLon))
	h = mixShard(h, math.Float64bits(k.Region.MinLat))
	h = mixShard(h, math.Float64bits(k.Region.MaxLon))
	h = mixShard(h, math.Float64bits(k.Region.MaxLat))
	h = mixShard(h, math.Float64bits(k.Budget))
	h = mixShard(h, k.DataVersion)
	if k.Approx != "" {
		// Mixed only when set, so every exact key hashes — and shards, and
		// routes — exactly as it did before the approximate tier existed.
		h = mixShard(h, fnv64(k.Approx))
	}
	return h
}

// ResultCache is the pluggable result-cache surface the Server executes
// against. The built-in implementation is the sharded TTL'd LRU; a cluster
// deployment wraps it (per dataset, via GatewayConfig.WrapResultCache) with
// a peer-aware cache that consults the key's owning replica on a miss.
//
// Contract: Get returns nil on a miss; a non-nil Response must be treated as
// immutable by the caller and must be bit-identical to what the cold compute
// path would produce for the same key. Put must tolerate duplicate and
// concurrent inserts of the same key (values for equal keys are identical by
// construction, so last-write-wins is safe). Implementations must be safe
// for concurrent use.
type ResultCache interface {
	// Get returns the cached response for key, or nil.
	Get(key ResultKey) *Response
	// Put stores a response under key.
	Put(key ResultKey, resp *Response)
	// Len reports how many responses are cached (diagnostics and tests).
	Len() int
}

// resultEntry is a cached response with its expiry.
type resultEntry struct {
	key     ResultKey
	resp    *Response
	expires time.Time
}

// resultCache is a TTL'd LRU of finished responses, tqdbproxy-style: the
// highly-overlapping queries of a pan/zoom session keep producing identical
// (rewritten SQL, grid) pairs, so the whole execute+bin step is skipped.
// Cached *Response values are shared — callers must treat them as immutable
// (the serving layer only encodes them).
type resultCache struct {
	mu      sync.Mutex
	cap     int
	ttl     time.Duration
	now     func() time.Time
	entries map[ResultKey]*list.Element // of *resultEntry
	lru     *list.List
}

// newResultCache builds a cache of at most cap responses living ttl each.
// cap <= 0 disables caching (nil cache: get misses, put drops).
func newResultCache(cap int, ttl time.Duration, now func() time.Time) *resultCache {
	if cap <= 0 {
		return nil
	}
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &resultCache{
		cap:     cap,
		ttl:     ttl,
		now:     now,
		entries: make(map[ResultKey]*list.Element),
		lru:     list.New(),
	}
}

// get returns the cached response for key, or nil. Expired entries are
// dropped lazily on access.
func (c *resultCache) get(key ResultKey) *Response {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	e := el.Value.(*resultEntry)
	if c.now().After(e.expires) {
		c.lru.Remove(el)
		delete(c.entries, key)
		return nil
	}
	c.lru.MoveToFront(el)
	return e.resp
}

// put stores a response, refreshing the TTL if the key already exists and
// evicting the least-recently-used entries beyond capacity.
func (c *resultCache) put(key ResultKey, resp *Response) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	expires := c.now().Add(c.ttl)
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*resultEntry)
		e.resp, e.expires = resp, expires
		c.lru.MoveToFront(el)
		return
	}
	el := c.lru.PushFront(&resultEntry{key: key, resp: resp, expires: expires})
	c.entries[key] = el
	for c.lru.Len() > c.cap {
		old := c.lru.Back()
		c.lru.Remove(old)
		delete(c.entries, old.Value.(*resultEntry).key)
	}
	// Sweep expired entries from the LRU tail. Without this, a churning key
	// population (e.g. version-keyed entries after ingest flushes) pins
	// expired *Response values until capacity eviction, since get only drops
	// the exact key it was asked for. Entries are TTL-ordered from the tail
	// up to MoveToFront perturbation, so stopping at the first live entry
	// bounds the sweep while reclaiming the common ghost pile-up.
	now := c.now()
	for {
		old := c.lru.Back()
		if old == nil {
			break
		}
		e := old.Value.(*resultEntry)
		if !now.After(e.expires) {
			break
		}
		c.lru.Remove(old)
		delete(c.entries, e.key)
	}
}

// len reports the number of live (non-expired) cached responses.
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	n := 0
	for el := c.lru.Front(); el != nil; el = el.Next() {
		if !now.After(el.Value.(*resultEntry).expires) {
			n++
		}
	}
	return n
}
