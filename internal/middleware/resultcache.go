package middleware

import (
	"container/list"
	"sync"
	"time"

	"github.com/maliva/maliva/internal/engine"
)

// resultKey identifies one binned visualization result: the rewritten SQL
// that produced it, the visualization kind and grid, the binning region,
// and the effective budget (the trace embeds budget-dependent fields, so
// responses are only shared between requests with the same budget).
type resultKey struct {
	sql    string
	kind   VizKind
	gridW  int
	gridH  int
	region engine.Rect
	budget float64
}

// resultEntry is a cached response with its expiry.
type resultEntry struct {
	key     resultKey
	resp    *Response
	expires time.Time
}

// resultCache is a TTL'd LRU of finished responses, tqdbproxy-style: the
// highly-overlapping queries of a pan/zoom session keep producing identical
// (rewritten SQL, grid) pairs, so the whole execute+bin step is skipped.
// Cached *Response values are shared — callers must treat them as immutable
// (the serving layer only encodes them).
type resultCache struct {
	mu      sync.Mutex
	cap     int
	ttl     time.Duration
	now     func() time.Time
	entries map[resultKey]*list.Element // of *resultEntry
	lru     *list.List
}

// newResultCache builds a cache of at most cap responses living ttl each.
// cap <= 0 disables caching (nil cache: get misses, put drops).
func newResultCache(cap int, ttl time.Duration, now func() time.Time) *resultCache {
	if cap <= 0 {
		return nil
	}
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &resultCache{
		cap:     cap,
		ttl:     ttl,
		now:     now,
		entries: make(map[resultKey]*list.Element),
		lru:     list.New(),
	}
}

// get returns the cached response for key, or nil. Expired entries are
// dropped lazily on access.
func (c *resultCache) get(key resultKey) *Response {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	e := el.Value.(*resultEntry)
	if c.now().After(e.expires) {
		c.lru.Remove(el)
		delete(c.entries, key)
		return nil
	}
	c.lru.MoveToFront(el)
	return e.resp
}

// put stores a response, refreshing the TTL if the key already exists and
// evicting the least-recently-used entries beyond capacity.
func (c *resultCache) put(key resultKey, resp *Response) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	expires := c.now().Add(c.ttl)
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*resultEntry)
		e.resp, e.expires = resp, expires
		c.lru.MoveToFront(el)
		return
	}
	el := c.lru.PushFront(&resultEntry{key: key, resp: resp, expires: expires})
	c.entries[key] = el
	for c.lru.Len() > c.cap {
		old := c.lru.Back()
		c.lru.Remove(old)
		delete(c.entries, old.Value.(*resultEntry).key)
	}
}

// len reports the number of cached responses, counting expired ones not yet
// swept (for tests).
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
