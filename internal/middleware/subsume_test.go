package middleware

import (
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/engine"
	"github.com/maliva/maliva/internal/workload"
)

// TestAxisAlign pins the cell-lattice alignment predicate: equal cell size
// and an integral offset inside the parent admit slicing; everything else
// falls through.
func TestAxisAlign(t *testing.T) {
	// Parent: [0,32) split into 32 unit cells.
	cases := []struct {
		name       string
		sMin, sMax float64
		sn         int
		off        int
		ok         bool
	}{
		{"exact-window", 4, 12, 8, 4, true},
		{"full-span", 0, 32, 32, 0, true},
		{"float-noise", 4 + 3e-8, 12 + 3e-8, 8, 4, true},
		{"half-cell-offset", 4.5, 12.5, 8, 0, false},
		{"finer-cells", 4, 12, 16, 0, false},
		{"coarser-cells", 4, 12, 4, 0, false},
		{"before-parent", -2, 6, 8, 0, false},
		{"past-parent", 28, 36, 8, 0, false},
		{"zero-span", 4, 4, 0, 0, false},
	}
	for _, c := range cases {
		off, ok := axisAlign(0, 32, 32, c.sMin, c.sMax, c.sn)
		if ok != c.ok || (ok && off != c.off) {
			t.Errorf("%s: axisAlign = (%d,%v), want (%d,%v)", c.name, off, ok, c.off, c.ok)
		}
	}
}

// TestSliceBinsSparse: slicing copies exactly the window's cells and keeps
// the sparse representation — absent parent cells stay absent.
func TestSliceBinsSparse(t *testing.T) {
	// Parent 4×4 grid with three populated cells.
	parent := map[int]float64{
		1*4 + 1: 10, // inside the window
		2*4 + 2: 20, // inside the window
		0*4 + 0: 99, // outside
	}
	got := sliceBins(parent, 4, 1, 1, 2, 2)
	want := map[int]float64{0: 10, 3: 20} // (1,1)→(0,0), (2,2)→(1,1) in the 2×2 window
	if len(got) != len(want) {
		t.Fatalf("sliced bins = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("sliced bins = %v, want %v", got, want)
		}
	}
}

// subsumeServers builds two servers over one dataset: the subject (with
// containment answering) and a reference that always executes (subsumption
// disabled, caches disabled so nothing is ever reused).
func subsumeServers(t *testing.T) (subject, reference *Server) {
	t.Helper()
	ds := testDataset(t)
	subject, err := NewServerWithConfig(ds, core.OracleRewriter{}, core.HintOnlySpec(),
		ServerConfig{DefaultBudgetMs: 500})
	if err != nil {
		t.Fatal(err)
	}
	reference, err = NewServerWithConfig(ds, core.OracleRewriter{}, core.HintOnlySpec(),
		ServerConfig{DefaultBudgetMs: 500, DisableSubsumption: true, PlanCacheSize: -1, ResultCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	return subject, reference
}

// TestSubsumptionByteIdentical is the differential property test: randomized
// aligned sub-viewports of a cached parent heatmap must serialize to exactly
// the bytes direct execution produces. Every sub-request is served by the
// subject (which may slice the warm parent) and by the cache-less reference
// (which always executes); the marshaled responses must match byte for byte.
func TestSubsumptionByteIdentical(t *testing.T) {
	subject, reference := subsumeServers(t)
	ext := subject.DS.Extent
	const pw, ph = 32, 16
	parent := Request{
		Keyword: "word0003",
		From:    time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC),
		To:      time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC),
		Region:  ext, Kind: VizHeatmap, GridW: pw, GridH: ph, BudgetMs: 500,
	}
	if _, err := subject.Handle(parent); err != nil {
		t.Fatal(err)
	}

	cellW := (ext.MaxLon - ext.MinLon) / pw
	cellH := (ext.MaxLat - ext.MinLat) / ph
	rng := rand.New(rand.NewSource(42))
	subsumedBefore := subject.Metrics().Snapshot().SubsumedHits
	for i := 0; i < 25; i++ {
		sw, sh := 1+rng.Intn(pw-1), 1+rng.Intn(ph-1)
		ox, oy := rng.Intn(pw-sw+1), rng.Intn(ph-sh+1)
		sub := parent
		sub.GridW, sub.GridH = sw, sh
		sub.Region = engine.Rect{
			MinLon: ext.MinLon + float64(ox)*cellW, MinLat: ext.MinLat + float64(oy)*cellH,
			MaxLon: ext.MinLon + float64(ox+sw)*cellW, MaxLat: ext.MinLat + float64(oy+sh)*cellH,
		}
		got, err := subject.Handle(sub)
		if err != nil {
			t.Fatal(err)
		}
		want, err := reference.Handle(sub)
		if err != nil {
			t.Fatal(err)
		}
		gb, _ := json.Marshal(got)
		wb, _ := json.Marshal(want)
		if string(gb) != string(wb) {
			t.Fatalf("sub-request %d (%d×%d at %d,%d): sliced response differs from direct execution\nsliced: %s\ndirect: %s",
				i, sw, sh, ox, oy, gb, wb)
		}
	}
	if hits := subject.Metrics().Snapshot().SubsumedHits - subsumedBefore; hits == 0 {
		t.Fatal("no sub-request was answered by containment slicing — the property test exercised nothing")
	}
}

// TestSubsumptionVersionGate: a data-version bump (sync ingest flush) must
// retire cached parents — a sub-request after the flush re-executes at the
// new version rather than slicing pre-flush bins.
func TestSubsumptionVersionGate(t *testing.T) {
	subject, _ := subsumeServers(t)
	ext := subject.DS.Extent
	parent := Request{
		Keyword: "word0003",
		From:    time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC),
		To:      time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC),
		Region:  ext, Kind: VizHeatmap, GridW: 16, GridH: 8, BudgetMs: 500,
	}
	if _, err := subject.Handle(parent); err != nil {
		t.Fatal(err)
	}

	stream, err := workload.NewIngestStream(subject.DS, 42)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := subject.Ingest(stream.Next(16), true); err != nil {
		t.Fatal(err)
	}

	before := subject.Metrics().Snapshot().SubsumedHits
	sub := parent
	sub.GridW, sub.GridH = 8, 4
	cellW := (ext.MaxLon - ext.MinLon) / 16
	cellH := (ext.MaxLat - ext.MinLat) / 8
	sub.Region = engine.Rect{
		MinLon: ext.MinLon + 2*cellW, MinLat: ext.MinLat + 2*cellH,
		MaxLon: ext.MinLon + 10*cellW, MaxLat: ext.MinLat + 6*cellH,
	}
	if _, err := subject.Handle(sub); err != nil {
		t.Fatal(err)
	}
	if hits := subject.Metrics().Snapshot().SubsumedHits - before; hits != 0 {
		t.Fatalf("sub-request sliced a pre-flush parent across a data-version bump (%d subsumed hits)", hits)
	}
}

// TestSubsumptionSkipsScatterAndMisaligned: scatter requests and non-aligned
// heatmap viewports never take the containment path.
func TestSubsumptionSkipsScatterAndMisaligned(t *testing.T) {
	subject, reference := subsumeServers(t)
	ext := subject.DS.Extent
	parent := Request{
		Keyword: "word0003",
		From:    time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC),
		To:      time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC),
		Region:  ext, Kind: VizHeatmap, GridW: 16, GridH: 8, BudgetMs: 500,
	}
	if _, err := subject.Handle(parent); err != nil {
		t.Fatal(err)
	}
	scatterParent := parent
	scatterParent.Kind = VizScatter
	if _, err := subject.Handle(scatterParent); err != nil {
		t.Fatal(err)
	}

	cellW := (ext.MaxLon - ext.MinLon) / 16
	cellH := (ext.MaxLat - ext.MinLat) / 8
	window := engine.Rect{
		MinLon: ext.MinLon + 2*cellW, MinLat: ext.MinLat + 2*cellH,
		MaxLon: ext.MinLon + 10*cellW, MaxLat: ext.MinLat + 6*cellH,
	}

	before := subject.Metrics().Snapshot().SubsumedHits
	// Scatter sub-window: containment must not answer (point order is a plan
	// artifact), but the response must still match direct execution.
	scatterSub := scatterParent
	scatterSub.GridW, scatterSub.GridH = 8, 4
	scatterSub.Region = window
	got, err := subject.Handle(scatterSub)
	if err != nil {
		t.Fatal(err)
	}
	want, err := reference.Handle(scatterSub)
	if err != nil {
		t.Fatal(err)
	}
	gb, _ := json.Marshal(got)
	wb, _ := json.Marshal(want)
	if string(gb) != string(wb) {
		t.Fatal("scatter sub-request diverged from direct execution")
	}

	// Misaligned heatmap: offset by half a cell — must execute, not slice.
	mis := parent
	mis.GridW, mis.GridH = 8, 4
	mis.Region = engine.Rect{
		MinLon: ext.MinLon + 2.5*cellW, MinLat: ext.MinLat + 2*cellH,
		MaxLon: ext.MinLon + 10.5*cellW, MaxLat: ext.MinLat + 6*cellH,
	}
	if _, err := subject.Handle(mis); err != nil {
		t.Fatal(err)
	}
	if hits := subject.Metrics().Snapshot().SubsumedHits - before; hits != 0 {
		t.Fatalf("scatter or misaligned request took the containment path (%d subsumed hits)", hits)
	}
}

// TestRegionIndexEviction: the containment index is FIFO-bounded and drops
// entries whose backing response is gone.
func TestRegionIndexEviction(t *testing.T) {
	ri := newRegionIndex(2)
	fam := famKey{keyword: "k", kind: VizHeatmap, budget: 500}
	for i := 0; i < 3; i++ {
		key := ResultKey{SQL: string(rune('a' + i)), Kind: VizHeatmap, GridW: 4, GridH: 4}
		ri.add(fam, regionEntry{key: key, region: engine.Rect{MaxLon: 1, MaxLat: 1}, gw: 4, gh: 4})
	}
	if got := len(ri.candidates(fam)); got != 2 {
		t.Fatalf("index holds %d entries after overflow, want 2 (FIFO cap)", got)
	}
	// The oldest entry must be the evicted one.
	for _, e := range ri.candidates(fam) {
		if e.key.SQL == "a" {
			t.Fatal("FIFO eviction kept the oldest entry")
		}
	}
}
