package middleware

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/maliva/maliva/internal/core"
)

// planEntry is one cached query shape: the ground-truth context (the
// expensive part — BuildContext executes every rewritten query) plus the
// rewriter's decision memoized per budget. Both are deterministic functions
// of the query, so caching them never changes a response bit.
type planEntry struct {
	ctx *core.QueryContext

	mu       sync.Mutex
	outcomes map[float64]core.Outcome
}

// maxOutcomesPerEntry caps the per-entry budget→outcome map: budgets are
// client-supplied floats, so without a cap a client sweeping distinct
// budget values against one hot shape would grow the map forever. Real
// frontends use a handful of budgets; beyond the cap decisions are still
// computed, just not memoized.
const maxOutcomesPerEntry = 64

// outcome returns the memoized rewrite decision for a budget, computing it
// via rewrite on first use. The entry lock is NOT held across rewrite —
// otherwise every warm hit on this shape would stall behind one cold
// budget's rewrite (which may itself queue on the server's rewriteMu).
// Two racing requests for the same new budget may both rewrite; outcomes
// are deterministic functions of (ctx, budget), so both compute the same
// value and the first stored one wins.
func (e *planEntry) outcome(budget float64, rewrite func() core.Outcome) core.Outcome {
	e.mu.Lock()
	if out, ok := e.outcomes[budget]; ok {
		e.mu.Unlock()
		return out
	}
	e.mu.Unlock()
	out := rewrite()
	e.mu.Lock()
	defer e.mu.Unlock()
	if prev, ok := e.outcomes[budget]; ok {
		return prev
	}
	if len(e.outcomes) < maxOutcomesPerEntry {
		e.outcomes[budget] = out
	}
	return out
}

// planResult reports how a plan-cache lookup was served, for metrics.
type planResult int

const (
	planHit       planResult = iota // entry already cached
	planMiss                        // this call built the context
	planCoalesced                   // waited on another goroutine's build
)

// planCall is an in-flight context build that later arrivals wait on
// (single-flight coalescing: N identical concurrent requests build once).
// boost is set by a live waiter: a background build parks while live
// requests are active, but once a live request is blocked on THIS build,
// parking would have the waiter waiting on the parker — the builder's
// yield hook checks boost and finishes at full speed instead.
type planCall struct {
	done  chan struct{}
	boost atomic.Bool
	entry *planEntry
	err   error
}

// planCache is a signature-keyed LRU of planEntry with single-flight
// coalescing. Keys are the canonical SQL of the original query.
type planCache struct {
	mu       sync.Mutex
	cap      int
	entries  map[string]*list.Element // of *planPair
	lru      *list.List               // front = most recent
	inflight map[string]*planCall
}

type planPair struct {
	key   string
	entry *planEntry
}

// newPlanCache returns a cache holding at most cap entries; cap <= 0
// disables caching (nil cache: get always builds).
func newPlanCache(cap int) *planCache {
	if cap <= 0 {
		return nil
	}
	return &planCache{
		cap:      cap,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		inflight: make(map[string]*planCall),
	}
}

// get returns the entry for key, building it with build on a miss. Exactly
// one goroutine runs build per key at a time; concurrent callers for the
// same key wait and share the result. Build errors are not cached — the
// next request retries. live marks a caller on the serving path: joining an
// in-flight build, it boosts the build out of background parking (see
// planCall.boost). build receives the in-flight call's boost flag to wire
// into its yield hook; background builders without joiners see it stay
// false forever.
func (c *planCache) get(key string, live bool, build func(*atomic.Bool) (*core.QueryContext, error)) (*planEntry, planResult, error) {
	if c == nil {
		ctx, err := build(new(atomic.Bool))
		if err != nil {
			return nil, planMiss, err
		}
		return &planEntry{ctx: ctx, outcomes: make(map[float64]core.Outcome)}, planMiss, nil
	}

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		entry := el.Value.(*planPair).entry
		c.mu.Unlock()
		return entry, planHit, nil
	}
	if call, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		if live {
			call.boost.Store(true)
		}
		<-call.done
		if call.err != nil {
			return nil, planCoalesced, call.err
		}
		return call.entry, planCoalesced, nil
	}
	call := &planCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.mu.Unlock()

	// Publish the call result even if build panics (a wedged inflight entry
	// would block every later request for this key forever, each holding an
	// admission slot — a self-inflicted outage). On panic the waiters see a
	// build error and the panic propagates to this caller.
	finished := false
	defer func() {
		if !finished {
			call.err = fmt.Errorf("middleware: context build panicked")
		}
		c.mu.Lock()
		delete(c.inflight, key)
		if call.err == nil {
			el := c.lru.PushFront(&planPair{key: key, entry: call.entry})
			c.entries[key] = el
			for c.lru.Len() > c.cap {
				old := c.lru.Back()
				c.lru.Remove(old)
				delete(c.entries, old.Value.(*planPair).key)
			}
		}
		c.mu.Unlock()
		close(call.done)
	}()
	ctx, err := build(&call.boost)
	if err != nil {
		call.err = err
	} else {
		call.entry = &planEntry{ctx: ctx, outcomes: make(map[float64]core.Outcome)}
	}
	finished = true

	if call.err != nil {
		return nil, planMiss, call.err
	}
	return call.entry, planMiss, nil
}

// len reports the number of cached entries (for tests).
func (c *planCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
