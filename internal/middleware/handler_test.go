package middleware

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/engine"
	"github.com/maliva/maliva/internal/workload"
)

// tinyDataset builds a minimal custom dataset with an optional time and
// point column, for exercising the per-column request/construction errors
// the Twitter dataset can't reach.
func tinyDataset(t testing.TB, withTime, withGeo bool) *workload.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	db := engine.NewDB(engine.ProfilePostgres(), 7)
	tb := engine.NewTable("docs", 10)
	words := []string{"alpha", "beta", "gamma"}
	for _, w := range words {
		tb.Vocab.Intern(w)
	}
	const rows = 400
	texts := make([][]uint32, rows)
	times := make([]int64, rows)
	points := make([]engine.Point, rows)
	ids := make([]int64, rows)
	origin := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < rows; i++ {
		texts[i] = engine.SortTokens([]uint32{uint32(rng.Intn(len(words))) + 1})
		times[i] = origin.Add(time.Duration(rng.Intn(365*24)) * time.Hour).UnixMilli()
		points[i] = engine.Point{Lon: rng.Float64() * 10, Lat: rng.Float64() * 10}
		ids[i] = int64(i)
	}
	cols := []*engine.Column{
		{Name: "id", Type: engine.ColInt64, Ints: ids},
		{Name: "text", Type: engine.ColText, Texts: texts},
	}
	filterCols := []string{"text"}
	outputCols := []string{"id"}
	if withTime {
		cols = append(cols, &engine.Column{Name: "created_at", Type: engine.ColTime, Ints: times})
		filterCols = append(filterCols, "created_at")
	}
	if withGeo {
		cols = append(cols, &engine.Column{Name: "loc", Type: engine.ColPoint, Points: points})
		filterCols = append(filterCols, "loc")
		outputCols = append(outputCols, "loc")
	}
	for _, c := range cols {
		if err := tb.AddColumn(c); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tb.BuildIndex("text", engine.IndexInverted); err != nil {
		t.Fatal(err)
	}
	if withTime {
		if _, err := tb.BuildIndex("created_at", engine.IndexBTree); err != nil {
			t.Fatal(err)
		}
	}
	if withGeo {
		if _, err := tb.BuildIndex("loc", engine.IndexRTree); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.AddTable(tb); err != nil {
		t.Fatal(err)
	}
	return &workload.Dataset{
		Name:       "tiny",
		DB:         db,
		Main:       "docs",
		FilterCols: filterCols,
		OutputCols: outputCols,
		Extent:     engine.Rect{MaxLon: 10, MaxLat: 10},
	}
}

// TestNewServerResolvesColumns: the time/point columns are resolved once at
// construction, and a dataset with neither is rejected up front.
func TestNewServerResolvesColumns(t *testing.T) {
	// Neither time nor geo: construction fails.
	ds := tinyDataset(t, false, false)
	if _, err := NewServer(ds, core.OracleRewriter{}, core.HintOnlySpec(), 500); err == nil {
		t.Fatal("expected construction error for dataset with neither time nor point column")
	}

	// Missing main table: construction fails.
	broken := tinyDataset(t, true, true)
	broken.Main = "nosuchtable"
	if _, err := NewServer(broken, core.OracleRewriter{}, core.HintOnlySpec(), 500); err == nil {
		t.Fatal("expected construction error for missing main table")
	}

	// Full Twitter dataset: all three columns resolve.
	s := testServer(t)
	if s.textCol != "text" || s.timeCol != "created_at" || s.geoCol != "coordinates" {
		t.Errorf("resolved columns = %q %q %q", s.textCol, s.timeCol, s.geoCol)
	}
}

// TestHandleErrorPaths drives Server.Handle through every request-caused
// failure and asserts each is marked ErrBadRequest.
func TestHandleErrorPaths(t *testing.T) {
	twitter := testServer(t)
	timeOnly, err := NewServer(tinyDataset(t, true, false), core.OracleRewriter{}, core.HintOnlySpec(), 500)
	if err != nil {
		t.Fatal(err)
	}
	geoOnly, err := NewServer(tinyDataset(t, false, true), core.OracleRewriter{}, core.HintOnlySpec(), 500)
	if err != nil {
		t.Fatal(err)
	}

	from := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)
	to := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		s    *Server
		req  Request
	}{
		{"unknown keyword", twitter, Request{Keyword: "nosuchword"}},
		{"empty predicate set", twitter, Request{Kind: VizHeatmap}},
		{"missing geo column", timeOnly, Request{Keyword: "alpha", Region: engine.Rect{MaxLon: 5, MaxLat: 5}}},
		{"missing time column", geoOnly, Request{Keyword: "alpha", From: from, To: to}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.s.Handle(tc.req)
			if err == nil {
				t.Fatal("expected error")
			}
			if !errors.Is(err, ErrBadRequest) {
				t.Errorf("error %v is not ErrBadRequest", err)
			}
		})
	}
}

// TestHTTPErrorPaths is the table-driven HTTP suite over every error path
// and the success shapes, including the status-code mapping.
func TestHTTPErrorPaths(t *testing.T) {
	s := testServer(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	valid := func(mutate func(m map[string]any)) []byte {
		m := map[string]any{
			"keyword": "word0005",
			"from":    "2016-03-01T00:00:00Z",
			"to":      "2016-05-01T00:00:00Z",
			"min_lon": workload.USExtent.MinLon, "min_lat": workload.USExtent.MinLat,
			"max_lon": workload.USExtent.MaxLon, "max_lat": workload.USExtent.MaxLat,
			"kind": "heatmap", "grid_w": 8, "grid_h": 8, "budget_ms": 500.0,
		}
		if mutate != nil {
			mutate(m)
		}
		b, _ := json.Marshal(m)
		return b
	}

	cases := []struct {
		name       string
		method     string
		body       string
		wantStatus int
	}{
		{"heatmap ok", http.MethodPost, string(valid(nil)), http.StatusOK},
		{"scatter ok", http.MethodPost, string(valid(func(m map[string]any) { m["kind"] = "scatter" })), http.StatusOK},
		{"malformed json", http.MethodPost, "{nope", http.StatusBadRequest},
		{"bad timestamp", http.MethodPost, string(valid(func(m map[string]any) { m["from"] = "yesterday" })), http.StatusBadRequest},
		{"unknown keyword", http.MethodPost, string(valid(func(m map[string]any) { m["keyword"] = "zzz" })), http.StatusBadRequest},
		{"no conditions", http.MethodPost, "{}", http.StatusBadRequest},
		{"non-POST method", http.MethodGet, "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+"/viz", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			if tc.wantStatus != http.StatusOK {
				return
			}
			var out Response
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
			switch VizKind(tc.name[:7]) {
			case "heatmap":
				if len(out.Bins) == 0 || len(out.Points) != 0 {
					t.Errorf("heatmap response shape: %d bins, %d points", len(out.Bins), len(out.Points))
				}
			case "scatter":
				if len(out.Points) == 0 || len(out.Bins) != 0 {
					t.Errorf("scatter response shape: %d bins, %d points", len(out.Bins), len(out.Points))
				}
			}
			if out.Trace.RewrittenSQL == "" || out.Trace.Option == "" {
				t.Errorf("trace incomplete: %+v", out.Trace)
			}
		})
	}
}

// TestBudgetFallback: zero or negative budget_ms falls back to the server
// default, observable through Trace.BudgetMs.
func TestBudgetFallback(t *testing.T) {
	s := testServer(t)
	for _, budget := range []float64{0, -25} {
		req := validRequest()
		req.BudgetMs = budget
		resp, err := s.Handle(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Trace.BudgetMs != 500 {
			t.Errorf("budget_ms=%v: effective budget %v, want default 500", budget, resp.Trace.BudgetMs)
		}
	}
	req := validRequest()
	req.BudgetMs = 750
	resp, err := s.Handle(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trace.BudgetMs != 750 {
		t.Errorf("explicit budget not honored: %v", resp.Trace.BudgetMs)
	}
}

// TestCachedResponsesByteIdentical: warm-cache responses and responses from
// a cache-disabled server are byte-for-byte identical to the cold path.
func TestCachedResponsesByteIdentical(t *testing.T) {
	cached := testServer(t)
	ds := cached.DS
	uncached, err := NewServerWithConfig(ds, core.OracleRewriter{}, core.HintOnlySpec(),
		ServerConfig{DefaultBudgetMs: 500, PlanCacheSize: -1, ResultCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}

	reqs := []Request{validRequest()}
	scatter := validRequest()
	scatter.Kind = VizScatter
	reqs = append(reqs, scatter)

	for i, req := range reqs {
		cold, err := cached.Handle(req)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := cached.Handle(req)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := uncached.Handle(req)
		if err != nil {
			t.Fatal(err)
		}
		coldB, _ := json.Marshal(cold)
		warmB, _ := json.Marshal(warm)
		plainB, _ := json.Marshal(plain)
		if !bytes.Equal(coldB, warmB) {
			t.Errorf("req %d: warm response differs from cold\ncold %s\nwarm %s", i, coldB, warmB)
		}
		if !bytes.Equal(coldB, plainB) {
			t.Errorf("req %d: cache-disabled response differs from cached\ncached   %s\nuncached %s", i, coldB, plainB)
		}
	}
	snap := cached.Metrics().Snapshot()
	if snap.ResultHits == 0 || snap.PlanHits == 0 {
		t.Errorf("caches were not exercised: %+v", snap)
	}
}

// TestHealthzAndMetricsEndpoints: the observability endpoints respond and
// carry the serving counters.
func TestHealthzAndMetricsEndpoints(t *testing.T) {
	s := testServer(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	hr, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", hr.StatusCode)
	}
	var health map[string]any
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" {
		t.Errorf("healthz status = %v", health["status"])
	}

	// Serve one request, then check it shows up in both metrics formats.
	body, _ := json.Marshal(map[string]any{"keyword": "word0005", "kind": "heatmap",
		"min_lon": workload.USExtent.MinLon, "min_lat": workload.USExtent.MinLat,
		"max_lon": workload.USExtent.MaxLon, "max_lat": workload.USExtent.MaxLat})
	resp, err := http.Post(srv.URL+"/viz", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /viz = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("first request X-Cache = %q, want miss", got)
	}

	mr, err := http.Get(srv.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(mr.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Requests != 1 || snap.OK != 1 || snap.LatencyCount != 1 {
		t.Errorf("snapshot counters: %+v", snap)
	}

	pr, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(pr.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"maliva_requests_total 1",
		`maliva_responses_total{code="2xx"} 1`,
		"maliva_plan_cache_misses_total 1",
		`maliva_request_latency_ms{quantile="0.95"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, text)
		}
	}
}
