package middleware

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/engine"
	"github.com/maliva/maliva/internal/workload"
)

// freshIngestServer builds a middleware over its own private copy of the
// tiny Twitter dataset (ingest mutates the dataset, so these tests never
// share one) with explicit serving knobs.
func freshIngestServer(t testing.TB, cfg ServerConfig) *Server {
	t.Helper()
	wc := workload.TwitterConfig()
	wc.Rows = 8_000
	wc.Scale = 100e6 / float64(wc.Rows)
	ds, err := workload.Twitter(wc)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServerWithConfig(ds, core.OracleRewriter{}, core.HintOnlySpec(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// ingestRequests is a small mix of shapes that exercise keyword, time, and
// geo predicates at different grids.
func ingestRequests() []Request {
	reqs := make([]Request, 0, 6)
	for i := 0; i < 3; i++ {
		r := validRequest()
		r.Keyword = fmt.Sprintf("word%04d", 5+i)
		reqs = append(reqs, r)
		r.GridW, r.GridH = 8, 8
		r.Kind = VizScatter
		reqs = append(reqs, r)
	}
	return reqs
}

// TestReadsDuringIngestByteIdentity is the PR's stale-read acceptance test:
// a fully cached server under live ingestion answers, after every flush,
// byte-identically to a cache-free server that replayed the same row stream
// to the same data version — while concurrent readers race the flushes. Run
// with -race.
func TestReadsDuringIngestByteIdentity(t *testing.T) {
	live := freshIngestServer(t, ServerConfig{DefaultBudgetMs: 500})
	oracle := freshIngestServer(t, ServerConfig{
		DefaultBudgetMs: 500,
		PlanCacheSize:   -1,
		ResultCacheSize: -1,
	})
	stream, err := workload.NewIngestStream(live.DS, 42)
	if err != nil {
		t.Fatal(err)
	}
	reqs := ingestRequests()

	// Background readers hammer the live server across flush boundaries.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := live.Handle(reqs[(w+i)%len(reqs)]); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}(w)
	}

	for round := 0; round < 6; round++ {
		rows := stream.Next(64)
		ra, err := live.Ingest(rows, true)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := oracle.Ingest(rows, true)
		if err != nil {
			t.Fatal(err)
		}
		if !ra.Flushed || !rb.Flushed || ra.Version != rb.Version {
			t.Fatalf("round %d: live=(v%d flushed=%v) oracle=(v%d flushed=%v), want same flushed version",
				round, ra.Version, ra.Flushed, rb.Version, rb.Flushed)
		}
		for i, req := range reqs {
			got, err := live.Handle(req)
			if err != nil {
				t.Fatal(err)
			}
			want, err := oracle.Handle(req)
			if err != nil {
				t.Fatal(err)
			}
			jg, _ := json.Marshal(got)
			jw, _ := json.Marshal(want)
			if !bytes.Equal(jg, jw) {
				t.Errorf("round %d req %d (v%d): STALE READ — cached server diverges from replay\n got %s\nwant %s",
					round, i, ra.Version, jg, jw)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestTTLHintBoundedStaleness pins the `/* ttl:N */` contract: a hinted
// request may be served from a version whose successor flushed within the
// window, served answers are exactly the old version's bytes, nothing is
// stored under old keys, and an expired window falls back to fresh compute.
func TestTTLHintBoundedStaleness(t *testing.T) {
	var mu sync.Mutex
	clock := time.Unix(1_700_000_000, 0)
	now := func() time.Time { mu.Lock(); defer mu.Unlock(); return clock }
	advance := func(d time.Duration) { mu.Lock(); clock = clock.Add(d); mu.Unlock() }

	s := freshIngestServer(t, ServerConfig{
		DefaultBudgetMs: 500,
		ResultTTL:       time.Hour, // cache-entry TTL out of the picture
		Now:             now,
		Ingest:          engine.IngestorConfig{Now: now},
	})
	stream, err := workload.NewIngestStream(s.DS, 7)
	if err != nil {
		t.Fatal(err)
	}
	req := validRequest()

	// Cache at v0, then flush.
	v0resp, cached, err := s.handle(context.Background(), req, false)
	if err != nil || cached {
		t.Fatalf("cold handle: cached=%v err=%v", cached, err)
	}
	v0bytes, _ := json.Marshal(v0resp)
	advance(10 * time.Second)
	if _, err := s.Ingest(stream.Next(32), true); err != nil {
		t.Fatal(err)
	}
	if v := s.DataVersion(); v != 1 {
		t.Fatalf("version = %d, want 1", v)
	}

	// Hinted request within the window: served the v0 answer, byte for byte.
	withTTL := req
	withTTL.TTL = time.Minute
	got, cached, err := s.handle(context.Background(), withTTL, false)
	if err != nil || !cached {
		t.Fatalf("ttl-hinted handle: cached=%v err=%v, want stale hit", cached, err)
	}
	gb, _ := json.Marshal(got)
	if !bytes.Equal(gb, v0bytes) {
		t.Error("stale hit is not the old version's exact answer")
	}
	if n := s.metrics.staleHits.Load(); n != 1 {
		t.Errorf("stale hits = %d, want 1", n)
	}

	// The stale hit stored nothing at the current version: an un-hinted
	// request still recomputes — the v0 entry is unreachable without the hint.
	if _, cached, err := s.handle(context.Background(), req, false); err != nil || cached {
		t.Fatalf("post-stale-hit handle: cached=%v err=%v, want recompute", cached, err)
	}

	// Window expiry: flush again, let the window pass, and the hint no
	// longer reaches any old version.
	advance(10 * time.Second)
	if _, err := s.Ingest(stream.Next(32), true); err != nil {
		t.Fatal(err)
	}
	advance(5 * time.Minute)
	shape := req
	shape.GridW, shape.GridH = 8, 4 // never served → no entry at any version
	shape.TTL = time.Minute
	if _, cached, err := s.handle(context.Background(), shape, false); err != nil || cached {
		t.Fatalf("expired-window handle: cached=%v err=%v, want recompute", cached, err)
	}
	if n := s.metrics.staleHits.Load(); n != 1 {
		t.Errorf("expired window produced a stale hit (total %d)", n)
	}
}

// TestParseTTLHint covers the wire form of the staleness hint.
func TestParseTTLHint(t *testing.T) {
	cases := []struct {
		hint string
		want time.Duration
	}{
		{"", 0},
		{"/* ttl:30 */", 30 * time.Second},
		{"/*ttl:5*/", 5 * time.Second},
		{"  /* ttl:120 */ trailing", 120 * time.Second},
		{"/* ttl:0 */", 0},
		{"/* ttl:-3 */", 0},
		{"/* freshness:30 */", 0},
		{"ttl:30", 0},
	}
	for _, c := range cases {
		if got := parseTTLHint(c.hint); got != c.want {
			t.Errorf("parseTTLHint(%q) = %v, want %v", c.hint, got, c.want)
		}
	}
}

// TestIngestEndpoint drives POST /ingest through the HTTP surface and
// verifies the flush is visible to an immediately following /viz request.
func TestIngestEndpoint(t *testing.T) {
	s := freshIngestServer(t, ServerConfig{DefaultBudgetMs: 500})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	stream, err := workload.NewIngestStream(s.DS, 3)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(map[string]any{"rows": stream.Next(10), "sync": true})
	resp, err := http.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var res IngestResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 10 || !res.Flushed || res.Version != 1 || res.Pending != 0 {
		t.Errorf("result = %+v, want 10 rows flushed at v1", res)
	}
	if got := s.DS.DB.Table(s.DS.Main).Rows; got != 8_010 {
		t.Errorf("table rows = %d, want 8010", got)
	}

	// Async: rows buffer, version does not move yet (MaxDelay default 200ms
	// means the flush happens soon after, but Pending reflects the buffer at
	// response time).
	body, _ = json.Marshal(map[string]any{"rows": stream.Next(5)})
	resp2, err := http.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Flushed || res.Pending != 5 {
		t.Errorf("async result = %+v, want 5 pending unflushed", res)
	}

	// Bad payloads.
	for _, bad := range []string{`{}`, `{"rows":[]}`, `{"rows":[{"nope":1}]}`, `not json`} {
		r, err := http.Post(ts.URL+"/ingest", "application/json", bytes.NewReader([]byte(bad)))
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Errorf("payload %q: status %d, want 400", bad, r.StatusCode)
		}
	}
}

// TestResultCachePutSweepsExpiredGhosts pins the ghost-entry fix: put
// reclaims expired entries from the LRU tail instead of letting a churning
// (e.g. version-keyed) key population pin dead responses until capacity
// eviction, and len counts only live entries.
func TestResultCachePutSweepsExpiredGhosts(t *testing.T) {
	clock := time.Unix(1_700_000_000, 0)
	c := newResultCache(100, time.Second, func() time.Time { return clock })
	resp := &Response{Kind: VizHeatmap}
	key := func(i int) ResultKey { return ResultKey{SQL: "q" + strconv.Itoa(i)} }

	for i := 0; i < 3; i++ {
		c.put(key(i), resp)
	}
	clock = clock.Add(2 * time.Second) // all three expire

	// len excludes expired entries even before anything sweeps them.
	if got := c.len(); got != 0 {
		t.Errorf("len = %d with only expired entries, want 0", got)
	}
	if got := c.lru.Len(); got != 3 {
		t.Fatalf("lru holds %d ghosts pre-sweep, want 3", got)
	}

	// One put reclaims the whole expired tail.
	c.put(key(3), resp)
	if got := c.lru.Len(); got != 1 {
		t.Errorf("lru holds %d entries post-sweep, want 1", got)
	}
	if got := len(c.entries); got != 1 {
		t.Errorf("entries map holds %d post-sweep, want 1", got)
	}
	if c.get(key(3)) == nil {
		t.Error("live entry swept")
	}
	if c.get(key(0)) != nil {
		t.Error("expired entry served")
	}

	// The sweep stops at the first live entry: a live head survives puts.
	clock = clock.Add(2 * time.Second) // key(3) expires
	c.put(key(4), resp)
	c.put(key(5), resp)
	if got, want := c.len(), 2; got != want {
		t.Errorf("len = %d, want %d", got, want)
	}
}

// TestResultKeyHashGridPacking pins the grid-packing fix: GridW and GridH
// are masked to 32 bits before packing, so their bit ranges cannot overlap,
// and the data version participates in the hash.
func TestResultKeyHashGridPacking(t *testing.T) {
	if strconv.IntSize < 64 {
		t.Skip("grid overflow packing needs 64-bit int")
	}
	base := ResultKey{SQL: "SELECT x", Kind: VizHeatmap, Budget: 500}
	a, b := base, base
	a.GridW, a.GridH = 1, 0
	b.GridW, b.GridH = 0, int(int64(1)<<32) // pre-fix: packs onto GridW's bits
	if a.Hash() == b.Hash() {
		t.Error("GridH overflowed into GridW's bit range")
	}
	c, d := base, base
	c.GridW, c.GridH = 16, 8
	d.GridW, d.GridH = 8, 16
	if c.Hash() == d.Hash() {
		t.Error("transposed grids collide")
	}
	v0, v1 := base, base
	v1.DataVersion = 1
	if v0.Hash() == v1.Hash() {
		t.Error("data version does not participate in the hash")
	}
}

// TestPlanCacheVersionKeyed: a flush retires pre-flush plan-cache contexts —
// the post-flush request re-plans against fresh ground truth instead of
// reusing a stale context.
func TestPlanCacheVersionKeyed(t *testing.T) {
	s := freshIngestServer(t, ServerConfig{DefaultBudgetMs: 500})
	stream, err := workload.NewIngestStream(s.DS, 5)
	if err != nil {
		t.Fatal(err)
	}
	req := validRequest()
	if _, err := s.Handle(req); err != nil {
		t.Fatal(err)
	}
	misses := s.metrics.planMisses.Load()
	if _, err := s.Handle(req); err != nil {
		t.Fatal(err)
	}
	if got := s.metrics.planMisses.Load(); got != misses {
		t.Fatalf("repeat at same version re-planned (misses %d → %d)", misses, got)
	}
	if _, err := s.Ingest(stream.Next(16), true); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Handle(req); err != nil {
		t.Fatal(err)
	}
	if got := s.metrics.planMisses.Load(); got != misses+1 {
		t.Errorf("post-flush plan misses = %d, want %d (stale context reused)", got, misses+1)
	}
}
