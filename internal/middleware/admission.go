package middleware

import (
	"container/heap"
	"sync"
	"time"
)

// admitVerdict is the outcome of an admission attempt.
type admitVerdict int

const (
	// admitOK: a worker slot was acquired; the caller must release it.
	admitOK admitVerdict = iota
	// admitBusy: all slots taken and the wait queue is full — shed load
	// immediately (HTTP 429).
	admitBusy
	// admitTimeout: the request queued but its deadline expired before a
	// slot freed up (HTTP 503); running it now would blow the budget anyway.
	admitTimeout
)

// waiter is one queued request: its admission deadline (now + the
// budget-derived wait), an arrival sequence number for FIFO tie-breaking,
// and the channel a freed slot is handed over on.
type waiter struct {
	deadline time.Time
	seq      uint64
	ch       chan struct{}
	index    int // heap position; -1 once off the queue
	granted  bool
}

// waiterQueue is a min-heap ordered by deadline (tightest first), FIFO
// within equal deadlines.
type waiterQueue []*waiter

func (q waiterQueue) Len() int { return len(q) }
func (q waiterQueue) Less(i, j int) bool {
	if !q[i].deadline.Equal(q[j].deadline) {
		return q[i].deadline.Before(q[j].deadline)
	}
	return q[i].seq < q[j].seq
}
func (q waiterQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index, q[j].index = i, j
}
func (q *waiterQueue) Push(x any) {
	w := x.(*waiter)
	w.index = len(*q)
	*q = append(*q, w)
}
func (q *waiterQueue) Pop() any {
	old := *q
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.index = -1
	*q = old[:n-1]
	return w
}

// admission is a bounded worker pool with a bounded, budget-aware wait
// queue: at most `capacity` requests execute concurrently and at most
// `maxQueue` more wait. Unlike a FIFO channel, the queue is a deadline
// priority queue — freed slots go to the waiter with the tightest
// still-feasible deadline, and waiters whose budgets have already expired
// are shed first (skipped on handoff and pruned to make room), so goodput
// under sustained overload favors requests that can still meet their
// budgets. Everything beyond queue capacity is rejected instantly.
//
// A second, strictly lower-priority lane admits speculative prefetches
// (acquirePrefetch): a prefetch is admitted only out of idle capacity —
// more than `reserve` slots free and no live waiter queued — and a freed
// slot is always offered to every feasible live waiter before any prefetch
// waiter. Prefetch waiters never count against the live queue bound, so a
// prefetch can never turn a live request's admission verdict into a 429,
// and the reserve slot keeps at least one slot a live request can take
// without waiting behind speculative work.
type admission struct {
	mu       sync.Mutex
	capacity int // total worker slots
	free     int // slots not currently held
	reserve  int // slots never granted to the prefetch lane
	maxQueue int
	queue    waiterQueue
	// prefetchQ is the prefetch lane's own (bounded) deadline queue; its
	// waiters are shed first and served last.
	prefetchQ   waiterQueue
	maxPrefetch int
	// prefetchHeld counts slots currently held by admitted prefetches;
	// maxHeld caps it well below capacity so speculative executions can
	// occupy at most a sliver of the pool — without the cap a burst of
	// admitted prefetches holds capacity-reserve slots for a full execution
	// and live requests queue behind speculative work.
	prefetchHeld int
	maxHeld      int
	seq          uint64
	// now is the deadline clock (tests); timers still use real time.
	now func() time.Time
}

// defaultPrefetchQueue bounds the prefetch lane's wait queue when the
// configuration doesn't say otherwise. Prefetches are cheap to shed (the
// predictor re-issues equivalent ones every step), so the bound is modest.
const defaultPrefetchQueue = 64

// newAdmission sizes the pool. capacity <= 0 disables admission control
// (returns nil; the nil methods admit everything). prefetchQueue bounds the
// prefetch lane's waiters: 0 picks the default, negative disables queuing
// (prefetches are then admitted only against instantly-free idle capacity).
func newAdmission(capacity, maxQueue, prefetchQueue int) *admission {
	if capacity <= 0 {
		return nil
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	if prefetchQueue == 0 {
		prefetchQueue = defaultPrefetchQueue
	}
	if prefetchQueue < 0 {
		prefetchQueue = 0
	}
	maxHeld := capacity / 4
	if maxHeld < 1 {
		maxHeld = 1
	}
	return &admission{capacity: capacity, free: capacity, reserve: 1, maxQueue: maxQueue, maxPrefetch: prefetchQueue, maxHeld: maxHeld, now: time.Now}
}

// acquire tries to take a worker slot, waiting at most wait (the request's
// budget-derived deadline). A nil admission always admits.
func (a *admission) acquire(wait time.Duration) admitVerdict {
	if a == nil {
		return admitOK
	}
	now := a.now()
	a.mu.Lock()
	if a.free > 0 {
		a.free--
		a.mu.Unlock()
		return admitOK
	}
	// Queue full? Shed already-expired waiters first — they cannot meet
	// their budgets anyway — and only reject the newcomer if the queue is
	// still full of in-budget requests.
	if len(a.queue) >= a.maxQueue {
		shedExpired(&a.queue, now)
		if len(a.queue) >= a.maxQueue {
			a.mu.Unlock()
			return admitBusy
		}
	}
	if wait <= 0 {
		a.mu.Unlock()
		return admitTimeout
	}
	w := &waiter{deadline: now.Add(wait), seq: a.seq, ch: make(chan struct{})}
	a.seq++
	heap.Push(&a.queue, w)
	a.mu.Unlock()

	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-w.ch:
		return admitOK
	case <-timer.C:
		a.mu.Lock()
		if w.granted {
			// release handed us a slot in the same instant the timer fired;
			// the slot is ours, so serve the request rather than strand it.
			a.mu.Unlock()
			return admitOK
		}
		if w.index >= 0 {
			heap.Remove(&a.queue, w.index)
		}
		a.mu.Unlock()
		return admitTimeout
	}
}

// acquirePrefetch tries to take a worker slot for a speculative prefetch.
// Admission comes only from idle capacity: more than `reserve` slots free
// and no live waiter queued. Otherwise the prefetch queues in its own
// bounded lane (shed first, served last) for at most wait. A nil admission
// always admits.
func (a *admission) acquirePrefetch(wait time.Duration) admitVerdict {
	if a == nil {
		return admitOK
	}
	now := a.now()
	a.mu.Lock()
	if a.free > a.reserve && len(a.queue) == 0 && a.prefetchHeld < a.maxHeld {
		a.free--
		a.prefetchHeld++
		a.mu.Unlock()
		return admitOK
	}
	shedExpired(&a.prefetchQ, now)
	if len(a.prefetchQ) >= a.maxPrefetch {
		a.mu.Unlock()
		return admitBusy
	}
	if wait <= 0 {
		a.mu.Unlock()
		return admitTimeout
	}
	w := &waiter{deadline: now.Add(wait), seq: a.seq, ch: make(chan struct{})}
	a.seq++
	heap.Push(&a.prefetchQ, w)
	a.mu.Unlock()

	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-w.ch:
		return admitOK
	case <-timer.C:
		a.mu.Lock()
		if w.granted {
			a.mu.Unlock()
			return admitOK
		}
		if w.index >= 0 {
			heap.Remove(&a.prefetchQ, w.index)
		}
		a.mu.Unlock()
		return admitTimeout
	}
}

// shedExpired drops waiters whose deadlines have passed. Their own timers
// report admitTimeout to them; shedding only frees queue capacity. Caller
// holds the admission mutex.
func shedExpired(q *waiterQueue, now time.Time) {
	for len(*q) > 0 && now.After((*q)[0].deadline) {
		heap.Pop(q)
	}
}

// release returns a slot taken by a successful acquire: the tightest-
// deadline live waiter still within budget gets it directly; expired
// waiters are shed on the way. With no feasible live waiter, a queued
// prefetch gets the slot — but only when handing it over still leaves the
// reserve free (idle capacity) and the prefetch hold cap isn't reached.
// Otherwise the slot goes back to the pool.
func (a *admission) release() { a.releaseSlot(false) }

// releasePrefetch returns a slot taken by a successful acquirePrefetch,
// additionally freeing the caller's entry in the prefetch hold count.
func (a *admission) releasePrefetch() { a.releaseSlot(true) }

func (a *admission) releaseSlot(heldByPrefetch bool) {
	if a == nil {
		return
	}
	now := a.now()
	a.mu.Lock()
	if heldByPrefetch {
		a.prefetchHeld--
	}
	for len(a.queue) > 0 {
		w := heap.Pop(&a.queue).(*waiter)
		if now.After(w.deadline) {
			continue // shed: its timer delivers admitTimeout
		}
		w.granted = true
		close(w.ch)
		a.mu.Unlock()
		return
	}
	if a.free >= a.reserve && a.prefetchHeld < a.maxHeld {
		for len(a.prefetchQ) > 0 {
			w := heap.Pop(&a.prefetchQ).(*waiter)
			if now.After(w.deadline) {
				continue
			}
			w.granted = true
			a.prefetchHeld++
			close(w.ch)
			a.mu.Unlock()
			return
		}
	}
	a.free++
	a.mu.Unlock()
}

// queueLen reports the current number of queued live waiters (for tests).
func (a *admission) queueLen() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queue)
}

// livePressure reports whether any live request currently holds a slot or
// waits for one. The background-yield hook polls this: speculative work
// parks while it's true, which is what turns "prefetch uses idle capacity
// only" from an admission-time rule into a CPU-time one. A nil admission
// never reports pressure.
func (a *admission) livePressure() bool {
	if a == nil {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return (a.capacity-a.free)-a.prefetchHeld > 0 || len(a.queue) > 0
}

// queueDepths reports the current live and prefetch queue depths — the
// per-lane admission gauge /metrics exposes.
func (a *admission) queueDepths() (live, prefetch int) {
	if a == nil {
		return 0, 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queue), len(a.prefetchQ)
}
