package middleware

import (
	"container/heap"
	"sync"
	"time"
)

// admitVerdict is the outcome of an admission attempt.
type admitVerdict int

const (
	// admitOK: a worker slot was acquired; the caller must release it.
	admitOK admitVerdict = iota
	// admitBusy: all slots taken and the wait queue is full — shed load
	// immediately (HTTP 429).
	admitBusy
	// admitTimeout: the request queued but its deadline expired before a
	// slot freed up (HTTP 503); running it now would blow the budget anyway.
	admitTimeout
)

// waiter is one queued request: its admission deadline (now + the
// budget-derived wait), an arrival sequence number for FIFO tie-breaking,
// and the channel a freed slot is handed over on.
type waiter struct {
	deadline time.Time
	seq      uint64
	ch       chan struct{}
	index    int // heap position; -1 once off the queue
	granted  bool
}

// waiterQueue is a min-heap ordered by deadline (tightest first), FIFO
// within equal deadlines.
type waiterQueue []*waiter

func (q waiterQueue) Len() int { return len(q) }
func (q waiterQueue) Less(i, j int) bool {
	if !q[i].deadline.Equal(q[j].deadline) {
		return q[i].deadline.Before(q[j].deadline)
	}
	return q[i].seq < q[j].seq
}
func (q waiterQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index, q[j].index = i, j
}
func (q *waiterQueue) Push(x any) {
	w := x.(*waiter)
	w.index = len(*q)
	*q = append(*q, w)
}
func (q *waiterQueue) Pop() any {
	old := *q
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.index = -1
	*q = old[:n-1]
	return w
}

// admission is a bounded worker pool with a bounded, budget-aware wait
// queue: at most `capacity` requests execute concurrently and at most
// `maxQueue` more wait. Unlike a FIFO channel, the queue is a deadline
// priority queue — freed slots go to the waiter with the tightest
// still-feasible deadline, and waiters whose budgets have already expired
// are shed first (skipped on handoff and pruned to make room), so goodput
// under sustained overload favors requests that can still meet their
// budgets. Everything beyond queue capacity is rejected instantly.
type admission struct {
	mu       sync.Mutex
	free     int // slots not currently held
	maxQueue int
	queue    waiterQueue
	seq      uint64
	// now is the deadline clock (tests); timers still use real time.
	now func() time.Time
}

// newAdmission sizes the pool. capacity <= 0 disables admission control
// (returns nil; the nil methods admit everything).
func newAdmission(capacity, maxQueue int) *admission {
	if capacity <= 0 {
		return nil
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{free: capacity, maxQueue: maxQueue, now: time.Now}
}

// acquire tries to take a worker slot, waiting at most wait (the request's
// budget-derived deadline). A nil admission always admits.
func (a *admission) acquire(wait time.Duration) admitVerdict {
	if a == nil {
		return admitOK
	}
	now := a.now()
	a.mu.Lock()
	if a.free > 0 {
		a.free--
		a.mu.Unlock()
		return admitOK
	}
	// Queue full? Shed already-expired waiters first — they cannot meet
	// their budgets anyway — and only reject the newcomer if the queue is
	// still full of in-budget requests.
	if len(a.queue) >= a.maxQueue {
		a.shedExpiredLocked(now)
		if len(a.queue) >= a.maxQueue {
			a.mu.Unlock()
			return admitBusy
		}
	}
	if wait <= 0 {
		a.mu.Unlock()
		return admitTimeout
	}
	w := &waiter{deadline: now.Add(wait), seq: a.seq, ch: make(chan struct{})}
	a.seq++
	heap.Push(&a.queue, w)
	a.mu.Unlock()

	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-w.ch:
		return admitOK
	case <-timer.C:
		a.mu.Lock()
		if w.granted {
			// release handed us a slot in the same instant the timer fired;
			// the slot is ours, so serve the request rather than strand it.
			a.mu.Unlock()
			return admitOK
		}
		if w.index >= 0 {
			heap.Remove(&a.queue, w.index)
		}
		a.mu.Unlock()
		return admitTimeout
	}
}

// shedExpiredLocked drops waiters whose deadlines have passed. Their own
// timers report admitTimeout to them; shedding only frees queue capacity.
func (a *admission) shedExpiredLocked(now time.Time) {
	for len(a.queue) > 0 && now.After(a.queue[0].deadline) {
		heap.Pop(&a.queue)
	}
}

// release returns a slot taken by a successful acquire: the tightest-
// deadline waiter still within budget gets it directly; expired waiters are
// shed on the way. With no feasible waiter the slot goes back to the pool.
func (a *admission) release() {
	if a == nil {
		return
	}
	now := a.now()
	a.mu.Lock()
	for len(a.queue) > 0 {
		w := heap.Pop(&a.queue).(*waiter)
		if now.After(w.deadline) {
			continue // shed: its timer delivers admitTimeout
		}
		w.granted = true
		close(w.ch)
		a.mu.Unlock()
		return
	}
	a.free++
	a.mu.Unlock()
}

// queueLen reports the current number of queued waiters (for tests).
func (a *admission) queueLen() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queue)
}
