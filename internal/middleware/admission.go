package middleware

import (
	"sync/atomic"
	"time"
)

// admitVerdict is the outcome of an admission attempt.
type admitVerdict int

const (
	// admitOK: a worker slot was acquired; the caller must release it.
	admitOK admitVerdict = iota
	// admitBusy: all slots taken and the wait queue is full — shed load
	// immediately (HTTP 429).
	admitBusy
	// admitTimeout: the request queued but its deadline expired before a
	// slot freed up (HTTP 503); running it now would blow the budget anyway.
	admitTimeout
)

// admission is a bounded worker pool with a bounded wait queue: at most
// `capacity` requests execute concurrently, at most `maxQueue` more wait,
// and each waiter gives up after its own deadline. Everything beyond that
// is rejected instantly, so the server sheds load instead of queueing
// unboundedly — tail latency stays bounded under overload.
type admission struct {
	slots    chan struct{}
	queued   atomic.Int64
	maxQueue int64
}

// newAdmission sizes the pool. capacity <= 0 disables admission control
// (returns nil; the nil methods admit everything).
func newAdmission(capacity, maxQueue int) *admission {
	if capacity <= 0 {
		return nil
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	a := &admission{slots: make(chan struct{}, capacity), maxQueue: int64(maxQueue)}
	for i := 0; i < capacity; i++ {
		a.slots <- struct{}{}
	}
	return a
}

// acquire tries to take a worker slot, waiting at most wait. A nil admission
// always admits.
func (a *admission) acquire(wait time.Duration) admitVerdict {
	if a == nil {
		return admitOK
	}
	select {
	case <-a.slots:
		return admitOK
	default:
	}
	// Slow path: join the bounded queue.
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return admitBusy
	}
	defer a.queued.Add(-1)
	if wait <= 0 {
		return admitTimeout
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-a.slots:
		return admitOK
	case <-timer.C:
		return admitTimeout
	}
}

// release returns a slot taken by a successful acquire.
func (a *admission) release() {
	if a == nil {
		return
	}
	a.slots <- struct{}{}
}
