package middleware

import (
	"sync/atomic"
	"time"

	"github.com/maliva/maliva/internal/core"
)

// defaultCacheShards splits each cache into this many independently-locked
// shards unless ServerConfig.CacheShards says otherwise. 16 shards keep
// lock hold times negligible well past the core counts the load generator
// reaches, while the per-shard LRUs stay large enough to behave like one
// global LRU for skewed traffic.
const defaultCacheShards = 16

// fnv64 hashes a string key to its shard.
func fnv64(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mixShard folds one value into a running hash (FNV-style multiply-xor).
func mixShard(h, v uint64) uint64 {
	h ^= v
	h *= 1099511628211
	return h
}

// shardCounts resolves the (shards, per-shard capacity) split for a total
// capacity: capacity is divided evenly, rounding up, and the shard count
// never exceeds the capacity so tiny caches don't degenerate into
// one-entry shards beyond their total budget.
func shardCounts(capacity, shards int) (int, int) {
	if shards <= 0 {
		shards = defaultCacheShards
	}
	if shards > capacity {
		shards = capacity
	}
	per := (capacity + shards - 1) / shards
	return shards, per
}

// shardedPlanCache is the plan cache the Server actually uses: N
// independently-locked planCache shards selected by key hash, so
// cross-dataset gateway traffic (and high-core single-dataset traffic)
// doesn't serialize on one mutex. Single-flight coalescing is per shard,
// which is exactly per key.
type shardedPlanCache struct {
	shards []*planCache
}

// newShardedPlanCache builds a sharded cache with ~capacity total entries.
// capacity <= 0 disables caching (nil cache: get always builds), matching
// planCache semantics.
func newShardedPlanCache(capacity, shards int) *shardedPlanCache {
	if capacity <= 0 {
		return nil
	}
	n, per := shardCounts(capacity, shards)
	c := &shardedPlanCache{shards: make([]*planCache, n)}
	for i := range c.shards {
		c.shards[i] = newPlanCache(per)
	}
	return c
}

func (c *shardedPlanCache) get(key string, live bool, build func(*atomic.Bool) (*core.QueryContext, error)) (*planEntry, planResult, error) {
	if c == nil {
		return (*planCache)(nil).get(key, live, build)
	}
	return c.shards[fnv64(key)%uint64(len(c.shards))].get(key, live, build)
}

// len sums the shard sizes (for tests).
func (c *shardedPlanCache) len() int {
	if c == nil {
		return 0
	}
	n := 0
	for _, s := range c.shards {
		n += s.len()
	}
	return n
}

// shardedResultCache shards the TTL'd response cache the same way. It is
// the built-in ResultCache implementation; a nil *shardedResultCache is the
// disabled cache (Get misses, Put drops) and still satisfies the interface.
type shardedResultCache struct {
	shards []*resultCache
}

// newShardedResultCache builds a sharded cache with ~capacity total
// responses. capacity <= 0 disables caching.
func newShardedResultCache(capacity, shards int, ttl time.Duration, now func() time.Time) *shardedResultCache {
	if capacity <= 0 {
		return nil
	}
	n, per := shardCounts(capacity, shards)
	c := &shardedResultCache{shards: make([]*resultCache, n)}
	for i := range c.shards {
		c.shards[i] = newResultCache(per, ttl, now)
	}
	return c
}

func (c *shardedResultCache) shard(key ResultKey) *resultCache {
	return c.shards[key.Hash()%uint64(len(c.shards))]
}

// Get implements ResultCache.
func (c *shardedResultCache) Get(key ResultKey) *Response {
	if c == nil {
		return nil
	}
	return c.shard(key).get(key)
}

// Put implements ResultCache.
func (c *shardedResultCache) Put(key ResultKey, resp *Response) {
	if c == nil {
		return
	}
	c.shard(key).put(key, resp)
}

// Len sums the shard sizes.
func (c *shardedResultCache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for _, s := range c.shards {
		n += s.len()
	}
	return n
}
