package middleware

import (
	"encoding/json"
	"math"
	"testing"
	"time"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/engine"
)

// approxServers builds two servers over one sketch-bearing dataset, both
// planning over the approximate tier with the quality oracle: the subject
// (full caching) and a cache-less reference that always executes. Determinism
// of the tier means the two must produce byte-identical answers for any
// request either way it is served.
func approxServers(t *testing.T) (subject, reference *Server) {
	t.Helper()
	ds := testDataset(t)
	if _, err := ds.DB.Table(ds.Main).BuildSketch("text", "created_at", 24*time.Hour); err != nil {
		t.Fatal(err)
	}
	subject, err := NewServerWithConfig(ds, core.QualityOracle{}, core.ApproxTierSpec(),
		ServerConfig{DefaultBudgetMs: 500})
	if err != nil {
		t.Fatal(err)
	}
	reference, err = NewServerWithConfig(ds, core.QualityOracle{}, core.ApproxTierSpec(),
		ServerConfig{DefaultBudgetMs: 500, DisableSubsumption: true, PlanCacheSize: -1, ResultCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	return subject, reference
}

// approxWindowReq is the shared keyword+time-window request shape (no region,
// so the sketch rules stay eligible for aggregate kinds).
func approxWindowReq(kind VizKind, keyword string, budget float64) Request {
	return Request{
		Keyword:  keyword,
		From:     time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC),
		To:       time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC),
		Kind:     kind,
		BudgetMs: budget,
	}
}

// tightBudgetMs sits above the 2ms virtual startup floor (so the cheap
// approximate actions stay feasible) but far below any exact row-touching
// plan at the fixture's 12500x scale factor.
const tightBudgetMs = 12

// assertWithinStatedError checks an approximate aggregate against the exact
// answer under its own stated error contract. The slack multipliers are
// generous (the fixtures are fixed-seed, so any pass is a permanent pass) but
// still tight enough that a broken estimator cannot hide.
func assertWithinStatedError(t *testing.T, meta *ApproxMeta, got, exact float64) {
	t.Helper()
	switch meta.Method {
	case "cms":
		if got < exact-1e-9 || got > exact+meta.CIHalfWidth+1e-9 {
			t.Errorf("cms estimate %v outside [exact, exact+bound] = [%v, %v]", got, exact, exact+meta.CIHalfWidth)
		}
	case "rows", "sample":
		slack := 2.5 * meta.CIHalfWidth // ~5σ of the stated 1.96σ interval
		if math.Abs(got-exact) > slack {
			t.Errorf("%s estimate %v vs exact %v: off by %v, stated CI half-width %v",
				meta.Method, got, exact, math.Abs(got-exact), meta.CIHalfWidth)
		}
	case "reservoir":
		if got != exact {
			t.Errorf("reservoir count %v != exact %v (the matched count must be exact)", got, exact)
		}
	case "hll":
		if math.Abs(got-exact) > 2*meta.CIHalfWidth+1e-9 {
			t.Errorf("hll estimate %v vs exact %v: off by %v, stated CI half-width %v",
				got, exact, math.Abs(got-exact), meta.CIHalfWidth)
		}
	case "limit":
		if got > exact+1e-9 {
			t.Errorf("limit-truncated count %v exceeds exact %v", got, exact)
		}
	default:
		t.Errorf("unknown approximation method %q", meta.Method)
	}
}

// TestCountServingExactAndApprox: a count request answers exactly under a
// generous budget (no approximate marker, value agreeing with the cache-less
// reference) and approximately under a tight one — marked, carrying an error
// contract the exact answer actually satisfies, and counted by the
// approx-served metric.
func TestCountServingExactAndApprox(t *testing.T) {
	subject, reference := approxServers(t)

	exactResp, err := subject.Handle(approxWindowReq(VizCount, "word0003", 1e6))
	if err != nil {
		t.Fatal(err)
	}
	if exactResp.Approximate || exactResp.Approx != nil {
		t.Fatalf("generous-budget count marked approximate (option %s)", exactResp.Trace.Option)
	}
	if exactResp.Value == nil {
		t.Fatal("count response missing value")
	}
	refResp, err := reference.Handle(approxWindowReq(VizCount, "word0003", 1e6))
	if err != nil {
		t.Fatal(err)
	}
	if *refResp.Value != *exactResp.Value {
		t.Fatalf("exact count diverged between servers: %v vs %v", *exactResp.Value, *refResp.Value)
	}

	before := subject.Metrics().Snapshot().ApproxServed
	apResp, err := subject.Handle(approxWindowReq(VizCount, "word0003", tightBudgetMs))
	if err != nil {
		t.Fatal(err)
	}
	if !apResp.Approximate || apResp.Approx == nil {
		t.Fatalf("tight-budget count (option %s, %v exec ms) not served approximately — no exact plan should fit %vms",
			apResp.Trace.Option, apResp.Trace.ExecMs, float64(tightBudgetMs))
	}
	if apResp.Value == nil {
		t.Fatal("approximate count response missing value")
	}
	if apResp.Approx.Fingerprint == "" {
		t.Error("approximate response carries no fingerprint")
	}
	assertWithinStatedError(t, apResp.Approx, *apResp.Value, *exactResp.Value)
	if got := subject.Metrics().Snapshot().ApproxServed - before; got != 1 {
		t.Errorf("approx_served counted %d, want 1", got)
	}
}

// TestDistinctServingExactAndHLL: distinct-words requests — exact under a
// generous budget, HLL-sketch-served under a tight one, with the HLL estimate
// inside its stated interval of the exact answer. The time window is snapped
// to the sketch's bucket lattice at planning time, so both arms count the
// same row set.
func TestDistinctServingExactAndHLL(t *testing.T) {
	subject, reference := approxServers(t)
	req := approxWindowReq(VizDistinct, "", 1e6) // no keyword: the HLL shape

	exactResp, err := subject.Handle(req)
	if err != nil {
		t.Fatal(err)
	}
	if exactResp.Approximate {
		t.Fatalf("generous-budget distinct marked approximate (option %s)", exactResp.Trace.Option)
	}
	if exactResp.Value == nil || *exactResp.Value <= 0 {
		t.Fatalf("exact distinct value = %v, want positive", exactResp.Value)
	}
	refResp, err := reference.Handle(req)
	if err != nil {
		t.Fatal(err)
	}
	if *refResp.Value != *exactResp.Value {
		t.Fatalf("exact distinct diverged between servers: %v vs %v", *exactResp.Value, *refResp.Value)
	}

	req.BudgetMs = tightBudgetMs
	apResp, err := subject.Handle(req)
	if err != nil {
		t.Fatal(err)
	}
	if !apResp.Approximate || apResp.Approx == nil {
		t.Fatalf("tight-budget distinct (option %s) not served approximately", apResp.Trace.Option)
	}
	if apResp.Approx.Method != "hll" {
		t.Fatalf("tight-budget distinct used method %q, want hll (the only rule in the distinct space)", apResp.Approx.Method)
	}
	assertWithinStatedError(t, apResp.Approx, *apResp.Value, *exactResp.Value)
}

// TestDistinctWithoutTextColumn: a distinct request against a dataset with no
// text column is a client error, not a panic or a zero.
func TestDistinctWithoutTextColumn(t *testing.T) {
	ds := testDataset(t)
	srv, err := NewServer(ds, core.QualityOracle{}, core.ApproxTierSpec(), 500)
	if err != nil {
		t.Fatal(err)
	}
	srv.textCol = "" // simulate a text-less dataset without building one
	if _, err := srv.Handle(approxWindowReq(VizDistinct, "", 1e6)); err == nil {
		t.Fatal("distinct request on a text-less dataset succeeded")
	}
}

// TestApproxDeterministicAcrossServers: two independent serving stacks over
// the same data answer a tight-budget (approximate) request byte-identically
// — the serving-layer face of the (seed, fingerprint, data-version)
// determinism contract.
func TestApproxDeterministicAcrossServers(t *testing.T) {
	subject, reference := approxServers(t)
	for _, kind := range []VizKind{VizHeatmap, VizCount} {
		req := approxWindowReq(kind, "word0003", tightBudgetMs)
		a, err := subject.Handle(req)
		if err != nil {
			t.Fatal(err)
		}
		b, err := reference.Handle(req)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Approximate {
			t.Fatalf("%s: tight-budget request not approximate (option %s)", kind, a.Trace.Option)
		}
		ab, _ := json.Marshal(a)
		bb, _ := json.Marshal(b)
		if string(ab) != string(bb) {
			t.Fatalf("%s: approximate answers diverged across servers\none: %s\ntwo: %s", kind, ab, bb)
		}
	}
}

// TestApproxKeysNeverAnswerExact: the result cache treats fidelity as part of
// identity — an entry stored under an approximate key is unreachable from the
// exact spelling of the same request, and the two keys hash apart.
func TestApproxKeysNeverAnswerExact(t *testing.T) {
	c := newResultCache(8, time.Minute, nil)
	approxKey := ResultKey{SQL: "SELECT 1", Kind: VizCount, Budget: 10, DataVersion: 3, Approx: "rows:0.2:0"}
	exactKey := approxKey
	exactKey.Approx = ""
	v := 7.0
	c.put(approxKey, &Response{Kind: VizCount, Value: &v, Approximate: true})
	if got := c.get(exactKey); got != nil {
		t.Fatal("exact key returned an approximate entry")
	}
	if got := c.get(approxKey); got == nil || !got.Approximate {
		t.Fatal("approximate entry not retrievable under its own key")
	}
	if approxKey.Hash() == exactKey.Hash() {
		t.Fatal("approximate and exact keys hash identically")
	}
}

// TestCoarserGridNotSubsumed is the regression pin for the subsumption
// alignment contract: a cached finer-celled parent must never answer a
// coarser-celled request over the same region (aggregating 2×2 parent cells
// would re-sum floats in an order direct execution never uses), and a
// finer-celled request must not be answered either. Both must execute and
// match direct execution byte for byte.
func TestCoarserGridNotSubsumed(t *testing.T) {
	subject, reference := subsumeServers(t)
	ext := subject.DS.Extent
	parent := Request{
		Keyword: "word0003",
		From:    time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC),
		To:      time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC),
		Region:  ext, Kind: VizHeatmap, GridW: 32, GridH: 16, BudgetMs: 500,
	}
	if _, err := subject.Handle(parent); err != nil {
		t.Fatal(err)
	}

	before := subject.Metrics().Snapshot().SubsumedHits
	for _, grid := range []struct{ w, h int }{
		{16, 8},  // coarser cells, same region: boundaries align, sizes don't
		{64, 32}, // finer cells, same region
	} {
		sub := parent
		sub.GridW, sub.GridH = grid.w, grid.h
		got, err := subject.Handle(sub)
		if err != nil {
			t.Fatal(err)
		}
		want, err := reference.Handle(sub)
		if err != nil {
			t.Fatal(err)
		}
		gb, _ := json.Marshal(got)
		wb, _ := json.Marshal(want)
		if string(gb) != string(wb) {
			t.Fatalf("%dx%d regrid diverged from direct execution\ngot:  %s\nwant: %s", grid.w, grid.h, gb, wb)
		}
	}
	if hits := subject.Metrics().Snapshot().SubsumedHits - before; hits != 0 {
		t.Fatalf("a regridded request was answered by slicing a different-cell-size parent (%d subsumed hits)", hits)
	}
}

// TestApproxRequestsSkipSubsumption: approximate heatmaps neither slice nor
// get sliced. A Bernoulli sample's seed derives from the query fingerprint —
// which embeds the region predicate — so a parent's kept rows restricted to a
// sub-window are not the sub-request's sample; the only correct answer is
// direct execution, which must stay byte-identical to the cache-less path.
func TestApproxRequestsSkipSubsumption(t *testing.T) {
	subject, reference := approxServers(t)
	ext := subject.DS.Extent
	parent := approxWindowReq(VizHeatmap, "word0003", tightBudgetMs)
	parent.Region, parent.GridW, parent.GridH = ext, 32, 16
	pResp, err := subject.Handle(parent)
	if err != nil {
		t.Fatal(err)
	}
	if !pResp.Approximate {
		t.Fatalf("tight-budget parent heatmap not approximate (option %s) — the test premise is broken", pResp.Trace.Option)
	}

	before := subject.Metrics().Snapshot().SubsumedHits
	cellW := (ext.MaxLon - ext.MinLon) / 32
	cellH := (ext.MaxLat - ext.MinLat) / 16
	sub := parent
	sub.GridW, sub.GridH = 16, 8
	sub.Region = engine.Rect{
		MinLon: ext.MinLon + 4*cellW, MinLat: ext.MinLat + 2*cellH,
		MaxLon: ext.MinLon + 20*cellW, MaxLat: ext.MinLat + 10*cellH,
	}
	got, err := subject.Handle(sub)
	if err != nil {
		t.Fatal(err)
	}
	want, err := reference.Handle(sub)
	if err != nil {
		t.Fatal(err)
	}
	gb, _ := json.Marshal(got)
	wb, _ := json.Marshal(want)
	if string(gb) != string(wb) {
		t.Fatalf("approximate sub-request diverged from direct execution\ngot:  %s\nwant: %s", gb, wb)
	}
	if hits := subject.Metrics().Snapshot().SubsumedHits - before; hits != 0 {
		t.Fatalf("an approximate request took the containment path (%d subsumed hits)", hits)
	}
}
