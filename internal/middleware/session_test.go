package middleware

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/engine"
	"github.com/maliva/maliva/internal/workload"
)

// sessReq builds a heatmap request over a lattice tile of the unit extent:
// zoom z splits each axis into 2^z tiles; (tx, ty) picks the tile.
func sessReq(ext engine.Rect, z, tx, ty int) Request {
	n := float64(int(1) << z)
	w := (ext.MaxLon - ext.MinLon) / n
	h := (ext.MaxLat - ext.MinLat) / n
	return Request{
		Kind: VizHeatmap, GridW: 16, GridH: 16, BudgetMs: 500,
		From: time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC),
		To:   time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC),
		Region: engine.Rect{
			MinLon: ext.MinLon + float64(tx)*w, MinLat: ext.MinLat + float64(ty)*h,
			MaxLon: ext.MinLon + float64(tx+1)*w, MaxLat: ext.MinLat + float64(ty+1)*h,
		},
	}
}

// TestPredictMomentumContinuesPan: two same-zoom viewports one tile apart
// predict the next tile along the pan, snapped exactly onto the lattice.
func TestPredictMomentumContinuesPan(t *testing.T) {
	ext := engine.Rect{MinLon: 0, MinLat: 0, MaxLon: 64, MaxLat: 64}
	tr := NewSessionTracker(SessionConfig{MaxPrefetch: 1})
	if preds := tr.Observe("s1", sessReq(ext, 3, 2, 4), ext); len(preds) != 0 {
		// First observation has no momentum and MaxPrefetch=1 leaves no room
		// for the parent-tile prediction... unless the parent fits first.
		// Momentum is slot 1 only when history exists; with one slot the
		// parent prediction may take it. Accept either zero or one here.
		if len(preds) > 1 {
			t.Fatalf("first observation produced %d predictions, want <=1", len(preds))
		}
	}
	preds := tr.Observe("s1", sessReq(ext, 3, 3, 4), ext)
	if len(preds) != 1 {
		t.Fatalf("got %d predictions, want 1", len(preds))
	}
	want := sessReq(ext, 3, 4, 4).Region
	if !sameRegion(preds[0].Region, want) {
		t.Fatalf("momentum predicted %+v, want %+v", preds[0].Region, want)
	}
	if preds[0].GridW != 16 || preds[0].GridH != 16 {
		t.Fatalf("momentum prediction changed the grid: %dx%d", preds[0].GridW, preds[0].GridH)
	}
}

// TestPredictParentAligns: the zoom-out prediction is the containing lattice
// tile with a doubled grid, and its cells align exactly with the current
// viewport's (the property subsumption slicing depends on).
func TestPredictParentAligns(t *testing.T) {
	ext := engine.Rect{MinLon: 0, MinLat: 0, MaxLon: 64, MaxLat: 64}
	tr := NewSessionTracker(SessionConfig{MaxPrefetch: 2})
	cur := sessReq(ext, 3, 5, 2)
	preds := tr.Observe("s1", cur, ext)
	var parent *Request
	for i := range preds {
		if preds[i].GridW == 2*cur.GridW {
			parent = &preds[i]
		}
	}
	if parent == nil {
		t.Fatalf("no parent-tile prediction in %+v", preds)
	}
	if !parent.Region.Contains(engine.Point{Lon: cur.Region.MinLon, Lat: cur.Region.MinLat}) {
		t.Fatalf("parent %+v does not contain the viewport %+v", parent.Region, cur.Region)
	}
	if _, _, ok := gridAlign(parent.Region, parent.GridW, parent.GridH, cur.Region, cur.GridW, cur.GridH); !ok {
		t.Fatalf("parent grid does not align with the viewport: parent %+v %dx%d, cur %+v %dx%d",
			parent.Region, parent.GridW, parent.GridH, cur.Region, cur.GridW, cur.GridH)
	}
}

// TestPredictionsNeverCarryTTL: speculative entries must be reachable only
// at the current version — a prediction derived from a ttl-hinted request
// strips the hint.
func TestPredictionsNeverCarryTTL(t *testing.T) {
	ext := engine.Rect{MinLon: 0, MinLat: 0, MaxLon: 64, MaxLat: 64}
	tr := NewSessionTracker(SessionConfig{MaxPrefetch: 3})
	r1, r2 := sessReq(ext, 3, 2, 4), sessReq(ext, 3, 3, 4)
	r1.TTL, r2.TTL = 5*time.Second, 5*time.Second
	tr.Observe("s1", r1, ext)
	for _, p := range tr.Observe("s1", r2, ext) {
		if p.TTL != 0 {
			t.Fatalf("prediction carries TTL %v", p.TTL)
		}
	}
}

// TestSessionTrackerLRU: the tracker is bounded and evicts the least
// recently observed session.
func TestSessionTrackerLRU(t *testing.T) {
	ext := engine.Rect{MinLon: 0, MinLat: 0, MaxLon: 64, MaxLat: 64}
	tr := NewSessionTracker(SessionConfig{MaxSessions: 2})
	tr.Observe("a", sessReq(ext, 3, 1, 1), ext)
	tr.Observe("b", sessReq(ext, 3, 2, 1), ext)
	tr.Observe("a", sessReq(ext, 3, 1, 2), ext) // refresh a
	tr.Observe("c", sessReq(ext, 3, 3, 1), ext) // evicts b
	if tr.Len() != 2 {
		t.Fatalf("tracker holds %d sessions, want 2", tr.Len())
	}
	// b was evicted: a fresh observation of b has no momentum even after a
	// second step... instead verify directly that a survived by checking a
	// pan of "a" still yields a momentum prediction.
	preds := tr.Observe("a", sessReq(ext, 3, 1, 3), ext)
	found := false
	want := sessReq(ext, 3, 1, 4).Region
	for _, p := range preds {
		if sameRegion(p.Region, want) {
			found = true
		}
	}
	if !found {
		t.Fatal("refreshed session lost its momentum history to LRU eviction")
	}
}

// TestEncodeRequestRoundTrip: EncodeRequest and ParseRequest are inverses on
// the wire fields (the property the prefetch dispatch path depends on).
func TestEncodeRequestRoundTrip(t *testing.T) {
	req := Request{
		Keyword: "storm",
		From:    time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC),
		To:      time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC),
		Region:  engine.Rect{MinLon: -100, MinLat: 30, MaxLon: -90, MaxLat: 40},
		Kind:    VizHeatmap, GridW: 32, GridH: 16, BudgetMs: 250,
	}
	body, err := EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseRequest(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Keyword != req.Keyword || !got.From.Equal(req.From) || !got.To.Equal(req.To) ||
		got.Region != req.Region || got.Kind != req.Kind ||
		got.GridW != req.GridW || got.GridH != req.GridH || got.BudgetMs != req.BudgetMs {
		t.Fatalf("round trip diverged: %+v -> %+v", req, got)
	}
}

// TestGatewaySessionPrefetchEndToEnd drives a panning session through a
// sessions-enabled gateway and verifies the pipeline end to end: the
// observer predicts, the prefetch lane fills the cache, and the session's
// next step is served warm and counted as a prefetch hit — byte-identical
// to the same request on a sessions-disabled gateway.
func TestGatewaySessionPrefetchEndToEnd(t *testing.T) {
	reg := workload.NewRegistry()
	if err := reg.Register("twitter", tinyTwitterBuilder(8_000)); err != nil {
		t.Fatal(err)
	}
	g, err := NewGateway(reg, OracleFactory, GatewayConfig{
		Server: ServerConfig{DefaultBudgetMs: 500},
		Space:  core.HintOnlySpec(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Warm(); err != nil {
		t.Fatal(err)
	}
	srv, err := g.Server("twitter")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	ext := srv.DS.Extent
	post := func(req Request, sid string) []byte {
		t.Helper()
		body, err := EncodeRequest(req)
		if err != nil {
			t.Fatal(err)
		}
		hr, _ := http.NewRequest(http.MethodPost, ts.URL+"/viz?dataset=twitter", bytes.NewReader(body))
		hr.Header.Set("Content-Type", "application/json")
		if sid != "" {
			hr.Header.Set(SessionHeader, sid)
		}
		resp, err := http.DefaultClient.Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	// Pan east along a z4 tile row with human-ish think-time gaps. The whole
	// observe→predict→prefetch pipeline is asynchronous by design (observer
	// queue, dispatch semaphore, prefetch admission lane), so the test does
	// not pin which step gets served speculatively — it pans until some step
	// lands on a prefetched entry, bounded by a deadline.
	var trace []Request
	var bodies [][]byte
	deadline := time.Now().Add(15 * time.Second)
	for y := 8; y <= 11 && srv.Metrics().Snapshot().PrefetchHits == 0; y++ {
		for x := 1; x <= 14; x++ {
			req := sessReq(ext, 4, x, y)
			trace = append(trace, req)
			bodies = append(bodies, post(req, "sess-e2e"))
			if x >= 3 && srv.Metrics().Snapshot().PrefetchHits > 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("no pan step was ever served from a prefetched entry; snapshot %+v", srv.Metrics().Snapshot())
			}
			time.Sleep(20 * time.Millisecond) // think time the prefetch lane speculates into
		}
	}
	after := srv.Metrics().Snapshot()
	if after.PrefetchComputed == 0 || after.PrefetchHits == 0 {
		t.Fatalf("prefetch pipeline never fired: %+v", after)
	}

	// Every step of the trace — prefetched, subsumed, or executed — must be
	// byte-identical to the same request on a prefetch-less gateway.
	reg2 := workload.NewRegistry()
	if err := reg2.Register("twitter", tinyTwitterBuilder(8_000)); err != nil {
		t.Fatal(err)
	}
	g2, err := NewGateway(reg2, OracleFactory, GatewayConfig{
		Server:   ServerConfig{DefaultBudgetMs: 500, DisableSubsumption: true},
		Space:    core.HintOnlySpec(),
		Sessions: SessionConfig{Disabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Warm(); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(g2.Handler())
	defer ts2.Close()
	for i, req := range trace {
		body, _ := EncodeRequest(req)
		hr, _ := http.NewRequest(http.MethodPost, ts2.URL+"/viz?dataset=twitter", bytes.NewReader(body))
		hr.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		_, err = want.ReadFrom(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bodies[i], want.Bytes()) {
			t.Fatalf("trace step %d diverged from direct execution:\nsession:  %s\ndirect:   %s", i, bodies[i], want.Bytes())
		}
	}

	// The gateway /metrics endpoint exports the session counters.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var mbuf bytes.Buffer
	if _, err := mbuf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{
		"maliva_prefetch_issued_total",
		"maliva_prefetch_hits_total",
		"maliva_prefetch_shed_total",
		"maliva_subsumed_hits_total",
		`maliva_admission_queue_depth{lane="prefetch"}`,
	} {
		if !bytes.Contains(mbuf.Bytes(), []byte(metric)) {
			t.Fatalf("/metrics is missing %s", metric)
		}
	}
}
