package middleware

import (
	"testing"
	"time"
)

// White-box tests for the admission pool's prefetch lane. The contract under
// test: speculative work is admitted only out of idle capacity, is starved
// to zero by a saturated live workload, and can never turn a live request's
// verdict into a rejection.

// TestPrefetchIdleOnlyAdmission: a prefetch is admitted iff more than the
// reserve is free and no live waiter is queued.
func TestPrefetchIdleOnlyAdmission(t *testing.T) {
	a := newAdmission(4, 4, -1) // no prefetch queue: idle capacity or refusal
	// Fully idle: admitted.
	if v := a.acquirePrefetch(0); v != admitOK {
		t.Fatalf("idle pool refused a prefetch: %v", v)
	}
	a.releasePrefetch()

	// Two live holders leave free=2 > reserve=1: still admitted.
	if a.acquire(0) != admitOK || a.acquire(0) != admitOK {
		t.Fatal("live acquire failed on an idle pool")
	}
	if v := a.acquirePrefetch(0); v != admitOK {
		t.Fatalf("pool with idle capacity refused a prefetch: %v", v)
	}
	a.releasePrefetch()

	// Three live holders leave free=1 == reserve: refused.
	if a.acquire(0) != admitOK {
		t.Fatal("live acquire failed")
	}
	if v := a.acquirePrefetch(0); v == admitOK {
		t.Fatal("prefetch took the reserve slot")
	}
	a.release()
	a.release()
	a.release()
}

// TestPrefetchHoldCap: concurrently-held prefetch slots are capped at
// capacity/4 even when the pool is otherwise idle.
func TestPrefetchHoldCap(t *testing.T) {
	a := newAdmission(8, 8, -1) // maxHeld = 2
	if a.acquirePrefetch(0) != admitOK || a.acquirePrefetch(0) != admitOK {
		t.Fatal("idle pool refused prefetches under the hold cap")
	}
	if v := a.acquirePrefetch(0); v == admitOK {
		t.Fatal("third concurrent prefetch exceeded the hold cap on an idle pool")
	}
	a.releasePrefetch()
	if v := a.acquirePrefetch(0); v != admitOK {
		t.Fatalf("hold-cap slot not reusable after release: %v", v)
	}
	a.releasePrefetch()
	a.releasePrefetch()
}

// TestLiveStarvesPrefetchNeverReverse is the starvation direction test: under
// a saturated live workload, queued prefetches get nothing — and queued live
// requests always beat queued prefetches to freed slots.
func TestLiveStarvesPrefetchNeverReverse(t *testing.T) {
	a := newAdmission(2, 4, 4)
	// Saturate: both slots held by live requests.
	if a.acquire(0) != admitOK || a.acquire(0) != admitOK {
		t.Fatal("live acquire failed on an idle pool")
	}

	// A prefetch queues in its own lane.
	prefetchDone := make(chan admitVerdict, 1)
	go func() { prefetchDone <- a.acquirePrefetch(60 * time.Millisecond) }()
	waitFor(t, func() bool { _, p := a.queueDepths(); return p == 1 })

	// Live waiters arrive after the prefetch.
	liveDone := make(chan admitVerdict, 2)
	for i := 0; i < 2; i++ {
		go func() { liveDone <- a.acquire(time.Second) }()
	}
	waitFor(t, func() bool { l, _ := a.queueDepths(); return l == 2 })

	// Each release must go to a live waiter, never the queued prefetch
	// (handing a slot to a live waiter keeps the pool saturated, and on the
	// last release the reserve rule still shuts the prefetch out).
	a.release()
	a.release()
	for i := 0; i < 2; i++ {
		select {
		case v := <-liveDone:
			if v != admitOK {
				t.Fatalf("live waiter got %v while a prefetch was queued", v)
			}
		case <-time.After(time.Second):
			t.Fatal("live waiter starved")
		}
	}
	// The prefetch lane saw nothing and times out.
	if v := <-prefetchDone; v != admitTimeout {
		t.Fatalf("queued prefetch under saturation got %v, want admitTimeout", v)
	}
	a.release()
	a.release()
}

// TestPrefetchNeverCausesLiveRejection: prefetch waiters do not consume the
// live queue bound, and a held prefetch slot never flips a live verdict to
// admitBusy that idle capacity would have served.
func TestPrefetchNeverCausesLiveRejection(t *testing.T) {
	a := newAdmission(4, 1, 64)
	// One prefetch holds a slot; fill the prefetch queue too.
	if a.acquirePrefetch(0) != admitOK {
		t.Fatal("idle pool refused a prefetch")
	}
	for i := 0; i < 64; i++ {
		go a.acquirePrefetch(200 * time.Millisecond)
	}
	waitFor(t, func() bool { _, p := a.queueDepths(); return p == 64 })

	// Live requests still get every non-prefetch slot without queuing.
	for i := 0; i < 3; i++ {
		if v := a.acquire(0); v != admitOK {
			t.Fatalf("live acquire %d got %v with prefetch backlog present", i, v)
		}
	}
	// The pool is now genuinely full; exactly maxQueue live waiters may
	// queue regardless of the 64 queued prefetches.
	done := make(chan admitVerdict, 1)
	go func() { done <- a.acquire(time.Second) }()
	waitFor(t, func() bool { l, _ := a.queueDepths(); return l == 1 })
	// Release the prefetch slot: the queued live request takes it directly.
	a.releasePrefetch()
	if v := <-done; v != admitOK {
		t.Fatalf("queued live request got %v after a prefetch slot freed", v)
	}
	a.release()
	a.release()
	a.release()
	a.release()
}

// TestLivePressure pins the background-parking signal: live holders and live
// waiters raise it; prefetch holders alone do not.
func TestLivePressure(t *testing.T) {
	a := newAdmission(4, 4, 4)
	if a.livePressure() {
		t.Fatal("idle pool reports live pressure")
	}
	if a.acquirePrefetch(0) != admitOK {
		t.Fatal("idle pool refused a prefetch")
	}
	if a.livePressure() {
		t.Fatal("a held prefetch slot alone counts as live pressure")
	}
	if a.acquire(0) != admitOK {
		t.Fatal("live acquire failed")
	}
	if !a.livePressure() {
		t.Fatal("a held live slot does not raise live pressure")
	}
	a.release()
	if a.livePressure() {
		t.Fatal("pressure did not clear after the live release")
	}
	a.releasePrefetch()

	// A nil admission never reports pressure.
	var nilA *admission
	if nilA.livePressure() {
		t.Fatal("nil admission reports live pressure")
	}
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}
