package middleware

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/workload"
)

// RewriterFactory builds the rewriter for one dataset. The gateway calls it
// once per dataset, during warming, so an expensive factory (training an MDP
// agent) never runs on a request goroutine. Each dataset gets its own
// rewriter instance: rewriters are not required to be concurrency-safe, and
// every Server serializes only its own rewriter. name is the dataset's
// registry key (what requests pass in ?dataset=), which may differ from the
// generated dataset's display Name — factories keyed by user-facing
// configuration (e.g. per-dataset agent snapshots) should match on name.
type RewriterFactory func(name string, ds *workload.Dataset) (core.Rewriter, error)

// OracleFactory is the zero-training factory: every dataset gets the
// ground-truth Oracle rewriter.
func OracleFactory(string, *workload.Dataset) (core.Rewriter, error) {
	return core.OracleRewriter{}, nil
}

// GatewayConfig configures a multi-dataset gateway.
type GatewayConfig struct {
	// Server is the per-dataset serving template. Its MaxConcurrent and
	// MaxQueue size ONE admission budget shared by every dataset — a
	// gateway sheds load globally, not per dataset.
	Server ServerConfig
	// DefaultDataset answers requests without a ?dataset parameter.
	// Defaults to the registry's first registered name, which keeps
	// single-dataset clients (the PR 2 wire format) working unchanged.
	DefaultDataset string
	// Space is the rewrite option space every dataset serves under.
	Space core.SpaceSpec
	// WarmWorkers bounds how many datasets Warm builds concurrently
	// (dataset generation + rewriter training are the multi-dataset cold
	// start). 0 means GOMAXPROCS, 1 forces serial warmup. Lazily-built
	// datasets (first request touch) are unaffected.
	WarmWorkers int
	// WrapResultCache, when set, wraps each dataset's result cache as its
	// Server is built (internal/cluster installs the peer-shared cache
	// here). It runs once per dataset, on the build goroutine, with the
	// dataset's registry name and its freshly-built local cache — and not
	// at all when the result cache is disabled (see
	// ServerConfig.WrapResultCache).
	WrapResultCache func(dataset string, local ResultCache) ResultCache
	// Sessions tunes session tracking and speculative tile prefetch. In a
	// cluster deployment, sessions live at the routing tier instead (key
	// routing fragments one session across replicas), so internal/cluster
	// disables gateway-level tracking and drives Server.Prefetch remotely.
	Sessions SessionConfig
}

// gatewayEntry is one dataset's serving slot: warming until done closes,
// then either a ready Server or a cached construction error.
type gatewayEntry struct {
	done chan struct{}
	srv  *Server
	err  error
}

// state reports the entry's lifecycle for routing and /datasets.
func (e *gatewayEntry) state() workload.Status {
	select {
	case <-e.done:
		if e.err != nil {
			return workload.StatusFailed
		}
		return workload.StatusReady
	default:
		return workload.StatusWarming
	}
}

// Gateway serves visualization traffic for every dataset in a registry
// through per-dataset Server instances that share one admission budget. A
// dataset's engine state (the generated dataset, its rewriter, caches, and
// lookup cache) is built lazily on first touch, exactly once (single-flight);
// requests arriving while it warms get 503 + Retry-After instead of
// blocking. A Gateway response is byte-identical to the response the
// equivalent standalone single-dataset Server would produce, because routing
// reuses the Server path unchanged.
type Gateway struct {
	reg         *workload.Registry
	factory     RewriterFactory
	cfg         GatewayConfig
	defaultName string
	admit       *admission
	start       time.Time

	// mu guards entries. Reads vastly dominate (every request resolves its
	// dataset; writes happen once per dataset lifetime), so the hot path
	// takes only the read lock — the gateway must not reintroduce the
	// single-mutex serialization the sharded caches removed.
	mu      sync.RWMutex
	entries map[string]*gatewayEntry

	// Session tracking + speculative prefetch (nil/unused when disabled).
	// prefetchSem is a token semaphore bounding concurrently-running
	// prefetch goroutines; an unavailable token sheds the prediction
	// immediately rather than queuing dispatch work behind live traffic.
	// observeCh feeds a single observer goroutine: observation (parse,
	// predict, dispatch) runs entirely off the request goroutine, so the
	// serving path never waits behind prediction bookkeeping or a cold
	// plan build in a freshly-spawned prefetch goroutine. Enqueueing
	// happens before the handler returns, which keeps one session's
	// observations in request order.
	sessions    *SessionTracker
	prefetchSem chan struct{}
	observeCh   chan observation

	// Gateway-level counters; per-dataset serving counters live on each
	// Server's Metrics. gwMetrics backs the panic-recovery middleware for
	// requests that die before resolving to a dataset's Server.
	requests   atomic.Int64
	notFound   atomic.Int64
	notReady   atomic.Int64
	failedDeps atomic.Int64
	gwMetrics  *Metrics

	// Lifecycle: draining is one-way (no new work, health fails over);
	// quit stops the observer goroutine; Close is idempotent.
	draining  atomic.Bool
	quit      chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// NewGateway builds a gateway over a registry. The registry must have at
// least one dataset, and DefaultDataset (when set) must be registered.
func NewGateway(reg *workload.Registry, factory RewriterFactory, cfg GatewayConfig) (*Gateway, error) {
	names := reg.Names()
	if len(names) == 0 {
		return nil, fmt.Errorf("middleware: gateway needs at least one registered dataset")
	}
	if factory == nil {
		factory = OracleFactory
	}
	def := cfg.DefaultDataset
	if def == "" {
		def = names[0]
	} else if reg.Status(def) == workload.StatusUnknown {
		return nil, fmt.Errorf("middleware: default dataset %q is not registered", def)
	}
	scfg := cfg.Server.normalized()
	g := &Gateway{
		reg:         reg,
		factory:     factory,
		cfg:         cfg,
		defaultName: def,
		admit:       newAdmission(scfg.MaxConcurrent, scfg.MaxQueue, scfg.PrefetchQueue),
		start:       time.Now(),
		entries:     make(map[string]*gatewayEntry),
		gwMetrics:   NewMetrics(),
		quit:        make(chan struct{}),
	}
	if !cfg.Sessions.Disabled && scfg.ResultCacheSize > 0 {
		sess := cfg.Sessions.Normalized()
		g.sessions = NewSessionTracker(sess)
		g.prefetchSem = make(chan struct{}, sess.Workers)
		g.observeCh = make(chan observation, observeQueueCap)
		go g.observeLoop()
	}
	return g, nil
}

// observation is one successfully-served viz request queued for session
// tracking: enough to re-derive the viewport and dispatch predictions.
type observation struct {
	srv  *Server
	sid  string
	body []byte
}

// observeQueueCap bounds the observer backlog. A full queue drops the
// observation — the cost is one round of predictions, never live latency.
const observeQueueCap = 256

// observeLoop is the gateway's single observer goroutine: it parses each
// observed request, advances the session tracker, and dispatches the
// predictions. It runs until Close; a panic in one observation (tracker or
// prediction bug) drops that observation — counted on the dataset's metrics
// — and the loop keeps going, because losing the observer forever would
// silently disable prefetch for the gateway's whole lifetime.
func (g *Gateway) observeLoop() {
	for {
		select {
		case <-g.quit:
			return
		case obs := <-g.observeCh:
			guardPanics(obs.srv.metrics, "observe", func() {
				obs.srv.fault("observe")
				req, err := ParseRequest(obs.body)
				if err != nil || req.Region.Area() <= 0 {
					return
				}
				for _, pred := range g.sessions.Observe(obs.sid, req, obs.srv.DS.Extent) {
					g.dispatchPrefetch(obs.srv, pred)
				}
			})
		}
	}
}

// DefaultDataset returns the name served when a request has no ?dataset.
func (g *Gateway) DefaultDataset() string { return g.defaultName }

// ensure returns the entry for a registered name, creating it (and kicking
// off the dataset + server build on a fresh goroutine) on first touch.
// Returns nil for unregistered names.
func (g *Gateway) ensure(name string) *gatewayEntry {
	e, created := g.entry(name)
	if created {
		go g.build(name, e)
	}
	return e
}

// entry returns (creating if needed) the slot for a registered name without
// starting its build; created reports whether this call claimed the build.
// Exactly one caller per entry ever gets created=true — that caller must run
// build (inline or on a goroutine), or the entry's done channel never
// closes. Returns nil for unregistered names.
func (g *Gateway) entry(name string) (e *gatewayEntry, created bool) {
	g.mu.RLock()
	e, ok := g.entries[name]
	g.mu.RUnlock()
	if ok {
		return e, false
	}
	if g.reg.Status(name) == workload.StatusUnknown {
		return nil, false
	}
	g.mu.Lock()
	if e, ok := g.entries[name]; ok { // lost the upgrade race
		g.mu.Unlock()
		return e, false
	}
	e = &gatewayEntry{done: make(chan struct{})}
	g.entries[name] = e
	g.mu.Unlock()
	return e, true
}

// build constructs one dataset's serving state: the dataset itself (through
// the registry's own single-flight), its rewriter, and a Server whose
// caches are private but whose admission pool is the gateway's shared one.
func (g *Gateway) build(name string, e *gatewayEntry) {
	defer close(e.done)
	ds, err := g.reg.Lookup(name)
	if err != nil {
		e.err = fmt.Errorf("middleware: dataset %q: %w", name, err)
		return
	}
	rw, err := g.factory(name, ds)
	if err != nil {
		e.err = fmt.Errorf("middleware: rewriter for dataset %q: %w", name, err)
		return
	}
	scfg := g.cfg.Server
	scfg.MaxConcurrent = -1 // admission is gateway-scoped, not per server
	if wrap := g.cfg.WrapResultCache; wrap != nil {
		scfg.WrapResultCache = func(local ResultCache) ResultCache {
			return wrap(name, local)
		}
	}
	srv, err := NewServerWithConfig(ds, rw, g.cfg.Space, scfg)
	if err != nil {
		e.err = err
		return
	}
	srv.admit = g.admit
	if g.draining.Load() {
		srv.Drain() // the gateway drained while this dataset was warming
	}
	e.srv = srv
}

// Warm builds the named datasets (all registered ones when called with no
// names) and blocks until they are ready, returning the error of the first
// (lowest-index) failed dataset. Builds fan out on a bounded worker pool
// (GatewayConfig.WarmWorkers, default GOMAXPROCS) instead of one unbounded
// goroutine per dataset, so a many-dataset cold start overlaps dataset
// generation and rewriter training without oversubscribing the machine.
// Serving binaries call it at startup so eager datasets never answer 503.
// Entries already warming (a request raced ahead) are waited on, not
// rebuilt.
func (g *Gateway) Warm(names ...string) error {
	if len(names) == 0 {
		names = g.reg.Names()
	}
	type slot struct {
		e     *gatewayEntry
		build bool
	}
	slots := make([]slot, len(names))
	for i, name := range names {
		e, created := g.entry(name)
		if e == nil {
			return fmt.Errorf("middleware: gateway: unknown dataset %q", name)
		}
		slots[i] = slot{e: e, build: created}
	}
	// The pool callback never returns an error: RunIndexed's serial path
	// stops at the first failure, which would abandon claimed-but-unbuilt
	// entries whose done channel then never closes (permanent 503s). Every
	// claimed build must run; failures are collected and reported after.
	errs := make([]error, len(names))
	_ = core.RunIndexed(len(names), g.cfg.WarmWorkers, func(i int) error {
		if slots[i].build {
			g.build(names[i], slots[i].e)
		}
		<-slots[i].e.done
		errs[i] = slots[i].e.err
		return nil
	})
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("middleware: warming %q: %w", names[i], err)
		}
	}
	return nil
}

// Server returns the ready Server for a dataset, blocking through its build
// if necessary (tests and in-process embedding; the HTTP path never blocks).
func (g *Gateway) Server(name string) (*Server, error) {
	if name == "" {
		name = g.defaultName
	}
	e := g.ensure(name)
	if e == nil {
		return nil, fmt.Errorf("middleware: gateway: unknown dataset %q", name)
	}
	<-e.done
	return e.srv, e.err
}

// ReadyServer returns the Server for a dataset only if it is already built
// and healthy — it never blocks and never triggers a build. The cluster
// routing tier uses it to compute routing keys: the router must not stall a
// request (or kick off a dataset build on the routing goroutine) just to
// decide where to send it. Empty name means the default dataset.
func (g *Gateway) ReadyServer(name string) (*Server, bool) {
	if name == "" {
		name = g.defaultName
	}
	g.mu.RLock()
	e, ok := g.entries[name]
	g.mu.RUnlock()
	if !ok {
		return nil, false
	}
	select {
	case <-e.done:
		return e.srv, e.err == nil
	default:
		return nil, false
	}
}

// Drain stops the gateway admitting new work: /viz and /ingest answer 503 +
// Retry-After, the health rollup reports "draining" (health-checked routing
// fails over), speculative prefetch dispatch stops, and every built dataset
// Server drains too. In-flight requests run to completion. One-way.
func (g *Gateway) Drain() {
	if !g.draining.CompareAndSwap(false, true) {
		return
	}
	g.mu.RLock()
	entries := make([]*gatewayEntry, 0, len(g.entries))
	for _, e := range g.entries {
		entries = append(entries, e)
	}
	g.mu.RUnlock()
	for _, e := range entries {
		select {
		case <-e.done:
			if e.srv != nil {
				e.srv.Drain()
			}
		default:
			// Still warming: build() drains it on completion.
		}
	}
}

// Close drains the gateway, stops the observer goroutine, and closes every
// built dataset Server — each one's ingest batcher flushes buffered rows, so
// acknowledged async writes are applied (and WAL-logged, when attached)
// before Close returns. Builds still in flight are waited for and then
// closed. Idempotent; later calls return the first error.
func (g *Gateway) Close() error {
	g.closeOnce.Do(func() {
		g.Drain()
		close(g.quit)
		g.mu.RLock()
		entries := make(map[string]*gatewayEntry, len(g.entries))
		for name, e := range g.entries {
			entries[name] = e
		}
		g.mu.RUnlock()
		for name, e := range entries {
			<-e.done
			if e.srv == nil {
				continue
			}
			if err := e.srv.Close(); err != nil && g.closeErr == nil {
				g.closeErr = fmt.Errorf("middleware: closing dataset %q: %w", name, err)
			}
		}
	})
	return g.closeErr
}

// Draining reports whether the gateway has stopped admitting new work.
func (g *Gateway) Draining() bool { return g.draining.Load() }

// Recovering reports whether any registered dataset is currently replaying
// durable state (WAL recovery). Cluster probes use it to hold routed traffic
// away from a freshly restarted replica until its data is complete.
func (g *Gateway) Recovering() bool {
	for _, name := range g.reg.Names() {
		if st, _ := g.status(name); st == workload.StatusRecovering {
			return true
		}
	}
	return false
}

// rejectDraining writes the shutdown rejection for one gateway request.
func (g *Gateway) rejectDraining(w http.ResponseWriter) {
	g.gwMetrics.drainRejected.Add(1)
	w.Header().Set("Retry-After", "1")
	http.Error(w, "gateway is draining", http.StatusServiceUnavailable)
}

// Handler returns the gateway's HTTP surface:
//
//	POST /viz?dataset=<name>   — visualization requests (shared admission);
//	                             /query is an alias. Omitting dataset uses
//	                             the default dataset.
//	POST /ingest?dataset=<n>   — append rows through the dataset's adaptive
//	                             write batcher
//	GET  /datasets             — every registered dataset and its status
//	GET  /healthz[?dataset=]   — gateway rollup, or one dataset's probe
//	GET  /metrics[?dataset=]   — Prometheus text with dataset labels, or
//	                             ?format=json for a structured snapshot
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /viz", recoverPanics(g.gwMetrics, "viz", g.serveViz))
	mux.HandleFunc("POST /query", recoverPanics(g.gwMetrics, "viz", g.serveViz))
	mux.HandleFunc("POST /ingest", recoverPanics(g.gwMetrics, "ingest", g.serveIngest))
	mux.HandleFunc("GET /datasets", recoverPanics(g.gwMetrics, "datasets", g.serveDatasets))
	mux.HandleFunc("GET /healthz", recoverPanics(g.gwMetrics, "healthz", g.serveHealthz))
	mux.HandleFunc("GET /metrics", recoverPanics(g.gwMetrics, "metrics", g.serveMetrics))
	return mux
}

// resolve maps a request's dataset parameter to a ready Server, writing the
// proper error response (404 unknown, 503 warming, 500 failed build) when it
// can't. The bool reports whether a Server was produced.
func (g *Gateway) resolve(w http.ResponseWriter, r *http.Request) (*Server, bool) {
	name := r.URL.Query().Get("dataset")
	if name == "" {
		name = g.defaultName
	}
	e := g.ensure(name)
	if e == nil {
		g.notFound.Add(1)
		http.Error(w, fmt.Sprintf("unknown dataset %q", name), http.StatusNotFound)
		return nil, false
	}
	switch e.state() {
	case workload.StatusWarming:
		g.notReady.Add(1)
		w.Header().Set("Retry-After", "2")
		http.Error(w, fmt.Sprintf("dataset %q is warming up", name), http.StatusServiceUnavailable)
		return nil, false
	case workload.StatusFailed:
		g.failedDeps.Add(1)
		http.Error(w, e.err.Error(), http.StatusInternalServerError)
		return nil, false
	}
	return e.srv, true
}

// serveViz routes one visualization request to its dataset's server. The
// Server path (decode, admission on the shared pool, handle, encode) is
// reused unchanged — that is what makes gateway responses byte-identical to
// standalone single-dataset responses. Requests carrying a session id are
// additionally observed by the session tracker after a successful serve, and
// the tracker's predictions are dispatched as speculative prefetches.
func (g *Gateway) serveViz(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	if g.draining.Load() {
		g.rejectDraining(w)
		return
	}
	srv, ok := g.resolve(w, r)
	if !ok {
		return
	}
	sid := ""
	if g.sessions != nil && r.Header.Get(PrefetchHeader) == "" {
		sid = SessionID(r)
	}
	if sid == "" {
		srv.serveViz(w, r)
		return
	}
	// Buffer the body so the session tracker can interpret the request with
	// the same normalization the server used to answer it.
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	r.Body = io.NopCloser(bytes.NewReader(body))
	rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
	srv.serveViz(rec, r)
	if rec.code >= 300 {
		return // rejected/failed requests don't advance the viewport
	}
	// Hand the observation to the observer goroutine and return immediately:
	// the client's perceived latency must not include prediction bookkeeping
	// or the cold plan build a dispatched prefetch may pay.
	select {
	case g.observeCh <- observation{srv: srv, sid: sid, body: body}:
	default: // observer saturated — drop the prediction round, not latency
	}
}

// statusRecorder captures the response status so session observation can
// skip failed serves.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// dispatchPrefetch runs one predicted request through Server.Prefetch on a
// semaphore-bounded goroutine. No token free means the machine is saturated
// with speculative work already: the prediction is shed on the spot (counted
// as issued + shed, like a prefetch-lane rejection) instead of queuing
// dispatch goroutines behind live traffic.
func (g *Gateway) dispatchPrefetch(srv *Server, req Request) {
	if g.draining.Load() {
		return // speculative work is the first casualty of shutdown
	}
	select {
	case g.prefetchSem <- struct{}{}:
		go func() {
			defer func() { <-g.prefetchSem }()
			guardPanics(srv.metrics, "prefetch", func() {
				srv.fault("prefetch")
				srv.Prefetch(req)
			})
		}()
	default:
		srv.metrics.prefetchIssued.Add(1)
		srv.metrics.prefetchShed.Add(1)
	}
}

// serveIngest routes one ingest request to its dataset's server write path.
func (g *Gateway) serveIngest(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	if g.draining.Load() {
		g.rejectDraining(w)
		return
	}
	srv, ok := g.resolve(w, r)
	if !ok {
		return
	}
	srv.serveIngest(w, r)
}

// datasetInfo is one /datasets row.
type datasetInfo struct {
	Name    string `json:"name"`
	Status  string `json:"status"`
	Default bool   `json:"default,omitempty"`
	Error   string `json:"error,omitempty"`
}

// status reports a dataset's gateway-level state: idle until first touch,
// then the entry's lifecycle. A warming entry whose registry build is
// replaying a write-ahead log reports recovering, so health consumers can
// distinguish crash recovery from a cold build.
func (g *Gateway) status(name string) (workload.Status, error) {
	g.mu.RLock()
	e, ok := g.entries[name]
	g.mu.RUnlock()
	if !ok {
		switch g.reg.Status(name) {
		case workload.StatusUnknown:
			return workload.StatusUnknown, nil
		case workload.StatusRecovering:
			// The registry build was started directly (embedders, server
			// boot) and is replaying a WAL; no gateway entry exists yet but
			// the dataset is very much not idle.
			return workload.StatusRecovering, nil
		}
		return workload.StatusIdle, nil
	}
	st := e.state()
	switch st {
	case workload.StatusFailed:
		return st, e.err
	case workload.StatusWarming:
		if g.reg.Status(name) == workload.StatusRecovering {
			return workload.StatusRecovering, nil
		}
	}
	return st, nil
}

func (g *Gateway) serveDatasets(w http.ResponseWriter, r *http.Request) {
	names := g.reg.Names()
	infos := make([]datasetInfo, 0, len(names))
	for _, name := range names {
		st, err := g.status(name)
		info := datasetInfo{Name: name, Status: st.String(), Default: name == g.defaultName}
		if err != nil {
			info.Error = err.Error()
		}
		infos = append(infos, info)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(infos)
}

func (g *Gateway) serveHealthz(w http.ResponseWriter, r *http.Request) {
	if name := r.URL.Query().Get("dataset"); name != "" {
		st, _ := g.status(name)
		w.Header().Set("Content-Type", "application/json")
		code := http.StatusOK
		switch st {
		case workload.StatusUnknown:
			code = http.StatusNotFound
		case workload.StatusReady:
		default:
			code = http.StatusServiceUnavailable
		}
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(map[string]any{"dataset": name, "status": st.String()})
		return
	}
	statuses := make(map[string]string)
	recovering := false
	for _, name := range g.reg.Names() {
		st, _ := g.status(name)
		statuses[name] = st.String()
		if st == workload.StatusRecovering {
			recovering = true
		}
	}
	// Rollup precedence: draining (shutdown in progress) > recovering (WAL
	// replay; traffic must stay away until state is complete) > ok. Both
	// non-ok states answer 503 so plain status-code health checks fail over.
	status, code := "ok", http.StatusOK
	switch {
	case g.draining.Load():
		status, code = "draining", http.StatusServiceUnavailable
	case recovering:
		status, code = "recovering", http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":     status,
		"uptime_sec": time.Since(g.start).Seconds(),
		"datasets":   statuses,
	})
}

// GatewaySnapshot is the gateway-level slice of /metrics?format=json.
type GatewaySnapshot struct {
	UptimeSec          float64           `json:"uptime_sec"`
	Requests           int64             `json:"requests"`
	UnknownDataset     int64             `json:"unknown_dataset"`
	Warming            int64             `json:"warming_rejections"`
	FailedDataset      int64             `json:"failed_dataset"`
	QueueDepthLive     int               `json:"queue_depth_live"`
	QueueDepthPrefetch int               `json:"queue_depth_prefetch"`
	Datasets           map[string]string `json:"datasets"`
	Draining           bool              `json:"draining,omitempty"`
	DrainRejected      int64             `json:"drain_rejected,omitempty"`
	Panics             map[string]int64  `json:"panics,omitempty"`
}

// GatewayMetricsSnapshot is the full JSON form of GET /metrics?format=json:
// the gateway counters plus one serving snapshot per ready dataset.
type GatewayMetricsSnapshot struct {
	Gateway  GatewaySnapshot            `json:"gateway"`
	Datasets map[string]MetricsSnapshot `json:"datasets"`
}

// Snapshot captures the gateway counters and every ready dataset's serving
// metrics.
func (g *Gateway) Snapshot() GatewayMetricsSnapshot {
	snap := GatewayMetricsSnapshot{
		Gateway: GatewaySnapshot{
			UptimeSec:      time.Since(g.start).Seconds(),
			Requests:       g.requests.Load(),
			UnknownDataset: g.notFound.Load(),
			Warming:        g.notReady.Load(),
			FailedDataset:  g.failedDeps.Load(),
			Datasets:       make(map[string]string),
			Draining:       g.draining.Load(),
			DrainRejected:  g.gwMetrics.drainRejected.Load(),
			Panics:         g.gwMetrics.panicsSnapshot(),
		},
		Datasets: make(map[string]MetricsSnapshot),
	}
	snap.Gateway.QueueDepthLive, snap.Gateway.QueueDepthPrefetch = g.admit.queueDepths()
	for _, name := range g.reg.Names() {
		st, _ := g.status(name)
		snap.Gateway.Datasets[name] = st.String()
		if st == workload.StatusReady {
			if srv, err := g.Server(name); err == nil {
				snap.Datasets[name] = srv.Metrics().Snapshot()
			}
		}
	}
	return snap
}

func (g *Gateway) serveMetrics(w http.ResponseWriter, r *http.Request) {
	if name := r.URL.Query().Get("dataset"); name != "" {
		st, _ := g.status(name)
		if st != workload.StatusReady {
			http.Error(w, fmt.Sprintf("dataset %q is %s", name, st), http.StatusNotFound)
			return
		}
		srv, err := g.Server(name)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(srv.Metrics().Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		srv.Metrics().WritePrometheusLabeled(w, fmt.Sprintf("dataset=%q", name))
		return
	}

	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(g.Snapshot())
		return
	}
	// Text rollup: gateway counters, then each ready dataset's series —
	// snapshotted exactly once, inside WritePrometheusLabeled.
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "maliva_gateway_uptime_seconds %g\n", time.Since(g.start).Seconds())
	fmt.Fprintf(w, "maliva_gateway_requests_total %d\n", g.requests.Load())
	fmt.Fprintf(w, "maliva_gateway_unknown_dataset_total %d\n", g.notFound.Load())
	fmt.Fprintf(w, "maliva_gateway_warming_rejections_total %d\n", g.notReady.Load())
	fmt.Fprintf(w, "maliva_gateway_failed_dataset_total %d\n", g.failedDeps.Load())
	fmt.Fprintf(w, "maliva_gateway_drain_rejected_total %d\n", g.gwMetrics.drainRejected.Load())
	gwPanics := g.gwMetrics.panicsSnapshot()
	gwHandlers := make([]string, 0, len(gwPanics))
	for h := range gwPanics {
		gwHandlers = append(gwHandlers, h)
	}
	sort.Strings(gwHandlers)
	for _, h := range gwHandlers {
		fmt.Fprintf(w, "maliva_gateway_panics_total{handler=%q} %d\n", h, gwPanics[h])
	}
	live, prefetch := g.admit.queueDepths()
	writeQueueDepths(w, live, prefetch)
	names := g.reg.Names()
	sort.Strings(names)
	for _, name := range names {
		if st, _ := g.status(name); st != workload.StatusReady {
			continue
		}
		if srv, err := g.Server(name); err == nil {
			srv.Metrics().WritePrometheusLabeled(w, fmt.Sprintf("dataset=%q", name))
		}
	}
}
