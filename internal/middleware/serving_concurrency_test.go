package middleware

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/workload"
)

// TestConcurrentHandleMatchesSerialReplay hammers one Server from 32
// goroutines with a mix of cacheable (repeated) and uncacheable (distinct)
// requests and asserts every response is bit-identical to a serial replay
// of the same request sequence on a fresh server — the serving-layer
// analogue of core's BuildContext determinism test. Run with -race to
// exercise the concurrency claim on the caches, the shared LookupCache,
// and the admission pool.
func TestConcurrentHandleMatchesSerialReplay(t *testing.T) {
	ds := testDataset(t)
	concurrent, err := NewServer(ds, core.OracleRewriter{}, core.HintOnlySpec(), 500)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := NewServer(ds, core.OracleRewriter{}, core.HintOnlySpec(), 500)
	if err != nil {
		t.Fatal(err)
	}

	// A pool of distinct shapes (different keywords, windows, grids, kinds,
	// budgets); the request stream cycles through it with heavy repetition,
	// so hot shapes hit every cache layer while cold ones keep missing.
	shapes := make([]Request, 0, 12)
	for i := 0; i < 12; i++ {
		req := validRequest()
		req.Keyword = []string{"word0003", "word0005", "word0007", "word0011"}[i%4]
		req.From = time.Date(2016, time.Month(1+i%6), 1, 0, 0, 0, 0, time.UTC)
		req.To = req.From.AddDate(0, 2, 0)
		if i%3 == 0 {
			req.Kind = VizScatter
		}
		if i%2 == 0 {
			req.GridW, req.GridH = 8, 8
		}
		req.BudgetMs = []float64{0, 400, 800}[i%3]
		shapes = append(shapes, req)
	}

	const goroutines = 32
	const perG = 6
	type result struct {
		body []byte
		err  error
	}
	results := make([][]result, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]result, perG)
			for i := 0; i < perG; i++ {
				req := shapes[(g*perG+i*5)%len(shapes)]
				resp, err := concurrent.Handle(req)
				if err != nil {
					out[i] = result{err: err}
					continue
				}
				b, err := json.Marshal(resp)
				out[i] = result{body: b, err: err}
			}
			results[g] = out
		}(g)
	}
	wg.Wait()

	// Serial replay of the exact same request sequence.
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			req := shapes[(g*perG+i*5)%len(shapes)]
			want, err := serial.Handle(req)
			if err != nil {
				t.Fatalf("serial replay g=%d i=%d: %v", g, i, err)
			}
			wantB, _ := json.Marshal(want)
			got := results[g][i]
			if got.err != nil {
				t.Fatalf("concurrent g=%d i=%d: %v", g, i, got.err)
			}
			if !bytes.Equal(got.body, wantB) {
				t.Errorf("g=%d i=%d: concurrent response diverges from serial replay\n got %s\nwant %s",
					g, i, got.body, wantB)
			}
		}
	}

	snap := concurrent.Metrics().Snapshot()
	if snap.PlanHits+snap.PlanCoalesced == 0 {
		t.Error("no plan-cache reuse under the concurrent load")
	}
	if snap.ResultHits == 0 {
		t.Error("no result-cache hits under the concurrent load")
	}
}

// testDataset builds the shared small Twitter dataset.
func testDataset(t testing.TB) *workload.Dataset {
	t.Helper()
	cfg := workload.TwitterConfig()
	cfg.Rows = 8_000
	cfg.Scale = 100e6 / float64(cfg.Rows)
	ds, err := workload.Twitter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}
