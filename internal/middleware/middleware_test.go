package middleware

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/maliva/maliva/internal/core"
	"github.com/maliva/maliva/internal/engine"
	"github.com/maliva/maliva/internal/workload"
)

// testServer builds a middleware over a tiny Twitter dataset using the
// zero-training Oracle rewriter (tests exercise the middleware, not the
// agent).
func testServer(t testing.TB) *Server {
	t.Helper()
	cfg := workload.TwitterConfig()
	cfg.Rows = 8_000
	cfg.Scale = 100e6 / float64(cfg.Rows)
	ds, err := workload.Twitter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(ds, core.OracleRewriter{}, core.HintOnlySpec(), 500)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func validRequest() Request {
	return Request{
		Keyword: "word0005",
		From:    time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC),
		To:      time.Date(2016, 5, 1, 0, 0, 0, 0, time.UTC),
		Region:  workload.USExtent,
		Kind:    VizHeatmap,
		GridW:   16, GridH: 8,
	}
}

func TestBuildQuery(t *testing.T) {
	s := testServer(t)
	q, err := s.BuildQuery(validRequest())
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Preds) != 3 {
		t.Fatalf("preds = %d", len(q.Preds))
	}
	sql := q.SQL(engine.Hint{})
	for _, want := range []string{"word0005", "created_at", "coordinates"} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q: %s", want, sql)
		}
	}
}

func TestBuildQueryErrors(t *testing.T) {
	s := testServer(t)
	// Unknown keyword.
	req := validRequest()
	req.Keyword = "nosuchword"
	if _, err := s.BuildQuery(req); err == nil {
		t.Error("expected unknown-keyword error")
	}
	// No conditions at all.
	if _, err := s.BuildQuery(Request{Kind: VizScatter}); err == nil {
		t.Error("expected no-conditions error")
	}
}

func TestHandleHeatmap(t *testing.T) {
	s := testServer(t)
	resp, err := s.Handle(validRequest())
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != VizHeatmap {
		t.Errorf("Kind = %v", resp.Kind)
	}
	if len(resp.Bins) == 0 {
		t.Fatal("empty heatmap")
	}
	for cell := range resp.Bins {
		if cell < 0 || cell >= 16*8 {
			t.Errorf("cell %d out of grid", cell)
		}
	}
	tr := resp.Trace
	if tr.SQL == "" || tr.RewrittenSQL == "" || tr.Option == "" {
		t.Errorf("trace incomplete: %+v", tr)
	}
	if tr.TotalMs <= 0 || tr.ExecMs <= 0 {
		t.Errorf("trace times: %+v", tr)
	}
}

func TestHandleScatter(t *testing.T) {
	s := testServer(t)
	req := validRequest()
	req.Kind = VizScatter
	resp, err := s.Handle(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) == 0 {
		t.Fatal("no scatter points")
	}
	for _, p := range resp.Points {
		if !req.Region.Contains(p) {
			t.Fatalf("point %v outside requested region", p)
		}
	}
}

func TestHTTPEndToEnd(t *testing.T) {
	s := testServer(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Health probe.
	hr, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", hr.StatusCode)
	}

	body, _ := json.Marshal(map[string]any{
		"keyword": "word0005",
		"from":    "2016-03-01T00:00:00Z",
		"to":      "2016-05-01T00:00:00Z",
		"min_lon": workload.USExtent.MinLon, "min_lat": workload.USExtent.MinLat,
		"max_lon": workload.USExtent.MaxLon, "max_lat": workload.USExtent.MaxLat,
		"kind": "heatmap", "grid_w": 8, "grid_h": 8, "budget_ms": 500,
	})
	resp, err := http.Post(srv.URL+"/viz", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /viz = %d", resp.StatusCode)
	}
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Bins) == 0 || out.Trace.RewrittenSQL == "" {
		t.Errorf("response incomplete: %+v", out.Trace)
	}

	// Malformed request → 400.
	bad, err := http.Post(srv.URL+"/viz", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed request = %d, want 400", bad.StatusCode)
	}

	// Bad timestamp → 400.
	badTime, _ := json.Marshal(map[string]any{"keyword": "word0005", "from": "yesterday"})
	bt, err := http.Post(srv.URL+"/viz", "application/json", bytes.NewReader(badTime))
	if err != nil {
		t.Fatal(err)
	}
	bt.Body.Close()
	if bt.StatusCode != http.StatusBadRequest {
		t.Errorf("bad timestamp = %d, want 400", bt.StatusCode)
	}
}
