package middleware

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestLatencyHistQuantiles: the exponential-bucket estimator lands within
// its bucket resolution (a factor of 2) of the true quantiles and keeps
// the ordering p50 ≤ p95 ≤ p99 ≤ max.
func TestLatencyHistQuantiles(t *testing.T) {
	var h latencyHist
	// Uniform 1..100 ms.
	for i := 1; i <= 100; i++ {
		h.observe(time.Duration(i) * time.Millisecond)
	}
	p50 := h.quantile(0.50)
	p95 := h.quantile(0.95)
	p99 := h.quantile(0.99)
	max := float64(h.maxNs.Load()) / float64(time.Millisecond)

	if max != 100 {
		t.Errorf("max = %v, want 100", max)
	}
	if p50 < 25 || p50 > 100 {
		t.Errorf("p50 = %v, want within a bucket of 50", p50)
	}
	if p95 < 47.5 || p95 > 100 {
		t.Errorf("p95 = %v, want within a bucket of 95", p95)
	}
	if !(p50 <= p95 && p95 <= p99 && p99 <= max) {
		t.Errorf("quantiles not monotone: p50=%v p95=%v p99=%v max=%v", p50, p95, p99, max)
	}

	// Empty histogram reports zeros.
	var empty latencyHist
	if empty.quantile(0.95) != 0 {
		t.Error("empty histogram quantile != 0")
	}

	// A single observation pins every quantile to (at most) itself.
	var one latencyHist
	one.observe(3 * time.Millisecond)
	if q := one.quantile(0.99); q <= 0 || q > 3 {
		t.Errorf("single-sample p99 = %v, want in (0, 3]", q)
	}
}

// TestMetricsSnapshotRates: derived rates come out of the raw counters.
func TestMetricsSnapshotRates(t *testing.T) {
	m := NewMetrics()
	m.requests.Add(10)
	m.ok.Add(8)
	m.clientErr.Add(2)
	m.planHits.Add(6)
	m.planMisses.Add(2)
	m.resultHits.Add(3)
	m.resultMisses.Add(1)
	m.budgetViolations.Add(2)
	m.latency.observe(2 * time.Millisecond)

	s := m.Snapshot()
	if s.PlanHitRate != 0.75 {
		t.Errorf("PlanHitRate = %v, want 0.75", s.PlanHitRate)
	}
	if s.ResultHitRate != 0.75 {
		t.Errorf("ResultHitRate = %v, want 0.75", s.ResultHitRate)
	}
	if s.BudgetViolationRate != 0.25 {
		t.Errorf("BudgetViolationRate = %v, want 0.25", s.BudgetViolationRate)
	}
	if s.LatencyCount != 1 || s.LatencyAvgMs <= 0 {
		t.Errorf("latency: %+v", s)
	}

	var buf bytes.Buffer
	m.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"maliva_requests_total 10",
		`maliva_responses_total{code="2xx"} 8`,
		"maliva_plan_cache_hit_rate 0.75",
		"maliva_budget_violations_total 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}
