package middleware

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets is the number of exponential histogram buckets. Bucket i
// covers latencies below latencyBase·2^i; the last bucket is unbounded.
// With base 50µs that spans 50µs … ~27min, far beyond any sane request.
const (
	latencyBuckets = 25
	latencyBase    = 50 * time.Microsecond
)

// latencyHist is a lock-free fixed-bucket latency histogram. Quantiles are
// estimated by linear interpolation inside the matched bucket, which is
// plenty for serving dashboards (buckets are a factor of 2 wide).
type latencyHist struct {
	counts [latencyBuckets]atomic.Int64
	count  atomic.Int64
	sumNs  atomic.Int64
	maxNs  atomic.Int64
}

// observe records one request latency.
func (h *latencyHist) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	b := 0
	for bound := latencyBase; b < latencyBuckets-1 && d >= bound; bound *= 2 {
		b++
	}
	h.counts[b].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
	for {
		cur := h.maxNs.Load()
		if int64(d) <= cur || h.maxNs.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// quantile estimates the q-quantile (q in [0,1]) in milliseconds.
func (h *latencyHist) quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen float64
	lower := time.Duration(0)
	upper := latencyBase
	for b := 0; b < latencyBuckets; b++ {
		c := float64(h.counts[b].Load())
		if seen+c >= rank && c > 0 {
			frac := (rank - seen) / c
			if frac < 0 {
				frac = 0
			}
			width := float64(upper - lower)
			if b == latencyBuckets-1 {
				// Unbounded bucket: report its lower edge (capped by max).
				width = 0
			}
			ms := (float64(lower) + frac*width) / float64(time.Millisecond)
			maxMs := float64(h.maxNs.Load()) / float64(time.Millisecond)
			return math.Min(ms, maxMs)
		}
		seen += c
		lower = upper
		upper *= 2
	}
	return float64(h.maxNs.Load()) / float64(time.Millisecond)
}

// Metrics aggregates serving-layer counters. All fields are updated with
// atomics, so one Metrics value is shared by every request goroutine.
type Metrics struct {
	start time.Time

	requests   atomic.Int64 // /viz requests received (before admission)
	ok         atomic.Int64 // 200s
	clientErr  atomic.Int64 // 4xx (malformed, unknown keyword, ...)
	serverErr  atomic.Int64 // 5xx
	rejectBusy atomic.Int64 // 429: queue full
	rejectWait atomic.Int64 // 503: deadline expired while queued

	planHits      atomic.Int64 // plan-cache hits (context reused)
	planMisses    atomic.Int64 // plan-cache misses (BuildContext ran)
	planCoalesced atomic.Int64 // requests that waited on an in-flight build
	resultHits    atomic.Int64
	resultMisses  atomic.Int64
	staleHits     atomic.Int64 // result hits served from an older version via ttl hint

	subsumedHits  atomic.Int64 // requests answered by slicing a containing result
	execCoalesced atomic.Int64 // requests that rode an identical in-flight execution

	prefetchIssued   atomic.Int64 // speculative requests entering the prefetch lane
	prefetchShed     atomic.Int64 // prefetches dropped by admission (no idle capacity)
	prefetchComputed atomic.Int64 // prefetches that executed (cache warmed)
	prefetchHits     atomic.Int64 // live requests served from a prefetched entry

	budgetViolations atomic.Int64 // served responses with Trace.Viable == false
	approxServed     atomic.Int64 // served responses with Approximate == true

	ingestRows    atomic.Int64 // rows accepted by the write path
	ingestFlushes atomic.Int64 // applied ingest flushes (data-version bumps)

	execCanceled  atomic.Int64 // executions aborted because the client went away
	drainRejected atomic.Int64 // requests refused while draining or closed

	// panics counts recovered handler/worker panics by handler name. Panics
	// are exceptional, so a mutex-guarded map (arbitrary labels, zero cost on
	// the request path until a panic actually happens) beats pre-declared
	// atomics here.
	panicsMu sync.Mutex
	panics   map[string]int64

	latency      latencyHist
	flushLatency latencyHist // ApplyBatch wall time per flush
}

// notePanic records one recovered panic under the given handler label.
func (m *Metrics) notePanic(handler string) {
	m.panicsMu.Lock()
	if m.panics == nil {
		m.panics = make(map[string]int64)
	}
	m.panics[handler]++
	m.panicsMu.Unlock()
}

// panicsSnapshot copies the per-handler panic counts.
func (m *Metrics) panicsSnapshot() map[string]int64 {
	m.panicsMu.Lock()
	defer m.panicsMu.Unlock()
	if len(m.panics) == 0 {
		return nil
	}
	out := make(map[string]int64, len(m.panics))
	for k, v := range m.panics {
		out[k] = v
	}
	return out
}

// NewMetrics returns a zeroed metrics registry.
func NewMetrics() *Metrics { return &Metrics{start: time.Now()} }

// MetricsSnapshot is the JSON form of the counters, plus derived rates.
type MetricsSnapshot struct {
	UptimeSec float64 `json:"uptime_sec"`

	Requests     int64 `json:"requests"`
	OK           int64 `json:"ok"`
	ClientErr    int64 `json:"client_errors"`
	ServerErr    int64 `json:"server_errors"`
	RejectedBusy int64 `json:"rejected_busy"`
	RejectedWait int64 `json:"rejected_timeout"`

	PlanHits      int64   `json:"plan_cache_hits"`
	PlanMisses    int64   `json:"plan_cache_misses"`
	PlanCoalesced int64   `json:"plan_cache_coalesced"`
	PlanHitRate   float64 `json:"plan_cache_hit_rate"`
	ResultHits    int64   `json:"result_cache_hits"`
	ResultMisses  int64   `json:"result_cache_misses"`
	ResultHitRate float64 `json:"result_cache_hit_rate"`

	StaleHits int64 `json:"result_cache_stale_hits"`

	SubsumedHits  int64 `json:"subsumed_hits"`
	ExecCoalesced int64 `json:"exec_coalesced"`

	PrefetchIssued   int64 `json:"prefetch_issued"`
	PrefetchShed     int64 `json:"prefetch_shed"`
	PrefetchComputed int64 `json:"prefetch_computed"`
	PrefetchHits     int64 `json:"prefetch_hits"`

	// Per-lane admission queue depths — instantaneous gauges filled in by
	// the HTTP layer (the admission pool is server- or gateway-scoped;
	// Metrics itself never sees it).
	QueueDepthLive     int `json:"queue_depth_live"`
	QueueDepthPrefetch int `json:"queue_depth_prefetch"`

	BudgetViolations    int64   `json:"budget_violations"`
	BudgetViolationRate float64 `json:"budget_violation_rate"`
	ApproxServed        int64   `json:"approx_served"`

	IngestRows    int64 `json:"ingest_rows"`
	IngestFlushes int64 `json:"ingest_flushes"`

	ExecCanceled  int64            `json:"exec_canceled"`
	DrainRejected int64            `json:"drain_rejected"`
	Panics        map[string]int64 `json:"panics,omitempty"`

	FlushP50Ms float64 `json:"flush_latency_p50_ms"`
	FlushP95Ms float64 `json:"flush_latency_p95_ms"`
	FlushMaxMs float64 `json:"flush_latency_max_ms"`

	LatencyCount int64   `json:"latency_count"`
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
	LatencyMaxMs float64 `json:"latency_max_ms"`
	LatencyAvgMs float64 `json:"latency_avg_ms"`
}

func rate(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Snapshot captures the current counters and derived rates.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		UptimeSec:    time.Since(m.start).Seconds(),
		Requests:     m.requests.Load(),
		OK:           m.ok.Load(),
		ClientErr:    m.clientErr.Load(),
		ServerErr:    m.serverErr.Load(),
		RejectedBusy: m.rejectBusy.Load(),
		RejectedWait: m.rejectWait.Load(),

		PlanHits:      m.planHits.Load(),
		PlanMisses:    m.planMisses.Load(),
		PlanCoalesced: m.planCoalesced.Load(),
		ResultHits:    m.resultHits.Load(),
		ResultMisses:  m.resultMisses.Load(),

		StaleHits: m.staleHits.Load(),

		SubsumedHits:  m.subsumedHits.Load(),
		ExecCoalesced: m.execCoalesced.Load(),

		PrefetchIssued:   m.prefetchIssued.Load(),
		PrefetchShed:     m.prefetchShed.Load(),
		PrefetchComputed: m.prefetchComputed.Load(),
		PrefetchHits:     m.prefetchHits.Load(),

		BudgetViolations: m.budgetViolations.Load(),
		ApproxServed:     m.approxServed.Load(),

		IngestRows:    m.ingestRows.Load(),
		IngestFlushes: m.ingestFlushes.Load(),
		ExecCanceled:  m.execCanceled.Load(),
		DrainRejected: m.drainRejected.Load(),
		Panics:        m.panicsSnapshot(),
		FlushP50Ms:    m.flushLatency.quantile(0.50),
		FlushP95Ms:    m.flushLatency.quantile(0.95),
		FlushMaxMs:    float64(m.flushLatency.maxNs.Load()) / float64(time.Millisecond),

		LatencyCount: m.latency.count.Load(),
		LatencyP50Ms: m.latency.quantile(0.50),
		LatencyP95Ms: m.latency.quantile(0.95),
		LatencyP99Ms: m.latency.quantile(0.99),
		LatencyMaxMs: float64(m.latency.maxNs.Load()) / float64(time.Millisecond),
	}
	s.PlanHitRate = rate(s.PlanHits, s.PlanHits+s.PlanMisses)
	s.ResultHitRate = rate(s.ResultHits, s.ResultHits+s.ResultMisses)
	s.BudgetViolationRate = rate(s.BudgetViolations, s.OK)
	if s.LatencyCount > 0 {
		s.LatencyAvgMs = float64(m.latency.sumNs.Load()) / float64(s.LatencyCount) / float64(time.Millisecond)
	}
	return s
}

// WritePrometheus renders the counters in Prometheus text exposition format.
func (m *Metrics) WritePrometheus(w io.Writer) { m.WritePrometheusLabeled(w, "") }

// WritePrometheusLabeled is WritePrometheus with an extra label pair (e.g.
// `dataset="twitter"`) injected into every series, so a gateway can expose
// per-dataset rollups on one endpoint. An empty label emits plain series.
func (m *Metrics) WritePrometheusLabeled(w io.Writer, label string) {
	s := m.Snapshot()
	p := func(name string, v float64) {
		if label != "" {
			if i := strings.IndexByte(name, '{'); i >= 0 {
				name = name[:i] + "{" + label + "," + name[i+1:]
			} else {
				name += "{" + label + "}"
			}
		}
		fmt.Fprintf(w, "maliva_%s %g\n", name, v)
	}
	p("uptime_seconds", s.UptimeSec)
	p("requests_total", float64(s.Requests))
	p(`responses_total{code="2xx"}`, float64(s.OK))
	p(`responses_total{code="4xx"}`, float64(s.ClientErr))
	p(`responses_total{code="5xx"}`, float64(s.ServerErr))
	p(`admission_rejected_total{reason="busy"}`, float64(s.RejectedBusy))
	p(`admission_rejected_total{reason="timeout"}`, float64(s.RejectedWait))
	p(`plan_cache_hits_total`, float64(s.PlanHits))
	p(`plan_cache_misses_total`, float64(s.PlanMisses))
	p(`plan_cache_coalesced_total`, float64(s.PlanCoalesced))
	p(`plan_cache_hit_rate`, s.PlanHitRate)
	p(`result_cache_hits_total`, float64(s.ResultHits))
	p(`result_cache_misses_total`, float64(s.ResultMisses))
	p(`result_cache_hit_rate`, s.ResultHitRate)
	p(`result_cache_stale_hits_total`, float64(s.StaleHits))
	p(`subsumed_hits_total`, float64(s.SubsumedHits))
	p(`exec_coalesced_total`, float64(s.ExecCoalesced))
	p(`prefetch_issued_total`, float64(s.PrefetchIssued))
	p(`prefetch_hits_total`, float64(s.PrefetchHits))
	p(`prefetch_shed_total`, float64(s.PrefetchShed))
	p(`prefetch_computed_total`, float64(s.PrefetchComputed))
	p(`budget_violations_total`, float64(s.BudgetViolations))
	p(`budget_violation_rate`, s.BudgetViolationRate)
	p(`approx_served_total`, float64(s.ApproxServed))
	p(`ingest_rows_total`, float64(s.IngestRows))
	p(`ingest_flushes_total`, float64(s.IngestFlushes))
	p(`exec_canceled_total`, float64(s.ExecCanceled))
	p(`drain_rejected_total`, float64(s.DrainRejected))
	handlers := make([]string, 0, len(s.Panics))
	for h := range s.Panics {
		handlers = append(handlers, h)
	}
	sort.Strings(handlers)
	for _, h := range handlers {
		p(fmt.Sprintf("panics_total{handler=%q}", h), float64(s.Panics[h]))
	}
	p(`ingest_flush_latency_ms{quantile="0.5"}`, s.FlushP50Ms)
	p(`ingest_flush_latency_ms{quantile="0.95"}`, s.FlushP95Ms)
	p(`ingest_flush_latency_ms{quantile="max"}`, s.FlushMaxMs)
	p(`request_latency_ms{quantile="0.5"}`, s.LatencyP50Ms)
	p(`request_latency_ms{quantile="0.95"}`, s.LatencyP95Ms)
	p(`request_latency_ms{quantile="0.99"}`, s.LatencyP99Ms)
	p(`request_latency_ms{quantile="max"}`, s.LatencyMaxMs)
	p(`request_latency_count`, float64(s.LatencyCount))
}
